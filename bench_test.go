// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one testing.B target per figure, plus the ablations of
// DESIGN.md §8 and throughput micro-benchmarks of the simulation kernel.
//
// Two kinds of numbers appear in the output:
//
//   - the usual ns/op, which measures how fast this *simulator* runs on
//     the host (wall time to simulate one data point), and
//   - custom "virt-µs..." metrics, which are the *virtual-time* results —
//     the reproduction of the paper's measurements. These are
//     deterministic: identical on every run and every machine.
//
// Run with: go test -bench=. -benchmem
package nmad_test

import (
	"testing"

	"nmad"
	"nmad/internal/bench"
	"nmad/internal/core"
	"nmad/internal/simnet"
)

var (
	mxRail  = []simnet.Profile{simnet.MX10G()}
	qsRail  = []simnet.Profile{simnet.QsNetII()}
	twoRail = []simnet.Profile{simnet.MX10G(), simnet.QsNetII()}
)

func mad() bench.Impl { return bench.MadMPI(core.DefaultOptions()) }

// reportPingPong measures one (impl, rails, size) point per iteration and
// reports the virtual latency.
func reportPingPong(b *testing.B, impl bench.Impl, rails []simnet.Profile, size int, unit string) {
	b.Helper()
	var lat float64
	for i := 0; i < b.N; i++ {
		l, err := bench.PingPong(impl, rails, size)
		if err != nil {
			b.Fatal(err)
		}
		lat = l
	}
	b.ReportMetric(lat, unit)
}

// Figure 2(a): raw ping-pong latency over MX — small-message points.
func BenchmarkFig2a_PingPongLatencyMX(b *testing.B) {
	b.Run("MadMPI-4B", func(b *testing.B) { reportPingPong(b, mad(), mxRail, 4, "virt-µs") })
	b.Run("MPICH-4B", func(b *testing.B) { reportPingPong(b, bench.MPICH(), mxRail, 4, "virt-µs") })
	b.Run("OpenMPI-4B", func(b *testing.B) { reportPingPong(b, bench.OpenMPI(), mxRail, 4, "virt-µs") })
	b.Run("MadMPI-4K", func(b *testing.B) { reportPingPong(b, mad(), mxRail, 4<<10, "virt-µs") })
	b.Run("MPICH-4K", func(b *testing.B) { reportPingPong(b, bench.MPICH(), mxRail, 4<<10, "virt-µs") })
}

// Figure 2(b): raw ping-pong bandwidth over MX — large-message points.
func BenchmarkFig2b_PingPongBandwidthMX(b *testing.B) {
	for _, impl := range []bench.Impl{mad(), bench.MPICH(), bench.OpenMPI()} {
		impl := impl
		b.Run(impl.Name+"-2M", func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				lat, err := bench.PingPong(impl, mxRail, 2<<20)
				if err != nil {
					b.Fatal(err)
				}
				bw = float64(2<<20) / lat
			}
			b.ReportMetric(bw, "virt-MB/s")
		})
	}
}

// Figure 2(c): raw ping-pong latency over Quadrics.
func BenchmarkFig2c_PingPongLatencyQs(b *testing.B) {
	b.Run("MadMPI-4B", func(b *testing.B) { reportPingPong(b, mad(), qsRail, 4, "virt-µs") })
	b.Run("MPICH-4B", func(b *testing.B) { reportPingPong(b, bench.MPICH(), qsRail, 4, "virt-µs") })
}

// Figure 2(d): raw ping-pong bandwidth over Quadrics.
func BenchmarkFig2d_PingPongBandwidthQs(b *testing.B) {
	for _, impl := range []bench.Impl{mad(), bench.MPICH()} {
		impl := impl
		b.Run(impl.Name+"-2M", func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				lat, err := bench.PingPong(impl, qsRail, 2<<20)
				if err != nil {
					b.Fatal(err)
				}
				bw = float64(2<<20) / lat
			}
			b.ReportMetric(bw, "virt-MB/s")
		})
	}
}

// §5.1 in-text numbers: the constant MAD-MPI overhead.
func BenchmarkTab51_Overhead(b *testing.B) {
	for _, rails := range [][]simnet.Profile{mxRail, qsRail} {
		rails := rails
		b.Run(rails[0].Name, func(b *testing.B) {
			var over float64
			for i := 0; i < b.N; i++ {
				madLat, err := bench.PingPong(mad(), rails, 4)
				if err != nil {
					b.Fatal(err)
				}
				mpichLat, err := bench.PingPong(bench.MPICH(), rails, 4)
				if err != nil {
					b.Fatal(err)
				}
				over = madLat - mpichLat
			}
			b.ReportMetric(over, "virt-µs-overhead")
		})
	}
}

func reportMultiSeg(b *testing.B, impl bench.Impl, rails []simnet.Profile, segSize, nsegs int) {
	b.Helper()
	var lat float64
	for i := 0; i < b.N; i++ {
		l, err := bench.MultiSegPingPong(impl, rails, segSize, nsegs)
		if err != nil {
			b.Fatal(err)
		}
		lat = l
	}
	b.ReportMetric(lat, "virt-µs")
}

// Figure 3(a): 8-segment ping-pong over MX.
func BenchmarkFig3a_MultiSeg8MX(b *testing.B) {
	b.Run("MadMPI", func(b *testing.B) { reportMultiSeg(b, mad(), mxRail, 64, 8) })
	b.Run("MPICH", func(b *testing.B) { reportMultiSeg(b, bench.MPICH(), mxRail, 64, 8) })
	b.Run("OpenMPI", func(b *testing.B) { reportMultiSeg(b, bench.OpenMPI(), mxRail, 64, 8) })
}

// Figure 3(b): 16-segment ping-pong over MX.
func BenchmarkFig3b_MultiSeg16MX(b *testing.B) {
	b.Run("MadMPI", func(b *testing.B) { reportMultiSeg(b, mad(), mxRail, 64, 16) })
	b.Run("MPICH", func(b *testing.B) { reportMultiSeg(b, bench.MPICH(), mxRail, 64, 16) })
	b.Run("OpenMPI", func(b *testing.B) { reportMultiSeg(b, bench.OpenMPI(), mxRail, 64, 16) })
}

// Figure 3(c): 8-segment ping-pong over Quadrics.
func BenchmarkFig3c_MultiSeg8Qs(b *testing.B) {
	b.Run("MadMPI", func(b *testing.B) { reportMultiSeg(b, mad(), qsRail, 64, 8) })
	b.Run("MPICH", func(b *testing.B) { reportMultiSeg(b, bench.MPICH(), qsRail, 64, 8) })
}

// Figure 3(d): 16-segment ping-pong over Quadrics.
func BenchmarkFig3d_MultiSeg16Qs(b *testing.B) {
	b.Run("MadMPI", func(b *testing.B) { reportMultiSeg(b, mad(), qsRail, 64, 16) })
	b.Run("MPICH", func(b *testing.B) { reportMultiSeg(b, bench.MPICH(), qsRail, 64, 16) })
}

func reportDatatype(b *testing.B, impl bench.Impl, rails []simnet.Profile, total int) {
	b.Helper()
	var lat float64
	for i := 0; i < b.N; i++ {
		l, err := bench.DatatypePingPong(impl, rails, total)
		if err != nil {
			b.Fatal(err)
		}
		lat = l
	}
	b.ReportMetric(lat, "virt-µs")
}

// Figure 4(a): indexed datatype over MX.
func BenchmarkFig4a_IndexedDatatypeMX(b *testing.B) {
	b.Run("MadMPI-2M", func(b *testing.B) { reportDatatype(b, mad(), mxRail, 2<<20) })
	b.Run("MPICH-2M", func(b *testing.B) { reportDatatype(b, bench.MPICH(), mxRail, 2<<20) })
	b.Run("OpenMPI-2M", func(b *testing.B) { reportDatatype(b, bench.OpenMPI(), mxRail, 2<<20) })
}

// Figure 4(b): indexed datatype over Quadrics.
func BenchmarkFig4b_IndexedDatatypeQs(b *testing.B) {
	b.Run("MadMPI-2M", func(b *testing.B) { reportDatatype(b, mad(), qsRail, 2<<20) })
	b.Run("MPICH-2M", func(b *testing.B) { reportDatatype(b, bench.MPICH(), qsRail, 2<<20) })
}

// Ablation: the optimization window itself (aggreg vs default strategy).
func BenchmarkAblationWindow(b *testing.B) {
	for _, strat := range []string{"aggreg", "default", "prio"} {
		strat := strat
		b.Run(strat, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Strategy = strat
			reportMultiSeg(b, bench.MadMPI(opts), mxRail, 64, 16)
		})
	}
}

// Ablation: multi-rail splitting of an 8MB body.
func BenchmarkAblationMultirail(b *testing.B) {
	split := core.DefaultOptions()
	split.Strategy = "split"
	b.Run("MX-only", func(b *testing.B) { reportPingPong(b, mad(), mxRail, 8<<20, "virt-µs") })
	b.Run("MX+Quadrics", func(b *testing.B) { reportPingPong(b, bench.MadMPI(split), twoRail, 8<<20, "virt-µs") })
}

// Ablation: the engine's software overheads on the critical path.
func BenchmarkAblationOverhead(b *testing.B) {
	zero := core.DefaultOptions()
	zero.SubmitOverhead = 0
	zero.ScheduleOverhead = 0
	b.Run("full", func(b *testing.B) { reportPingPong(b, mad(), mxRail, 4, "virt-µs") })
	b.Run("zero-overhead", func(b *testing.B) { reportPingPong(b, bench.MadMPI(zero), mxRail, 4, "virt-µs") })
}

// Ablation: rendezvous threshold (the aggregation cap).
func BenchmarkAblationRdvThreshold(b *testing.B) {
	for _, thr := range []int{8 << 10, 32 << 10, 128 << 10} {
		thr := thr
		prof := simnet.MX10G()
		prof.RdvThreshold = thr
		b.Run(prof.Name+"-thr", func(b *testing.B) {
			reportPingPong(b, mad(), []simnet.Profile{prof}, 64<<10, "virt-µs")
		})
	}
}

// Ablation: the §3.2 scheduling modes.
func BenchmarkAblationSchedulingModes(b *testing.B) {
	jit := core.DefaultOptions()
	ant := core.DefaultOptions()
	ant.Anticipate = true
	fl := core.DefaultOptions()
	fl.FlushBacklog = 4
	b.Run("just-in-time", func(b *testing.B) { reportMultiSeg(b, bench.MadMPI(jit), mxRail, 64, 16) })
	b.Run("anticipate", func(b *testing.B) { reportMultiSeg(b, bench.MadMPI(ant), mxRail, 64, 16) })
	b.Run("flush-4", func(b *testing.B) { reportMultiSeg(b, bench.MadMPI(fl), mxRail, 64, 16) })
}

// Ablation: control latency inside a bulk stream (the §2 composite
// application scenario).
func BenchmarkAblationComposite(b *testing.B) {
	prio := core.DefaultOptions()
	prio.Strategy = "prio"
	cases := []struct {
		name string
		impl bench.Impl
		flag bool
	}{
		{"MadMPI-prio", bench.MadMPI(prio), true},
		{"MPICH", bench.MPICH(), false},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				l, err := bench.CompositeControlLatency(c.impl, mxRail, 16<<10, 16, c.flag)
				if err != nil {
					b.Fatal(err)
				}
				lat = l
			}
			b.ReportMetric(lat, "virt-µs-ctrl")
		})
	}
}

// Ablation: bandwidth sampling under congestion.
func BenchmarkAblationSampling(b *testing.B) {
	for _, c := range []struct {
		name   string
		warmup int
	}{
		{"cold-nominal-plan", 0},
		{"warmed-sampled-plan", 4},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				l, err := bench.CongestedTransfer(4<<20, 0.3, c.warmup)
				if err != nil {
					b.Fatal(err)
				}
				lat = l
			}
			b.ReportMetric(lat, "virt-µs")
		})
	}
}

// Micro-benchmarks of the library itself (host performance, ns/op is the
// interesting number here).

// BenchmarkEngineSmallSendHostSpeed measures how fast the simulator
// executes a full small-message exchange (engine + NIC + kernel).
func BenchmarkEngineSmallSendHostSpeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl, err := nmad.NewCluster(2)
		if err != nil {
			b.Fatal(err)
		}
		e0, err := cl.Engine(0)
		if err != nil {
			b.Fatal(err)
		}
		e1, err := cl.Engine(1)
		if err != nil {
			b.Fatal(err)
		}
		cl.Spawn("s", func(p *nmad.Proc) {
			if err := e0.Gate(1).Send(p, 1, []byte("x")); err != nil {
				b.Error(err)
			}
		})
		cl.Spawn("r", func(p *nmad.Proc) {
			if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 1)); err != nil {
				b.Error(err)
			}
		})
		if err := cl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimKernelEvents measures raw event throughput of the DES
// kernel.
func BenchmarkSimKernelEvents(b *testing.B) {
	b.ReportAllocs()
	cl, err := nmad.NewCluster(1)
	if err != nil {
		b.Fatal(err)
	}
	w := cl.World()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		w.After(nmad.Time(i), func() { n++ })
	}
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("fired %d of %d events", n, b.N)
	}
}
