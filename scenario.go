package nmad

import (
	"nmad/internal/scenario"
)

// Declarative scenario surface of the facade: load a YAML description
// of a cluster experiment — machine, workload timeline, mid-run events,
// assertions — and run it on the simulated optimizer. cmd/nmad-sim is
// the CLI over this surface; the scenarios/ corpus at the repository
// root is the committed, CI-checked set of experiments.
//
//	sc, err := nmad.LoadScenario("scenarios/incast-burst.yaml")
//	rep, err := nmad.RunScenario(sc, nmad.ScenarioConfig{})
//	rep.Write(os.Stdout)
//
// See the internal/scenario package documentation for the file format
// reference.

// Scenario is one parsed scenario: cluster, phases, events, assertions.
type Scenario = scenario.Scenario

// ScenarioConfig adjusts one run (recording capture, verbose progress).
type ScenarioConfig = scenario.Config

// ScenarioReport is the outcome of one run: per-phase completion,
// assertion results, final counters.
type ScenarioReport = scenario.Report

var (
	// LoadScenario reads, parses and validates one scenario file.
	LoadScenario = scenario.Load
	// ParseScenario parses a scenario document from memory (validation
	// is separate — see ValidateScenario).
	ParseScenario = scenario.Parse
	// ValidateScenario returns every semantic violation in a parsed
	// scenario, each wrapping one of the Scenario* sentinel errors.
	ValidateScenario = scenario.Validate
	// RunScenario executes a validated scenario and evaluates its
	// assertions; the error wraps ScenarioErrAssertFailed when the run
	// completed but an assertion did not hold.
	RunScenario = scenario.Run
	// ListScenarioDir loads every *.yaml scenario in a directory in name
	// order, returning per-file errors for the unloadable ones.
	ListScenarioDir = scenario.ListDir
)

// The scenario error taxonomy, for errors.Is classification.
var (
	ScenarioErrSyntax            = scenario.ErrSyntax
	ScenarioErrSchema            = scenario.ErrSchema
	ScenarioErrBadValue          = scenario.ErrBadValue
	ScenarioErrUnknownPhase      = scenario.ErrUnknownPhase
	ScenarioErrUnknownAction     = scenario.ErrUnknownAction
	ScenarioErrUnknownAssert     = scenario.ErrUnknownAssert
	ScenarioErrBadTarget         = scenario.ErrBadTarget
	ScenarioErrPhaseOverlap      = scenario.ErrPhaseOverlap
	ScenarioErrUnknownCheckpoint = scenario.ErrUnknownCheckpoint
	ScenarioErrAssertFailed      = scenario.ErrAssertFailed
)
