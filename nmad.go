package nmad

import (
	"nmad/internal/core"
	"nmad/internal/madmpi"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Re-exported engine types: the public API is the engine plus MAD-MPI;
// the internal packages carry the implementation.
type (
	// Engine is one node's NewMadeleine instance.
	Engine = core.Engine
	// Options configures an engine (strategy, software overheads).
	Options = core.Options
	// Gate is a connection to one peer node.
	Gate = core.Gate
	// Tag identifies a logical flow.
	Tag = core.Tag
	// Flags carry scheduling/delivery hints on a submission.
	Flags = core.Flags
	// SendOptions tunes one submission (flags, rail pinning).
	SendOptions = core.SendOptions
	// SendRequest and RecvRequest are nonblocking operation handles.
	SendRequest = core.SendRequest
	RecvRequest = core.RecvRequest
	// Message and InMessage are the Madeleine-style incremental
	// pack/unpack interfaces.
	Message   = core.Message
	InMessage = core.InMessage
	// Stats are the engine's optimizer counters.
	Stats = core.Stats

	// MPI and Comm are the MAD-MPI environment and communicator.
	MPI  = madmpi.MPI
	Comm = madmpi.Comm
	// Datatype describes a (possibly non-contiguous) memory layout.
	Datatype = madmpi.Datatype

	// Proc is a simulated process; Time is virtual time.
	Proc = sim.Proc
	Time = sim.Time
	// Tracer records the engine's scheduling decisions (Options.Tracer).
	Tracer = trace.Recorder
	// TraceEvent is one recorded scheduling decision.
	TraceEvent = trace.Event
	// Profile parameterizes one network technology.
	Profile = simnet.Profile
	// NodeID identifies a host in the fabric.
	NodeID = simnet.NodeID
)

// Re-exported constants and constructors.
var (
	// DefaultOptions is the paper's MAD-MPI engine configuration.
	DefaultOptions = core.DefaultOptions
	// Strategy registry access.
	StrategyNames = core.StrategyNames
	// NewTracer / NewRingTracer create scheduling-decision recorders.
	NewTracer     = trace.NewRecorder
	NewRingTracer = trace.NewRingRecorder
	// Reduction operators for Comm.Reduce / Allreduce.
	OpSum  = madmpi.OpSum
	OpMax  = madmpi.OpMax
	OpMin  = madmpi.OpMin
	OpProd = madmpi.OpProd

	// Network profiles of the five ports.
	MX10G   = simnet.MX10G
	QsNetII = simnet.QsNetII
	GM2000  = simnet.GM2000
	SISCI   = simnet.SISCI
	TCPGbE  = simnet.TCPGbE

	// MAD-MPI datatype constructors.
	Contiguous = madmpi.Contiguous
	Vector     = madmpi.Vector
	Hvector    = madmpi.Hvector
	Indexed    = madmpi.Indexed
	Hindexed   = madmpi.Hindexed
	StructType = madmpi.Struct
	Resized    = madmpi.Resized
	ByteType   = madmpi.Byte
)

// Scheduling flags.
const (
	FlagPriority  = core.FlagPriority
	FlagUnordered = core.FlagUnordered
	FlagNeedAck   = core.FlagNeedAck
	AnyDriver     = core.AnyDriver
	AnyTag        = madmpi.AnyTag
)

// Cluster bundles a simulation world and a fabric: the "machine" a
// program runs on.
type Cluster struct {
	world  *sim.World
	fabric *simnet.Fabric
}

// NewCluster builds an n-node machine with one NIC per node per profile
// (default: a single MX/Myri-10G rail) and the paper's host parameters.
func NewCluster(n int, profiles ...Profile) (*Cluster, error) {
	if len(profiles) == 0 {
		profiles = []Profile{simnet.MX10G()}
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, n, simnet.DefaultHost())
	for _, prof := range profiles {
		if _, err := f.AddNetwork(prof); err != nil {
			return nil, err
		}
	}
	return &Cluster{world: w, fabric: f}, nil
}

// World returns the virtual-time world of the cluster.
func (c *Cluster) World() *sim.World { return c.world }

// Fabric returns the underlying simulated fabric.
func (c *Cluster) Fabric() *simnet.Fabric { return c.fabric }

// Now reports the current virtual time.
func (c *Cluster) Now() Time { return c.world.Now() }

// Engine creates a NewMadeleine engine on the given node, attached to
// every rail of the cluster.
func (c *Cluster) Engine(node int, opts Options) (*Engine, error) {
	e, err := core.New(c.fabric, simnet.NodeID(node), opts)
	if err != nil {
		return nil, err
	}
	if err := e.AttachFabric(c.fabric); err != nil {
		return nil, err
	}
	return e, nil
}

// MPI creates a MAD-MPI rank on the given node.
func (c *Cluster) MPI(node int, opts Options) (*MPI, error) {
	return madmpi.Init(c.fabric, simnet.NodeID(node), opts)
}

// Spawn starts a simulated process (one MPI rank's program, a benchmark
// driver, ...).
func (c *Cluster) Spawn(name string, fn func(p *Proc)) { c.world.Spawn(name, fn) }

// Run drives the simulation until every process finishes. It returns a
// *sim.DeadlockError if processes block forever.
func (c *Cluster) Run() error { return c.world.Run() }
