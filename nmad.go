package nmad

import (
	"nmad/internal/core"
	"nmad/internal/madmpi"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
	"nmad/sched"
)

// Re-exported engine types: the public API is the engine plus MAD-MPI;
// the internal packages carry the implementation.
type (
	// Engine is one node's NewMadeleine instance.
	Engine = core.Engine
	// Gate is a connection to one peer node.
	Gate = core.Gate
	// Tag identifies a logical flow.
	Tag = core.Tag

	// Request is the unified completion handle: sends, receives, packed
	// messages and MAD-MPI operations all satisfy it (Done / Test / Err /
	// Wait / Bytes).
	Request = core.Request
	// SendRequest and RecvRequest are the concrete nonblocking handles.
	SendRequest = core.SendRequest
	RecvRequest = core.RecvRequest
	// RequestGroup composes several requests into one handle.
	RequestGroup = core.RequestGroup

	// Message and InMessage are the Madeleine-style incremental
	// pack/unpack interfaces.
	Message   = core.Message
	InMessage = core.InMessage
	// Stats are the engine's optimizer counters.
	Stats = core.Stats

	// Strategy is the public scheduling SPI (package sched): user code
	// implements it to program the optimizer, and WithStrategy accepts
	// values of it directly. The remaining SPI surface — Window,
	// Wrapper, Election, RailInfo, the lifecycle hooks and the Chain
	// combinator — lives in package nmad/sched.
	Strategy = sched.Strategy
	// RailInfo describes one rail to a strategy: nominal driver
	// capabilities plus the sampled achieved bandwidth.
	RailInfo = sched.RailInfo
	// Election is the ordered train of wrappers a strategy elects.
	Election = sched.Election
	// Wrapper is the read-only descriptor of one optimization-window
	// entry.
	Wrapper = sched.Wrapper

	// MPI and Comm are the MAD-MPI environment and communicator.
	MPI  = madmpi.MPI
	Comm = madmpi.Comm
	// Status describes a completed MPI receive.
	Status = madmpi.Status
	// MPIRequest is a MAD-MPI nonblocking handle (it satisfies Request).
	MPIRequest = madmpi.Request
	// Datatype describes a (possibly non-contiguous) memory layout.
	Datatype = madmpi.Datatype

	// CollKind names a collective operation with pluggable algorithms;
	// CollAlgo compiles one rank's side of a collective into a schedule
	// of nonblocking steps on a CollPlan (see RegisterCollAlgo).
	CollKind = madmpi.CollKind
	CollAlgo = madmpi.CollAlgo
	CollPlan = madmpi.CollPlan
	// CollArgs is what an algorithm builder sees: rank, size, buffers,
	// the reduction operator and the pipelining segment hint.
	CollArgs = madmpi.CollArgs

	// Proc is a simulated process; Time is virtual time.
	Proc = sim.Proc
	Time = sim.Time
	// Tracer records the engine's scheduling decisions (WithTracer).
	Tracer = trace.Recorder
	// TraceEvent is one recorded scheduling decision; TraceKind
	// classifies it.
	TraceEvent = trace.Event
	TraceKind  = trace.Kind
	// Profile parameterizes one network technology; Host the node model.
	Profile = simnet.Profile
	Host    = simnet.Host
	// NodeID identifies a host in the fabric.
	NodeID = simnet.NodeID

	// FaultProfile is a seeded description of how lossy the fabric is
	// (WithFaults); RailFaults holds one rail's drop/duplicate/reorder
	// probabilities and Outage its scheduled dark windows. FaultStats
	// counts what the injector actually did to one network.
	FaultProfile = simnet.FaultProfile
	RailFaults   = simnet.RailFaults
	Outage       = simnet.Outage
	FaultStats   = simnet.FaultStats
)

// Re-exported constants and constructors.
var (
	// WaitAll / WaitAny complete sets of requests on the engine's shared
	// completion condition (MPI_Waitall / MPI_Waitany shaped, but for any
	// Request).
	WaitAll = core.WaitAll
	WaitAny = core.WaitAny
	// NewRequestGroup composes requests into one handle.
	NewRequestGroup = core.NewRequestGroup

	// Strategy registry access. Strategies lists the registered names;
	// RegisterStrategy adds a constructor, returning an error on a
	// duplicate name; ChainStrategies composes fallback stacks.
	Strategies       = sched.Names
	RegisterStrategy = sched.Register
	ChainStrategies  = sched.Chain
	// StrategyNames is the historical alias of Strategies.
	StrategyNames = sched.Names
	// NewTracer / NewRingTracer create scheduling-decision recorders.
	NewTracer     = trace.NewRecorder
	NewRingTracer = trace.NewRingRecorder
	// Reduction operators for Comm.Reduce / Allreduce.
	OpSum  = madmpi.OpSum
	OpMax  = madmpi.OpMax
	OpMin  = madmpi.OpMin
	OpProd = madmpi.OpProd

	// Collective algorithm registry access, mirroring the strategy
	// registry: RegisterCollAlgo adds a named schedule builder for one
	// collective kind (error on duplicates), CollAlgoNames lists the
	// registered names, CollKinds the kinds. MPI.ForceCollAlgo (or the
	// WithCollAlgo option) pins a name, bypassing automatic selection.
	RegisterCollAlgo = madmpi.RegisterCollAlgo
	CollAlgoNames    = madmpi.CollAlgoNames
	CollKinds        = madmpi.CollKinds

	// Network profiles of the five ports.
	MX10G   = simnet.MX10G
	QsNetII = simnet.QsNetII
	GM2000  = simnet.GM2000
	SISCI   = simnet.SISCI
	TCPGbE  = simnet.TCPGbE
	// Profiles lists every built-in profile; ProfileByName resolves one.
	Profiles      = simnet.Profiles
	ProfileByName = simnet.ProfileByName
	// DefaultHost is the paper's 2006 Opteron host model.
	DefaultHost = simnet.DefaultHost
	// UniformLoss builds the simplest fault profile: the same drop
	// probability on every rail, no duplication, reordering or outages.
	UniformLoss = simnet.UniformLoss

	// MAD-MPI datatype constructors.
	Contiguous = madmpi.Contiguous
	Vector     = madmpi.Vector
	Hvector    = madmpi.Hvector
	Indexed    = madmpi.Indexed
	Hindexed   = madmpi.Hindexed
	StructType = madmpi.Struct
	Resized    = madmpi.Resized
	ByteType   = madmpi.Byte
)

// Completion errors surfaced through Request.Err / Wait.
var (
	// ErrTruncated: the message (or granted rendezvous span) exceeded
	// the posted landing area; the prefix was delivered.
	ErrTruncated = core.ErrTruncated
	// ErrProtocol: a receive-path protocol anomaly was attributed to the
	// request (see Stats.ProtocolErrors / Gate.ProtocolErrors).
	ErrProtocol = core.ErrProtocol
)

// AnyTag matches any tag of a communicator (MPI_ANY_TAG).
const AnyTag = madmpi.AnyTag

// The collective kinds with pluggable algorithms.
const (
	CollBarrier   = madmpi.CollBarrier
	CollBcast     = madmpi.CollBcast
	CollGather    = madmpi.CollGather
	CollScatter   = madmpi.CollScatter
	CollAllgather = madmpi.CollAllgather
	CollAlltoall  = madmpi.CollAlltoall
	CollReduce    = madmpi.CollReduce
	CollAllreduce = madmpi.CollAllreduce
)

// Collective completion errors.
var (
	// ErrCollBuffer: a collective buffer length does not match the
	// operation (e.g. Gather's recvBuf must be exactly Size×len(sendBuf)).
	ErrCollBuffer = madmpi.ErrCollBuffer
	// ErrCollAlgo: an unknown collective algorithm name was forced.
	ErrCollAlgo = madmpi.ErrCollAlgo
	// ErrCollTags: a communicator exhausted its collective tag space
	// (2^29 collectives); Dup a fresh communicator to continue.
	ErrCollTags = madmpi.ErrCollTags
)

// Trace event kinds, for filtering a Tracer's timeline.
const (
	TraceSubmit     = trace.Submit
	TraceElect      = trace.Elect
	TraceDepart     = trace.Depart
	TraceArrive     = trace.Arrive
	TraceDeliver    = trace.Deliver
	TraceUnexpected = trace.Unexpected
	TraceRdvStart   = trace.RdvStart
	TraceRdvGrant   = trace.RdvGrant
	TraceRdvBody    = trace.RdvBody
	TraceRetransmit = trace.Retransmit
	TraceRailEvent  = trace.RailEvent
)

// Cluster bundles a simulation world and a fabric: the "machine" a
// program runs on.
type Cluster struct {
	world  *sim.World
	fabric *simnet.Fabric
}

// NewCluster builds an n-node machine. By default every node gets one
// NIC on a single MX/Myri-10G rail and the paper's host parameters;
// WithRails and WithHost override that:
//
//	cl, err := nmad.NewCluster(4,
//		nmad.WithRails(nmad.MX10G(), nmad.QsNetII()),
//		nmad.WithHost(nmad.Host{MemcpyBandwidth: 2e9}),
//	)
func NewCluster(n int, opts ...ClusterOption) (*Cluster, error) {
	cfg := clusterConfig{host: simnet.DefaultHost()}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.rails) == 0 {
		cfg.rails = []Profile{simnet.MX10G()}
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, n, cfg.host)
	for _, prof := range cfg.rails {
		if _, err := f.AddNetwork(prof); err != nil {
			return nil, err
		}
	}
	if cfg.faults != nil {
		if err := f.SetFaults(*cfg.faults); err != nil {
			return nil, err
		}
	}
	return &Cluster{world: w, fabric: f}, nil
}

// World returns the virtual-time world of the cluster.
func (c *Cluster) World() *sim.World { return c.world }

// Fabric returns the underlying simulated fabric.
func (c *Cluster) Fabric() *simnet.Fabric { return c.fabric }

// Now reports the current virtual time.
func (c *Cluster) Now() Time { return c.world.Now() }

// Engine creates a NewMadeleine engine on the given node, attached to
// every rail of the cluster. With no options it runs the paper's MAD-MPI
// configuration (the "aggreg" strategy and the measured software
// overheads); EngineOptions adjust it:
//
//	e, err := cl.Engine(0, nmad.WithStrategy("split"), nmad.WithTracer(tr))
func (c *Cluster) Engine(node int, opts ...EngineOption) (*Engine, error) {
	o, err := resolveEngine(opts)
	if err != nil {
		return nil, err
	}
	e, err := core.New(c.fabric, simnet.NodeID(node), o)
	if err != nil {
		return nil, err
	}
	if err := e.AttachFabric(c.fabric); err != nil {
		return nil, err
	}
	return e, nil
}

// MPI creates a MAD-MPI rank on the given node. Options configure the
// underlying engine exactly as for Engine, plus the collective layer
// (WithCollAlgo, WithCollSegment).
func (c *Cluster) MPI(node int, opts ...EngineOption) (*MPI, error) {
	cfg := resolveFull(opts)
	if cfg.err != nil {
		return nil, cfg.err
	}
	// Validate the collective configuration before Init attaches an
	// engine to the node, so an option typo leaves nothing behind.
	for _, f := range cfg.collForce {
		if err := madmpi.ValidateCollAlgo(f.kind, f.name); err != nil {
			return nil, err
		}
	}
	m, err := madmpi.Init(c.fabric, simnet.NodeID(node), cfg.Options)
	if err != nil {
		return nil, err
	}
	for _, f := range cfg.collForce {
		if err := m.ForceCollAlgo(f.kind, f.name); err != nil {
			return nil, err
		}
	}
	if cfg.collSeg > 0 {
		m.SetCollSegment(cfg.collSeg)
	}
	return m, nil
}

// Spawn starts a simulated process (one MPI rank's program, a benchmark
// driver, ...).
func (c *Cluster) Spawn(name string, fn func(p *Proc)) { c.world.Spawn(name, fn) }

// Run drives the simulation until every process finishes. It returns a
// *sim.DeadlockError if processes block forever.
func (c *Cluster) Run() error { return c.world.Run() }
