package nmad_test

import (
	"bytes"
	"errors"
	"testing"

	"nmad"
)

func TestClusterQuickstart(t *testing.T) {
	cl, err := nmad.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := cl.Engine(0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cl.Engine(1)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("facade works")
	got := make([]byte, 32)
	var n int
	cl.Spawn("send", func(p *nmad.Proc) {
		if err := e0.Gate(1).Send(p, 1, msg); err != nil {
			t.Error(err)
		}
	})
	cl.Spawn("recv", func(p *nmad.Proc) {
		var err error
		n, err = e1.Gate(0).Recv(p, 1, got)
		if err != nil {
			t.Error(err)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:n], msg) {
		t.Errorf("received %q", got[:n])
	}
	if cl.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}

func TestClusterMPI(t *testing.T) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G(), nmad.QsNetII()))
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		m, err := cl.MPI(rank)
		if err != nil {
			t.Fatal(err)
		}
		cl.Spawn("rank", func(p *nmad.Proc) {
			c := m.CommWorld()
			if m.Rank() == 0 {
				if err := c.Send(p, []byte("over the facade"), 1, 0); err != nil {
					t.Error(err)
				}
			} else {
				buf := make([]byte, 32)
				st, err := c.Recv(p, buf, 0, nmad.AnyTag)
				if err != nil {
					t.Error(err)
				}
				if string(buf[:st.Count]) != "over the facade" {
					t.Errorf("got %q", buf[:st.Count])
				}
			}
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyNamesExported(t *testing.T) {
	// The registry is open (this test binary registers its own), so
	// check the built-ins are present rather than an exact count.
	names := nmad.Strategies()
	has := func(want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	for _, want := range []string{"default", "aggreg", "split", "prio", "adaptive"} {
		if !has(want) {
			t.Errorf("Strategies() = %v, missing %q", names, want)
		}
	}
}

func TestDatatypeConstructorsExported(t *testing.T) {
	dt := nmad.Hindexed([]int{64, 256 << 10}, []int{0, 64}, nmad.ByteType)
	if dt.Size() != 64+256<<10 {
		t.Errorf("datatype size %d", dt.Size())
	}
}

// TestIndexedDatatypeAggregatesIntoOnePacket is the §5.3 acceptance
// check through the facade: the blocks of an Indexed datatype ride the
// vector path (Isendv) as ONE wrapper and depart in ONE physical packet,
// observed through the tracer.
func TestIndexedDatatypeAggregatesIntoOnePacket(t *testing.T) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		t.Fatal(err)
	}
	tr := nmad.NewTracer()
	m0, err := cl.MPI(0, nmad.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cl.MPI(1)
	if err != nil {
		t.Fatal(err)
	}
	// Eight scattered 64B blocks, eager-sized: without the vector path
	// this was eight wrappers (and at best one aggregated packet after a
	// busy NIC); now it is a single wrapper, always a single packet.
	blocks, gap := 8, 32
	lens := make([]int, blocks)
	displs := make([]int, blocks)
	for i := range lens {
		lens[i] = 64
		displs[i] = i * (64 + gap)
	}
	dt := nmad.Indexed(lens, displs, nmad.ByteType)
	src := make([]byte, blocks*(64+gap))
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, len(src))
	cl.Spawn("rank0", func(p *nmad.Proc) {
		if err := m0.CommWorld().SendTyped(p, src, dt, 1, 1, 0); err != nil {
			t.Error(err)
		}
	})
	cl.Spawn("rank1", func(p *nmad.Proc) {
		st, err := m1.CommWorld().RecvTyped(p, dst, dt, 1, 0, 0)
		if err != nil {
			t.Error(err)
		}
		if st.Count != blocks*64 {
			t.Errorf("received %d bytes, want %d", st.Count, blocks*64)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		at := i * (64 + gap)
		if !bytes.Equal(dst[at:at+64], src[at:at+64]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
	if n := tr.Count(nmad.TraceSubmit); n != 1 {
		t.Errorf("Submit events = %d, want 1 (the whole datatype is one wrapper)", n)
	}
	if n := tr.Count(nmad.TraceDepart); n != 1 {
		t.Errorf("Depart events = %d, want 1 (all iovec segments in one physical packet)", n)
	}
	for _, ev := range tr.Filter(nmad.TraceDepart) {
		if ev.Bytes != blocks*64 {
			t.Errorf("departing packet carried %d payload bytes, want %d", ev.Bytes, blocks*64)
		}
	}
	if st := m0.Engine().Stats(); st.OutputPackets != 1 {
		t.Errorf("OutputPackets = %d, want 1", st.OutputPackets)
	}
}

// TestFacadeVectorSendAggregatesWithOtherFlows drives Isendv directly
// through the facade: a vector message and unrelated small sends share
// one physical packet when the NIC is busy.
func TestFacadeVectorSendAggregatesWithOtherFlows(t *testing.T) {
	cl, err := nmad.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	tr := nmad.NewTracer()
	e0, err := cl.Engine(0, nmad.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cl.Engine(1)
	if err != nil {
		t.Fatal(err)
	}
	cl.Spawn("send", func(p *nmad.Proc) {
		g := e0.Gate(1)
		g.Isend(p, 1, make([]byte, 64)) // departs alone, occupies the NIC
		g.Isendv(p, 2, [][]byte{make([]byte, 32), make([]byte, 32)})
		g.Isend(p, 3, make([]byte, 64))
	})
	cl.Spawn("recv", func(p *nmad.Proc) {
		g := e1.Gate(0)
		reqs := []nmad.Request{
			g.Irecv(p, 1, make([]byte, 64)),
			g.Irecvv(p, 2, [][]byte{make([]byte, 64)}),
			g.Irecv(p, 3, make([]byte, 64)),
		}
		if err := nmad.WaitAll(p, reqs...); err != nil {
			t.Error(err)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	multi := false
	for _, ev := range tr.Filter(nmad.TraceElect) {
		if ev.Entries > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("the vector wrapper never aggregated with the other flow")
	}
}

// TestFacadeWaitAnyAcrossLayers mixes an engine receive and an MPI
// request under the one unified WaitAny.
func TestFacadeUnifiedRequests(t *testing.T) {
	cl, err := nmad.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := cl.MPI(0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cl.MPI(1)
	if err != nil {
		t.Fatal(err)
	}
	cl.Spawn("rank0", func(p *nmad.Proc) {
		var reqs []nmad.Request
		reqs = append(reqs, m0.CommWorld().Isend(p, []byte("a"), 1, 0))
		reqs = append(reqs, m0.CommWorld().Irecv(p, make([]byte, 1), 1, 1))
		idx, err := nmad.WaitAny(p, reqs...)
		if err != nil {
			t.Error(err)
		}
		if err := nmad.WaitAll(p, reqs...); err != nil {
			t.Error(err)
		}
		_ = idx
	})
	cl.Spawn("rank1", func(p *nmad.Proc) {
		c := m1.CommWorld()
		if _, err := c.Recv(p, make([]byte, 1), 0, 0); err != nil {
			t.Error(err)
		}
		if err := c.Send(p, []byte("b"), 0, 1); err != nil {
			t.Error(err)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCollectiveOptionsAndRegistry(t *testing.T) {
	// The registry is visible through the facade.
	kinds := nmad.CollKinds()
	if len(kinds) != 8 {
		t.Fatalf("CollKinds() = %v, want the eight collectives", kinds)
	}
	names := nmad.CollAlgoNames(nmad.CollAllreduce)
	hasRing := false
	for _, n := range names {
		if n == "ring" {
			hasRing = true
		}
	}
	if !hasRing {
		t.Fatalf("CollAlgoNames(allreduce) = %v, want ring among them", names)
	}
	if err := nmad.RegisterCollAlgo(nmad.CollAllreduce, "ring", nil); err == nil {
		t.Error("duplicate facade registration must fail")
	}

	// WithCollAlgo/WithCollSegment configure ranks; a forced pipelined
	// ring allreduce runs correctly over the facade.
	const n, elems = 4, 1000
	cl, err := nmad.NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		m, err := cl.MPI(rank,
			nmad.WithCollAlgo(nmad.CollAllreduce, "ring"),
			nmad.WithCollSegment(2048))
		if err != nil {
			t.Fatal(err)
		}
		cl.Spawn("rank", func(p *nmad.Proc) {
			in := make([]float64, elems)
			for i := range in {
				in[i] = float64(m.Rank() + 1)
			}
			out := make([]float64, elems)
			if err := m.CommWorld().Allreduce(p, in, out, nmad.OpSum); err != nil {
				t.Error(err)
				return
			}
			for i := range out {
				if out[i] != 1+2+3+4 {
					t.Errorf("rank %d element %d = %g, want 10", m.Rank(), i, out[i])
					return
				}
			}
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}

	// An unknown forced algorithm surfaces from MPI construction.
	if _, err := cl.MPI(0, nmad.WithCollAlgo(nmad.CollBcast, "no-such")); !errors.Is(err, nmad.ErrCollAlgo) {
		t.Errorf("unknown forced algorithm: err = %v, want ErrCollAlgo", err)
	}
}

// TestFacadeLossyCluster drives the fault-injection and reliability
// options end to end through the facade: a cluster built lossy with
// WithFaults, engines running the link layer via WithReliability, and
// every payload checked on arrival.
func TestFacadeLossyCluster(t *testing.T) {
	cl, err := nmad.NewCluster(2, nmad.WithFaults(nmad.UniformLoss(5, 0.20, 1)))
	if err != nil {
		t.Fatal(err)
	}
	e0, err := cl.Engine(0, nmad.WithReliability())
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cl.Engine(1, nmad.WithReliability())
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	mk := func(i int) []byte {
		buf := make([]byte, 512)
		for j := range buf {
			buf[j] = byte(i*37) + byte(j)*11
		}
		return buf
	}
	cl.Spawn("send", func(p *nmad.Proc) {
		for i := 0; i < n; i++ {
			if err := e0.Gate(1).Send(p, nmad.Tag(i+1), mk(i)); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	cl.Spawn("recv", func(p *nmad.Proc) {
		buf := make([]byte, 512)
		for i := 0; i < n; i++ {
			got, err := e1.Gate(0).Recv(p, nmad.Tag(i+1), buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if got != 512 || !bytes.Equal(buf, mk(i)) {
				t.Errorf("message %d arrived corrupt or truncated (%d bytes)", i, got)
			}
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if e0.Stats().Retransmits == 0 {
		t.Error("20% drop produced no retransmissions — WithFaults did not reach the fabric")
	}
}
