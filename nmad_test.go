package nmad_test

import (
	"bytes"
	"testing"

	"nmad"
)

func TestClusterQuickstart(t *testing.T) {
	cl, err := nmad.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := cl.Engine(0, nmad.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e1, err := cl.Engine(1, nmad.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("facade works")
	got := make([]byte, 32)
	var n int
	cl.Spawn("send", func(p *nmad.Proc) {
		if err := e0.Gate(1).Send(p, 1, msg); err != nil {
			t.Error(err)
		}
	})
	cl.Spawn("recv", func(p *nmad.Proc) {
		var err error
		n, err = e1.Gate(0).Recv(p, 1, got)
		if err != nil {
			t.Error(err)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:n], msg) {
		t.Errorf("received %q", got[:n])
	}
	if cl.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}

func TestClusterMPI(t *testing.T) {
	cl, err := nmad.NewCluster(2, nmad.MX10G(), nmad.QsNetII())
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		m, err := cl.MPI(rank, nmad.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cl.Spawn("rank", func(p *nmad.Proc) {
			c := m.CommWorld()
			if m.Rank() == 0 {
				if err := c.Send(p, []byte("over the facade"), 1, 0); err != nil {
					t.Error(err)
				}
			} else {
				buf := make([]byte, 32)
				st, err := c.Recv(p, buf, 0, nmad.AnyTag)
				if err != nil {
					t.Error(err)
				}
				if string(buf[:st.Count]) != "over the facade" {
					t.Errorf("got %q", buf[:st.Count])
				}
			}
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyNamesExported(t *testing.T) {
	names := nmad.StrategyNames()
	if len(names) != 4 {
		t.Errorf("StrategyNames() = %v, want the four built-ins", names)
	}
}

func TestDatatypeConstructorsExported(t *testing.T) {
	dt := nmad.Hindexed([]int{64, 256 << 10}, []int{0, 64}, nmad.ByteType)
	if dt.Size() != 64+256<<10 {
		t.Errorf("datatype size %d", dt.Size())
	}
}
