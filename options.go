package nmad

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/simnet"
	"nmad/internal/trace"
	"nmad/sched"
)

// Functional options — the construction surface of the facade. Cluster
// assembly, engine personality and per-submission scheduling hints are
// all expressed as composable options instead of raw struct literals:
//
//	cl, _ := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G(), nmad.QsNetII()))
//	e, _ := cl.Engine(0, nmad.WithStrategy("aggreg"), nmad.WithTracer(tr))
//	e.Gate(1).Isend(p, tag, data, nmad.Priority(), nmad.OnRail(1))

// clusterConfig is the resolved NewCluster configuration.
type clusterConfig struct {
	rails  []Profile
	host   simnet.Host
	faults *simnet.FaultProfile
}

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterConfig)

// WithRails equips every node with one NIC per given profile, in order
// (rail 0 first). Without it the cluster gets a single MX/Myri-10G rail.
func WithRails(profiles ...Profile) ClusterOption {
	return func(c *clusterConfig) { c.rails = append(c.rails, profiles...) }
}

// WithHost overrides the node host model (memcpy bandwidth etc.).
func WithHost(h Host) ClusterOption {
	return func(c *clusterConfig) { c.host = h }
}

// WithFaults makes the fabric lossy: the profile's seeded per-rail
// drop/duplicate/reorder probabilities and scheduled outages apply to
// every packet injected. Same profile, same workload ⇒ the same faults,
// bit for bit. Pair it with WithReliability on every engine, or lost
// packets become lost messages:
//
//	cl, _ := nmad.NewCluster(8, nmad.WithFaults(nmad.UniformLoss(42, 0.05, 1)))
//	e, _ := cl.Engine(0, nmad.WithReliability())
func WithFaults(fp FaultProfile) ClusterOption {
	return func(c *clusterConfig) { c.faults = &fp }
}

// EngineOption configures one engine (or the engine under an MPI rank).
// The zero configuration is the paper's MAD-MPI personality: the
// aggregation strategy and the measured software overheads.
type EngineOption func(*engineConfig)

// engineConfig is the resolved engine configuration plus any option
// error, reported when the engine is constructed rather than by panic.
// The collective fields apply only to MPI ranks (Cluster.MPI); a bare
// engine has no collectives to configure.
type engineConfig struct {
	core.Options
	collForce []collForcePair
	collSeg   int
	err       error
}

type collForcePair struct {
	kind CollKind
	name string
}

// resolveEngine folds options over the paper's default configuration.
func resolveEngine(opts []EngineOption) (core.Options, error) {
	c := resolveFull(opts)
	return c.Options, c.err
}

func resolveFull(opts []EngineOption) engineConfig {
	c := engineConfig{Options: core.DefaultOptions()}
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// WithStrategy selects the optimization strategy: either a registry name
// ("default", "aggreg", "split", "prio", "adaptive", or anything added
// through RegisterStrategy), or a sched.Strategy value used directly —
// the route for strategies that are configured per engine rather than
// registered globally:
//
//	cl.Engine(0, nmad.WithStrategy("adaptive"))
//	cl.Engine(1, nmad.WithStrategy(myStrategy{window: 8}))
//
// Any other argument type surfaces as an error from Engine/MPI.
func WithStrategy(v any) EngineOption {
	return func(c *engineConfig) {
		switch s := v.(type) {
		case string:
			c.Strategy, c.StrategyImpl = s, nil
		case sched.Strategy:
			c.StrategyImpl = s
		default:
			if c.err == nil {
				c.err = fmt.Errorf("nmad: WithStrategy wants a registry name or a sched.Strategy, got %T", v)
			}
		}
	}
}

// WithTracer records every scheduling decision of the engine on the
// virtual timeline.
func WithTracer(tr *trace.Recorder) EngineOption {
	return func(c *engineConfig) { c.Tracer = tr }
}

// WithRecording captures every application-level submission of the
// engine (with its virtual-time offset and the cluster topology) into a
// replayable recording — the offered load of the run, separated from
// the schedule produced on it. Attach the same recording to every
// engine of the cluster, then persist it with Recording.Write and
// re-drive it with Replay / ReplayAB or cmd/nmad-replay.
func WithRecording(rec *trace.Recording) EngineOption {
	return func(c *engineConfig) { c.Record = rec }
}

// WithSubmitOverhead sets the host software cost charged per request
// entering the collect layer.
func WithSubmitOverhead(d Time) EngineOption {
	return func(c *engineConfig) { c.SubmitOverhead = d }
}

// WithScheduleOverhead sets the host cost charged per output packet for
// running the optimization function.
func WithScheduleOverhead(d Time) EngineOption {
	return func(c *engineConfig) { c.ScheduleOverhead = d }
}

// WithoutOverheads zeroes both software overheads (the idealized-engine
// ablation).
func WithoutOverheads() EngineOption {
	return func(c *engineConfig) {
		c.SubmitOverhead = 0
		c.ScheduleOverhead = 0
	}
}

// WithBodyChunk caps the size of one rendezvous body transaction; larger
// bodies are pipelined in chunks of this size.
func WithBodyChunk(bytes int) EngineOption {
	return func(c *engineConfig) { c.BodyChunk = bytes }
}

// WithAnticipation enables the second scheduling mode of the paper's
// §3.2: while a rail is busy the engine pre-builds one ready-to-send
// packet, hiding the election cost behind the previous transmission.
func WithAnticipation() EngineOption {
	return func(c *engineConfig) { c.Anticipate = true }
}

// WithFlushBacklog enables the third scheduling mode of §3.2: once the
// backlog a rail could send reaches n wrappers, the engine elects
// unconditionally and queues the output at the (possibly busy) NIC.
func WithFlushBacklog(n int) EngineOption {
	return func(c *engineConfig) { c.FlushBacklog = n }
}

// WithCredits enables credit-based receive flow control: every gate
// starts with n eager landing credits, each eager data wrapper sent
// consumes one, and the receiver returns credits as it consumes the
// wrappers (replenishment aggregates with outbound traffic like the
// rendezvous handshake). While a peer's credits are exhausted the
// sender's data wrappers wait in the collect layer, invisible to the
// strategies, so an overloaded receiver's queues stay bounded by the
// budget instead of growing without limit. Configure every engine of a
// cluster with the same budget.
func WithCredits(n int) EngineOption {
	return func(c *engineConfig) { c.Credits = n }
}

// WithMaxGrants caps the concurrent inbound rendezvous transactions a
// node grants: further matched rendezvous requests wait in FIFO order
// with their CTS deferred until an active transaction retires, bounding
// the registered landing traffic a flood of large senders can force on
// one receiver.
func WithMaxGrants(n int) EngineOption {
	return func(c *engineConfig) { c.MaxGrants = n }
}

// WithReliability enables the engine's link-layer reliability protocol:
// sequence-checked delivery with ack/timeout/retransmission for eager
// trains, watchdog-driven reissue for rendezvous bodies, and failover of
// pinned traffic off a rail whose frames exhaust their retransmit budget
// (see the package documentation's "Fault injection and reliability").
// The link framing changes the wire format, so every engine of a cluster
// must agree on this setting.
func WithReliability() EngineOption {
	return func(c *engineConfig) { c.Reliability = true }
}

// WithRetransmitTimeout sets how long an unacknowledged link frame waits
// before it is re-injected (default 200µs). Implies nothing unless
// WithReliability is set.
func WithRetransmitTimeout(d Time) EngineOption {
	return func(c *engineConfig) { c.RetransmitTimeout = d }
}

// WithRetransmitBudget sets how many re-injections one frame may cost
// before its rail is declared failed and surviving rails take over the
// traffic (default 8). On the last surviving rail the budget resets
// instead — the engine retries forever rather than lose data.
func WithRetransmitBudget(n int) EngineOption {
	return func(c *engineConfig) { c.RetransmitBudget = n }
}

// WithProbeBudget bounds the recovery probe of a failed rail: after n
// unanswered pings the engine abandons the rail for good (counted in
// Stats.AbandonedRails) instead of probing forever. Without a budget a
// permanently dead rail keeps the probe rescheduling itself, so a
// simulation can only be ended with a RunUntil horizon; with one, runs
// over permanent outages terminate on their own. 0 (the default) probes
// forever. Implies nothing unless WithReliability is set.
func WithProbeBudget(n int) EngineOption {
	return func(c *engineConfig) { c.ProbeBudget = n }
}

// WithCollAlgo pins the collective algorithm used for one collective
// kind on an MPI rank, bypassing the automatic size/comm-size selection:
//
//	m, _ := cl.MPI(0, nmad.WithCollAlgo(nmad.CollAllreduce, "ring"))
//
// The name must be registered (see RegisterCollAlgo / CollAlgoNames);
// configure every rank of a job identically. The option only affects
// Cluster.MPI — a bare engine has no collectives.
func WithCollAlgo(kind CollKind, name string) EngineOption {
	return func(c *engineConfig) {
		c.collForce = append(c.collForce, collForcePair{kind: kind, name: name})
	}
}

// WithCollSegment sets the pipelining segment size in bytes for the
// segmented collective algorithms (pipeline bcast/reduce, ring
// allreduce). Smaller segments pipeline deeper; larger ones amortize
// per-packet overhead. Applies to Cluster.MPI ranks only.
func WithCollSegment(bytes int) EngineOption {
	return func(c *engineConfig) { c.collSeg = bytes }
}

// Per-submission scheduling options, accepted by Gate.Isend, Gate.Isendv,
// Gate.Issend and Gate.BeginPack.
type SendOption = core.SendOption

var (
	// Priority asks the optimizer to favor earliest delivery (the RPC
	// service-id pattern).
	Priority = core.Priority
	// Unordered delivers the submission outside per-flow sequence order.
	Unordered = core.Unordered
	// Synchronous completes the send only once the receiver matched it.
	Synchronous = core.Synchronous
	// OnRail pins the submission to one rail instead of the common list.
	OnRail = core.OnRail
)
