module nmad

go 1.24
