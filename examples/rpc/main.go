// RPC: the paper's motivating example for priority scheduling (§2, §3.2).
// A remote method invocation is one logical message with several
// dependent fragments: the service id (needed first, so the receiver can
// prepare the data areas), the argument descriptor, and the bulk
// arguments. MPI's API cannot express these dependencies; the engine's
// priority flag can.
//
// The program runs the same RPC twice — once with the plain aggregation
// strategy and once with the priority strategy — and reports when the
// service id reached the server relative to the bulk. With "prio" the
// service id overtakes the queued bulk arguments of the previous call, so
// the server starts preparing earlier.
//
// Run with: go run ./examples/rpc
package main

import (
	"fmt"
	"log"

	"nmad"
)

const (
	tagCall = nmad.Tag(0x100) // service ids
	tagBulk = nmad.Tag(0x200) // argument payloads
)

// oneRPC issues a bulk-heavy call followed by a small urgent call and
// returns the virtual times at which the server saw the service id and
// finished receiving the bulk.
func oneRPC(strategy string) (idAt, bulkAt nmad.Time, err error) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		return 0, 0, err
	}
	client, err := cl.Engine(0, nmad.WithStrategy(strategy))
	if err != nil {
		return 0, 0, err
	}
	server, err := cl.Engine(1, nmad.WithStrategy(strategy))
	if err != nil {
		return 0, 0, err
	}

	cl.Spawn("client", func(p *nmad.Proc) {
		g := client.Gate(1)
		// A previous call's bulk arguments: 16 KB chunks that keep the
		// NIC busy...
		for i := 0; i < 6; i++ {
			g.Isend(p, tagBulk, make([]byte, 16<<10))
		}
		// ...then the next call arrives: its service id must not wait
		// behind all that bulk.
		g.Isend(p, tagCall, []byte("svc:matrix_multiply"), nmad.Priority())
	})

	cl.Spawn("server", func(p *nmad.Proc) {
		g := server.Gate(0)
		idReq := g.Irecv(p, tagCall, make([]byte, 64))
		bulkReqs := make([]*nmad.RecvRequest, 6)
		for i := range bulkReqs {
			bulkReqs[i] = g.Irecv(p, tagBulk, make([]byte, 16<<10))
		}
		for {
			if idAt == 0 && idReq.Test() {
				idAt = p.Now() // the server can start preparing now
			}
			done := true
			for _, r := range bulkReqs {
				done = done && r.Test()
			}
			if done && idReq.Test() {
				bulkAt = p.Now()
				return
			}
			p.Sleep(nmad.Time(500)) // poll every 0.5 µs
		}
	})

	if err := cl.Run(); err != nil {
		return 0, 0, err
	}
	return idAt, bulkAt, nil
}

func main() {
	fmt.Println("RPC fragment scheduling: when does the service id reach the server?")
	fmt.Println()
	for _, strategy := range []string{"aggreg", "prio"} {
		idAt, bulkAt, err := oneRPC(strategy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("strategy %-7s service id at %9v   all bulk at %9v   head start %v\n",
			strategy, idAt, bulkAt, bulkAt-idAt)
	}
	fmt.Println()
	fmt.Println("with 'prio' the urgent fragment preempts queued bulk wrappers, so the")
	fmt.Println("server overlaps its preparation with the argument transfer — the RPC")
	fmt.Println("pattern the paper says plain MPI cannot express.")
}
