// Stencil: a 2-D heat-diffusion solver (Jacobi iteration) on a ring of
// MAD-MPI ranks — the classic halo-exchange mini-app. Each rank owns a
// horizontal band of the grid and exchanges one halo row with each
// neighbour per iteration using Sendrecv; convergence is checked with
// Allreduce(max).
//
// The point of running it here: halo traffic is many small messages per
// iteration, the workload class the paper's engine optimizes. The example
// prints the converged field summary plus the engine's aggregation
// counters for rank 0.
//
// Run with: go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"nmad"
)

const (
	ranks  = 4
	rows   = 64 // interior rows per rank
	cols   = 96
	maxIt  = 500
	epsTol = 1e-3
)

// band is one rank's slab: rows+2 x cols, with halo rows 0 and rows+1.
type band struct {
	cur, next []float64
}

func newBand(rank int) *band {
	b := &band{
		cur:  make([]float64, (rows+2)*cols),
		next: make([]float64, (rows+2)*cols),
	}
	// Boundary condition: a hot strip on the global top edge.
	if rank == 0 {
		for c := cols / 4; c < 3*cols/4; c++ {
			b.cur[0*cols+c] = 100
			b.next[0*cols+c] = 100
		}
	}
	return b
}

func (b *band) at(r, c int) float64 { return b.cur[r*cols+c] }

// step runs one Jacobi sweep over the interior and returns the largest
// point change.
func (b *band) step() float64 {
	maxDelta := 0.0
	for r := 1; r <= rows; r++ {
		for c := 1; c < cols-1; c++ {
			v := 0.25 * (b.at(r-1, c) + b.at(r+1, c) + b.at(r, c-1) + b.at(r, c+1))
			if d := math.Abs(v - b.at(r, c)); d > maxDelta {
				maxDelta = d
			}
			b.next[r*cols+c] = v
		}
	}
	b.cur, b.next = b.next, b.cur
	return maxDelta
}

// rowBytes views one grid row as bytes for transport (the simulation
// moves bytes; the float64 row is 8*cols of them).
func rowBytes(grid []float64, r int) []byte {
	row := grid[r*cols : (r+1)*cols]
	out := make([]byte, 8*len(row))
	for i, v := range row {
		bits := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			out[8*i+k] = byte(bits >> (8 * k))
		}
	}
	return out
}

func setRow(grid []float64, r int, raw []byte) {
	for i := 0; i < cols; i++ {
		var bits uint64
		for k := 0; k < 8; k++ {
			bits |= uint64(raw[8*i+k]) << (8 * k)
		}
		grid[r*cols+i] = math.Float64frombits(bits)
	}
}

func main() {
	cl, err := nmad.NewCluster(ranks, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		log.Fatal(err)
	}
	mpis := make([]*nmad.MPI, ranks)
	for i := range mpis {
		if mpis[i], err = cl.MPI(i); err != nil {
			log.Fatal(err)
		}
	}

	results := make([]float64, ranks) // final residual per rank
	iters := make([]int, ranks)

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		m := mpis[rank]
		cl.Spawn(fmt.Sprintf("rank%d", rank), func(p *nmad.Proc) {
			c := m.CommWorld()
			b := newBand(rank)
			up, down := rank-1, rank+1

			halo := make([]byte, 8*cols)
			res := 1.0
			it := 0
			for ; it < maxIt && res > epsTol; it++ {
				// Exchange halos with both neighbours. Edge ranks keep
				// their fixed boundary rows.
				if up >= 0 {
					if _, err := c.Sendrecv(p, rowBytes(b.cur, 1), up, 0, halo, up, 1); err != nil {
						log.Fatal(err)
					}
					setRow(b.cur, 0, halo)
				}
				if down < ranks {
					if _, err := c.Sendrecv(p, rowBytes(b.cur, rows), down, 1, halo, down, 0); err != nil {
						log.Fatal(err)
					}
					setRow(b.cur, rows+1, halo)
				}
				local := b.step()
				// Global convergence: the max residual across ranks.
				global := make([]float64, 1)
				if err := c.Allreduce(p, []float64{local}, global, nmad.OpMax); err != nil {
					log.Fatal(err)
				}
				res = global[0]
			}
			results[rank] = res
			iters[rank] = it
		})
	}

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("heat diffusion on a %dx%d grid over %d ranks\n", ranks*rows, cols, ranks)
	if results[0] <= epsTol {
		fmt.Printf("converged to residual %.4g after %d iterations (virtual time %v)\n",
			results[0], iters[0], cl.Now())
	} else {
		fmt.Printf("stopped at the %d-iteration cap, residual %.4g (virtual time %v)\n",
			iters[0], results[0], cl.Now())
	}
	for r := 1; r < ranks; r++ {
		if iters[r] != iters[0] {
			log.Fatalf("rank %d ran %d iterations, rank 0 ran %d: collectives out of sync", r, iters[r], iters[0])
		}
	}
	st := mpis[0].Engine().Stats()
	fmt.Printf("rank0 engine: %d wrappers in %d physical packets (aggregation ratio %.2f)\n",
		st.Submitted, st.OutputPackets, st.AggregationRatio())
	fmt.Printf("halo traffic per iteration: %d messages of %d bytes + 2 reduction rounds\n",
		2*2*(ranks-1), 8*cols)
	fmt.Println()
	fmt.Println("note the ratio of 1.0: a synchronous request-reply pattern never leaves a")
	fmt.Println("backlog in the window, so there is nothing to aggregate — and per the paper's")
	fmt.Println("§5.1 the engine then costs only its constant ~0.2µs per message.")
}
