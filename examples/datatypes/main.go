// Datatypes: the paper's §5.3 experiment as an application. A message
// described by an MPI indexed datatype — alternating small (64 B) and
// large (256 KB) blocks — travels two ways:
//
//  1. the MAD-MPI way: the flattened layout rides the engine's vector
//     path as one multi-segment wrapper (Gate.Isendv under the hood);
//     the body streams zero-copy straight out of — and back into — the
//     scattered blocks;
//  2. the pack way (what MPICH does internally): copy everything into a
//     contiguous staging buffer, send it, copy it back out on the other
//     side. Here the application does the packing itself, and the two
//     extra full-size memory copies show up directly in the transfer
//     time.
//
// Run with: go run ./examples/datatypes
package main

import (
	"fmt"
	"log"

	"nmad"
)

const (
	smallBlock = 64
	largeBlock = 256 << 10
	gap        = 64 // the blocks are scattered: gaps make the layout non-contiguous
	pairs      = 4
	total      = pairs * (smallBlock + largeBlock)
	extent     = smallBlock + gap + largeBlock + gap // one element's memory span
	bufLen     = pairs * extent
)

// paperDatatype builds the Figure 4 layout: a small block, a gap, a large
// block, and a trailing gap before the next element (MPI_Type_create_resized
// over an hindexed type).
func paperDatatype() nmad.Datatype {
	inner := nmad.Hindexed(
		[]int{smallBlock, largeBlock},
		[]int{0, smallBlock + gap},
		nmad.ByteType,
	)
	return nmad.Resized(inner, extent)
}

func viaDatatype() (nmad.Time, error) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		return 0, err
	}
	m0, err := cl.MPI(0)
	if err != nil {
		return 0, err
	}
	m1, err := cl.MPI(1)
	if err != nil {
		return 0, err
	}
	dt := paperDatatype()
	var done nmad.Time
	cl.Spawn("rank0", func(p *nmad.Proc) {
		if err := m0.CommWorld().SendTyped(p, make([]byte, bufLen), dt, pairs, 1, 0); err != nil {
			log.Fatal(err)
		}
	})
	cl.Spawn("rank1", func(p *nmad.Proc) {
		if _, err := m1.CommWorld().RecvTyped(p, make([]byte, bufLen), dt, pairs, 0, 0); err != nil {
			log.Fatal(err)
		}
		done = p.Now()
	})
	if err := cl.Run(); err != nil {
		return 0, err
	}
	st := m0.Engine().Stats()
	fmt.Printf("  engine: %d rendezvous bodies zero-copy, %d control entries piggybacked on data packets\n",
		st.RdvCompleted, st.CtrlPiggybacked)
	return done, nil
}

func viaPack() (nmad.Time, error) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		return 0, err
	}
	e0, err := cl.Engine(0)
	if err != nil {
		return 0, err
	}
	e1, err := cl.Engine(1)
	if err != nil {
		return 0, err
	}
	// The pack cost is host memcpy time: total bytes at 1.2 GB/s, charged
	// as compute time on the process (what MPICH's dataloop engine pays).
	memcpyCost := func(n int) nmad.Time {
		return nmad.Time(float64(n) / 1.2e9 * 1e9)
	}
	var done nmad.Time
	cl.Spawn("rank0", func(p *nmad.Proc) {
		p.Sleep(memcpyCost(total)) // pack into the staging buffer
		if err := e0.Gate(1).Send(p, 1, make([]byte, total)); err != nil {
			log.Fatal(err)
		}
	})
	cl.Spawn("rank1", func(p *nmad.Proc) {
		if _, err := e1.Gate(0).Recv(p, 1, make([]byte, total)); err != nil {
			log.Fatal(err)
		}
		p.Sleep(memcpyCost(total)) // unpack to the final destination
		done = p.Now()
	})
	if err := cl.Run(); err != nil {
		return 0, err
	}
	return done, nil
}

func main() {
	fmt.Printf("indexed datatype: %d x (%dB + %dKB) = %d KB total, over MX/Myri-10G\n\n",
		pairs, smallBlock, largeBlock>>10, total>>10)

	fmt.Println("MAD-MPI vector path (one iovec wrapper, engine optimizes):")
	madTime, err := viaDatatype()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  transfer time: %v\n\n", madTime)

	fmt.Println("pack / send / unpack (the MPICH approach):")
	packTime, err := viaPack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  transfer time: %v\n\n", packTime)

	fmt.Printf("gain: %.0f%% — the two full-size staging copies are gone (paper §5.3: ~70%%)\n",
		100*(1-float64(madTime)/float64(packTime)))
}
