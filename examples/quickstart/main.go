// Quickstart: a two-node cluster on a simulated Myri-10G rail, showing
// the two application interfaces of the engine (paper §3.4):
//
//   - the Madeleine-style incremental pack/unpack interface — a message
//     made of several pieces located anywhere in user space;
//   - the tagged Isend/Irecv/Wait interface.
//
// It finishes by dumping the optimizer counters: even this tiny program
// shows packets from different flows sharing physical packets.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nmad"
)

func main() {
	cl, err := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G()))
	if err != nil {
		log.Fatal(err)
	}
	e0, err := cl.Engine(0)
	if err != nil {
		log.Fatal(err)
	}
	e1, err := cl.Engine(1)
	if err != nil {
		log.Fatal(err)
	}

	const tagPack, tagBurst = nmad.Tag(1), nmad.Tag(2)

	cl.Spawn("node0", func(p *nmad.Proc) {
		g := e0.Gate(1)

		// Interface 1: incremental message building. Three pieces from
		// different places in "user space", one logical message.
		m := g.BeginPack(p, tagPack)
		m.Pack(p, []byte("piece-one "))
		m.Pack(p, []byte("piece-two "))
		m.Pack(p, []byte("piece-three"))
		if err := m.End(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node0: packed message sent\n", p.Now())

		// Interface 2: a burst of tagged sends. Submitted back to back,
		// so the optimizer coalesces whatever the NIC hasn't taken yet.
		reqs := make([]*nmad.SendRequest, 8)
		for i := range reqs {
			reqs[i] = g.Isend(p, tagBurst, []byte(fmt.Sprintf("burst message %d", i)))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("[%8v] node0: burst of %d sends complete\n", p.Now(), len(reqs))
	})

	cl.Spawn("node1", func(p *nmad.Proc) {
		g := e1.Gate(0)

		in := g.BeginUnpack(p, tagPack)
		a := make([]byte, 10)
		b := make([]byte, 10)
		c := make([]byte, 11)
		in.Unpack(p, a)
		in.Unpack(p, b)
		in.Unpack(p, c)
		if err := in.End(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node1: unpacked %q %q %q\n", p.Now(), a, b, c)

		for i := 0; i < 8; i++ {
			buf := make([]byte, 32)
			n, err := g.Recv(p, tagBurst, buf)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%8v] node1: received %q\n", p.Now(), buf[:n])
		}
	})

	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	st := e0.Stats()
	fmt.Println()
	fmt.Println("optimizer counters on node0:")
	fmt.Printf("  wrappers submitted:     %d\n", st.Submitted)
	fmt.Printf("  physical packets:       %d\n", st.OutputPackets)
	fmt.Printf("  aggregated packets:     %d (max %d wrappers in one)\n", st.AggregatedPackets, st.MaxEntriesPerPacket)
	fmt.Printf("  aggregation ratio:      %.2f wrappers/packet\n", st.AggregationRatio())
	fmt.Printf("  total virtual time:     %v\n", cl.Now())
}
