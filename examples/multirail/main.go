// Multirail: the paper's multi-rail strategy (§4, §7) — one logical
// message split "in a heterogeneous manner" across a Myri-10G rail
// (1250 MB/s) and a Quadrics rail (900 MB/s). The engine's split
// strategy shares each rendezvous body between the rails proportionally
// to their nominal bandwidths, and the receive path reassembles the
// chunks.
//
// The program transfers the same large buffers over one rail and over
// both, and prints the achieved bandwidth and the per-rail byte split.
//
// Run with: go run ./examples/multirail
package main

import (
	"fmt"
	"log"

	"nmad"
)

func transfer(profiles []nmad.Profile, strategy string, size int) (nmad.Time, []int64, error) {
	cl, err := nmad.NewCluster(2, nmad.WithRails(profiles...))
	if err != nil {
		return 0, nil, err
	}
	src, err := cl.Engine(0, nmad.WithStrategy(strategy))
	if err != nil {
		return 0, nil, err
	}
	dst, err := cl.Engine(1, nmad.WithStrategy(strategy))
	if err != nil {
		return 0, nil, err
	}
	var done nmad.Time
	cl.Spawn("sender", func(p *nmad.Proc) {
		if err := src.Gate(1).Send(p, 1, make([]byte, size)); err != nil {
			log.Fatal(err)
		}
	})
	cl.Spawn("receiver", func(p *nmad.Proc) {
		if _, err := dst.Gate(0).Recv(p, 1, make([]byte, size)); err != nil {
			log.Fatal(err)
		}
		done = p.Now()
	})
	if err := cl.Run(); err != nil {
		return 0, nil, err
	}
	return done, src.Stats().PerDriverBytes, nil
}

func main() {
	const size = 16 << 20
	fmt.Printf("transferring %d MB...\n\n", size>>20)

	one, _, err := transfer([]nmad.Profile{nmad.MX10G()}, "aggreg", size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MX only:        %10v   %7.0f MB/s\n", one, float64(size)/one.Seconds()/1e6)

	two, perRail, err := transfer([]nmad.Profile{nmad.MX10G(), nmad.QsNetII()}, "split", size)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MX + Quadrics:  %10v   %7.0f MB/s\n", two, float64(size)/two.Seconds()/1e6)
	fmt.Printf("\nper-rail payload bytes: MX=%d Quadrics=%d (%.0f%% / %.0f%%)\n",
		perRail[0], perRail[1],
		100*float64(perRail[0])/float64(perRail[0]+perRail[1]),
		100*float64(perRail[1])/float64(perRail[0]+perRail[1]))
	fmt.Printf("speedup: %.2fx (ideal from bandwidth sum: %.2fx)\n",
		float64(one)/float64(two), (1250.0+900.0)/1250.0)
}
