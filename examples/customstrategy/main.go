// Customstrategy: the scheduling SPI in action — a user-written
// optimization strategy, implemented entirely against package sched and
// registered through the facade, scheduling a live exchange.
//
// The strategy here is "biggest-first": each time a rail idles it elects
// the largest wrapper in the window, then packs smaller ones around it
// while the train fits the rail's aggregation budget. Per-flow delivery
// order is untouched — the receiver's resequencing layer restores it —
// so the reordering is free of semantic cost, exactly the property the
// paper's optimizer exploits.
//
// Both plug-in routes are shown: by registry name (engine 0) and by
// passing the Strategy value directly (engine 1).
//
// Run with: go run ./examples/customstrategy
package main

import (
	"fmt"
	"log"

	"nmad"
	"nmad/sched"
)

// biggestFirst implements sched.Strategy and the optional Completer
// feedback hook. No engine internals are visible: elections are built
// purely from the Window view and the rail report.
type biggestFirst struct {
	packets int // completed physical packets (via OnComplete)
	entries int // wrappers they carried
}

func (s *biggestFirst) Name() string { return "biggest-first" }

func (s *biggestFirst) Elect(w sched.Window, rail sched.RailInfo) *sched.Election {
	// Find the largest wrapper the rail can carry.
	var seed sched.Wrapper
	found := false
	w.Scan(func(pw sched.Wrapper) bool {
		if pw.Segments <= rail.Caps.MaxSegments && (!found || pw.Len > seed.Len) {
			seed, found = pw, true
		}
		return true
	})
	if !found {
		return nil
	}
	el := new(sched.Election)
	el.Pick(seed)
	// Pack the rest of the budget with whatever fits, submission order.
	w.Scan(func(pw sched.Wrapper) bool {
		if pw.Ref != seed.Ref && el.Fits(pw, rail) {
			el.Pick(pw)
		}
		return el.Segments() < rail.Caps.MaxSegments
	})
	return el
}

// OnComplete receives the functional feedback of every finished packet.
func (s *biggestFirst) OnComplete(c sched.Completion) {
	if c.Entries > 0 {
		s.packets++
		s.entries += c.Entries
	}
}

func main() {
	// Route 1: register by name through the facade. Registration errors
	// (duplicate names) are reported, not panicked.
	if err := nmad.RegisterStrategy("biggest-first", func() nmad.Strategy {
		return new(biggestFirst)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered strategies:", nmad.Strategies())

	cl, err := nmad.NewCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	e0, err := cl.Engine(0, nmad.WithStrategy("biggest-first"))
	if err != nil {
		log.Fatal(err)
	}
	// Route 2: hand the engine a Strategy value directly — no registry.
	mine := new(biggestFirst)
	e1, err := cl.Engine(1, nmad.WithStrategy(mine))
	if err != nil {
		log.Fatal(err)
	}

	// A burst of mixed-size messages on one flow; the strategy reorders
	// elections, the receiver restores flow order.
	sizes := []int{100, 8 << 10, 300, 2 << 10, 60, 16 << 10, 500}
	cl.Spawn("sender", func(p *nmad.Proc) {
		var reqs nmad.RequestGroup
		for i, n := range sizes {
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(i)
			}
			reqs.Add(e0.Gate(1).Isend(p, 1, data))
		}
		if err := reqs.Wait(p); err != nil {
			log.Fatal(err)
		}
	})
	cl.Spawn("receiver", func(p *nmad.Proc) {
		for i, n := range sizes {
			buf := make([]byte, n)
			if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
				log.Fatal(err)
			}
			for _, b := range buf {
				if b != byte(i) {
					log.Fatalf("message %d arrived out of flow order", i)
				}
			}
		}
	})
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	st := e0.Stats()
	fmt.Printf("\n%d messages in %d physical packets (%d aggregated)\n",
		st.Submitted, st.OutputPackets, st.AggregatedPackets)
	fmt.Printf("engine 0 strategy: %s — all flows delivered in order\n", e0.StrategyName())
	fmt.Printf("engine 1 strategy: %s (plugged in as a value)\n", e1.StrategyName())
}
