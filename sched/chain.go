package sched

import "strings"

// Chain composes strategies into a fallback stack: Elect tries each in
// order and the first non-empty election wins. Lifecycle hooks fan out
// to every member that implements them, and body planning is delegated
// to the first member that is a BodyPlanner (single-rail streaming when
// none is). An empty name derives one from the members.
func Chain(name string, members ...Strategy) Strategy {
	if name == "" {
		parts := make([]string, len(members))
		for i, m := range members {
			parts[i] = m.Name()
		}
		name = strings.Join(parts, "+")
	}
	return &chain{name: name, members: members}
}

type chain struct {
	name    string
	members []Strategy
}

func (c *chain) Name() string { return c.name }

func (c *chain) Elect(w Window, rail RailInfo) *Election {
	for _, m := range c.members {
		if el := m.Elect(w, rail); !el.Empty() {
			return el
		}
	}
	return nil
}

func (c *chain) PlanBody(rails []RailInfo, size int) []BodyShare {
	for _, m := range c.members {
		if bp, ok := m.(BodyPlanner); ok {
			return bp.PlanBody(rails, size)
		}
	}
	return SingleRail(rails, size)
}

func (c *chain) OnAttach(rail RailInfo) {
	for _, m := range c.members {
		if a, ok := m.(Attacher); ok {
			a.OnAttach(rail)
		}
	}
}

func (c *chain) OnComplete(cp Completion) {
	for _, m := range c.members {
		if cc, ok := m.(Completer); ok {
			cc.OnComplete(cp)
		}
	}
}
