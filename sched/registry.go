package sched

import (
	"fmt"
	"sort"
	"sync"
)

// The strategy registry — the paper's "extensible and programmable set
// of strategies", selectable by name at engine construction. The RWMutex
// makes registration and lookup safe for concurrent engine construction
// (many clusters assembled from parallel tests or goroutines). That is
// the lock's entire scope: Register/New/Names run at construction time
// only, so no engine hot path — election, completion, receive dispatch —
// ever touches it.
var (
	registryMu sync.RWMutex
	registry   = map[string]func() Strategy{}
)

// Register adds a constructor to the registry. The constructor runs once
// per engine selecting the name, so stateful strategies get one instance
// each. Registering a name twice returns an error: strategy names are
// global configuration keys.
func Register(name string, mk func() Strategy) error {
	if name == "" || mk == nil {
		return fmt.Errorf("sched: Register needs a name and a constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sched: duplicate strategy %q", name)
	}
	registry[name] = mk
	return nil
}

// mustRegister installs the package built-ins at init time; a duplicate
// here is a programming error, so it panics.
func mustRegister(name string, mk func() Strategy) {
	if err := Register(name, mk); err != nil {
		panic(err)
	}
}

// New instantiates a registered strategy by name.
func New(name string) (Strategy, error) {
	registryMu.RLock()
	mk, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sched: unknown strategy %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered strategies in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	mustRegister("default", func() Strategy { return defaultStrategy{} })
	mustRegister("aggreg", func() Strategy { return aggregStrategy{} })
	mustRegister("split", func() Strategy { return splitStrategy{} })
	mustRegister("prio", func() Strategy { return new(prioStrategy) })
	mustRegister("adaptive", func() Strategy { return newAdaptive() })
}
