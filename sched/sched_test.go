package sched

import (
	"strings"
	"testing"
)

// fakeWindow drives strategies without an engine: the SPI is testable in
// isolation, which is half the point of having it.
type fakeWindow struct {
	peer int
	ws   []Wrapper
}

func (f fakeWindow) Peer() int    { return f.peer }
func (f fakeWindow) Pending() int { return len(f.ws) }
func (f fakeWindow) Credits() int { return -1 }

func (f fakeWindow) Scan(visit func(Wrapper) bool) {
	for _, w := range f.ws {
		if !visit(w) {
			return
		}
	}
}

const testHeader = 24 // mirrors the engine's entry header size

func mkw(payload, paySegs int, fl Flags) Wrapper {
	return Wrapper{
		Len:      payload,
		WireSize: testHeader + payload,
		Segments: 1 + paySegs,
		Flags:    fl,
		Ref:      new(int),
	}
}

func testRail(maxSegs, rdvThreshold int, nominal, sampled float64) RailInfo {
	r := RailInfo{Index: 0, Name: "fake", Sampled: sampled}
	r.Caps.MaxSegments = maxSegs
	r.Caps.RdvThreshold = rdvThreshold
	r.Caps.Bandwidth = nominal
	return r
}

func tags(el *Election) []uint64 {
	var out []uint64
	for _, w := range el.Wrappers() {
		out = append(out, w.Tag)
	}
	return out
}

func TestElectionAccounting(t *testing.T) {
	el := new(Election)
	if !el.Empty() || el.Len() != 0 {
		t.Fatal("zero election must be empty")
	}
	var nilEl *Election
	if !nilEl.Empty() {
		t.Fatal("nil election must read as empty")
	}
	a, b := mkw(100, 1, 0), mkw(50, 2, Priority)
	el.Pick(a).Pick(b)
	if el.Len() != 2 || el.WireSize() != a.WireSize+b.WireSize || el.Segments() != a.Segments+b.Segments {
		t.Errorf("accounting: len=%d wire=%d segs=%d", el.Len(), el.WireSize(), el.Segments())
	}
	rail := testRail(8, 32<<10, 1e9, 0)
	if !el.Fits(mkw(10, 1, 0), rail) {
		t.Error("small wrapper should fit")
	}
	if el.Fits(mkw(10, 6, 0), rail) {
		t.Error("wrapper overflowing the gather list must not fit")
	}
	if el.Fits(mkw(40<<10, 1, 0), rail) {
		t.Error("wrapper overflowing the byte budget must not fit")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"default", "aggreg", "split", "prio", "adaptive"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v, missing built-in %q", names, want)
		}
	}
	if err := Register("aggreg", func() Strategy { return defaultStrategy{} }); err == nil {
		t.Error("duplicate registration must error")
	}
	if err := Register("", nil); err == nil {
		t.Error("empty registration must error")
	}
	if _, err := New("no-such-strategy"); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Errorf("New(unknown) = %v", err)
	}
	s, err := New("aggreg")
	if err != nil || s.Name() != "aggreg" {
		t.Errorf("New(aggreg) = %v, %v", s, err)
	}
}

func TestAggregElection(t *testing.T) {
	rail := testRail(16, 4<<10, 1e9, 0)
	bulk := mkw(3<<10, 1, 0)
	small1 := mkw(100, 1, 0)
	ctrl := mkw(0, 0, Control)
	small2 := mkw(100, 1, 0)
	bulk.Tag, small1.Tag, ctrl.Tag, small2.Tag = 1, 2, 3, 4
	w := fakeWindow{ws: []Wrapper{bulk, small1, ctrl, small2}}

	el := aggregStrategy{}.Elect(w, rail)
	got := tags(el)
	// Control jumps to the front; the bulk wrapper fits, smalls follow.
	want := []uint64{3, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("elected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elected %v, want %v", got, want)
		}
	}
}

func TestAggregReordersPastMisfit(t *testing.T) {
	rail := testRail(16, 2<<10, 1e9, 0)
	big := mkw(3<<10, 1, 0) // exceeds the aggregation budget alone
	small := mkw(64, 1, 0)
	big.Tag, small.Tag = 1, 2
	w := fakeWindow{ws: []Wrapper{big, small}}

	el := aggregStrategy{}.Elect(w, rail)
	// The small wrapper is pulled past the misfit...
	if got := tags(el); len(got) != 1 || got[0] != 2 {
		t.Fatalf("elected %v, want [2]", got)
	}
	// ...and the lone misfit still goes out by itself (progress).
	el = aggregStrategy{}.Elect(fakeWindow{ws: []Wrapper{big}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 1 {
		t.Fatalf("elected %v, want [1]", got)
	}
}

func TestDefaultSkipsUngatherable(t *testing.T) {
	rail := testRail(2, 32<<10, 1e9, 0)
	wide := mkw(100, 4, 0) // 5 segments on a 2-segment rail
	ok := mkw(100, 1, 0)
	wide.Tag, ok.Tag = 1, 2
	el := defaultStrategy{}.Elect(fakeWindow{ws: []Wrapper{wide, ok}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 2 {
		t.Fatalf("elected %v, want [2]", got)
	}
	if el := (defaultStrategy{}).Elect(fakeWindow{ws: []Wrapper{wide}}, rail); !el.Empty() {
		t.Error("nothing sendable: election must be empty")
	}
}

func TestPrioPreemptsBulk(t *testing.T) {
	rail := testRail(16, 32<<10, 1e9, 0)
	bulk := mkw(8<<10, 1, 0)
	urgent := mkw(16, 1, Priority)
	bulk.Tag, urgent.Tag = 1, 2
	el := new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{bulk, urgent}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 2 {
		t.Fatalf("elected %v, want the urgent wrapper alone", got)
	}
	// Without urgent traffic it degrades to aggregation.
	el = new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{bulk}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 1 {
		t.Fatalf("elected %v, want [1]", got)
	}
}

func TestPrioSkipsUnfitUrgentAcrossFlows(t *testing.T) {
	// Regression: one oversized urgent wrapper used to abort the whole
	// urgent scan, so fittable urgent wrappers on other flows fell
	// through to the aggregation fallback and departed mixed with bulk.
	rail := testRail(16, 16<<10, 1e9, 0)
	huge := mkw(16<<10-10, 1, Priority) // wire size 24+16374 > the 16K budget
	small := mkw(16, 1, Priority)
	bulk := mkw(8<<10, 1, 0)
	huge.Tag, small.Tag, bulk.Tag = 1, 2, 3
	el := new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{huge, small, bulk}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 2 {
		t.Fatalf("elected %v, want the fitting urgent wrapper [2] alone", got)
	}
}

func TestPrioHoldsOrderedFlowBehindUnfitHead(t *testing.T) {
	// Skip-and-continue must not leapfrog within one ordered flow: a
	// later urgent wrapper on the blocked tag would only sit in the
	// receiver's resequencing buffer behind the hole. Other flows stay
	// eligible.
	rail := testRail(16, 16<<10, 1e9, 0)
	head := mkw(16<<10-10, 1, Priority)
	next := mkw(16, 1, Priority)
	other := mkw(16, 1, Priority)
	head.Tag, head.Seq = 7, 0
	next.Tag, next.Seq = 7, 1
	other.Tag = 9
	el := new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{head, next, other}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 9 {
		t.Fatalf("elected %v, want only the other flow [9]", got)
	}
	// An unordered urgent wrapper on the blocked tag has no sequence and
	// stays eligible.
	ctrl := mkw(0, 0, Priority|Unordered)
	ctrl.Tag = 7
	el = new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{head, ctrl}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 7 {
		t.Fatalf("elected %v, want the unordered control wrapper", got)
	}
}

func TestPrioLoneUnfitUrgentStillDeparts(t *testing.T) {
	// A wrapper whose wire size exceeds the aggregation budget but whose
	// payload stays under the rendezvous threshold never converts to
	// rendezvous and never fits an election — it must go out alone
	// instead of starving behind a perpetually refilled bulk stream.
	rail := testRail(16, 16<<10, 1e9, 0)
	huge := mkw(16<<10-10, 1, Priority)
	bulk := mkw(8<<10, 1, 0)
	huge.Tag, bulk.Tag = 1, 3
	el := new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{huge, bulk}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 1 {
		t.Fatalf("elected %v, want the oversized urgent wrapper [1] alone", got)
	}
}

func TestPrioCapsFallbackWhileUrgentPending(t *testing.T) {
	// Regression: with urgent traffic pending but ungatherable on this
	// rail, the fallback used to build full-size bulk trains — priority
	// inversion. The capped fallback keeps bulk moving in short trains.
	rail := testRail(8, 16<<10, 1e9, 0)
	wide := mkw(100, 15, Priority) // 16 segments on an 8-segment rail
	wide.Tag = 1
	ws := []Wrapper{wide}
	for i := 0; i < 6; i++ {
		b := mkw(1<<10, 1, 0)
		b.Tag = uint64(10 + i)
		ws = append(ws, b)
	}
	el := new(prioStrategy).Elect(fakeWindow{ws: ws}, rail)
	if el.Empty() {
		t.Fatal("bulk must keep flowing while the urgent wrapper waits for a wider rail")
	}
	for _, w := range el.Wrappers() {
		if w.Urgent() {
			t.Fatalf("elected %v: the ungatherable urgent wrapper must stay behind", tags(el))
		}
	}
	if cap := (16 << 10) / 4; el.WireSize() > cap {
		t.Errorf("fallback train carries %dB of wire, want <= the %dB headroom cap", el.WireSize(), cap)
	}
	// Without urgent traffic the fallback budget is the full threshold.
	full := new(prioStrategy).Elect(fakeWindow{ws: ws[1:]}, rail)
	if full.WireSize() <= el.WireSize() {
		t.Errorf("unconstrained fallback (%dB) should out-aggregate the capped one (%dB)", full.WireSize(), el.WireSize())
	}
}

func validateCover(t *testing.T, plan []BodyShare, size int) {
	t.Helper()
	off := 0
	for _, s := range plan {
		if s.Offset != off || s.Size <= 0 {
			t.Fatalf("plan %v does not cover [0,%d) in order", plan, size)
		}
		off += s.Size
	}
	if off != size {
		t.Fatalf("plan %v covers %d of %d bytes", plan, off, size)
	}
}

func TestSplitPlanProportional(t *testing.T) {
	fast := testRail(16, 32<<10, 3e9, 0)
	slow := testRail(16, 32<<10, 1e9, 0)
	fast.Index, slow.Index = 0, 1
	rails := []RailInfo{fast, slow}

	size := 4 << 20
	plan := splitStrategy{}.PlanBody(rails, size)
	validateCover(t, plan, size)
	if len(plan) != 2 {
		t.Fatalf("plan %v, want two shares", plan)
	}
	ratio := float64(plan[0].Size) / float64(plan[1].Size)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("share ratio %.2f, want ~3 (bandwidth-proportional)", ratio)
	}

	// Small bodies stay on the best rail.
	plan = splitStrategy{}.PlanBody(rails, 1<<10)
	if len(plan) != 1 || plan[0].Rail != 0 {
		t.Errorf("small-body plan %v, want single share on rail 0", plan)
	}

	// The sampled figure overrides the nominal one.
	congested := fast
	congested.Sampled = 0.5e9
	plan = splitStrategy{}.PlanBody([]RailInfo{congested, slow}, size)
	validateCover(t, plan, size)
	if plan[0].Size >= plan[1].Size {
		t.Errorf("plan %v: congested rail must get the smaller share", plan)
	}
}

func TestChainFallback(t *testing.T) {
	c := Chain("", new(prioStrategy), defaultStrategy{})
	if c.Name() != "prio+default" {
		t.Errorf("derived name %q", c.Name())
	}
	rail := testRail(16, 32<<10, 1e9, 0)
	bulk := mkw(100, 1, 0)
	bulk.Tag = 7
	el := c.Elect(fakeWindow{ws: []Wrapper{bulk}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 7 {
		t.Fatalf("chain elected %v", got)
	}
	if el := c.Elect(fakeWindow{}, rail); !el.Empty() {
		t.Error("empty window must elect nothing")
	}
	// Body planning falls through to the first planner member; with none,
	// single rail.
	rails := []RailInfo{rail}
	plan := c.(BodyPlanner).PlanBody(rails, 1<<20)
	if len(plan) != 1 || plan[0].Size != 1<<20 {
		t.Errorf("plannerless chain plan %v", plan)
	}
	c2 := Chain("x", new(prioStrategy), splitStrategy{})
	fast, slow := testRail(16, 32<<10, 2e9, 0), testRail(16, 32<<10, 2e9, 0)
	fast.Index, slow.Index = 0, 1
	plan = c2.(BodyPlanner).PlanBody([]RailInfo{fast, slow}, 4<<20)
	if len(plan) != 2 {
		t.Errorf("chain must delegate to split's planner, got %v", plan)
	}
}

func TestAccumulateZeroThresholdStillAggregates(t *testing.T) {
	// RdvThreshold 0 is legal (an eager-only rail). It must mean "no byte
	// budget", not "no budget at all": the buggy version rejected every
	// wrapper from FitsWithin and degenerated to one-wrapper packets
	// through the progress fallback.
	rail := testRail(16, 0, 1e9, 0)
	var ws []Wrapper
	for i := 0; i < 4; i++ {
		w := mkw(128, 1, 0)
		w.Tag = uint64(i + 1)
		ws = append(ws, w)
	}
	ctrl := mkw(0, 0, Control)
	ctrl.Tag = 9
	ws = append(ws, ctrl)
	for _, s := range []Strategy{aggregStrategy{}, newAdaptive()} {
		el := s.Elect(fakeWindow{ws: ws}, rail)
		if el.Len() != len(ws) {
			t.Errorf("%s elected %d of %d wrappers on a RdvThreshold=0 rail", s.Name(), el.Len(), len(ws))
		}
	}
	// The semantics live in Fits/FitsWithin, so prio's urgent pass (and
	// any custom strategy budgeting with Fits) works on threshold-0
	// rails too.
	if !new(Election).Fits(ws[0], rail) {
		t.Error("Fits must treat a zero byte budget as unlimited")
	}
	bulk := mkw(8<<10, 1, 0)
	urgent := mkw(16, 1, Priority)
	bulk.Tag, urgent.Tag = 1, 42
	el := new(prioStrategy).Elect(fakeWindow{ws: []Wrapper{bulk, urgent}}, rail)
	if got := tags(el); len(got) != 1 || got[0] != 42 {
		t.Errorf("prio on a RdvThreshold=0 rail elected %v, want the urgent wrapper alone", got)
	}
}

func TestAdaptiveFloorsCollapsedBudget(t *testing.T) {
	// A small threshold scaled by a collapsed bandwidth sample drops
	// below one entry header; the floor keeps control entries and small
	// data aggregable instead of forcing one-wrapper packets.
	mkws := func() []Wrapper {
		ctrl := mkw(0, 0, Control)
		ctrl.Tag = 9
		ws := []Wrapper{ctrl}
		for i := 0; i < 3; i++ {
			w := mkw(16, 1, 0)
			w.Tag = uint64(i + 1)
			ws = append(ws, w)
		}
		return ws
	}
	// Threshold 64 scaled to 16 (< one header): floored back to the
	// rail's own cap, so a control entry still aggregates with data.
	ws := mkws()
	el := newAdaptive().Elect(fakeWindow{ws: ws}, testRail(16, 64, 1e9, 1e6))
	if el.Len() < 2 {
		t.Errorf("collapsed budget elected %d wrappers; the floored budget must keep small wrappers aggregable", el.Len())
	}
	// A roomier threshold floors at adaptiveMinBudget: everything fits.
	el = newAdaptive().Elect(fakeWindow{ws: ws}, testRail(16, 512, 1e9, 1e6))
	if el.Len() != len(ws) {
		t.Errorf("512B-threshold rail elected %d of %d wrappers under the floored budget", el.Len(), len(ws))
	}
	// The floor must never inflate the budget past the rail's unscaled
	// threshold: a healthy 100B rail keeps its 100B cap (one small data
	// wrapper per train alongside control, not adaptiveMinBudget worth).
	el = newAdaptive().Elect(fakeWindow{ws: mkws()}, testRail(16, 100, 1e9, 0))
	if got := el.WireSize(); got > 100 {
		t.Errorf("healthy 100B-threshold rail elected %dB of wire, exceeding the rail's aggregation cap", got)
	}
}

func TestAdaptiveShrinksAggregationUnderCongestion(t *testing.T) {
	healthy := testRail(16, 8<<10, 1e9, 0)
	congested := testRail(16, 8<<10, 1e9, 0.4e9) // achieving 40% of nominal

	var ws []Wrapper
	for i := 0; i < 4; i++ {
		w := mkw(2<<10, 1, 0)
		w.Tag = uint64(i)
		ws = append(ws, w)
	}
	s := newAdaptive()
	full := s.Elect(fakeWindow{ws: ws}, healthy)
	short := s.Elect(fakeWindow{ws: ws}, congested)
	if full.Len() <= short.Len() {
		t.Errorf("congested rail train (%d) must be shorter than healthy (%d)", short.Len(), full.Len())
	}
	if short.Empty() {
		t.Error("congestion must never starve the rail entirely")
	}
}

func TestAdaptiveDropsCollapsedRail(t *testing.T) {
	size := 4 << 20
	// Both orderings: the collapsed rail must be avoided whether it is
	// engine rail 0 or 1 (plans carry engine indices, not slice
	// positions).
	for deadIdx := 0; deadIdx < 2; deadIdx++ {
		fast := testRail(16, 32<<10, 1e9, 1e9)
		dead := testRail(16, 32<<10, 1e9, 0.02e9) // collapsed to 2%
		fast.Index, dead.Index = 1-deadIdx, deadIdx
		rails := make([]RailInfo, 2)
		rails[fast.Index], rails[dead.Index] = fast, dead
		s := newAdaptive()
		plan := s.PlanBody(rails, size)
		validateCover(t, plan, size)
		for _, share := range plan {
			if share.Rail == deadIdx {
				t.Errorf("deadIdx=%d: plan %v routes bytes onto the collapsed rail", deadIdx, plan)
			}
		}
	}
}

func TestBestRailOnFilteredSubset(t *testing.T) {
	r2 := testRail(16, 32<<10, 2e9, 0)
	r5 := testRail(16, 32<<10, 1e9, 0)
	r2.Index, r5.Index = 2, 5
	if got := BestRail([]RailInfo{r5, r2}); got != 2 {
		t.Errorf("BestRail = %d, want engine index 2", got)
	}
	plan := SingleRail([]RailInfo{r5}, 1<<20)
	if len(plan) != 1 || plan[0].Rail != 5 {
		t.Errorf("SingleRail on a subset = %v, want rail 5", plan)
	}
}

func TestAdaptiveFeedbackLog(t *testing.T) {
	s := newAdaptive()
	s.OnAttach(testRail(16, 32<<10, 1e9, 0))
	s.OnComplete(Completion{Rail: 0, Bytes: 1000, Entries: 3, Duration: 10})
	s.OnComplete(Completion{Rail: 0, Bytes: 1 << 20, Entries: 0, Duration: 100}) // a body
	snap := s.Snapshot()
	l := snap[0]
	if !l.Attached || l.Packets != 1 || l.Bodies != 1 || l.Entries != 3 || l.Bytes != 1000+1<<20 {
		t.Errorf("feedback log %+v", l)
	}
}
