package sched

import "nmad/internal/sim"

// Strategy is the optimization function of the paper's §3.2: when a rail
// idles, the engine asks the strategy to elect the next physical packet
// out of the optimization window. Implementations see, through the
// Window view and the rail report, the inputs the paper lists — the
// number of wrappers in the window, each wrapper's characteristics
// (destination, flow tag, length, sequence number, flags), and the
// nominal and functional characteristics of the underlying network.
type Strategy interface {
	// Name identifies the strategy (the registry key for built-ins).
	Name() string
	// Elect synthesizes the next physical packet for the given rail out
	// of the window, or returns nil (or an empty election) to leave the
	// rail idle. Oversized data wrappers have already been converted to
	// rendezvous requests before Elect runs. Elections are validated by
	// the engine: stale, duplicated or physically unsendable picks are
	// ignored and their wrappers stay in the window.
	Elect(w Window, rail RailInfo) *Election
}

// BodyPlanner is implemented by strategies that control how a rendezvous
// body is distributed over the rails (the paper's multi-rail splitting,
// "possibly in a heterogeneous manner"). Strategies without it stream
// the body over the best single rail.
type BodyPlanner interface {
	// PlanBody splits size bytes into per-rail shares. Shares must cover
	// [0, size) exactly, in ascending offset order; invalid plans are
	// replaced by a single-rail plan.
	PlanBody(rails []RailInfo, size int) []BodyShare
}

// BodyShare is one rail's slice of a rendezvous body.
type BodyShare struct {
	Rail   int
	Offset int
	Size   int
}

// Attacher is an optional lifecycle hook: OnAttach runs once per rail as
// the engine binds it, before any traffic flows.
type Attacher interface {
	OnAttach(rail RailInfo)
}

// Completion is the feedback record of one finished NIC transaction: the
// functional-characteristics signal a strategy can close the paper's
// feedback loop with.
type Completion struct {
	// Rail is the rail the transaction used.
	Rail int
	// Peer is the destination node.
	Peer int
	// Bytes is the payload carried (excluding entry headers).
	Bytes int
	// Entries is the number of wrappers aggregated into the packet;
	// 0 marks a rendezvous body transaction.
	Entries int
	// Duration is the virtual time from submission to NIC completion.
	Duration sim.Time
}

// Completer is an optional lifecycle hook: OnComplete runs after the NIC
// finishes each physical packet or rendezvous body chunk the strategy's
// engine sent.
type Completer interface {
	OnComplete(c Completion)
}

// BestRail picks the rail with the highest nominal bandwidth, preferring
// RDMA-capable rails (they stream rendezvous bodies zero-copy). The
// result is the rail's engine index (RailInfo.Index), valid even when
// rails is a filtered or reordered subset.
func BestRail(rails []RailInfo) int {
	if len(rails) == 0 {
		return 0
	}
	best, bestScore := 0, -1.0
	for i, r := range rails {
		score := r.Caps.Bandwidth
		if r.Caps.RDMA {
			score *= 2
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return rails[best].Index
}

// SingleRail plans a whole body over the best single rail — the fallback
// body plan for strategies that are not BodyPlanners.
func SingleRail(rails []RailInfo, size int) []BodyShare {
	return []BodyShare{{Rail: BestRail(rails), Offset: 0, Size: size}}
}
