package sched

import (
	"nmad/internal/sim"
)

// adaptiveStrategy closes the paper's feedback loop (§3.2: strategies
// consume "the nominal and functional characteristics of the underlying
// network") using only this package's SPI — no engine internals. Two
// decisions shift with the achieved-bandwidth signal:
//
//   - Aggregation: on a rail achieving well below its nominal bandwidth
//     (congestion, a slow peer, background bodies) the byte budget of a
//     train shrinks proportionally. Long trains on a slow rail lock
//     wrappers into a queue that drains slowly; electing short trains
//     keeps the rest of the window available to healthier rails, which
//     the common submission list then load-balances onto.
//   - Body splitting: rendezvous bodies share over the rails in
//     proportion to functional bandwidth, and a rail whose achieved
//     figure has collapsed below a fraction of the best rail's is
//     dropped from the plan entirely instead of being handed a share it
//     cannot move in time.
//
// The OnAttach/OnComplete hooks feed a per-rail transaction log the
// strategy (and its tests) can inspect; the bandwidth estimate itself
// comes pre-smoothed from the engine's EWMA sampler via RailInfo.
//
// No mutex: registered strategies are instantiated per engine and every
// hook runs inside the engine's single-threaded sim.World (OnComplete
// fires once per transaction — it is hot-path). Sharing one instance
// across engines requires Options.StrategyImpl, whose documentation
// already places synchronization on the caller.
type adaptiveStrategy struct {
	rails map[int]*railLog
}

// railLog is the per-rail feedback record accumulated from completions.
type railLog struct {
	Name     string
	Packets  int      // aggregated output packets completed
	Bodies   int      // rendezvous body transactions completed
	Bytes    int64    // payload bytes moved
	Busy     sim.Time // cumulated transaction time
	Entries  int      // wrappers carried by completed packets
	Attached bool
}

// adaptiveMinFactor floors the aggregation-budget scaling so a badly
// congested rail still amortizes per-packet overheads over a few
// wrappers.
const adaptiveMinFactor = 0.25

// adaptiveMinBudget floors the scaled aggregation budget in bytes: a
// small rendezvous threshold scaled down can drop below one entry
// header, which would reject every wrapper from FitsWithin and
// degenerate elections to one-wrapper packets. The floor never exceeds
// the rail's own unscaled threshold, so adaptation shrinks budgets but
// cannot inflate them past the aggregation cap the rail declares.
const adaptiveMinBudget = 256

// adaptiveCollapseFrac is the functional-bandwidth fraction of the best
// rail below which a rail is dropped from body plans.
const adaptiveCollapseFrac = 0.10

func newAdaptive() *adaptiveStrategy {
	return &adaptiveStrategy{rails: make(map[int]*railLog)}
}

func (s *adaptiveStrategy) Name() string { return "adaptive" }

func (s *adaptiveStrategy) Elect(w Window, rail RailInfo) *Election {
	// A zero threshold means the rail never switches to rendezvous:
	// aggregation is unlimited (accumulate treats it so) and there is no
	// byte budget to scale.
	limit := rail.Caps.RdvThreshold
	if limit > 0 {
		if nominal := rail.Caps.Bandwidth; rail.Sampled > 0 && rail.Sampled < nominal {
			factor := rail.Sampled / nominal
			if factor < adaptiveMinFactor {
				factor = adaptiveMinFactor
			}
			limit = int(float64(limit) * factor)
		}
		floor := adaptiveMinBudget
		if rail.Caps.RdvThreshold < floor {
			floor = rail.Caps.RdvThreshold
		}
		if limit < floor {
			limit = floor
		}
	}
	return accumulate(w, rail, limit)
}

// PlanBody shares a rendezvous body proportionally to functional
// bandwidth, dropping collapsed rails.
func (s *adaptiveStrategy) PlanBody(rails []RailInfo, size int) []BodyShare {
	best := 0.0
	for _, r := range rails {
		if bw := r.Bandwidth(); bw > best {
			best = bw
		}
	}
	usable := make([]RailInfo, 0, len(rails))
	for _, r := range rails {
		if r.Bandwidth() >= best*adaptiveCollapseFrac {
			usable = append(usable, r)
		}
	}
	if len(usable) == 0 {
		usable = rails
	}
	return proportionalPlan(usable, size, RailInfo.Bandwidth)
}

// OnAttach seeds the feedback log for a rail.
func (s *adaptiveStrategy) OnAttach(rail RailInfo) {
	s.log(rail.Index).Name = rail.Name
	s.log(rail.Index).Attached = true
}

// OnComplete records one finished transaction.
func (s *adaptiveStrategy) OnComplete(c Completion) {
	l := s.log(c.Rail)
	if c.Entries == 0 {
		l.Bodies++
	} else {
		l.Packets++
		l.Entries += c.Entries
	}
	l.Bytes += int64(c.Bytes)
	l.Busy += c.Duration
}

func (s *adaptiveStrategy) log(rail int) *railLog {
	l := s.rails[rail]
	if l == nil {
		l = &railLog{}
		s.rails[rail] = l
	}
	return l
}

// Snapshot copies the per-rail feedback log (diagnostics and tests).
func (s *adaptiveStrategy) Snapshot() map[int]railLog {
	out := make(map[int]railLog, len(s.rails))
	for i, l := range s.rails {
		out[i] = *l
	}
	return out
}
