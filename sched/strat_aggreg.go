package sched

// aggregStrategy is the paper's aggregation strategy (§4): it
// "accumulates communication requests as long as the cumulated length
// does not require to switch to the rendez-vous protocol". On top of the
// plain accumulation it applies the two reorderings the paper describes:
//
//   - control and priority wrappers move to the front of the train, so a
//     rendezvous request (or an RPC service id) never waits behind bulk
//     data;
//   - small wrappers may be pulled past ones that do not fit, maximizing
//     the number of aggregation operations (§7: "reordered to maximize
//     the number of aggregation operations"). The receiver's resequencing
//     buffer restores per-flow order.
//
// This is also the §5.3 datatype optimization: the small blocks of an
// indexed datatype coalesce with the rendezvous requests of the large
// blocks into a single physical packet.
type aggregStrategy struct{}

func (aggregStrategy) Name() string { return "aggreg" }

func (aggregStrategy) Elect(w Window, rail RailInfo) *Election {
	return accumulate(w, rail, rail.Caps.RdvThreshold)
}

// accumulate is the shared two-pass accumulation core: urgent wrappers
// first, then data wrappers in order, scanning past misfits (the
// reordering), all within the rail's gather capacity and the given byte
// limit. A limit of zero (a profile may legally report RdvThreshold 0)
// or less means unlimited — FitsWithin defines that semantics for every
// strategy, built-in or custom.
func accumulate(w Window, rail RailInfo, limit int) *Election {
	maxSegs := rail.Caps.MaxSegments
	el := new(Election)

	// Pass 1: control and priority wrappers, in order.
	w.Scan(func(pw Wrapper) bool {
		if pw.Urgent() && el.FitsWithin(pw, maxSegs, limit) {
			el.Pick(pw)
		}
		return el.Segments() < maxSegs
	})

	// Pass 2: data wrappers in order, scanning past misfits (reordering).
	w.Scan(func(pw Wrapper) bool {
		if pw.Urgent() {
			return true // already considered
		}
		if el.FitsWithin(pw, maxSegs, limit) {
			el.Pick(pw)
		}
		return el.Segments() < maxSegs
	})

	if el.Empty() {
		// Guarantee progress: a lone wrapper larger than the aggregation
		// limit (a rendezvous body chunk on a non-RDMA rail) still goes
		// out, alone — but never one whose gather list this rail cannot
		// accept; a wider rail will take it.
		w.Scan(func(pw Wrapper) bool {
			if pw.Segments > maxSegs {
				return true
			}
			el.Pick(pw)
			return false
		})
		if el.Empty() {
			return nil
		}
	}
	return el
}
