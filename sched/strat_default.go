package sched

// defaultStrategy is the no-optimization reference: strict FIFO, one
// wrapper per physical packet, no aggregation, no reordering. It is the
// ablation baseline showing what the engine costs without its window —
// roughly how the synchronous libraries of the paper's §2 behave.
type defaultStrategy struct{}

func (defaultStrategy) Name() string { return "default" }

func (defaultStrategy) Elect(w Window, rail RailInfo) *Election {
	el := new(Election)
	w.Scan(func(pw Wrapper) bool {
		if pw.Segments > rail.Caps.MaxSegments {
			return true // this rail cannot gather it; a wider rail will
		}
		el.Pick(pw)
		return false
	})
	if el.Empty() {
		return nil
	}
	return el
}
