package sched

import "nmad/internal/drivers"

// Caps is the nominal capability report of a transfer-layer driver:
// rendezvous threshold, gather/scatter capacity, RDMA availability and
// the nominal latency/bandwidth figures (paper §4).
type Caps = drivers.Caps

// RailInfo describes one rail to a strategy: the nominal capability
// report of its driver combined with the functional characteristic the
// engine samples at runtime. This is the paper's "nominal and functional
// characteristics of the underlying network" in one value.
type RailInfo struct {
	// Index is the rail's position in the engine's attach order (the
	// value Gate send options pin with OnRail).
	Index int
	// Name is the driver name ("mx", "elan", "gm", "sisci", "tcp").
	Name string
	// Caps is the nominal capability report.
	Caps Caps
	// Sampled is the achieved bandwidth in bytes/second, estimated by
	// the engine's EWMA sampler over live traffic; 0 while the sampler
	// is still warming up. The estimate is fed the wire footprint of
	// each transaction (entry headers included), matching what the
	// measured duration covers.
	Sampled float64
	// Backlog is the number of wrappers currently awaiting election
	// that this rail could send, summed over every gate — the same
	// backlog signal that drives the engine's flush scheduling mode,
	// made visible so strategies can react to queue build-up.
	Backlog int
	// Failed reports that the engine's reliability layer declared this
	// rail dead (a frame exhausted its retransmit budget on it). The
	// engine never offers a failed rail for election or body planning;
	// the flag lets strategies see why their rail set shrank.
	Failed bool
	// Retransmits is how many link-layer frame re-injections this rail
	// has cost so far — a functional-characteristics loss signal
	// strategies can weigh against the sampled bandwidth.
	Retransmits int
}

// Bandwidth is the figure strategies should plan with: the sampled
// (functional) bandwidth when the sampler has warmed up, the nominal
// capability figure before that.
func (r RailInfo) Bandwidth() float64 {
	if r.Sampled > 0 {
		return r.Sampled
	}
	return r.Caps.Bandwidth
}
