package sched

// Flags describe how a wrapper may be scheduled, the SPI mirror of the
// engine's wire flags plus the control marker.
type Flags uint8

const (
	// Priority marks a wrapper whose earliest delivery the application
	// requested (the paper's RPC service-id pattern).
	Priority Flags = 1 << iota
	// Unordered marks a wrapper the receiver may deliver outside the
	// per-flow sequence order.
	Unordered
	// Control marks protocol control traffic (rendezvous handshake,
	// synchronous-send acks): header-only entries the engine synthesized.
	Control
)

// Has reports whether any flag of mask is set.
func (f Flags) Has(mask Flags) bool { return f&mask != 0 }

// Wrapper is the read-only descriptor of one packet wrapper in the
// optimization window: the per-packet characteristics the paper's §3.2
// hands to the optimization function.
type Wrapper struct {
	// Dest is the destination node of the wrapper's gate.
	Dest int
	// Tag is the logical flow the wrapper belongs to.
	Tag uint64
	// Seq orders the wrapper within its (gate, tag) flow.
	Seq uint32
	// Len is the logical payload size in bytes (0 for control entries).
	Len int
	// WireSize is the wrapper's footprint inside an output packet:
	// entry header plus payload.
	WireSize int
	// Segments is the number of NIC gather segments the wrapper
	// occupies (header plus payload segments).
	Segments int
	// Flags carry the scheduling hints.
	Flags Flags

	// Ref is the engine-private identity of the wrapper. It is opaque:
	// strategies must carry it through into elections untouched. A
	// wrapper whose Ref is stale (already sent) or foreign is silently
	// dropped from elections by the engine.
	Ref any
}

// Urgent reports whether the optimizer should favor early delivery:
// application-priority wrappers and protocol control.
func (w Wrapper) Urgent() bool { return w.Flags.Has(Priority | Control) }

// Window is the per-rail view over one gate's optimization window: every
// wrapper the rail could send (its pinned submissions plus the common
// load-balanced list), in submission order.
type Window interface {
	// Peer is the destination node of every wrapper in this view.
	Peer() int
	// Pending is the number of wrappers in the window this rail could
	// send, including data wrappers currently held back by flow control
	// (the gate's raw backlog).
	Pending() int
	// Credits is the flow-control view: how many more eager data
	// wrappers the peer can accept right now (its remaining landing
	// credits), or -1 when flow control is disabled. Data wrappers
	// beyond the budget are already hidden from Scan; Credits lets a
	// strategy modulate its decisions as backpressure builds.
	Credits() int
	// Scan visits the electable wrappers in submission order until visit
	// returns false. The view is stable for the duration of one Elect
	// call. Data wrappers beyond the peer's credit budget are not
	// visited (see Credits).
	Scan(visit func(w Wrapper) bool)
}

// Election is the strategy's answer: an ordered train of wrappers to
// leave the window as one physical packet. The zero value is an empty
// election; Pick appends and maintains the running wire-size and
// gather-segment totals that accumulation strategies budget with.
type Election struct {
	entries []Wrapper
	bytes   int
	segs    int
}

// Pick appends a wrapper to the train and returns the election for
// chaining.
func (e *Election) Pick(w Wrapper) *Election {
	e.entries = append(e.entries, w)
	e.bytes += w.WireSize
	e.segs += w.Segments
	return e
}

// Len is the number of picked wrappers.
func (e *Election) Len() int { return len(e.entries) }

// Empty reports whether nothing was picked (nil-safe).
func (e *Election) Empty() bool { return e == nil || len(e.entries) == 0 }

// WireSize is the accumulated wire footprint of the train.
func (e *Election) WireSize() int { return e.bytes }

// Segments is the accumulated NIC gather-segment count of the train.
func (e *Election) Segments() int { return e.segs }

// Wrappers returns the picked train in pick order.
func (e *Election) Wrappers() []Wrapper { return e.entries }

// Fits reports whether picking w would keep the train within the rail's
// aggregation budget: the native gather capacity and the eager-protocol
// limit (the rendezvous threshold, which also caps aggregation). A rail
// may legally report RdvThreshold 0 — it never switches to rendezvous —
// which means no byte budget, not a zero-byte one.
func (e *Election) Fits(w Wrapper, rail RailInfo) bool {
	return e.FitsWithin(w, rail.Caps.MaxSegments, rail.Caps.RdvThreshold)
}

// FitsWithin is Fits against explicit segment and byte budgets, for
// strategies that scale the aggregation limit themselves. A byte budget
// of zero or less means unlimited.
func (e *Election) FitsWithin(w Wrapper, maxSegs, maxBytes int) bool {
	return e.segs+w.Segments <= maxSegs && (maxBytes <= 0 || e.bytes+w.WireSize <= maxBytes)
}
