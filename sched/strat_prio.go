package sched

// prioStrategy favors the earliest possible delivery of priority
// wrappers: the paper's motivating RPC case, where the service id must
// arrive before the arguments so the receiver can prepare the data areas.
// It aggregates like aggregStrategy, but a priority wrapper preempts the
// train entirely — the output carries the priority wrappers and nothing
// else, so no bulk payload delays them on the wire.
type prioStrategy struct {
	fallback aggregStrategy
}

func (prioStrategy) Name() string { return "prio" }

func (s prioStrategy) Elect(w Window, rail RailInfo) *Election {
	el := new(Election)
	w.Scan(func(pw Wrapper) bool {
		if !pw.Urgent() {
			return true
		}
		if !el.Fits(pw, rail) {
			return false
		}
		el.Pick(pw)
		return true
	})
	if !el.Empty() {
		return el
	}
	return s.fallback.Elect(w, rail)
}
