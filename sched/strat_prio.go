package sched

// prioStrategy favors the earliest possible delivery of priority
// wrappers: the paper's motivating RPC case, where the service id must
// arrive before the arguments so the receiver can prepare the data areas.
// It aggregates like aggregStrategy, but a priority wrapper preempts the
// train entirely — the output carries the priority wrappers and nothing
// else, so no bulk payload delays them on the wire.
type prioStrategy struct {
	fallback aggregStrategy
	// hot counts down elections since urgent traffic was last sighted.
	// While hot, bulk-only elections keep the capped budget: a priority
	// flow that is momentarily absent from the window (an RPC waiting
	// for its reply) would otherwise find a full-size train mid-wire on
	// every send. Per-engine state — each engine constructs its own
	// strategy instance through the registry.
	hot int
}

func (*prioStrategy) Name() string { return "prio" }

// prioBlockedFlows bounds the per-election stack space spent remembering
// flows whose head urgent wrapper did not fit. More blocked flows than
// this in one election is pathological; the overflow path just stops
// electing further ordered urgent wrappers this round (they stay in the
// window and go out on a later election).
const prioBlockedFlows = 8

// prioFallbackDivisor shrinks the fallback aggregation budget while
// urgent traffic is pending: bulk still flows, but in short trains, so
// the wire frees up quickly for the urgent wrapper once it becomes
// sendable (a wider rail, a drained election).
const prioFallbackDivisor = 4

// prioHotElections is the hysteresis span: how many bulk-only elections
// after an urgent sighting keep the capped budget before trains grow
// back to full size.
const prioHotElections = 4

// cappedLimit is the headroom aggregation budget (0 stays unlimited).
func cappedLimit(rail RailInfo) int {
	limit := rail.Caps.RdvThreshold
	if limit > 0 {
		limit = max(limit/prioFallbackDivisor, 1)
	}
	return limit
}

func (s *prioStrategy) Elect(w Window, rail RailInfo) *Election {
	maxSegs := rail.Caps.MaxSegments
	el := new(Election)
	// Flows whose head urgent wrapper did not fit: later ORDERED urgent
	// wrappers on these tags must not leapfrog it — they would only sit
	// in the receiver's resequencing buffer behind the hole. Unordered
	// urgent wrappers (control traffic) carry no sequence and stay
	// eligible.
	var blocked [prioBlockedFlows]uint64
	nblocked := 0
	overflow := false
	// The first urgent misfit this rail could at least gather: the
	// lone-departure candidate. A wrapper whose wire size exceeds the
	// aggregation budget but whose payload stays under the rendezvous
	// threshold is never converted to rendezvous and never fits an
	// election with company — without this clause it starves for as long
	// as bulk keeps the window non-empty.
	var stuck Wrapper
	stuckOK := false
	urgentBlocked := false

	w.Scan(func(pw Wrapper) bool {
		if !pw.Urgent() {
			return true
		}
		ordered := !pw.Flags.Has(Unordered)
		if ordered {
			if overflow {
				return true
			}
			for i := 0; i < nblocked; i++ {
				if blocked[i] == pw.Tag {
					return true // held behind an unfit same-flow predecessor
				}
			}
		}
		if !el.Fits(pw, rail) {
			urgentBlocked = true
			if !stuckOK && pw.Segments <= maxSegs {
				stuck, stuckOK = pw, true
			}
			if ordered {
				if nblocked < len(blocked) {
					blocked[nblocked] = pw.Tag
					nblocked++
				} else {
					overflow = true
				}
			}
			return true // skip and continue: other flows may still fit
		}
		el.Pick(pw)
		return el.Segments() < maxSegs
	})
	if !el.Empty() {
		s.hot = prioHotElections
		return el
	}
	if urgentBlocked {
		s.hot = prioHotElections
		if stuckOK {
			// Nothing urgent fits together, and this one never will:
			// progress beats budget — it departs alone. (The scan saw an
			// empty election throughout, so the misfit is intrinsic, not
			// crowding.)
			return el.Pick(stuck)
		}
		// Urgent traffic is pending but this rail cannot gather any of it
		// (segment-blocked; a wider rail will take it). Keep bulk moving,
		// but with headroom: a full-size aggregation train would delay
		// the urgent wrapper's departure further — the priority inversion
		// this strategy exists to avoid.
		return accumulate(w, rail, cappedLimit(rail))
	}
	if s.hot > 0 {
		// Urgent traffic was here a few elections ago and its flow is
		// likely mid-round-trip; keep the headroom so its next wrapper
		// does not land behind a freshly launched full-size train.
		s.hot--
		return accumulate(w, rail, cappedLimit(rail))
	}
	return s.fallback.Elect(w, rail)
}
