package sched

// splitStrategy is the paper's multi-rails strategy (§4): it "balances
// the communication flow over the set of available NICs, possibly by
// splitting messages in a heterogeneous manner if necessary". Election
// behaves like the aggregation strategy (the common submission list
// already load-balances small traffic onto whichever rail idles first);
// the multi-rail work happens on rendezvous bodies, which are split
// across every rail proportionally to bandwidth.
type splitStrategy struct {
	aggregStrategy
}

func (splitStrategy) Name() string { return "split" }

// minShare is the smallest body slice worth a dedicated rail transaction;
// below it the per-transaction costs eat the parallelism.
const minShare = 4 << 10

// PlanBody implements BodyPlanner with bandwidth-proportional shares.
// Proportions use the sampled (functional) bandwidth of each rail when
// the sampler has warmed up, the nominal capability figure before that.
func (splitStrategy) PlanBody(rails []RailInfo, size int) []BodyShare {
	return proportionalPlan(rails, size, RailInfo.Bandwidth)
}

// proportionalPlan shares size bytes over the rails proportionally to
// the given bandwidth figure, giving rounding remainders to the last
// share and degenerating to a single rail for small bodies.
func proportionalPlan(rails []RailInfo, size int, bw func(RailInfo) float64) []BodyShare {
	var total float64
	for _, r := range rails {
		total += bw(r)
	}
	if len(rails) == 1 || size < 2*minShare || total <= 0 {
		return SingleRail(rails, size)
	}
	var plan []BodyShare
	off := 0
	for i, r := range rails {
		var share int
		if i == len(rails)-1 {
			share = size - off // exact cover, absorb rounding
		} else {
			share = int(float64(size) * bw(r) / total)
			share = min(share, size-off)
		}
		if share <= 0 {
			continue
		}
		plan = append(plan, BodyShare{Rail: r.Index, Offset: off, Size: share})
		off += share
	}
	if off != size {
		// All rounding ended up dropping bytes; give the remainder to the
		// fastest rail.
		plan = append(plan, BodyShare{Rail: BestRail(rails), Offset: off, Size: size - off})
	}
	return plan
}
