// Package sched is the public scheduling SPI of nmad: the paper's
// "extensible and programmable set of optimization strategies" (§3.2) as
// a first-class API. A Strategy decides, each time a rail idles, which
// packet wrappers leave the optimization window and in what train — the
// whole point of NewMadeleine's optimizer-scheduler layer — and this
// package lets that decision be implemented outside the engine.
//
// # The contract
//
// The engine asks the strategy for one election per (gate, rail) pair:
//
//	func (s mine) Elect(w sched.Window, rail sched.RailInfo) *sched.Election
//
// Window is a read-only, per-rail view over the wrappers the rail could
// send, in submission order, each described by the inputs the paper
// lists: destination, flow tag, length, sequence number and flags.
// RailInfo carries the nominal capability report of the transfer layer
// (rendezvous threshold, gather capacity, RDMA, latency/bandwidth) plus
// the functional characteristic the paper's feedback loop needs: the
// achieved bandwidth sampled from live traffic (RailInfo.Sampled).
//
// The strategy answers with an Election — an ordered train of picked
// wrappers — or nil to leave the rail idle. The Election builder tracks
// accumulated wire bytes and gather segments so accumulation strategies
// are a few lines:
//
//	el := new(sched.Election)
//	w.Scan(func(pw sched.Wrapper) bool {
//		if el.Fits(pw, rail) {
//			el.Pick(pw)
//		}
//		return el.Segments() < rail.Caps.MaxSegments
//	})
//	return el
//
// The engine enforces the contract, not the strategy: picks that are
// stale, duplicated, or that the rail cannot physically gather are
// ignored, so no strategy — however buggy — can lose, duplicate or
// corrupt application data. Per-flow delivery order is restored by the
// receiver's resequencing layer regardless of election order.
//
// # Optional capabilities
//
// A strategy may additionally implement:
//
//   - BodyPlanner, to control how rendezvous bodies split over the rails
//     (the paper's heterogeneous multi-rail transfer);
//   - Attacher, to observe rails as the engine binds them;
//   - Completer, to receive per-transaction feedback (bytes, entries,
//     duration) after the NIC finishes each physical packet.
//
// Chain composes strategies with first-non-empty-election-wins
// semantics, for fallback stacks.
//
// # Registration
//
// Strategies register by name — Register returns an error on duplicates —
// and engines accept either a registry name or a Strategy value directly
// (nmad.WithStrategy). Registered constructors produce one instance per
// engine; a Strategy value handed to several engines is shared between
// them and must synchronize any internal state of its own.
//
// The built-ins live here too, written purely against this SPI:
// "default" (FIFO, no optimization), "aggreg" (the paper's aggregation
// strategy), "split" (multi-rail body splitting), "prio" (priority
// preemption) and "adaptive" (aggregation and splitting driven by the
// sampled achieved bandwidth).
package sched
