// Package baseline implements the comparators of the paper's evaluation:
// simulated stand-ins for MPICH(-MX/-Quadrics) and OpenMPI 1.1, running
// over the exact same simulated fabric and drivers as MAD-MPI.
//
// Their defining behaviours, per the paper:
//
//   - synchronous mapping: every Isend goes straight to the NIC — no
//     optimization window, no cross-flow aggregation ("Neither the MPICH
//     nor the OPENMPI try to aggregate individual messages submitted in a
//     short time interval", §5.2) — but back-to-back sends pipeline
//     efficiently through the NIC queue;
//   - eager protocol below the rendezvous threshold with a receive-side
//     copy (and buffering for unexpected messages), rendezvous with
//     zero-copy bodies above it;
//   - derived datatypes by pack → single transaction → receive into a
//     temporary area → dispatch copy (§5.3 and [5]); the OpenMPI
//     personality pipelines the pack with the wire in chunks, which is
//     why the paper measures it ahead of MPICH on datatypes.
package baseline

import "nmad/internal/sim"

// Options is a baseline personality.
type Options struct {
	// Name labels the personality in reports ("mpich", "openmpi").
	Name string
	// SubmitOverhead is the per-call host software cost.
	SubmitOverhead sim.Time
	// RdvThreshold overrides the driver's threshold when non-zero.
	RdvThreshold int
	// PipelinedDatatypes selects chunked pack/send overlap (OpenMPI)
	// instead of whole-message pack-then-send (MPICH).
	PipelinedDatatypes bool
	// PackChunk is the pipeline chunk size for PipelinedDatatypes.
	PackChunk int
}

// MPICH is the MPICH2-style personality: the leanest possible critical
// path for individual transfers.
func MPICH() Options {
	return Options{
		Name:           "mpich",
		SubmitOverhead: 100 * sim.Nanosecond,
	}
}

// OpenMPI is the OpenMPI-1.1-style personality: a slightly heavier
// per-call path, but a pipelined datatype engine.
func OpenMPI() Options {
	return Options{
		Name:               "openmpi",
		SubmitOverhead:     220 * sim.Nanosecond,
		PipelinedDatatypes: true,
		PackChunk:          256 << 10,
	}
}
