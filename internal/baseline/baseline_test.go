package baseline

import (
	"bytes"
	"errors"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

func pairRanks(t *testing.T, opts Options, prof simnet.Profile) (*sim.World, *Rank, *Rank) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := f.AddNetwork(prof); err != nil {
		t.Fatal(err)
	}
	r0, err := NewRank(f, 0, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewRank(f, 0, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, r0, r1
}

func TestPersonalities(t *testing.T) {
	if MPICH().Name != "mpich" || OpenMPI().Name != "openmpi" {
		t.Error("personality names wrong")
	}
	if MPICH().SubmitOverhead >= OpenMPI().SubmitOverhead {
		t.Error("OpenMPI should have the heavier per-call path")
	}
	if !OpenMPI().PipelinedDatatypes || MPICH().PipelinedDatatypes {
		t.Error("only OpenMPI pipelines datatypes")
	}
}

func TestEagerSendRecv(t *testing.T) {
	w, r0, r1 := pairRanks(t, MPICH(), simnet.MX10G())
	msg := []byte("baseline eager")
	w.Spawn("send", func(p *sim.Proc) {
		if err := r0.Send(p, msg, 1, 3, 0); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 64)
		n, err := r1.Recv(p, buf, 0, 3, 0)
		if err != nil {
			t.Error(err)
		}
		if !bytes.Equal(buf[:n], msg) {
			t.Errorf("got %q", buf[:n])
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	for _, opts := range []Options{MPICH(), OpenMPI()} {
		opts := opts
		t.Run(opts.Name, func(t *testing.T) {
			w, r0, r1 := pairRanks(t, opts, simnet.MX10G())
			big := make([]byte, 1<<20)
			sim.NewRNG(2).Bytes(big)
			w.Spawn("send", func(p *sim.Proc) {
				if err := r0.Send(p, big, 1, 1, 0); err != nil {
					t.Error(err)
				}
			})
			w.Spawn("recv", func(p *sim.Proc) {
				buf := make([]byte, len(big))
				n, err := r1.Recv(p, buf, 0, 1, 0)
				if err != nil {
					t.Error(err)
				}
				if n != len(big) || !bytes.Equal(buf, big) {
					t.Error("rendezvous corrupted")
				}
			})
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnexpectedBuffered(t *testing.T) {
	w, r0, r1 := pairRanks(t, MPICH(), simnet.MX10G())
	w.Spawn("send", func(p *sim.Proc) {
		if err := r0.Send(p, []byte("early"), 1, 9, 0); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		buf := make([]byte, 8)
		n, err := r1.Recv(p, buf, 0, 9, 0)
		if err != nil {
			t.Error(err)
		}
		if string(buf[:n]) != "early" {
			t.Errorf("got %q", buf[:n])
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCommIsolation(t *testing.T) {
	w, r0, r1 := pairRanks(t, MPICH(), simnet.MX10G())
	w.Spawn("send", func(p *sim.Proc) {
		if err := r0.Send(p, []byte("c1"), 1, 5, 1); err != nil {
			t.Error(err)
		}
		if err := r0.Send(p, []byte("c2"), 1, 5, 2); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 4)
		n, err := r1.Recv(p, buf, 0, 5, 2)
		if err != nil {
			t.Error(err)
		}
		if string(buf[:n]) != "c2" {
			t.Errorf("comm 2 got %q", buf[:n])
		}
		n, err = r1.Recv(p, buf, 0, 5, 1)
		if err != nil {
			t.Error(err)
		}
		if string(buf[:n]) != "c1" {
			t.Errorf("comm 1 got %q", buf[:n])
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	w, r0, r1 := pairRanks(t, MPICH(), simnet.MX10G())
	w.Spawn("send", func(p *sim.Proc) {
		r0.Isend(p, []byte("0123456789"), 1, 0, 0)
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 3)
		_, err := r1.Recv(p, buf, 0, 0, 0)
		if !errors.Is(err, ErrBaselineTruncated) {
			t.Errorf("err = %v, want ErrBaselineTruncated", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPeer(t *testing.T) {
	_, r0, _ := pairRanks(t, MPICH(), simnet.MX10G())
	if err := r0.Isend(nil, nil, 7, 0, 0).err; !errors.Is(err, ErrBadPeer) {
		t.Errorf("bad dest: %v", err)
	}
	if err := r0.Irecv(nil, nil, 0, 0, 0).err; !errors.Is(err, ErrBadPeer) {
		t.Errorf("self recv: %v", err)
	}
}

func TestNoAggregationEver(t *testing.T) {
	// The defining negative behaviour: N sends are N physical packets.
	w, r0, r1 := pairRanks(t, MPICH(), simnet.MX10G())
	const n = 10
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r0.Isend(p, make([]byte, 64), 1, i, 0)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if _, err := r1.Recv(p, make([]byte, 64), 0, i, 0); err != nil {
				t.Error(err)
			}
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r0.Driver().Stats().TxPackets; got != n {
		t.Errorf("baseline sent %d packets for %d sends, want exactly %d", got, n, n)
	}
}

func TestTypedRoundTrip(t *testing.T) {
	for _, opts := range []Options{MPICH(), OpenMPI()} {
		opts := opts
		t.Run(opts.Name, func(t *testing.T) {
			w, r0, r1 := pairRanks(t, opts, simnet.MX10G())
			// Paper layout: 64B + 256KB blocks, twice.
			segs := []Segment{{0, 64}, {64, 256 << 10}, {64 + 256<<10, 64}, {128 + 256<<10, 256 << 10}}
			total := 0
			for _, s := range segs {
				total += s.Len
			}
			src := make([]byte, total)
			sim.NewRNG(8).Bytes(src)
			w.Spawn("send", func(p *sim.Proc) {
				if err := r0.SendTyped(p, src, segs, 1, 100, 0); err != nil {
					t.Error(err)
				}
			})
			w.Spawn("recv", func(p *sim.Proc) {
				dst := make([]byte, total)
				if err := r1.RecvTyped(p, dst, segs, 0, 100, 0); err != nil {
					t.Error(err)
				}
				if !bytes.Equal(dst, src) {
					t.Error("typed payload corrupted")
				}
			})
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTypedCopiesCostTime(t *testing.T) {
	// The §5.3 effect: the same bytes sent contiguous must beat the
	// packed datatype path on MPICH.
	elapsed := func(typed bool) sim.Time {
		w, r0, r1 := pairRanks(t, MPICH(), simnet.MX10G())
		size := 1 << 20
		segs := []Segment{{0, size}}
		var done sim.Time
		w.Spawn("send", func(p *sim.Proc) {
			buf := make([]byte, size)
			var err error
			if typed {
				err = r0.SendTyped(p, buf, segs, 1, 0, 0)
			} else {
				err = r0.Send(p, buf, 1, 0, 0)
			}
			if err != nil {
				t.Error(err)
			}
		})
		w.Spawn("recv", func(p *sim.Proc) {
			buf := make([]byte, size)
			var err error
			if typed {
				err = r1.RecvTyped(p, buf, segs, 0, 0, 0)
			} else {
				_, err = r1.Recv(p, buf, 0, 0, 0)
			}
			if err != nil {
				t.Error(err)
			}
			done = p.Now()
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	typed, raw := elapsed(true), elapsed(false)
	if typed <= raw {
		t.Errorf("typed path %v vs raw %v: pack/unpack copies must cost time", typed, raw)
	}
	// Two extra copies of 1MB at 1.2 GB/s is ~1.7ms.
	if typed-raw < sim.FromMicroseconds(1000) {
		t.Errorf("typed overhead only %v, want rough double memcpy cost", typed-raw)
	}
}

func TestOpenMPIPipelinedDatatypesFasterThanMPICH(t *testing.T) {
	// The reason the paper's Figure 4 shows OpenMPI ahead of MPICH.
	elapsed := func(opts Options) sim.Time {
		w, r0, r1 := pairRanks(t, opts, simnet.MX10G())
		size := 2 << 20
		segs := []Segment{{0, size}}
		var done sim.Time
		w.Spawn("send", func(p *sim.Proc) {
			if err := r0.SendTyped(p, make([]byte, size), segs, 1, 0, 0); err != nil {
				t.Error(err)
			}
		})
		w.Spawn("recv", func(p *sim.Proc) {
			if err := r1.RecvTyped(p, make([]byte, size), segs, 0, 0, 0); err != nil {
				t.Error(err)
			}
			done = p.Now()
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	ompi, mpich := elapsed(OpenMPI()), elapsed(MPICH())
	if ompi >= mpich {
		t.Errorf("openmpi typed %v vs mpich %v: the pipeline must win", ompi, mpich)
	}
}
