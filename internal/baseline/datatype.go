package baseline

import (
	"nmad/internal/sim"
)

// Derived-datatype transfers, the §5.3 comparison path. Both baselines
// serialize the non-contiguous layout through contiguous staging buffers;
// the host memcpy is charged at the node's memcpy bandwidth. "In order to
// process a derived datatype communication request, MPICH copies all the
// data fragments into a new contiguous buffer and sends the obtained
// buffer in an unique transaction ... Data are received in a temporary
// memory area before being dispatched to their final destination."

// Segment is one contiguous block of a flattened datatype (offset
// relative to the message base).
type Segment struct {
	Offset int
	Len    int
}

func totalLen(segs []Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Len
	}
	return n
}

// SendTyped sends the blocks described by segs at base.
//
// MPICH personality: pack everything (one full-size memcpy), then one
// transaction. OpenMPI personality: pack and send in PackChunk pieces so
// the copy overlaps the wire.
func (r *Rank) SendTyped(p *sim.Proc, base []byte, segs []Segment, dest, tag, comm int) error {
	total := totalLen(segs)
	if !r.opts.PipelinedDatatypes || r.opts.PackChunk <= 0 || total <= r.opts.PackChunk {
		packed := packInto(make([]byte, 0, total), base, segs)
		p.Sleep(r.node.CopyCost(total)) // the pack memcpy
		return r.Send(p, packed, dest, tag, comm)
	}
	// Pipelined: pack chunk k while chunk k-1 is on the wire.
	packed := packInto(make([]byte, 0, total), base, segs)
	var reqs []*bSend
	seq := 0
	for off := 0; off < total; off += r.opts.PackChunk {
		end := off + r.opts.PackChunk
		if end > total {
			end = total
		}
		p.Sleep(r.node.CopyCost(end - off)) // pack this chunk
		reqs = append(reqs, r.Isend(p, packed[off:end], dest, tag+seq, comm))
		seq++
	}
	for _, req := range reqs {
		if err := req.Wait(p); err != nil {
			return err
		}
	}
	return nil
}

// RecvTyped receives into the blocks described by segs at base, through a
// temporary contiguous area, then dispatches (one full-size memcpy).
func (r *Rank) RecvTyped(p *sim.Proc, base []byte, segs []Segment, src, tag, comm int) error {
	total := totalLen(segs)
	tmp := make([]byte, total)
	if !r.opts.PipelinedDatatypes || r.opts.PackChunk <= 0 || total <= r.opts.PackChunk {
		if _, err := r.Recv(p, tmp, src, tag, comm); err != nil {
			return err
		}
	} else {
		var reqs []*bRecv
		seq := 0
		for off := 0; off < total; off += r.opts.PackChunk {
			end := off + r.opts.PackChunk
			if end > total {
				end = total
			}
			reqs = append(reqs, r.Irecv(p, tmp[off:end], src, tag+seq, comm))
			seq++
		}
		for _, req := range reqs {
			if err := req.Wait(p); err != nil {
				return err
			}
		}
	}
	p.Sleep(r.node.CopyCost(total)) // the dispatch memcpy
	unpackFrom(tmp, base, segs)
	return nil
}

func packInto(dst, base []byte, segs []Segment) []byte {
	for _, s := range segs {
		dst = append(dst, base[s.Offset:s.Offset+s.Len]...)
	}
	return dst
}

func unpackFrom(tmp, base []byte, segs []Segment) {
	n := 0
	for _, s := range segs {
		n += copy(base[s.Offset:s.Offset+s.Len], tmp[n:])
	}
}
