package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nmad/internal/drivers"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Rank is one process of a baseline MPI job. Unlike the engine, it binds
// a single network (the paper's comparators are single-rail builds:
// MPICH-MX, MPICH-Quadrics).
type Rank struct {
	world *sim.World
	node  *simnet.Node
	drv   drivers.Driver
	size  int
	opts  Options

	cond *sim.Cond

	// Matching state, per source node.
	posted     map[simnet.NodeID][]*bRecv
	unexpected map[simnet.NodeID][]*bMsg

	rdvOut    map[uint32]*bRdvOut
	rdvIn     map[bRdvKey]*bRecv
	nextRdvID uint32
}

// bMsg is a buffered unexpected arrival.
type bMsg struct {
	kind    byte
	tag     uint64
	payload []byte
	size    int    // body size for RTS
	aux     uint32 // rdv id
}

// bRecv is a posted receive.
type bRecv struct {
	rank *Rank
	tag  uint64
	buf  []byte

	done bool
	err  error
	n    int

	bodyLeft int // rendezvous bytes still expected
}

// bRdvOut is sender-side rendezvous state.
type bRdvOut struct {
	body []byte
	dst  simnet.NodeID
	req  *bSend
}

type bRdvKey struct {
	src simnet.NodeID
	id  uint32
}

// bSend is a send handle.
type bSend struct {
	rank *Rank
	done bool
	err  error
}

// Baseline wire format: kind(1) pad(3) tag(8) len(4) aux(4) = 20 bytes.
const bHeaderSize = 20

const (
	bKindMsg byte = 1 + iota
	bKindRTS
	bKindCTS
)

// NewRank creates one baseline process over network netIdx of the fabric.
func NewRank(f *simnet.Fabric, netIdx int, node simnet.NodeID, opts Options) (*Rank, error) {
	nets := f.Networks()
	if netIdx < 0 || netIdx >= len(nets) {
		return nil, fmt.Errorf("baseline: fabric has no network %d", netIdx)
	}
	drv, err := drivers.New(nets[netIdx], node)
	if err != nil {
		return nil, err
	}
	r := &Rank{
		world:      f.World(),
		node:       f.Node(node),
		drv:        drv,
		size:       f.Nodes(),
		opts:       opts,
		cond:       sim.NewCond(f.World()),
		posted:     make(map[simnet.NodeID][]*bRecv),
		unexpected: make(map[simnet.NodeID][]*bMsg),
		rdvOut:     make(map[uint32]*bRdvOut),
		rdvIn:      make(map[bRdvKey]*bRecv),
	}
	if err := drv.Open(r.onRecv, nil); err != nil {
		return nil, err
	}
	return r, nil
}

// Name reports the personality name.
func (r *Rank) Name() string { return r.opts.Name }

// Rank returns the process's rank (its node id).
func (r *Rank) Rank() int { return int(r.node.ID) }

// Size returns the job size.
func (r *Rank) Size() int { return r.size }

// Driver exposes the bound transfer layer.
func (r *Rank) Driver() drivers.Driver { return r.drv }

func (r *Rank) threshold() int {
	if r.opts.RdvThreshold > 0 {
		return r.opts.RdvThreshold
	}
	return r.drv.Caps().RdvThreshold
}

func (r *Rank) charge(p *sim.Proc) {
	if p != nil && r.opts.SubmitOverhead > 0 {
		p.Sleep(r.opts.SubmitOverhead)
	}
}

func tag64(comm, tag int) uint64 { return uint64(uint32(comm))<<32 | uint64(uint32(tag)) }

func encodeBHeader(kind byte, tag uint64, length int, aux uint32) []byte {
	h := make([]byte, bHeaderSize)
	h[0] = kind
	binary.LittleEndian.PutUint64(h[4:12], tag)
	binary.LittleEndian.PutUint32(h[12:16], uint32(length))
	binary.LittleEndian.PutUint32(h[16:20], aux)
	return h
}

// Errors.
var (
	ErrBaselineTruncated = errors.New("baseline: message longer than the receive buffer")
	ErrBadPeer           = errors.New("baseline: peer out of range")
)

// Isend maps the send directly onto the NIC: eager below the threshold,
// rendezvous above — the synchronous architecture of §2.
func (r *Rank) Isend(p *sim.Proc, buf []byte, dest, tag, comm int) *bSend {
	req := &bSend{rank: r}
	if dest < 0 || dest >= r.size || dest == r.Rank() {
		req.finish(fmt.Errorf("%w: %d", ErrBadPeer, dest))
		return req
	}
	r.charge(p)
	t := tag64(comm, tag)
	if len(buf) >= r.threshold() {
		r.nextRdvID++
		id := r.nextRdvID
		r.rdvOut[id] = &bRdvOut{body: buf, dst: simnet.NodeID(dest), req: req}
		hdr := encodeBHeader(bKindRTS, t, len(buf), id)
		if err := r.drv.Send(simnet.NodeID(dest), simnet.TxEager, [][]byte{hdr}, 0, nil); err != nil {
			req.finish(err)
		}
		return req
	}
	hdr := encodeBHeader(bKindMsg, t, len(buf), 0)
	segs := [][]byte{hdr}
	if len(buf) > 0 {
		segs = append(segs, buf)
	}
	err := r.drv.Send(simnet.NodeID(dest), simnet.TxEager, segs, 0, func() { req.finish(nil) })
	if err != nil {
		req.finish(err)
	}
	return req
}

// Irecv posts a receive matched by (source, comm, tag), FIFO.
func (r *Rank) Irecv(p *sim.Proc, buf []byte, src, tag, comm int) *bRecv {
	req := &bRecv{rank: r, tag: tag64(comm, tag), buf: buf}
	if src < 0 || src >= r.size || src == r.Rank() {
		req.finish(fmt.Errorf("%w: %d", ErrBadPeer, src))
		return req
	}
	r.charge(p)
	node := simnet.NodeID(src)
	q := r.unexpected[node]
	for i, m := range q {
		if m.tag == req.tag {
			r.unexpected[node] = append(q[:i], q[i+1:]...)
			r.consume(node, req, m)
			return req
		}
	}
	r.posted[node] = append(r.posted[node], req)
	return req
}

// Send and Recv are the blocking forms.
func (r *Rank) Send(p *sim.Proc, buf []byte, dest, tag, comm int) error {
	return r.Isend(p, buf, dest, tag, comm).Wait(p)
}

func (r *Rank) Recv(p *sim.Proc, buf []byte, src, tag, comm int) (int, error) {
	req := r.Irecv(p, buf, src, tag, comm)
	err := req.Wait(p)
	return req.N(), err
}

// onRecv is the driver delivery handler.
func (r *Rank) onRecv(d simnet.Delivery) {
	if d.Kind == simnet.TxRdma {
		r.onBody(d)
		return
	}
	if len(d.Data) < bHeaderSize {
		panic("baseline: runt packet")
	}
	kind := d.Data[0]
	tag := binary.LittleEndian.Uint64(d.Data[4:12])
	length := int(binary.LittleEndian.Uint32(d.Data[12:16]))
	aux := binary.LittleEndian.Uint32(d.Data[16:20])
	payload := d.Data[bHeaderSize:]

	switch kind {
	case bKindCTS:
		out, ok := r.rdvOut[aux]
		if !ok {
			panic("baseline: CTS for unknown rendezvous")
		}
		delete(r.rdvOut, aux)
		req := out.req
		err := r.drv.Send(out.dst, simnet.TxRdma, [][]byte{out.body}, uint64(aux), func() { req.finish(nil) })
		if err != nil {
			req.finish(err)
		}
	case bKindMsg, bKindRTS:
		m := &bMsg{kind: kind, tag: tag, payload: payload, size: length, aux: aux}
		q := r.posted[d.Src]
		for i, req := range q {
			if req.tag == tag {
				r.posted[d.Src] = append(q[:i], q[i+1:]...)
				r.consume(d.Src, req, m)
				return
			}
		}
		r.unexpected[d.Src] = append(r.unexpected[d.Src], m)
	default:
		panic("baseline: unknown packet kind")
	}
}

// consume completes the match: eager copy, or rendezvous grant.
func (r *Rank) consume(src simnet.NodeID, req *bRecv, m *bMsg) {
	switch m.kind {
	case bKindMsg:
		n := copy(req.buf, m.payload)
		req.n = n
		var err error
		if len(m.payload) > len(req.buf) {
			err = ErrBaselineTruncated
		}
		r.world.After(r.node.CopyCost(n), func() { req.finish(err) })
	case bKindRTS:
		req.bodyLeft = m.size
		r.rdvIn[bRdvKey{src: src, id: m.aux}] = req
		cts := encodeBHeader(bKindCTS, m.tag, m.size, m.aux)
		if err := r.drv.Send(src, simnet.TxEager, [][]byte{cts}, 0, nil); err != nil {
			req.finish(err)
		}
	}
}

// onBody places a rendezvous body (single transaction in the baselines).
func (r *Rank) onBody(d simnet.Delivery) {
	key := bRdvKey{src: d.Src, id: uint32(d.Aux)}
	req, ok := r.rdvIn[key]
	if !ok {
		panic("baseline: body for unknown rendezvous")
	}
	delete(r.rdvIn, key)
	n := copy(req.buf, d.Data)
	req.n = n
	var err error
	if len(d.Data) > len(req.buf) {
		err = ErrBaselineTruncated
	}
	req.finish(err)
}

// Request completion plumbing.

func (s *bSend) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	s.err = err
	s.rank.cond.Broadcast()
}

func (s *bSend) Test() bool { return s.done }

func (s *bSend) Wait(p *sim.Proc) error {
	for !s.done {
		s.rank.cond.Wait(p)
	}
	return s.err
}

func (q *bRecv) finish(err error) {
	if q.done {
		return
	}
	q.done = true
	q.err = err
	q.rank.cond.Broadcast()
}

func (q *bRecv) Test() bool { return q.done }

func (q *bRecv) N() int { return q.n }

func (q *bRecv) Wait(p *sim.Proc) error {
	for !q.done {
		q.rank.cond.Wait(p)
	}
	return q.err
}
