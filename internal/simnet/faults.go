package simnet

import (
	"fmt"

	"nmad/internal/sim"
)

// Fault injection: the lossy-fabric model. A FaultProfile attached to a
// fabric makes each network drop, duplicate or reorder packets with
// configured probabilities, and take whole rails down for scheduled
// windows — driven by the deterministic sim RNG, so a (profile, seed)
// pair reproduces the exact same fault sequence forever. The timing
// model is unchanged: a dropped packet still occupied the wire and the
// sending NIC (the bits left the host; the fabric lost them), a
// reordered packet is delayed on delivery only, and a duplicate is a
// second delivery of the same bits. Faults act below the engine, on the
// delivery path of every transaction, exactly where a real fabric loses
// packets: after the sender believes the transaction is done.

// RailFaults is the fault configuration of one rail (one network).
type RailFaults struct {
	// DropProb is the probability a packet is lost in the fabric: it
	// pays its wire time but is never delivered.
	DropProb float64 `json:"drop_prob,omitempty"`
	// DupProb is the probability a packet is delivered twice (the second
	// copy one extra wire latency later).
	DupProb float64 `json:"dup_prob,omitempty"`
	// ReorderProb is the probability a packet's delivery is delayed by a
	// random jitter in (0, ReorderJitter], letting packets sent later
	// overtake it. The wire occupancy chain is unaffected.
	ReorderProb float64 `json:"reorder_prob,omitempty"`
	// ReorderJitter bounds the reorder delay; 0 means 4x the rail's wire
	// latency.
	ReorderJitter sim.Time `json:"reorder_jitter,omitempty"`
	// Outages schedule rail death windows: every delivery whose arrival
	// falls inside a window is dropped (the rail is dark; senders only
	// notice through their own timeouts).
	Outages []Outage `json:"outages,omitempty"`
}

// Outage is one scheduled rail death window: the rail delivers nothing
// in [At, At+Duration).
type Outage struct {
	At       sim.Time `json:"at"`
	Duration sim.Time `json:"duration"`
}

// FaultProfile configures fault injection for a whole fabric: one
// RailFaults per network in attach order (missing entries mean a
// perfect rail), and the seed of the deterministic fault RNG.
type FaultProfile struct {
	// Seed drives every probabilistic decision. Equal (profile, seed)
	// pairs produce identical fault sequences on identical traffic.
	Seed uint64 `json:"seed"`
	// Rails holds the per-rail fault parameters, indexed like
	// Fabric.Networks(). Rails beyond the slice are fault-free.
	Rails []RailFaults `json:"rails"`
}

// Rail returns the fault configuration of rail i (the zero value when
// the profile does not cover it).
func (fp FaultProfile) Rail(i int) RailFaults {
	if i < 0 || i >= len(fp.Rails) {
		return RailFaults{}
	}
	return fp.Rails[i]
}

// Validate reports whether every probability is a probability and every
// outage well-formed.
func (fp FaultProfile) Validate() error {
	for i, r := range fp.Rails {
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop", r.DropProb}, {"dup", r.DupProb}, {"reorder", r.ReorderProb}} {
			if p.v < 0 || p.v > 1 {
				return fmt.Errorf("simnet: rail %d %s probability %v outside [0, 1]", i, p.name, p.v)
			}
		}
		if r.ReorderJitter < 0 {
			return fmt.Errorf("simnet: rail %d negative reorder jitter", i)
		}
		for _, o := range r.Outages {
			if o.At < 0 || o.Duration <= 0 {
				return fmt.Errorf("simnet: rail %d outage at %v for %v is not a window", i, o.At, o.Duration)
			}
		}
	}
	return nil
}

// UniformLoss is the common case: every rail drops packets with the
// same probability, nothing else.
func UniformLoss(seed uint64, drop float64, rails int) FaultProfile {
	fp := FaultProfile{Seed: seed}
	for i := 0; i < rails; i++ {
		fp.Rails = append(fp.Rails, RailFaults{DropProb: drop})
	}
	return fp
}

// FaultStats counts what the injector did to one network.
type FaultStats struct {
	// Dropped counts packets lost by probability, OutageDropped packets
	// lost to a scheduled rail death window.
	Dropped       int
	OutageDropped int
	// Duplicated counts extra deliveries injected; Reordered counts
	// deliveries delayed by jitter.
	Duplicated int
	Reordered  int
}

// faultState is the live injector of one network. Each network derives
// its own RNG stream from (seed, rail index) so adding a rail never
// shifts the fault sequence of the others.
type faultState struct {
	cfg   RailFaults
	rng   *sim.RNG
	stats FaultStats
}

func newFaultState(cfg RailFaults, seed uint64, rail int) *faultState {
	// Decorrelate the per-rail streams: hash the rail index into the
	// seed through one SplitMix64 step.
	r := sim.NewRNG(seed ^ (uint64(rail)+1)*0x9e3779b97f4a7c15)
	return &faultState{cfg: cfg, rng: r}
}

// verdict is the injector's decision for one delivery.
type verdict struct {
	deliver   bool
	duplicate bool
	jitter    sim.Time // extra delivery delay (reorder), 0 = on time
	dupDelay  sim.Time // delay of the duplicate copy after the original
}

// decide rolls the fault dice for one packet arriving at the given
// instant. It always consumes the same number of RNG draws per packet,
// so the fault sequence depends only on the traffic order, never on
// earlier verdicts.
func (fs *faultState) decide(arrival sim.Time, latency sim.Time) verdict {
	dropRoll := fs.rng.Float64()
	dupRoll := fs.rng.Float64()
	reorderRoll := fs.rng.Float64()
	jitterRoll := fs.rng.Float64()

	for _, o := range fs.cfg.Outages {
		if arrival >= o.At && arrival < o.At+o.Duration {
			fs.stats.OutageDropped++
			return verdict{}
		}
	}
	if dropRoll < fs.cfg.DropProb {
		fs.stats.Dropped++
		return verdict{}
	}
	v := verdict{deliver: true}
	if dupRoll < fs.cfg.DupProb {
		fs.stats.Duplicated++
		v.duplicate = true
		v.dupDelay = latency
		if v.dupDelay <= 0 {
			v.dupDelay = sim.Microsecond
		}
	}
	if reorderRoll < fs.cfg.ReorderProb {
		fs.stats.Reordered++
		span := fs.cfg.ReorderJitter
		if span <= 0 {
			span = 4 * latency
		}
		if span <= 0 {
			span = 4 * sim.Microsecond
		}
		// Jitter in (0, span]: never zero, so a reordered packet always
		// leaves its FIFO slot.
		v.jitter = sim.Time(float64(span)*jitterRoll) + 1
	}
	return v
}

// SetFaults installs a fault profile on the fabric, one injector per
// network in attach order. Call it after every AddNetwork; calling it
// again replaces the injectors (and resets their RNG streams and
// stats). A nil-rail profile detaches injection.
func (f *Fabric) SetFaults(fp FaultProfile) error {
	if err := fp.Validate(); err != nil {
		return err
	}
	f.faults = &fp
	for i, net := range f.nets {
		cfg := fp.Rail(i)
		if cfg.inert() {
			net.faults = nil
			continue
		}
		net.faults = newFaultState(cfg, fp.Seed, i)
	}
	return nil
}

// inert reports whether the configuration injects nothing.
func (r RailFaults) inert() bool {
	return r.DropProb == 0 && r.DupProb == 0 && r.ReorderProb == 0 && len(r.Outages) == 0
}

// UpdateRailFaults changes one rail's fault configuration mid-run,
// preserving the rail's RNG stream and fault counters: the injector
// keeps drawing from where it was, so a run that updates a rail at a
// deterministic instant stays deterministic end to end. This is the
// runtime mutation hook the scenario harness drives for drop-rate
// changes and injected outages (SetFaults, by contrast, replaces every
// injector and resets streams and stats — a full reinstall).
//
// When no profile is installed yet, one is created with seed 0 covering
// exactly this fabric's rails; pass a seeded profile through SetFaults
// first if the scenario needs a specific fault stream.
func (f *Fabric) UpdateRailFaults(rail int, cfg RailFaults) error {
	if rail < 0 || rail >= len(f.nets) {
		return fmt.Errorf("simnet: no rail %d in a %d-rail fabric", rail, len(f.nets))
	}
	probe := FaultProfile{Rails: []RailFaults{cfg}}
	if err := probe.Validate(); err != nil {
		return err
	}
	if f.faults == nil {
		f.faults = &FaultProfile{}
	}
	// Clone the rail slice before mutating: SetFaults shares the backing
	// array with the caller's profile (and possibly with a recording).
	rails := make([]RailFaults, len(f.faults.Rails), max(len(f.faults.Rails), rail+1))
	copy(rails, f.faults.Rails)
	for len(rails) <= rail {
		rails = append(rails, RailFaults{})
	}
	rails[rail] = cfg
	f.faults.Rails = rails
	net := f.nets[rail]
	switch {
	case cfg.inert():
		net.faults = nil
	case net.faults != nil:
		net.faults.cfg = cfg // keep the RNG stream and the counters
	default:
		net.faults = newFaultState(cfg, f.faults.Seed, rail)
	}
	return nil
}

// Faults returns the installed fault profile, or nil for a perfect
// fabric.
func (f *Fabric) Faults() *FaultProfile { return f.faults }

// FaultStats reports what the injector did to this network (zero value
// when no faults are installed).
func (n *Network) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}
