package simnet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"nmad/internal/sim"
)

func testFabric(t *testing.T, prof Profile) (*sim.World, *Fabric, *Network) {
	t.Helper()
	w := sim.NewWorld()
	f := NewFabric(w, 2, DefaultHost())
	net, err := f.AddNetwork(prof)
	if err != nil {
		t.Fatal(err)
	}
	return w, f, net
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", p.Name, err)
		}
	}
	if len(Profiles()) != 5 {
		t.Errorf("the paper lists five ports; got %d profiles", len(Profiles()))
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("mx10g")
	if !ok || p.Name != "mx10g" {
		t.Fatalf("ProfileByName(mx10g) = %+v, %v", p, ok)
	}
	if _, ok := ProfileByName("infiniband"); ok {
		t.Error("unknown profile should not resolve")
	}
}

func TestProfileValidateRejectsBadValues(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", Bandwidth: -1, PIOBandwidth: 1, MaxSegments: 1},
		{Name: "x", Bandwidth: 1, PIOBandwidth: 0, MaxSegments: 1},
		{Name: "x", Bandwidth: 1, PIOBandwidth: 1, MaxSegments: 0},
		{Name: "x", Bandwidth: 1, PIOBandwidth: 1, MaxSegments: 1, RdvThreshold: -1},
		{Name: "x", Bandwidth: 1, PIOBandwidth: 1, MaxSegments: 1, Latency: -1},
		{Name: "x", Bandwidth: 1, PIOBandwidth: 1, MaxSegments: 1, MTU: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated: %+v", i, p)
		}
	}
}

func TestSingleDelivery(t *testing.T) {
	w, _, net := testFabric(t, MX10G())
	payload := []byte("hello, fabric")
	var got *Delivery
	var at sim.Time
	net.NIC(1).OnRecv(func(d Delivery) { got = &d; at = w.Now() })
	sent := false
	err := net.NIC(0).Submit(&Tx{
		Dst:    1,
		Kind:   TxEager,
		Segs:   [][]byte{payload},
		Aux:    77,
		OnSent: func() { sent = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("payload never delivered")
	}
	if !bytes.Equal(got.Data, payload) || got.Src != 0 || got.Aux != 77 || got.Kind != TxEager {
		t.Errorf("delivery = %+v, want the submitted packet", got)
	}
	if !sent {
		t.Error("OnSent never fired")
	}
	p := net.Profile()
	min := p.SendOverhead + p.Gap + p.Latency + p.RecvOverhead
	if at < min {
		t.Errorf("delivery at %v, faster than the cost-model floor %v", at, min)
	}
}

func TestGatherSnapshotAllowsBufferReuse(t *testing.T) {
	w, _, net := testFabric(t, MX10G())
	var got []byte
	net.NIC(1).OnRecv(func(d Delivery) { got = d.Data })
	a, b := []byte("aaaa"), []byte("bbbb")
	if err := net.NIC(0).Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{a, b}}); err != nil {
		t.Fatal(err)
	}
	copy(a, "XXXX") // NIC must have snapshotted already
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaabbbb" {
		t.Errorf("delivered %q, want the bytes as of Submit time", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, _, net := testFabric(t, SISCI()) // MaxSegments = 1
	nic := net.NIC(0)
	err := nic.Submit(&Tx{Dst: 1, Segs: [][]byte{{1}, {2}}})
	if !errors.Is(err, ErrTooManySegments) {
		t.Errorf("2 segments on sisci: err = %v, want ErrTooManySegments", err)
	}
	if err := nic.Submit(&Tx{Dst: 0, Segs: [][]byte{{1}}}); !errors.Is(err, ErrSelfSend) {
		t.Errorf("self send: err = %v, want ErrSelfSend", err)
	}
	if err := nic.Submit(&Tx{Dst: 9, Segs: [][]byte{{1}}}); err == nil {
		t.Error("send to unknown node should fail")
	}
	prof := MX10G()
	prof.MTU = 16
	w := sim.NewWorld()
	f := NewFabric(w, 2, DefaultHost())
	small, err := f.AddNetwork(prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := small.NIC(0).Submit(&Tx{Dst: 1, Segs: [][]byte{make([]byte, 17)}}); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized tx: err = %v, want ErrOversized", err)
	}
}

func TestFIFOOrderOnWire(t *testing.T) {
	// A large packet followed by a tiny one: the tiny one must not
	// overtake on the wire, whatever the injection times say.
	w, _, net := testFabric(t, MX10G())
	var order []int
	net.NIC(1).OnRecv(func(d Delivery) { order = append(order, int(d.Aux)) })
	nic := net.NIC(0)
	if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{make([]byte, 256<<10)}, Aux: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{{42}}, Aux: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("arrival order %v, want [1 2]", order)
	}
}

func TestIdleCallbackFiresAfterDrain(t *testing.T) {
	w, _, net := testFabric(t, MX10G())
	net.NIC(1).OnRecv(func(Delivery) {})
	nic := net.NIC(0)
	idles := 0
	nic.OnIdle(func() {
		idles++
		if !nic.Idle() {
			t.Error("idle callback fired while NIC not idle")
		}
	})
	if !nic.Idle() {
		t.Fatal("fresh NIC should be idle")
	}
	for i := 0; i < 3; i++ {
		if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{make([]byte, 64)}}); err != nil {
			t.Fatal(err)
		}
	}
	if nic.Idle() {
		t.Error("NIC should be busy right after Submit")
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if idles != 1 {
		t.Errorf("idle callback fired %d times, want once (after the queue drains)", idles)
	}
}

func TestIdleRefillKeepsNICBusy(t *testing.T) {
	// The NewMadeleine pattern: refill from the idle callback.
	w, _, net := testFabric(t, QsNetII())
	deliveries := 0
	net.NIC(1).OnRecv(func(Delivery) { deliveries++ })
	nic := net.NIC(0)
	remaining := 5
	send := func() {
		remaining--
		if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{{1, 2, 3}}}); err != nil {
			t.Fatal(err)
		}
	}
	nic.OnIdle(func() {
		if remaining > 0 {
			send()
		}
	})
	send()
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveries != 5 {
		t.Errorf("%d deliveries, want 5", deliveries)
	}
}

func TestAggregationBeatsSeparateSends(t *testing.T) {
	// The core physics behind the paper: k segments in one transaction
	// must complete sooner than k separate transactions.
	sendAll := func(aggregate bool) sim.Time {
		w, _, net := testFabric(t, MX10G())
		var last sim.Time
		want := 8
		got := 0
		net.NIC(1).OnRecv(func(Delivery) {
			got++
			last = w.Now()
		})
		nic := net.NIC(0)
		seg := make([]byte, 64)
		if aggregate {
			segs := make([][]byte, 8)
			for i := range segs {
				segs[i] = seg
			}
			if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: segs}); err != nil {
				t.Fatal(err)
			}
			want = 1
		} else {
			for i := 0; i < 8; i++ {
				if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{seg}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%d deliveries, want %d", got, want)
		}
		return last
	}
	agg, sep := sendAll(true), sendAll(false)
	if agg >= sep {
		t.Errorf("aggregated 8x64B finished at %v, separate at %v: aggregation must win", agg, sep)
	}
	if sep < 2*agg {
		t.Errorf("separate sends only %.2fx slower; the per-transaction gap should dominate", float64(sep)/float64(agg))
	}
}

func TestRdmaSkipsPIOCost(t *testing.T) {
	// When the host PIO path is slower than the wire, an RDMA transaction
	// must beat eager: the DMA engine streams at wire pace while PIO is
	// throttled by the host copy.
	prof := GM2000()
	prof.PIOBandwidth = 1e8 // slower than the 245 MB/s wire
	deliverAt := func(kind TxKind) sim.Time {
		w := sim.NewWorld()
		f := NewFabric(w, 2, DefaultHost())
		net, err := f.AddNetwork(prof)
		if err != nil {
			t.Fatal(err)
		}
		var at sim.Time
		net.NIC(1).OnRecv(func(Delivery) { at = w.Now() })
		if err := net.NIC(0).Submit(&Tx{Dst: 1, Kind: kind, Segs: [][]byte{make([]byte, 1<<20)}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	if rdma, eager := deliverAt(TxRdma), deliverAt(TxEager); rdma >= eager {
		t.Errorf("1MB rdma arrived at %v, eager at %v: rdma must be faster", rdma, eager)
	}
	// The eager sender NIC must still free earlier than the RDMA one
	// relative to its own drain: eager frees at host-copy completion.
	w := sim.NewWorld()
	f := NewFabric(w, 2, DefaultHost())
	net, err := f.AddNetwork(GM2000())
	if err != nil {
		t.Fatal(err)
	}
	net.NIC(1).OnRecv(func(Delivery) {})
	var idleAt sim.Time
	net.NIC(0).OnIdle(func() { idleAt = w.Now() })
	if err := net.NIC(0).Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{make([]byte, 1<<20)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	pio := sim.ByteTime(1<<20, GM2000().PIOBandwidth)
	if idleAt < pio {
		t.Errorf("eager NIC idled at %v, before the %v host copy finished", idleAt, pio)
	}
}

func TestRdmaNICBusyUntilDrain(t *testing.T) {
	w, _, net := testFabric(t, MX10G())
	net.NIC(1).OnRecv(func(Delivery) {})
	nic := net.NIC(0)
	var idleAt sim.Time
	nic.OnIdle(func() { idleAt = w.Now() })
	size := 1 << 20
	if err := nic.Submit(&Tx{Dst: 1, Kind: TxRdma, Segs: [][]byte{make([]byte, size)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	stream := sim.ByteTime(size, net.Profile().Bandwidth)
	if idleAt < stream {
		t.Errorf("NIC idled at %v, before the %v DMA stream could have drained", idleAt, stream)
	}
}

func TestTwoNetworksAreIndependentRails(t *testing.T) {
	w := sim.NewWorld()
	f := NewFabric(w, 2, DefaultHost())
	mx, err := f.AddNetwork(MX10G())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := f.AddNetwork(QsNetII())
	if err != nil {
		t.Fatal(err)
	}
	size := 4 << 20

	oneRail := func() sim.Time {
		w := sim.NewWorld()
		f := NewFabric(w, 2, DefaultHost())
		net, _ := f.AddNetwork(MX10G())
		var done sim.Time
		net.NIC(1).OnRecv(func(Delivery) { done = w.Now() })
		if err := net.NIC(0).Submit(&Tx{Dst: 1, Kind: TxRdma, Segs: [][]byte{make([]byte, size)}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}()

	// Split the same volume across the two rails, proportionally to their
	// bandwidths.
	var done sim.Time
	n := 0
	rx := func(Delivery) {
		n++
		if w.Now() > done {
			done = w.Now()
		}
	}
	mx.NIC(1).OnRecv(rx)
	qs.NIC(1).OnRecv(rx)
	mxShare := int(float64(size) * mx.Profile().Bandwidth / (mx.Profile().Bandwidth + qs.Profile().Bandwidth))
	if err := mx.NIC(0).Submit(&Tx{Dst: 1, Kind: TxRdma, Segs: [][]byte{make([]byte, mxShare)}}); err != nil {
		t.Fatal(err)
	}
	if err := qs.NIC(0).Submit(&Tx{Dst: 1, Kind: TxRdma, Segs: [][]byte{make([]byte, size-mxShare)}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("%d deliveries, want 2", n)
	}
	if done >= oneRail {
		t.Errorf("two rails finished at %v, one rail at %v: striping must win", done, oneRail)
	}
}

func TestNICStats(t *testing.T) {
	w, _, net := testFabric(t, MX10G())
	net.NIC(1).OnRecv(func(Delivery) {})
	nic := net.NIC(0)
	for i := 0; i < 4; i++ {
		if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{make([]byte, 100), make([]byte, 28)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	st := nic.Stats()
	if st.TxPackets != 4 || st.TxBytes != 4*128 || st.TxSegs != 8 {
		t.Errorf("sender stats %+v, want 4 packets / 512 bytes / 8 segments", st)
	}
	if st.MaxQueue < 2 {
		t.Errorf("MaxQueue = %d, want >= 2 (all submitted at once)", st.MaxQueue)
	}
	rst := net.NIC(1).Stats()
	if rst.RxPackets != 4 || rst.RxBytes != 4*128 {
		t.Errorf("receiver stats %+v, want 4 packets / 512 bytes", rst)
	}
}

func TestWireScaleDegradesBandwidth(t *testing.T) {
	arrival := func(scale float64) sim.Time {
		w, _, net := testFabric(t, MX10G())
		if scale != 1 {
			net.SetWireScale(scale)
		}
		if net.WireScale() != scale {
			t.Fatalf("WireScale() = %v, want %v", net.WireScale(), scale)
		}
		var at sim.Time
		net.NIC(1).OnRecv(func(Delivery) { at = w.Now() })
		if err := net.NIC(0).Submit(&Tx{Dst: 1, Kind: TxRdma, Segs: [][]byte{make([]byte, 1<<20)}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	full, half := arrival(1.0), arrival(0.5)
	ratio := float64(half) / float64(full)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("halving the wire scale changed a 1MB stream by %.2fx, want ~2x", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetWireScale(0) should panic")
		}
	}()
	w := sim.NewWorld()
	f := NewFabric(w, 2, DefaultHost())
	net, _ := f.AddNetwork(MX10G())
	net.SetWireScale(0)
}

func TestCopyCost(t *testing.T) {
	w := sim.NewWorld()
	f := NewFabric(w, 1, Host{MemcpyBandwidth: 1e9})
	if got := f.Node(0).CopyCost(1000); got != 1*sim.Microsecond {
		t.Errorf("CopyCost(1000) = %v, want 1µs at 1 GB/s", got)
	}
}

func TestDeliveryLatencyScalesWithSize(t *testing.T) {
	// Property: arrival time is non-decreasing in message size.
	arrival := func(size int) sim.Time {
		w, _, net := testFabric(t, TCPGbE())
		var at sim.Time
		net.NIC(1).OnRecv(func(Delivery) { at = w.Now() })
		if err := net.NIC(0).Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{make([]byte, size)}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return arrival(x) <= arrival(y)
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFabricAccessors(t *testing.T) {
	w := sim.NewWorld()
	f := NewFabric(w, 3, DefaultHost())
	if f.Nodes() != 3 {
		t.Errorf("Nodes() = %d, want 3", f.Nodes())
	}
	if f.World() != w {
		t.Error("World() does not round-trip")
	}
	net, err := f.AddNetwork(MX10G())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Networks()) != 1 || f.Networks()[0] != net {
		t.Error("Networks() does not report the added network")
	}
	if net.NIC(2).Node().ID != 2 {
		t.Error("NIC/node wiring broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Node() should panic")
		}
	}()
	f.Node(5)
}
