package simnet

import (
	"testing"

	"nmad/internal/sim"
)

// lossyRun drives n packets through a single-rail two-node fabric with
// the given fault profile and reports which submissions were delivered,
// in delivery order, plus the injector stats.
func lossyRun(t *testing.T, fp FaultProfile, n int) ([]int, FaultStats) {
	t.Helper()
	w := sim.NewWorld()
	f := NewFabric(w, 2, DefaultHost())
	net, err := f.AddNetwork(MX10G())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetFaults(fp); err != nil {
		t.Fatal(err)
	}
	var got []int
	net.NIC(1).OnRecv(func(d Delivery) { got = append(got, int(d.Aux)) })
	nic := net.NIC(0)
	for i := 0; i < n; i++ {
		payload := make([]byte, 64)
		if err := nic.Submit(&Tx{Dst: 1, Kind: TxEager, Segs: [][]byte{payload}, Aux: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return got, net.FaultStats()
}

func TestFaultsDeterministicAndCounted(t *testing.T) {
	fp := FaultProfile{Seed: 7, Rails: []RailFaults{{DropProb: 0.2, DupProb: 0.1, ReorderProb: 0.3}}}
	const n = 400
	a, sa := lossyRun(t, fp, n)
	b, sb := lossyRun(t, fp, n)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, delivery %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	if sa.Dropped == 0 || sa.Duplicated == 0 || sa.Reordered == 0 {
		t.Fatalf("expected every fault class at n=%d: %+v", n, sa)
	}
	if want := n - sa.Dropped + sa.Duplicated; len(a) != want {
		t.Fatalf("delivered %d, stats imply %d (%+v)", len(a), want, sa)
	}
	// A different seed must produce a different sequence.
	fp.Seed = 8
	c, _ := lossyRun(t, fp, n)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault sequences")
	}
}

func TestFaultsReorderActuallyReorders(t *testing.T) {
	fp := FaultProfile{Seed: 3, Rails: []RailFaults{{ReorderProb: 0.5}}}
	got, st := lossyRun(t, fp, 200)
	if len(got) != 200 {
		t.Fatalf("reorder-only profile lost packets: %d/200", len(got))
	}
	out := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			out++
		}
	}
	if out == 0 || st.Reordered == 0 {
		t.Fatalf("no reordering observed (stats %+v)", st)
	}
}

func TestFaultsOutageDropsEverythingInWindow(t *testing.T) {
	// The outage covers the whole run: nothing may arrive.
	fp := FaultProfile{Seed: 1, Rails: []RailFaults{{
		Outages: []Outage{{At: 0, Duration: sim.FromMicroseconds(1e6)}},
	}}}
	got, st := lossyRun(t, fp, 50)
	if len(got) != 0 {
		t.Fatalf("outage delivered %d packets", len(got))
	}
	if st.OutageDropped != 50 {
		t.Fatalf("outage dropped %d, want 50", st.OutageDropped)
	}
}

func TestFaultProfileValidate(t *testing.T) {
	bad := []FaultProfile{
		{Rails: []RailFaults{{DropProb: 1.5}}},
		{Rails: []RailFaults{{DupProb: -0.1}}},
		{Rails: []RailFaults{{ReorderJitter: -1}}},
		{Rails: []RailFaults{{Outages: []Outage{{At: 0, Duration: 0}}}}},
	}
	for i, fp := range bad {
		if fp.Validate() == nil {
			t.Errorf("case %d: bad profile validated", i)
		}
	}
	if err := UniformLoss(1, 0.1, 3).Validate(); err != nil {
		t.Errorf("uniform loss profile rejected: %v", err)
	}
}
