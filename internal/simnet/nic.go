package simnet

import (
	"errors"
	"fmt"

	"nmad/internal/sim"
)

// TxKind selects the injection mechanism for a transaction.
type TxKind uint8

const (
	// TxEager is a PIO transaction: the host copies the payload into the
	// NIC (charged at PIOBandwidth) and the NIC frees as soon as the copy
	// completes; the wire drains concurrently.
	TxEager TxKind = iota
	// TxRdma is a DMA/RDMA transaction: setup is cheap, the payload
	// streams from user memory at wire speed, and the NIC's DMA engine
	// stays busy until the stream drains. Receivers get the payload
	// without a host copy (zero-copy placement).
	TxRdma
)

func (k TxKind) String() string {
	switch k {
	case TxEager:
		return "eager"
	case TxRdma:
		return "rdma"
	default:
		return fmt.Sprintf("TxKind(%d)", uint8(k))
	}
}

// Tx is one NIC transaction: a gather list bound for a peer node.
type Tx struct {
	Dst  NodeID
	Kind TxKind
	// Segs is the gather list. The NIC snapshots the bytes at Submit time,
	// so callers may reuse their buffers once Submit returns.
	Segs [][]byte
	// Aux is 64 bits of out-of-band immediate data delivered with the
	// packet (models RDMA immediate data / MX match bits). The engine uses
	// it for rendezvous body identification.
	Aux uint64
	// OnSent, if non-nil, fires when the NIC finishes with the transaction
	// on the sending side.
	OnSent func()

	// Snapshot state filled by Submit: the flattened bytes and the
	// gather-list shape, captured before Submit returns so the caller may
	// reuse both the segment buffers and the Segs slice itself while the
	// transaction waits in the queue.
	data  []byte
	nsegs int
}

// Delivery is an arrived transaction, handed to the receiving NIC's
// handler RecvOverhead after wire arrival.
type Delivery struct {
	Src  NodeID
	Kind TxKind
	Aux  uint64
	Data []byte // concatenated gather list
}

// Errors returned by Submit.
var (
	ErrTooManySegments = errors.New("simnet: transaction exceeds the NIC gather list capacity")
	ErrOversized       = errors.New("simnet: transaction exceeds the NIC MTU")
	ErrSelfSend        = errors.New("simnet: transaction addressed to the sending node")
)

// NICStats counts traffic through one adapter.
type NICStats struct {
	TxPackets int
	TxBytes   int64
	TxSegs    int
	RxPackets int
	RxBytes   int64
	MaxQueue  int
}

// NIC is one node's adapter on one network. Transactions submitted while
// the NIC is busy queue FIFO. When the NIC transitions to idle with an
// empty queue it invokes the idle callback — the hook the NewMadeleine
// transfer layer uses to request the next optimized packet (paper §3.3:
// "the transfer layer ... requests from the upper layer a new optimized
// packet to be sent, as soon as a card becomes idle").
type NIC struct {
	world *sim.World
	node  *Node
	net   *Network

	busy   bool
	queue  []*Tx
	onIdle func()
	onRecv func(Delivery)

	stats NICStats
}

func newNIC(w *sim.World, node *Node, net *Network) *NIC {
	return &NIC{world: w, node: node, net: net}
}

// Node returns the host this NIC is plugged into.
func (n *NIC) Node() *Node { return n.node }

// Network returns the network this NIC is attached to.
func (n *NIC) Network() *Network { return n.net }

// Profile returns the NIC's technology parameters.
func (n *NIC) Profile() Profile { return n.net.prof }

// Stats returns a snapshot of the traffic counters.
func (n *NIC) Stats() NICStats { return n.stats }

// Idle reports whether the NIC could start a new transaction immediately.
func (n *NIC) Idle() bool { return !n.busy && len(n.queue) == 0 }

// QueueLen reports how many transactions wait behind the current one.
func (n *NIC) QueueLen() int { return len(n.queue) }

// OnIdle registers the callback invoked each time the NIC drains.
func (n *NIC) OnIdle(fn func()) { n.onIdle = fn }

// OnRecv registers the delivery handler. Arrivals with no handler panic:
// a driver must be bound before traffic flows.
func (n *NIC) OnRecv(fn func(Delivery)) { n.onRecv = fn }

// Submit validates and enqueues a transaction, starting it at once if the
// NIC is idle.
func (n *NIC) Submit(tx *Tx) error {
	p := n.net.prof
	if len(tx.Segs) > p.MaxSegments {
		return fmt.Errorf("%w: %d segments > %d on %s", ErrTooManySegments, len(tx.Segs), p.MaxSegments, p.Name)
	}
	if tx.Dst == n.node.ID {
		return ErrSelfSend
	}
	if int(tx.Dst) < 0 || int(tx.Dst) >= len(n.net.nics) {
		return fmt.Errorf("simnet: no node %d on %s", tx.Dst, p.Name)
	}
	size := 0
	for _, s := range tx.Segs {
		size += len(s)
	}
	if p.MTU > 0 && size > p.MTU {
		return fmt.Errorf("%w: %d bytes > MTU %d on %s", ErrOversized, size, p.MTU, p.Name)
	}
	// Snapshot now, not at transmission start: a queued transaction must
	// not read the caller's buffers later (the documented Segs contract).
	tx.nsegs = len(tx.Segs)
	tx.data = make([]byte, 0, size)
	for _, s := range tx.Segs {
		tx.data = append(tx.data, s...)
	}
	tx.Segs = nil
	n.queue = append(n.queue, tx)
	if len(n.queue) > n.stats.MaxQueue {
		n.stats.MaxQueue = len(n.queue)
	}
	if !n.busy {
		n.startNext()
	}
	return nil
}

// startNext pops the queue head and runs its timing model.
func (n *NIC) startNext() {
	tx := n.queue[0]
	n.queue = n.queue[1:]
	n.busy = true

	p := n.net.prof
	size := len(tx.data)
	data := tx.data

	now := n.world.Now()
	setup := p.SendOverhead + p.Gap + sim.Time(tx.nsegs)*p.PerSegment
	var arrival, nicFree sim.Time
	switch tx.Kind {
	case TxEager:
		// Cut-through PIO: the host copies the payload into the NIC while
		// the wire drains concurrently; the packet cannot finish before
		// either stage does. The NIC frees when the host copy lands.
		nicDone := now + setup + sim.ByteTime(size, p.PIOBandwidth)
		arrival = n.net.reserveWire(n.node.ID, tx.Dst, size+p.HeaderBytes, now+setup, nicDone)
		nicFree = nicDone
	case TxRdma:
		// DMA setup is constant; the DMA engine then occupies the NIC at
		// wire pace until the body has streamed out.
		arrival = n.net.reserveWire(n.node.ID, tx.Dst, size+p.HeaderBytes, now+setup, 0)
		nicFree = arrival - p.Latency // drain instant on the sender side
	default:
		panic("simnet: unknown TxKind " + tx.Kind.String())
	}

	n.stats.TxPackets++
	n.stats.TxBytes += int64(size)
	n.stats.TxSegs += tx.nsegs

	// Sender-side completion: free the NIC, then refill.
	n.world.At(nicFree, func() {
		if tx.OnSent != nil {
			tx.OnSent()
		}
		if len(n.queue) > 0 {
			n.startNext()
			return
		}
		n.busy = false
		if n.onIdle != nil {
			n.onIdle()
		}
	})

	// Receiver-side delivery, through the fault injector when one is
	// installed: a drop schedules nothing (the wire time was already
	// paid above), reorder jitter delays this delivery only, and a
	// duplicate schedules a second delivery of the same bits.
	peer := n.net.nics[tx.Dst]
	src := n.node.ID
	deliverAt := func(t sim.Time) {
		n.world.At(t, func() {
			peer.stats.RxPackets++
			peer.stats.RxBytes += int64(len(data))
			if peer.onRecv == nil {
				panic(fmt.Sprintf("simnet: delivery on %s node %d with no receive handler", p.Name, tx.Dst))
			}
			peer.onRecv(Delivery{Src: src, Kind: tx.Kind, Aux: tx.Aux, Data: data})
		})
	}
	if fs := n.net.faults; fs != nil {
		v := fs.decide(arrival, p.Latency)
		if !v.deliver {
			return
		}
		deliverAt(arrival + v.jitter + p.RecvOverhead)
		if v.duplicate {
			deliverAt(arrival + v.jitter + v.dupDelay + p.RecvOverhead)
		}
		return
	}
	deliverAt(arrival + p.RecvOverhead)
}
