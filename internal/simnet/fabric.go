package simnet

import (
	"fmt"

	"nmad/internal/sim"
)

// NodeID identifies a host in the fabric.
type NodeID int

// Host carries the node-local machine parameters (the paper's testbed:
// 1.8 GHz dual-core Opterons with DDR1 memory).
type Host struct {
	// MemcpyBandwidth is the sustained host memory copy rate in bytes per
	// second. Eager receives, datatype pack/unpack and unexpected-message
	// buffering are charged against it.
	MemcpyBandwidth float64
}

// DefaultHost matches the 2006 Opteron testbed of the paper.
func DefaultHost() Host { return Host{MemcpyBandwidth: 1.2e9} }

// Node is one simulated host.
type Node struct {
	ID   NodeID
	host Host
	// slowdown scales every host-model cost of the node: 1 is the
	// nominal machine, 4 is a node whose memory system delivers a
	// quarter of the bandwidth (thermal throttling, a noisy neighbor, a
	// failing DIMM). Mutable mid-run — the straggler-node scenarios
	// drive it through SetSlowdown.
	slowdown float64
}

// Host returns the machine parameters of the node.
func (n *Node) Host() Host { return n.host }

// SetSlowdown scales the node's host-model costs by the given factor
// (>= 1; 1 restores the nominal machine). It takes effect immediately:
// every memcpy charged after the call pays factor times the nominal
// cost, which is how a scenario turns one node into a straggler mid-run.
func (n *Node) SetSlowdown(factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("simnet: slowdown factor %v < 1 would speed the node up", factor))
	}
	n.slowdown = factor
}

// Slowdown reports the current host-model scale factor (1 = nominal).
func (n *Node) Slowdown() float64 {
	if n.slowdown == 0 {
		return 1
	}
	return n.slowdown
}

// CopyCost is the virtual time needed to memcpy n bytes on this host.
func (n *Node) CopyCost(size int) sim.Time {
	return sim.ByteTime(size, n.host.MemcpyBandwidth/n.Slowdown())
}

// Fabric is a set of nodes joined by one or more networks. Each call to
// AddNetwork installs one NIC per node for that technology, so a two-rail
// machine is simply a fabric with two networks.
type Fabric struct {
	world  *sim.World
	nodes  []*Node
	nets   []*Network
	faults *FaultProfile // installed fault injection, nil = perfect fabric
}

// NewFabric creates n nodes sharing one world and one host parameter set.
func NewFabric(w *sim.World, n int, host Host) *Fabric {
	if n < 1 {
		panic("simnet: fabric needs at least one node")
	}
	f := &Fabric{world: w}
	for i := 0; i < n; i++ {
		f.nodes = append(f.nodes, &Node{ID: NodeID(i), host: host})
	}
	return f
}

// World returns the simulation world of the fabric.
func (f *Fabric) World() *sim.World { return f.world }

// Nodes reports how many hosts the fabric has.
func (f *Fabric) Nodes() int { return len(f.nodes) }

// Node returns host id, panicking on an out-of-range id.
func (f *Fabric) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(f.nodes) {
		panic(fmt.Sprintf("simnet: no node %d in a %d-node fabric", id, len(f.nodes)))
	}
	return f.nodes[id]
}

// AddNetwork plugs one NIC per node into a new network of the given
// technology and returns it.
func (f *Fabric) AddNetwork(prof Profile) (*Network, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	net := &Network{
		fabric:   f,
		prof:     prof,
		wireFree: make(map[[2]NodeID]sim.Time),
	}
	for _, node := range f.nodes {
		net.nics = append(net.nics, newNIC(f.world, node, net))
	}
	f.nets = append(f.nets, net)
	return net, nil
}

// Networks returns the installed networks in AddNetwork order.
func (f *Fabric) Networks() []*Network { return f.nets }

// Network is one interconnect technology spanning every node of a fabric.
type Network struct {
	fabric    *Fabric
	prof      Profile
	nics      []*NIC
	wireFree  map[[2]NodeID]sim.Time // per directed pair: when the channel drains
	wireScale float64                // effective-bandwidth factor (congestion), 1 = nominal
	faults    *faultState            // fault injector, nil = perfect rail
}

// SetWireScale degrades (or restores) the network's effective wire
// bandwidth by a factor in (0, 1]: a model of congestion from traffic
// outside the simulated job (a shared switch, another application). The
// nominal profile is unchanged — which is exactly the situation the
// engine's bandwidth sampling exists to detect.
func (n *Network) SetWireScale(scale float64) {
	if scale <= 0 || scale > 1 {
		panic("simnet: wire scale must be in (0, 1]")
	}
	n.wireScale = scale
}

// WireScale reports the current congestion factor.
func (n *Network) WireScale() float64 {
	if n.wireScale == 0 {
		return 1
	}
	return n.wireScale
}

// Profile returns the technology parameters of the network.
func (n *Network) Profile() Profile { return n.prof }

// World returns the simulation world the network lives in.
func (n *Network) World() *sim.World { return n.fabric.world }

// NIC returns the adapter of the given node on this network.
func (n *Network) NIC(id NodeID) *NIC {
	if int(id) < 0 || int(id) >= len(n.nics) {
		panic(fmt.Sprintf("simnet: no NIC for node %d on %s", id, n.prof.Name))
	}
	return n.nics[id]
}

// reserveWire books the directed channel src->dst for a packet of
// wireBytes whose first byte can hit the wire at ready and whose last
// byte cannot leave the host before drainFloor (cut-through: the wire
// drains concurrently with PIO injection, but cannot finish before the
// host copy does). It returns the arrival time at the remote NIC.
// Packets between a pair arrive in the order they were booked (FIFO
// wire), and two packets never overlap on the channel.
func (n *Network) reserveWire(src, dst NodeID, wireBytes int, ready, drainFloor sim.Time) sim.Time {
	key := [2]NodeID{src, dst}
	depart := ready
	if free := n.wireFree[key]; free > depart {
		depart = free
	}
	drain := depart + sim.ByteTime(wireBytes, n.prof.Bandwidth*n.WireScale())
	if drain < drainFloor {
		drain = drainFloor
	}
	n.wireFree[key] = drain
	return drain + n.prof.Latency
}
