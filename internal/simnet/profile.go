// Package simnet models high-performance cluster interconnects on top of
// the sim kernel. It is the hardware substitute for this reproduction: the
// paper's Myri-10G, Quadrics QM500, Myrinet-2000, SCI and Ethernet NICs
// become parameterized cost models (a LogGP-style family) attached to a
// deterministic virtual clock.
//
// The model has three serial resources per transfer:
//
//	host:  per-call software overhead (charged by the layers above),
//	NIC:   injection — Gap + segments·PerSegment + size/PIOBandwidth for
//	       PIO transactions, or Gap + segments·PerSegment setup for DMA,
//	NIC.   For DMA the NIC stays busy until the wire drains (the DMA
//	       engine paces at wire speed).
//	wire:  a FIFO channel per directed node pair: each packet occupies it
//	       for (size+HeaderBytes)/Bandwidth, then arrives Latency later.
//
// Aggregation pays Gap once instead of once per message, and rendezvous
// DMA skips the host memcpy on both sides — exactly the two effects the
// paper's engine exploits.
package simnet

import "nmad/internal/sim"

// Profile is the parameter set of one network technology.
type Profile struct {
	Name string

	// Latency is the one-way wire latency (switch + cable + NIC pipeline).
	Latency sim.Time
	// Bandwidth is the wire data rate in bytes per second.
	Bandwidth float64
	// PIOBandwidth is the host-to-NIC copy rate for eager (PIO) sends.
	PIOBandwidth float64
	// SendOverhead is the host CPU cost to hand one transaction to the NIC.
	SendOverhead sim.Time
	// RecvOverhead is the host CPU cost to take one arrival from the NIC.
	RecvOverhead sim.Time
	// Gap is the per-transaction NIC occupancy floor: the minimum interval
	// between two successive injections (doorbell, descriptor fetch).
	Gap sim.Time
	// PerSegment is the extra injection cost for each gather/scatter
	// segment in a transaction.
	PerSegment sim.Time
	// MaxSegments is the gather/scatter list capacity. 1 means the NIC can
	// only send contiguous buffers.
	MaxSegments int
	// RdvThreshold is the eager/rendezvous protocol switch recommended by
	// the driver, in bytes. It also caps aggregation in the paper's
	// aggregation strategy.
	RdvThreshold int
	// RDMA reports whether the NIC offers remote put/get (zero-copy bodies).
	RDMA bool
	// HeaderBytes is the hardware framing added to every packet on the wire.
	HeaderBytes int
	// MTU is the largest single transaction the NIC accepts; larger bodies
	// must be chunked by the driver. 0 means unlimited.
	MTU int
}

// Validate reports whether the profile is self-consistent.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return errProfile("empty name")
	case p.Bandwidth <= 0:
		return errProfile(p.Name + ": non-positive wire bandwidth")
	case p.PIOBandwidth <= 0:
		return errProfile(p.Name + ": non-positive PIO bandwidth")
	case p.MaxSegments < 1:
		return errProfile(p.Name + ": MaxSegments must be >= 1")
	case p.RdvThreshold < 0:
		return errProfile(p.Name + ": negative rendezvous threshold")
	case p.Latency < 0 || p.Gap < 0 || p.SendOverhead < 0 || p.RecvOverhead < 0 || p.PerSegment < 0:
		return errProfile(p.Name + ": negative time constant")
	case p.MTU < 0:
		return errProfile(p.Name + ": negative MTU")
	}
	return nil
}

type errProfile string

func (e errProfile) Error() string { return "simnet: bad profile: " + string(e) }

// The five technologies the NewMadeleine prototype was ported to (paper
// §4), calibrated against the 2006 testbed of §5 (two 1.8 GHz Opteron
// nodes). See DESIGN.md §5 for the calibration rationale.

// MX10G models a Myri-10G NIC with the MX 1.2 driver — the paper's primary
// evaluation network (~2.3 µs MPI latency, ~1.2 GB/s).
func MX10G() Profile {
	return Profile{
		Name:         "mx10g",
		Latency:      sim.FromMicroseconds(1.30),
		Bandwidth:    1.25e9,
		PIOBandwidth: 4.0e9,
		SendOverhead: sim.FromMicroseconds(0.50),
		RecvOverhead: sim.FromMicroseconds(0.40),
		Gap:          sim.FromMicroseconds(0.55),
		PerSegment:   50 * sim.Nanosecond,
		MaxSegments:  32,
		RdvThreshold: 32 << 10,
		RDMA:         true,
		HeaderBytes:  8,
	}
}

// QsNetII models a Quadrics QM500 (Elan4) NIC — the paper's second
// evaluation network (~1.8 µs MPI latency, ~900 MB/s, native put/get).
func QsNetII() Profile {
	return Profile{
		Name:         "qsnet2",
		Latency:      sim.FromMicroseconds(1.10),
		Bandwidth:    9.0e8,
		PIOBandwidth: 4.5e9,
		SendOverhead: sim.FromMicroseconds(0.35),
		RecvOverhead: sim.FromMicroseconds(0.30),
		Gap:          sim.FromMicroseconds(0.40),
		PerSegment:   40 * sim.Nanosecond,
		MaxSegments:  16,
		RdvThreshold: 16 << 10,
		RDMA:         true,
		HeaderBytes:  8,
	}
}

// GM2000 models a Myrinet-2000 NIC with the GM driver (the generation
// before MX; higher latency, ~245 MB/s, a two-entry gather list).
func GM2000() Profile {
	return Profile{
		Name:         "gm2000",
		Latency:      sim.FromMicroseconds(6.50),
		Bandwidth:    2.45e8,
		PIOBandwidth: 3.0e8,
		SendOverhead: sim.FromMicroseconds(0.90),
		RecvOverhead: sim.FromMicroseconds(0.80),
		Gap:          sim.FromMicroseconds(1.20),
		PerSegment:   150 * sim.Nanosecond,
		MaxSegments:  2,
		RdvThreshold: 16 << 10,
		RDMA:         false,
		HeaderBytes:  16,
	}
}

// SISCI models a Dolphin SCI adapter with the SISCI API (PIO remote writes
// into a mapped window; no gather list).
func SISCI() Profile {
	return Profile{
		Name:         "sisci",
		Latency:      sim.FromMicroseconds(2.30),
		Bandwidth:    3.26e8,
		PIOBandwidth: 3.26e8,
		SendOverhead: sim.FromMicroseconds(0.45),
		RecvOverhead: sim.FromMicroseconds(0.40),
		Gap:          sim.FromMicroseconds(0.60),
		PerSegment:   120 * sim.Nanosecond,
		MaxSegments:  1,
		RdvThreshold: 8 << 10,
		RDMA:         true,
		HeaderBytes:  8,
	}
}

// TCPGbE models gigabit Ethernet through the kernel TCP stack (the paper's
// fallback port; writev gives it a gather list, but latency is two orders
// of magnitude above the native interconnects).
func TCPGbE() Profile {
	return Profile{
		Name:         "tcp",
		Latency:      sim.FromMicroseconds(25.0),
		Bandwidth:    1.17e8,
		PIOBandwidth: 2.0e9,
		SendOverhead: sim.FromMicroseconds(2.00),
		RecvOverhead: sim.FromMicroseconds(2.00),
		Gap:          sim.FromMicroseconds(3.00),
		PerSegment:   200 * sim.Nanosecond,
		MaxSegments:  16,
		RdvThreshold: 64 << 10,
		RDMA:         false,
		HeaderBytes:  66, // Ethernet + IP + TCP framing
	}
}

// Profiles returns every built-in profile, in a stable order.
func Profiles() []Profile {
	return []Profile{MX10G(), QsNetII(), GM2000(), SISCI(), TCPGbE()}
}

// ProfileByName looks a built-in profile up by its Name field.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
