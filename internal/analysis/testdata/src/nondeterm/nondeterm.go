// Package nondeterm is the determinism analyzer's negative control: it
// commits every sin the determ fixture does, but it never opted into
// the deterministic contract (no path match, no marker comment), so
// nothing may be reported.
package nondeterm

import (
	"math/rand"
	"time"
)

var _ = rand.Int

func wallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func emit(string) {}

func traceAll(m map[string]int) {
	for k := range m {
		emit(k)
	}
}
