// Package spileak is the spileak fixture: one strategy that hoards
// every engine view it is shown, one that copies what it needs, and a
// non-strategy type that proves the analyzer stays in its lane.
package spileak

import "nmad/sched"

var saved []sched.RailInfo // want `spileak: package variable saved retains the \[\]sched.RailInfo view`

// leaky implements sched.Strategy and retains every view.
type leaky struct {
	win   sched.Window
	rails []sched.RailInfo
	wraps []*sched.Wrapper
	last  sched.Wrapper
	cb    func() int
}

func (l *leaky) Name() string { return "leaky" }

func (l *leaky) Elect(w sched.Window, rail sched.RailInfo) *sched.Election {
	l.win = w // want `spileak: Elect stores the sched.Window view into field win`
	var e sched.Election
	w.Scan(func(wr sched.Wrapper) bool {
		l.wraps = append(l.wraps, &wr) // want `spileak: Elect stores a \*sched.Wrapper into field wraps`
		l.last = wr                    // legal: a Wrapper value is a copy
		e.Pick(wr)
		return true
	})
	return &e
}

func (l *leaky) PlanBody(rails []sched.RailInfo, size int) []sched.BodyShare {
	l.rails = rails // want `spileak: PlanBody stores the \[\]sched.RailInfo view into field rails`
	saved = rails   // want `spileak: PlanBody stores the \[\]sched.RailInfo view into package variable saved`
	go func() {
		_ = rails // want `spileak: PlanBody leaks the \[\]sched.RailInfo view into a goroutine`
	}()
	l.cb = func() int { return len(rails) } // want `spileak: PlanBody leaks the \[\]sched.RailInfo view into field cb`
	return sched.SingleRail(rails, size)
}

// clean implements sched.Strategy and only copies scalar facts out of
// the views: no findings.
type clean struct {
	bytes    int
	bestRail int
}

func (c *clean) Name() string { return "clean" }

func (c *clean) Elect(w sched.Window, rail sched.RailInfo) *sched.Election {
	local := w // legal: locals die with the call
	var e sched.Election
	n := 0
	local.Scan(func(wr sched.Wrapper) bool {
		e.Pick(wr)
		n++
		return n < 4
	})
	c.bytes += e.WireSize() // legal: scalar copy
	return &e
}

func (c *clean) PlanBody(rails []sched.RailInfo, size int) []sched.BodyShare {
	c.bestRail = sched.BestRail(rails) // legal: scalar copy
	return sched.SingleRail(rails, size)
}

// holder is not a sched.Strategy, so its stores are out of scope even
// though the field type matches.
type holder struct{ win sched.Window }

func (h *holder) set(w sched.Window) { h.win = w } // legal: not a strategy
