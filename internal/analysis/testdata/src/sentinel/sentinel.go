// Package sentinel is the sentinelcmp fixture: local sentinel errors
// and error types compared every wrong way, next to the idioms that
// stay legal.
package sentinel

import (
	"errors"
	"fmt"
	"io/fs"
)

var (
	ErrProto = errors.New("sentinel: protocol anomaly")
	ErrBusy  = errors.New("sentinel: busy")
)

// ParseError is a module error type: assertions on it need errors.As.
type ParseError struct{ Line int }

func (e *ParseError) Error() string { return fmt.Sprintf("parse error at line %d", e.Line) }

func compare(err error) bool {
	if err == ErrProto { // want `sentinelcmp: direct == comparison against sentinel ErrProto`
		return true
	}
	if err != ErrBusy { // want `sentinelcmp: direct != comparison against sentinel ErrBusy`
		return true
	}
	if ErrProto == err { // want `sentinelcmp: direct == comparison against sentinel ErrProto`
		return true
	}
	return false
}

func legal(err error) bool {
	if err == nil { // legal: nil checks stay idiomatic
		return true
	}
	if errors.Is(err, ErrProto) { // legal: the required form
		return true
	}
	var other error
	return err == other // legal: neither side is a sentinel
}

func allowedIdentity(err error) bool {
	//nmadvet:allow sentinelcmp(fixture: err was produced two lines up, unwrapped by construction)
	return err == ErrBusy
}

func classify(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrProto: // want `sentinelcmp: switch case matches sentinel ErrProto by identity`
		return "proto"
	}
	if _, ok := err.(*ParseError); ok { // want `sentinelcmp: type assertion to error type \*ParseError`
		return "parse"
	}
	switch err.(type) {
	case *ParseError: // want `sentinelcmp: type switch case on error type \*ParseError`
		return "parse"
	case *fs.PathError: // legal: not a module error type
		return "path"
	}
	return "other"
}
