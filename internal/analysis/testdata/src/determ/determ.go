// Package determ is the determinism analyzer fixture: a package that
// opts into the deterministic contract and violates it in every way the
// analyzer knows, next to the idioms that must stay legal.
//
//nmadvet:deterministic
package determ

import (
	"math/rand" // want `determinism: import of math/rand in a deterministic package`
	"sort"
	"time"
)

var _ = rand.Int

func wallClock() time.Duration {
	start := time.Now()      // want `determinism: time.Now reads the wall clock`
	return time.Since(start) // want `determinism: time.Since reads the wall clock`
}

func emit(string)  {}
func schedule(int) {}
func sum(m map[string]int) int {
	total := 0
	for _, v := range m { // legal: pure commutative accumulation
		total += v
	}
	return total
}

func traceAll(m map[string]int) {
	for k := range m { // want `determinism: map iteration order is random and the loop body calls emit`
		emit(k)
	}
}

func sendAll(m map[int]int, ch chan int) {
	for _, v := range m { // want `determinism: map iteration order is random and the loop body sends on a channel`
		ch <- v
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `determinism: map iteration order is random and the loop body appends to keys without sorting it afterwards`
		keys = append(keys, k)
	}
	return keys
}

func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // legal: the sortedKeys idiom — sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func regroup(m map[string]int, by map[int][]string) {
	for k, v := range m { // legal: per-key accumulation is order-free
		by[v] = append(by[v], k)
	}
}

func convertOnly(m map[string]int) float64 {
	var total float64
	for _, v := range m { // legal: conversions are not calls
		total += float64(v)
	}
	return total
}

func clearAll(m map[string]int, other map[string]int) {
	for k := range m { // legal: delete and len are order-free builtins
		if len(other) > 0 {
			delete(other, k)
		}
	}
}

func allowed(m map[string]int) {
	//nmadvet:allow determinism(fixture: effects here are idempotent per key)
	for k := range m {
		schedule(len(k))
	}
}

func inlineAllowed(m map[string]int) {
	for k := range m { //nmadvet:allow determinism(fixture: emit is order-free here)
		emit(k)
	}
}

type recHeader struct {
	Engines map[int]string     `json:"engines"` // legal: json sorts integer keys
	Meta    map[string]string  `json:"meta"`    // legal: json sorts string keys
	scratch map[float64]string // legal: never serialized
	Bad     map[float64]string `json:"bad"` // want `determinism: serialized map field Bad has key type float64 with no sorted JSON marshal order`
}
