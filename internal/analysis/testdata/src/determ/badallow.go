package determ

// The allow-comment grammar is itself checked: a reason is mandatory,
// the analyzer must exist, and an allow that suppresses nothing is
// stale.

//nmadvet:allow determinism() // want `nmadvet: //nmadvet:allow needs a reason`

//nmadvet:allow nosuchanalyzer(reason) // want `nmadvet: //nmadvet:allow names unknown analyzer "nosuchanalyzer"`

//nmadvet:allow-malformed // want `nmadvet: malformed nmadvet comment`

//nmadvet:allow determinism(nothing on this line needs suppressing) // want `nmadvet: stale //nmadvet:allow determinism comment`

func nothingWrongHere() {}
