// Package statstables is the statssync fixture. It mirrors the shape
// of internal/scenario's assertion tables over local stand-ins for
// core.Stats and simnet.FaultStats, with one table kept perfectly in
// sync (no findings) and one drifted in every detectable way.
package statstables

// Stats stands in for core.Stats.
type Stats struct {
	Submitted      int
	OutputPackets  int
	WireBytes      int64
	DupAcks        int
	Enabled        bool    // not numeric: needs no table entry
	PerDriverBytes []int64 // not numeric: needs no table entry
}

// AggregationRatio stands in for the derived-metric methods the tables
// may expose alongside raw fields.
func (s Stats) AggregationRatio() float64 { return float64(s.OutputPackets) }

// FaultStats stands in for simnet.FaultStats.
type FaultStats struct {
	Dropped   int
	Reordered int
}

const aliasKey = "wire_bytes"

// statsFields drifts from Stats in every way statssync can catch:
// DupAcks has no entry, output_pkts misnames OutputPackets, one
// accessor reads two members at once, and one key is not a literal.
var statsFields = map[string]func(Stats) float64{ // want `statssync: statsFields has no entry for .*Stats\.DupAcks: add "dup_acks"`
	"submitted":         func(s Stats) float64 { return float64(s.Submitted) },
	"output_pkts":       func(s Stats) float64 { return float64(s.OutputPackets) },                        // want `statssync: statsFields key "output_pkts" does not match the snake_case name "output_packets"`
	aliasKey:            func(s Stats) float64 { return float64(s.WireBytes) },                            // want `statssync: statsFields key must be a string literal`
	"aggregation_ratio": func(s Stats) float64 { return s.AggregationRatio() + float64(s.OutputPackets) }, // want `statssync: statsFields accessor for "aggregation_ratio" must read exactly one .*Stats member, it reads 2`
}

// faultFields is in perfect sync: no findings.
var faultFields = map[string]func(FaultStats) float64{
	"dropped":   func(s FaultStats) float64 { return float64(s.Dropped) },
	"reordered": func(s FaultStats) float64 { return float64(s.Reordered) },
}

var _ = statsFields
var _ = faultFields
