package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// modulePrefix scopes sentinel detection to this module's packages: the
// analyzers police nmad's own error contracts, not the stdlib's.
const modulePrefix = "nmad"

// SentinelCmpAnalyzer flags direct comparisons against the repo's
// sentinel errors — `err == ErrProtocol`, `switch err { case ErrSyntax:`
// — and type assertions or type switches on module error types. The
// engine wraps errors as they cross layers (gate → engine → facade), so
// only errors.Is / errors.As match reliably.
var SentinelCmpAnalyzer = &Analyzer{
	Name: "sentinelcmp",
	Doc: "require errors.Is/errors.As instead of ==, != or type switches " +
		"against the module's sentinel errors",
	Run: runSentinelCmp,
}

func runSentinelCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			case *ast.TypeAssertExpr:
				if n.Type != nil { // x.(type) inside a type switch is handled below
					checkErrorAssert(pass, n)
				}
			case *ast.TypeSwitchStmt:
				checkErrorTypeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkSentinelCompare(pass *Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	if isNilExpr(pass, cmp.X) || isNilExpr(pass, cmp.Y) {
		return // err == nil stays idiomatic
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if v := sentinelVar(pass, side); v != nil {
			verb := "errors.Is"
			if cmp.Op == token.NEQ {
				verb = "!errors.Is"
			}
			pass.Reportf(cmp.Pos(),
				"direct %s comparison against sentinel %s misses wrapped errors: use %s(err, %s)",
				cmp.Op, v.Name(), verb, v.Name())
			return
		}
	}
}

func checkSentinelSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if tv, ok := pass.Info.Types[sw.Tag]; !ok || !implementsError(tv.Type) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinelVar(pass, e); v != nil {
				pass.Reportf(e.Pos(),
					"switch case matches sentinel %s by identity and misses wrapped errors: use errors.Is in an if/else chain",
					v.Name())
			}
		}
	}
}

func checkErrorAssert(pass *Pass, ta *ast.TypeAssertExpr) {
	if tv, ok := pass.Info.Types[ta.X]; !ok || !implementsError(tv.Type) {
		return
	}
	if name := moduleErrorType(pass, ta.Type); name != "" {
		pass.Reportf(ta.Pos(),
			"type assertion to error type %s misses wrapped errors: use errors.As", name)
	}
}

func checkErrorTypeSwitch(pass *Pass, ts *ast.TypeSwitchStmt) {
	var subject ast.Expr
	switch s := ts.Assign.(type) {
	case *ast.ExprStmt:
		subject = s.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt:
		subject = s.Rhs[0].(*ast.TypeAssertExpr).X
	}
	if subject == nil {
		return
	}
	if tv, ok := pass.Info.Types[subject]; !ok || !implementsError(tv.Type) {
		return
	}
	for _, clause := range ts.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, te := range cc.List {
			if name := moduleErrorType(pass, te); name != "" {
				pass.Reportf(te.Pos(),
					"type switch case on error type %s misses wrapped errors: use errors.As", name)
			}
		}
	}
}

// sentinelVar resolves e to a package-level error variable declared in
// this module, nil otherwise.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	obj := referencedObject(pass.Info, ast.Unparen(e))
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || !inModule(v.Pkg()) {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

// moduleErrorType returns the printable name of the named error type
// the type expression denotes, "" when it is not a module error type.
func moduleErrorType(pass *Pass, te ast.Expr) string {
	tv, ok := pass.Info.Types[te]
	if !ok || !tv.IsType() {
		return ""
	}
	t := tv.Type
	named, _ := t.(*types.Named)
	if named == nil {
		if ptr, ok := t.(*types.Pointer); ok {
			named, _ = ptr.Elem().(*types.Named)
		}
	}
	if named == nil || named.Obj().Pkg() == nil || !inModule(named.Obj().Pkg()) {
		return ""
	}
	if !implementsError(t) {
		return ""
	}
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}

func inModule(pkg *types.Package) bool {
	return pkg.Path() == modulePrefix || strings.HasPrefix(pkg.Path(), modulePrefix+"/")
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
