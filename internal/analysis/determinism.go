package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// DeterministicPkgPaths lists the packages whose behavior must be a
// pure function of their inputs: the engine, the virtual-time machine,
// the fabric, MPI, scenarios, the job queue, replay, the recording
// format and the SPI.
// Byte-identical replay (PR 5), seeded fault injection (PR 6) and the
// scenario corpus (PR 7) all stand on this property. A package outside
// the list can opt in by carrying a //nmadvet:deterministic comment in
// any of its files.
var DeterministicPkgPaths = []string{
	"nmad/internal/core",
	"nmad/internal/sim",
	"nmad/internal/simnet",
	"nmad/internal/madmpi",
	"nmad/internal/scenario",
	"nmad/internal/queue",
	"nmad/internal/replay",
	"nmad/internal/trace",
	"nmad/sched",
}

const deterministicMarker = "//nmadvet:deterministic"

// wallClockFuncs are the time package entry points that read or wait on
// the wall clock — poison in a virtual-time engine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// DeterminismAnalyzer flags, inside the deterministic packages:
// wall-clock calls, any use of math/rand (the engine's seeded sim.RNG is
// the only legal randomness), range statements over maps whose body has
// order-dependent effects (calls, channel sends, or appends to an outer
// slice that is never sorted afterwards), and map-typed struct fields
// that serialize into recordings without a sorted-marshal path.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, math/rand and order-dependent map iteration " +
		"in the packages that must replay byte-identically",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !deterministicPackage(pass) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue // tests may time out on the wall clock
		}
		checkImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClock(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			case *ast.StructType:
				checkMapFields(pass, n)
			}
			return true
		})
	}
	return nil
}

func deterministicPackage(pass *Pass) bool {
	path := pass.Pkg.Path()
	for _, p := range DeterministicPkgPaths {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == deterministicMarker {
					return true
				}
			}
		}
	}
	return false
}

func checkImports(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(),
				"import of %s in a deterministic package: use the seeded sim.RNG instead", path)
		}
	}
}

func checkWallClock(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if wallClockFuncs[fn.Name()] {
		pass.Reportf(call.Pos(),
			"time.%s reads the wall clock: deterministic packages run on virtual sim.Time only", fn.Name())
	}
}

// calleeFunc resolves the called function or method, nil for builtins,
// conversions and dynamic calls through non-selector expressions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkMapRange flags `range m` over a map when the loop body's effects
// depend on iteration order.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var reasons []string
	seen := map[string]bool{}
	addReason := func(r string) {
		if !seen[r] {
			seen[r] = true
			reasons = append(reasons, r)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			addReason("sends on a channel")
		case *ast.CallExpr:
			if conv, _ := pass.Info.Types[n.Fun]; conv.IsType() {
				return true // conversion, not a call
			}
			if id, _ := ast.Unparen(n.Fun).(*ast.Ident); id != nil {
				if b, _ := pass.Info.Uses[id].(*types.Builtin); b != nil {
					if b.Name() == "append" {
						checkLoopAppend(pass, file, rs, n, addReason)
						return true
					}
					switch b.Name() {
					case "len", "cap", "delete", "min", "max", "make", "new",
						"copy", "complex", "real", "imag":
						return true // order-free builtins
					}
					addReason("calls " + b.Name())
					return true
				}
			}
			if fn := calleeFunc(pass.Info, n); fn != nil {
				addReason(fmt.Sprintf("calls %s", fn.Name()))
			} else {
				addReason("makes a dynamic call")
			}
		}
		return true
	})
	if len(reasons) > 0 {
		pass.Reportf(rs.Pos(),
			"map iteration order is random and the loop body %s: iterate a sorted key "+
				"slice (sortedKeys-style) or annotate //nmadvet:allow determinism(reason)",
			strings.Join(reasons, ", "))
	}
}

// checkLoopAppend flags append calls inside a map-range body whose
// destination outlives the loop and is never sorted afterwards in the
// enclosing function.
func checkLoopAppend(pass *Pass, file *ast.File, rs *ast.RangeStmt, call *ast.CallExpr, addReason func(string)) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if _, isIndex := dst.(*ast.IndexExpr); isIndex {
		return // m2[k] = append(m2[k], v): per-key accumulation is order-free
	}
	obj := referencedObject(pass.Info, dst)
	if obj == nil {
		addReason("appends to a non-local slice")
		return
	}
	if rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End() {
		return // slice local to the loop body
	}
	if sortedAfter(pass, file, rs, obj) {
		return
	}
	addReason(fmt.Sprintf("appends to %s without sorting it afterwards", obj.Name()))
}

// referencedObject resolves the object an ident or field selector names.
func referencedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// sortedAfter reports whether, after the range statement and inside the
// same enclosing function, a sort/slices ordering call mentions obj.
func sortedAfter(pass *Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	fn := enclosingFuncBody(file, rs.Pos())
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if callee := calleeFunc(pass.Info, call); callee != nil && isSortCall(callee) {
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, _ := m.(*ast.Ident); id != nil && pass.Info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes the sort and slices package ordering entry
// points (Sort, SortFunc, Strings, Ints, Slice, Stable, ...).
func isSortCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	switch name := fn.Name(); {
	case strings.Contains(name, "Sort"), strings.Contains(name, "Stable"), strings.Contains(name, "Slice"):
		return true
	case name == "Strings" || name == "Ints" || name == "Float64s":
		return true
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration containing pos.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || n.End() <= pos {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				best = n.Body
			}
		case *ast.FuncLit:
			best = n.Body
		}
		return true
	})
	return best
}

// checkMapFields flags map-typed struct fields that are marshaled into
// recordings (json-tagged) with a key type encoding/json does not sort:
// basic string and integer keys marshal in sorted order, anything else
// (TextMarshaler keys, floats, structs) has no deterministic order
// guarantee across the recording's lifetime.
func checkMapFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if field.Tag == nil || len(field.Names) == 0 {
			continue
		}
		tag := strings.Trim(field.Tag.Value, "`")
		jsonName, ok := reflect.StructTag(tag).Lookup("json")
		if !ok || strings.HasPrefix(jsonName, "-") {
			continue
		}
		obj := pass.Info.Defs[field.Names[0]]
		if obj == nil {
			continue
		}
		m, isMap := obj.Type().Underlying().(*types.Map)
		if !isMap {
			continue
		}
		if basic, ok := m.Key().Underlying().(*types.Basic); ok {
			if basic.Info()&(types.IsString|types.IsInteger) != 0 {
				continue // encoding/json sorts these keys
			}
		}
		pass.Reportf(field.Pos(),
			"serialized map field %s has key type %s with no sorted JSON marshal order: "+
				"key by a string or integer, or marshal through a sorted slice",
			field.Names[0].Name, m.Key())
	}
}
