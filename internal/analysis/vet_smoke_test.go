package analysis

import (
	"bytes"
	"testing"
)

// TestModuleIsVetClean is the dogfood gate: the whole module must pass
// its own analyzer suite. The standalone driver covers non-test files;
// CI's `go vet -vettool=nmad-vet ./...` additionally covers test files.
func TestModuleIsVetClean(t *testing.T) {
	var out bytes.Buffer
	code := RunStandalone(&out, "../..", []string{"./..."}, Analyzers())
	if code != 0 {
		t.Fatalf("nmad-vet over the module exited %d:\n%s", code, out.String())
	}
}

// TestSuiteIsNonEmpty pins the advertised analyzer set: CI wiring and
// docs reference these four names.
func TestSuiteIsNonEmpty(t *testing.T) {
	want := map[string]bool{"determinism": true, "statssync": true, "sentinelcmp": true, "spileak": true}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing doc or run", a.Name)
		}
	}
}
