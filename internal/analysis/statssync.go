package analysis

import (
	"go/ast"
	"go/types"
	"strconv"

	"nmad/internal/names"
)

// StatsSyncAnalyzer keeps the scenario assertion tables and the engine
// counter structs in lockstep. It recognizes package-level tables of
// the shape
//
//	var statsFields = map[string]func(core.Stats) float64{ ... }
//
// (any table named statsFields or faultFields whose element is a
// single-parameter float64 accessor over a named struct) and enforces,
// with the shared names.Snake rule:
//
//   - every exported numeric field of the struct has a table entry —
//     a new core.Stats counter fails vet until scenarios can assert it;
//   - every entry's key is exactly names.Snake of the one field or
//     method its accessor reads — the names cannot drift;
//   - keys are string literals and accessors are function literals, so
//     the table stays statically checkable.
var StatsSyncAnalyzer = &Analyzer{
	Name: "statssync",
	Doc: "keep scenario assertion field tables covering exactly the exported " +
		"numeric fields of the engine stats structs",
	Run: runStatsSync,
}

var statsTableNames = map[string]bool{"statsFields": true, "faultFields": true}

func runStatsSync(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !statsTableNames[name.Name] || i >= len(vs.Values) {
						continue
					}
					checkStatsTable(pass, name.Name, vs.Values[i])
				}
			}
		}
	}
	return nil
}

func checkStatsTable(pass *Pass, table string, value ast.Expr) {
	lit, ok := ast.Unparen(value).(*ast.CompositeLit)
	if !ok {
		return
	}
	target := accessorTarget(pass, lit)
	if target == nil {
		return // not an accessor table shape; leave it alone
	}
	st, ok := target.Underlying().(*types.Struct)
	if !ok {
		return
	}

	covered := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		// Credit the members the accessor reads before judging the
		// entry, so one broken entry yields one finding, not a cascade
		// of missing-field reports.
		var members []string
		fn, isLit := ast.Unparen(kv.Value).(*ast.FuncLit)
		if isLit {
			members = accessedMembers(pass, fn)
			for _, m := range members {
				covered[m] = true
			}
		}
		key, keyOK := stringLiteral(kv.Key)
		if !keyOK {
			pass.Reportf(kv.Key.Pos(),
				"%s key must be a string literal so nmad-vet can check the name", table)
			continue
		}
		if !isLit {
			pass.Reportf(kv.Value.Pos(),
				"%s accessor for %q must be a function literal so nmad-vet can see which field it reads", table, key)
			continue
		}
		if len(members) != 1 {
			pass.Reportf(kv.Value.Pos(),
				"%s accessor for %q must read exactly one %s member, it reads %d", table, key, target, len(members))
			continue
		}
		if member := members[0]; key != names.Snake(member) {
			pass.Reportf(kv.Key.Pos(),
				"%s key %q does not match the snake_case name %q of %s.%s (names.Snake is the mapping rule)",
				table, key, names.Snake(member), target, member)
		}
	}

	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if !field.Exported() || !isNumeric(field.Type()) {
			continue
		}
		if !covered[field.Name()] {
			pass.Reportf(value.Pos(),
				"%s has no entry for %s.%s: add %q so scenario assertions can reach the counter",
				table, target, field.Name(), names.Snake(field.Name()))
		}
	}
}

// accessorTarget returns the named struct type S when the literal's
// type is map[string]func(S) float64, else nil.
func accessorTarget(pass *Pass, lit *ast.CompositeLit) *types.Named {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return nil
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	if basic, ok := m.Key().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil
	}
	sig, ok := m.Elem().Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return nil
	}
	named, _ := sig.Params().At(0).Type().(*types.Named)
	return named
}

// accessedMembers collects the distinct fields and methods the accessor
// reads off its parameter, in first-use order.
func accessedMembers(pass *Pass, fn *ast.FuncLit) []string {
	if fn.Type.Params == nil || len(fn.Type.Params.List) != 1 || len(fn.Type.Params.List[0].Names) != 1 {
		return nil
	}
	param := pass.Info.Defs[fn.Type.Params.List[0].Names[0]]
	if param == nil {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, _ := ast.Unparen(sel.X).(*ast.Ident); id != nil && pass.Info.Uses[id] == param {
			if !seen[sel.Sel.Name] {
				seen[sel.Sel.Name] = true
				out = append(out, sel.Sel.Name)
			}
		}
		return true
	})
	return out
}

func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

func isNumeric(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsNumeric != 0
}
