package analysis

import "testing"

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determ", DeterminismAnalyzer)
}

func TestDeterminismNegativeControl(t *testing.T) {
	runFixture(t, "nondeterm", DeterminismAnalyzer)
}

func TestStatsSyncFixture(t *testing.T) {
	runFixture(t, "statstables", StatsSyncAnalyzer)
}

func TestSentinelCmpFixture(t *testing.T) {
	runFixture(t, "sentinel", SentinelCmpAnalyzer)
}

func TestSPILeakFixture(t *testing.T) {
	runFixture(t, "spileak", SPILeakAnalyzer)
}
