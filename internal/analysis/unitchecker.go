package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// This file is nmad-vet's driver: a stdlib-only re-implementation of
// the narrow slice of x/tools' unitchecker protocol the go command
// speaks to `go vet -vettool` binaries, plus a standalone mode so
// `nmad-vet ./...` works without the go command fronting it.
//
// Protocol (observed from cmd/go): the tool is probed once with -flags
// (it prints a JSON array of the flags it accepts) and once with
// -V=full (it prints "<name> version <id>" where id fingerprints the
// binary, feeding the go command's action cache). Then, for every
// package in the dependency graph, the tool runs with a single
// <unit>.cfg argument. Dependency units carry VetxOnly=true and only
// want their facts file written; nmad-vet has no cross-package facts,
// so those invocations just touch the output and exit. Target units
// carry the file set, the import map and the compiler export data of
// every dependency — everything needed to type-check without network,
// GOPATH or a second build.

// vetConfig mirrors the JSON the go command writes to <unit>.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of cmd/nmad-vet. It never returns.
func Main(analyzers ...*Analyzer) {
	progname := os.Args[0]
	args := os.Args[1:]

	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion(progname)
			os.Exit(0)
		case args[0] == "-flags":
			// No tool-specific flags: report an empty flag set.
			fmt.Println("[]")
			os.Exit(0)
		case args[0] == "help", args[0] == "-h", args[0] == "--help":
			printHelp(progname, analyzers)
			os.Exit(0)
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0], analyzers))
		}
	}

	if len(args) == 0 {
		printHelp(progname, analyzers)
		os.Exit(2)
	}
	// Standalone mode: treat the arguments as package patterns.
	os.Exit(RunStandalone(os.Stderr, ".", args, analyzers))
}

func printVersion(progname string) {
	// The go command fingerprints vet tools by running them with
	// -V=full and hashing the reported id into its action cache; the
	// output must be "<name> version <id>". Hash the binary itself so
	// rebuilding nmad-vet invalidates stale vet results.
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

func printHelp(progname string, analyzers []*Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: nmad's invariant checker\n\n", progname)
	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...   (preferred: covers test files)\n", progname)
	fmt.Fprintf(os.Stderr, "       %s ./...                   (standalone: non-test files only)\n\n", progname)
	fmt.Fprintln(os.Stderr, "analyzers:")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress one finding with //nmadvet:allow <analyzer>(<reason>)\n")
}

// runUnit handles one vet unit config; returns the process exit code.
func runUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmad-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "nmad-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command expects the facts file to exist afterwards, even
	// though nmad-vet keeps no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "nmad-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := TypeCheck(cfg.ImportPath, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "nmad-vet: %v\n", err)
		return 1
	}
	diags := RunAnalyzers(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// RunStandalone loads patterns from dir, runs the suite, and prints
// findings to w. It returns 0 when clean, 2 on findings, 1 on load
// errors. Unlike the vet path it analyzes only non-test files (export
// data for test variants is not materialized by `go list -export`).
func RunStandalone(w io.Writer, dir string, patterns []string, analyzers []*Analyzer) int {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(w, "nmad-vet: %v\n", err)
		return 1
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(pkg, analyzers) {
			fmt.Fprintln(w, d)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "nmad-vet: %d finding(s)\n", total)
		return 2
	}
	return 0
}
