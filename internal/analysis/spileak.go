package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SPILeakAnalyzer enforces the SPI aliasing rule: the views the engine
// hands a strategy — the sched.Window, wrapper pointers, the RailInfo
// slice — are valid only for the duration of the call. A strategy that
// stows one in a struct field, a package variable, or a closure that
// outlives the call will read stale or recycled engine state. The docs
// forbid it; this analyzer detects it.
var SPILeakAnalyzer = &Analyzer{
	Name: "spileak",
	Doc: "forbid strategy implementations from retaining sched.Window, " +
		"*sched.Wrapper or []sched.RailInfo beyond the SPI call",
	Run: runSPILeak,
}

// spiTypes are the engine-owned view types resolved from the sched
// package (or from the pass itself when analyzing sched).
type spiTypes struct {
	strategy *types.Interface
	window   types.Type // the Window interface
	wrapper  types.Type // the Wrapper struct
	railinfo types.Type // the RailInfo struct
}

func resolveSPI(pass *Pass) *spiTypes {
	var scope *types.Scope
	if pass.Pkg.Path() == "nmad/sched" {
		scope = pass.Pkg.Scope()
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == "nmad/sched" {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return nil
	}
	lookup := func(name string) types.Type {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			return tn.Type()
		}
		return nil
	}
	s := &spiTypes{
		window:   lookup("Window"),
		wrapper:  lookup("Wrapper"),
		railinfo: lookup("RailInfo"),
	}
	if strat := lookup("Strategy"); strat != nil {
		s.strategy, _ = strat.Underlying().(*types.Interface)
	}
	if s.strategy == nil || s.window == nil || s.wrapper == nil || s.railinfo == nil {
		return nil
	}
	return s
}

// forbidden describes why t must not outlive an SPI call, "" when it
// may. Slices, maps, channels and pointers holding a forbidden type are
// forbidden transitively.
func (s *spiTypes) forbidden(t types.Type) string {
	switch t := t.(type) {
	case *types.Named:
		if types.Identical(t, s.window) {
			return "the sched.Window view"
		}
		return ""
	case *types.Pointer:
		if types.Identical(t.Elem(), s.wrapper) {
			return "a *sched.Wrapper"
		}
		return s.forbidden(t.Elem())
	case *types.Slice:
		if types.Identical(t.Elem(), s.railinfo) {
			return "the []sched.RailInfo view"
		}
		return s.forbidden(t.Elem())
	case *types.Array:
		return s.forbidden(t.Elem())
	case *types.Map:
		return s.forbidden(t.Elem())
	case *types.Chan:
		return s.forbidden(t.Elem())
	}
	return ""
}

func runSPILeak(pass *Pass) error {
	spi := resolveSPI(pass)
	if spi == nil {
		return nil
	}

	// Package-level state of a forbidden type is a leak wherever it
	// lives — no call scope can bound its lifetime.
	strategies := map[*types.Named]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.ValueSpec:
					for _, name := range spec.Names {
						v, ok := pass.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if why := spi.forbidden(v.Type()); why != "" {
							pass.Reportf(name.Pos(),
								"package variable %s retains %s: engine views are only valid during the SPI call",
								name.Name, why)
						}
					}
				case *ast.TypeSpec:
					tn, ok := pass.Info.Defs[spec.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := tn.Type().(*types.Named)
					if !ok {
						continue
					}
					if types.Implements(named, spi.strategy) || types.Implements(types.NewPointer(named), spi.strategy) {
						strategies[named] = true
					}
				}
			}
		}
	}

	// Inside the methods of every Strategy implementation, flag stores
	// of forbidden values into anything that survives the call.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverNamed(pass, fd)
			if recv == nil || !strategies[recv] {
				continue
			}
			checkStrategyMethod(pass, spi, fd)
		}
	}
	return nil
}

func receiverNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func checkStrategyMethod(pass *Pass, spi *spiTypes, fd *ast.FuncDecl) {
	method := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkPersistentStores(pass, spi, method, n)
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkEscapingClosure(pass, spi, method, lit, "a goroutine")
			}
		}
		return true
	})
}

// checkPersistentStores flags `x.field = view` and `pkgVar = view`
// (including append forms, whose result type is itself forbidden).
func checkPersistentStores(pass *Pass, spi *spiTypes, method string, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // tuple assignment from a call: nothing forbidden can appear
		}
		dest := persistentDest(pass, lhs)
		if dest == "" {
			continue
		}
		rhs := as.Rhs[i]
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			checkEscapingClosure(pass, spi, method, lit, dest)
			continue
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok {
			continue
		}
		if why := spi.forbidden(tv.Type); why != "" {
			pass.Reportf(as.Pos(),
				"%s stores %s into %s: engine views are only valid during the SPI call — copy the data you need",
				method, why, dest)
		}
	}
}

// persistentDest classifies an assignment destination that outlives the
// call: a struct field or a package-level variable (possibly through an
// index expression). Locals return "".
func persistentDest(pass *Pass, lhs ast.Expr) string {
	lhs = ast.Unparen(lhs)
	for {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			break
		}
		lhs = ast.Unparen(ix.X)
	}
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			return fmt.Sprintf("field %s", lhs.Sel.Name)
		}
		// Qualified package-level var (pkg.Var).
		if v, ok := pass.Info.Uses[lhs.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return fmt.Sprintf("package variable %s", v.Name())
		}
	case *ast.Ident:
		if v, ok := pass.Info.Uses[lhs].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return fmt.Sprintf("package variable %s", v.Name())
		}
	}
	return ""
}

// checkEscapingClosure flags closures that outlive the SPI call while
// capturing a forbidden view from the enclosing scope.
func checkEscapingClosure(pass *Pass, spi *spiTypes, method string, lit *ast.FuncLit, dest string) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || reported[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure
		}
		if why := spi.forbidden(v.Type()); why != "" {
			reported[v] = true
			pass.Reportf(id.Pos(),
				"%s leaks %s into %s that outlives the SPI call (captured %s)",
				method, why, dest, v.Name())
		}
		return true
	})
}
