package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command and type-checks every
// matched (non-dependency) package from source, importing dependencies
// from the compiler export data `go list -export` produces. It needs no
// network and no third-party packages: the go toolchain and the build
// cache are the whole substrate.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := TypeCheck(t.ImportPath, files, nil, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// TypeCheck parses and type-checks one package from its file list.
// importMap translates source-level import paths to canonical ones (nil
// for the identity map); exports maps canonical import paths to
// compiler export data files.
func TypeCheck(path string, files []string, importMap, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	compImp := importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		e, ok := exports[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(e)
	})
	conf := types.Config{
		Importer: importerFunc(func(p string) (*types.Package, error) {
			if mapped, ok := importMap[p]; ok {
				p = mapped
			}
			return compImp.Import(p)
		}),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: syntax, Types: tpkg, Info: info}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
