package analysis

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness: the analysistest model rebuilt on the package's
// own loader. Each directory under testdata/src is one Go package;
// lines carrying findings are annotated in place:
//
//	badCall() // want `regexp matching the message`
//
// Every diagnostic must match a want on its line and every want must be
// consumed, so fixtures pin both positives and negatives.

func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	rel := "./" + filepath.Join("testdata", "src", fixture)
	pkgs, err := Load(".", rel)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(pkgs), rel)
	}
	pkg := pkgs[0]
	diags := RunAnalyzers(pkg, analyzers)

	wants := parseWants(t, pkg)
	for _, d := range diags {
		key := posKey{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s: %s",
				key.file, key.line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected a finding matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants scans the fixture sources for `// want` annotations. It
// works on the raw file text (not the parsed comment lists) so wants
// survive inside any context.
func parseWants(t *testing.T, pkg *Package) map[posKey][]*want {
	t.Helper()
	out := map[posKey][]*want{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := posKey{filepath.Base(name), i + 1}
			for _, pat := range scanPatterns(t, name, i+1, m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pat, err)
				}
				out[key] = append(out[key], &want{re: re})
			}
		}
	}
	return out
}

// scanPatterns splits the payload of a want comment into its quoted or
// backquoted string literals.
func scanPatterns(t *testing.T, file string, line int, payload string) []string {
	t.Helper()
	var s scanner.Scanner
	fset := token.NewFileSet()
	sf := fset.AddFile(fmt.Sprintf("%s:%d", file, line), -1, len(payload))
	s.Init(sf, []byte(payload), nil, 0)
	var out []string
	for {
		_, tok, lit := s.Scan()
		if tok == token.EOF || tok == token.SEMICOLON {
			break
		}
		if tok != token.STRING {
			t.Fatalf("%s:%d: want comment payload %q: expected string literals", file, line, payload)
		}
		v, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want literal %s: %v", file, line, lit, err)
		}
		out = append(out, v)
	}
	return out
}
