// Package analysis is nmad's static-analysis suite: a small, dependency
// free re-implementation of the golang.org/x/tools/go/analysis model
// (Analyzer, Pass, diagnostics, testdata fixtures) plus the project
// analyzers that machine-check the engine's determinism, locking and SPI
// invariants. The cmd/nmad-vet binary drives the suite either standalone
// (nmad-vet ./...) or under the go command's vet protocol
// (go vet -vettool=nmad-vet ./...).
//
// Findings can be suppressed, one site at a time, with an allow comment
// on the flagged line or the line directly above it:
//
//	//nmadvet:allow <analyzer>(<reason>)
//
// The reason is mandatory — an allow without one is itself a finding —
// and an allow that suppresses nothing is reported as stale, so the
// annotations cannot rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the identifier used in allow comments and diagnostics.
	Name string
	// Doc is the one-paragraph description nmad-vet help prints.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full nmad-vet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DeterminismAnalyzer, StatsSyncAnalyzer, SentinelCmpAnalyzer, SPILeakAnalyzer}
}

// RunAnalyzers runs every analyzer over one loaded package, applies the
// allow comments, and returns the surviving diagnostics sorted by
// position. Stale and malformed allow comments surface as "nmadvet"
// diagnostics of their own.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			raw = append(raw, Diagnostic{Analyzer: a.Name, Message: err.Error()})
		}
	}
	allows, broken := collectAllows(pkg, analyzers)
	var out []Diagnostic
	for _, d := range raw {
		if al := allows.match(d); al != nil {
			al.used = true
			continue
		}
		out = append(out, d)
	}
	out = append(out, broken...)
	for _, al := range allows.list {
		if !al.used {
			out = append(out, Diagnostic{
				Analyzer: "nmadvet",
				Pos:      al.pos,
				Message:  fmt.Sprintf("stale //nmadvet:allow %s comment: it suppresses no finding", al.analyzer),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return out
}

// allow is one parsed //nmadvet:allow comment.
type allow struct {
	analyzer string
	file     string
	line     int // the comment's own line; it covers this line and the next
	pos      token.Position
	used     bool
}

type allowSet struct{ list []*allow }

func (s *allowSet) match(d Diagnostic) *allow {
	for _, al := range s.list {
		if al.analyzer != d.Analyzer || al.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == al.line || d.Pos.Line == al.line+1 {
			return al
		}
	}
	return nil
}

// allowRe tolerates trailing text after the closing paren so fixtures
// can stack `// want` expectations on allow lines.
var allowRe = regexp.MustCompile(`^//nmadvet:allow\s+([a-z]+)\(([^)]*)\)`)

// collectAllows parses every allow comment in the package. Malformed
// comments (unknown analyzer, missing reason) come back as diagnostics.
func collectAllows(pkg *Package, analyzers []*Analyzer) (allowSet, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var set allowSet
	var broken []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//nmadvet:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if c.Text == deterministicMarker {
					continue // file-level opt-in, handled by determinism
				}
				m := allowRe.FindStringSubmatch(c.Text)
				switch {
				case m == nil:
					broken = append(broken, Diagnostic{
						Analyzer: "nmadvet",
						Pos:      pos,
						Message:  "malformed nmadvet comment: want //nmadvet:allow <analyzer>(<reason>)",
					})
				case !known[m[1]]:
					broken = append(broken, Diagnostic{
						Analyzer: "nmadvet",
						Pos:      pos,
						Message:  fmt.Sprintf("//nmadvet:allow names unknown analyzer %q", m[1]),
					})
				case strings.TrimSpace(m[2]) == "":
					broken = append(broken, Diagnostic{
						Analyzer: "nmadvet",
						Pos:      pos,
						Message:  "//nmadvet:allow needs a reason: //nmadvet:allow " + m[1] + "(why this site is safe)",
					})
				default:
					set.list = append(set.list, &allow{analyzer: m[1], file: pos.Filename, line: pos.Line, pos: pos})
				}
			}
		}
	}
	return set, broken
}

// isTestFile reports whether the file position sits in a _test.go file.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
