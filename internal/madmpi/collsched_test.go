package madmpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// jobCfg is job with a per-rank MPI configuration hook (forcing
// algorithms, segment sizes) run before any rank body starts.
func jobCfg(t *testing.T, size int, cfg func(m *MPI), body func(p *sim.Proc, m *MPI)) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, size, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		m, err := Init(f, simnet.NodeID(i), core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if cfg != nil {
			cfg(m)
		}
		w.Spawn("rank", func(p *sim.Proc) { body(p, m) })
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAllreduceAlgorithmsElementExact is the randomized property test of
// the pipelined collectives: across algorithms, comm sizes 2..8, segment
// sizes and vector lengths (including lengths not divisible by the comm
// size or the segment), Allreduce must produce the element-exact
// reference reduction on every rank. Ranks enter the collective at
// adversarially staggered times to shake the schedule interleavings; the
// operand values are small integers so every association order is exact
// in float64.
func TestAllreduceAlgorithmsElementExact(t *testing.T) {
	rng := sim.NewRNG(42)
	for trial := 0; trial < 40; trial++ {
		n := rng.Range(2, 8)
		elems := rng.Range(0, 300)
		segElems := []int{8, 33, 512}[rng.Range(0, 2)]
		algo := []string{"tree", "ring"}[rng.Range(0, 1)]
		op, opName := Op(OpSum), "sum"
		if rng.Range(0, 1) == 1 {
			op, opName = OpMax, "max"
		}
		label := fmt.Sprintf("trial %d: n=%d elems=%d seg=%d algo=%s op=%s",
			trial, n, elems, segElems, algo, opName)

		// Deterministic per-rank inputs and the serial reference.
		in := make([][]float64, n)
		want := make([]float64, elems)
		for r := 0; r < n; r++ {
			in[r] = make([]float64, elems)
			for i := range in[r] {
				in[r][i] = float64(rng.Range(-3, 4))
			}
		}
		for i := range want {
			want[i] = in[0][i]
			for r := 1; r < n; r++ {
				want[i] = op(want[i], in[r][i])
			}
		}
		stagger := make([]int, n)
		for r := range stagger {
			stagger[r] = rng.Range(0, 120)
		}

		jobCfg(t, n,
			func(m *MPI) {
				if err := m.ForceCollAlgo(CollAllreduce, algo); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				m.SetCollSegment(segElems * 8)
			},
			func(p *sim.Proc, m *MPI) {
				me := m.Rank()
				p.Sleep(sim.Time(stagger[me]) * sim.Microsecond)
				out := make([]float64, elems)
				if err := m.CommWorld().Allreduce(p, in[me], out, op); err != nil {
					t.Errorf("%s: rank %d: %v", label, me, err)
					return
				}
				for i := range want {
					if out[i] != want[i] {
						t.Errorf("%s: rank %d element %d = %g, want %g", label, me, i, out[i], want[i])
						return
					}
				}
			})
		if t.Failed() {
			return
		}
	}
}

// TestBcastAlgorithms checks both broadcast algorithms deliver exactly,
// across roots and payload sizes that do not divide the segment.
func TestBcastAlgorithms(t *testing.T) {
	for _, algo := range []string{"binomial", "pipeline"} {
		for _, size := range []int{1, 777, 40 << 10} {
			payload := make([]byte, size)
			sim.NewRNG(uint64(size)).Bytes(payload)
			root := size % 5
			jobCfg(t, 5,
				func(m *MPI) {
					if err := m.ForceCollAlgo(CollBcast, algo); err != nil {
						t.Fatal(err)
					}
					m.SetCollSegment(1 << 10)
				},
				func(p *sim.Proc, m *MPI) {
					buf := make([]byte, size)
					if m.Rank() == root {
						copy(buf, payload)
					}
					if err := m.CommWorld().Bcast(p, buf, root); err != nil {
						t.Errorf("%s size %d: %v", algo, size, err)
						return
					}
					if !bytes.Equal(buf, payload) {
						t.Errorf("%s size %d: rank %d corrupted payload", algo, size, m.Rank())
					}
				})
		}
	}
}

// TestReduceAlgorithms checks both reduce algorithms against the serial
// reference, at a non-zero root.
func TestReduceAlgorithms(t *testing.T) {
	const n, elems, root = 6, 513, 2
	for _, algo := range []string{"binomial", "pipeline"} {
		jobCfg(t, n,
			func(m *MPI) {
				if err := m.ForceCollAlgo(CollReduce, algo); err != nil {
					t.Fatal(err)
				}
				m.SetCollSegment(256)
			},
			func(p *sim.Proc, m *MPI) {
				me := m.Rank()
				vec := make([]float64, elems)
				for i := range vec {
					vec[i] = float64(me + i%7)
				}
				out := make([]float64, elems)
				if err := m.CommWorld().Reduce(p, vec, out, OpSum, root); err != nil {
					t.Errorf("%s: %v", algo, err)
					return
				}
				if me != root {
					return
				}
				for i := range out {
					want := 0.0
					for r := 0; r < n; r++ {
						want += float64(r + i%7)
					}
					if out[i] != want {
						t.Errorf("%s: element %d = %g, want %g", algo, i, out[i], want)
						return
					}
				}
			})
	}
}

// TestAllgatherAlgorithms checks the ring against the fused gather-bcast.
func TestAllgatherAlgorithms(t *testing.T) {
	for _, algo := range []string{"ring", "gather-bcast"} {
		jobCfg(t, 5,
			func(m *MPI) {
				if err := m.ForceCollAlgo(CollAllgather, algo); err != nil {
					t.Fatal(err)
				}
			},
			func(p *sim.Proc, m *MPI) {
				me := []byte{byte(10 + m.Rank()), byte(20 + m.Rank())}
				all := make([]byte, 10)
				if err := m.CommWorld().Allgather(p, me, all); err != nil {
					t.Errorf("%s: %v", algo, err)
					return
				}
				for r := 0; r < 5; r++ {
					if all[2*r] != byte(10+r) || all[2*r+1] != byte(20+r) {
						t.Errorf("%s: rank %d slot %d = %v", algo, m.Rank(), r, all[2*r:2*r+2])
					}
				}
			})
	}
}

// TestAlltoallPairwise checks the round-chained pairwise exchange.
func TestAlltoallPairwise(t *testing.T) {
	const n = 6
	jobCfg(t, n,
		func(m *MPI) {
			if err := m.ForceCollAlgo(CollAlltoall, "pairwise"); err != nil {
				t.Fatal(err)
			}
		},
		func(p *sim.Proc, m *MPI) {
			send := make([]byte, n)
			for i := range send {
				send[i] = byte(10*m.Rank() + i)
			}
			recv := make([]byte, n)
			if err := m.CommWorld().Alltoall(p, send, recv); err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < n; r++ {
				if recv[r] != byte(10*r+m.Rank()) {
					t.Errorf("slot %d = %d, want %d", r, recv[r], 10*r+m.Rank())
				}
			}
		})
}

// TestCollTagEpochExtension drives the per-communicator collective
// sequence across the epoch boundary: where the seed silently wrapped
// and reused live tags after 2^20 collectives, the engine must move to a
// fresh tag lane and keep collectives exact.
func TestCollTagEpochExtension(t *testing.T) {
	start := uint64(collSeqWindow - 2)
	jobCfg(t, 3, nil, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		c.collSeq = start // all ranks agree, as if 2^22-2 collectives ran
		for k := 0; k < 5; k++ {
			out := make([]float64, 3)
			in := []float64{float64(m.Rank()), 1, 2}
			if err := c.Allreduce(p, in, out, OpSum); err != nil {
				t.Errorf("collective %d across the epoch boundary: %v", k, err)
				return
			}
			if out[0] != 3 || out[1] != 3 || out[2] != 6 {
				t.Errorf("collective %d across the epoch boundary: got %v", k, out)
				return
			}
		}
		if c.collSeq != start+5 {
			t.Errorf("collSeq = %d, want %d", c.collSeq, start+5)
		}
	})
	// The lane must differ across the boundary instead of wrapping.
	boundary := &Comm{id: 1}
	pre, err := boundary.collTags(start)
	if err != nil {
		t.Fatal(err)
	}
	post, err := boundary.collTags(collSeqWindow)
	if err != nil {
		t.Fatal(err)
	}
	if pre>>32 == post>>32 {
		t.Errorf("tag lane did not advance across the epoch boundary: %#x vs %#x", pre, post)
	}
}

// TestRootValidationKeepsSeqLockstep: when every rank calls a rooted
// collective and only the root's buffer is invalid, the root errors but
// the other ranks cannot know — the sequence slot must be consumed on
// every rank anyway, so the next collective still lines up its tag
// lanes instead of hanging.
func TestRootValidationKeepsSeqLockstep(t *testing.T) {
	jobCfg(t, 3, nil, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		err := c.Gather(p, []byte{1, 2}, make([]byte, 5), 0) // root buffer short
		if m.Rank() == 0 {
			if !errors.Is(err, ErrCollBuffer) {
				t.Errorf("root: err = %v, want ErrCollBuffer", err)
			}
		} else if err != nil {
			t.Errorf("leaf rank %d: %v", m.Rank(), err)
		}
		// The very next collective must still be exact on every rank.
		out := make([]float64, 1)
		if err := c.Allreduce(p, []float64{2}, out, OpSum); err != nil || out[0] != 6 {
			t.Errorf("rank %d: allreduce after asymmetric validation error: %v, out=%v", m.Rank(), err, out)
		}
	})
}

// TestCollTagExhaustion: the genuinely unrecoverable end of the tag
// space (2^29 collectives on one communicator) is a typed error, not a
// silent reuse.
func TestCollTagExhaustion(t *testing.T) {
	jobCfg(t, 2, nil, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		c.collSeq = uint64(collMaxEpoch) * collSeqWindow
		err := c.Barrier(p)
		if !errors.Is(err, ErrCollTags) {
			t.Errorf("exhausted tag space: err = %v, want ErrCollTags", err)
		}
		// A fresh communicator has a fresh sequence space.
		d := c.Dup()
		if err := d.Barrier(p); err != nil {
			t.Errorf("dup after exhaustion: %v", err)
		}
	})
}

// TestCollectiveBufferValidation: wrong buffer lengths are typed
// ErrCollBuffer errors, not slice panics.
func TestCollectiveBufferValidation(t *testing.T) {
	jobCfg(t, 3, nil, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		me := m.Rank()
		send := []byte{1, 2}

		// Root-side validation errors produce no traffic but do consume
		// a sequence slot (the lockstep invariant), so the root probes
		// them on a dup'd communicator the other ranks never use.
		probe := c.Dup()
		if me == 0 {
			for _, tc := range []struct {
				name string
				err  error
			}{
				{"gather short", probe.Gather(p, send, make([]byte, 5), 0)},
				{"gather long", probe.Gather(p, send, make([]byte, 7), 0)},
				{"scatter short", probe.Scatter(p, make([]byte, 5), make([]byte, 2), 0)},
			} {
				if !errors.Is(tc.err, ErrCollBuffer) {
					t.Errorf("%s: err = %v, want ErrCollBuffer", tc.name, tc.err)
				}
			}
		}
		// Symmetric validations every rank performs.
		if err := c.Allgather(p, send, make([]byte, 5)); !errors.Is(err, ErrCollBuffer) {
			t.Errorf("allgather short: err = %v, want ErrCollBuffer", err)
		}
		if err := c.Alltoall(p, make([]byte, 4), make([]byte, 4)); !errors.Is(err, ErrCollBuffer) {
			t.Errorf("alltoall non-divisible: err = %v, want ErrCollBuffer", err)
		}
		if err := c.Alltoall(p, make([]byte, 6), make([]byte, 5)); !errors.Is(err, ErrCollBuffer) {
			t.Errorf("alltoall short recv: err = %v, want ErrCollBuffer", err)
		}
		if err := c.Allreduce(p, []float64{1, 2}, make([]float64, 1), OpSum); !errors.Is(err, ErrCollBuffer) {
			t.Errorf("allreduce short recv: err = %v, want ErrCollBuffer", err)
		}
		if me == 1 {
			if err := probe.Reduce(p, []float64{1, 2}, nil, OpSum, 1); !errors.Is(err, ErrCollBuffer) {
				t.Errorf("reduce short recv at root: err = %v, want ErrCollBuffer", err)
			}
		}
		// After all the rejected calls, a real collective still works:
		// the world comm's sequence advanced evenly (the symmetric
		// rejections above consumed nothing; the asymmetric ones were
		// confined to the probe comm).
		out := make([]float64, 1)
		if err := c.Allreduce(p, []float64{1}, out, OpSum); err != nil || out[0] != 3 {
			t.Errorf("allreduce after validation errors: %v, out=%v", err, out)
		}
	})
}

// TestSingleRankCollectives: every collective degenerates correctly on a
// one-rank communicator.
func TestSingleRankCollectives(t *testing.T) {
	jobCfg(t, 1, nil, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
		buf := []byte{9}
		if err := c.Bcast(p, buf, 0); err != nil {
			t.Error(err)
		}
		got := make([]byte, 1)
		if err := c.Gather(p, buf, got, 0); err != nil || got[0] != 9 {
			t.Errorf("gather n=1: %v %v", err, got)
		}
		if err := c.Allgather(p, buf, got); err != nil || got[0] != 9 {
			t.Errorf("allgather n=1: %v %v", err, got)
		}
		if err := c.Scatter(p, buf, got, 0); err != nil || got[0] != 9 {
			t.Errorf("scatter n=1: %v %v", err, got)
		}
		if err := c.Alltoall(p, buf, got); err != nil || got[0] != 9 {
			t.Errorf("alltoall n=1: %v %v", err, got)
		}
		out := make([]float64, 2)
		if err := c.Reduce(p, []float64{4, 5}, out, OpSum, 0); err != nil || out[0] != 4 {
			t.Errorf("reduce n=1: %v %v", err, out)
		}
		if err := c.Allreduce(p, []float64{6, 7}, out, OpProd); err != nil || out[1] != 7 {
			t.Errorf("allreduce n=1: %v %v", err, out)
		}
		// Mismatched buffers are rejected even with a single rank.
		if err := c.Gather(p, buf, make([]byte, 2), 0); !errors.Is(err, ErrCollBuffer) {
			t.Errorf("gather n=1 mismatch: %v, want ErrCollBuffer", err)
		}
	})
}

// TestCollAlgoRegistry: duplicates and unknown names are errors; a
// custom registered algorithm is actually selected when forced.
func TestCollAlgoRegistry(t *testing.T) {
	if err := RegisterCollAlgo(CollBcast, "binomial", bcastBinomial); err == nil {
		t.Error("duplicate registration must fail")
	}
	if err := RegisterCollAlgo("nonsense", "x", bcastBinomial); err == nil {
		t.Error("unknown collective kind must fail")
	}
	if err := RegisterCollAlgo(CollBcast, "", nil); err == nil {
		t.Error("empty registration must fail")
	}

	ran := 0
	if err := RegisterCollAlgo(CollBcast, "test-counting", func(pl *CollPlan, a CollArgs) error {
		ran++
		return bcastBinomial(pl, a)
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range CollAlgoNames(CollBcast) {
		if name == "test-counting" {
			found = true
		}
	}
	if !found {
		t.Fatalf("CollAlgoNames(bcast) = %v missing test-counting", CollAlgoNames(CollBcast))
	}
	jobCfg(t, 3,
		func(m *MPI) {
			if err := m.ForceCollAlgo(CollBcast, "test-counting"); err != nil {
				t.Fatal(err)
			}
			if err := m.ForceCollAlgo(CollBcast, "no-such-algo"); !errors.Is(err, ErrCollAlgo) {
				t.Errorf("forcing unknown algorithm: %v, want ErrCollAlgo", err)
			}
		},
		func(p *sim.Proc, m *MPI) {
			buf := []byte{1, 2, 3}
			if err := m.CommWorld().Bcast(p, buf, 0); err != nil {
				t.Error(err)
			}
		})
	if ran != 3 {
		t.Errorf("forced custom algorithm built %d schedules, want 3", ran)
	}
}

// TestSelectionRespectsPairBudget: the round-count-driven algorithms
// (ring, pairwise) send O(n) messages per neighbor pair, so on huge
// communicators the auto-selector must fall back to tree shapes rather
// than pick an algorithm whose schedule cannot be built.
func TestSelectionRespectsPairBudget(t *testing.T) {
	if got := defaultCollAlgo(CollAllreduce, 8, 1<<20); got != "ring" {
		t.Errorf("allreduce n=8 large = %q, want ring", got)
	}
	if got := defaultCollAlgo(CollAllreduce, 600, 1<<20); got != "tree" {
		t.Errorf("allreduce n=600 large = %q, want tree fallback", got)
	}
	if got := defaultCollAlgo(CollAllgather, 2000, 1<<20); got != "gather-bcast" {
		t.Errorf("allgather n=2000 large = %q, want gather-bcast fallback", got)
	}
	if got := defaultCollAlgo(CollAlltoall, 2000, 8<<10); got != "linear" {
		t.Errorf("alltoall n=2000 = %q, want linear fallback", got)
	}
	// A ring schedule past the budget fails at build time with a clear
	// error rather than silently wrapping sub-tags.
	pl := newCollPlan()
	if err := allreduceRing(pl, CollArgs{Rank: 0, Size: 600, Buf: make([]byte, 600*8), SegBytes: 8 << 10}); err != nil {
		t.Fatal(err)
	}
	if pl.err == nil {
		t.Error("over-budget ring schedule must record a build error")
	}
}

// TestCollectivePipelining: the schedule engine must actually overlap
// rounds — a segmented pipeline broadcast of a long vector down a chain
// of 6 ranks has to beat the serialized store-and-forward time that a
// blocking chain would take, proving segments of different rounds are in
// flight at once.
func TestCollectivePipelining(t *testing.T) {
	const n, size = 6, 1 << 20
	payload := make([]byte, size)
	sim.NewRNG(7).Bytes(payload)
	var finish sim.Time
	jobCfg(t, n,
		func(m *MPI) {
			if err := m.ForceCollAlgo(CollBcast, "pipeline"); err != nil {
				t.Fatal(err)
			}
			m.SetCollSegment(16 << 10)
		},
		func(p *sim.Proc, m *MPI) {
			buf := make([]byte, size)
			if m.Rank() == 0 {
				copy(buf, payload)
			}
			if err := m.CommWorld().Bcast(p, buf, 0); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf, payload) {
				t.Errorf("rank %d corrupted", m.Rank())
			}
			if p.Now() > finish {
				finish = p.Now()
			}
		})
	// A non-pipelined chain relays the full vector n-1 times in series:
	// at least (n-1) * size / wire-bandwidth. The pipelined chain
	// overlaps the hops, so it must come in well under that — at MX-10G
	// nominal 1250 MB/s, one full relay is ~839 µs.
	wireBytesPerSec := 1250e6
	oneHop := sim.Time(float64(size) / wireBytesPerSec * float64(sim.Second))
	serialized := sim.Time(n-1) * oneHop
	if finish >= serialized {
		t.Errorf("pipelined bcast finished at %v, not faster than the serialized chain bound %v", finish, serialized)
	}
}
