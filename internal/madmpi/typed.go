package madmpi

import (
	"fmt"

	"nmad/internal/sim"
)

// Typed (derived-datatype) point-to-point operations. Where MPICH packs
// every block into a temporary contiguous buffer, sends it as a single
// transaction, and unpacks on the receiving side (two full memory copies,
// paper §5.3), MAD-MPI "uses an algorithm which generates an individual
// communication request for each block, allowing the underlying
// communication layer to perform any appropriate optimization": the
// scheduler aggregates the small blocks — reordered together with the
// rendezvous requests of the large blocks — and the large blocks travel
// zero-copy straight from and into user memory.

// IsendTyped starts a nonblocking send of count elements of datatype t
// read from base (the address of the first element).
func (c *Comm) IsendTyped(p *sim.Proc, base []byte, t Datatype, count, dest, tag int) *Request {
	if err := c.checkPeer(dest); err != nil {
		return failedRequest(c, err)
	}
	if err := checkTag(tag); err != nil {
		return failedRequest(c, err)
	}
	segs := Flatten(t, count)
	if err := checkBounds(base, segs); err != nil {
		return failedRequest(c, err)
	}
	g := c.gate(dest)
	flow := c.flowTag(tag)
	req := &Request{comm: c}
	for _, s := range segs {
		req.sends = append(req.sends, g.Isend(p, flow, base[s.Offset:s.Offset+s.Len]))
	}
	return req
}

// IrecvTyped starts a nonblocking receive of count elements of datatype t
// scattered into base. The sender must use a layout with the same block
// structure (the usual MPI contract: matching type signatures).
func (c *Comm) IrecvTyped(p *sim.Proc, base []byte, t Datatype, count, src, tag int) *Request {
	if err := c.checkPeer(src); err != nil {
		return failedRequest(c, err)
	}
	if err := checkTag(tag); err != nil {
		return failedRequest(c, err)
	}
	segs := Flatten(t, count)
	if err := checkBounds(base, segs); err != nil {
		return failedRequest(c, err)
	}
	g := c.gate(src)
	flow := c.flowTag(tag)
	req := &Request{comm: c}
	for _, s := range segs {
		req.recvs = append(req.recvs, g.Irecv(p, flow, base[s.Offset:s.Offset+s.Len]))
	}
	return req
}

// SendTyped / RecvTyped are the blocking forms.
func (c *Comm) SendTyped(p *sim.Proc, base []byte, t Datatype, count, dest, tag int) error {
	_, err := c.IsendTyped(p, base, t, count, dest, tag).Wait(p)
	return err
}

func (c *Comm) RecvTyped(p *sim.Proc, base []byte, t Datatype, count, src, tag int) (Status, error) {
	return c.IrecvTyped(p, base, t, count, src, tag).Wait(p)
}

func checkBounds(base []byte, segs []Segment) error {
	for _, s := range segs {
		if s.Offset < 0 || s.Offset+s.Len > len(base) {
			return fmt.Errorf("madmpi: datatype segment [%d,%d) outside the %d-byte buffer",
				s.Offset, s.Offset+s.Len, len(base))
		}
	}
	return nil
}

// Pack copies the data described by (t, count) at base into a contiguous
// buffer (MPI_Pack). MAD-MPI itself never packs for transmission; this
// exists for applications and for the baseline comparison.
func Pack(base []byte, t Datatype, count int) []byte {
	segs := Flatten(t, count)
	out := make([]byte, 0, t.Size()*count)
	for _, s := range segs {
		out = append(out, base[s.Offset:s.Offset+s.Len]...)
	}
	return out
}

// Unpack scatters a contiguous buffer back into the layout described by
// (t, count) at base (MPI_Unpack). It returns the number of bytes
// consumed.
func Unpack(packed []byte, base []byte, t Datatype, count int) int {
	segs := Flatten(t, count)
	n := 0
	for _, s := range segs {
		n += copy(base[s.Offset:s.Offset+s.Len], packed[n:])
	}
	return n
}
