package madmpi

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
)

// Typed (derived-datatype) point-to-point operations. Where MPICH packs
// every block into a temporary contiguous buffer, sends it as a single
// transaction, and unpacks on the receiving side (two full memory copies,
// paper §5.3), MAD-MPI hands the flattened layout to the engine's vector
// path: the whole non-contiguous message is ONE multi-segment wrapper
// (Gate.Isendv), NIC-gathered straight out of user space. The scheduler
// aggregates and reorders it natively with whatever else the window
// holds; above the rendezvous threshold the body streams zero-copy from
// — and scatters zero-copy into — the scattered blocks.

// IsendTyped starts a nonblocking send of count elements of datatype t
// read from base (the address of the first element).
func (c *Comm) IsendTyped(p *sim.Proc, base []byte, t Datatype, count, dest, tag int) *Request {
	if err := c.checkPeer(dest); err != nil {
		return failedRequest(c, err)
	}
	if err := checkTag(tag); err != nil {
		return failedRequest(c, err)
	}
	iov, err := Iovec(base, t, count)
	if err != nil {
		return failedRequest(c, err)
	}
	req := c.gate(dest).Isendv(p, c.flowTag(tag), iov)
	return newRequest(c, []*core.SendRequest{req}, nil)
}

// IrecvTyped starts a nonblocking receive of count elements of datatype t
// scattered into base. The sender must use a layout with the same total
// size (the usual MPI contract: matching type signatures); the payload
// scatters across the blocks in flattening order.
func (c *Comm) IrecvTyped(p *sim.Proc, base []byte, t Datatype, count, src, tag int) *Request {
	if err := c.checkPeer(src); err != nil {
		return failedRequest(c, err)
	}
	if err := checkTag(tag); err != nil {
		return failedRequest(c, err)
	}
	iov, err := Iovec(base, t, count)
	if err != nil {
		return failedRequest(c, err)
	}
	req := c.gate(src).Irecvv(p, c.flowTag(tag), iov)
	return newRequest(c, nil, []*core.RecvRequest{req})
}

// Iovec flattens count elements of datatype t at base into the gather
// list the engine's vector path consumes, bounds-checking every block.
func Iovec(base []byte, t Datatype, count int) ([][]byte, error) {
	segs := Flatten(t, count)
	if err := checkBounds(base, segs); err != nil {
		return nil, err
	}
	iov := make([][]byte, len(segs))
	for i, s := range segs {
		iov[i] = base[s.Offset : s.Offset+s.Len]
	}
	return iov, nil
}

// SendTyped / RecvTyped are the blocking forms.
func (c *Comm) SendTyped(p *sim.Proc, base []byte, t Datatype, count, dest, tag int) error {
	return c.IsendTyped(p, base, t, count, dest, tag).Wait(p)
}

func (c *Comm) RecvTyped(p *sim.Proc, base []byte, t Datatype, count, src, tag int) (Status, error) {
	return c.IrecvTyped(p, base, t, count, src, tag).WaitStatus(p)
}

func checkBounds(base []byte, segs []Segment) error {
	for _, s := range segs {
		if s.Offset < 0 || s.Offset+s.Len > len(base) {
			return fmt.Errorf("madmpi: datatype segment [%d,%d) outside the %d-byte buffer",
				s.Offset, s.Offset+s.Len, len(base))
		}
	}
	return nil
}

// Pack copies the data described by (t, count) at base into a contiguous
// buffer (MPI_Pack). MAD-MPI itself never packs for transmission; this
// exists for applications and for the baseline comparison.
func Pack(base []byte, t Datatype, count int) []byte {
	segs := Flatten(t, count)
	out := make([]byte, 0, t.Size()*count)
	for _, s := range segs {
		out = append(out, base[s.Offset:s.Offset+s.Len]...)
	}
	return out
}

// Unpack scatters a contiguous buffer back into the layout described by
// (t, count) at base (MPI_Unpack). It returns the number of bytes
// consumed.
func Unpack(packed []byte, base []byte, t Datatype, count int) int {
	segs := Flatten(t, count)
	n := 0
	for _, s := range segs {
		n += copy(base[s.Offset:s.Offset+s.Len], packed[n:])
	}
	return n
}
