package madmpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"nmad/internal/sim"
)

// Reduction collectives over float64 vectors — enough for the dominant
// numerical use of MPI_Reduce/Allreduce — compiled onto the collective
// schedule engine. The accumulator travels packed as bytes; fold steps
// are compute nodes of the DAG, ordered by explicit dependencies so the
// association order (and therefore the floating-point result) is
// deterministic per algorithm.

// Op is a binary reduction operator applied element-wise.
type Op func(a, b float64) float64

// Predefined operators.
var (
	OpSum  Op = func(a, b float64) float64 { return a + b }
	OpMax  Op = math.Max
	OpMin  Op = math.Min
	OpProd Op = func(a, b float64) float64 { return a * b }
)

// Reduce combines every rank's send vector element-wise into recv at
// root (recv is ignored elsewhere, and must be exactly len(send) long at
// root). All ranks must pass vectors of equal length.
func (c *Comm) Reduce(p *sim.Proc, send, recv []float64, op Op, root int) error {
	n, me := c.Size(), c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: reduce root %d", ErrBadRank, root)
	}
	// The slot is consumed before the root-only buffer check so the
	// other ranks stay in tag-space lockstep (see Gather).
	seq := c.nextCollSeq()
	if me == root && len(recv) != len(send) {
		return fmt.Errorf("%w: reduce recv vector %d elements, want exactly %d",
			ErrCollBuffer, len(recv), len(send))
	}
	if n == 1 {
		copy(recv, send)
		return nil
	}
	acc := PackF64(send)
	a := CollArgs{Rank: me, Size: n, Root: root, Buf: acc, Op: op, SegBytes: c.mpi.CollSegment()}
	if err := c.runColl(p, CollReduce, len(acc), seq, a); err != nil {
		return err
	}
	if me == root {
		unpackF64Into(recv, acc)
	}
	return nil
}

// reduceBinomial is the binomial tree: in round k, vranks with bit k set
// send their accumulator to vrank-2^k and drop out; the others receive
// and fold. Receives are all preposted; the folds chain in mask order so
// the association matches the seed's, and the send to the parent waits
// only on the last fold.
func reduceBinomial(pl *CollPlan, a CollArgs) error {
	n, root := a.Size, a.Root
	vrank := (a.Rank - root + n) % n
	acc, op := a.Buf, a.Op
	lastFold := -1
	for mask := 1; mask < n; mask <<= 1 {
		if vrank&mask != 0 {
			dst := (vrank - mask + root) % n
			pl.Send(dst, acc, lastFold)
			return nil
		}
		if vrank+mask < n {
			src := (vrank + mask + root) % n
			tmp := make([]byte, len(acc))
			r := pl.Recv(src, tmp)
			deps := []int{r}
			if lastFold >= 0 {
				deps = append(deps, lastFold)
			}
			lastFold = pl.Compute(func() { foldF64(acc, tmp, op) }, deps...)
		}
	}
	return nil
}

// reducePipeline is the segmented chain: ranks form a chain from the
// highest vrank down to the root; each rank folds an arriving segment
// into its local accumulator and forwards it rootward as soon as the
// fold lands. Segments pipeline through the chain, so for long vectors
// every link is busy at once.
func reducePipeline(pl *CollPlan, a CollArgs) error {
	n, root := a.Size, a.Root
	vrank := (a.Rank - root + n) % n
	acc, op := a.Buf, a.Op
	up := (vrank + 1 + root) % n   // further from the root
	down := (vrank - 1 + root) % n // closer to the root
	for _, span := range segSpans(0, len(acc), a.SegBytes, 8, collPairSpace) {
		seg := acc[span[0] : span[0]+span[1]]
		foldStep := -1
		if vrank < n-1 {
			tmp := make([]byte, len(seg))
			r := pl.Recv(up, tmp)
			dst := seg
			foldStep = pl.Compute(func() { foldF64(dst, tmp, op) }, r)
		}
		if vrank > 0 {
			pl.Send(down, seg, foldStep)
		}
	}
	return nil
}

// Allreduce is a Reduce whose result lands on every rank. recv must be
// exactly len(send) elements on every rank.
func (c *Comm) Allreduce(p *sim.Proc, send, recv []float64, op Op) error {
	n, me := c.Size(), c.Rank()
	if len(recv) != len(send) {
		return fmt.Errorf("%w: allreduce recv vector %d elements, want exactly %d",
			ErrCollBuffer, len(recv), len(send))
	}
	if n == 1 {
		copy(recv, send)
		return nil
	}
	seq := c.nextCollSeq()
	acc := PackF64(send)
	a := CollArgs{Rank: me, Size: n, Buf: acc, Op: op, SegBytes: c.mpi.CollSegment()}
	if err := c.runColl(p, CollAllreduce, len(acc), seq, a); err != nil {
		return err
	}
	unpackF64Into(recv, acc)
	return nil
}

// allreduceTree fuses a binomial reduce to rank 0 with a binomial
// broadcast of the result into one DAG — latency-optimal for short
// vectors. The broadcast receive reuses the accumulator buffer, so it
// depends on the reduce-phase send retiring (buffer-reuse safety); the
// child forwards then hang off that receive.
func allreduceTree(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	acc, op := a.Buf, a.Op
	// Reduce phase toward vrank 0 (root = rank 0: vrank == rank).
	lastFold, reduceSend := -1, -1
	for mask := 1; mask < n; mask <<= 1 {
		if me&mask != 0 {
			reduceSend = pl.Send(me-mask, acc, lastFold)
			break
		}
		if me+mask < n {
			tmp := make([]byte, len(acc))
			r := pl.Recv(me+mask, tmp)
			deps := []int{r}
			if lastFold >= 0 {
				deps = append(deps, lastFold)
			}
			lastFold = pl.Compute(func() { foldF64(acc, tmp, op) }, deps...)
		}
	}
	// Broadcast phase from vrank 0 over the same buffer.
	bcastReady := -1
	if me == 0 {
		bcastReady = lastFold
	} else {
		bcastReady = pl.Recv(binomialParent(me), acc, reduceSend)
	}
	for _, child := range binomialChildren(me, n) {
		pl.Send(child, acc, bcastReady)
	}
	return nil
}

// allreduceRing is the bandwidth-optimal segmented ring: a
// reduce-scatter pass (n-1 rounds; each rank ends owning one fully
// reduced chunk) followed by an allgather pass (n-1 rounds circulating
// the reduced chunks). Chunks are split into segments so a segment is
// forwarded the moment its fold lands — the pipelined ring that keeps
// every link busy for the whole operation and moves only 2(n-1)/n of
// the vector per link.
func allreduceRing(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	acc, op := a.Buf, a.Op
	next, prev := (me+1)%n, (me-1+n)%n
	elems := len(acc) / 8

	// Balanced element chunks, chunk i destined to be owned reduced by
	// rank (i-1+n)%n after the reduce-scatter pass.
	spans := make([][][2]int, n)
	// Both ring passes traverse each (rank, successor) pair once per
	// chunk; keep the total within the per-pair sub-tag budget.
	maxSegs := collPairSpace / (2 * (n - 1))
	if maxSegs < 1 {
		maxSegs = 1
	}
	q, rem := elems/n, elems%n
	off := 0
	for i := 0; i < n; i++ {
		l := q
		if i < rem {
			l++
		}
		spans[i] = segSpans(off*8, l*8, a.SegBytes, 8, maxSegs)
		off += l
	}

	segBuf := func(span [2]int) []byte { return acc[span[0] : span[0]+span[1]] }

	// Reduce-scatter: round t sends chunk (me-t) onward and folds the
	// arriving chunk (me-t-1); round t+1 forwards exactly what round t
	// folded, segment by segment.
	rsSend := make([][]int, n)
	rsFold := make([][]int, n)
	for t := 0; t < n-1; t++ {
		sc := (me - t + n) % n
		rc := (me - t - 1 + n) % n
		rsSend[sc] = make([]int, len(spans[sc]))
		for s, span := range spans[sc] {
			if t == 0 {
				rsSend[sc][s] = pl.Send(next, segBuf(span))
			} else {
				rsSend[sc][s] = pl.Send(next, segBuf(span), rsFold[sc][s])
			}
		}
		rsFold[rc] = make([]int, len(spans[rc]))
		for s, span := range spans[rc] {
			tmp := make([]byte, span[1])
			r := pl.Recv(prev, tmp)
			dst := segBuf(span)
			rsFold[rc][s] = pl.Compute(func() { foldF64(dst, tmp, op) }, r)
		}
	}

	// Allgather: circulate the reduced chunks. The receive of chunk
	// (me-t) overwrites a span whose reduce-scatter send (same round
	// index t) must have retired first — buffer-reuse safety.
	agRecv := make([][]int, n)
	for t := 0; t < n-1; t++ {
		sc := (me + 1 - t + 2*n) % n
		rc := (me - t + n) % n
		for s, span := range spans[sc] {
			if t == 0 {
				pl.Send(next, segBuf(span), rsFold[sc][s])
			} else {
				pl.Send(next, segBuf(span), agRecv[sc][s])
			}
		}
		agRecv[rc] = make([]int, len(spans[rc]))
		for s, span := range spans[rc] {
			agRecv[rc][s] = pl.Recv(prev, segBuf(span), rsSend[rc][s])
		}
	}
	return nil
}

// PackF64 packs a float64 vector into its little-endian wire bytes —
// the representation the reduction schedules fold over. Exported so the
// bench harness's seed baseline shares the exact format.
func PackF64(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// UnpackF64 is the inverse of PackF64.
func UnpackF64(b []byte, n int) []float64 {
	out := make([]float64, n)
	unpackF64Into(out, b)
	return out
}

// unpackF64Into unpacks into an existing vector, so the hot collective
// entry points do not allocate a second copy of the result.
func unpackF64Into(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}
