package madmpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"nmad/internal/sim"
)

// Reduction collectives over float64 vectors — enough for the dominant
// numerical use of MPI_Reduce/Allreduce. Binomial-tree reduce, then a
// broadcast for the All variant (the classic MPICH-1 algorithms, built
// purely on the point-to-point layer).

// Op is a binary reduction operator applied element-wise.
type Op func(a, b float64) float64

// Predefined operators.
var (
	OpSum  Op = func(a, b float64) float64 { return a + b }
	OpMax  Op = math.Max
	OpMin  Op = math.Min
	OpProd Op = func(a, b float64) float64 { return a * b }
)

// Reduce combines every rank's send vector element-wise into recv at
// root (recv is ignored elsewhere). All vectors must have equal length.
func (c *Comm) Reduce(p *sim.Proc, send, recv []float64, op Op, root int) error {
	n, me := c.Size(), c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: reduce root %d", ErrBadRank, root)
	}
	tag := c.collTag()
	// Rotate ranks so the tree roots at 0.
	vrank := (me - root + n) % n
	acc := append([]float64(nil), send...)
	buf := make([]byte, 8*len(send))
	// Binomial tree: in round k, vranks with bit k set send to
	// vrank - 2^k and drop out; others receive and fold.
	for mask := 1; mask < n; mask *= 2 {
		if vrank&mask != 0 {
			dst := ((vrank - mask) + root) % n
			return c.Send(p, packF64(acc), dst, tag)
		}
		if vrank+mask < n {
			src := ((vrank + mask) + root) % n
			if _, err := c.Recv(p, buf, src, tag); err != nil {
				return fmt.Errorf("madmpi: reduce recv: %w", err)
			}
			other := unpackF64(buf, len(acc))
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	copy(recv, acc)
	return nil
}

// Allreduce is Reduce followed by a broadcast of the result.
func (c *Comm) Allreduce(p *sim.Proc, send, recv []float64, op Op) error {
	tmp := make([]float64, len(send))
	if err := c.Reduce(p, send, tmp, op, 0); err != nil {
		return err
	}
	raw := make([]byte, 8*len(send))
	if c.Rank() == 0 {
		copy(raw, packF64(tmp))
	}
	if err := c.Bcast(p, raw, 0); err != nil {
		return err
	}
	copy(recv, unpackF64(raw, len(send)))
	return nil
}

// Scatter distributes equal slices of sendBuf (significant at root only)
// to every rank's recvBuf.
func (c *Comm) Scatter(p *sim.Proc, sendBuf, recvBuf []byte, root int) error {
	n, me := c.Size(), c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatter root %d", ErrBadRank, root)
	}
	tag := c.collTag()
	per := len(recvBuf)
	if me != root {
		_, err := c.Recv(p, recvBuf, root, tag)
		return err
	}
	if len(sendBuf) < n*per {
		return fmt.Errorf("madmpi: scatter buffer %d bytes, need %d", len(sendBuf), n*per)
	}
	copy(recvBuf, sendBuf[me*per:(me+1)*per])
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs = append(reqs, c.Isend(p, sendBuf[r*per:(r+1)*per], r, tag))
	}
	return Waitall(p, reqs...)
}

// Alltoall exchanges the i-th slice of sendBuf with rank i; every rank
// ends with one slice from everyone in recvBuf, rank order. Slice size is
// len(sendBuf)/Size.
func (c *Comm) Alltoall(p *sim.Proc, sendBuf, recvBuf []byte) error {
	n, me := c.Size(), c.Rank()
	if len(sendBuf)%n != 0 {
		return fmt.Errorf("madmpi: alltoall send buffer %d not divisible by %d ranks", len(sendBuf), n)
	}
	per := len(sendBuf) / n
	if len(recvBuf) < n*per {
		return fmt.Errorf("madmpi: alltoall recv buffer %d bytes, need %d", len(recvBuf), n*per)
	}
	tag := c.collTag()
	copy(recvBuf[me*per:(me+1)*per], sendBuf[me*per:(me+1)*per])
	reqs := make([]*Request, 0, 2*(n-1))
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs = append(reqs, c.Irecv(p, recvBuf[r*per:(r+1)*per], r, tag))
	}
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs = append(reqs, c.Isend(p, sendBuf[r*per:(r+1)*per], r, tag))
	}
	return Waitall(p, reqs...)
}

func packF64(v []float64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

func unpackF64(b []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
