package madmpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"nmad/internal/core"
	"nmad/internal/sim"
)

// The collective schedule engine. A collective is compiled into a DAG of
// nonblocking steps — sends, receives and local compute (reduction folds,
// packing) — and executed with request groups: every step whose
// dependencies are satisfied is posted immediately, so multiple rounds
// and segments of one collective are in flight at once and all of the
// traffic flows through the engine's optimization window, where the
// scheduling strategies aggregate and balance it. This replaces the
// seed's blocking Sendrecv round-loops, which serialized every round and
// gave the strategy layer nothing to optimize.
//
// # Tag space
//
// Collective traffic travels on a dedicated flow-tag lane, disjoint from
// user point-to-point tags and from AnyTag matching: the lane occupies
// the upper 32 bits of the engine flow tag with the high bit set (user
// communicators are small dense ids and never reach it). Within one
// collective, every message between an ordered rank pair gets its own
// sub-tag, assigned at schedule build time — both ranks construct their
// sides of the schedule with the same loops, so the k-th message from A
// to B carries the same tag on both sides and matching is exact no
// matter in which order completions allow steps to be posted.
//
// The 32-bit tag word folds (sequence window, pair sub-tag); the lane
// word folds (epoch, communicator). When the per-epoch sequence window
// wraps, the epoch advances and the whole lane moves — tags are never
// silently reused. Only after collMaxEpoch epochs (2^29 collectives on
// one communicator) does the space genuinely end, and that is detected
// and reported as ErrCollTags instead of wrapping.

// Typed collective errors.
var (
	// ErrCollBuffer reports a collective buffer whose length does not
	// match what the operation requires (e.g. Gather's recvBuf must be
	// exactly Size×len(sendBuf) bytes).
	ErrCollBuffer = errors.New("madmpi: collective buffer length mismatch")
	// ErrCollTags reports an exhausted collective tag space: the
	// communicator has run 2^29 collectives. Dup a fresh communicator to
	// continue.
	ErrCollTags = errors.New("madmpi: collective tag space exhausted")
	// ErrCollAlgo reports an unknown collective algorithm name.
	ErrCollAlgo = errors.New("madmpi: unknown collective algorithm")
)

// Collective tag-space layout.
const (
	// collPairSpace bounds the distinct messages between one ordered
	// rank pair within a single collective; schedule builders clamp
	// their segment counts to it.
	collPairSpace = 1 << 10
	// collSeqWindow is how many collectives fit in one tag epoch.
	collSeqWindow = 1 << 22
	// collMaxEpoch bounds the epochs encodable in the lane word.
	collMaxEpoch = 1 << 7
	// collLaneBit marks the collective lane in the upper flow-tag word.
	collLaneBit = uint32(1) << 31
	// collCommMask is the communicator-id field of the lane word.
	collCommMask = uint32(1)<<24 - 1
)

type stepKind uint8

const (
	stepSend stepKind = iota
	stepRecv
	stepCompute
)

// collStep is one node of the schedule DAG.
type collStep struct {
	kind stepKind
	peer int
	sub  int // per-(peer, direction) sub-tag, assigned at build time
	buf  []byte
	fn   func()
	deps []int
}

// CollPlan accumulates the step DAG of one collective. Algorithm
// builders (CollAlgo) add steps with Send/Recv/Compute; each returns the
// step id, which later steps name as a dependency. The executor posts a
// step as soon as every dependency has completed, so independent steps —
// different rounds, different segments — overlap freely.
type CollPlan struct {
	steps   []collStep
	sendSub map[int]int
	recvSub map[int]int
	err     error
}

func newCollPlan() *CollPlan {
	return &CollPlan{sendSub: map[int]int{}, recvSub: map[int]int{}}
}

func (pl *CollPlan) fail(err error) int {
	if pl.err == nil {
		pl.err = err
	}
	return len(pl.steps) - 1
}

// realDeps drops negative step ids: a -1 means "no dependency", so
// builders can thread an optional predecessor without branching. The
// input is returned as-is when nothing needs dropping (callers may
// share a deps slice between steps).
func realDeps(deps []int) []int {
	neg := false
	for _, d := range deps {
		if d < 0 {
			neg = true
			break
		}
	}
	if !neg {
		return deps
	}
	keep := make([]int, 0, len(deps))
	for _, d := range deps {
		if d >= 0 {
			keep = append(keep, d)
		}
	}
	return keep
}

// Send schedules a nonblocking send of buf to peer, started once every
// step in deps has completed (negative ids mean "no dependency"). The
// step completes when the engine request does — i.e. when buf may be
// reused. Zero-length buffers become no-op steps (both sides of a pair
// know the length, so the elision is symmetric). Returns the step id.
func (pl *CollPlan) Send(peer int, buf []byte, deps ...int) int {
	if len(buf) == 0 {
		return pl.Compute(nil, deps...)
	}
	sub := pl.sendSub[peer]
	if sub >= collPairSpace {
		return pl.fail(fmt.Errorf("madmpi: collective schedule exceeds %d messages to rank %d", collPairSpace, peer))
	}
	pl.sendSub[peer] = sub + 1
	pl.steps = append(pl.steps, collStep{kind: stepSend, peer: peer, sub: sub, buf: buf, deps: realDeps(deps)})
	return len(pl.steps) - 1
}

// Recv schedules a nonblocking receive into buf from peer. Receives with
// no dependencies are preposted before any send of the schedule leaves.
// Returns the step id.
func (pl *CollPlan) Recv(peer int, buf []byte, deps ...int) int {
	if len(buf) == 0 {
		return pl.Compute(nil, deps...)
	}
	sub := pl.recvSub[peer]
	if sub >= collPairSpace {
		return pl.fail(fmt.Errorf("madmpi: collective schedule exceeds %d messages from rank %d", collPairSpace, peer))
	}
	pl.recvSub[peer] = sub + 1
	pl.steps = append(pl.steps, collStep{kind: stepRecv, peer: peer, sub: sub, buf: buf, deps: realDeps(deps)})
	return len(pl.steps) - 1
}

// Compute schedules a local step (a reduction fold, a pack) run inline
// once deps have completed. fn may be nil for a pure ordering point.
// Returns the step id.
func (pl *CollPlan) Compute(fn func(), deps ...int) int {
	pl.steps = append(pl.steps, collStep{kind: stepCompute, fn: fn, deps: realDeps(deps)})
	return len(pl.steps) - 1
}

// nextCollSeq consumes the next collective slot. Entry points call it
// before any rank-asymmetric validation (a root-side buffer check only
// the root can fail), so every rank advances the sequence for every
// collective call and the tag lanes stay in lockstep even when one
// rank rejects its arguments — the invariant the seed kept by minting
// the tag before validating.
func (c *Comm) nextCollSeq() uint64 {
	seq := c.collSeq
	c.collSeq++
	return seq
}

// collTags mints the flow-tag lane of collective slot seq on this
// communicator: the base tag a step's pair sub-tag is added to. Because
// collectives are called in the same order on every rank (the MPI
// contract), ranks agree on the sequence number, the epoch and therefore
// the lane.
func (c *Comm) collTags(seq uint64) (core.Tag, error) {
	epoch := seq / collSeqWindow
	if epoch >= collMaxEpoch {
		return 0, fmt.Errorf("%w: %d collectives on communicator %d", ErrCollTags, seq, c.id)
	}
	if c.id&^collCommMask != 0 {
		return 0, fmt.Errorf("madmpi: communicator id %d overflows the collective lane", c.id)
	}
	lane := collLaneBit | uint32(epoch)<<24 | c.id
	base := uint32(seq%collSeqWindow) * collPairSpace
	return core.Tag(lane)<<32 | core.Tag(base), nil
}

// execute runs a compiled schedule to completion on the calling process,
// on the tag lane of collective slot seq. Ready steps are posted in step
// order; thereafter any completion — in any order — unlocks its
// dependents, keeping every independent transfer in flight at once.
func (c *Comm) execute(p *sim.Proc, seq uint64, pl *CollPlan) error {
	if pl.err != nil {
		return pl.err
	}
	base, err := c.collTags(seq)
	if err != nil {
		return err
	}
	if len(pl.steps) == 0 {
		return nil
	}
	n := len(pl.steps)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, s := range pl.steps {
		if s.kind != stepCompute {
			if err := c.checkPeer(s.peer); err != nil {
				return fmt.Errorf("madmpi: collective schedule step %d: %w", i, err)
			}
		}
		for _, d := range s.deps {
			if d < 0 || d >= i {
				return fmt.Errorf("madmpi: collective schedule step %d has invalid dependency %d", i, d)
			}
			indeg[i]++
			dependents[d] = append(dependents[d], i)
		}
	}
	var ready []int
	for i := range pl.steps {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	var inflight []core.Request
	var inflightStep []int
	done := 0
	finish := func(i int) {
		done++
		for _, j := range dependents[i] {
			if indeg[j]--; indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	for done < n {
		for len(ready) > 0 {
			i := ready[0]
			ready = ready[1:]
			s := &pl.steps[i]
			switch s.kind {
			case stepCompute:
				if s.fn != nil {
					s.fn()
				}
				finish(i)
			case stepSend:
				req := c.gate(s.peer).Isend(p, base+core.Tag(s.sub), s.buf)
				inflight = append(inflight, req)
				inflightStep = append(inflightStep, i)
			case stepRecv:
				req := c.gate(s.peer).Irecv(p, base+core.Tag(s.sub), s.buf)
				inflight = append(inflight, req)
				inflightStep = append(inflightStep, i)
			}
		}
		if done == n {
			break
		}
		if len(inflight) == 0 {
			return fmt.Errorf("madmpi: collective schedule stuck with %d of %d steps unreachable", n-done, n)
		}
		idx, err := core.WaitAny(p, inflight...)
		if err != nil {
			s := pl.steps[inflightStep[idx]]
			dir := "send to"
			if s.kind == stepRecv {
				dir = "recv from"
			}
			return fmt.Errorf("madmpi: collective %s rank %d: %w", dir, s.peer, err)
		}
		i := inflightStep[idx]
		last := len(inflight) - 1
		inflight[idx], inflight = inflight[last], inflight[:last]
		inflightStep[idx], inflightStep = inflightStep[last], inflightStep[:last]
		finish(i)
	}
	return nil
}

// runColl is the common tail of every collective entry point: resolve
// the algorithm (pinned or auto-selected from bytes), compile the
// schedule, execute it on the lane of slot seq (consumed by the entry
// point via nextCollSeq before any asymmetric validation). The kind
// doubles as the operation name in error context.
func (c *Comm) runColl(p *sim.Proc, kind CollKind, bytes int, seq uint64, a CollArgs) error {
	algo, err := c.algoFor(kind, bytes)
	if err != nil {
		return fmt.Errorf("madmpi: %s: %w", kind, err)
	}
	pl := newCollPlan()
	if err := algo(pl, a); err != nil {
		return fmt.Errorf("madmpi: %s: %w", kind, err)
	}
	if err := c.execute(p, seq, pl); err != nil {
		return fmt.Errorf("madmpi: %s: %w", kind, err)
	}
	return nil
}

// segSpans splits [start, start+length) into at most maxSegs spans of
// roughly segBytes each, aligned to align (8 for float64 payloads so a
// fold never splits an element). Schedule builders use it to bound their
// per-pair message counts to the sub-tag budget.
func segSpans(start, length, segBytes, align, maxSegs int) [][2]int {
	if length <= 0 {
		return nil
	}
	if align < 1 {
		align = 1
	}
	if segBytes < align {
		segBytes = align
	}
	nsegs := (length + segBytes - 1) / segBytes
	if maxSegs > 0 && nsegs > maxSegs {
		nsegs = maxSegs
	}
	size := (length + nsegs - 1) / nsegs
	size = (size + align - 1) / align * align
	var out [][2]int
	for off := 0; off < length; off += size {
		l := size
		if off+l > length {
			l = length - off
		}
		out = append(out, [2]int{start + off, l})
	}
	return out
}

// foldF64 applies op element-wise over the float64 vectors packed in dst
// and src, accumulating into dst (dst[i] = op(dst[i], src[i])).
func foldF64(dst, src []byte, op Op) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i+8 <= n; i += 8 {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst[i:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], math.Float64bits(op(a, b)))
	}
}

// binomialParent returns the tree parent of vrank (vrank 0 is the root).
func binomialParent(vrank int) int {
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	return vrank - mask>>1
}

// binomialChildren returns the tree children of vrank in a comm of size
// n, in increasing-distance order.
func binomialChildren(vrank, n int) []int {
	mask := 1
	for mask <= vrank {
		mask <<= 1
	}
	var kids []int
	for ; vrank+mask < n; mask <<= 1 {
		kids = append(kids, vrank+mask)
	}
	return kids
}
