package madmpi

import (
	"fmt"
	"sort"
	"sync"
)

// The collective algorithm registry, mirroring the scheduling-strategy
// registry (sched.Register): algorithms are named constructors of
// schedule DAGs, selectable per collective kind. The engine picks one
// automatically from the message size and communicator size (the classic
// MPICH-style switching between binomial, dissemination, ring and
// pipelined algorithms), and MPI.ForceCollAlgo pins one explicitly.

// CollKind names a collective operation with pluggable algorithms.
type CollKind string

// The collective kinds.
const (
	CollBarrier   CollKind = "barrier"
	CollBcast     CollKind = "bcast"
	CollGather    CollKind = "gather"
	CollScatter   CollKind = "scatter"
	CollAllgather CollKind = "allgather"
	CollAlltoall  CollKind = "alltoall"
	CollReduce    CollKind = "reduce"
	CollAllreduce CollKind = "allreduce"
)

// collKinds lists every kind, for validation and introspection.
var collKinds = []CollKind{
	CollBarrier, CollBcast, CollGather, CollScatter,
	CollAllgather, CollAlltoall, CollReduce, CollAllreduce,
}

// CollArgs is everything an algorithm builder sees: the caller's rank
// and the communicator size, the operation's buffers, and the
// pipelining segment hint. Buf is the in-place payload (the broadcast
// bytes; the packed float64 accumulator of a reduction, pre-loaded with
// the local contribution). SendBuf/RecvBuf are the distinct-buffer
// collectives' surfaces, with the caller's own slice already copied.
type CollArgs struct {
	Rank, Size, Root int
	Buf              []byte
	SendBuf, RecvBuf []byte
	Op               Op
	SegBytes         int
}

// CollAlgo compiles one rank's side of a collective into a schedule.
// Every rank runs the same builder with its own CollArgs; the loops must
// produce matching per-pair message orders (they do naturally when both
// sides iterate rounds and segments the same way).
type CollAlgo func(pl *CollPlan, a CollArgs) error

var (
	collRegistryMu sync.RWMutex
	collRegistry   = map[CollKind]map[string]CollAlgo{}
)

// RegisterCollAlgo adds an algorithm under (kind, name). Registering a
// duplicate name for a kind returns an error: algorithm names are global
// configuration keys, like strategy names.
func RegisterCollAlgo(kind CollKind, name string, algo CollAlgo) error {
	if name == "" || algo == nil {
		return fmt.Errorf("madmpi: RegisterCollAlgo needs a name and a builder")
	}
	if !validCollKind(kind) {
		return fmt.Errorf("madmpi: RegisterCollAlgo: unknown collective kind %q", kind)
	}
	collRegistryMu.Lock()
	defer collRegistryMu.Unlock()
	byName := collRegistry[kind]
	if byName == nil {
		byName = map[string]CollAlgo{}
		collRegistry[kind] = byName
	}
	if _, dup := byName[name]; dup {
		return fmt.Errorf("madmpi: duplicate %s algorithm %q", kind, name)
	}
	byName[name] = algo
	return nil
}

// mustRegisterCollAlgo installs the built-ins at init time.
func mustRegisterCollAlgo(kind CollKind, name string, algo CollAlgo) {
	if err := RegisterCollAlgo(kind, name, algo); err != nil {
		panic(err)
	}
}

// CollAlgoNames lists the algorithms registered for kind, sorted.
func CollAlgoNames(kind CollKind) []string {
	collRegistryMu.RLock()
	defer collRegistryMu.RUnlock()
	names := make([]string, 0, len(collRegistry[kind]))
	for n := range collRegistry[kind] {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CollKinds lists every collective kind with pluggable algorithms.
func CollKinds() []CollKind {
	out := make([]CollKind, len(collKinds))
	copy(out, collKinds)
	return out
}

func validCollKind(kind CollKind) bool {
	for _, k := range collKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// ValidateCollAlgo reports whether name is registered for kind —
// ErrCollAlgo otherwise. Callers use it to reject a configuration
// before constructing anything stateful.
func ValidateCollAlgo(kind CollKind, name string) error {
	_, err := lookupCollAlgo(kind, name)
	return err
}

// lookupCollAlgo resolves (kind, name) or reports ErrCollAlgo.
func lookupCollAlgo(kind CollKind, name string) (CollAlgo, error) {
	collRegistryMu.RLock()
	algo, ok := collRegistry[kind][name]
	collRegistryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s %q (have %v)", ErrCollAlgo, kind, name, CollAlgoNames(kind))
	}
	return algo, nil
}

// collSmallBytes is the size pivot of the automatic selection: below it
// (or on tiny communicators) latency-optimal trees win; above it the
// bandwidth-optimal pipelined ring and chain algorithms win.
const collSmallBytes = 32 << 10

// defaultCollAlgo is the automatic algorithm selection, switching on
// message size and communicator size like the classic MPICH decision
// functions. bytes is the per-rank payload the algorithm moves. The
// round-count-driven algorithms (ring, pairwise) send O(n) messages
// between fixed neighbor pairs, so past the per-pair sub-tag budget
// the selector falls back to the tree-shaped algorithms instead of
// walking into a schedule-build failure.
func defaultCollAlgo(kind CollKind, n, bytes int) string {
	large := n >= 4 && bytes >= collSmallBytes
	switch kind {
	case CollBarrier:
		return "dissemination"
	case CollBcast:
		if large {
			return "pipeline"
		}
		return "binomial"
	case CollReduce:
		if large {
			return "pipeline"
		}
		return "binomial"
	case CollAllreduce:
		// The ring's two passes each cross every neighbor pair n-1 times.
		if large && 2*(n-1) <= collPairSpace {
			return "ring"
		}
		return "tree"
	case CollAllgather:
		if large && n-1 <= collPairSpace {
			return "ring"
		}
		return "gather-bcast"
	case CollAlltoall:
		if n >= 4 && bytes >= 4<<10 && n-1 <= collPairSpace {
			return "pairwise"
		}
		return "linear"
	default: // CollGather, CollScatter
		return "linear"
	}
}

// DefaultCollSegment is the default pipelining segment for the segmented
// algorithms; MPI.SetCollSegment (or nmad.WithCollSegment) tunes it.
const DefaultCollSegment = 8 << 10

// ForceCollAlgo pins the algorithm used for one collective kind on every
// communicator of this rank, bypassing the automatic selection. The name
// must be registered. Configure every rank of a job identically —
// algorithms only interoperate with themselves.
func (m *MPI) ForceCollAlgo(kind CollKind, name string) error {
	if _, err := lookupCollAlgo(kind, name); err != nil {
		return err
	}
	if m.collForce == nil {
		m.collForce = map[CollKind]string{}
	}
	m.collForce[kind] = name
	return nil
}

// CollSegment returns the pipelining segment size in bytes.
func (m *MPI) CollSegment() int {
	if m.collSeg <= 0 {
		return DefaultCollSegment
	}
	return m.collSeg
}

// SetCollSegment sets the pipelining segment size in bytes for the
// segmented collective algorithms (pipeline bcast/reduce, ring
// allreduce). Configure every rank identically.
func (m *MPI) SetCollSegment(bytes int) { m.collSeg = bytes }

// algoFor resolves the algorithm to run: the forced name if pinned,
// otherwise the automatic selection.
func (c *Comm) algoFor(kind CollKind, bytes int) (CollAlgo, error) {
	name := c.mpi.collForce[kind]
	if name == "" {
		name = defaultCollAlgo(kind, c.Size(), bytes)
	}
	return lookupCollAlgo(kind, name)
}

func init() {
	mustRegisterCollAlgo(CollBarrier, "dissemination", barrierDissemination)
	mustRegisterCollAlgo(CollBcast, "binomial", bcastBinomial)
	mustRegisterCollAlgo(CollBcast, "pipeline", bcastPipeline)
	mustRegisterCollAlgo(CollGather, "linear", gatherLinear)
	mustRegisterCollAlgo(CollScatter, "linear", scatterLinear)
	mustRegisterCollAlgo(CollAllgather, "ring", allgatherRing)
	mustRegisterCollAlgo(CollAllgather, "gather-bcast", allgatherGatherBcast)
	mustRegisterCollAlgo(CollAlltoall, "linear", alltoallLinear)
	mustRegisterCollAlgo(CollAlltoall, "pairwise", alltoallPairwise)
	mustRegisterCollAlgo(CollReduce, "binomial", reduceBinomial)
	mustRegisterCollAlgo(CollReduce, "pipeline", reducePipeline)
	mustRegisterCollAlgo(CollAllreduce, "tree", allreduceTree)
	mustRegisterCollAlgo(CollAllreduce, "ring", allreduceRing)
}
