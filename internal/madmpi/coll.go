package madmpi

import (
	"fmt"

	"nmad/internal/sim"
)

// The byte collectives, compiled onto the collective schedule engine
// (collsched.go): every operation builds a DAG of nonblocking steps and
// executes it, so rounds and segments overlap and the traffic flows
// through the scheduling strategies. Algorithms are pluggable through
// the registry in collalgo.go; the entry points here validate buffers,
// handle the local contribution and the single-rank edge cases, then
// hand off to the selected builder.
//
// Collective calls must be made by every rank of the communicator, in
// the same order — the usual MPI contract. The per-communicator sequence
// number (and its epoch extension) keeps collective tags out of the user
// tag space and distinct across consecutive operations; see collsched.go.

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier(p *sim.Proc) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	return c.runColl(p, CollBarrier, 0, seq, CollArgs{Rank: c.Rank(), Size: n})
}

// barrierDissemination is the dissemination barrier: ceil(log2 n) rounds
// of exchanges at doubling distance. All round receives are preposted;
// the round-k send waits only on the round-(k-1) receive, preserving the
// transitive happened-before chain that makes the barrier a barrier.
func barrierDissemination(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	token := []byte{1}
	prev := -1
	for dist := 1; dist < n; dist *= 2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		pl.Send(to, token, prev)
		prev = pl.Recv(from, make([]byte, 1))
	}
	return nil
}

// Bcast broadcasts buf from root to every rank.
func (c *Comm) Bcast(p *sim.Proc, buf []byte, root int) error {
	n := c.Size()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: bcast root %d", ErrBadRank, root)
	}
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	a := CollArgs{Rank: c.Rank(), Size: n, Root: root, Buf: buf, SegBytes: c.mpi.CollSegment()}
	return c.runColl(p, CollBcast, len(buf), seq, a)
}

// bcastBinomial is the binomial tree: each rank receives from its tree
// parent once, then forwards to all of its children concurrently (the
// seed serialized the child sends; here they are independent steps).
func bcastBinomial(pl *CollPlan, a CollArgs) error {
	n, root := a.Size, a.Root
	vrank := (a.Rank - root + n) % n
	recvStep := -1
	if vrank != 0 {
		parent := (binomialParent(vrank) + root) % n
		recvStep = pl.Recv(parent, a.Buf)
	}
	for _, child := range binomialChildren(vrank, n) {
		pl.Send((child+root)%n, a.Buf, recvStep)
	}
	return nil
}

// bcastPipeline is the segmented chain pipeline: ranks form a chain in
// rotated rank order and each segment is forwarded as soon as it lands,
// so for long vectors every link of the chain is busy with a different
// segment at once — bandwidth-optimal for large messages.
func bcastPipeline(pl *CollPlan, a CollArgs) error {
	n, root := a.Size, a.Root
	vrank := (a.Rank - root + n) % n
	parent := (vrank - 1 + root + n) % n
	child := (vrank + 1 + root) % n
	for _, span := range segSpans(0, len(a.Buf), a.SegBytes, 1, collPairSpace) {
		seg := a.Buf[span[0] : span[0]+span[1]]
		switch {
		case vrank == 0:
			pl.Send(child, seg)
		case vrank == n-1:
			pl.Recv(parent, seg)
		default:
			r := pl.Recv(parent, seg)
			pl.Send(child, seg, r)
		}
	}
	return nil
}

// Gather collects each rank's sendBuf into recvBuf at root, rank order.
// recvBuf must be exactly Size×len(sendBuf) bytes at root (ErrCollBuffer
// otherwise) and is ignored elsewhere. Every rank must contribute the
// same length.
func (c *Comm) Gather(p *sim.Proc, sendBuf, recvBuf []byte, root int) error {
	n, me := c.Size(), c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gather root %d", ErrBadRank, root)
	}
	// The slot is consumed before the root-side buffer check: only the
	// root can fail it, and the other ranks (which cannot see the
	// root's buffer) must stay in tag-space lockstep.
	seq := c.nextCollSeq()
	per := len(sendBuf)
	if me == root {
		if len(recvBuf) != n*per {
			return fmt.Errorf("%w: gather recv buffer %d bytes, want exactly %d (%d ranks × %d)",
				ErrCollBuffer, len(recvBuf), n*per, n, per)
		}
		copy(recvBuf[me*per:(me+1)*per], sendBuf)
	}
	if n == 1 {
		return nil
	}
	a := CollArgs{Rank: me, Size: n, Root: root, SendBuf: sendBuf, RecvBuf: recvBuf, SegBytes: c.mpi.CollSegment()}
	return c.runColl(p, CollGather, per, seq, a)
}

// gatherLinear posts every receive at the root concurrently; leaves send
// their single contribution.
func gatherLinear(pl *CollPlan, a CollArgs) error {
	n, me, root := a.Size, a.Rank, a.Root
	if me != root {
		pl.Send(root, a.SendBuf)
		return nil
	}
	per := len(a.SendBuf)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		pl.Recv(r, a.RecvBuf[r*per:(r+1)*per])
	}
	return nil
}

// Scatter distributes equal slices of sendBuf (significant at root only,
// exactly Size×len(recvBuf) bytes there) to every rank's recvBuf.
func (c *Comm) Scatter(p *sim.Proc, sendBuf, recvBuf []byte, root int) error {
	n, me := c.Size(), c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: scatter root %d", ErrBadRank, root)
	}
	// As in Gather, consume the slot before the root-only check.
	seq := c.nextCollSeq()
	per := len(recvBuf)
	if me == root {
		if len(sendBuf) != n*per {
			return fmt.Errorf("%w: scatter send buffer %d bytes, want exactly %d (%d ranks × %d)",
				ErrCollBuffer, len(sendBuf), n*per, n, per)
		}
		copy(recvBuf, sendBuf[me*per:(me+1)*per])
	}
	if n == 1 {
		return nil
	}
	a := CollArgs{Rank: me, Size: n, Root: root, SendBuf: sendBuf, RecvBuf: recvBuf, SegBytes: c.mpi.CollSegment()}
	return c.runColl(p, CollScatter, per, seq, a)
}

// scatterLinear posts every slice send at the root concurrently.
func scatterLinear(pl *CollPlan, a CollArgs) error {
	n, me, root := a.Size, a.Rank, a.Root
	if me != root {
		pl.Recv(root, a.RecvBuf)
		return nil
	}
	per := len(a.RecvBuf)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		pl.Send(r, a.SendBuf[r*per:(r+1)*per])
	}
	return nil
}

// Allgather is Gather to everyone: each rank ends with every rank's
// contribution in rank order. recvBuf must be exactly Size×len(sendBuf)
// bytes on every rank.
func (c *Comm) Allgather(p *sim.Proc, sendBuf, recvBuf []byte) error {
	n, me := c.Size(), c.Rank()
	per := len(sendBuf)
	if len(recvBuf) != n*per {
		return fmt.Errorf("%w: allgather recv buffer %d bytes, want exactly %d (%d ranks × %d)",
			ErrCollBuffer, len(recvBuf), n*per, n, per)
	}
	copy(recvBuf[me*per:(me+1)*per], sendBuf)
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	a := CollArgs{Rank: me, Size: n, SendBuf: sendBuf, RecvBuf: recvBuf, SegBytes: c.mpi.CollSegment()}
	return c.runColl(p, CollAllgather, n*per, seq, a)
}

// allgatherRing is the classic ring: in round t each rank forwards the
// slot it received in round t-1 to its successor, so after n-1 rounds
// every slot has visited every rank. Each link carries (n-1)/n of the
// total — bandwidth-optimal — and the rounds pipeline around the ring.
func allgatherRing(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	per := len(a.SendBuf)
	next, prev := (me+1)%n, (me-1+n)%n
	prevRecv := -1
	for t := 0; t < n-1; t++ {
		sendSlot := (me - t + n) % n
		recvSlot := (me - t - 1 + n) % n
		pl.Send(next, a.RecvBuf[sendSlot*per:(sendSlot+1)*per], prevRecv)
		prevRecv = pl.Recv(prev, a.RecvBuf[recvSlot*per:(recvSlot+1)*per])
	}
	return nil
}

// allgatherGatherBcast fuses a linear gather to rank 0 with a binomial
// broadcast of the assembled buffer into one DAG — the latency-optimal
// shape for small payloads.
func allgatherGatherBcast(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	per := len(a.SendBuf)
	if me == 0 {
		var gdeps []int
		for r := 1; r < n; r++ {
			gdeps = append(gdeps, pl.Recv(r, a.RecvBuf[r*per:(r+1)*per]))
		}
		for _, child := range binomialChildren(0, n) {
			pl.Send(child, a.RecvBuf, gdeps...)
		}
		return nil
	}
	// The broadcast receive overwrites recvBuf, which may alias the
	// contribution still streaming to the root — order them.
	s := pl.Send(0, a.SendBuf)
	r := pl.Recv(binomialParent(me), a.RecvBuf, s)
	for _, child := range binomialChildren(me, n) {
		pl.Send(child, a.RecvBuf, r)
	}
	return nil
}

// Alltoall exchanges the i-th slice of sendBuf with rank i; every rank
// ends with one slice from everyone in recvBuf, rank order. Slice size
// is len(sendBuf)/Size; recvBuf must be exactly len(sendBuf) bytes.
func (c *Comm) Alltoall(p *sim.Proc, sendBuf, recvBuf []byte) error {
	n, me := c.Size(), c.Rank()
	if len(sendBuf)%n != 0 {
		return fmt.Errorf("%w: alltoall send buffer %d bytes not divisible by %d ranks",
			ErrCollBuffer, len(sendBuf), n)
	}
	per := len(sendBuf) / n
	if len(recvBuf) != n*per {
		return fmt.Errorf("%w: alltoall recv buffer %d bytes, want exactly %d",
			ErrCollBuffer, len(recvBuf), n*per)
	}
	copy(recvBuf[me*per:(me+1)*per], sendBuf[me*per:(me+1)*per])
	if n == 1 {
		return nil
	}
	seq := c.nextCollSeq()
	a := CollArgs{Rank: me, Size: n, SendBuf: sendBuf, RecvBuf: recvBuf, SegBytes: c.mpi.CollSegment()}
	return c.runColl(p, CollAlltoall, per, seq, a)
}

// alltoallLinear posts every send and receive at once and lets the
// optimizer aggregate — fine for small slices.
func alltoallLinear(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	per := len(a.SendBuf) / n
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		pl.Recv(r, a.RecvBuf[r*per:(r+1)*per])
	}
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		pl.Send(r, a.SendBuf[r*per:(r+1)*per])
	}
	return nil
}

// alltoallPairwise walks n-1 rounds of disjoint pairwise exchanges
// (round r: send to me+r, receive from me-r), chaining rounds so at most
// one round per peer pair is in flight — bounded buffering for large
// slices, where the linear algorithm floods every gate at once.
func alltoallPairwise(pl *CollPlan, a CollArgs) error {
	n, me := a.Size, a.Rank
	per := len(a.SendBuf) / n
	prevS, prevR := -1, -1
	for r := 1; r < n; r++ {
		to := (me + r) % n
		from := (me - r + n) % n
		var deps []int
		if prevS >= 0 {
			deps = []int{prevS, prevR}
		}
		prevS = pl.Send(to, a.SendBuf[to*per:(to+1)*per], deps...)
		prevR = pl.Recv(from, a.RecvBuf[from*per:(from+1)*per], deps...)
	}
	return nil
}
