package madmpi

import (
	"fmt"

	"nmad/internal/sim"
)

// Minimal collectives. The paper's MAD-MPI is a point-to-point subset;
// these exist so the examples and tests can synchronize without
// hand-rolling trees. They are built strictly on the nonblocking
// point-to-point layer, like early MPICH collectives.
//
// Collective calls must be made by every rank of the communicator, in the
// same order — the usual MPI contract. A per-communicator collective
// sequence number keeps their tags out of the user tag space and distinct
// across consecutive operations.

// collTagBase starts the collective tag space well above user tags.
const collTagBase = 1 << 28

// collTag mints the tag for the next collective on this rank. Because
// collectives are called in the same order everywhere, ranks agree.
func (c *Comm) collTag() int {
	c.collSeq++
	return collTagBase + int(c.collSeq%(1<<20))
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2(n)) rounds of exchanges).
func (c *Comm) Barrier(p *sim.Proc) error {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	tag := c.collTag()
	token := []byte{1}
	buf := make([]byte, 1)
	for dist := 1; dist < n; dist *= 2 {
		to := (me + dist) % n
		from := (me - dist + n) % n
		if _, err := c.Sendrecv(p, token, to, tag, buf, from, tag); err != nil {
			return fmt.Errorf("madmpi: barrier round %d: %w", dist, err)
		}
	}
	return nil
}

// Bcast broadcasts buf from root to every rank (binomial tree).
func (c *Comm) Bcast(p *sim.Proc, buf []byte, root int) error {
	n, me := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	if root < 0 || root >= n {
		return fmt.Errorf("%w: bcast root %d", ErrBadRank, root)
	}
	tag := c.collTag()
	// Rotate so the algorithm always roots at 0.
	vrank := (me - root + n) % n
	// Receive from the parent (unless root).
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask *= 2
		}
		mask /= 2
		parent := ((vrank - mask) + root) % n
		if _, err := c.Recv(p, buf, parent, tag); err != nil {
			return fmt.Errorf("madmpi: bcast recv: %w", err)
		}
	}
	// Forward to children.
	mask := 1
	for mask <= vrank {
		mask *= 2
	}
	for ; mask < n; mask *= 2 {
		child := vrank + mask
		if child >= n {
			break
		}
		if err := c.Send(p, buf, (child+root)%n, tag); err != nil {
			return fmt.Errorf("madmpi: bcast send: %w", err)
		}
	}
	return nil
}

// Gather collects each rank's sendBuf into recvBuf at root (linear
// algorithm). recvBuf must be size*len(sendBuf) bytes at root and is
// ignored elsewhere. Every rank must contribute the same length.
func (c *Comm) Gather(p *sim.Proc, sendBuf, recvBuf []byte, root int) error {
	n, me := c.Size(), c.Rank()
	if root < 0 || root >= n {
		return fmt.Errorf("%w: gather root %d", ErrBadRank, root)
	}
	tag := c.collTag()
	per := len(sendBuf)
	if me != root {
		return c.Send(p, sendBuf, root, tag)
	}
	if len(recvBuf) < n*per {
		return fmt.Errorf("madmpi: gather buffer %d bytes, need %d", len(recvBuf), n*per)
	}
	copy(recvBuf[me*per:], sendBuf)
	reqs := make([]*Request, 0, n-1)
	for r := 0; r < n; r++ {
		if r == me {
			continue
		}
		reqs = append(reqs, c.Irecv(p, recvBuf[r*per:(r+1)*per], r, tag))
	}
	return Waitall(p, reqs...)
}

// Allgather is Gather to everyone: each rank ends with every
// contribution (gather at 0, then broadcast).
func (c *Comm) Allgather(p *sim.Proc, sendBuf, recvBuf []byte) error {
	if len(recvBuf) < c.Size()*len(sendBuf) {
		return fmt.Errorf("madmpi: allgather buffer %d bytes, need %d", len(recvBuf), c.Size()*len(sendBuf))
	}
	if err := c.Gather(p, sendBuf, recvBuf, 0); err != nil {
		return err
	}
	return c.Bcast(p, recvBuf[:c.Size()*len(sendBuf)], 0)
}
