package madmpi

import (
	"nmad/internal/core"
	"nmad/internal/sim"
)

// Point-to-point operations. The four nonblocking primitives (Isend,
// Irecv, Wait, Test) are direct mappings onto the engine, per §3.4 of the
// paper; the blocking forms are conveniences layered on them.

// Isend starts a nonblocking send of buf to rank dest with the given
// tag. Engine send options (core.Priority, core.OnRail, ...) pass
// through as MAD-MPI extensions.
func (c *Comm) Isend(p *sim.Proc, buf []byte, dest, tag int, opts ...core.SendOption) *Request {
	if err := c.checkPeer(dest); err != nil {
		return failedRequest(c, err)
	}
	if err := checkTag(tag); err != nil {
		return failedRequest(c, err)
	}
	req := c.gate(dest).Isend(p, c.flowTag(tag), buf, opts...)
	return newRequest(c, []*core.SendRequest{req}, nil)
}

// Irecv starts a nonblocking receive into buf from rank src. tag may be
// AnyTag.
func (c *Comm) Irecv(p *sim.Proc, buf []byte, src, tag int) *Request {
	if err := c.checkPeer(src); err != nil {
		return failedRequest(c, err)
	}
	var req *core.RecvRequest
	if tag == AnyTag {
		want, mask := c.tagSpace()
		req = c.gate(src).IrecvMasked(p, want, mask, buf)
	} else {
		if err := checkTag(tag); err != nil {
			return failedRequest(c, err)
		}
		req = c.gate(src).Irecv(p, c.flowTag(tag), buf)
	}
	return newRequest(c, nil, []*core.RecvRequest{req})
}

// Send is the blocking form of Isend.
func (c *Comm) Send(p *sim.Proc, buf []byte, dest, tag int) error {
	return c.Isend(p, buf, dest, tag).Wait(p)
}

// Recv is the blocking form of Irecv.
func (c *Comm) Recv(p *sim.Proc, buf []byte, src, tag int) (Status, error) {
	return c.Irecv(p, buf, src, tag).WaitStatus(p)
}

// Sendrecv exchanges messages with a peer without deadlocking: both
// directions are posted nonblocking, then completed.
func (c *Comm) Sendrecv(p *sim.Proc, sendBuf []byte, dest, sendTag int, recvBuf []byte, src, recvTag int) (Status, error) {
	rr := c.Irecv(p, recvBuf, src, recvTag)
	sr := c.Isend(p, sendBuf, dest, sendTag)
	if err := sr.Wait(p); err != nil {
		return Status{}, err
	}
	return rr.WaitStatus(p)
}

// IsendPriority is a MAD-MPI extension exposing the engine's priority
// flag (the RPC service-id pattern): the message is scheduled ahead of
// accumulated bulk data.
func (c *Comm) IsendPriority(p *sim.Proc, buf []byte, dest, tag int) *Request {
	return c.Isend(p, buf, dest, tag, core.Priority())
}
