package madmpi

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// job spawns size ranks over an MX fabric and runs body on each.
func job(t *testing.T, size int, body func(p *sim.Proc, m *MPI)) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, size, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < size; i++ {
		m, err := Init(f, simnet.NodeID(i), core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		w.Spawn("rank", func(p *sim.Proc) { body(p, m) })
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInitRankSize(t *testing.T) {
	job(t, 3, func(p *sim.Proc, m *MPI) {
		if m.Size() != 3 {
			t.Errorf("Size = %d, want 3", m.Size())
		}
		if r := m.Rank(); r < 0 || r >= 3 {
			t.Errorf("Rank = %d out of range", r)
		}
		if m.CommWorld().Size() != 3 || m.CommWorld().Rank() != m.Rank() {
			t.Error("world communicator disagrees with the environment")
		}
	})
}

func TestSendRecvBlocking(t *testing.T) {
	msg := []byte("hello rank one")
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		switch m.Rank() {
		case 0:
			if err := c.Send(p, msg, 1, 5); err != nil {
				t.Error(err)
			}
		case 1:
			buf := make([]byte, 64)
			st, err := c.Recv(p, buf, 0, 5)
			if err != nil {
				t.Error(err)
			}
			if st.Source != 0 || st.Tag != 5 || st.Count != len(msg) {
				t.Errorf("status %+v, want {0 5 %d}", st, len(msg))
			}
			if !bytes.Equal(buf[:st.Count], msg) {
				t.Errorf("payload %q", buf[:st.Count])
			}
		}
	})
}

func TestIsendIrecvWaitTest(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			req := c.Isend(p, []byte("async"), 1, 1)
			if err := req.Wait(p); err != nil {
				t.Error(err)
			}
			if !req.Test() {
				t.Error("Test false after Wait")
			}
		} else {
			buf := make([]byte, 8)
			req := c.Irecv(p, buf, 0, 1)
			for !req.Test() {
				p.Sleep(sim.Microsecond)
			}
			st, err := req.WaitStatus(p)
			if err != nil {
				t.Error(err)
			}
			if st.Count != 5 || string(buf[:5]) != "async" {
				t.Errorf("got %q (%d)", buf[:st.Count], st.Count)
			}
		}
	})
}

func TestAnyTag(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.Send(p, []byte("tagged"), 1, 42); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 16)
			st, err := c.Recv(p, buf, 0, AnyTag)
			if err != nil {
				t.Error(err)
			}
			if st.Tag != 42 {
				t.Errorf("AnyTag matched tag %d, want 42", st.Tag)
			}
		}
	})
}

func TestCommunicatorsIsolateTags(t *testing.T) {
	// Same user tag on two communicators: each receive must match its own
	// communicator's message.
	job(t, 2, func(p *sim.Proc, m *MPI) {
		world := m.CommWorld()
		other := world.Dup()
		if m.Rank() == 0 {
			if err := other.Send(p, []byte("on-dup"), 1, 7); err != nil {
				t.Error(err)
			}
			if err := world.Send(p, []byte("on-world"), 1, 7); err != nil {
				t.Error(err)
			}
		} else {
			bufW := make([]byte, 16)
			stW, err := world.Recv(p, bufW, 0, 7)
			if err != nil {
				t.Error(err)
			}
			if string(bufW[:stW.Count]) != "on-world" {
				t.Errorf("world comm received %q", bufW[:stW.Count])
			}
			bufD := make([]byte, 16)
			stD, err := other.Recv(p, bufD, 0, 7)
			if err != nil {
				t.Error(err)
			}
			if string(bufD[:stD.Count]) != "on-dup" {
				t.Errorf("dup comm received %q", bufD[:stD.Count])
			}
		}
	})
}

func TestSendrecvNoDeadlock(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		peer := 1 - m.Rank()
		out := []byte{byte(m.Rank())}
		in := make([]byte, 1)
		if _, err := c.Sendrecv(p, out, peer, 3, in, peer, 3); err != nil {
			t.Error(err)
		}
		if in[0] != byte(peer) {
			t.Errorf("rank %d received %d, want %d", m.Rank(), in[0], peer)
		}
	})
}

func TestValidationErrors(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if err := c.Isend(p, nil, m.Rank(), 0).Wait(p); !errors.Is(err, ErrSelfMessage) {
			t.Errorf("self send: %v, want ErrSelfMessage", err)
		}
		if err := c.Isend(p, nil, 99, 0).Wait(p); !errors.Is(err, ErrBadRank) {
			t.Errorf("bad rank: %v, want ErrBadRank", err)
		}
		if err := c.Isend(p, nil, 1-m.Rank(), -3).Wait(p); err == nil {
			t.Error("negative tag must fail")
		}
		// Keep the job balanced so neither rank deadlocks.
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
	})
}

func TestLargeMessageRendezvous(t *testing.T) {
	big := make([]byte, 2<<20)
	sim.NewRNG(1).Bytes(big)
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.Send(p, big, 1, 0); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, len(big))
			st, err := c.Recv(p, buf, 0, 0)
			if err != nil {
				t.Error(err)
			}
			if st.Count != len(big) || !bytes.Equal(buf, big) {
				t.Error("2MB rendezvous corrupted")
			}
		}
	})
}

func TestDatatypeSizeExtent(t *testing.T) {
	if Byte.Size() != 1 || Int32.Size() != 4 || Int64.Size() != 8 || Float64.Size() != 8 {
		t.Error("basic type sizes wrong")
	}
	c := Contiguous(10, Byte)
	if c.Size() != 10 || c.Extent() != 10 {
		t.Errorf("Contiguous(10, Byte): size %d extent %d", c.Size(), c.Extent())
	}
	v := Vector(3, 2, 5, Byte) // 3 blocks of 2 bytes every 5 bytes
	if v.Size() != 6 {
		t.Errorf("Vector size %d, want 6", v.Size())
	}
	if v.Extent() != 15 {
		t.Errorf("Vector extent %d, want 15", v.Extent())
	}
	idx := Indexed([]int{2, 3}, []int{0, 4}, Byte)
	if idx.Size() != 5 || idx.Extent() != 7 {
		t.Errorf("Indexed size %d extent %d, want 5/7", idx.Size(), idx.Extent())
	}
}

func TestFlattenCoalesces(t *testing.T) {
	segs := Flatten(Contiguous(100, Byte), 3)
	if len(segs) != 1 || segs[0] != (Segment{Offset: 0, Len: 300}) {
		t.Errorf("contiguous flatten = %v, want one 300-byte segment", segs)
	}
	v := Vector(4, 8, 16, Byte)
	segs = Flatten(v, 1)
	if len(segs) != 4 {
		t.Fatalf("vector flatten = %v, want 4 blocks", segs)
	}
	for i, s := range segs {
		if s.Offset != i*16 || s.Len != 8 {
			t.Errorf("block %d = %+v, want {%d 8}", i, s, i*16)
		}
	}
}

func TestFlattenPaperDatatype(t *testing.T) {
	// The Figure 4 datatype: one small block (64 B) then one large block
	// (256 KB).
	small, large := 64, 256<<10
	dt := Hindexed([]int{small, large}, []int{0, small}, Byte)
	segs := Flatten(dt, 2)
	// Adjacent blocks coalesce within an element; the test layout keeps
	// them adjacent so expect 1 segment per element... unless extent
	// separates them.
	total := 0
	for _, s := range segs {
		total += s.Len
	}
	if total != 2*(small+large) {
		t.Errorf("flattened %d bytes, want %d", total, 2*(small+large))
	}
}

func TestStructDatatype(t *testing.T) {
	// struct { int32 a; pad 4; float64 b[2] } — 2 fields at displacements
	// 0 and 8.
	st := Struct([]int{1, 2}, []int{0, 8}, []Datatype{Int32, Float64})
	if st.Size() != 4+16 {
		t.Errorf("struct size %d, want 20", st.Size())
	}
	if st.Extent() != 24 {
		t.Errorf("struct extent %d, want 24", st.Extent())
	}
	segs := Flatten(st, 1)
	if len(segs) != 2 {
		t.Fatalf("struct flatten %v, want 2 segments", segs)
	}
	if segs[0] != (Segment{0, 4}) || segs[1] != (Segment{8, 16}) {
		t.Errorf("struct segments %v", segs)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed uint64, nblocks uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(nblocks%6) + 2
		lens := make([]int, n)
		displs := make([]int, n)
		at := 0
		for i := 0; i < n; i++ {
			lens[i] = rng.Range(1, 40)
			displs[i] = at
			at += lens[i] + rng.Range(0, 10) // optional gap
		}
		dt := Hindexed(lens, displs, Byte)
		base := make([]byte, dt.Extent()*2+32)
		rng.Bytes(base)
		packed := Pack(base, dt, 2)
		if len(packed) != dt.Size()*2 {
			return false
		}
		out := make([]byte, len(base))
		Unpack(packed, out, dt, 2)
		// Every described byte must round-trip; gaps stay zero.
		for _, s := range Flatten(dt, 2) {
			if !bytes.Equal(out[s.Offset:s.Offset+s.Len], base[s.Offset:s.Offset+s.Len]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTypedSendRecv(t *testing.T) {
	// A strided matrix column exchange: rank 0 sends a column, rank 1
	// receives it into a different stride.
	const rows, cols = 16, 8
	col := Vector(rows, 1, cols, Byte) // one column of a row-major matrix
	src := make([]byte, rows*cols)
	for i := range src {
		src[i] = byte(i)
	}
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.SendTyped(p, src[3:], col, 1, 1, 0); err != nil { // column 3
				t.Error(err)
			}
		} else {
			dst := make([]byte, rows*cols)
			if _, err := c.RecvTyped(p, dst[5:], col, 1, 0, 0); err != nil { // into column 5
				t.Error(err)
			}
			for r := 0; r < rows; r++ {
				want := byte(r*cols + 3)
				if dst[r*cols+5] != want {
					t.Fatalf("row %d: got %d, want %d", r, dst[r*cols+5], want)
				}
			}
		}
	})
}

func TestTypedPaperIndexedExchange(t *testing.T) {
	// The §5.3 workload end to end: alternating 64B/256KB blocks.
	small, large := 64, 64<<10
	pair := small + large
	const count = 4
	dt := Hindexed([]int{small, large}, []int{0, small}, Byte)
	src := make([]byte, pair*count)
	sim.NewRNG(9).Bytes(src)
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.SendTyped(p, src, dt, count, 1, 2); err != nil {
				t.Error(err)
			}
		} else {
			dst := make([]byte, pair*count)
			st, err := c.RecvTyped(p, dst, dt, count, 0, 2)
			if err != nil {
				t.Error(err)
			}
			if st.Count != pair*count {
				t.Errorf("received %d bytes, want %d", st.Count, pair*count)
			}
			if !bytes.Equal(dst, src) {
				t.Error("indexed payload corrupted")
			}
			// The large blocks must have traveled by rendezvous.
			if rdv := m.Engine().Stats().RdvCompleted; rdv != 0 {
				t.Errorf("receiver shows %d rdv completions; they belong to the sender", rdv)
			}
		}
	})
}

func TestTypedBoundsChecked(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		dt := Hindexed([]int{16}, []int{100}, Byte)
		short := make([]byte, 50)
		if err := c.IsendTyped(p, short, dt, 1, 1-m.Rank(), 0).Wait(p); err == nil {
			t.Error("out-of-bounds datatype send must fail")
		}
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	var maxBefore, minAfter sim.Time = 0, 1 << 62
	job(t, 4, func(p *sim.Proc, m *MPI) {
		// Stagger arrival.
		p.Sleep(sim.Time(m.Rank()) * 50 * sim.Microsecond)
		if now := p.Now(); now > maxBefore {
			maxBefore = now
		}
		if err := m.CommWorld().Barrier(p); err != nil {
			t.Error(err)
		}
		if now := p.Now(); now < minAfter {
			minAfter = now
		}
	})
	if minAfter < maxBefore {
		t.Errorf("a rank left the barrier at %v before the last rank entered at %v", minAfter, maxBefore)
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	payload := []byte("broadcast payload")
	for _, root := range []int{0, 2} {
		root := root
		job(t, 5, func(p *sim.Proc, m *MPI) {
			buf := make([]byte, len(payload))
			if m.Rank() == root {
				copy(buf, payload)
			}
			if err := m.CommWorld().Bcast(p, buf, root); err != nil {
				t.Error(err)
			}
			if !bytes.Equal(buf, payload) {
				t.Errorf("rank %d (root %d) got %q", m.Rank(), root, buf)
			}
		})
	}
}

func TestGatherCollectsInRankOrder(t *testing.T) {
	job(t, 4, func(p *sim.Proc, m *MPI) {
		me := []byte{byte('A' + m.Rank()), byte('0' + m.Rank())}
		all := make([]byte, 8)
		if err := m.CommWorld().Gather(p, me, all, 1); err != nil {
			t.Error(err)
		}
		if m.Rank() == 1 && string(all) != "A0B1C2D3" {
			t.Errorf("gathered %q, want A0B1C2D3", all)
		}
	})
}

func TestAllgather(t *testing.T) {
	job(t, 3, func(p *sim.Proc, m *MPI) {
		me := []byte{byte(10 + m.Rank())}
		all := make([]byte, 3)
		if err := m.CommWorld().Allgather(p, me, all); err != nil {
			t.Error(err)
		}
		for r := 0; r < 3; r++ {
			if all[r] != byte(10+r) {
				t.Errorf("rank %d slot %d = %d", m.Rank(), r, all[r])
			}
		}
	})
}

func TestTruncatedRecvKeepsStatus(t *testing.T) {
	// MPI_ERR_TRUNCATE semantics: the receive completes with an error,
	// but the status still carries the matched source, tag and the
	// delivered (truncated) count.
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.Send(p, []byte("0123456789"), 1, 8); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 4)
			st, err := c.Recv(p, buf, 0, 8)
			if !errors.Is(err, core.ErrTruncated) {
				t.Errorf("err = %v, want ErrTruncated", err)
			}
			if st.Source != 0 || st.Tag != 8 || st.Count != 4 {
				t.Errorf("status %+v, want {Source:0 Tag:8 Count:4} despite the truncation", st)
			}
			if string(buf) != "0123" {
				t.Errorf("payload %q", buf)
			}
		}
	})
}

func TestWaitallMixed(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		peer := 1 - m.Rank()
		var reqs []*Request
		bufs := make([][]byte, 5)
		for i := 0; i < 5; i++ {
			reqs = append(reqs, c.Isend(p, []byte{byte(i)}, peer, i))
			bufs[i] = make([]byte, 1)
			reqs = append(reqs, c.Irecv(p, bufs[i], peer, i))
		}
		if err := Waitall(p, reqs...); err != nil {
			t.Error(err)
		}
		for i, b := range bufs {
			if b[0] != byte(i) {
				t.Errorf("message %d corrupted: %d", i, b[0])
			}
		}
	})
}

func TestFinalize(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		if err := m.Finalize(); err != nil {
			t.Error(err)
		}
	})
}
