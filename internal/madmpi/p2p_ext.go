package madmpi

import (
	"nmad/internal/core"
	"nmad/internal/sim"
)

// Extended point-to-point operations: synchronous sends and probing.

// Issend starts a synchronous-mode send (MPI_Issend): the request
// completes only once the receive has been matched on the other side.
// Above the rendezvous threshold this costs nothing extra (the handshake
// implies the match); below it the receiver returns an ack control entry
// that aggregates with its outbound traffic.
func (c *Comm) Issend(p *sim.Proc, buf []byte, dest, tag int) *Request {
	if err := c.checkPeer(dest); err != nil {
		return failedRequest(c, err)
	}
	if err := checkTag(tag); err != nil {
		return failedRequest(c, err)
	}
	req := c.gate(dest).Issend(p, c.flowTag(tag), buf)
	return newRequest(c, []*core.SendRequest{req}, nil)
}

// Ssend is the blocking form of Issend (MPI_Ssend).
func (c *Comm) Ssend(p *sim.Proc, buf []byte, dest, tag int) error {
	return c.Issend(p, buf, dest, tag).Wait(p)
}

// Iprobe reports, without blocking or consuming, whether a message from
// src matching tag (AnyTag allowed) is waiting. On a hit the returned
// Status carries the source, the matched tag and the payload size
// (MPI_Get_count on MPI_BYTE).
func (c *Comm) Iprobe(p *sim.Proc, src, tag int) (bool, Status, error) {
	if err := c.checkPeer(src); err != nil {
		return false, Status{}, err
	}
	want, mask := c.probePattern(tag)
	ok, matched, size := c.gate(src).Probe(want, mask)
	if !ok {
		return false, Status{}, nil
	}
	return true, Status{Source: src, Tag: userTag(matched), Count: size}, nil
}

// Probe blocks until a matching message is waiting (MPI_Probe).
func (c *Comm) Probe(p *sim.Proc, src, tag int) (Status, error) {
	if err := c.checkPeer(src); err != nil {
		return Status{}, err
	}
	want, mask := c.probePattern(tag)
	matched, size := c.gate(src).ProbeWait(p, want, mask)
	return Status{Source: src, Tag: userTag(matched), Count: size}, nil
}

func (c *Comm) probePattern(tag int) (core.Tag, core.Tag) {
	if tag == AnyTag {
		return c.tagSpace()
	}
	return c.flowTag(tag), ^core.Tag(0)
}
