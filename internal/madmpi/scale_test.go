package madmpi

import (
	"testing"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// lossyJob spawns size ranks over an MX fabric with the given fault
// profile and reliability-enabled engines, and runs body on each rank.
func lossyJob(t *testing.T, size int, fp simnet.FaultProfile, body func(p *sim.Proc, m *MPI)) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, size, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFaults(fp); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Reliability = true
	for i := 0; i < size; i++ {
		m, err := Init(f, simnet.NodeID(i), opts)
		if err != nil {
			t.Fatal(err)
		}
		w.Spawn("rank", func(p *sim.Proc) { body(p, m) })
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func onePercentDrop(seed uint64) simnet.FaultProfile {
	return simnet.FaultProfile{Seed: seed, Rails: []simnet.RailFaults{{DropProb: 0.01}}}
}

// TestScaleBarrier1024Lossy runs the dissemination barrier twice across
// 1024 emulated nodes on a rail dropping 1% of packets. Completion is
// the assertion: a lost or duplicated round message would wedge or
// corrupt the happened-before chain and the run would deadlock.
func TestScaleBarrier1024Lossy(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node emulation skipped in -short mode")
	}
	lossyJob(t, 1024, onePercentDrop(7), func(p *sim.Proc, m *MPI) {
		for round := 0; round < 2; round++ {
			if err := m.CommWorld().Barrier(p); err != nil {
				t.Errorf("rank %d barrier round %d: %v", m.Rank(), round, err)
				return
			}
		}
	})
}

// TestScaleAllgather1024Lossy runs an allgather across 1024 emulated
// nodes at 1% drop and verifies every rank assembled every other rank's
// contribution byte-for-byte — zero lost, truncated or duplicated
// payload deliveries.
func TestScaleAllgather1024Lossy(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node emulation skipped in -short mode")
	}
	const size = 1024
	const per = 8
	lossyJob(t, size, onePercentDrop(13), func(p *sim.Proc, m *MPI) {
		rank := m.Rank()
		me := make([]byte, per)
		for i := range me {
			me[i] = byte(rank>>uint(4*i)) ^ byte(i*31)
		}
		all := make([]byte, size*per)
		if err := m.CommWorld().Allgather(p, me, all); err != nil {
			t.Errorf("rank %d allgather: %v", rank, err)
			return
		}
		for r := 0; r < size; r++ {
			for i := 0; i < per; i++ {
				want := byte(r>>uint(4*i)) ^ byte(i*31)
				if all[r*per+i] != want {
					t.Errorf("rank %d: slot %d byte %d = %#x, want %#x",
						rank, r, i, all[r*per+i], want)
					return
				}
			}
		}
	})
}
