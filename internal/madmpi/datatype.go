package madmpi

import "fmt"

// Derived datatypes (§3.4, §5.3). A datatype describes a memory layout:
// possibly non-contiguous blocks relative to a base address. MAD-MPI does
// not pack: it flattens the layout into segments and posts one engine
// request per segment, letting the scheduler aggregate the small blocks
// (with the rendezvous requests of the large ones) and keep the large
// blocks zero-copy.

// Segment is one contiguous block of a flattened datatype, relative to
// the message base address.
type Segment struct {
	Offset int
	Len    int
}

// Datatype describes a memory layout. Implementations compose: any
// constructor accepts any Datatype as its element type.
type Datatype interface {
	// Size is the number of data bytes in one element of the type.
	Size() int
	// Extent is the memory span of one element: the offset at which a
	// second consecutive element starts.
	Extent() int
	// append adds the segments of one element, placed at base, to out.
	append(base int, out []Segment) []Segment
	// String names the type for diagnostics.
	String() string
}

// Predefined basic types.
var (
	Byte    Datatype = basic{1}
	Int32   Datatype = basic{4}
	Int64   Datatype = basic{8}
	Float64 Datatype = basic{8}
)

type basic struct{ n int }

func (b basic) Size() int   { return b.n }
func (b basic) Extent() int { return b.n }
func (b basic) append(base int, out []Segment) []Segment {
	return append(out, Segment{Offset: base, Len: b.n})
}
func (b basic) String() string { return fmt.Sprintf("basic(%d)", b.n) }

// Contiguous builds count consecutive elements of old (MPI_Type_contiguous).
func Contiguous(count int, old Datatype) Datatype {
	mustPositive("Contiguous count", count)
	return &contiguous{count: count, old: old}
}

type contiguous struct {
	count int
	old   Datatype
}

func (t *contiguous) Size() int   { return t.count * t.old.Size() }
func (t *contiguous) Extent() int { return t.count * t.old.Extent() }
func (t *contiguous) append(base int, out []Segment) []Segment {
	return appendRun(t.old, t.count, base, out)
}
func (t *contiguous) String() string { return fmt.Sprintf("contiguous(%d, %s)", t.count, t.old) }

// Vector builds count blocks of blocklen elements, with a stride given in
// elements of old (MPI_Type_vector).
func Vector(count, blocklen, stride int, old Datatype) Datatype {
	mustPositive("Vector count", count)
	mustPositive("Vector blocklen", blocklen)
	return &hvector{count: count, blocklen: blocklen, strideBytes: stride * old.Extent(), old: old}
}

// Hvector is Vector with the stride in bytes (MPI_Type_hvector).
func Hvector(count, blocklen, strideBytes int, old Datatype) Datatype {
	mustPositive("Hvector count", count)
	mustPositive("Hvector blocklen", blocklen)
	return &hvector{count: count, blocklen: blocklen, strideBytes: strideBytes, old: old}
}

type hvector struct {
	count, blocklen, strideBytes int
	old                          Datatype
}

func (t *hvector) Size() int { return t.count * t.blocklen * t.old.Size() }
func (t *hvector) Extent() int {
	last := (t.count-1)*t.strideBytes + t.blocklen*t.old.Extent()
	if t.strideBytes*t.count > last {
		return t.strideBytes * t.count
	}
	return last
}
func (t *hvector) append(base int, out []Segment) []Segment {
	for i := 0; i < t.count; i++ {
		out = appendRun(t.old, t.blocklen, base+i*t.strideBytes, out)
	}
	return out
}
func (t *hvector) String() string {
	return fmt.Sprintf("hvector(%d x %d, stride %dB, %s)", t.count, t.blocklen, t.strideBytes, t.old)
}

// Indexed builds blocks of varying lengths at varying displacements, both
// in elements of old (MPI_Type_indexed). This is the datatype of the
// paper's Figure 4 experiment.
func Indexed(blocklens, displs []int, old Datatype) Datatype {
	if len(blocklens) != len(displs) {
		panic("madmpi: Indexed blocklens and displs lengths differ")
	}
	bytesLens := make([]int, len(blocklens))
	bytesDispls := make([]int, len(displs))
	for i := range blocklens {
		mustPositive("Indexed blocklen", blocklens[i])
		bytesLens[i] = blocklens[i] * old.Size()
		bytesDispls[i] = displs[i] * old.Extent()
	}
	return &hindexed{lens: bytesLens, displs: bytesDispls, old: old, elems: blocklens}
}

// Hindexed is Indexed with byte displacements (MPI_Type_hindexed).
func Hindexed(blocklens []int, byteDispls []int, old Datatype) Datatype {
	if len(blocklens) != len(byteDispls) {
		panic("madmpi: Hindexed blocklens and displs lengths differ")
	}
	bytesLens := make([]int, len(blocklens))
	for i := range blocklens {
		mustPositive("Hindexed blocklen", blocklens[i])
		bytesLens[i] = blocklens[i] * old.Size()
	}
	return &hindexed{lens: bytesLens, displs: append([]int(nil), byteDispls...), old: old, elems: blocklens}
}

type hindexed struct {
	lens   []int // block lengths in bytes
	displs []int // block displacements in bytes
	elems  []int // block lengths in elements (for per-element walks)
	old    Datatype
}

func (t *hindexed) Size() int {
	n := 0
	for _, l := range t.lens {
		n += l
	}
	return n
}
func (t *hindexed) Extent() int {
	max := 0
	for i := range t.lens {
		end := t.displs[i] + t.elems[i]*t.old.Extent()
		if end > max {
			max = end
		}
	}
	return max
}
func (t *hindexed) append(base int, out []Segment) []Segment {
	for i := range t.lens {
		out = appendRun(t.old, t.elems[i], base+t.displs[i], out)
	}
	return out
}
func (t *hindexed) String() string { return fmt.Sprintf("hindexed(%d blocks, %s)", len(t.lens), t.old) }

// Struct combines heterogeneous types at byte displacements
// (MPI_Type_create_struct).
func Struct(blocklens []int, byteDispls []int, types []Datatype) Datatype {
	if len(blocklens) != len(byteDispls) || len(blocklens) != len(types) {
		panic("madmpi: Struct argument lengths differ")
	}
	for _, b := range blocklens {
		mustPositive("Struct blocklen", b)
	}
	return &structType{
		lens:   append([]int(nil), blocklens...),
		displs: append([]int(nil), byteDispls...),
		types:  append([]Datatype(nil), types...),
	}
}

type structType struct {
	lens   []int
	displs []int
	types  []Datatype
}

func (t *structType) Size() int {
	n := 0
	for i := range t.types {
		n += t.lens[i] * t.types[i].Size()
	}
	return n
}
func (t *structType) Extent() int {
	max := 0
	for i := range t.types {
		end := t.displs[i] + t.lens[i]*t.types[i].Extent()
		if end > max {
			max = end
		}
	}
	return max
}
func (t *structType) append(base int, out []Segment) []Segment {
	for i := range t.types {
		out = appendRun(t.types[i], t.lens[i], base+t.displs[i], out)
	}
	return out
}
func (t *structType) String() string { return fmt.Sprintf("struct(%d fields)", len(t.types)) }

// Resized overrides a datatype's extent (MPI_Type_create_resized),
// controlling where consecutive elements start — e.g. to leave gaps
// between the elements of an indexed type.
func Resized(old Datatype, extent int) Datatype {
	if extent < old.Extent() {
		panic(fmt.Sprintf("madmpi: Resized extent %d below the natural extent %d", extent, old.Extent()))
	}
	return &resized{old: old, extent: extent}
}

type resized struct {
	old    Datatype
	extent int
}

func (t *resized) Size() int   { return t.old.Size() }
func (t *resized) Extent() int { return t.extent }
func (t *resized) append(base int, out []Segment) []Segment {
	return t.old.append(base, out)
}
func (t *resized) String() string { return fmt.Sprintf("resized(%d, %s)", t.extent, t.old) }

// appendRun appends count consecutive elements of t starting at base.
// Dense types — whose elements tile their extent with no holes — take the
// fast path: one segment for the whole run, however many bytes it spans
// (the walk stays proportional to the number of *blocks*, not bytes).
func appendRun(t Datatype, count, base int, out []Segment) []Segment {
	if t.Size() == t.Extent() {
		return append(out, Segment{Offset: base, Len: count * t.Size()})
	}
	for i := 0; i < count; i++ {
		out = t.append(base+i*t.Extent(), out)
	}
	return out
}

// Flatten expands count elements of a datatype into contiguous segments,
// coalescing adjacent blocks (so Contiguous(n, Byte) flattens to a single
// segment, like MPICH's dataloop optimizer would).
func Flatten(t Datatype, count int) []Segment {
	raw := appendRun(t, count, 0, nil)
	if len(raw) == 0 {
		return nil
	}
	out := raw[:1]
	for _, s := range raw[1:] {
		last := &out[len(out)-1]
		if s.Offset == last.Offset+last.Len {
			last.Len += s.Len
			continue
		}
		out = append(out, s)
	}
	return out
}

func mustPositive(what string, v int) {
	if v <= 0 {
		panic(fmt.Sprintf("madmpi: %s must be positive, got %d", what, v))
	}
}
