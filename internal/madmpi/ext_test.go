package madmpi

import (
	"math"
	"testing"

	"nmad/internal/sim"
)

func TestSsendSynchronizes(t *testing.T) {
	var sendDone, recvAt sim.Time
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.Ssend(p, []byte("sync payload"), 1, 3); err != nil {
				t.Error(err)
			}
			sendDone = p.Now()
		} else {
			p.Sleep(250 * sim.Microsecond)
			recvAt = p.Now()
			if _, err := c.Recv(p, make([]byte, 16), 0, 3); err != nil {
				t.Error(err)
			}
		}
	})
	if sendDone <= recvAt {
		t.Errorf("Ssend finished at %v, before the receive was posted at %v", sendDone, recvAt)
	}
}

func TestIssendTestTransitions(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			req := c.Issend(p, []byte("x"), 1, 0)
			p.Sleep(100 * sim.Microsecond)
			if req.Test() {
				t.Error("Issend complete before any receive was posted")
			}
			if err := req.Wait(p); err != nil {
				t.Error(err)
			}
		} else {
			p.Sleep(200 * sim.Microsecond)
			if _, err := c.Recv(p, make([]byte, 4), 0, 0); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestProbeAndIprobe(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			if err := c.Send(p, []byte("probe-target"), 1, 17); err != nil {
				t.Error(err)
			}
		} else {
			ok, _, err := c.Iprobe(p, 0, 17)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Error("Iprobe hit before arrival (virtual time has not advanced)")
			}
			st, err := c.Probe(p, 0, AnyTag)
			if err != nil {
				t.Fatal(err)
			}
			if st.Tag != 17 || st.Count != len("probe-target") || st.Source != 0 {
				t.Errorf("Probe status %+v", st)
			}
			ok, st2, err := c.Iprobe(p, 0, 17)
			if err != nil || !ok || st2.Count != st.Count {
				t.Errorf("Iprobe after Probe: %v %+v %v", ok, st2, err)
			}
			// Probe must not consume.
			if _, err := c.Recv(p, make([]byte, 32), 0, 17); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestReduceSum(t *testing.T) {
	const n = 5
	job(t, n, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		vec := []float64{float64(m.Rank()), 1, float64(m.Rank() * m.Rank())}
		out := make([]float64, len(vec))
		if err := c.Reduce(p, vec, out, OpSum, 2); err != nil {
			t.Error(err)
		}
		if m.Rank() == 2 {
			want := []float64{0 + 1 + 2 + 3 + 4, n, 0 + 1 + 4 + 9 + 16}
			for i := range want {
				if out[i] != want[i] {
					t.Errorf("reduce[%d] = %g, want %g", i, out[i], want[i])
				}
			}
		}
	})
}

func TestAllreduceMaxMinProd(t *testing.T) {
	job(t, 4, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		me := float64(m.Rank() + 1)
		out := make([]float64, 1)
		if err := c.Allreduce(p, []float64{me}, out, OpMax); err != nil {
			t.Error(err)
		}
		if out[0] != 4 {
			t.Errorf("allreduce max = %g on rank %d", out[0], m.Rank())
		}
		if err := c.Allreduce(p, []float64{me}, out, OpMin); err != nil {
			t.Error(err)
		}
		if out[0] != 1 {
			t.Errorf("allreduce min = %g", out[0])
		}
		if err := c.Allreduce(p, []float64{me}, out, OpProd); err != nil {
			t.Error(err)
		}
		if out[0] != 24 {
			t.Errorf("allreduce prod = %g, want 4!", out[0])
		}
	})
}

func TestAllreduceNonPowerOfTwo(t *testing.T) {
	job(t, 3, func(p *sim.Proc, m *MPI) {
		out := make([]float64, 2)
		in := []float64{1, float64(m.Rank())}
		if err := m.CommWorld().Allreduce(p, in, out, OpSum); err != nil {
			t.Error(err)
		}
		if out[0] != 3 || out[1] != 3 {
			t.Errorf("rank %d allreduce = %v, want [3 3]", m.Rank(), out)
		}
	})
}

func TestScatter(t *testing.T) {
	job(t, 4, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		var send []byte
		if m.Rank() == 1 {
			send = []byte("AABBCCDD")
		}
		recv := make([]byte, 2)
		if err := c.Scatter(p, send, recv, 1); err != nil {
			t.Error(err)
		}
		want := string([]byte{byte('A' + m.Rank()), byte('A' + m.Rank())})
		if string(recv) != want {
			t.Errorf("rank %d scattered %q, want %q", m.Rank(), recv, want)
		}
	})
}

func TestAlltoall(t *testing.T) {
	const n = 4
	job(t, n, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		send := make([]byte, n)
		for i := range send {
			send[i] = byte(10*m.Rank() + i) // slice i goes to rank i
		}
		recv := make([]byte, n)
		if err := c.Alltoall(p, send, recv); err != nil {
			t.Error(err)
		}
		for r := 0; r < n; r++ {
			if recv[r] != byte(10*r+m.Rank()) {
				t.Errorf("rank %d slot %d = %d, want %d", m.Rank(), r, recv[r], 10*r+m.Rank())
			}
		}
	})
}

func TestAlltoallValidation(t *testing.T) {
	job(t, 3, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if err := c.Alltoall(p, make([]byte, 4), make([]byte, 4)); err == nil {
			t.Error("non-divisible buffer must fail")
		}
		if err := c.Barrier(p); err != nil {
			t.Error(err)
		}
	})
}

func TestReduceValidatesRoot(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		if err := m.CommWorld().Reduce(p, []float64{1}, make([]float64, 1), OpSum, 9); err == nil {
			t.Error("bad root must fail")
		}
	})
}

func TestWaitany(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		c := m.CommWorld()
		if m.Rank() == 0 {
			// The message for tag 1 goes out much later than tag 0's.
			if err := c.Send(p, []byte("first"), 1, 0); err != nil {
				t.Error(err)
			}
			p.Sleep(200 * sim.Microsecond)
			if err := c.Send(p, []byte("second"), 1, 1); err != nil {
				t.Error(err)
			}
		} else {
			slow := c.Irecv(p, make([]byte, 8), 0, 1)
			fast := c.Irecv(p, make([]byte, 8), 0, 0)
			idx, st, err := Waitany(p, slow, fast)
			if err != nil {
				t.Fatal(err)
			}
			if idx != 1 || st.Tag != 0 {
				t.Errorf("Waitany picked request %d (tag %d), want the early one", idx, st.Tag)
			}
			if _, _, err := Waitany(p, slow); err != nil {
				t.Error(err)
			}
		}
	})
}

func TestWaitanyNoRequests(t *testing.T) {
	job(t, 2, func(p *sim.Proc, m *MPI) {
		if _, _, err := Waitany(p); err == nil {
			t.Error("Waitany() with no requests must fail")
		}
	})
}

func TestOpsAreSane(t *testing.T) {
	if OpSum(2, 3) != 5 || OpProd(2, 3) != 6 {
		t.Error("sum/prod wrong")
	}
	if OpMax(2, 3) != 3 || OpMin(2, 3) != 2 {
		t.Error("max/min wrong")
	}
	if !math.IsInf(OpMax(math.Inf(1), 0), 1) {
		t.Error("max must propagate infinities like math.Max")
	}
}
