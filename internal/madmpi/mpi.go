// Package madmpi is MAD-MPI: the paper's "simple, straightforward
// proof-of-concept implementation of a subset of the MPI API" on top of
// the NewMadeleine engine (§3.4). The four point-to-point nonblocking
// posting (Isend, Irecv) and completion (Wait, Test) operations map
// directly onto the equivalent engine operations; completion itself is
// the engine's unified core.Request layer (Request is a
// core.RequestGroup); communicators multiplex onto engine flow tags;
// derived datatypes flatten onto the engine's vector (iovec) path, so a
// non-contiguous layout travels as one multi-segment wrapper the
// scheduling strategies aggregate natively (§5.3).
package madmpi

import (
	"errors"
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// MPI is one rank's MPI environment. Every node of a job creates its own
// over the shared fabric (ranks are node ids).
type MPI struct {
	eng   *core.Engine
	rank  int
	size  int
	world *Comm

	nextCommID uint32

	// Collective algorithm configuration: pinned algorithms per kind
	// (empty = automatic selection) and the pipelining segment size.
	collForce map[CollKind]string
	collSeg   int
}

// Init creates the MPI environment of one rank. opts selects the engine
// personality — DefaultOptions gives the paper's MAD-MPI configuration.
func Init(f *simnet.Fabric, node simnet.NodeID, opts core.Options) (*MPI, error) {
	eng, err := core.New(f, node, opts)
	if err != nil {
		return nil, err
	}
	if err := eng.AttachFabric(f); err != nil {
		return nil, err
	}
	m := &MPI{eng: eng, rank: int(node), size: f.Nodes(), nextCommID: 1}
	m.world = &Comm{mpi: m, id: m.nextCommID}
	return m, nil
}

// InitWithEngine wraps an already-configured engine (used by benchmarks
// that attach custom rails).
func InitWithEngine(eng *core.Engine, size int) *MPI {
	m := &MPI{eng: eng, rank: int(eng.NodeID()), size: size, nextCommID: 1}
	m.world = &Comm{mpi: m, id: m.nextCommID}
	return m
}

// Rank returns this process's rank in COMM_WORLD.
func (m *MPI) Rank() int { return m.rank }

// Size returns the number of ranks in COMM_WORLD.
func (m *MPI) Size() int { return m.size }

// CommWorld returns the predefined world communicator.
func (m *MPI) CommWorld() *Comm { return m.world }

// Engine exposes the underlying NewMadeleine engine (for stats and
// strategy inspection).
func (m *MPI) Engine() *core.Engine { return m.eng }

// Finalize shuts the engine down.
func (m *MPI) Finalize() error { return m.eng.Close() }

// Errors.
var (
	ErrSelfMessage = errors.New("madmpi: self sends are not supported (design collectives around them)")
	ErrBadRank     = errors.New("madmpi: rank out of range")
)

// AnyTag matches any tag of the communicator (MPI_ANY_TAG).
const AnyTag = -1

// maxUserTag bounds user tags: the communicator id lives in the upper 32
// bits of the engine flow tag.
const maxUserTag = 1<<31 - 1

// Comm is an MPI communicator: an isolated tag space over the same ranks.
// The engine deliberately optimizes *across* communicators — the paper's
// Figure 3 experiment uses one communicator per segment precisely to show
// that the optimization scope is global.
type Comm struct {
	mpi *MPI
	id  uint32
	// collSeq numbers this communicator's collectives; ranks agree on it
	// because collectives are called in the same order everywhere. It
	// feeds the epoch-extended collective tag lane (see collsched.go).
	collSeq uint64
}

// Dup returns a new communicator with an isolated tag space. Like the
// real MPI_Comm_dup it must be called collectively in the same order on
// every rank so ids agree.
func (c *Comm) Dup() *Comm {
	c.mpi.nextCommID++
	return &Comm{mpi: c.mpi, id: c.mpi.nextCommID}
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.mpi.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.mpi.size }

// ID returns the communicator's numeric id (diagnostics).
func (c *Comm) ID() uint32 { return c.id }

// flowTag folds (communicator, user tag) into an engine flow tag.
func (c *Comm) flowTag(tag int) core.Tag {
	return core.Tag(c.id)<<32 | core.Tag(uint32(tag))
}

// tagSpace returns the (want, mask) pair matching the whole communicator
// (for AnyTag receives).
func (c *Comm) tagSpace() (core.Tag, core.Tag) {
	return core.Tag(c.id) << 32, core.Tag(0xFFFFFFFF) << 32
}

// userTag recovers the user tag from a matched engine flow tag.
func userTag(flow core.Tag) int { return int(uint32(flow)) }

// checkPeer validates a peer rank.
func (c *Comm) checkPeer(peer int) error {
	if peer < 0 || peer >= c.mpi.size {
		return fmt.Errorf("%w: %d of %d", ErrBadRank, peer, c.mpi.size)
	}
	if peer == c.mpi.rank {
		return ErrSelfMessage
	}
	return nil
}

// checkTag validates a user tag for sending.
func checkTag(tag int) error {
	if tag < 0 || tag > maxUserTag {
		return fmt.Errorf("madmpi: tag %d out of range [0, %d]", tag, maxUserTag)
	}
	return nil
}

// gate resolves the engine gate for a peer rank.
func (c *Comm) gate(peer int) *core.Gate {
	return c.mpi.eng.Gate(simnet.NodeID(peer))
}

// Status describes a completed receive, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Request is a nonblocking operation handle. It is a core.RequestGroup
// (so it satisfies the engine's unified core.Request interface — the MPI
// layer no longer reimplements completion) plus the status bookkeeping
// MPI semantics need. Typed (derived-datatype) operations fan their
// engine requests into the same group.
type Request struct {
	*core.RequestGroup
	comm  *Comm
	recvs []*core.RecvRequest // receive legs, for status extraction
}

// Request is used by core.WaitAll/WaitAny through the unified interface.
var _ core.Request = (*Request)(nil)

// newRequest bundles engine legs under one MPI handle.
func newRequest(c *Comm, sends []*core.SendRequest, recvs []*core.RecvRequest) *Request {
	g := core.NewRequestGroup()
	for _, s := range sends {
		g.Add(s)
	}
	for _, r := range recvs {
		g.Add(r)
	}
	return &Request{RequestGroup: g, comm: c, recvs: recvs}
}

// failedRequest wraps an immediate validation error so Wait/Test report
// it.
func failedRequest(c *Comm, err error) *Request {
	return &Request{RequestGroup: core.FailedRequest(err), comm: c}
}

// Status returns the receive status (zero-valued Source/Tag of -1 for
// pure sends). Valid once the request is Done.
func (r *Request) Status() Status {
	st := Status{Source: -1, Tag: -1}
	for i, rr := range r.recvs {
		st.Count += rr.N()
		if i == 0 {
			st.Source = int(rr.Source())
			st.Tag = userTag(rr.Tag())
		}
	}
	return st
}

// WaitStatus blocks until completion and returns the receive status
// (zero for pure sends) — the MPI_Wait(&status) form; Wait (from the
// unified request interface) is the status-less form. Like MPI_Wait on
// MPI_ERR_TRUNCATE, the status is populated even when the operation
// completes with an error (the truncated count, the matched source and
// tag).
func (r *Request) WaitStatus(p *sim.Proc) (Status, error) {
	err := r.Wait(p)
	return r.Status(), err
}

// Waitall completes every request, returning the first error
// (MPI_Waitall over the engine's unified WaitAll).
func Waitall(p *sim.Proc, reqs ...*Request) error {
	return core.WaitAll(p, asCoreRequests(reqs)...)
}

// Waitany blocks until at least one of the requests has completed and
// returns its index and status (MPI_Waitany over the engine's unified
// WaitAny). Completed requests passed again return immediately.
func Waitany(p *sim.Proc, reqs ...*Request) (int, Status, error) {
	idx, err := core.WaitAny(p, asCoreRequests(reqs)...)
	if idx < 0 {
		if errors.Is(err, core.ErrNoRequests) {
			err = errors.New("madmpi: Waitany with no requests")
		}
		return idx, Status{}, err
	}
	return idx, reqs[idx].Status(), err
}

func asCoreRequests(reqs []*Request) []core.Request {
	out := make([]core.Request, len(reqs))
	for i, r := range reqs {
		out[i] = r
	}
	return out
}
