package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// The scenario schema: a declarative description of one cluster workload
// experiment. A file has up to seven top-level sections —
//
//	name:        incast-burst            # required, unique in a corpus
//	description: what this scenario shows
//	cluster:     the machine and the engine personality
//	tenants:     multi-tenant job-queue tenants (weight + priority class)
//	queue:       job-queue sizing (node, capacity, workers, aging)
//	phases:      the workload timeline (what traffic, when)
//	events:      mid-run interventions (degrade a rail, slow a node, ...)
//	assertions:  what must hold, at named checkpoints or at the end
//
// See doc.go for the full field reference and a worked example.

// Scenario is one parsed scenario file.
type Scenario struct {
	Name        string
	Description string
	Cluster     ClusterSpec
	Tenants     []TenantSpec
	Queue       *QueueSpec
	Phases      []PhaseSpec
	Events      []EventSpec
	Assertions  []AssertSpec
}

// TenantSpec declares one tenant of the multi-tenant job queue. When a
// scenario declares tenants, phases tagged with a tenant are submitted
// as queue jobs instead of starting unconditionally at their instant:
// the queue's fair-share dispatch decides when each runs.
type TenantSpec struct {
	// Name is the tenant id phases reference. Weight is the fair-share
	// weight (>= 1); Class one of bulk, normal, latency.
	Name   string
	Weight int
	Class  string
}

// QueueSpec sizes the job queue and places it on a node. Zero fields
// keep the queue package defaults.
type QueueSpec struct {
	Node     int
	Capacity int
	Workers  int
	Aging    sim.Time
}

// ClusterSpec declares the machine and the per-node engine personality.
type ClusterSpec struct {
	// Nodes is the fabric size (>= 2).
	Nodes int
	// Rails names the network profiles, in rail order (default: one
	// mx10g rail). Names resolve through simnet.ProfileByName.
	Rails []string
	// MemcpyBW overrides the host memcpy bandwidth in bytes/s (0 keeps
	// the paper's default host).
	MemcpyBW float64
	// Engine is the personality every node runs with.
	Engine EngineSpec
	// Faults, when non-nil, makes the fabric lossy from time zero.
	Faults *FaultSpec
}

// EngineSpec mirrors the core engine options a scenario can set.
type EngineSpec struct {
	Strategy          string
	Credits           int
	MaxGrants         int
	Reliability       bool
	RetransmitTimeout sim.Time
	RetransmitBudget  int
	ProbeBudget       int
	Anticipate        bool
	FlushBacklog      int
	BodyChunk         int
}

// FaultSpec is the declarative form of simnet.FaultProfile.
type FaultSpec struct {
	Seed  uint64
	Rails []RailFaultSpec
}

// RailFaultSpec is one rail's fault configuration.
type RailFaultSpec struct {
	Drop    float64
	Dup     float64
	Reorder float64
	Outages []OutageSpec
}

// OutageSpec is one scheduled rail death window.
type OutageSpec struct {
	At       sim.Time
	Duration sim.Time
}

// toRailFaults converts to the simnet form.
func (r RailFaultSpec) toRailFaults() simnet.RailFaults {
	rf := simnet.RailFaults{DropProb: r.Drop, DupProb: r.Dup, ReorderProb: r.Reorder}
	for _, o := range r.Outages {
		rf.Outages = append(rf.Outages, simnet.Outage{At: o.At, Duration: o.Duration})
	}
	return rf
}

// Phase kinds the harness implements.
const (
	PhasePingPong  = "pingpong"
	PhaseRing      = "ring"
	PhaseIncast    = "incast"
	PhaseComposite = "composite"
	PhaseBarrier   = "barrier"
	PhaseBcast     = "bcast"
	PhaseAllgather = "allgather"
	PhaseAllreduce = "allreduce"
	PhaseAlltoall  = "alltoall"
)

// PhaseSpec is one workload phase on the timeline. Phases are declared
// in strictly increasing start-time order; a phase's traffic may still
// overlap the next phase in flight (a phase only pins when its
// processes START), which is exactly how bursty multi-phase scenarios
// are built.
type PhaseSpec struct {
	// Name labels the phase for assertions and the report (default
	// "phase<N>"). Kind selects the workload; At its start instant.
	Name string
	Kind string
	At   sim.Time
	// Tenant tags the phase's traffic in the report, and — when the
	// scenario declares a tenants block — submits the phase to the job
	// queue at its instant instead of starting it unconditionally: the
	// phase then runs when the queue's fair-share dispatch grants its
	// tenant a worker. Empty is fine (the phase starts at At as usual).
	Tenant string
	// Nodes are the participants: the [a, b] pair of a pingpong or
	// composite, the ring members in ring order, empty = every node
	// (collectives always span every node).
	Nodes []int
	// Target is the incast sink; Senders its sources (empty = every
	// other node).
	Target  int
	Senders []int
	// Msgs x Size parameterize the p2p phases; Count is the pingpong /
	// barrier / ring iteration count; Root the bcast root.
	Msgs  int
	Size  int
	Count int
	Root  int
	// DrainGap stalls the incast sink between consecutive receives of
	// one flow (the "slow receiver" that builds overload).
	DrainGap sim.Time
	// Priority sends the composite phase's control message with the
	// priority flag.
	Priority bool

	index int // position in Scenario.Phases, set by Parse
}

// Event actions the harness implements.
const (
	ActionDegradeRail    = "degrade_rail"
	ActionRestoreRail    = "restore_rail"
	ActionSetFaults      = "set_faults"
	ActionRailOutage     = "rail_outage"
	ActionSlowNode       = "slow_node"
	ActionRestoreNode    = "restore_node"
	ActionSqueezeCredits = "squeeze_credits"
	ActionCheckpoint     = "checkpoint"
)

// EventSpec is one mid-run intervention (or a named checkpoint snapshot).
type EventSpec struct {
	At     sim.Time
	Action string
	// Name names a checkpoint (ActionCheckpoint only).
	Name string
	// Rail targets the rail actions; Scale is the degrade factor in
	// (0, 1]; Drop/Dup/Reorder the new probabilities of set_faults.
	Rail    int
	Scale   float64
	Drop    float64
	Dup     float64
	Reorder float64
	// Node targets the host actions; Factor is the slowdown (>= 1).
	Node   int
	Factor float64
	// Duration bounds rail_outage and squeeze_credits.
	Duration sim.Time
}

// Assertion types the harness implements.
const (
	AssertStats      = "stats"
	AssertFaults     = "faults"
	AssertCompletion = "completion"
	AssertIntegrity  = "integrity"
	AssertPhaseOrder = "phase_order"
)

// AssertSpec is one assertion, evaluated at a named checkpoint or at
// the end of the run (the default).
type AssertSpec struct {
	Type string
	// At anchors the assertion: "" / "end", or a checkpoint name.
	At string
	// Node selects engines for stats assertions: a node id ("3"), or
	// one of "sum", "max", "all" (all = the predicate must hold on
	// every node). Rail likewise for fault assertions ("sum" allowed).
	Node string
	Rail string
	// Field / Op / Value form the predicate: Field names a core.Stats
	// or simnet.FaultStats counter, Op is one of < <= > >= == !=.
	Field string
	Op    string
	Value float64
	// Phase / Max / Min bound a completion assertion (Phase "" bounds
	// the whole run).
	Phase string
	Max   sim.Time
	Min   sim.Time
	// Before / After order two phases: before must complete no later
	// than after completes, and both must complete.
	Before string
	After  string
}

// label renders an assertion compactly for reports.
func (a AssertSpec) label() string {
	switch a.Type {
	case AssertStats:
		return fmt.Sprintf("stats[%s] %s %s %v", a.Node, a.Field, a.Op, a.Value)
	case AssertFaults:
		return fmt.Sprintf("faults[%s] %s %s %v", a.Rail, a.Field, a.Op, a.Value)
	case AssertCompletion:
		who := a.Phase
		if who == "" {
			who = "run"
		}
		s := "completion " + who
		if a.Min > 0 {
			s += fmt.Sprintf(" >= %v", a.Min)
		}
		if a.Max > 0 {
			s += fmt.Sprintf(" <= %v", a.Max)
		}
		return s
	case AssertIntegrity:
		return "integrity"
	case AssertPhaseOrder:
		return fmt.Sprintf("order %s -> %s", a.Before, a.After)
	}
	return a.Type
}

// Parse decodes one scenario document. The returned error wraps
// ErrSyntax or ErrSchema; semantic checks (targets, overlaps,
// checkpoints) live in Validate, which Load runs as well.
func Parse(src []byte) (*Scenario, error) {
	tree, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	root, ok := tree.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%w: top level must be a mapping", ErrSchema)
	}
	d := &decoder{}
	sc := &Scenario{}
	d.strictKeys("", root, "name", "description", "cluster", "tenants", "queue", "phases", "events", "assertions")
	sc.Name = d.str(root, "name", "")
	sc.Description = d.str(root, "description", "")
	sc.Cluster = d.cluster(d.child(root, "cluster"))
	for i, item := range d.list(root, "tenants") {
		path := fmt.Sprintf("tenants[%d]", i)
		m, ok := item.(map[string]any)
		if !ok {
			d.failf(ErrSchema, "%s: expected a mapping", path)
			continue
		}
		d.strictKeys(path, m, "name", "weight", "class")
		sc.Tenants = append(sc.Tenants, TenantSpec{
			Name:   d.str(m, "name", ""),
			Weight: d.integer(m, "weight", 1),
			Class:  d.str(m, "class", "normal"),
		})
	}
	if qm := d.child(root, "queue"); qm != nil {
		d.strictKeys("queue", qm, "node", "capacity", "workers", "aging")
		sc.Queue = &QueueSpec{
			Node:     d.integer(qm, "node", 0),
			Capacity: d.integer(qm, "capacity", 0),
			Workers:  d.integer(qm, "workers", 0),
			Aging:    d.duration(qm, "aging", 0),
		}
	}
	for i, item := range d.list(root, "phases") {
		p := d.phase(fmt.Sprintf("phases[%d]", i), item)
		p.index = i
		if p.Name == "" {
			p.Name = fmt.Sprintf("phase%d", i)
		}
		sc.Phases = append(sc.Phases, p)
	}
	for i, item := range d.list(root, "events") {
		sc.Events = append(sc.Events, d.event(fmt.Sprintf("events[%d]", i), item))
	}
	for i, item := range d.list(root, "assertions") {
		sc.Assertions = append(sc.Assertions, d.assert(fmt.Sprintf("assertions[%d]", i), item))
	}
	if d.err != nil {
		return nil, d.err
	}
	if sc.Name == "" {
		return nil, fmt.Errorf("%w: missing required field \"name\"", ErrSchema)
	}
	return sc, nil
}

// decoder walks the generic tree with dotted-path error context. The
// first error wins; subsequent lookups keep running so a single Parse
// call never dereferences nil unexpectedly.
type decoder struct {
	err error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) failf(base error, format string, args ...any) {
	d.fail(fmt.Errorf("%w: %s", base, fmt.Sprintf(format, args...)))
}

// strictKeys rejects unknown fields — a typo'd key must not silently
// deconfigure a scenario.
func (d *decoder) strictKeys(path string, m map[string]any, allowed ...string) {
	ok := make(map[string]bool, len(allowed))
	for _, k := range allowed {
		ok[k] = true
	}
	// Sorted so the reported unknown field is the same on every run.
	for _, k := range sortedKeys(m) {
		if !ok[k] {
			at := path
			if at == "" {
				at = "top level"
			}
			d.failf(ErrSchema, "%s: unknown field %q (known: %s)", at, k, strings.Join(allowed, ", "))
			return
		}
	}
}

func (d *decoder) child(m map[string]any, key string) map[string]any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	mm, ok := v.(map[string]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a mapping", key)
		return nil
	}
	return mm
}

func (d *decoder) list(m map[string]any, key string) []any {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a sequence", key)
		return nil
	}
	return l
}

func (d *decoder) str(m map[string]any, key, def string) string {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.failf(ErrSchema, "%s: expected a string, got %T", key, v)
		return def
	}
	return s
}

func (d *decoder) boolean(m map[string]any, key string) bool {
	v, ok := m[key]
	if !ok || v == nil {
		return false
	}
	b, ok := v.(bool)
	if !ok {
		d.failf(ErrSchema, "%s: expected true/false, got %v", key, v)
		return false
	}
	return b
}

func (d *decoder) integer(m map[string]any, key string, def int) int {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	n, ok := v.(int64)
	if !ok {
		d.failf(ErrSchema, "%s: expected an integer, got %v", key, v)
		return def
	}
	return int(n)
}

func (d *decoder) float(m map[string]any, key string, def float64) float64 {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	}
	d.failf(ErrSchema, "%s: expected a number, got %v", key, v)
	return def
}

func (d *decoder) ints(m map[string]any, key string) []int {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a sequence of integers", key)
		return nil
	}
	out := make([]int, 0, len(l))
	for i, item := range l {
		n, ok := item.(int64)
		if !ok {
			d.failf(ErrSchema, "%s[%d]: expected an integer, got %v", key, i, item)
			return nil
		}
		out = append(out, int(n))
	}
	return out
}

func (d *decoder) strs(m map[string]any, key string) []string {
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a sequence of strings", key)
		return nil
	}
	out := make([]string, 0, len(l))
	for i, item := range l {
		s, ok := item.(string)
		if !ok {
			d.failf(ErrSchema, "%s[%d]: expected a string, got %v", key, i, item)
			return nil
		}
		out = append(out, s)
	}
	return out
}

// duration parses a "<number><unit>" virtual-time scalar (ns, us, µs,
// ms, s). Plain numbers are rejected: a bare "100" is ambiguous and has
// bitten every timeline format that allowed it.
func (d *decoder) duration(m map[string]any, key string, def sim.Time) sim.Time {
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.failf(ErrSchema, "%s: expected a duration string like \"250us\", got %v", key, v)
		return def
	}
	t, err := ParseTime(s)
	if err != nil {
		d.failf(ErrSchema, "%s: %v", key, err)
		return def
	}
	return t
}

// ParseTime parses a virtual-time scalar: a decimal number immediately
// followed by one of ns, us, µs, ms, s.
func ParseTime(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		mult   sim.Time
	}{
		{"ns", sim.Nanosecond},
		{"µs", sim.Microsecond},
		{"us", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"s", sim.Second},
	}
	for _, u := range units {
		num, found := strings.CutSuffix(s, u.suffix)
		if !found || num == "" {
			continue
		}
		f, err := strconv.ParseFloat(num, 64)
		if err != nil || f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		return sim.Time(math.Round(f * float64(u.mult))), nil
	}
	return 0, fmt.Errorf("bad duration %q (want <number><ns|us|ms|s>)", s)
}

func (d *decoder) cluster(m map[string]any) ClusterSpec {
	c := ClusterSpec{Nodes: 2, Rails: []string{"mx10g"}}
	if m == nil {
		return c
	}
	d.strictKeys("cluster", m, "nodes", "rails", "host", "engine", "faults")
	c.Nodes = d.integer(m, "nodes", 2)
	if rails := d.strs(m, "rails"); len(rails) > 0 {
		c.Rails = rails
	}
	if host := d.child(m, "host"); host != nil {
		d.strictKeys("cluster.host", host, "memcpy_bw")
		c.MemcpyBW = d.float(host, "memcpy_bw", 0)
	}
	if eng := d.child(m, "engine"); eng != nil {
		d.strictKeys("cluster.engine", eng,
			"strategy", "credits", "max_grants", "reliability",
			"retransmit_timeout", "retransmit_budget", "probe_budget",
			"anticipate", "flush_backlog", "body_chunk")
		c.Engine = EngineSpec{
			Strategy:          d.str(eng, "strategy", ""),
			Credits:           d.integer(eng, "credits", 0),
			MaxGrants:         d.integer(eng, "max_grants", 0),
			Reliability:       d.boolean(eng, "reliability"),
			RetransmitTimeout: d.duration(eng, "retransmit_timeout", 0),
			RetransmitBudget:  d.integer(eng, "retransmit_budget", 0),
			ProbeBudget:       d.integer(eng, "probe_budget", 0),
			Anticipate:        d.boolean(eng, "anticipate"),
			FlushBacklog:      d.integer(eng, "flush_backlog", 0),
			BodyChunk:         d.integer(eng, "body_chunk", 0),
		}
	}
	if fl := d.child(m, "faults"); fl != nil {
		d.strictKeys("cluster.faults", fl, "seed", "rails")
		fs := &FaultSpec{Seed: uint64(d.integer(fl, "seed", 0))}
		for i, item := range d.list(fl, "rails") {
			path := fmt.Sprintf("cluster.faults.rails[%d]", i)
			rm, ok := item.(map[string]any)
			if !ok {
				d.failf(ErrSchema, "%s: expected a mapping", path)
				continue
			}
			d.strictKeys(path, rm, "drop", "dup", "reorder", "outages")
			rf := RailFaultSpec{
				Drop:    d.float(rm, "drop", 0),
				Dup:     d.float(rm, "dup", 0),
				Reorder: d.float(rm, "reorder", 0),
			}
			for j, o := range d.list(rm, "outages") {
				opath := fmt.Sprintf("%s.outages[%d]", path, j)
				om, ok := o.(map[string]any)
				if !ok {
					d.failf(ErrSchema, "%s: expected a mapping", opath)
					continue
				}
				d.strictKeys(opath, om, "at", "duration")
				rf.Outages = append(rf.Outages, OutageSpec{
					At:       d.duration(om, "at", 0),
					Duration: d.duration(om, "duration", 0),
				})
			}
			fs.Rails = append(fs.Rails, rf)
		}
		c.Faults = fs
	}
	return c
}

func (d *decoder) phase(path string, item any) PhaseSpec {
	m, ok := item.(map[string]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a mapping", path)
		return PhaseSpec{}
	}
	d.strictKeys(path, m,
		"name", "kind", "at", "tenant", "nodes", "target", "senders",
		"msgs", "size", "count", "root", "drain_gap", "priority")
	return PhaseSpec{
		Name:     d.str(m, "name", ""),
		Kind:     d.str(m, "kind", ""),
		At:       d.duration(m, "at", 0),
		Tenant:   d.str(m, "tenant", ""),
		Nodes:    d.ints(m, "nodes"),
		Target:   d.integer(m, "target", 0),
		Senders:  d.ints(m, "senders"),
		Msgs:     d.integer(m, "msgs", 1),
		Size:     d.integer(m, "size", 0),
		Count:    d.integer(m, "count", 1),
		Root:     d.integer(m, "root", 0),
		DrainGap: d.duration(m, "drain_gap", 0),
		Priority: d.boolean(m, "priority"),
	}
}

func (d *decoder) event(path string, item any) EventSpec {
	m, ok := item.(map[string]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a mapping", path)
		return EventSpec{}
	}
	d.strictKeys(path, m,
		"at", "action", "name", "rail", "scale", "drop", "dup", "reorder",
		"node", "factor", "duration")
	return EventSpec{
		At:       d.duration(m, "at", 0),
		Action:   d.str(m, "action", ""),
		Name:     d.str(m, "name", ""),
		Rail:     d.integer(m, "rail", 0),
		Scale:    d.float(m, "scale", 0),
		Drop:     d.float(m, "drop", 0),
		Dup:      d.float(m, "dup", 0),
		Reorder:  d.float(m, "reorder", 0),
		Node:     d.integer(m, "node", 0),
		Factor:   d.float(m, "factor", 0),
		Duration: d.duration(m, "duration", 0),
	}
}

func (d *decoder) assert(path string, item any) AssertSpec {
	m, ok := item.(map[string]any)
	if !ok {
		d.failf(ErrSchema, "%s: expected a mapping", path)
		return AssertSpec{}
	}
	d.strictKeys(path, m,
		"type", "at", "node", "rail", "field", "op", "value",
		"phase", "max", "min", "before", "after")
	a := AssertSpec{
		Type:   d.str(m, "type", ""),
		At:     d.str(m, "at", ""),
		Field:  d.str(m, "field", ""),
		Op:     d.str(m, "op", ""),
		Value:  d.float(m, "value", 0),
		Phase:  d.str(m, "phase", ""),
		Max:    d.duration(m, "max", 0),
		Min:    d.duration(m, "min", 0),
		Before: d.str(m, "before", ""),
		After:  d.str(m, "after", ""),
	}
	// node / rail selectors accept an integer or a selector word. Fixed
	// order, so a scenario bad in both reports the same failure first.
	for _, sel := range []struct {
		key string
		dst *string
	}{{"node", &a.Node}, {"rail", &a.Rail}} {
		key, dst := sel.key, sel.dst
		switch v := m[key].(type) {
		case nil:
		case int64:
			*dst = strconv.FormatInt(v, 10)
		case string:
			*dst = v
		default:
			d.failf(ErrSchema, "%s.%s: expected a node id or selector, got %v", path, key, v)
		}
	}
	return a
}
