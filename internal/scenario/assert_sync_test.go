package scenario

import (
	"reflect"
	"testing"

	"nmad/internal/core"
	"nmad/internal/names"
	"nmad/internal/simnet"
)

// These tests are the runtime half of the statssync contract: the
// nmad-vet statssync analyzer proves the field tables are in sync at
// the source level, and these prove it at runtime — every exported
// numeric field is reachable under its names.Snake key, and each
// accessor reads the field its key names (not a copy-paste neighbour).
// Both halves derive the key from the same rule, names.Snake, so a
// renamed field cannot drift the schema silently.

func numericKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// checkFieldTable verifies table against the struct type of zero:
// coverage (every exported numeric field has an entry), naming (every
// key is the names.Snake form of a field or method), and binding (the
// accessor for a field key returns that field's value). probe sets the
// field at index i to a distinct value and returns it.
func checkFieldTable[S any](t *testing.T, tableName string, table map[string]func(S) float64) {
	t.Helper()
	typ := reflect.TypeFor[S]()

	fieldFor := make(map[string]int) // snake key -> field index
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() || !numericKind(f.Type.Kind()) {
			continue
		}
		key := names.Snake(f.Name)
		fieldFor[key] = i
		if _, ok := table[key]; !ok {
			t.Errorf("%s has no entry for %s.%s (key %q)", tableName, typ, f.Name, key)
		}
	}

	methodKeys := make(map[string]bool)
	for i := 0; i < typ.NumMethod(); i++ {
		methodKeys[names.Snake(typ.Method(i).Name)] = true
	}

	for key, accessor := range table {
		idx, isField := fieldFor[key]
		if !isField {
			if !methodKeys[key] {
				t.Errorf("%s key %q names no exported numeric field or method of %s", tableName, key, typ)
			}
			continue
		}
		// Bind check: set only this field to a sentinel value and
		// confirm the accessor sees it.
		v := reflect.New(typ).Elem()
		f := v.Field(idx)
		const sentinel = 6371
		switch {
		case f.CanInt():
			f.SetInt(sentinel)
		case f.CanUint():
			f.SetUint(sentinel)
		default:
			f.SetFloat(sentinel)
		}
		if got := accessor(v.Interface().(S)); got != sentinel {
			t.Errorf("%s[%q] returned %v, want the value of field %s (%v): accessor reads the wrong field",
				tableName, key, got, typ.Field(idx).Name, float64(sentinel))
		}
	}
}

func TestStatsFieldsMatchCoreStats(t *testing.T) {
	checkFieldTable(t, "statsFields", statsFields)
	var _ core.Stats // the table's subject, pinned for the reader
}

func TestFaultFieldsMatchFaultStats(t *testing.T) {
	checkFieldTable(t, "faultFields", faultFields)
	var _ simnet.FaultStats
}
