package scenario

import (
	"fmt"
	"sort"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// The assertion engine. At every named checkpoint (and implicitly at
// the end of the run) the runner takes a Snapshot — the per-node engine
// counters, the per-rail fault counters and the clock — and each
// assertion evaluates against the snapshot it anchors at. Evaluation is
// pure: all the state an assertion may consult is in the snapshot, so
// checkpoint assertions see mid-run values, not end-of-run ones.

// Snapshot is the observable state of a run at one instant.
type Snapshot struct {
	At     sim.Time
	Stats  []core.Stats
	Faults []simnet.FaultStats
}

// statsFields maps assertion field names to core.Stats accessors. The
// names are the struct field names in snake_case — the schema the doc
// reference lists.
var statsFields = map[string]func(core.Stats) float64{
	"submitted":              func(s core.Stats) float64 { return float64(s.Submitted) },
	"output_packets":         func(s core.Stats) float64 { return float64(s.OutputPackets) },
	"entries_sent":           func(s core.Stats) float64 { return float64(s.EntriesSent) },
	"aggregated_packets":     func(s core.Stats) float64 { return float64(s.AggregatedPackets) },
	"max_entries_per_packet": func(s core.Stats) float64 { return float64(s.MaxEntriesPerPacket) },
	"ctrl_piggybacked":       func(s core.Stats) float64 { return float64(s.CtrlPiggybacked) },
	"rdv_started":            func(s core.Stats) float64 { return float64(s.RdvStarted) },
	"rdv_completed":          func(s core.Stats) float64 { return float64(s.RdvCompleted) },
	"eager_bytes":            func(s core.Stats) float64 { return float64(s.EagerBytes) },
	"body_bytes":             func(s core.Stats) float64 { return float64(s.BodyBytes) },
	"wire_bytes":             func(s core.Stats) float64 { return float64(s.WireBytes) },
	"reordered":              func(s core.Stats) float64 { return float64(s.Reordered) },
	"unexpected":             func(s core.Stats) float64 { return float64(s.Unexpected) },
	"peak_unexpected":        func(s core.Stats) float64 { return float64(s.PeakUnexpected) },
	"peak_held":              func(s core.Stats) float64 { return float64(s.PeakHeld) },
	"credits_sent":           func(s core.Stats) float64 { return float64(s.CreditsSent) },
	"rdv_deferred":           func(s core.Stats) float64 { return float64(s.RdvDeferred) },
	"rdv_truncated":          func(s core.Stats) float64 { return float64(s.RdvTruncated) },
	"retransmits":            func(s core.Stats) float64 { return float64(s.Retransmits) },
	"dup_acks":               func(s core.Stats) float64 { return float64(s.DupAcks) },
	"reordered_accepts":      func(s core.Stats) float64 { return float64(s.ReorderedAccepts) },
	"body_reissues":          func(s core.Stats) float64 { return float64(s.BodyReissues) },
	"failed_rails":           func(s core.Stats) float64 { return float64(s.FailedRails) },
	"recovered_rails":        func(s core.Stats) float64 { return float64(s.RecoveredRails) },
	"abandoned_rails":        func(s core.Stats) float64 { return float64(s.AbandonedRails) },
	"protocol_errors":        func(s core.Stats) float64 { return float64(s.ProtocolErrors) },
	"jobs_admitted":          func(s core.Stats) float64 { return float64(s.JobsAdmitted) },
	"jobs_rejected":          func(s core.Stats) float64 { return float64(s.JobsRejected) },
	"jobs_dispatched":        func(s core.Stats) float64 { return float64(s.JobsDispatched) },
	"jobs_completed":         func(s core.Stats) float64 { return float64(s.JobsCompleted) },
	"jobs_aged":              func(s core.Stats) float64 { return float64(s.JobsAged) },
	"peak_queue_depth":       func(s core.Stats) float64 { return float64(s.PeakQueueDepth) },
	"peak_job_wait":          func(s core.Stats) float64 { return float64(s.PeakJobWait) },
	"aggregation_ratio":      func(s core.Stats) float64 { return s.AggregationRatio() },
}

// faultFields maps assertion field names to simnet.FaultStats accessors.
var faultFields = map[string]func(simnet.FaultStats) float64{
	"dropped":        func(s simnet.FaultStats) float64 { return float64(s.Dropped) },
	"outage_dropped": func(s simnet.FaultStats) float64 { return float64(s.OutageDropped) },
	"duplicated":     func(s simnet.FaultStats) float64 { return float64(s.Duplicated) },
	"reordered":      func(s simnet.FaultStats) float64 { return float64(s.Reordered) },
}

func statsFieldNames() []string { return sortedKeys(statsFields) }
func faultFieldNames() []string { return sortedKeys(faultFields) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func compare(got float64, op string, want float64) bool {
	switch op {
	case "<":
		return got < want
	case "<=":
		return got <= want
	case ">":
		return got > want
	case ">=":
		return got >= want
	case "==":
		return got == want
	case "!=":
		return got != want
	}
	return false
}

// AssertResult is one evaluated assertion.
type AssertResult struct {
	Spec AssertSpec
	// OK reports whether the assertion held; Detail explains the
	// outcome either way ("node 3 retransmits = 12, want >= 1").
	OK     bool
	Detail string
}

func (r AssertResult) String() string {
	mark := "PASS"
	if !r.OK {
		mark = "FAIL"
	}
	at := r.Spec.At
	if at == "" {
		at = "end"
	}
	return fmt.Sprintf("%s  [%s] %s — %s", mark, at, r.Spec.label(), r.Detail)
}

// evalContext is everything assertions may consult, assembled by the
// runner after the world drains.
type evalContext struct {
	snapshots map[string]*Snapshot // checkpoint name -> snapshot; "end" always present
	phases    map[string]*phaseRun // phase name -> outcome
	runEnd    sim.Time             // completion time of the whole workload
	integrity int                  // total payload corruption count across phases
}

// eval evaluates one assertion against the context.
func (ctx *evalContext) eval(a AssertSpec) AssertResult {
	res := AssertResult{Spec: a}
	anchor := a.At
	if anchor == "" {
		anchor = "end"
	}
	snap := ctx.snapshots[anchor]
	if snap == nil {
		// Validate catches this before a run; belt and braces.
		res.Detail = fmt.Sprintf("no snapshot at %q", anchor)
		return res
	}

	switch a.Type {
	case AssertStats:
		fn := statsFields[a.Field]
		var got float64
		var who string
		switch a.Node {
		case "", "sum":
			for _, s := range snap.Stats {
				got += fn(s)
			}
			who = "sum"
		case "max":
			for _, s := range snap.Stats {
				if v := fn(s); v > got {
					got = v
				}
			}
			who = "max"
		case "all":
			for node, s := range snap.Stats {
				if v := fn(s); !compare(v, a.Op, a.Value) {
					res.Detail = fmt.Sprintf("node %d %s = %v, want %s %v", node, a.Field, v, a.Op, a.Value)
					return res
				}
			}
			res.OK = true
			res.Detail = fmt.Sprintf("%s %s %v on all %d nodes", a.Field, a.Op, a.Value, len(snap.Stats))
			return res
		default:
			id, _ := parseID(a.Node)
			got = fn(snap.Stats[id])
			who = fmt.Sprintf("node %d", id)
		}
		res.OK = compare(got, a.Op, a.Value)
		res.Detail = fmt.Sprintf("%s %s = %v, want %s %v", who, a.Field, got, a.Op, a.Value)

	case AssertFaults:
		fn := faultFields[a.Field]
		var got float64
		var who string
		switch a.Rail {
		case "", "sum":
			for _, s := range snap.Faults {
				got += fn(s)
			}
			who = "sum"
		default:
			id, _ := parseID(a.Rail)
			got = fn(snap.Faults[id])
			who = fmt.Sprintf("rail %d", id)
		}
		res.OK = compare(got, a.Op, a.Value)
		res.Detail = fmt.Sprintf("%s %s = %v, want %s %v", who, a.Field, got, a.Op, a.Value)

	case AssertCompletion:
		var done sim.Time
		var who string
		if a.Phase == "" {
			done, who = ctx.runEnd, "run"
		} else {
			pr := ctx.phases[a.Phase]
			if pr == nil || !pr.done {
				res.Detail = fmt.Sprintf("phase %q never completed", a.Phase)
				return res
			}
			done, who = pr.end, "phase "+a.Phase
		}
		switch {
		case a.Max > 0 && done > a.Max:
			res.Detail = fmt.Sprintf("%s completed at %v, want <= %v", who, done, a.Max)
		case a.Min > 0 && done < a.Min:
			res.Detail = fmt.Sprintf("%s completed at %v, want >= %v", who, done, a.Min)
		default:
			res.OK = true
			res.Detail = fmt.Sprintf("%s completed at %v", who, done)
		}

	case AssertIntegrity:
		res.OK = ctx.integrity == 0
		if res.OK {
			res.Detail = "every payload verified"
		} else {
			res.Detail = fmt.Sprintf("%d corrupted payload(s)", ctx.integrity)
		}

	case AssertPhaseOrder:
		before, after := ctx.phases[a.Before], ctx.phases[a.After]
		switch {
		case before == nil || !before.done:
			res.Detail = fmt.Sprintf("phase %q never completed", a.Before)
		case after == nil || !after.done:
			res.Detail = fmt.Sprintf("phase %q never completed", a.After)
		case before.end > after.end:
			res.Detail = fmt.Sprintf("%s completed at %v, after %s at %v", a.Before, before.end, a.After, after.end)
		default:
			res.OK = true
			res.Detail = fmt.Sprintf("%s at %v <= %s at %v", a.Before, before.end, a.After, after.end)
		}
	}
	return res
}
