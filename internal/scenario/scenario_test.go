package scenario

import (
	"errors"
	"strings"
	"testing"
)

// validDoc is a minimal correct scenario the error-path tests mutate.
const validDoc = `
name: base
cluster:
  nodes: 4
  rails: [mx10g]
phases:
  - name: a
    kind: pingpong
    at: 0us
    nodes: [0, 1]
    size: 64
    count: 2
  - name: b
    kind: incast
    at: 100us
    target: 0
    msgs: 4
    size: 256
events:
  - at: 50us
    action: checkpoint
    name: mid
assertions:
  - type: integrity
`

func mustParse(t *testing.T, doc string) *Scenario {
	t.Helper()
	sc, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sc
}

func TestParseValidDoc(t *testing.T) {
	sc := mustParse(t, validDoc)
	if errs := Validate(sc); len(errs) > 0 {
		t.Fatalf("Validate: %v", errs)
	}
	if sc.Name != "base" || len(sc.Phases) != 2 || len(sc.Events) != 1 || len(sc.Assertions) != 1 {
		t.Fatalf("decoded scenario off: %+v", sc)
	}
	if sc.Phases[1].Kind != PhaseIncast || sc.Phases[1].Msgs != 4 {
		t.Fatalf("phase b off: %+v", sc.Phases[1])
	}
}

func TestParseSyntaxErrors(t *testing.T) {
	cases := map[string]string{
		"tab indent":       "name: x\ncluster:\n\tnodes: 2\n",
		"multi-doc":        "---\nname: x\n",
		"missing space":    "name:x\n",
		"flow mapping":     "cluster: {nodes: 2}\n",
		"anchor":           "name: &a x\n",
		"unterminated":     "name: \"x\n",
		"duplicate key":    "name: x\nname: y\n",
		"seq in mapping":   "name: x\n- y\n",
		"nested flow list": "name: x\nlist: [[1], 2]\n",
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: got %v, want ErrSyntax", label, err)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := map[string]string{
		"unknown top field": "name: x\nbogus: 1\n",
		"unknown phase key": "name: x\nphases:\n  - kind: pingpong\n    frobnicate: 1\n",
		"string for int":    "name: x\ncluster:\n  nodes: lots\n",
		"bare duration":     "name: x\nphases:\n  - kind: barrier\n    at: 100\n",
		"bad duration unit": "name: x\nphases:\n  - kind: barrier\n    at: 10fortnights\n",
		"missing name":      "description: x\n",
		"sequence for map":  "cluster:\n  - nodes\n",
		"non-integer nodes": "name: x\nphases:\n  - kind: pingpong\n    nodes: [a, b]\n",
		"negative duration": "name: x\nphases:\n  - kind: barrier\n    at: -5us\n",
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); !errors.Is(err, ErrSchema) {
			t.Errorf("%s: got %v, want ErrSchema", label, err)
		}
	}
}

// validateErr runs Validate and demands at least one error matching the
// sentinel.
func validateErr(t *testing.T, doc string, want error) {
	t.Helper()
	sc := mustParse(t, doc)
	errs := Validate(sc)
	for _, e := range errs {
		if errors.Is(e, want) {
			return
		}
	}
	t.Fatalf("Validate = %v, want an error wrapping %v", errs, want)
}

func TestValidateUnknownAction(t *testing.T) {
	validateErr(t, strings.Replace(validDoc, "action: checkpoint\n    name: mid", "action: explode_rail", 1),
		ErrUnknownAction)
}

func TestValidateUnknownPhaseKind(t *testing.T) {
	validateErr(t, strings.Replace(validDoc, "kind: incast", "kind: dance", 1), ErrUnknownPhase)
}

func TestValidateUnknownAssertType(t *testing.T) {
	validateErr(t, strings.Replace(validDoc, "type: integrity", "type: vibes", 1), ErrUnknownAssert)
}

func TestValidateBadTargetNode(t *testing.T) {
	// Incast target outside the 4-node cluster.
	validateErr(t, strings.Replace(validDoc, "target: 0", "target: 9", 1), ErrBadTarget)
	// Phase participant outside the cluster.
	validateErr(t, strings.Replace(validDoc, "nodes: [0, 1]", "nodes: [0, 7]", 1), ErrBadTarget)
	// Event node outside the cluster.
	validateErr(t, strings.Replace(validDoc,
		"action: checkpoint\n    name: mid", "action: slow_node\n    node: 12\n    factor: 2.0", 1),
		ErrBadTarget)
}

func TestValidateBadTargetRail(t *testing.T) {
	validateErr(t, strings.Replace(validDoc,
		"action: checkpoint\n    name: mid", "action: degrade_rail\n    rail: 3\n    scale: 0.5", 1),
		ErrBadTarget)
}

func TestValidateOverlappingPhases(t *testing.T) {
	// Same start instant.
	validateErr(t, strings.Replace(validDoc, "at: 100us", "at: 0us", 1), ErrPhaseOverlap)
	// Out-of-order declaration.
	validateErr(t, strings.Replace(strings.Replace(validDoc, "at: 0us", "at: 200us", 1),
		"at: 100us", "at: 90us", 1), ErrPhaseOverlap)
	// Duplicate phase name.
	validateErr(t, strings.Replace(validDoc, "- name: b", "- name: a", 1), ErrPhaseOverlap)
}

func TestValidateUndeclaredCheckpoint(t *testing.T) {
	doc := strings.Replace(validDoc, "type: integrity", "type: integrity\n    at: nowhere", 1)
	validateErr(t, doc, ErrUnknownCheckpoint)
	// "end" and declared checkpoints are fine.
	ok := strings.Replace(validDoc, "type: integrity", "type: integrity\n    at: mid", 1)
	if errs := Validate(mustParse(t, ok)); len(errs) > 0 {
		t.Fatalf("checkpoint 'mid' should validate: %v", errs)
	}
}

func TestValidateBadValues(t *testing.T) {
	cases := map[string]string{
		"one-node cluster": strings.Replace(validDoc, "nodes: 4", "nodes: 1", 1),
		"unknown profile":  strings.Replace(validDoc, "rails: [mx10g]", "rails: [carrier-pigeon]", 1),
		"bad scale": strings.Replace(validDoc,
			"action: checkpoint\n    name: mid", "action: degrade_rail\n    rail: 0\n    scale: 1.5", 1),
		"bad slow factor": strings.Replace(validDoc,
			"action: checkpoint\n    name: mid", "action: slow_node\n    node: 0\n    factor: 0.5", 1),
		"unbounded squeeze": strings.Replace(validDoc,
			"action: checkpoint\n    name: mid", "action: squeeze_credits\n    node: 0", 1),
		"pingpong self": strings.Replace(validDoc, "nodes: [0, 1]", "nodes: [1, 1]", 1),
	}
	for label, doc := range cases {
		sc := mustParse(t, doc)
		found := false
		for _, e := range Validate(sc) {
			if errors.Is(e, ErrBadValue) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want ErrBadValue, got %v", label, Validate(sc))
		}
	}
}

func TestValidateUnknownStatsField(t *testing.T) {
	doc := strings.Replace(validDoc, "type: integrity",
		"type: stats\n    field: warp_factor\n    op: \">\"\n    value: 1", 1)
	validateErr(t, doc, ErrBadValue)
}

func TestValidateCollectsAllErrors(t *testing.T) {
	doc := strings.Replace(strings.Replace(validDoc,
		"kind: incast", "kind: dance", 1),
		"action: checkpoint\n    name: mid", "action: explode_rail", 1)
	sc := mustParse(t, doc)
	errs := Validate(sc)
	var gotPhase, gotAction bool
	for _, e := range errs {
		gotPhase = gotPhase || errors.Is(e, ErrUnknownPhase)
		gotAction = gotAction || errors.Is(e, ErrUnknownAction)
	}
	if !gotPhase || !gotAction {
		t.Fatalf("want both ErrUnknownPhase and ErrUnknownAction in one pass, got %v", errs)
	}
}

func TestParseTime(t *testing.T) {
	cases := map[string]int64{
		"250us": 250_000,
		"1.5ms": 1_500_000,
		"2s":    2_000_000_000,
		"40ns":  40,
		"3µs":   3_000,
	}
	for in, want := range cases {
		got, err := ParseTime(in)
		if err != nil || int64(got) != want {
			t.Errorf("ParseTime(%q) = %v, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "100", "us", "-1ms", "1h", "1.2.3s"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) should fail", bad)
		}
	}
}
