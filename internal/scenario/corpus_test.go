package scenario

import (
	"bytes"
	"testing"
)

// TestCommittedCorpus validates and runs every scenario committed under
// scenarios/ at the repository root — the same sweep the CI scenarios
// job performs through nmad-sim. A corpus file whose assertions fail is
// a regression in either the scenario or the engine.
func TestCommittedCorpus(t *testing.T) {
	scs, bad := ListDir("../../scenarios")
	for name, err := range bad {
		t.Errorf("%s: %v", name, err)
	}
	if len(scs) < 6 {
		t.Fatalf("corpus holds %d scenarios, want at least 6", len(scs))
	}
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := Run(sc, Config{})
			if err != nil {
				var buf bytes.Buffer
				if rep != nil {
					rep.Write(&buf)
				}
				t.Fatalf("%v\n%s", err, buf.String())
			}
		})
	}
}
