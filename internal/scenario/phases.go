package scenario

import (
	"fmt"

	"nmad/internal/madmpi"
	"nmad/internal/sim"
)

// The phase workloads. Every phase is a set of cooperating processes
// spawned on its participant ranks at the phase's start instant; a
// phase completes when the last of them finishes. All payloads carry a
// deterministic fill pattern derived from (phase, sender, message,
// offset) and every receiver verifies it — payload corruption is
// counted, not fatal, and surfaces through the `integrity` assertion.
//
// Tag discipline: phase i owns the user-tag window [i*tagStride,
// (i+1)*tagStride), so overlapping phases never steal each other's
// matches. Collective phases run on a dedicated communicator (dup'd in
// phase order on every rank at setup, so the ids agree cluster-wide)
// for the same reason.
const tagStride = 1 << 16

// phaseRun tracks one phase's outcome.
type phaseRun struct {
	spec      PhaseSpec
	start     sim.Time
	end       sim.Time
	done      bool
	integrity int // corrupted payloads observed by this phase
	pending   int // running processes
}

// finishOne marks one participant process done; the last one closes the
// phase.
func (pr *phaseRun) finishOne(now sim.Time) {
	pr.pending--
	if pr.pending == 0 {
		pr.end = now
		pr.done = true
	}
}

// fill writes the deterministic pattern of message m from sender s in
// phase ph.
func fill(buf []byte, ph, s, m int) {
	for i := range buf {
		buf[i] = byte(ph*53 + s*31 + m*7 + i)
	}
}

// verify counts a corrupted payload (1 per bad message, not per byte).
func verify(buf []byte, ph, s, m int) int {
	for i := range buf {
		if buf[i] != byte(ph*53+s*31+m*7+i) {
			return 1
		}
	}
	return 0
}

// nodesOrAll defaults an empty participant list to the whole cluster.
func nodesOrAll(nodes []int, n int) []int {
	if len(nodes) > 0 {
		return nodes
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// startPhase spawns the phase's processes. Called from scheduler
// context at the phase's start instant.
func (r *Runner) startPhase(pr *phaseRun) {
	p := pr.spec
	pr.start = r.world.Now()
	base := p.index * tagStride
	spawn := func(rank int, nproc string, body func(q *sim.Proc) int) {
		pr.pending++
		r.world.Spawn(fmt.Sprintf("%s/%s@%d", p.Name, nproc, rank), func(q *sim.Proc) {
			pr.integrity += body(q)
			pr.finishOne(q.Now())
			// Wake queued-phase jobs blocked on their phase closing.
			r.phaseCond.Broadcast()
		})
	}

	switch p.Kind {
	case PhasePingPong:
		a, b := p.Nodes[0], p.Nodes[1]
		size := max(p.Size, 1)
		spawn(a, "ping", func(q *sim.Proc) int {
			bad := 0
			c := r.comm(a)
			buf := make([]byte, size)
			for it := 0; it < p.Count; it++ {
				fill(buf, p.index, a, it)
				if err := c.Isend(q, buf, b, base).Wait(q); err != nil {
					r.procErr(p.Name, err)
					return bad
				}
				if err := c.Irecv(q, buf, b, base+1).Wait(q); err != nil {
					r.procErr(p.Name, err)
					return bad
				}
				bad += verify(buf, p.index, b, it)
			}
			return bad
		})
		spawn(b, "pong", func(q *sim.Proc) int {
			bad := 0
			c := r.comm(b)
			buf := make([]byte, size)
			for it := 0; it < p.Count; it++ {
				if err := c.Irecv(q, buf, a, base).Wait(q); err != nil {
					r.procErr(p.Name, err)
					return bad
				}
				bad += verify(buf, p.index, a, it)
				fill(buf, p.index, b, it)
				if err := c.Isend(q, buf, a, base+1).Wait(q); err != nil {
					r.procErr(p.Name, err)
					return bad
				}
			}
			return bad
		})

	case PhaseRing:
		members := nodesOrAll(p.Nodes, r.nodes())
		size := max(p.Size, 1)
		for slot := range members {
			slot := slot
			me := members[slot]
			next := members[(slot+1)%len(members)]
			prev := members[(slot-1+len(members))%len(members)]
			prevSlot := (slot - 1 + len(members)) % len(members)
			spawn(me, "ring", func(q *sim.Proc) int {
				bad := 0
				c := r.comm(me)
				for round := 0; round < p.Count; round++ {
					var reqs []*madmpi.Request
					out := make([][]byte, p.Msgs)
					in := make([][]byte, p.Msgs)
					for m := 0; m < p.Msgs; m++ {
						out[m] = make([]byte, size)
						fill(out[m], p.index, slot, round*p.Msgs+m)
						reqs = append(reqs, c.Isend(q, out[m], next, base+slot*p.Count+round))
						in[m] = make([]byte, size)
						reqs = append(reqs, c.Irecv(q, in[m], prev, base+prevSlot*p.Count+round))
					}
					if err := madmpi.Waitall(q, reqs...); err != nil {
						r.procErr(p.Name, err)
						return bad
					}
					for m := 0; m < p.Msgs; m++ {
						bad += verify(in[m], p.index, prevSlot, round*p.Msgs+m)
					}
				}
				return bad
			})
		}

	case PhaseIncast:
		senders := p.Senders
		if len(senders) == 0 {
			for n := 0; n < r.nodes(); n++ {
				if n != p.Target {
					senders = append(senders, n)
				}
			}
		}
		size := max(p.Size, 1)
		for si, s := range senders {
			si, s := si, s
			spawn(s, "burst", func(q *sim.Proc) int {
				c := r.comm(s)
				var reqs []*madmpi.Request
				for m := 0; m < p.Msgs; m++ {
					buf := make([]byte, size)
					fill(buf, p.index, s, m)
					reqs = append(reqs, c.Isend(q, buf, p.Target, base+si))
				}
				if err := madmpi.Waitall(q, reqs...); err != nil {
					r.procErr(p.Name, err)
				}
				return 0
			})
		}
		for si, s := range senders {
			si, s := si, s
			spawn(p.Target, "drain", func(q *sim.Proc) int {
				bad := 0
				c := r.comm(p.Target)
				buf := make([]byte, size)
				for m := 0; m < p.Msgs; m++ {
					if err := c.Irecv(q, buf, s, base+si).Wait(q); err != nil {
						r.procErr(p.Name, err)
						return bad
					}
					bad += verify(buf, p.index, s, m)
					if p.DrainGap > 0 && m+1 < p.Msgs {
						q.Sleep(p.DrainGap)
					}
				}
				return bad
			})
		}

	case PhaseComposite:
		// The paper's headline composite: a bulk transfer with a small
		// urgent control message submitted right behind it. With the
		// priority flag the control message overtakes the bulk queue.
		a, b := p.Nodes[0], p.Nodes[1]
		bulk := max(p.Size, 1)
		const ctrlSize = 64
		spawn(a, "mixer", func(q *sim.Proc) int {
			c := r.comm(a)
			var reqs []*madmpi.Request
			for m := 0; m < p.Msgs; m++ {
				big := make([]byte, bulk)
				fill(big, p.index, a, 2*m)
				reqs = append(reqs, c.Isend(q, big, b, base))
				ctl := make([]byte, ctrlSize)
				fill(ctl, p.index, a, 2*m+1)
				if p.Priority {
					reqs = append(reqs, c.IsendPriority(q, ctl, b, base+1))
				} else {
					reqs = append(reqs, c.Isend(q, ctl, b, base+1))
				}
			}
			if err := madmpi.Waitall(q, reqs...); err != nil {
				r.procErr(p.Name, err)
			}
			return 0
		})
		spawn(b, "sink", func(q *sim.Proc) int {
			bad := 0
			c := r.comm(b)
			var reqs []*madmpi.Request
			bigs := make([][]byte, p.Msgs)
			ctls := make([][]byte, p.Msgs)
			for m := 0; m < p.Msgs; m++ {
				bigs[m] = make([]byte, bulk)
				reqs = append(reqs, c.Irecv(q, bigs[m], a, base))
				ctls[m] = make([]byte, ctrlSize)
				reqs = append(reqs, c.Irecv(q, ctls[m], a, base+1))
			}
			if err := madmpi.Waitall(q, reqs...); err != nil {
				r.procErr(p.Name, err)
				return bad
			}
			for m := 0; m < p.Msgs; m++ {
				bad += verify(bigs[m], p.index, a, 2*m)
				bad += verify(ctls[m], p.index, a, 2*m+1)
			}
			return bad
		})

	case PhaseBarrier:
		for rank := 0; rank < r.nodes(); rank++ {
			rank := rank
			spawn(rank, "barrier", func(q *sim.Proc) int {
				c := r.collComm(p.index, rank)
				for it := 0; it < p.Count; it++ {
					if err := c.Barrier(q); err != nil {
						r.procErr(p.Name, err)
						return 0
					}
				}
				return 0
			})
		}

	case PhaseBcast:
		size := max(p.Size, 1)
		for rank := 0; rank < r.nodes(); rank++ {
			rank := rank
			spawn(rank, "bcast", func(q *sim.Proc) int {
				bad := 0
				c := r.collComm(p.index, rank)
				buf := make([]byte, size)
				for it := 0; it < p.Count; it++ {
					if rank == p.Root {
						fill(buf, p.index, p.Root, it)
					}
					if err := c.Bcast(q, buf, p.Root); err != nil {
						r.procErr(p.Name, err)
						return bad
					}
					bad += verify(buf, p.index, p.Root, it)
				}
				return bad
			})
		}

	case PhaseAllgather:
		size := max(p.Size, 1)
		n := r.nodes()
		for rank := 0; rank < n; rank++ {
			rank := rank
			spawn(rank, "allgather", func(q *sim.Proc) int {
				c := r.collComm(p.index, rank)
				mine := make([]byte, size)
				fill(mine, p.index, rank, 0)
				all := make([]byte, size*n)
				if err := c.Allgather(q, mine, all); err != nil {
					r.procErr(p.Name, err)
					return 0
				}
				bad := 0
				for s := 0; s < n; s++ {
					bad += verify(all[s*size:(s+1)*size], p.index, s, 0)
				}
				return bad
			})
		}

	case PhaseAllreduce:
		n := r.nodes()
		elems := max(p.Size/8, 1) // Size is in bytes; float64 elements
		for rank := 0; rank < n; rank++ {
			rank := rank
			spawn(rank, "allreduce", func(q *sim.Proc) int {
				c := r.collComm(p.index, rank)
				send := make([]float64, elems)
				for i := range send {
					send[i] = float64(rank + 1)
				}
				recv := make([]float64, elems)
				if err := c.Allreduce(q, send, recv, madmpi.OpSum); err != nil {
					r.procErr(p.Name, err)
					return 0
				}
				want := float64(n*(n+1)) / 2
				for i := range recv {
					if recv[i] != want {
						return 1
					}
				}
				return 0
			})
		}

	case PhaseAlltoall:
		size := max(p.Size, 1)
		n := r.nodes()
		for rank := 0; rank < n; rank++ {
			rank := rank
			spawn(rank, "alltoall", func(q *sim.Proc) int {
				c := r.collComm(p.index, rank)
				send := make([]byte, size*n)
				for dst := 0; dst < n; dst++ {
					fill(send[dst*size:(dst+1)*size], p.index, rank, dst)
				}
				recv := make([]byte, size*n)
				if err := c.Alltoall(q, send, recv); err != nil {
					r.procErr(p.Name, err)
					return 0
				}
				bad := 0
				for src := 0; src < n; src++ {
					bad += verify(recv[src*size:(src+1)*size], p.index, src, rank)
				}
				return bad
			})
		}
	}
}
