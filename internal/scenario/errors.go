package scenario

import "errors"

// The typed error taxonomy of the scenario harness. Every parse and
// validation failure wraps exactly one of these sentinels, so callers
// (and tests) classify failures with errors.Is instead of string
// matching, and `nmad-sim validate` can report what KIND of mistake a
// file holds.
var (
	// ErrSyntax: the file is not parseable scenario YAML (bad
	// indentation, unterminated quote, unsupported construct).
	ErrSyntax = errors.New("scenario: syntax error")
	// ErrSchema: the document parsed but does not fit the scenario
	// schema — an unknown field, a wrong type, a missing required key.
	ErrSchema = errors.New("scenario: schema error")
	// ErrBadValue: a field has the right type but an impossible value
	// (a probability outside [0,1], a zero-node cluster, an unknown
	// rail profile or stats field).
	ErrBadValue = errors.New("scenario: bad value")
	// ErrUnknownPhase: a phase declares a workload kind the harness
	// does not implement.
	ErrUnknownPhase = errors.New("scenario: unknown phase kind")
	// ErrUnknownAction: an event declares an action the harness does
	// not implement.
	ErrUnknownAction = errors.New("scenario: unknown event action")
	// ErrUnknownAssert: an assertion declares a type the harness does
	// not implement.
	ErrUnknownAssert = errors.New("scenario: unknown assertion type")
	// ErrBadTarget: an event or phase addresses a node or rail outside
	// the declared cluster, or a phase participant set that does not
	// exist.
	ErrBadTarget = errors.New("scenario: target outside the declared cluster")
	// ErrPhaseOverlap: the phase timeline is ill-formed — two phases
	// share a start instant or are declared out of start-time order, or
	// two phases share a name.
	ErrPhaseOverlap = errors.New("scenario: overlapping phases")
	// ErrUnknownCheckpoint: an assertion anchors at a checkpoint no
	// event declares.
	ErrUnknownCheckpoint = errors.New("scenario: assertion on undeclared checkpoint")
	// ErrAssertFailed: a scenario ran to completion but at least one
	// assertion did not hold (see Report.Failures for the details).
	ErrAssertFailed = errors.New("scenario: assertion failed")
)
