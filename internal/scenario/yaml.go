package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// A minimal YAML-subset parser, enough for declarative scenario files
// and nothing more. The container ships no YAML dependency, and the
// scenario schema needs only the structural core of the language:
//
//   - block mappings ("key: value" / "key:" + indented block)
//   - block sequences ("- item", including inline "- key: value" items)
//   - flow sequences of scalars ("[a, b, c]")
//   - plain and quoted scalars, typed as bool / int / float / string
//   - comments ("# ..." outside quotes) and blank lines
//
// Anchors, aliases, multi-document streams, flow mappings, multi-line
// strings and tags are rejected with ErrSyntax. Scalars that look like
// durations ("250us") stay strings; the schema layer parses them.
//
// The parse result is the generic tree decode.go walks:
// map[string]any, []any, and scalar leaves (bool, int64, float64,
// string).

// yamlLine is one significant source line.
type yamlLine struct {
	num    int // 1-based source line number
	indent int // leading spaces
	text   string
}

// parseYAML parses a whole document into the generic tree.
func parseYAML(src []byte) (any, error) {
	lines, err := splitYAML(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.block(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%w: line %d: unexpected dedent to %q", ErrSyntax, l.num, l.text)
	}
	return v, nil
}

// splitYAML strips comments and blanks, measures indentation, and
// rejects constructs outside the subset (tabs, document markers).
func splitYAML(src []byte) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(string(src), "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		if strings.Contains(text[:len(text)-len(strings.TrimLeft(text, " \t"))], "\t") {
			return nil, fmt.Errorf("%w: line %d: tab indentation", ErrSyntax, num+1)
		}
		if trimmed == "---" || trimmed == "..." {
			return nil, fmt.Errorf("%w: line %d: multi-document streams are not supported", ErrSyntax, num+1)
		}
		out = append(out, yamlLine{
			num:    num + 1,
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
		})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, respecting quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// block parses the run of lines at exactly the given indent as one
// mapping or sequence (decided by the first line).
func (p *yamlParser) block(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("%w: unexpected end of document", ErrSyntax)
	}
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("%w: line %d: inconsistent indentation", ErrSyntax, l.num)
	}
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.sequence(indent)
	}
	return p.mapping(indent)
}

// mapping parses "key: ..." lines at one indent level.
func (p *yamlParser) mapping(indent int) (any, error) {
	m := make(map[string]any)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%w: line %d: unexpected indent", ErrSyntax, l.num)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("%w: line %d: sequence item inside a mapping", ErrSyntax, l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%w: line %d: duplicate key %q", ErrSyntax, l.num, key)
		}
		p.pos++
		if rest != "" {
			v, err := scalarOrFlow(rest, l.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Value is the following indented block (or null when nothing
		// deeper follows).
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

// sequence parses "- ..." items at one indent level.
func (p *yamlParser) sequence(indent int) (any, error) {
	var seq []any
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%w: line %d: unexpected indent", ErrSyntax, l.num)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, fmt.Errorf("%w: line %d: expected a sequence item", ErrSyntax, l.num)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		switch {
		case rest == "":
			// "-" alone: the item is the following indented block.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.block(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				seq = append(seq, v)
			} else {
				seq = append(seq, nil)
			}
		case isKeyLine(rest):
			// "- key: value": the item is a mapping whose first entry is
			// inline. Rewrite the line as the entry and let mapping()
			// consume it plus any deeper continuation lines.
			itemIndent := indent + 2
			p.lines[p.pos] = yamlLine{num: l.num, indent: itemIndent, text: rest}
			v, err := p.mapping(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		default:
			p.pos++
			v, err := scalarOrFlow(rest, l.num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
	}
	return seq, nil
}

// splitKey splits a "key: rest" line.
func splitKey(l yamlLine) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i < 0 {
		return "", "", fmt.Errorf("%w: line %d: expected \"key: value\", got %q", ErrSyntax, l.num, l.text)
	}
	if i+1 < len(l.text) && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("%w: line %d: missing space after %q", ErrSyntax, l.num, l.text[:i+1])
	}
	key = strings.TrimSpace(l.text[:i])
	if key == "" {
		return "", "", fmt.Errorf("%w: line %d: empty key", ErrSyntax, l.num)
	}
	return key, strings.TrimSpace(l.text[i+1:]), nil
}

// isKeyLine reports whether a sequence item's inline content starts a
// mapping ("key: ..." with the colon outside any quotes).
func isKeyLine(s string) bool {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") || strings.HasPrefix(s, "[") {
		return false
	}
	i := strings.Index(s, ":")
	return i > 0 && (i+1 == len(s) || s[i+1] == ' ')
}

// scalarOrFlow parses an inline value: a flow sequence of scalars, or a
// single scalar.
func scalarOrFlow(s string, num int) (any, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("%w: line %d: unterminated flow sequence %q", ErrSyntax, num, s)
		}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}, nil
		}
		var seq []any
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if part == "" || strings.ContainsAny(part, "[]{}") {
				return nil, fmt.Errorf("%w: line %d: flow sequences may hold scalars only", ErrSyntax, num)
			}
			v, err := scalar(part, num)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
		}
		return seq, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("%w: line %d: flow mappings are not supported", ErrSyntax, num)
	}
	return scalar(s, num)
}

// scalar types one plain or quoted scalar.
func scalar(s string, num int) (any, error) {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1], nil
		}
	}
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		return nil, fmt.Errorf("%w: line %d: unterminated quote in %q", ErrSyntax, num, s)
	}
	if strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "!") {
		return nil, fmt.Errorf("%w: line %d: anchors, aliases and tags are not supported (%q)", ErrSyntax, num, s)
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
