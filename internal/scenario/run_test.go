package scenario

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"nmad/internal/replay"
	"nmad/internal/trace"
)

// eventfulDoc exercises every runtime surface at once: a lossy fabric
// with reliability, overlapping phases, rail degradation, a mid-run
// outage, a node slowdown, a credit squeeze and a checkpoint.
const eventfulDoc = `
name: eventful
cluster:
  nodes: 4
  rails: [mx10g, tcp]
  engine:
    strategy: aggreg
    reliability: true
    credits: 16
    probe_budget: 8
  faults:
    seed: 42
    rails:
      - drop: 0.01
phases:
  - name: warmup
    kind: pingpong
    at: 0us
    nodes: [0, 1]
    size: 256
    count: 8
  - name: storm
    kind: incast
    at: 150us
    target: 0
    msgs: 16
    size: 1024
  - name: bulk
    kind: composite
    at: 300us
    nodes: [2, 3]
    size: 65536
    msgs: 2
    priority: true
  - name: sync
    kind: allreduce
    at: 900us
    size: 1024
events:
  - at: 200us
    action: degrade_rail
    rail: 0
    scale: 0.5
  - at: 250us
    action: slow_node
    node: 0
    factor: 2.0
  - at: 350us
    action: rail_outage
    rail: 1
    duration: 100us
  - at: 400us
    action: squeeze_credits
    node: 0
    duration: 80us
  - at: 500us
    action: checkpoint
    name: mid
  - at: 600us
    action: restore_rail
    rail: 0
  - at: 600us
    action: restore_node
    node: 0
assertions:
  - type: integrity
  - type: completion
    max: 100ms
  - type: phase_order
    before: warmup
    after: sync
  - type: stats
    node: sum
    field: submitted
    op: ">"
    value: 0
  - type: faults
    rail: sum
    field: dropped
    op: ">="
    value: 0
  - type: stats
    at: mid
    node: sum
    field: output_packets
    op: ">"
    value: 0
`

func runDoc(t *testing.T, doc string, cfg Config) *Report {
	t.Helper()
	sc := mustParse(t, doc)
	rep, err := Run(sc, cfg)
	if err != nil {
		if rep != nil {
			var buf bytes.Buffer
			rep.Write(&buf)
			t.Log(buf.String())
		}
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestRunEventful(t *testing.T) {
	rep := runDoc(t, eventfulDoc, Config{})
	if rep.Failures() != 0 {
		t.Fatalf("%d assertion failures", rep.Failures())
	}
	for _, ph := range rep.Phases {
		if !ph.Done {
			t.Errorf("phase %s did not complete", ph.Name)
		}
	}
}

// TestRunDeterministic: same file, same seed, byte-identical outcome —
// the report text, the completion instants and every counter.
func TestRunDeterministic(t *testing.T) {
	var first, second bytes.Buffer
	rep1 := runDoc(t, eventfulDoc, Config{})
	rep1.Write(&first)
	rep2 := runDoc(t, eventfulDoc, Config{})
	rep2.Write(&second)
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("reports differ:\n--- run 1\n%s\n--- run 2\n%s", first.String(), second.String())
	}
	if !reflect.DeepEqual(rep1.Stats, rep2.Stats) {
		t.Error("engine counters differ between identical runs")
	}
	if !reflect.DeepEqual(rep1.Faults, rep2.Faults) {
		t.Error("fault counters differ between identical runs")
	}
}

// TestRecordReplay: a scenario run with Config.Record produces a
// recording stamped with the scenario name and seed that round-trips
// through the JSONL format and replays cleanly through package replay.
func TestRecordReplay(t *testing.T) {
	rec := trace.NewRecording()
	rep := runDoc(t, eventfulDoc, Config{Record: rec})
	if rec.Len() == 0 {
		t.Fatal("recording captured no operations")
	}
	if got := rec.Meta("scenario"); got != "eventful" {
		t.Errorf("meta scenario = %q, want %q", got, "eventful")
	}
	if got := rec.Meta("seed"); got != "42" {
		t.Errorf("meta seed = %q, want %q", got, "42")
	}

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := trace.ReadRecording(&buf)
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if rt.Meta("scenario") != "eventful" {
		t.Error("meta lost in serialization")
	}
	res, err := replay.Run(rt, replay.Config{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Completion == 0 {
		t.Error("replay produced an empty timeline")
	}
	_ = rep
}

// TestSlowNodeStretchesCompletion: the same workload with the target
// host slowed 8x must finish later.
func TestSlowNodeStretchesCompletion(t *testing.T) {
	base := `
name: pace
cluster:
  nodes: 2
phases:
  - name: pp
    kind: pingpong
    at: 0us
    nodes: [0, 1]
    size: 4096
    count: 20
assertions:
  - type: integrity
`
	slow := base + `events:
  - at: 0us
    action: slow_node
    node: 1
    factor: 8.0
`
	fast := runDoc(t, base, Config{})
	slowed := runDoc(t, slow, Config{})
	if slowed.Completion <= fast.Completion {
		t.Errorf("slow_node had no effect: %v vs %v", slowed.Completion, fast.Completion)
	}
}

// TestDegradeRailStretchesCompletion: halving the wire speed during a
// bulk transfer must stretch it.
func TestDegradeRailStretchesCompletion(t *testing.T) {
	base := `
name: degrade
cluster:
  nodes: 2
phases:
  - name: bulk
    kind: incast
    at: 0us
    target: 1
    msgs: 32
    size: 8192
assertions:
  - type: integrity
`
	degraded := base + `events:
  - at: 10us
    action: degrade_rail
    rail: 0
    scale: 0.25
`
	clean := runDoc(t, base, Config{})
	hit := runDoc(t, degraded, Config{})
	if hit.Completion <= clean.Completion {
		t.Errorf("degrade_rail had no effect: %v vs %v", hit.Completion, clean.Completion)
	}
}

// TestAssertionFailureSurfaces: a run whose assertion cannot hold
// returns ErrAssertFailed with the failing result in the report.
func TestAssertionFailureSurfaces(t *testing.T) {
	doc := `
name: doomed
cluster:
  nodes: 2
phases:
  - name: pp
    kind: pingpong
    at: 0us
    nodes: [0, 1]
    size: 64
    count: 1
assertions:
  - type: stats
    field: submitted
    op: ">"
    value: 1000000
`
	sc := mustParse(t, doc)
	rep, err := Run(sc, Config{})
	if !errors.Is(err, ErrAssertFailed) {
		t.Fatalf("err = %v, want ErrAssertFailed", err)
	}
	if rep == nil || rep.Failures() != 1 {
		t.Fatalf("report = %+v, want exactly one failure", rep)
	}
}

// TestRunRejectsInvalidScenario: Run refuses to start an invalid
// scenario instead of crashing mid-flight.
func TestRunRejectsInvalidScenario(t *testing.T) {
	sc := mustParse(t, `
name: broken
cluster:
  nodes: 2
phases:
  - name: pp
    kind: pingpong
    at: 0us
    nodes: [0, 5]
`)
	if _, err := Run(sc, Config{}); !errors.Is(err, ErrBadTarget) {
		t.Fatalf("err = %v, want ErrBadTarget", err)
	}
}

// TestPermanentOutageTerminates: a scenario whose rail dies forever
// still drains, because probe_budget bounds the recovery probe.
func TestPermanentOutageTerminates(t *testing.T) {
	doc := `
name: dead-rail
cluster:
  nodes: 2
  rails: [mx10g, mx10g]
  engine:
    reliability: true
    retransmit_timeout: 100us
    retransmit_budget: 3
    probe_budget: 5
  faults:
    seed: 7
    rails:
      - drop: 0.0
      - outages:
          - at: 0us
            duration: 1000s
phases:
  - name: pp
    kind: pingpong
    at: 0us
    nodes: [0, 1]
    size: 512
    count: 4
assertions:
  - type: integrity
  - type: stats
    node: sum
    field: abandoned_rails
    op: ">="
    value: 0
`
	rep := runDoc(t, doc, Config{})
	if rep.Failures() != 0 {
		t.Fatalf("%d failures", rep.Failures())
	}
}
