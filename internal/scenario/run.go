package scenario

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"nmad/internal/core"
	"nmad/internal/madmpi"
	"nmad/internal/queue"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Load reads, parses and validates one scenario file. Validation
// failures come back joined, each wrapping its sentinel.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sc, err := Parse(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if errs := Validate(sc); len(errs) > 0 {
		for i, e := range errs {
			errs[i] = fmt.Errorf("%s: %w", path, e)
		}
		return nil, errors.Join(errs...)
	}
	return sc, nil
}

// Config adjusts one run of a scenario.
type Config struct {
	// Record, when non-nil, captures the offered load of the run (the
	// PR-5 record/replay format), stamped with the scenario name and
	// fault seed.
	Record *trace.Recording
	// Verbose, when non-nil, streams phase/event progress lines.
	Verbose io.Writer
}

// PhaseReport is one phase's outcome in the report.
type PhaseReport struct {
	Name      string
	Kind      string
	Tenant    string
	Start     sim.Time
	End       sim.Time
	Done      bool
	Integrity int
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario string
	// Completion is when the last phase finished; Drained when the
	// world went idle (retransmit tails and probes included).
	Completion sim.Time
	Drained    sim.Time
	Phases     []PhaseReport
	Results    []AssertResult
	// Stats / Faults are the end-of-run counters the assertions saw.
	Stats  []core.Stats
	Faults []simnet.FaultStats
	// ProcErrors lists engine-level errors phases absorbed (a truncated
	// receive, a closed gate); usually empty.
	ProcErrors []string
}

// Failures counts assertions that did not hold.
func (rep *Report) Failures() int {
	n := 0
	for _, r := range rep.Results {
		if !r.OK {
			n++
		}
	}
	return n
}

// Write renders the report as stable text.
func (rep *Report) Write(w io.Writer) {
	fmt.Fprintf(w, "scenario %s: completion %v, drained %v\n", rep.Scenario, rep.Completion, rep.Drained)
	for _, ph := range rep.Phases {
		state := "completed"
		if !ph.Done {
			state = "DID NOT COMPLETE"
		}
		tenant := ""
		if ph.Tenant != "" {
			tenant = " tenant=" + ph.Tenant
		}
		fmt.Fprintf(w, "  phase %-16s %-10s%s %v -> %v  %s", ph.Name, ph.Kind, tenant, ph.Start, ph.End, state)
		if ph.Integrity > 0 {
			fmt.Fprintf(w, "  (%d corrupted payloads)", ph.Integrity)
		}
		fmt.Fprintln(w)
	}
	for _, res := range rep.Results {
		fmt.Fprintf(w, "  %s\n", res)
	}
	for _, e := range rep.ProcErrors {
		fmt.Fprintf(w, "  proc error: %s\n", e)
	}
	fmt.Fprintf(w, "  assertions: %d passed, %d failed\n", len(rep.Results)-rep.Failures(), rep.Failures())
}

// Runner holds the live state of one scenario run.
type Runner struct {
	sc     *Scenario
	cfg    Config
	world  *sim.World
	fabric *simnet.Fabric
	mpis   []*madmpi.MPI
	// collComms[phase index] is the dedicated communicator of a
	// collective phase, one per rank (dup'd in phase order everywhere,
	// so the communicator ids agree across the cluster).
	collComms map[int][]*madmpi.Comm
	phases    []*phaseRun
	// railCfg mirrors the live per-rail fault configuration, the base
	// mid-run set_faults / rail_outage events build on.
	railCfg   []simnet.RailFaults
	snapshots map[string]*Snapshot
	procErrs  []string
	// queue is the multi-tenant job queue (nil unless the scenario
	// declares tenants); phaseCond wakes queued-phase jobs whenever any
	// phase process finishes, so a job can block until its phase closes.
	queue     *queue.Queue
	phaseCond *sim.Cond
}

func (r *Runner) nodes() int { return r.fabric.Nodes() }

func (r *Runner) comm(rank int) *madmpi.Comm { return r.mpis[rank].CommWorld() }

func (r *Runner) collComm(phase, rank int) *madmpi.Comm { return r.collComms[phase][rank] }

// procErr records an engine-level error a phase process absorbed.
func (r *Runner) procErr(phase string, err error) {
	r.procErrs = append(r.procErrs, fmt.Sprintf("phase %s: %v", phase, err))
}

func (r *Runner) logf(format string, args ...any) {
	if r.cfg.Verbose != nil {
		fmt.Fprintf(r.cfg.Verbose, format+"\n", args...)
	}
}

// snapshot captures the observable state of the run right now.
func (r *Runner) snapshot() *Snapshot {
	s := &Snapshot{At: r.world.Now()}
	for _, m := range r.mpis {
		s.Stats = append(s.Stats, m.Engine().Stats())
	}
	for _, net := range r.fabric.Networks() {
		s.Faults = append(s.Faults, net.FaultStats())
	}
	return s
}

// Run executes one validated scenario and evaluates its assertions. The
// returned error wraps ErrAssertFailed when the run completed but an
// assertion did not hold; the Report is returned alongside either way.
func Run(sc *Scenario, cfg Config) (*Report, error) {
	if errs := Validate(sc); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	c := sc.Cluster

	host := simnet.DefaultHost()
	if c.MemcpyBW > 0 {
		host.MemcpyBandwidth = c.MemcpyBW
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, c.Nodes, host)
	for _, name := range c.Rails {
		prof, _ := simnet.ProfileByName(name)
		if _, err := f.AddNetwork(prof); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	r := &Runner{
		sc: sc, cfg: cfg, world: w, fabric: f,
		collComms: map[int][]*madmpi.Comm{},
		snapshots: map[string]*Snapshot{},
		railCfg:   make([]simnet.RailFaults, len(c.Rails)),
	}
	if c.Faults != nil {
		fp := simnet.FaultProfile{Seed: c.Faults.Seed}
		for _, rf := range c.Faults.Rails {
			fp.Rails = append(fp.Rails, rf.toRailFaults())
		}
		if err := f.SetFaults(fp); err != nil {
			return nil, fmt.Errorf("scenario %s: faults: %w", sc.Name, err)
		}
		copy(r.railCfg, fp.Rails)
	}

	opts := engineOptions(c.Engine)
	opts.Record = cfg.Record
	for node := 0; node < c.Nodes; node++ {
		m, err := madmpi.Init(f, simnet.NodeID(node), opts)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: node %d: %w", sc.Name, node, err)
		}
		r.mpis = append(r.mpis, m)
	}
	r.phaseCond = sim.NewCond(w)
	if len(sc.Tenants) > 0 {
		qnode := 0
		var qcfg queue.Config
		if sc.Queue != nil {
			qnode = sc.Queue.Node
			qcfg.Capacity = sc.Queue.Capacity
			qcfg.Workers = sc.Queue.Workers
			qcfg.Aging = sc.Queue.Aging
		}
		for _, t := range sc.Tenants {
			cls, _ := queue.ClassByName(t.Class) // Validate vetted the name
			qcfg.Tenants = append(qcfg.Tenants, queue.TenantSpec{
				Name: t.Name, Weight: t.Weight, Class: cls,
			})
		}
		q, err := queue.New(r.mpis[qnode].Engine(), qcfg)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: queue: %w", sc.Name, err)
		}
		r.queue = q
	}
	if cfg.Record != nil {
		cfg.Record.SetMeta("scenario", sc.Name)
		seed := uint64(0)
		if c.Faults != nil {
			seed = c.Faults.Seed
		}
		cfg.Record.SetMeta("seed", strconv.FormatUint(seed, 10))
	}

	// Dedicated communicators for collective phases, dup'd in phase
	// order on every rank so the ids match cluster-wide.
	for _, p := range sc.Phases {
		switch p.Kind {
		case PhaseBarrier, PhaseBcast, PhaseAllgather, PhaseAllreduce, PhaseAlltoall:
			comms := make([]*madmpi.Comm, c.Nodes)
			for rank := range comms {
				comms[rank] = r.mpis[rank].CommWorld().Dup()
			}
			r.collComms[p.index] = comms
		}
	}

	// The timeline: phases at their start instants, events at theirs.
	// Tenant-tagged phases on a multi-tenant run are submitted to the
	// queue at their instant instead; fair-share dispatch decides when
	// each actually starts. The job holds its worker slot until the
	// phase's last process finishes, so the queue's worker bound caps
	// concurrently running tenant phases.
	for _, p := range sc.Phases {
		pr := &phaseRun{spec: p}
		r.phases = append(r.phases, pr)
		w.At(p.At, func() {
			if r.queue != nil && pr.spec.Tenant != "" {
				r.logf("%v: phase %s (%s) submitted for tenant %s", w.Now(), pr.spec.Name, pr.spec.Kind, pr.spec.Tenant)
				_, err := r.queue.Submit(pr.spec.Tenant, pr.spec.Name, func(q *sim.Proc) error {
					r.logf("%v: phase %s (%s) dispatched", q.Now(), pr.spec.Name, pr.spec.Kind)
					r.startPhase(pr)
					for !pr.done {
						r.phaseCond.Wait(q)
					}
					return nil
				})
				if err != nil {
					r.procErr(pr.spec.Name, err)
				}
				return
			}
			r.logf("%v: phase %s (%s) starts", w.Now(), pr.spec.Name, pr.spec.Kind)
			r.startPhase(pr)
		})
	}
	for _, e := range sc.Events {
		e := e
		w.At(e.At, func() { r.fireEvent(e) })
	}

	runErr := w.Run()

	rep := &Report{Scenario: sc.Name, Drained: w.Now()}
	for _, pr := range r.phases {
		rep.Phases = append(rep.Phases, PhaseReport{
			Name: pr.spec.Name, Kind: pr.spec.Kind, Tenant: pr.spec.Tenant,
			Start: pr.start, End: pr.end, Done: pr.done, Integrity: pr.integrity,
		})
		if pr.done && pr.end > rep.Completion {
			rep.Completion = pr.end
		}
	}
	final := r.snapshot()
	rep.Stats = final.Stats
	rep.Faults = final.Faults
	rep.ProcErrors = r.procErrs
	if runErr != nil {
		return rep, fmt.Errorf("scenario %s: %w", sc.Name, runErr)
	}

	ctx := &evalContext{
		snapshots: r.snapshots,
		phases:    map[string]*phaseRun{},
		runEnd:    rep.Completion,
	}
	ctx.snapshots["end"] = final
	for _, pr := range r.phases {
		ctx.phases[pr.spec.Name] = pr
		ctx.integrity += pr.integrity
	}
	for _, a := range sc.Assertions {
		rep.Results = append(rep.Results, ctx.eval(a))
	}
	// Phases that never completed fail the run even without an explicit
	// assertion — a scenario whose workload hangs is broken.
	incomplete := 0
	for _, pr := range r.phases {
		if !pr.done {
			incomplete++
		}
	}
	if n := rep.Failures(); n > 0 || incomplete > 0 || len(r.procErrs) > 0 {
		return rep, fmt.Errorf("scenario %s: %d assertion(s) failed, %d phase(s) incomplete, %d proc error(s): %w",
			sc.Name, n, incomplete, len(r.procErrs), ErrAssertFailed)
	}
	return rep, nil
}

// fireEvent applies one mid-run intervention. Runs in scheduler context
// at the event's instant.
func (r *Runner) fireEvent(e EventSpec) {
	r.logf("%v: event %s", r.world.Now(), e.Action)
	switch e.Action {
	case ActionDegradeRail:
		r.fabric.Networks()[e.Rail].SetWireScale(e.Scale)
	case ActionRestoreRail:
		r.fabric.Networks()[e.Rail].SetWireScale(1)
	case ActionSetFaults:
		cfg := r.railCfg[e.Rail]
		cfg.DropProb, cfg.DupProb, cfg.ReorderProb = e.Drop, e.Dup, e.Reorder
		r.updateRail(e.Rail, cfg)
	case ActionRailOutage:
		cfg := r.railCfg[e.Rail]
		cfg.Outages = append(append([]simnet.Outage(nil), cfg.Outages...),
			simnet.Outage{At: r.world.Now(), Duration: e.Duration})
		r.updateRail(e.Rail, cfg)
	case ActionSlowNode:
		r.fabric.Node(simnet.NodeID(e.Node)).SetSlowdown(e.Factor)
	case ActionRestoreNode:
		r.fabric.Node(simnet.NodeID(e.Node)).SetSlowdown(1)
	case ActionSqueezeCredits:
		eng := r.mpis[e.Node].Engine()
		eng.FreezeCredits(true)
		r.world.After(e.Duration, func() {
			r.logf("%v: event squeeze_credits on node %d released", r.world.Now(), e.Node)
			eng.FreezeCredits(false)
		})
	case ActionCheckpoint:
		r.snapshots[e.Name] = r.snapshot()
	}
}

// updateRail pushes a new rail fault configuration and keeps the mirror
// in sync.
func (r *Runner) updateRail(rail int, cfg simnet.RailFaults) {
	if err := r.fabric.UpdateRailFaults(rail, cfg); err != nil {
		// Validate bounds every event parameter before the run; an
		// error here is a harness bug, not a scenario bug.
		panic(fmt.Sprintf("scenario: UpdateRailFaults: %v", err))
	}
	r.railCfg[rail] = cfg
}

// engineOptions maps the declarative engine personality onto
// core.Options.
func engineOptions(e EngineSpec) core.Options {
	opts := core.DefaultOptions()
	if e.Strategy != "" {
		opts.Strategy = e.Strategy
	}
	if e.Credits > 0 {
		opts.Credits = e.Credits
	}
	if e.MaxGrants > 0 {
		opts.MaxGrants = e.MaxGrants
	}
	opts.Reliability = e.Reliability
	if e.RetransmitTimeout > 0 {
		opts.RetransmitTimeout = e.RetransmitTimeout
	}
	if e.RetransmitBudget > 0 {
		opts.RetransmitBudget = e.RetransmitBudget
	}
	if e.ProbeBudget > 0 {
		opts.ProbeBudget = e.ProbeBudget
	}
	if e.Anticipate {
		opts.Anticipate = true
	}
	if e.FlushBacklog > 0 {
		opts.FlushBacklog = e.FlushBacklog
	}
	if e.BodyChunk > 0 {
		opts.BodyChunk = e.BodyChunk
	}
	return opts
}

// ListDir loads every *.yaml scenario in a directory, in name order.
// Parse or validation failures are returned per-file; readable
// scenarios still come back.
func ListDir(dir string) ([]*Scenario, map[string]error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, map[string]error{dir: err}
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if n := ent.Name(); len(n) > 5 && n[len(n)-5:] == ".yaml" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []*Scenario
	bad := map[string]error{}
	for _, n := range names {
		sc, err := Load(dir + "/" + n)
		if err != nil {
			bad[n] = err
			continue
		}
		out = append(out, sc)
	}
	if len(bad) == 0 {
		bad = nil
	}
	return out, bad
}
