package scenario

import (
	"fmt"
	"strconv"

	"nmad/internal/queue"
	"nmad/internal/simnet"
	"nmad/sched"
)

// Validate runs every semantic check over a parsed scenario and returns
// ALL violations, not just the first — `nmad-sim validate` reports the
// whole damage of a file in one pass. Each returned error wraps one of
// the package sentinels (ErrBadValue, ErrUnknownPhase, ErrUnknownAction,
// ErrUnknownAssert, ErrBadTarget, ErrPhaseOverlap, ErrUnknownCheckpoint).
func Validate(sc *Scenario) []error {
	var errs []error
	bad := func(base error, format string, args ...any) {
		errs = append(errs, fmt.Errorf("%w: %s", base, fmt.Sprintf(format, args...)))
	}

	c := sc.Cluster
	if c.Nodes < 2 {
		bad(ErrBadValue, "cluster.nodes: need at least 2 nodes, got %d", c.Nodes)
	}
	if len(c.Rails) == 0 {
		bad(ErrBadValue, "cluster.rails: need at least one rail")
	}
	for i, name := range c.Rails {
		if _, ok := simnet.ProfileByName(name); !ok {
			bad(ErrBadValue, "cluster.rails[%d]: unknown profile %q (known: mx10g, qsnet2, gm2000, sisci, tcp)", i, name)
		}
	}
	if c.MemcpyBW < 0 {
		bad(ErrBadValue, "cluster.host.memcpy_bw: must be positive, got %v", c.MemcpyBW)
	}
	if s := c.Engine.Strategy; s != "" {
		known := false
		for _, n := range sched.Names() {
			if n == s {
				known = true
				break
			}
		}
		if !known {
			bad(ErrBadValue, "cluster.engine.strategy: unknown strategy %q (known: %v)", s, sched.Names())
		}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"credits", c.Engine.Credits},
		{"max_grants", c.Engine.MaxGrants},
		{"retransmit_budget", c.Engine.RetransmitBudget},
		{"probe_budget", c.Engine.ProbeBudget},
		{"flush_backlog", c.Engine.FlushBacklog},
		{"body_chunk", c.Engine.BodyChunk},
	} {
		if f.v < 0 {
			bad(ErrBadValue, "cluster.engine.%s: must be >= 0, got %d", f.name, f.v)
		}
	}
	if c.Faults != nil {
		if len(c.Faults.Rails) > len(c.Rails) {
			bad(ErrBadTarget, "cluster.faults.rails: %d fault entries on a %d-rail cluster",
				len(c.Faults.Rails), len(c.Rails))
		}
		for i, r := range c.Faults.Rails {
			for _, p := range []struct {
				name string
				v    float64
			}{{"drop", r.Drop}, {"dup", r.Dup}, {"reorder", r.Reorder}} {
				if p.v < 0 || p.v > 1 {
					bad(ErrBadValue, "cluster.faults.rails[%d].%s: probability %v outside [0,1]", i, p.name, p.v)
				}
			}
			for j, o := range r.Outages {
				if o.Duration < 0 {
					bad(ErrBadValue, "cluster.faults.rails[%d].outages[%d]: negative duration", i, j)
				}
			}
		}
	}

	node := func(path string, id int) {
		if id < 0 || id >= c.Nodes {
			bad(ErrBadTarget, "%s: node %d outside the %d-node cluster", path, id, c.Nodes)
		}
	}
	rail := func(path string, id int) {
		if id < 0 || id >= len(c.Rails) {
			bad(ErrBadTarget, "%s: rail %d outside the %d-rail cluster", path, id, len(c.Rails))
		}
	}

	tenants := map[string]int{}
	for i, t := range sc.Tenants {
		path := fmt.Sprintf("tenants[%d] (%s)", i, t.Name)
		if t.Name == "" {
			bad(ErrBadValue, "%s: a tenant needs a name", path)
		} else if prev, dup := tenants[t.Name]; dup {
			bad(ErrBadValue, "%s: name already used by tenants[%d]", path, prev)
		}
		tenants[t.Name] = i
		if t.Weight < 1 {
			bad(ErrBadValue, "%s: weight must be >= 1, got %d", path, t.Weight)
		}
		if _, ok := queue.ClassByName(t.Class); !ok {
			bad(ErrBadValue, "%s: unknown class %q (known: bulk, normal, latency)", path, t.Class)
		}
	}
	if sc.Queue != nil {
		if len(sc.Tenants) == 0 {
			bad(ErrBadValue, "queue: a queue block needs a tenants block to serve")
		}
		node("queue.node", sc.Queue.Node)
		if sc.Queue.Capacity < 0 || sc.Queue.Workers < 0 {
			bad(ErrBadValue, "queue: capacity and workers must be >= 0")
		}
	}

	if len(sc.Phases) == 0 {
		bad(ErrBadValue, "phases: a scenario needs at least one phase")
	}
	names := map[string]int{}
	for i, p := range sc.Phases {
		path := fmt.Sprintf("phases[%d] (%s)", i, p.Name)
		if prev, dup := names[p.Name]; dup {
			bad(ErrPhaseOverlap, "%s: name already used by phases[%d]", path, prev)
		}
		names[p.Name] = i
		if i > 0 && p.At <= sc.Phases[i-1].At {
			bad(ErrPhaseOverlap,
				"%s: starts at %v, not after phases[%d] (%s) at %v — declare phases in strictly increasing start order",
				path, p.At, i-1, sc.Phases[i-1].Name, sc.Phases[i-1].At)
		}
		for j, n := range p.Nodes {
			node(fmt.Sprintf("%s.nodes[%d]", path, j), n)
		}
		if p.Size < 0 || p.Msgs < 0 || p.Count < 1 {
			bad(ErrBadValue, "%s: size/msgs must be >= 0 and count >= 1", path)
		}
		// Without a tenants block the tenant key is a free-form report
		// label; with one, it routes the phase through the job queue and
		// must resolve.
		if len(sc.Tenants) > 0 && p.Tenant != "" {
			if _, ok := tenants[p.Tenant]; !ok {
				bad(ErrBadTarget, "%s: no tenant named %q", path, p.Tenant)
			}
		}
		switch p.Kind {
		case PhasePingPong:
			if len(p.Nodes) != 2 {
				bad(ErrBadValue, "%s: pingpong needs exactly 2 nodes, got %d", path, len(p.Nodes))
			} else if p.Nodes[0] == p.Nodes[1] {
				bad(ErrBadValue, "%s: pingpong peers must differ", path)
			}
		case PhaseRing:
			if n := len(p.Nodes); n != 0 && n < 2 {
				bad(ErrBadValue, "%s: a ring needs at least 2 members", path)
			}
		case PhaseIncast:
			node(path+".target", p.Target)
			for j, s := range p.Senders {
				spath := fmt.Sprintf("%s.senders[%d]", path, j)
				node(spath, s)
				if s == p.Target {
					bad(ErrBadValue, "%s: the incast target cannot send to itself", spath)
				}
			}
		case PhaseComposite:
			if len(p.Nodes) != 2 {
				bad(ErrBadValue, "%s: composite needs exactly 2 nodes, got %d", path, len(p.Nodes))
			} else if p.Nodes[0] == p.Nodes[1] {
				bad(ErrBadValue, "%s: composite peers must differ", path)
			}
		case PhaseBarrier, PhaseAllgather, PhaseAllreduce, PhaseAlltoall:
			if len(p.Nodes) != 0 {
				bad(ErrBadValue, "%s: collectives span every node; drop the nodes field", path)
			}
		case PhaseBcast:
			node(path+".root", p.Root)
			if len(p.Nodes) != 0 {
				bad(ErrBadValue, "%s: collectives span every node; drop the nodes field", path)
			}
		case "":
			bad(ErrUnknownPhase, "%s: missing kind", path)
		default:
			bad(ErrUnknownPhase, "%s: %q (known: pingpong, ring, incast, composite, barrier, bcast, allgather, allreduce, alltoall)",
				path, p.Kind)
		}
	}

	checkpoints := map[string]bool{}
	for i, e := range sc.Events {
		path := fmt.Sprintf("events[%d] (%s at %v)", i, e.Action, e.At)
		switch e.Action {
		case ActionDegradeRail:
			rail(path, e.Rail)
			if e.Scale <= 0 || e.Scale > 1 {
				bad(ErrBadValue, "%s: scale %v outside (0,1]", path, e.Scale)
			}
		case ActionRestoreRail:
			rail(path, e.Rail)
		case ActionSetFaults:
			rail(path, e.Rail)
			for _, p := range []struct {
				name string
				v    float64
			}{{"drop", e.Drop}, {"dup", e.Dup}, {"reorder", e.Reorder}} {
				if p.v < 0 || p.v > 1 {
					bad(ErrBadValue, "%s: %s probability %v outside [0,1]", path, p.name, p.v)
				}
			}
		case ActionRailOutage:
			rail(path, e.Rail)
			if e.Duration < 0 {
				bad(ErrBadValue, "%s: negative duration", path)
			}
		case ActionSlowNode:
			node(path, e.Node)
			if e.Factor < 1 {
				bad(ErrBadValue, "%s: factor %v must be >= 1", path, e.Factor)
			}
		case ActionRestoreNode:
			node(path, e.Node)
		case ActionSqueezeCredits:
			node(path, e.Node)
			if e.Duration <= 0 {
				bad(ErrBadValue, "%s: squeeze_credits needs a positive duration (a permanent squeeze deadlocks the run)", path)
			}
		case ActionCheckpoint:
			if e.Name == "" {
				bad(ErrBadValue, "%s: a checkpoint needs a name", path)
			} else if checkpoints[e.Name] {
				bad(ErrBadValue, "%s: duplicate checkpoint %q", path, e.Name)
			}
			checkpoints[e.Name] = true
		case "":
			bad(ErrUnknownAction, "%s: missing action", path)
		default:
			bad(ErrUnknownAction,
				"%s: %q (known: degrade_rail, restore_rail, set_faults, rail_outage, slow_node, restore_node, squeeze_credits, checkpoint)",
				path, e.Action)
		}
	}

	for i, a := range sc.Assertions {
		path := fmt.Sprintf("assertions[%d] (%s)", i, a.label())
		if a.At != "" && a.At != "end" && !checkpoints[a.At] {
			bad(ErrUnknownCheckpoint, "%s: no checkpoint event declares %q", path, a.At)
		}
		checkOp := func() {
			switch a.Op {
			case "<", "<=", ">", ">=", "==", "!=":
			case "":
				bad(ErrBadValue, "%s: missing op", path)
			default:
				bad(ErrBadValue, "%s: unknown op %q (want < <= > >= == !=)", path, a.Op)
			}
		}
		switch a.Type {
		case AssertStats:
			if _, ok := statsFields[a.Field]; !ok {
				bad(ErrBadValue, "%s: unknown stats field %q (known: %v)", path, a.Field, statsFieldNames())
			}
			switch a.Node {
			case "", "sum", "max", "all":
			default:
				id, err := parseID(a.Node)
				if err != nil {
					bad(ErrBadValue, "%s: node selector %q (want a node id, sum, max or all)", path, a.Node)
				} else {
					node(path+".node", id)
				}
			}
			checkOp()
		case AssertFaults:
			if _, ok := faultFields[a.Field]; !ok {
				bad(ErrBadValue, "%s: unknown faults field %q (known: %v)", path, a.Field, faultFieldNames())
			}
			switch a.Rail {
			case "", "sum":
			default:
				id, err := parseID(a.Rail)
				if err != nil {
					bad(ErrBadValue, "%s: rail selector %q (want a rail id or sum)", path, a.Rail)
				} else {
					rail(path+".rail", id)
				}
			}
			checkOp()
		case AssertCompletion:
			if a.Phase != "" {
				if _, ok := names[a.Phase]; !ok {
					bad(ErrBadTarget, "%s: no phase named %q", path, a.Phase)
				}
			}
			if a.Max == 0 && a.Min == 0 {
				bad(ErrBadValue, "%s: a completion assertion needs max and/or min", path)
			}
			if a.Max > 0 && a.Min > a.Max {
				bad(ErrBadValue, "%s: min %v exceeds max %v", path, a.Min, a.Max)
			}
		case AssertIntegrity:
			// No parameters: every phase verifies its payloads; the
			// assertion demands zero corruption.
		case AssertPhaseOrder:
			for _, ref := range []struct{ field, name string }{{"before", a.Before}, {"after", a.After}} {
				if ref.name == "" {
					bad(ErrBadValue, "%s: missing %s phase", path, ref.field)
				} else if _, ok := names[ref.name]; !ok {
					bad(ErrBadTarget, "%s: no phase named %q", path, ref.name)
				}
			}
		case "":
			bad(ErrUnknownAssert, "%s: missing type", path)
		default:
			bad(ErrUnknownAssert, "%s: %q (known: stats, faults, completion, integrity, phase_order)", path, a.Type)
		}
	}
	return errs
}

func parseID(s string) (int, error) {
	return strconv.Atoi(s)
}
