// Package scenario is the declarative scenario harness: it loads a
// YAML description of a cluster experiment — the machine, a timeline of
// workload phases, mid-run interventions, and assertions — and runs it
// on the simulated optimizer, reporting which assertions held.
//
// A scenario file has up to seven sections — name, description,
// cluster, tenants (with its queue sibling), phases, events and
// assertions:
//
//	name: midrun-failover
//	description: traffic survives a rail outage at 1% drop
//	cluster:
//	  nodes: 4
//	  rails: [mx10g, tcp]          # simnet profiles, in rail order
//	  engine:                      # the per-node personality
//	    strategy: aggreg
//	    reliability: true
//	    credits: 16
//	  faults:                      # lossy fabric from time zero
//	    seed: 42
//	    rails:
//	      - drop: 0.01
//	phases:                        # the workload timeline
//	  - name: storm
//	    kind: incast
//	    at: 100us
//	    target: 0
//	    msgs: 32
//	    size: 2048
//	events:                        # mid-run interventions
//	  - at: 300us
//	    action: rail_outage
//	    rail: 0
//	    duration: 150us
//	  - at: 600us
//	    action: checkpoint
//	    name: after-outage
//	assertions:
//	  - type: integrity            # every payload verified
//	  - type: stats
//	    field: retransmits
//	    op: ">"
//	    value: 0
//	  - type: completion
//	    max: 20ms
//
// Phase kinds: pingpong, ring, incast, composite (bulk + urgent control
// on one gate), barrier, bcast, allgather, allreduce, alltoall. Every
// payload carries a deterministic fill pattern that the receiver
// verifies; corruption is counted and surfaced through the `integrity`
// assertion. Phases are declared in strictly increasing start order but
// may overlap in flight — that is how bursty multi-phase scenarios are
// built.
//
// A top-level tenants list declares multi-tenant workloads:
//
//	tenants:
//	  - name: interactive
//	    weight: 4
//	    class: latency             # bulk | normal | latency
//	  - name: batch                # weight defaults to 1, class to normal
//	queue:                         # optional; defaults apply when absent
//	  node: 0                      # which node hosts the queue
//	  capacity: 8
//	  workers: 1
//	  aging: 2ms
//
// When a tenants list is present, every phase tagged `tenant: <name>`
// is submitted through a job queue (package queue) on the chosen node
// instead of spawning at its start time: its `at` becomes the submit
// instant, and dispatch order follows the tenants' weighted fair
// share, classes and aging. The queue's counters (jobs_admitted,
// jobs_rejected, jobs_dispatched, jobs_completed, jobs_aged,
// peak_queue_depth, peak_job_wait) land in core.Stats and are
// assertable like any other field. Without a tenants list, `tenant`
// stays a report-only label.
//
// Event actions: degrade_rail / restore_rail (wire-speed scaling),
// set_faults (new drop/dup/reorder probabilities, preserving the seeded
// RNG stream), rail_outage (a death window starting now), slow_node /
// restore_node (host memcpy slowdown), squeeze_credits (freeze credit
// replenishment on one node for a bounded window), checkpoint (snapshot
// the counters under a name assertions can anchor at).
//
// Assertion types: stats (core.Stats fields, selector sum/max/all or a
// node id), faults (simnet.FaultStats per rail or summed), completion
// (virtual-time bounds on a phase or the whole run), integrity,
// phase_order (one phase must finish no later than another).
//
// Everything is virtual-time and seeded, so a scenario run is
// byte-deterministic: the same file produces the same report, counters
// included, on every run. Config.Record captures the offered load in
// the trace.Recording format, stamped with the scenario name and seed,
// replayable through package replay.
//
// The package deliberately parses only a YAML subset (see yaml.go) so
// the repository needs no YAML dependency; files using unsupported
// constructs fail with ErrSyntax. All parse and validation failures
// wrap the sentinel errors in errors.go, so `nmad-sim validate` can
// classify every mistake in a file.
package scenario
