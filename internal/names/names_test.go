package names

import "testing"

func TestSnake(t *testing.T) {
	cases := map[string]string{
		"Submitted":           "submitted",
		"OutputPackets":       "output_packets",
		"MaxEntriesPerPacket": "max_entries_per_packet",
		"RdvStarted":          "rdv_started",
		"DupAcks":             "dup_acks",
		"CtrlPiggybacked":     "ctrl_piggybacked",
		"WireBytes":           "wire_bytes",
		"RDMABytes":           "rdma_bytes",
		"AggregationRatio":    "aggregation_ratio",
		"OutageDropped":       "outage_dropped",
		"X":                   "x",
		"":                    "",
	}
	for in, want := range cases {
		if got := Snake(in); got != want {
			t.Errorf("Snake(%q) = %q, want %q", in, got, want)
		}
	}
}
