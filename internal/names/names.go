// Package names holds the one true Go-identifier → snake_case mapping
// used to name engine counters in scenario assertions. The scenario
// package derives its assertion-field tables under this rule and the
// nmad-vet statssync analyzer re-derives the expected names from the
// struct definitions with the same function, so the rule cannot drift
// between the two sides.
package names

import "strings"

// Snake converts an exported Go identifier to its snake_case assertion
// name: word boundaries open before an upper-case letter that follows a
// lower-case letter or digit ("OutputPackets" → "output_packets"), and
// before the last upper-case letter of an acronym run that is followed
// by a lower-case letter ("RDMABytes" → "rdma_bytes").
func Snake(ident string) string {
	var b strings.Builder
	runes := []rune(ident)
	for i, r := range runes {
		if isUpper(r) {
			boundary := false
			if i > 0 && !isUpper(runes[i-1]) {
				boundary = true // aB → a_b
			} else if i > 0 && i+1 < len(runes) && isUpper(runes[i-1]) && !isUpper(runes[i+1]) {
				boundary = true // ABc → a_bc (end of acronym run)
			}
			if boundary {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func isUpper(r rune) bool { return r >= 'A' && r <= 'Z' }
