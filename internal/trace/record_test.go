package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nmad/internal/simnet"
)

func TestRecordingTopologyRegistration(t *testing.T) {
	rec := NewRecording()
	hdr := rec.Header()
	if hdr.Format != RecordingFormat || hdr.Version != RecordingVersion {
		t.Fatalf("fresh recording header %+v", hdr)
	}
	rails := []simnet.Profile{simnet.MX10G(), simnet.QsNetII()}
	rec.RegisterTopology(4, rails, simnet.DefaultHost())
	// First registration wins; a second (same fabric, next engine) is a
	// no-op.
	rec.RegisterTopology(2, rails[:1], simnet.Host{MemcpyBandwidth: 1})
	hdr = rec.Header()
	if hdr.Nodes != 4 || len(hdr.Rails) != 2 || hdr.Rails[0].Name != "mx10g" {
		t.Errorf("topology after double registration: %+v", hdr)
	}
	rec.RegisterEngine(5, NodeConfig{Strategy: "aggreg"})
	if rec.Header().Nodes != 6 {
		t.Errorf("RegisterEngine(5) did not grow nodes: %d", rec.Header().Nodes)
	}
	rec.RecordOp(Op{Node: 2, Peer: 7, Kind: OpSend, Segs: []int{1}})
	if rec.Header().Nodes != 8 {
		t.Errorf("RecordOp peer 7 did not grow nodes: %d", rec.Header().Nodes)
	}
}

func TestRecordingNilSafety(t *testing.T) {
	var rec *Recording
	rec.RecordOp(Op{Kind: OpSend})
	rec.RegisterEngine(0, NodeConfig{})
	rec.RegisterTopology(1, nil, simnet.Host{})
	if rec.Len() != 0 {
		t.Error("nil recording has length")
	}
}

func TestReadRecordingErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"wrong format":   `{"format":"chrome-trace","version":1}` + "\n",
		"version zero":   `{"format":"nmad-recording","version":0}` + "\n",
		"future version": `{"format":"nmad-recording","version":2}` + "\n",
		"unknown op":     `{"format":"nmad-recording","version":1,"nodes":2}` + "\n" + `{"op":"warp","node":0,"peer":1}` + "\n",
		"corrupt op":     `{"format":"nmad-recording","version":1,"nodes":2}` + "\n" + `{"op":` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadRecording(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRecordingWriteReadEmptyOps(t *testing.T) {
	rec := NewRecording()
	rec.RegisterTopology(2, []simnet.Profile{simnet.MX10G()}, simnet.DefaultHost())
	rec.RegisterEngine(0, NodeConfig{Strategy: "aggreg", SubmitOverhead: 150, ScheduleOverhead: 150})
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Header(), back.Header()) {
		t.Errorf("header round-trip:\n got %+v\nwant %+v", back.Header(), rec.Header())
	}
	if back.Len() != 0 {
		t.Errorf("ops appeared from nowhere: %d", back.Len())
	}
}
