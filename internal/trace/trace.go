// Package trace records the engine's scheduling decisions on the virtual
// timeline: wrapper submissions, elections, physical packet departures,
// deliveries and rendezvous transitions. It exists to make the optimizer
// observable — the aggregated-packet trains and piggybacked control
// entries of the paper are directly visible in a dump — and to debug
// strategies.
//
// Recording is opt-in (core.Options.Tracer); a nil recorder costs one
// pointer test per event site.
package trace

import (
	"fmt"
	"io"
	"strings"

	"nmad/internal/sim"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// Submit: a packet wrapper entered the collect layer.
	Submit Kind = iota
	// Elect: the strategy synthesized an output packet for a rail.
	Elect
	// Depart: the transfer layer accepted an output packet.
	Depart
	// Arrive: a physical packet was delivered by a rail.
	Arrive
	// Deliver: one wrapper was matched to a posted receive.
	Deliver
	// Unexpected: a wrapper arrived before its receive was posted.
	Unexpected
	// RdvStart: a data wrapper was converted to a rendezvous request.
	RdvStart
	// RdvGrant: the receiver granted a rendezvous (CTS sent).
	RdvGrant
	// RdvBody: a rendezvous body fragment was placed.
	RdvBody
	// Complete: a request completed.
	Complete
	// ProtoError: a receive-path protocol anomaly was counted and
	// dropped instead of crashing the node.
	ProtoError
	// Retransmit: the reliability layer re-sent an unacknowledged frame
	// (or re-issued a rendezvous body span).
	Retransmit
	// RailEvent: a rail changed liveness (Note: "failed" / "recovered").
	RailEvent
	nKinds
)

var kindNames = [nKinds]string{
	"submit", "elect", "depart", "arrive", "deliver",
	"unexpected", "rdv-start", "rdv-grant", "rdv-body", "complete",
	"proto-error", "retransmit", "rail-event",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one recorded engine action.
type Event struct {
	At   sim.Time
	Kind Kind
	// Node is the engine's node id.
	Node int
	// Peer is the remote node, -1 when not applicable.
	Peer int
	// Tag is the flow tag, 0 when not applicable.
	Tag uint64
	// Bytes is the payload size involved.
	Bytes int
	// Rail is the driver index, -1 when not applicable.
	Rail int
	// Entries is the wrapper count of an output packet (Elect/Depart).
	Entries int
	// Note carries free-form detail.
	Note string
}

// recorderBlock is the unbounded recorder's block capacity: full blocks
// are never copied again, so recording amortizes to one allocation per
// recorderBlock events instead of the doubling-growth copies of a single
// slice (a long replay records millions of events; the copies were a
// measurable slice of engine time).
const recorderBlock = 4096

// Recorder accumulates events, optionally as a bounded ring.
type Recorder struct {
	blocks [][]Event // unbounded mode: fixed-capacity blocks
	events []Event   // ring mode (limit > 0)
	limit  int       // 0 = unbounded
	start  int       // ring head when limit > 0
	total  int
	counts [nKinds]int
}

// NewRecorder returns an unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewRingRecorder keeps only the most recent limit events (the counters
// still cover everything).
func NewRingRecorder(limit int) *Recorder {
	if limit <= 0 {
		panic("trace: ring limit must be positive")
	}
	return &Recorder{limit: limit}
}

// Record appends one event. Safe to call on a nil recorder.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.total++
	if int(ev.Kind) < len(r.counts) {
		r.counts[ev.Kind]++
	}
	if r.limit > 0 {
		if len(r.events) == r.limit {
			r.events[r.start] = ev
			r.start = (r.start + 1) % r.limit
			return
		}
		r.events = append(r.events, ev)
		return
	}
	n := len(r.blocks)
	if n == 0 || len(r.blocks[n-1]) == recorderBlock {
		r.blocks = append(r.blocks, make([]Event, 0, recorderBlock))
		n++
	}
	r.blocks[n-1] = append(r.blocks[n-1], ev)
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.limit == 0 {
		out := make([]Event, 0, r.total)
		for _, b := range r.blocks {
			out = append(out, b...)
		}
		return out
	}
	if r.start == 0 {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Total reports how many events were recorded (including evicted ones).
func (r *Recorder) Total() int {
	if r == nil {
		return 0
	}
	return r.total
}

// Count reports how many events of one kind were recorded.
func (r *Recorder) Count(k Kind) int {
	if r == nil || int(k) >= len(r.counts) {
		return 0
	}
	return r.counts[k]
}

// Filter returns the retained events of one kind.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Dump writes a readable timeline.
func (r *Recorder) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders one event as a timeline line.
func (ev Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v  node%d  %-10s", ev.At, ev.Node, ev.Kind)
	if ev.Peer >= 0 {
		fmt.Fprintf(&b, " peer=%d", ev.Peer)
	}
	if ev.Rail >= 0 {
		fmt.Fprintf(&b, " rail=%d", ev.Rail)
	}
	if ev.Tag != 0 {
		fmt.Fprintf(&b, " tag=%#x", ev.Tag)
	}
	if ev.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", ev.Bytes)
	}
	if ev.Entries > 0 {
		fmt.Fprintf(&b, " entries=%d", ev.Entries)
	}
	if ev.Note != "" {
		fmt.Fprintf(&b, "  (%s)", ev.Note)
	}
	return b.String()
}

// Summary formats the per-kind counters.
func (r *Recorder) Summary() string {
	if r == nil {
		return "trace: disabled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events", r.total)
	for k := Kind(0); k < nKinds; k++ {
		if r.counts[k] > 0 {
			fmt.Fprintf(&b, "  %s=%d", k, r.counts[k])
		}
	}
	return b.String()
}
