package trace

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: load the output of WriteChrome in
// chrome://tracing or Perfetto to see each node's scheduling activity as
// instant events on the virtual timeline, one track per (node, rail).

// chromeEvent is the trace-event JSON schema (instant events, "i" phase).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`  // microseconds
	Pid   int            `json:"pid"` // node
	Tid   int            `json:"tid"` // rail + 1 (0 = engine-level)
	Scope string         `json:"s"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome emits the retained events as a Chrome trace-event array.
func (r *Recorder) WriteChrome(w io.Writer) error {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		ce := chromeEvent{
			Name:  ev.Kind.String(),
			Phase: "i",
			Ts:    ev.At.Microseconds(),
			Pid:   ev.Node,
			Tid:   ev.Rail + 1,
			Scope: "t",
			Args:  map[string]any{},
		}
		if ev.Peer >= 0 {
			ce.Args["peer"] = ev.Peer
		}
		if ev.Bytes > 0 {
			ce.Args["bytes"] = ev.Bytes
		}
		if ev.Entries > 0 {
			ce.Args["entries"] = ev.Entries
		}
		if ev.Tag != 0 {
			ce.Args["tag"] = ev.Tag
		}
		if ev.Note != "" {
			ce.Args["note"] = ev.Note
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
