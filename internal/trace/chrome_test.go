package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"nmad/internal/sim"
)

// sampleEvents is a small timeline spanning two nodes, three rails and
// engine-level (rail -1) events, deliberately recorded in the order the
// engine would emit them.
func sampleEvents() []Event {
	return []Event{
		{At: 0, Kind: Submit, Node: 0, Peer: 1, Rail: -1, Tag: 3, Bytes: 128},
		{At: 150 * sim.Nanosecond, Kind: Submit, Node: 0, Peer: 1, Rail: -1, Tag: 4, Bytes: 256},
		{At: 300 * sim.Nanosecond, Kind: Elect, Node: 0, Peer: 1, Rail: 0, Bytes: 432, Entries: 2, Note: "aggreg"},
		{At: 500 * sim.Nanosecond, Kind: Depart, Node: 0, Peer: 1, Rail: 1, Bytes: 384, Entries: 2},
		{At: 2 * sim.Microsecond, Kind: Arrive, Node: 1, Peer: 0, Rail: 2, Bytes: 384},
		{At: 2100 * sim.Nanosecond, Kind: Deliver, Node: 1, Peer: 0, Rail: -1, Tag: 3, Bytes: 128},
	}
}

func writeChrome(t *testing.T, evs []Event) []chromeEvent {
	t.Helper()
	r := NewRecorder()
	for _, ev := range evs {
		r.Record(ev)
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var out []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteChrome emitted invalid JSON: %v\n%s", err, buf.String())
	}
	return out
}

// The export must be a valid JSON trace-event array that round-trips,
// one output event per recorded event, in recorder order.
func TestWriteChromeRoundTripAndOrdering(t *testing.T) {
	evs := sampleEvents()
	out := writeChrome(t, evs)
	if len(out) != len(evs) {
		t.Fatalf("exported %d events, recorded %d", len(out), len(evs))
	}
	for i, ce := range out {
		ev := evs[i]
		if ce.Name != ev.Kind.String() {
			t.Errorf("event %d: name %q, want kind %q", i, ce.Name, ev.Kind)
		}
		if ce.Phase != "i" || ce.Scope != "t" {
			t.Errorf("event %d: phase/scope %q/%q, want instant/thread", i, ce.Phase, ce.Scope)
		}
		if want := ev.At.Microseconds(); ce.Ts != want {
			t.Errorf("event %d: ts %v µs, want %v", i, ce.Ts, want)
		}
		if i > 0 && out[i].Pid == out[i-1].Pid && out[i].Ts < out[i-1].Ts {
			t.Errorf("event %d: ts went backwards within node %d (%v after %v)",
				i, ce.Pid, ce.Ts, out[i-1].Ts)
		}
	}
}

// pid is the node, tid is rail+1 so engine-level events (rail -1) land
// on track 0 and rail k on track k+1.
func TestWriteChromePidTidMapping(t *testing.T) {
	out := writeChrome(t, sampleEvents())
	for i, ev := range sampleEvents() {
		if out[i].Pid != ev.Node {
			t.Errorf("event %d: pid %d, want node %d", i, out[i].Pid, ev.Node)
		}
		if want := ev.Rail + 1; out[i].Tid != want {
			t.Errorf("event %d: tid %d, want rail+1 = %d", i, out[i].Tid, want)
		}
	}
}

// Args carry only the fields the event actually set: absent peers,
// zero sizes and empty notes must not clutter the export.
func TestWriteChromeArgs(t *testing.T) {
	out := writeChrome(t, sampleEvents())
	elect := out[2]
	for key, want := range map[string]float64{"peer": 1, "bytes": 432, "entries": 2} {
		got, ok := elect.Args[key].(float64)
		if !ok || got != want {
			t.Errorf("elect args[%q] = %v, want %v", key, elect.Args[key], want)
		}
	}
	if note, _ := elect.Args["note"].(string); note != "aggreg" {
		t.Errorf("elect args[note] = %v, want aggreg", elect.Args["note"])
	}
	first := out[0]
	if _, ok := first.Args["entries"]; ok {
		t.Error("submit event exported a zero entries arg")
	}
	if _, ok := first.Args["note"]; ok {
		t.Error("submit event exported an empty note arg")
	}
	// A tagless, byteless event keeps its args minimal.
	minimal := writeChrome(t, []Event{{At: 0, Kind: Arrive, Node: 0, Peer: -1, Rail: 0}})
	if len(minimal[0].Args) != 0 {
		t.Errorf("minimal event exported args %v, want none", minimal[0].Args)
	}
}

// An empty recorder still exports a valid (empty) JSON array.
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty export invalid JSON: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty recorder exported %d events", len(out))
	}
}
