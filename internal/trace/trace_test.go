package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nmad/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Error("fresh recorder not empty")
	}
	r.Record(Event{At: 10, Kind: Submit, Node: 0, Peer: 1, Bytes: 64})
	r.Record(Event{At: 20, Kind: Elect, Node: 0, Peer: 1, Rail: 0, Entries: 3})
	r.Record(Event{At: 30, Kind: Depart, Node: 0, Peer: 1, Rail: 0, Bytes: 200})
	if r.Total() != 3 {
		t.Errorf("Total = %d", r.Total())
	}
	if r.Count(Elect) != 1 || r.Count(Submit) != 1 || r.Count(Arrive) != 0 {
		t.Error("per-kind counters wrong")
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Kind != Submit || evs[2].Kind != Depart {
		t.Errorf("events %v", evs)
	}
	if got := r.Filter(Elect); len(got) != 1 || got[0].Entries != 3 {
		t.Errorf("Filter(Elect) = %v", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: Submit})
	if r.Total() != 0 || r.Count(Submit) != 0 || r.Events() != nil {
		t.Error("nil recorder must be inert")
	}
	if !strings.Contains(r.Summary(), "disabled") {
		t.Errorf("nil summary %q", r.Summary())
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRingRecorder(3)
	for i := 0; i < 7; i++ {
		r.Record(Event{At: sim.Time(i), Kind: Submit})
	}
	if r.Total() != 7 {
		t.Errorf("Total = %d, counters must survive eviction", r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.At != sim.Time(4+i) {
			t.Errorf("retained[%d].At = %v, want %d (chronological, most recent)", i, ev.At, 4+i)
		}
	}
}

func TestRingRejectsBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRingRecorder(0) should panic")
		}
	}()
	NewRingRecorder(0)
}

func TestEventString(t *testing.T) {
	ev := Event{At: 1500, Kind: RdvStart, Node: 0, Peer: 1, Rail: 2, Tag: 0xAB, Bytes: 4096, Entries: 2, Note: "x"}
	s := ev.String()
	for _, want := range []string{"rdv-start", "node0", "peer=1", "rail=2", "tag=0xab", "bytes=4096", "entries=2", "(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("event line %q missing %q", s, want)
		}
	}
	// Unset optional fields stay out.
	s2 := Event{Kind: Submit, Peer: -1, Rail: -1}.String()
	for _, absent := range []string{"peer=", "rail=", "tag=", "bytes="} {
		if strings.Contains(s2, absent) {
			t.Errorf("minimal event line %q should omit %q", s2, absent)
		}
	}
}

func TestDumpAndSummary(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{At: 5, Kind: Submit, Peer: -1, Rail: -1})
	r.Record(Event{At: 6, Kind: Complete, Peer: -1, Rail: -1})
	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("dump has %d lines, want 2", lines)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "2 events") || !strings.Contains(sum, "submit=1") {
		t.Errorf("summary %q", sum)
	}
}

func TestKindString(t *testing.T) {
	if Submit.String() != "submit" || RdvBody.String() != "rdv-body" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should show its number")
	}
}

func TestWriteChrome(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{At: 1500, Kind: Depart, Node: 0, Peer: 1, Rail: 0, Bytes: 128, Entries: 4})
	r.Record(Event{At: 2500, Kind: Arrive, Node: 1, Peer: 0, Rail: 0, Bytes: 128})
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("%d chrome events, want 2", len(out))
	}
	if out[0]["name"] != "depart" || out[0]["ph"] != "i" {
		t.Errorf("chrome event %v", out[0])
	}
	if ts, ok := out[0]["ts"].(float64); !ok || ts != 1.5 {
		t.Errorf("ts = %v, want 1.5 µs", out[0]["ts"])
	}
	if pid, _ := out[1]["pid"].(float64); pid != 1 {
		t.Errorf("pid = %v, want the node id", out[1]["pid"])
	}
}
