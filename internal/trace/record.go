package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Recording is the machine-readable record/replay format: the offered
// load of a run, separated from the scheduling decisions made on it. It
// captures every application-level submission (Isend/Isendv/Irecv/pack
// pieces) with its virtual-time offset, flow/gate/size/options metadata,
// plus enough cluster topology (rail profiles, host model, per-node
// engine personalities) to reconstruct the machine — so the same load
// can be re-driven under a different strategy, credit budget or rail
// set (package replay), turning recorded timelines into exact A/B
// comparisons and deterministic regression tests.
//
// The serialized form is versioned JSONL: one header object on the first
// line, then one operation object per line in submission order.
//
// Compatibility policy: readers accept any recording whose format tag
// matches and whose version is at most RecordingVersion. Unknown fields
// are ignored (new minor metadata may be added without a version bump);
// any change to the meaning of existing fields bumps RecordingVersion
// and is listed here:
//
//	version 1: initial format.
const (
	// RecordingFormat tags the header line of every recording.
	RecordingFormat = "nmad-recording"
	// RecordingVersion is the current (and maximum readable) format
	// version.
	RecordingVersion = 1
)

// Op kinds: the application-level operations a recording re-drives.
const (
	// OpSend is an Isend/Isendv submission (pack pieces record as
	// independent sends — they submit identical wrappers).
	OpSend = "send"
	// OpRecv is an Irecv/Irecvv/IrecvMasked posting.
	OpRecv = "recv"
)

// Op is one recorded application-level operation.
type Op struct {
	// At is the virtual time the operation entered the engine (before
	// the submit overhead is charged; replay re-charges it).
	At sim.Time `json:"at"`
	// Node issued the operation; Peer is the gate it addressed.
	Node int `json:"node"`
	Peer int `json:"peer"`
	// Kind is OpSend or OpRecv.
	Kind string `json:"op"`
	// Tag is the flow tag of a send, or the wanted tag of a receive.
	Tag uint64 `json:"tag"`
	// Mask is the receive's tag mask (receives only; all-ones for exact
	// matches).
	Mask uint64 `json:"mask,omitempty"`
	// Segs are the iovec segment lengths: the payload layout of a send,
	// the landing layout of a receive.
	Segs []int `json:"segs"`
	// Scheduling options of a send.
	Priority    bool `json:"priority,omitempty"`
	Unordered   bool `json:"unordered,omitempty"`
	Synchronous bool `json:"sync,omitempty"`
	// Rail pins the send to one rail; -1 is the load-balanced common
	// list.
	Rail int `json:"rail"`
}

// NodeConfig is the recorded engine personality of one node, enough to
// rebuild core.Options at replay time (replay may override parts of it).
type NodeConfig struct {
	Strategy         string   `json:"strategy"`
	SubmitOverhead   sim.Time `json:"submit_overhead"`
	ScheduleOverhead sim.Time `json:"schedule_overhead"`
	BodyChunk        int      `json:"body_chunk,omitempty"`
	Anticipate       bool     `json:"anticipate,omitempty"`
	FlushBacklog     int      `json:"flush_backlog,omitempty"`
	Credits          int      `json:"credits,omitempty"`
	MaxGrants        int      `json:"max_grants,omitempty"`
	// Link-layer reliability settings (core.Options.Reliability): a
	// recording made on a lossy fabric replays with the same retransmit
	// machinery enabled.
	Reliability       bool     `json:"reliability,omitempty"`
	RetransmitTimeout sim.Time `json:"retransmit_timeout,omitempty"`
	RetransmitBudget  int      `json:"retransmit_budget,omitempty"`
	ProbeBudget       int      `json:"probe_budget,omitempty"`
}

// RecordingHeader is the first JSONL line: format tag, version and the
// cluster topology needed to reconstruct the machine.
type RecordingHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Nodes is the fabric size; Rails the full network profiles in
	// attach order (full profiles, not names, so tuned thresholds
	// replay exactly); Host the node machine model.
	Nodes int              `json:"nodes"`
	Rails []simnet.Profile `json:"rails"`
	Host  simnet.Host      `json:"host"`
	// Faults is the fault profile active on the recorded fabric, nil for
	// a lossless run. Replay re-applies it (the injector is seeded, so
	// the same faults hit the same packets) unless asked not to.
	Faults *simnet.FaultProfile `json:"faults,omitempty"`
	// Engines maps node id to the engine personality recorded there.
	Engines map[int]NodeConfig `json:"engines"`
	// Meta carries free-form provenance stamps ("scenario", "seed", ...)
	// set through SetMeta. Minor metadata per the compatibility policy:
	// readers ignore keys they do not know, so adding stamps needs no
	// version bump.
	Meta map[string]string `json:"meta,omitempty"`
}

// Recording accumulates the offered load of a run. Attach one to every
// engine of a cluster (core.Options.Record / nmad.WithRecording); the
// engines register their topology and personalities, and every
// application-level submission appends one Op.
type Recording struct {
	header RecordingHeader
	ops    []Op
}

// NewRecording returns an empty current-version recording.
func NewRecording() *Recording {
	return &Recording{header: RecordingHeader{
		Format:  RecordingFormat,
		Version: RecordingVersion,
		Engines: make(map[int]NodeConfig),
	}}
}

// RegisterTopology records the machine: fabric size, rail profiles in
// attach order and the host model. The first registration wins — every
// engine of a cluster attaches the same fabric, so later calls are
// redundant and ignored.
func (r *Recording) RegisterTopology(nodes int, rails []simnet.Profile, host simnet.Host) {
	if r == nil || len(r.header.Rails) > 0 {
		return
	}
	if nodes > r.header.Nodes {
		r.header.Nodes = nodes
	}
	r.header.Rails = append([]simnet.Profile(nil), rails...)
	r.header.Host = host
}

// RegisterFaults records the fabric's fault profile. First registration
// wins, like RegisterTopology; a nil profile (lossless fabric) records
// nothing.
func (r *Recording) RegisterFaults(fp *simnet.FaultProfile) {
	if r == nil || r.header.Faults != nil || fp == nil {
		return
	}
	cp := *fp
	cp.Rails = append([]simnet.RailFaults(nil), fp.Rails...)
	r.header.Faults = &cp
}

// SetMeta stamps one provenance key on the recording header (e.g. the
// scenario name and seed a recording was made from). Safe on nil.
func (r *Recording) SetMeta(key, value string) {
	if r == nil {
		return
	}
	if r.header.Meta == nil {
		r.header.Meta = make(map[string]string)
	}
	r.header.Meta[key] = value
}

// Meta reads one provenance stamp ("" when absent). Safe on nil.
func (r *Recording) Meta(key string) string {
	if r == nil {
		return ""
	}
	return r.header.Meta[key]
}

// RegisterEngine records the engine personality of one node.
func (r *Recording) RegisterEngine(node int, cfg NodeConfig) {
	if r == nil {
		return
	}
	if node+1 > r.header.Nodes {
		r.header.Nodes = node + 1
	}
	r.header.Engines[node] = cfg
}

// RecordOp appends one operation. Safe to call on a nil recording.
func (r *Recording) RecordOp(op Op) {
	if r == nil {
		return
	}
	for _, n := range []int{op.Node, op.Peer} {
		if n+1 > r.header.Nodes {
			r.header.Nodes = n + 1
		}
	}
	r.ops = append(r.ops, op)
}

// Header returns the recorded topology (a shallow copy; Rails and
// Engines are shared — treat them as read-only).
func (r *Recording) Header() RecordingHeader { return r.header }

// Ops returns the recorded operations in submission order (the backing
// slice is shared — treat it as read-only).
func (r *Recording) Ops() []Op { return r.ops }

// Len reports how many operations were recorded.
func (r *Recording) Len() int {
	if r == nil {
		return 0
	}
	return len(r.ops)
}

// Write serializes the recording as versioned JSONL: the header line,
// then one line per operation.
func (r *Recording) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(r.header); err != nil {
		return err
	}
	for _, op := range r.ops {
		if err := enc.Encode(op); err != nil {
			return err
		}
	}
	return nil
}

// ReadRecording parses a JSONL recording, validating the format tag and
// the version (at most RecordingVersion; see the compatibility policy).
func ReadRecording(rd io.Reader) (*Recording, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty recording")
	}
	rec := NewRecording()
	if err := json.Unmarshal(sc.Bytes(), &rec.header); err != nil {
		return nil, fmt.Errorf("trace: bad recording header: %w", err)
	}
	if rec.header.Format != RecordingFormat {
		return nil, fmt.Errorf("trace: not a recording (format %q, want %q)", rec.header.Format, RecordingFormat)
	}
	if rec.header.Version < 1 || rec.header.Version > RecordingVersion {
		return nil, fmt.Errorf("trace: recording version %d unsupported (this reader handles 1..%d)",
			rec.header.Version, RecordingVersion)
	}
	if rec.header.Engines == nil {
		rec.header.Engines = make(map[int]NodeConfig)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var op Op
		if err := json.Unmarshal(sc.Bytes(), &op); err != nil {
			return nil, fmt.Errorf("trace: recording line %d: %w", line, err)
		}
		if op.Kind != OpSend && op.Kind != OpRecv {
			return nil, fmt.Errorf("trace: recording line %d: unknown op %q", line, op.Kind)
		}
		rec.ops = append(rec.ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}
