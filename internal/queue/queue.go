// Package queue is the multi-tenant front end: a bounded job queue and
// worker dispatcher that admits many independent client workloads onto
// one optimizing engine.
//
// Each tenant owns a priority class and a fair-share weight. Dispatch
// order is decided per slot, highest effective class first, where the
// effective class of a tenant's backlog head rises the longer it waits
// (aging) — a latency-class tenant wins promptly, but a bulk tenant
// whose head job has aged past the boost interval catches up, so no
// tenant starves. Within a class level, tenants alternate by stride
// scheduling: each dispatch advances the tenant's virtual pass by
// strideScale/weight, and the lowest pass goes next, so a weight-4
// tenant gets four slots for a weight-1 tenant's one.
//
// The queue reports through the engine it dispatches onto: admission,
// rejection, dispatch latency, aging and depth counters land in
// core.Stats (jobs_admitted, peak_job_wait, ... in scenario assertion
// tables) next to the communication counters the jobs produce.
package queue

import (
	"errors"
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
)

// Sentinel errors. Match with errors.Is; Submit wraps them with the
// tenant and queue context.
var (
	// ErrQueueFull rejects a submission when the backlog is at capacity.
	ErrQueueFull = errors.New("queue: backlog full")
	// ErrUnknownTenant rejects a submission naming an undeclared tenant.
	ErrUnknownTenant = errors.New("queue: unknown tenant")
	// ErrBadConfig reports an invalid Config to New.
	ErrBadConfig = errors.New("queue: bad config")
)

// Class is a tenant's priority class. Higher classes dispatch first;
// aging lifts a waiting tenant's effective class one level per aging
// interval so lower classes cannot starve.
type Class int

const (
	// ClassBulk is throughput traffic that tolerates queueing.
	ClassBulk Class = iota
	// ClassNormal is the default class.
	ClassNormal
	// ClassLatency is latency-sensitive traffic; its jobs' sends should
	// carry Priority() (see Tenant.SendOptions) so the engine's prio
	// paths preempt bulk trains on the wire too.
	ClassLatency
)

func (c Class) String() string {
	switch c {
	case ClassBulk:
		return "bulk"
	case ClassNormal:
		return "normal"
	case ClassLatency:
		return "latency"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ClassByName maps the scenario-file spelling to a Class.
func ClassByName(name string) (Class, bool) {
	switch name {
	case "bulk":
		return ClassBulk, true
	case "normal":
		return ClassNormal, true
	case "latency":
		return ClassLatency, true
	}
	return 0, false
}

// TenantSpec declares one tenant at queue construction.
type TenantSpec struct {
	Name   string
	Weight int // fair-share weight, >= 1
	Class  Class
}

// Config sizes the queue.
type Config struct {
	// Capacity bounds the backlog (queued, undispatched jobs) across all
	// tenants; submissions beyond it are rejected with ErrQueueFull.
	// 0 means DefaultCapacity.
	Capacity int
	// Workers bounds concurrently running jobs. 0 means DefaultWorkers.
	Workers int
	// Aging is the waiting time that lifts a backlog head's effective
	// class by one level. 0 means DefaultAging.
	Aging sim.Time
	// Tenants declares the tenant set; at least one is required.
	Tenants []TenantSpec
}

// Defaults for zero Config fields.
const (
	DefaultCapacity = 256
	DefaultWorkers  = 4
	DefaultAging    = sim.Time(1_000_000) // 1ms of virtual time
)

// strideScale is the virtual-pass numerator: pass advances by
// strideScale/weight per dispatch, so higher weight means smaller
// steps and more slots.
const strideScale = 1 << 16

// TenantStats is the per-tenant slice of the queue counters.
type TenantStats struct {
	Admitted   int
	Rejected   int
	Dispatched int
	Completed  int
	Aged       int
	PeakWait   sim.Time
}

// Tenant is one registered workload source.
type Tenant struct {
	q     *Queue
	spec  TenantSpec
	pass  int64 // stride virtual time; lowest runs next within a class
	heads []*Job
	stats TenantStats
}

// Name returns the tenant's declared name.
func (t *Tenant) Name() string { return t.spec.Name }

// Class returns the tenant's priority class.
func (t *Tenant) Class() Class { return t.spec.Class }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() int { return t.spec.Weight }

// Stats returns a snapshot of the tenant's queue counters.
func (t *Tenant) Stats() TenantStats { return t.stats }

// SendOptions returns the send options a tenant's jobs should attach so
// the engine's scheduling matches the queue-level class: latency-class
// traffic goes out with Priority(), everything else rides the default
// aggregation path.
func (t *Tenant) SendOptions() []core.SendOption {
	if t.spec.Class == ClassLatency {
		return []core.SendOption{core.Priority()}
	}
	return nil
}

// Job is one submitted unit of work.
type Job struct {
	q      *Queue
	tenant *Tenant
	name   string
	fn     func(p *sim.Proc) error

	submitted  sim.Time
	dispatched sim.Time
	completed  sim.Time
	done       bool
	err        error
}

// Tenant returns the tenant the job was submitted under.
func (j *Job) Tenant() *Tenant { return j.tenant }

// Name returns the label given at Submit.
func (j *Job) Name() string { return j.name }

// Done reports whether the job's body has finished.
func (j *Job) Done() bool { return j.done }

// Err returns the job body's error, valid once Done.
func (j *Job) Err() error { return j.err }

// Submitted, Dispatched and Completed are the job's queue timeline;
// Dispatched and Completed are zero until the respective transition.
func (j *Job) Submitted() sim.Time  { return j.submitted }
func (j *Job) Dispatched() sim.Time { return j.dispatched }
func (j *Job) Completed() sim.Time  { return j.completed }

// Wait blocks the calling proc until the job completes.
func (j *Job) Wait(p *sim.Proc) error {
	for !j.done {
		j.q.cond.Wait(p)
	}
	return j.err
}

// Queue is the dispatcher. Like the engine it feeds, it is
// single-world, single-threaded: all methods must run on the world's
// scheduler (procs, timers, callbacks).
type Queue struct {
	eng  *core.Engine
	cfg  Config
	cond *sim.Cond

	tenants []*Tenant // registration order: the deterministic tiebreak
	byName  map[string]*Tenant

	queued int   // backlog across all tenants
	active int   // running worker procs
	vtime  int64 // stride clock: max pass dispatched so far
	serial int   // names worker procs uniquely
}

// New builds a queue dispatching onto eng's world.
func New(eng *core.Engine, cfg Config) (*Queue, error) {
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Aging == 0 {
		cfg.Aging = DefaultAging
	}
	if cfg.Capacity < 0 || cfg.Workers < 0 || cfg.Aging < 0 {
		return nil, fmt.Errorf("%w: negative capacity, workers or aging", ErrBadConfig)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("%w: at least one tenant required", ErrBadConfig)
	}
	q := &Queue{
		eng:    eng,
		cfg:    cfg,
		cond:   sim.NewCond(eng.World()),
		byName: make(map[string]*Tenant, len(cfg.Tenants)),
	}
	for _, ts := range cfg.Tenants {
		if ts.Name == "" {
			return nil, fmt.Errorf("%w: tenant with empty name", ErrBadConfig)
		}
		if _, dup := q.byName[ts.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate tenant %q", ErrBadConfig, ts.Name)
		}
		if ts.Weight < 1 {
			return nil, fmt.Errorf("%w: tenant %q weight %d < 1", ErrBadConfig, ts.Name, ts.Weight)
		}
		if ts.Class < ClassBulk || ts.Class > ClassLatency {
			return nil, fmt.Errorf("%w: tenant %q class %d out of range", ErrBadConfig, ts.Name, ts.Class)
		}
		t := &Tenant{q: q, spec: ts}
		q.tenants = append(q.tenants, t)
		q.byName[ts.Name] = t
	}
	return q, nil
}

// Engine returns the engine the queue dispatches onto.
func (q *Queue) Engine() *core.Engine { return q.eng }

// Tenant looks up a tenant by name.
func (q *Queue) Tenant(name string) (*Tenant, bool) {
	t, ok := q.byName[name]
	return t, ok
}

// Depth returns the current backlog size (queued, not yet dispatched).
func (q *Queue) Depth() int { return q.queued }

// Active returns the number of running worker procs.
func (q *Queue) Active() int { return q.active }

// Submit admits a job for the named tenant. The body runs on its own
// worker proc once a slot opens and the tenant wins a dispatch; sends
// inside it should attach tenant.SendOptions(). Submit is safe from any
// world context (callbacks, procs) and never blocks: over-capacity
// submissions are rejected with ErrQueueFull.
func (q *Queue) Submit(tenant, name string, fn func(p *sim.Proc) error) (*Job, error) {
	t, ok := q.byName[tenant]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	if q.queued >= q.cfg.Capacity {
		t.stats.Rejected++
		q.eng.NoteJobRejected()
		return nil, fmt.Errorf("%w: %q rejected for tenant %q at depth %d", ErrQueueFull, name, tenant, q.queued)
	}
	j := &Job{q: q, tenant: t, name: name, fn: fn, submitted: q.eng.World().Now()}
	if len(t.heads) == 0 {
		// Re-entering tenants resume at the current stride clock rather
		// than their stale pass: an idle tenant must not bank credit and
		// then monopolize the workers on return.
		t.pass = max(t.pass, q.vtime)
	}
	t.heads = append(t.heads, j)
	q.queued++
	t.stats.Admitted++
	q.eng.NoteJobAdmitted(q.queued)
	q.dispatch()
	return j, nil
}

// effective is the backlog head's aged class level: one level per
// full Aging interval waited, on top of the tenant's declared class.
func (q *Queue) effective(t *Tenant, now sim.Time) (level int64, aged bool) {
	waited := now - t.heads[0].submitted
	boost := int64(waited / q.cfg.Aging)
	return int64(t.spec.Class) + boost, boost > 0
}

// pick selects the next tenant to dispatch, or nil when the backlog is
// empty: highest aged class level first, then lowest stride pass, then
// registration order. Pure function of queue state — the determinism
// the scenario harness and bench figures rely on.
func (q *Queue) pick(now sim.Time) (*Tenant, bool) {
	var best *Tenant
	var bestLevel int64
	bestAged := false
	for _, t := range q.tenants {
		if len(t.heads) == 0 {
			continue
		}
		level, aged := q.effective(t, now)
		if best == nil || level > bestLevel || (level == bestLevel && t.pass < best.pass) {
			best, bestLevel, bestAged = t, level, aged
		}
	}
	return best, bestAged
}

// dispatch fills open worker slots. Event-driven: each job runs on a
// fresh proc spawned at dispatch (parked worker procs would read as a
// deadlock to the world's termination detection), and completion both
// wakes Wait-ers and re-runs dispatch for the freed slot.
func (q *Queue) dispatch() {
	now := q.eng.World().Now()
	for q.active < q.cfg.Workers {
		t, aged := q.pick(now)
		if t == nil {
			return
		}
		j := t.heads[0]
		t.heads = t.heads[1:]
		q.queued--
		q.active++
		q.vtime = t.pass
		t.pass += strideScale / int64(t.spec.Weight)
		j.dispatched = now
		wait := now - j.submitted
		t.stats.Dispatched++
		if aged {
			t.stats.Aged++
		}
		if wait > t.stats.PeakWait {
			t.stats.PeakWait = wait
		}
		q.eng.NoteJobDispatched(wait, aged)
		q.serial++
		pname := fmt.Sprintf("queue/%s/%s#%d", t.spec.Name, j.name, q.serial)
		q.eng.World().Spawn(pname, func(p *sim.Proc) {
			j.err = j.fn(p)
			j.completed = p.Now()
			j.done = true
			j.tenant.stats.Completed++
			q.active--
			q.eng.NoteJobCompleted()
			q.cond.Broadcast()
			q.dispatch()
		})
	}
}
