package queue

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

const us = sim.Time(1000)

func newTestEngine(t *testing.T) (*sim.World, *core.Engine) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	e, err := core.New(f, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AttachFabric(f); err != nil {
		t.Fatal(err)
	}
	return w, e
}

func sleeper(d sim.Time, after func(p *sim.Proc)) func(p *sim.Proc) error {
	return func(p *sim.Proc) error {
		p.Sleep(d)
		if after != nil {
			after(p)
		}
		return nil
	}
}

func TestConfigValidation(t *testing.T) {
	_, e := newTestEngine(t)
	cases := []Config{
		{}, // no tenants
		{Tenants: []TenantSpec{{Name: "", Weight: 1}}},                          // empty name
		{Tenants: []TenantSpec{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}}, // duplicate
		{Tenants: []TenantSpec{{Name: "a", Weight: 0}}},                         // weight < 1
		{Tenants: []TenantSpec{{Name: "a", Weight: 1, Class: Class(7)}}},        // bad class
		{Capacity: -1, Tenants: []TenantSpec{{Name: "a", Weight: 1}}},           // negative bound
	}
	for i, cfg := range cases {
		if _, err := New(e, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: got %v, want ErrBadConfig", i, err)
		}
	}
	q, err := New(e, Config{Tenants: []TenantSpec{{Name: "a", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if q.cfg.Capacity != DefaultCapacity || q.cfg.Workers != DefaultWorkers || q.cfg.Aging != DefaultAging {
		t.Errorf("zero fields not defaulted: %+v", q.cfg)
	}
}

func TestUnknownTenantRejected(t *testing.T) {
	w, e := newTestEngine(t)
	q, err := New(e, Config{Tenants: []TenantSpec{{Name: "a", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	w.At(0, func() {
		if _, err := q.Submit("nobody", "j", sleeper(us, nil)); !errors.Is(err, ErrUnknownTenant) {
			t.Errorf("got %v, want ErrUnknownTenant", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityRejectsAndCounts(t *testing.T) {
	w, e := newTestEngine(t)
	q, err := New(e, Config{Capacity: 3, Workers: 1,
		Tenants: []TenantSpec{{Name: "a", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	w.At(0, func() {
		// First submission dispatches straight to the single worker;
		// the next three fill the backlog to capacity.
		for i := 0; i < 4; i++ {
			if _, err := q.Submit("a", fmt.Sprintf("j%d", i), sleeper(10*us, nil)); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}
		if q.Depth() != 3 || q.Active() != 1 {
			t.Errorf("depth=%d active=%d, want 3/1", q.Depth(), q.Active())
		}
		if _, err := q.Submit("a", "overflow", sleeper(us, nil)); !errors.Is(err, ErrQueueFull) {
			t.Errorf("got %v, want ErrQueueFull", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.JobsAdmitted != 4 || st.JobsRejected != 1 || st.JobsDispatched != 4 || st.JobsCompleted != 4 {
		t.Errorf("admitted/rejected/dispatched/completed = %d/%d/%d/%d, want 4/1/4/4",
			st.JobsAdmitted, st.JobsRejected, st.JobsDispatched, st.JobsCompleted)
	}
	if st.PeakQueueDepth != 3 {
		t.Errorf("PeakQueueDepth = %d, want 3", st.PeakQueueDepth)
	}
	if st.PeakJobWait <= 0 {
		t.Errorf("PeakJobWait = %v, want > 0 (jobs queued behind the worker)", st.PeakJobWait)
	}
	a, _ := q.Tenant("a")
	if ts := a.Stats(); ts.Admitted != 4 || ts.Rejected != 1 || ts.Completed != 4 {
		t.Errorf("tenant stats %+v", ts)
	}
}

func TestLatencyClassDispatchesFirst(t *testing.T) {
	w, e := newTestEngine(t)
	q, err := New(e, Config{Workers: 1, Aging: sim.Time(1_000_000_000), // aging out of the picture
		Tenants: []TenantSpec{
			{Name: "bulk", Weight: 1, Class: ClassBulk},
			{Name: "lat", Weight: 1, Class: ClassLatency},
		}})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	mark := func(name string) func(p *sim.Proc) error {
		return sleeper(5*us, func(*sim.Proc) { order = append(order, name) })
	}
	w.At(0, func() { q.Submit("lat", "hog", mark("hog")) })
	// Submitted while the hog occupies the worker, bulk first: the
	// latency-class job must still win the freed slot.
	w.At(1*us, func() { q.Submit("bulk", "b", mark("b")) })
	w.At(2*us, func() { q.Submit("lat", "l", mark("l")) })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "hog,l,b" {
		t.Errorf("completion order %q, want hog,l,b", got)
	}
}

func TestAgingLiftsStarvedBulk(t *testing.T) {
	run := func(aging sim.Time) (order []string, aged int) {
		w, e := newTestEngine(t)
		q, err := New(e, Config{Workers: 1, Aging: aging,
			Tenants: []TenantSpec{
				{Name: "bulk", Weight: 1, Class: ClassBulk},
				{Name: "lat", Weight: 1, Class: ClassLatency},
			}})
		if err != nil {
			t.Fatal(err)
		}
		mark := func(name string) func(p *sim.Proc) error {
			return sleeper(5*us, func(*sim.Proc) { order = append(order, name) })
		}
		w.At(0, func() { q.Submit("lat", "hog", sleeper(200*us, nil)) })
		w.At(1*us, func() { q.Submit("bulk", "b", mark("b")) })
		// A fresh latency job arrives just before the worker frees.
		w.At(195*us, func() { q.Submit("lat", "l", mark("l")) })
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return order, e.Stats().JobsAged
	}

	// With a 50us aging interval the bulk job has waited ~4 intervals by
	// the time the worker frees: effective class 0+3 beats the fresh
	// latency job's 2.
	order, aged := run(50 * us)
	if got := strings.Join(order, ","); got != "b,l" {
		t.Errorf("aged run order %q, want b,l (bulk lifted past latency)", got)
	}
	if aged == 0 {
		t.Error("JobsAged = 0, want the lifted dispatch counted")
	}
	// With aging effectively off the same layout starves the bulk job
	// until the latency tenant is drained.
	order, aged = run(sim.Time(1_000_000_000))
	if got := strings.Join(order, ","); got != "l,b" {
		t.Errorf("no-aging run order %q, want l,b", got)
	}
	if aged != 0 {
		t.Errorf("JobsAged = %d, want 0 with aging off", aged)
	}
}

// fairShareOrder runs 9 jobs for a weight-3 tenant against 3 jobs for a
// weight-1 tenant on one worker and returns the dispatch order string.
func fairShareOrder(t *testing.T) string {
	t.Helper()
	w, e := newTestEngine(t)
	q, err := New(e, Config{Workers: 1,
		Tenants: []TenantSpec{
			{Name: "A", Weight: 3, Class: ClassNormal},
			{Name: "B", Weight: 1, Class: ClassNormal},
		}})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	mark := func(name string) func(p *sim.Proc) error {
		return sleeper(5*us, func(*sim.Proc) { order = append(order, name) })
	}
	w.At(0, func() {
		for i := 0; i < 9; i++ {
			q.Submit("A", fmt.Sprintf("a%d", i), mark("A"))
		}
		for i := 0; i < 3; i++ {
			q.Submit("B", fmt.Sprintf("b%d", i), mark("B"))
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	return strings.Join(order, "")
}

func TestWeightedFairShare(t *testing.T) {
	// Stride scheduling with weights 3:1 — after the initial tie
	// (registration order) the pattern settles to three A slots per B.
	if got := fairShareOrder(t); got != "ABAAABAAABAA" {
		t.Errorf("dispatch order %q, want ABAAABAAABAA", got)
	}
}

func TestDispatchOrderDeterministic(t *testing.T) {
	if a, b := fairShareOrder(t), fairShareOrder(t); a != b {
		t.Errorf("two identical runs dispatched differently: %q vs %q", a, b)
	}
}

func TestJobWaitAndError(t *testing.T) {
	w, e := newTestEngine(t)
	q, err := New(e, Config{Workers: 1, Tenants: []TenantSpec{{Name: "a", Weight: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("job failed")
	var j *Job
	w.At(0, func() {
		j, err = q.Submit("a", "failing", func(p *sim.Proc) error {
			p.Sleep(10 * us)
			return boom
		})
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	w.Spawn("waiter", func(p *sim.Proc) {
		p.Sleep(us) // let the At callback submit first
		if werr := j.Wait(p); !errors.Is(werr, boom) {
			t.Errorf("Wait = %v, want the job's error", werr)
		}
		if !j.Done() || !errors.Is(j.Err(), boom) {
			t.Errorf("Done=%v Err=%v after Wait", j.Done(), j.Err())
		}
		if !(j.Submitted() <= j.Dispatched() && j.Dispatched() < j.Completed()) {
			t.Errorf("timeline not monotonic: %v/%v/%v", j.Submitted(), j.Dispatched(), j.Completed())
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.JobsCompleted != 1 {
		t.Errorf("JobsCompleted = %d, want 1 (failed jobs still complete)", st.JobsCompleted)
	}
}

func TestSendOptionsFollowClass(t *testing.T) {
	_, e := newTestEngine(t)
	q, err := New(e, Config{Tenants: []TenantSpec{
		{Name: "bulk", Weight: 1, Class: ClassBulk},
		{Name: "lat", Weight: 1, Class: ClassLatency},
	}})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := q.Tenant("bulk")
	l, _ := q.Tenant("lat")
	if b.SendOptions() != nil {
		t.Error("bulk tenant should attach no send options")
	}
	if len(l.SendOptions()) != 1 {
		t.Error("latency tenant should attach Priority()")
	}
	if b.Class().String() != "bulk" || l.Class().String() != "latency" {
		t.Errorf("class strings %q/%q", b.Class(), l.Class())
	}
	if c, ok := ClassByName("normal"); !ok || c != ClassNormal {
		t.Errorf("ClassByName(normal) = %v,%v", c, ok)
	}
	if _, ok := ClassByName("vip"); ok {
		t.Error("ClassByName(vip) should fail")
	}
}
