// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue, cooperative processes (exactly one
// runnable at a time, SimPy style) and condition variables.
//
// Everything built in this repository — the simulated NICs, the
// NewMadeleine engine, the MPI layers and the benchmarks — runs inside a
// sim.World. Latency and bandwidth figures are read off the virtual clock,
// which makes every experiment exact, repeatable and host independent.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on (or a distance along) the virtual time line, in
// nanoseconds. The zero Time is the instant a World is created.
type Time int64

// Handy duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with a unit chosen by magnitude.
func (t Time) String() string {
	switch abs := t; {
	case abs < 0:
		return fmt.Sprintf("-%v", -t)
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	case t < 10*Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMicroseconds converts a floating-point number of microseconds to a
// Time, rounding to the nearest nanosecond.
func FromMicroseconds(us float64) Time { return Time(math.Round(us * float64(Microsecond))) }

// ByteTime is the time needed to move n bytes at bw bytes per second,
// rounded to the nearest nanosecond. A non-positive bandwidth means
// "infinitely fast" and yields zero: profiles use it to disable a stage of
// the cost model.
func ByteTime(n int, bw float64) Time {
	if n <= 0 || bw <= 0 {
		return 0
	}
	return FromSeconds(float64(n) / bw)
}
