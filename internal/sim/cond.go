package sim

// Cond is a condition variable for simulated processes. As with sync.Cond,
// waiters must re-check their predicate in a loop:
//
//	for !req.done {
//		cond.Wait(p)
//	}
//
// Signal and Broadcast may be called from scheduler context (event
// callbacks — e.g. a NIC completion that finishes a request) or from
// another process; wakeups are delivered as immediate events, preserving
// the one-runnable-at-a-time invariant.
type Cond struct {
	w       *World
	waiters []*Proc
}

// NewCond returns a condition variable bound to w.
func NewCond(w *World) *Cond { return &Cond{w: w} }

// Wait blocks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.waitIdx = len(c.w.waiting)
	c.w.waiting = append(c.w.waiting, p)
	p.block()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	n := copy(c.waiters, c.waiters[1:])
	c.waiters[n] = nil
	c.waiters = c.waiters[:n]
	c.wake(p)
}

// Broadcast wakes every waiting process. The waiter list's backing array
// is kept for the next Wait: wake only schedules events (nothing re-
// enters Wait synchronously), so clearing in place is safe — and the
// wait/broadcast churn of request completion stops allocating once the
// list has seen its high-water mark.
func (c *Cond) Broadcast() {
	ws := c.waiters
	for i, p := range ws {
		c.wake(p)
		ws[i] = nil
	}
	c.waiters = ws[:0]
}

func (c *Cond) wake(p *Proc) {
	c.w.unwait(p)
	c.w.At(c.w.now, p.runFn)
}

// Waiters reports how many processes are currently blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
