package sim

// Cond is a condition variable for simulated processes. As with sync.Cond,
// waiters must re-check their predicate in a loop:
//
//	for !req.done {
//		cond.Wait(p)
//	}
//
// Signal and Broadcast may be called from scheduler context (event
// callbacks — e.g. a NIC completion that finishes a request) or from
// another process; wakeups are delivered as immediate events, preserving
// the one-runnable-at-a-time invariant.
type Cond struct {
	w       *World
	waiters []*Proc
}

// NewCond returns a condition variable bound to w.
func NewCond(w *World) *Cond { return &Cond{w: w} }

// Wait blocks p until a Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	c.w.waiting[p] = true
	p.block()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.wake(p)
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, p := range ws {
		c.wake(p)
	}
}

func (c *Cond) wake(p *Proc) {
	delete(c.w.waiting, p)
	c.w.At(c.w.now, func() { c.w.runProc(p) })
}

// Waiters reports how many processes are currently blocked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }
