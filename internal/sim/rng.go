package sim

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64)
// used by workload generators and property tests. It is independent of
// math/rand so that simulated experiments never change when the Go
// standard library reshuffles its generators.
type RNG struct{ state uint64 }

// NewRNG seeds a generator. Equal seeds yield equal streams forever.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bytes fills b with pseudo-random bytes.
func (r *RNG) Bytes(b []byte) {
	var w uint64
	for i := range b {
		if i%8 == 0 {
			w = r.Uint64()
		}
		b[i] = byte(w >> (8 * (i % 8)))
	}
}
