package sim

import (
	"fmt"
	"sort"
)

// World owns the virtual clock, the event queue and every process spawned
// into the simulation. A World is single-threaded by construction: the
// scheduler goroutine (the one that calls Run) and at most one process
// goroutine are ever runnable, and they hand control to each other through
// unbuffered channels. No locking is needed anywhere above the kernel.
type World struct {
	now   Time
	queue eventQueue
	seq   uint64

	cur   *Proc         // process currently executing, nil in scheduler context
	yield chan struct{} // a process signals here when it blocks or finishes

	live    int     // spawned processes that have not finished
	waiting []*Proc // processes blocked on a Cond (for deadlock reports)

	stopped bool
	limit   Time // RunUntil horizon; 0 = none
}

// NewWorld returns an empty world with the clock at zero.
func NewWorld() *World {
	return &World{yield: make(chan struct{})}
}

// unwait removes p from the blocked-process registry (swap-remove: the
// registry is a set kept as a slice so wait/wake cycles on the request
// hot path stay allocation-free; order is irrelevant — deadlock reports
// sort by name).
func (w *World) unwait(p *Proc) {
	i := p.waitIdx
	if i < 0 {
		return
	}
	last := len(w.waiting) - 1
	moved := w.waiting[last]
	w.waiting[i] = moved
	moved.waitIdx = i
	w.waiting[last] = nil
	w.waiting = w.waiting[:last]
	p.waitIdx = -1
}

// Now reports the current virtual time.
func (w *World) Now() Time { return w.now }

// At schedules fn to run at virtual time t (clamped to now if in the past).
// fn runs in scheduler context: it may schedule further events, signal
// conditions and complete requests, but it must not block.
func (w *World) At(t Time, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.seq++
	w.queue.push(event{at: t, seq: w.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d means now.
func (w *World) After(d Time, fn func()) { w.At(w.now+d, fn) }

// Stop makes Run return after the event currently firing.
func (w *World) Stop() { w.stopped = true }

// DeadlockError reports that every live process is blocked with no event
// left that could wake any of them.
type DeadlockError struct {
	Now     Time
	Blocked []string // names of the blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) blocked forever: %v",
		e.Now, len(e.Blocked), e.Blocked)
}

// Run drives the simulation until the event queue drains, Stop is called,
// or the horizon set by RunUntil passes. It returns a *DeadlockError if
// processes remain blocked when no event can ever wake them, nil otherwise.
func (w *World) Run() error {
	w.stopped = false
	for !w.stopped && w.queue.len() > 0 {
		if w.limit > 0 && w.queue.peek().at > w.limit {
			// Past the horizon: leave the event unfired for a later Run.
			w.now = w.limit
			return nil
		}
		ev := w.queue.pop()
		w.now = ev.at
		ev.fn()
	}
	if w.queue.len() == 0 && w.live > 0 {
		return w.deadlock()
	}
	return nil
}

// RunUntil drives the simulation, stopping once the clock would pass t.
// Events scheduled later than t stay queued for a subsequent Run/RunUntil.
func (w *World) RunUntil(t Time) error {
	w.limit = t
	defer func() { w.limit = 0 }()
	return w.Run()
}

func (w *World) deadlock() error {
	names := make([]string, 0, len(w.waiting))
	for _, p := range w.waiting {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return &DeadlockError{Now: w.now, Blocked: names}
}

// Live reports how many spawned processes have not yet finished.
func (w *World) Live() int { return w.live }

// runProc transfers control to p until it blocks or finishes. Must be
// called from scheduler context only (i.e. from inside an event).
func (w *World) runProc(p *Proc) {
	if w.cur != nil {
		panic("sim: runProc while another process is running")
	}
	w.cur = p
	p.resume <- struct{}{}
	<-w.yield
	w.cur = nil
}

// Cur returns the process currently executing, or nil when called from
// scheduler context (an event callback).
func (w *World) Cur() *Proc { return w.cur }
