package sim

// event is a callback scheduled at a virtual instant. Events with equal
// times fire in scheduling order (seq is the tiebreak), which keeps the
// simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq), stored by
// value. The hand-rolled sift loops avoid the interface boxing and the
// per-event pointer allocation of container/heap — at emulation scale
// (1024 nodes keep hundreds of thousands of events in flight per run)
// the queue is the hottest data structure in the tree, and keeping it a
// flat []event makes push/pop allocation-free apart from the slice's
// amortized growth.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

// push inserts ev and sifts it up to its heap position.
func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// peek returns the earliest event without removing it. The queue must
// not be empty.
func (q eventQueue) peek() event { return q[0] }

// pop removes and returns the earliest event. The queue must not be
// empty.
func (q *eventQueue) pop() event {
	h := *q
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback for the collector
	h = h[:n]
	*q = h
	// Sift the displaced tail element down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return ev
}

func (q eventQueue) len() int { return len(q) }
