package sim

import "container/heap"

// event is a callback scheduled at a virtual instant. Events with equal
// times fire in scheduling order (seq is the tiebreak), which keeps the
// simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (q *eventQueue) push(ev *event) { heap.Push(q, ev) }

func (q *eventQueue) pop() *event { return heap.Pop(q).(*event) }
