package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{37, "37ns"},
		{5 * Microsecond, "5000ns"},
		{15 * Microsecond, "15.000µs"},
		{2500 * Microsecond, "2500.000µs"},
		{25 * Millisecond, "25.000ms"},
		{12 * Second, "12.000s"},
		{-3 * Microsecond, "-3000ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestByteTime(t *testing.T) {
	if got := ByteTime(1000, 1e9); got != 1*Microsecond {
		t.Errorf("1000 B at 1 GB/s = %v, want 1µs", got)
	}
	if got := ByteTime(0, 1e9); got != 0 {
		t.Errorf("0 bytes should take no time, got %v", got)
	}
	if got := ByteTime(123, 0); got != 0 {
		t.Errorf("zero bandwidth means free transfer in the model, got %v", got)
	}
	if got := ByteTime(-5, 1e9); got != 0 {
		t.Errorf("negative size should take no time, got %v", got)
	}
}

func TestByteTimeMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		n, m := int(a), int(b)
		if n > m {
			n, m = m, n
		}
		return ByteTime(n, 2.5e8) <= ByteTime(m, 2.5e8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventOrdering(t *testing.T) {
	w := NewWorld()
	var order []int
	w.At(30, func() { order = append(order, 3) })
	w.At(10, func() { order = append(order, 1) })
	w.At(20, func() { order = append(order, 2) })
	w.At(10, func() { order = append(order, 11) }) // same time: FIFO
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("events fired in order %v, want %v", order, want)
		}
	}
	if w.Now() != 30 {
		t.Errorf("clock ended at %v, want 30ns", w.Now())
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	w := NewWorld()
	var fired Time = -1
	w.At(100, func() {
		w.At(50, func() { fired = w.Now() }) // in the past: fires now
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Errorf("past event fired at %v, want clamped to 100ns", fired)
	}
}

func TestProcSleep(t *testing.T) {
	w := NewWorld()
	var wake []Time
	w.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * Microsecond)
			wake = append(wake, p.Now())
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for i, at := range wake {
		want := Time(i+1) * 10 * Microsecond
		if at != want {
			t.Errorf("wakeup %d at %v, want %v", i, at, want)
		}
	}
	if w.Live() != 0 {
		t.Errorf("%d processes still live after Run", w.Live())
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	w := NewWorld()
	var trace []string
	w.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2)
		trace = append(trace, "a2")
		p.Sleep(2)
		trace = append(trace, "a4")
	})
	w.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(3)
		trace = append(trace, "b3")
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a2", "b3", "a4"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	w := NewWorld()
	c := NewCond(w)
	ready := false
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		w.Spawn(name, func(p *Proc) {
			for !ready {
				c.Wait(p)
			}
			woke = append(woke, name)
		})
	}
	w.Spawn("waker", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		ready = true
		c.Broadcast()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("only %d of 3 waiters woke: %v", len(woke), woke)
	}
	if w.Now() != 5*Microsecond {
		t.Errorf("broadcast wakeups should be immediate; clock at %v", w.Now())
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	w := NewWorld()
	c := NewCond(w)
	tokens := 1
	got := 0
	for i := 0; i < 2; i++ {
		w.Spawn("taker", func(p *Proc) {
			for tokens == 0 {
				c.Wait(p)
			}
			tokens--
			got++
		})
	}
	err := w.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected a deadlock (one taker starves), got %v", err)
	}
	if got != 1 {
		t.Errorf("%d takers got a token, want exactly 1", got)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "taker" {
		t.Errorf("deadlock report %v, want the one starving taker", dl.Blocked)
	}
}

func TestDeadlockDetection(t *testing.T) {
	w := NewWorld()
	c := NewCond(w)
	w.Spawn("stuck-a", func(p *Proc) { c.Wait(p) })
	w.Spawn("stuck-b", func(p *Proc) { c.Wait(p) })
	err := w.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Blocked) != 2 {
		t.Errorf("blocked list %v, want both processes", dl.Blocked)
	}
}

func TestRunUntil(t *testing.T) {
	w := NewWorld()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		w.At(at, func() { fired = append(fired, at) })
	}
	if err := w.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v, want events at 10 and 20 only", fired)
	}
	if w.Now() != 25 {
		t.Errorf("clock at %v after RunUntil(25)", w.Now())
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Errorf("resumed Run fired %v, want all four events", fired)
	}
}

func TestStop(t *testing.T) {
	w := NewWorld()
	n := 0
	w.At(10, func() { n++; w.Stop() })
	w.At(20, func() { n++ })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("Stop did not halt the loop: %d events fired", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		w := NewWorld()
		c := NewCond(w)
		var stamps []Time
		flag := false
		w.Spawn("p1", func(p *Proc) {
			p.Sleep(7)
			flag = true
			c.Broadcast()
			p.Sleep(7)
			stamps = append(stamps, p.Now())
		})
		w.Spawn("p2", func(p *Proc) {
			for !flag {
				c.Wait(p)
			}
			stamps = append(stamps, p.Now())
			p.Sleep(3)
			stamps = append(stamps, p.Now())
		})
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("two identical runs produced different traces: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two identical runs diverged: %v vs %v", a, b)
		}
	}
}

func TestSpawnFromProc(t *testing.T) {
	w := NewWorld()
	done := 0
	w.Spawn("parent", func(p *Proc) {
		p.Sleep(5)
		w.Spawn("child", func(p *Proc) {
			p.Sleep(5)
			done++
		})
		p.Sleep(20)
		done++
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Errorf("done = %d, want parent and child both finished", done)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
		if v := r.Range(5, 9); v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d out of range", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of range", f)
		}
	}
}

func TestRNGBytes(t *testing.T) {
	r := NewRNG(1)
	b := make([]byte, 1021)
	r.Bytes(b)
	counts := map[byte]int{}
	for _, x := range b {
		counts[x]++
	}
	if len(counts) < 200 {
		t.Errorf("byte stream uses only %d distinct values; looks non-random", len(counts))
	}
	b2 := make([]byte, 1021)
	NewRNG(1).Bytes(b2)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("Bytes is not deterministic for equal seeds")
		}
	}
}

func TestCondWaitersCount(t *testing.T) {
	w := NewWorld()
	c := NewCond(w)
	w.Spawn("a", func(p *Proc) { c.Wait(p) })
	w.Spawn("b", func(p *Proc) {
		p.Sleep(1)
		if got := c.Waiters(); got != 1 {
			t.Errorf("Waiters() = %d, want 1", got)
		}
		c.Broadcast()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Waiters() != 0 {
		t.Errorf("Waiters() = %d after broadcast, want 0", c.Waiters())
	}
}
