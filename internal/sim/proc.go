package sim

// Proc is a cooperative simulated process. Application-level code (MPI
// ranks, benchmark drivers, example programs) runs inside processes so it
// can block — on time with Sleep, or on state with Cond.Wait — while the
// engine underneath runs in event callbacks.
//
// Exactly one process executes at a time; a process runs until it blocks
// or returns, so plain Go code inside a process needs no synchronization.
type Proc struct {
	w      *World
	name   string
	resume chan struct{}
	// runFn is the one resume closure the process ever needs: every
	// wake-up — Sleep timers, Cond wakes, the first step — schedules this
	// same function instead of allocating a fresh closure per blocking
	// call. Sleeps and waits are the hottest operations of a large replay,
	// so the saving is per-op, not per-process.
	runFn func()
	// waitIdx is the process's slot in World.waiting while blocked on a
	// Cond, -1 otherwise (see Cond.Wait / World.unwait).
	waitIdx int
}

// Spawn creates a process executing fn and schedules its first step at the
// current virtual time. fn receives the process itself for blocking calls.
func (w *World) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{w: w, name: name, resume: make(chan struct{}), waitIdx: -1}
	p.runFn = func() { w.runProc(p) }
	w.live++
	go func() {
		<-p.resume // wait for the scheduler to give us our first step
		fn(p)
		p.w.live--
		p.w.yield <- struct{}{} // hand control back one last time
	}()
	w.At(w.now, p.runFn)
	return p
}

// Name returns the name given at Spawn time (used in deadlock reports).
func (p *Proc) Name() string { return p.name }

// World returns the world the process lives in.
func (p *Proc) World() *World { return p.w }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.w.now }

// Sleep blocks the process for d of virtual time. Sleep(0) yields: every
// event already scheduled for the current instant fires before the process
// resumes.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.w.After(d, p.runFn)
	p.block()
}

// block parks the process and returns control to the scheduler. Something
// must eventually call w.runProc(p) (a timer event, or a Cond wake) or the
// process is dead; the kernel then reports a deadlock.
func (p *Proc) block() {
	if p.w.cur != p {
		panic("sim: blocking call from the wrong context (process " + p.name + " is not running)")
	}
	p.w.yield <- struct{}{}
	<-p.resume
}
