package replay

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// CompositeConfig parameterizes the canonical composite workload: the
// multiplexing scenario of the paper's §2 — a bulk stream, a burst of
// small multi-flow sends, one large rendezvous transfer and a
// latency-sensitive priority control message, with a small reply flowing
// back. It exercises aggregation, rendezvous conversion, priority
// election and control piggybacking in one recording.
type CompositeConfig struct {
	// Bulk is the bulk chunk size; NBulk how many chunks stream.
	Bulk  int
	NBulk int
	// Small is how many 128-byte small sends burst across distinct
	// flows.
	Small int
	// Large is the size of the single rendezvous transfer.
	Large int
	// Strategy etc. set the recorded engine personality.
	Strategy  string
	Credits   int
	MaxGrants int
	// Faults, when non-nil, makes the fabric lossy for the live run (the
	// profile is stamped into the recording header, so replay re-applies
	// it); Reliability enables the engines' link-layer retransmission —
	// required for the workload to survive dropped packets.
	Faults      *simnet.FaultProfile
	Reliability bool
}

// CanonicalConfig is the fixed parameter set behind the committed golden
// recording (testdata/canonical.jsonl) and the CI replay smoke.
func CanonicalConfig() CompositeConfig {
	return CompositeConfig{
		Bulk:     8 << 10,
		NBulk:    12,
		Small:    8,
		Large:    256 << 10,
		Strategy: "aggreg",
	}
}

// Flow tags of the composite workload.
const (
	bulkTag  = core.Tag(1)
	ctrlTag  = core.Tag(2)
	largeTag = core.Tag(3)
	replyTag = core.Tag(4)
	smallTag = core.Tag(16) // smallTag+i, one flow per small send
)

// compositeSend drives one node's sender half of the composite workload
// toward the peer behind g.
func compositeSend(p *sim.Proc, g *core.Gate, cfg CompositeConfig) {
	var reqs []core.Request
	for i := 0; i < cfg.NBulk; i++ {
		reqs = append(reqs, g.Isend(p, bulkTag, make([]byte, cfg.Bulk)))
		switch i {
		case cfg.NBulk / 3:
			// The burst of small multi-flow sends lands mid-stream.
			for j := 0; j < cfg.Small; j++ {
				reqs = append(reqs, g.Isend(p, smallTag+core.Tag(j), make([]byte, 128)))
			}
		case cfg.NBulk / 2:
			// The latency-sensitive control fragment and the large
			// rendezvous transfer.
			reqs = append(reqs, g.Isend(p, ctrlTag, make([]byte, 32), core.Priority()))
			reqs = append(reqs, g.Isend(p, largeTag, make([]byte, cfg.Large)))
		}
	}
	if err := core.WaitAll(p, reqs...); err != nil {
		panic(fmt.Sprintf("replay: composite sender: %v", err))
	}
	if _, err := g.Recv(p, replyTag, make([]byte, 1<<10)); err != nil {
		panic(fmt.Sprintf("replay: composite sender reply: %v", err))
	}
}

// compositeRecv drives one node's receiver half: posts for everything the
// peer behind g sends, answering the control fragment with the reply.
func compositeRecv(p *sim.Proc, g *core.Gate, cfg CompositeConfig) {
	var reqs []core.Request
	ctrl := g.Irecv(p, ctrlTag, make([]byte, 32))
	for i := 0; i < cfg.NBulk; i++ {
		reqs = append(reqs, g.Irecv(p, bulkTag, make([]byte, cfg.Bulk)))
	}
	for j := 0; j < cfg.Small; j++ {
		reqs = append(reqs, g.Irecv(p, smallTag+core.Tag(j), make([]byte, 128)))
	}
	reqs = append(reqs, g.Irecv(p, largeTag, make([]byte, cfg.Large)))
	// The reply goes out as soon as the control fragment lands: the
	// RPC-response pattern, recorded from the live schedule.
	if err := ctrl.Wait(p); err != nil {
		panic(fmt.Sprintf("replay: composite receiver ctrl: %v", err))
	}
	reqs = append(reqs, g.Isend(p, replyTag, make([]byte, 1<<10)))
	if err := core.WaitAll(p, reqs...); err != nil {
		panic(fmt.Sprintf("replay: composite receiver: %v", err))
	}
}

// recordCluster builds an N-node recorded MX cluster under the composite
// configuration's engine personality.
func recordCluster(cfg CompositeConfig, nodes int) (*trace.Recording, *sim.World, []*core.Engine, error) {
	rec := trace.NewRecording()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, nodes, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		return nil, nil, nil, err
	}
	if cfg.Faults != nil {
		if err := f.SetFaults(*cfg.Faults); err != nil {
			return nil, nil, nil, err
		}
	}
	opts := core.DefaultOptions()
	if cfg.Strategy != "" {
		opts.Strategy = cfg.Strategy
	}
	opts.Credits = cfg.Credits
	opts.MaxGrants = cfg.MaxGrants
	opts.Reliability = cfg.Reliability
	opts.Record = rec
	engines := make([]*core.Engine, nodes)
	for i := range engines {
		e, err := core.New(f, simnet.NodeID(i), opts)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := e.AttachFabric(f); err != nil {
			return nil, nil, nil, err
		}
		engines[i] = e
	}
	return rec, w, engines, nil
}

// RecordComposite runs the composite workload live on a fresh two-node
// MX cluster with recording enabled and returns the recording. The run
// is deterministic: the same configuration always yields the same
// recording, byte for byte.
func RecordComposite(cfg CompositeConfig) (*trace.Recording, error) {
	rec, w, engines, err := recordCluster(cfg, 2)
	if err != nil {
		return nil, err
	}
	w.Spawn("sender", func(p *sim.Proc) { compositeSend(p, engines[0].Gate(1), cfg) })
	w.Spawn("receiver", func(p *sim.Proc) { compositeRecv(p, engines[1].Gate(0), cfg) })
	if err := w.Run(); err != nil {
		return nil, fmt.Errorf("replay: recording composite workload: %w", err)
	}
	return rec, nil
}

// RecordCompositeRing scales the composite workload to an N-node ring:
// every node runs the canonical sender toward its successor and the
// canonical receiver toward its predecessor, so all N engines schedule
// concurrently and the offered load grows linearly with the ring. This is
// the workload behind the engine-speed meta-figure (internal/bench),
// which replays the recording at 8/256/1024 nodes and measures what the
// engine itself costs in wall-clock time and allocations. With nodes = 2
// the ring degenerates to the two-node composite with both directions
// active.
func RecordCompositeRing(cfg CompositeConfig, nodes int) (*trace.Recording, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("replay: composite ring needs at least 2 nodes, got %d", nodes)
	}
	rec, w, engines, err := recordCluster(cfg, nodes)
	if err != nil {
		return nil, err
	}
	for i := range engines {
		i := i
		next := (i + 1) % nodes
		prev := (i + nodes - 1) % nodes
		w.Spawn(fmt.Sprintf("ring-send%d", i), func(p *sim.Proc) {
			compositeSend(p, engines[i].Gate(simnet.NodeID(next)), cfg)
		})
		w.Spawn(fmt.Sprintf("ring-recv%d", i), func(p *sim.Proc) {
			compositeRecv(p, engines[i].Gate(simnet.NodeID(prev)), cfg)
		})
	}
	if err := w.Run(); err != nil {
		return nil, fmt.Errorf("replay: recording %d-node composite ring: %w", nodes, err)
	}
	return rec, nil
}

// RecordCanonical records the canonical composite workload — the one
// the committed golden recording and the CI smoke replay.
func RecordCanonical() (*trace.Recording, error) {
	return RecordComposite(CanonicalConfig())
}
