package replay

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// The record→replay fidelity property: for a randomized workload, a
// recording replayed under the SAME strategy reproduces the original
// live run exactly — identical per-node Stats (wire bytes, packet
// count, rendezvous/credit counters, everything) and the identical
// scheduling timeline. Replay under a different strategy changes the
// schedule; replay under the same one must change nothing.

// propOp is one generated application operation.
type propOp struct {
	gap             sim.Time // sleep before issuing
	send            bool
	tag             core.Tag
	segs            []int
	prio, unordered bool
	rail            int
}

// propPlan is a full generated workload: per-node op sequences plus the
// engine personality, all drawn deterministically from one seed. With
// splitProcs set, each node runs its ops from TWO concurrent processes
// (even/odd interleave) — the live pattern replay's per-op procs must
// also reproduce.
type propPlan struct {
	rails      []simnet.Profile
	opts       core.Options
	perNode    [2][]propOp
	splitProcs bool
}

func genPlan(rng *rand.Rand) propPlan {
	var plan propPlan
	plan.rails = []simnet.Profile{simnet.MX10G()}
	if rng.Intn(2) == 0 {
		plan.rails = append(plan.rails, simnet.QsNetII())
	}
	plan.opts = core.DefaultOptions()
	plan.opts.Strategy = []string{"default", "aggreg", "split", "prio", "adaptive"}[rng.Intn(5)]
	plan.opts.Credits = []int{0, 0, 8, 16}[rng.Intn(4)]
	plan.opts.MaxGrants = []int{0, 0, 2}[rng.Intn(3)]
	plan.opts.FlushBacklog = []int{0, 0, 4}[rng.Intn(3)]
	plan.opts.Anticipate = rng.Intn(3) == 0
	plan.splitProcs = rng.Intn(2) == 0

	sizes := []int{16, 128, 1 << 10, 4 << 10, 40 << 10, 80 << 10}
	nextTag := core.Tag(1)
	// Flows in both directions; the reverse direction is lighter.
	for dir := 0; dir < 2; dir++ {
		src, dst := dir, 1-dir
		flows := 2 + rng.Intn(4)
		if dir == 1 {
			flows = rng.Intn(3)
		}
		var sends, recvs []propOp
		for f := 0; f < flows; f++ {
			tag := nextTag
			nextTag++
			size := sizes[rng.Intn(len(sizes))]
			nseg := 1 + rng.Intn(3)
			segs := splitSize(size, nseg)
			count := 1 + rng.Intn(4)
			rail := -1
			if rng.Intn(5) == 0 {
				rail = rng.Intn(len(plan.rails))
			}
			for m := 0; m < count; m++ {
				sends = append(sends, propOp{
					send: true, tag: tag, segs: segs, rail: rail,
					prio:      rng.Intn(4) == 0,
					unordered: rng.Intn(6) == 0,
				})
				recvs = append(recvs, propOp{tag: tag, segs: []int{sum(segs)}})
			}
		}
		rng.Shuffle(len(sends), func(i, j int) { sends[i], sends[j] = sends[j], sends[i] })
		rng.Shuffle(len(recvs), func(i, j int) { recvs[i], recvs[j] = recvs[j], recvs[i] })
		for i := range sends {
			sends[i].gap = sim.Time(rng.Intn(3)) * 700 * sim.Nanosecond
		}
		for i := range recvs {
			recvs[i].gap = sim.Time(rng.Intn(2)) * 300 * sim.Nanosecond
		}
		// Receives post first within a node's sequence so a fast sender
		// cannot race ahead of a slow poster more than the generator
		// intends; both live run and replay see the same order anyway.
		plan.perNode[src] = append(plan.perNode[src], sends...)
		plan.perNode[dst] = append(plan.perNode[dst], recvs...)
	}
	return plan
}

func splitSize(size, nseg int) []int {
	if nseg <= 1 || size < nseg {
		return []int{size}
	}
	segs := make([]int, nseg)
	base := size / nseg
	for i := range segs {
		segs[i] = base
	}
	segs[nseg-1] += size - base*nseg
	return segs
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// sortWithinInstant canonicalizes a timeline by ordering events that
// share one virtual instant (their relative order is presentation, not
// schedule); events at distinct times keep their order.
func sortWithinInstant(evs []trace.Event) []trace.Event {
	out := append([]trace.Event(nil), evs...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// runLive executes the generated workload on a fresh cluster with
// recording and tracing enabled, returning what replay must reproduce.
func runLive(t *testing.T, plan propPlan) (*trace.Recording, []core.Stats, [][]trace.Event, sim.Time) {
	t.Helper()
	rec := trace.NewRecording()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	for _, prof := range plan.rails {
		if _, err := f.AddNetwork(prof); err != nil {
			t.Fatal(err)
		}
	}
	engines := make([]*core.Engine, 2)
	tracers := make([]*trace.Recorder, 2)
	for node := range engines {
		opts := plan.opts
		opts.Record = rec
		tracers[node] = trace.NewRecorder()
		opts.Tracer = tracers[node]
		e, err := core.New(f, simnet.NodeID(node), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		engines[node] = e
	}
	var completion sim.Time
	for node := 0; node < 2; node++ {
		eng := engines[node]
		peer := simnet.NodeID(1 - node)
		// One process per node, or two concurrent ones (even/odd ops)
		// when the plan exercises multi-process submission.
		streams := [][]propOp{plan.perNode[node]}
		if plan.splitProcs {
			var even, odd []propOp
			for i, op := range plan.perNode[node] {
				if i%2 == 0 {
					even = append(even, op)
				} else {
					odd = append(odd, op)
				}
			}
			streams = [][]propOp{even, odd}
		}
		for si, stream := range streams {
			ops := stream
			w.Spawn(fmt.Sprintf("live-node%d-p%d", node, si), func(p *sim.Proc) {
				var reqs []core.Request
				for _, op := range ops {
					if op.gap > 0 {
						p.Sleep(op.gap)
					}
					g := eng.Gate(peer)
					if op.send {
						var sopts []core.SendOption
						if op.prio {
							sopts = append(sopts, core.Priority())
						}
						if op.unordered {
							sopts = append(sopts, core.Unordered())
						}
						if op.rail >= 0 {
							sopts = append(sopts, core.OnRail(op.rail))
						}
						reqs = append(reqs, g.Isendv(p, op.tag, makeSegs(op.segs), sopts...))
					} else {
						reqs = append(reqs, g.Irecvv(p, op.tag, makeSegs(op.segs)))
					}
				}
				if err := core.WaitAll(p, reqs...); err != nil {
					t.Errorf("live node %d: %v", node, err)
				}
				if now := p.Now(); now > completion {
					completion = now
				}
			})
		}
	}
	if err := w.Run(); err != nil {
		t.Fatalf("live run: %v", err)
	}
	stats := make([]core.Stats, 2)
	events := make([][]trace.Event, 2)
	for node := range engines {
		stats[node] = engines[node].Stats()
		events[node] = tracers[node].Events()
	}
	return rec, stats, events, completion
}

func TestRecordReplaySameStrategyReproducesLiveRun(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := genPlan(rand.New(rand.NewSource(seed)))
			rec, liveStats, liveEvents, liveCompletion := runLive(t, plan)
			if rec.Len() == 0 {
				t.Fatal("generator produced an empty workload")
			}
			res, err := Run(rec, Config{}) // zero config: replay as recorded
			if err != nil {
				t.Fatal(err)
			}
			if res.Strategy != plan.opts.Strategy {
				t.Errorf("replay strategy %q, recorded %q", res.Strategy, plan.opts.Strategy)
			}
			if res.Completion != liveCompletion {
				t.Errorf("completion: live %v, replay %v", liveCompletion, res.Completion)
			}
			for node := 0; node < 2; node++ {
				if !reflect.DeepEqual(liveStats[node], res.Stats[node]) {
					t.Errorf("node %d stats diverge:\n live:   %+v\n replay: %+v",
						node, liveStats[node], res.Stats[node])
				}
				le, re := liveEvents[node], res.Events[node]
				if plan.splitProcs {
					// Concurrent live submitters: the recording fixes the
					// entry instants but not the live processes' event
					// creation order WITHIN one instant, so the replayed
					// timeline may permute same-instant events. The
					// schedule itself — every event, its time, its
					// payload — must still match.
					le, re = sortWithinInstant(le), sortWithinInstant(re)
				}
				if !reflect.DeepEqual(le, re) {
					t.Errorf("node %d scheduling timeline diverges (%d live events, %d replayed)",
						node, len(le), len(re))
				}
			}
			if res.RequestErrors != 0 {
				t.Errorf("replay reported %d request errors", res.RequestErrors)
			}
		})
	}
}
