package replay

import (
	"reflect"
	"testing"
)

// Free-list recycling (core's packet/output/inEntry pools and the
// encode scratch) is a pure memory optimization: it must never change
// what the engine does, only what it allocates. These tests replay the
// same recording with pooling on and off (Config.NoRecycle) and demand
// the two runs be indistinguishable — byte-identical timelines,
// deep-equal Stats, the same completion instant. Any divergence means a
// recycled object was reused while something still referenced it, which
// is exactly the bug class pooling can introduce.

// diffTimelines reports the first line where two timelines diverge, so
// a pooling bug points at the event rather than "not equal".
func diffTimelines(t *testing.T, pooled, fresh []string) {
	t.Helper()
	if len(pooled) != len(fresh) {
		t.Errorf("timeline length differs: %d events pooled, %d without recycling", len(pooled), len(fresh))
	}
	n := len(pooled)
	if len(fresh) < n {
		n = len(fresh)
	}
	for i := 0; i < n; i++ {
		if pooled[i] != fresh[i] {
			t.Fatalf("timelines diverge at event %d:\n  pooled: %s\n  fresh:  %s", i, pooled[i], fresh[i])
		}
	}
}

// The canonical golden recording, replayed under every registered
// strategy: pooling must be invisible across the whole strategy
// surface (aggregation, splitting, priorities, the adaptive feedback
// loop and its rendezvous plans).
func TestPoolingInvisibleAcrossStrategies(t *testing.T) {
	rec := loadGolden(t)
	for _, strat := range []string{"default", "aggreg", "split", "prio", "adaptive"} {
		t.Run(strat, func(t *testing.T) {
			pooled, err := Run(rec, Config{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Run(rec, Config{Strategy: strat, NoRecycle: true})
			if err != nil {
				t.Fatal(err)
			}
			diffTimelines(t, pooled.TimelineLines(), fresh.TimelineLines())
			if !reflect.DeepEqual(pooled.Stats, fresh.Stats) {
				t.Errorf("Stats differ with recycling disabled:\npooled: %+v\nfresh:  %+v", pooled.Stats, fresh.Stats)
			}
			if pooled.Completion != fresh.Completion {
				t.Errorf("completion differs: %v pooled, %v without recycling", pooled.Completion, fresh.Completion)
			}
		})
	}
}

// A lossy replay exercises the paths pooling touches hardest: link
// frames flatten recycled trains for retransmission, and resequencing
// holds pooled receive entries across drops. The seeded injector drops
// the same packets either way, so the runs must still match event for
// event.
func TestPoolingInvisibleUnderLoss(t *testing.T) {
	rec := lossyComposite(t)
	pooled, err := Run(rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(rec, Config{NoRecycle: true})
	if err != nil {
		t.Fatal(err)
	}
	diffTimelines(t, pooled.TimelineLines(), fresh.TimelineLines())
	if !reflect.DeepEqual(pooled.Stats, fresh.Stats) {
		t.Errorf("Stats differ with recycling disabled:\npooled: %+v\nfresh:  %+v", pooled.Stats, fresh.Stats)
	}
	if sumRetransmits(pooled) == 0 {
		t.Error("lossy replay saw no retransmissions — the test is not exercising the frame-retention path")
	}
}
