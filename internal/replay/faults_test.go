package replay

import (
	"bytes"
	"reflect"
	"testing"

	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// lossyComposite records the composite workload on a 10%-drop fabric
// with reliability-enabled engines.
func lossyComposite(t *testing.T) *trace.Recording {
	t.Helper()
	cfg := CanonicalConfig()
	fp := simnet.UniformLoss(42, 0.10, 1)
	cfg.Faults = &fp
	cfg.Reliability = true
	rec, err := RecordComposite(cfg)
	if err != nil {
		t.Fatalf("record lossy composite: %v", err)
	}
	return rec
}

// The fault profile must survive the JSONL round trip: a recording made
// on a lossy fabric carries everything needed to replay the same loss.
func TestRecordingCarriesFaultProfile(t *testing.T) {
	rec := lossyComposite(t)
	if rec.Header().Faults == nil {
		t.Fatal("lossy recording has no fault profile in its header")
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Header().Faults, rec.Header().Faults) {
		t.Errorf("fault profile did not round-trip:\ngot  %+v\nwant %+v",
			back.Header().Faults, rec.Header().Faults)
	}
	nc, ok := back.Header().Engines[0]
	if !ok || !nc.Reliability {
		t.Errorf("engine personality lost the reliability setting: %+v", nc)
	}
}

func sumRetransmits(r *Result) int {
	n := 0
	for _, s := range r.Stats {
		n += s.Retransmits
	}
	return n
}

// Replaying a lossy recording re-applies the recorded (seeded) fault
// profile: the same faults hit the same packets, so two replays produce
// the event-for-event identical timeline, retransmissions included.
func TestReplayLossyDeterministic(t *testing.T) {
	rec := lossyComposite(t)
	a, err := Run(rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sumRetransmits(a) == 0 {
		t.Error("10% drop replayed without a single retransmission — faults were not re-applied")
	}
	if a.Completion != b.Completion {
		t.Errorf("completion differs: %v vs %v", a.Completion, b.Completion)
	}
	if !reflect.DeepEqual(a.TimelineLines(), b.TimelineLines()) {
		t.Error("two replays of the same lossy recording diverged")
	}
	if a.RequestErrors != 0 {
		t.Errorf("%d requests failed under replayed loss", a.RequestErrors)
	}
}

// DisableFaults replays the same load on a lossless fabric: the engines
// keep their recorded reliability settings but the link layer stays
// idle, and the run finishes no later than the lossy one.
func TestReplayDisableFaults(t *testing.T) {
	rec := lossyComposite(t)
	lossy, err := Run(rec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(rec, Config{DisableFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := sumRetransmits(clean); n != 0 {
		t.Errorf("lossless replay retransmitted %d frames", n)
	}
	if clean.RequestErrors != 0 {
		t.Errorf("%d requests failed on the lossless replay", clean.RequestErrors)
	}
	if clean.Completion > lossy.Completion {
		t.Errorf("lossless replay finished later (%v) than the lossy one (%v)",
			clean.Completion, lossy.Completion)
	}
}
