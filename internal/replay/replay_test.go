package replay

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
	"nmad/sched"
)

// -update regenerates the golden files from the current engine:
//
//	go test ./internal/replay -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden recording and timeline files")

const (
	goldenRecording = "testdata/canonical.jsonl"
	goldenTimeline  = "testdata/canonical_aggreg.timeline"
)

func recordingBytes(t *testing.T, rec *trace.Recording) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatalf("serialize recording: %v", err)
	}
	return buf.Bytes()
}

func loadGolden(t *testing.T) *trace.Recording {
	t.Helper()
	f, err := os.Open(goldenRecording)
	if err != nil {
		t.Fatalf("open golden recording (regenerate with -update): %v", err)
	}
	defer f.Close()
	rec, err := trace.ReadRecording(f)
	if err != nil {
		t.Fatalf("parse golden recording: %v", err)
	}
	return rec
}

// The recording itself must be deterministic: the same live workload
// records byte-identically run over run.
func TestRecordCanonicalDeterministic(t *testing.T) {
	a, err := RecordCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecordCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recordingBytes(t, a), recordingBytes(t, b)) {
		t.Fatal("two recordings of the same live workload differ")
	}
	if a.Len() == 0 {
		t.Fatal("canonical workload recorded no operations")
	}
}

// The committed golden recording must match what the current engine
// records for the canonical workload — when it drifts (a legitimate
// submission-path change), regenerate with -update and review the diff.
func TestGoldenRecordingUpToDate(t *testing.T) {
	rec, err := RecordCanonical()
	if err != nil {
		t.Fatal(err)
	}
	got := recordingBytes(t, rec)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenRecording), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenRecording, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes, %d ops)", goldenRecording, len(got), rec.Len())
		return
	}
	want, err := os.ReadFile(goldenRecording)
	if err != nil {
		t.Fatalf("read golden recording (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("canonical recording drifted from %s (regenerate with -update and review)", goldenRecording)
	}
}

// Round-trip: what Write emits, ReadRecording restores exactly.
func TestRecordingRoundTrip(t *testing.T) {
	rec, err := RecordCanonical()
	if err != nil {
		t.Fatal(err)
	}
	raw := recordingBytes(t, rec)
	back, err := trace.ReadRecording(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.Header(), back.Header()) {
		t.Errorf("header changed in round-trip:\n got %+v\nwant %+v", back.Header(), rec.Header())
	}
	if !reflect.DeepEqual(rec.Ops(), back.Ops()) {
		t.Error("ops changed in round-trip")
	}
}

// The determinism property: replaying the same recording under the same
// strategy is event-for-event identical run over run, for every built-in
// strategy. This is the gate every future scheduler change runs against.
func TestReplayDeterministicPerStrategy(t *testing.T) {
	rec := loadGolden(t)
	for _, strat := range []string{"default", "aggreg", "split", "prio", "adaptive"} {
		t.Run(strat, func(t *testing.T) {
			a, err := Run(rec, Config{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(rec, Config{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			if a.Completion != b.Completion {
				t.Errorf("completion differs run-over-run: %v vs %v", a.Completion, b.Completion)
			}
			if !reflect.DeepEqual(a.Stats, b.Stats) {
				t.Error("stats differ run-over-run")
			}
			if !reflect.DeepEqual(a.Events, b.Events) {
				t.Fatal("event timelines differ run-over-run: replay is not deterministic")
			}
			if a.RequestErrors != 0 {
				t.Errorf("replay reported %d request errors", a.RequestErrors)
			}
			if a.Packets() == 0 || a.WireBytes() == 0 {
				t.Errorf("replay moved nothing: packets=%d wire=%d", a.Packets(), a.WireBytes())
			}
		})
	}
}

// The golden timeline: the schedule the aggreg strategy produces on the
// golden recording, asserted line for line against testdata/.
func TestGoldenTimelineAggreg(t *testing.T) {
	rec := loadGolden(t)
	res, err := Run(rec, Config{Strategy: "aggreg"})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.Join(res.TimelineLines(), "\n") + "\n"
	if *update {
		if err := os.WriteFile(goldenTimeline, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", goldenTimeline, len(res.TimelineLines()))
		return
	}
	want, err := os.ReadFile(goldenTimeline)
	if err != nil {
		t.Fatalf("read golden timeline (regenerate with -update): %v", err)
	}
	if got != string(want) {
		// Locate the first diverging line for a useful failure message.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("timeline drifted from %s at line %d:\n got: %s\nwant: %s\n(regenerate with -update and review)",
					goldenTimeline, i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("timeline drifted from %s: %d lines vs %d (regenerate with -update and review)",
			goldenTimeline, len(gl), len(wl))
	}
}

// A/B on the golden recording: the strategies must produce different
// schedules on the same load, and the window-less default strategy can
// never aggregate more than aggreg does.
func TestReplayABOnGolden(t *testing.T) {
	rec := loadGolden(t)
	results, err := AB(rec, []string{"default", "aggreg"})
	if err != nil {
		t.Fatal(err)
	}
	def, agg := results[0], results[1]
	for _, r := range results {
		if r.Completion <= 0 {
			t.Fatalf("%s: no completion time", r.Strategy)
		}
		if r.RequestErrors != 0 {
			t.Fatalf("%s: %d request errors", r.Strategy, r.RequestErrors)
		}
	}
	if agg.AggregationRatio() < def.AggregationRatio() {
		t.Errorf("aggreg aggregates less than default on the same load: %.2f vs %.2f",
			agg.AggregationRatio(), def.AggregationRatio())
	}
	if agg.Packets() > def.Packets() {
		t.Errorf("aggreg used more packets than default on the same load: %d vs %d",
			agg.Packets(), def.Packets())
	}
}

// Credit and rail overrides re-drive the same load under a different
// flow-control budget / machine without touching the recording.
func TestReplayOverrides(t *testing.T) {
	rec := loadGolden(t)
	credits := 4
	grants := 1
	res, err := Run(rec, Config{Strategy: "aggreg", Credits: &credits, MaxGrants: &grants})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestErrors != 0 {
		t.Fatalf("credited replay: %d request errors", res.RequestErrors)
	}
	budget := 0
	for _, s := range res.Stats {
		if s.PeakUnexpected > budget {
			budget = s.PeakUnexpected
		}
	}
	if budget > credits {
		t.Errorf("peak unexpected queue %d exceeds the overridden credit budget %d", budget, credits)
	}
	base, err := Run(rec, Config{Strategy: "aggreg"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion < base.Completion {
		t.Errorf("throttled replay finished before the unthrottled one: %v < %v", res.Completion, base.Completion)
	}
}

// Version gate: a recording from a future format version is refused.
func TestReadRecordingRejectsFutureVersion(t *testing.T) {
	raw := recordingBytes(t, mustRecording(t))
	bumped := bytes.Replace(raw, []byte(`"version":1`), []byte(`"version":99`), 1)
	if bytes.Equal(raw, bumped) {
		t.Fatal("version field not found in serialized header")
	}
	if _, err := trace.ReadRecording(bytes.NewReader(bumped)); err == nil {
		t.Error("future-version recording accepted")
	}
	if _, err := trace.ReadRecording(strings.NewReader(`{"format":"something-else","version":1}`)); err == nil {
		t.Error("foreign format accepted")
	}
}

// unregisteredStrategy is a strategy value not present in the registry.
type unregisteredStrategy struct{}

func (unregisteredStrategy) Name() string                                           { return "not-in-registry" }
func (unregisteredStrategy) Elect(w sched.Window, r sched.RailInfo) *sched.Election { return nil }

// Recording an engine whose strategy replay cannot reconstruct (a bare
// StrategyImpl value with an unregistered name) must fail at record
// time, not at replay time.
func TestRecordRejectsUnregisteredStrategyImpl(t *testing.T) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.StrategyImpl = unregisteredStrategy{}
	opts.Record = trace.NewRecording()
	if _, err := core.New(f, 0, opts); err == nil {
		t.Fatal("recording with an unregistered StrategyImpl accepted; replay could never reconstruct it")
	}
	// Without a recording the same engine is fine.
	opts.Record = nil
	if _, err := core.New(f, 0, opts); err != nil {
		t.Fatalf("StrategyImpl without recording rejected: %v", err)
	}
}

func mustRecording(t *testing.T) *trace.Recording {
	t.Helper()
	rec, err := RecordCanonical()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}
