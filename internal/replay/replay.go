// Package replay re-drives a recorded offered load (trace.Recording)
// through the engine: each recorded Isend/Irecv/Isendv is re-issued at
// its recorded virtual submission time, on a cluster reconstructed from
// the recorded topology — under the recorded engine personality, or
// under a different strategy, credit budget or rail set.
//
// This separates the offered load from the scheduling decisions made on
// it: the same recording replayed under two strategies is an exact A/B
// comparison (identical submission timing, different schedules), and a
// recording replayed twice under the same strategy must produce the
// event-for-event identical timeline — the determinism property every
// scheduler change is regression-tested against.
//
// Replay is open-loop: recorded submission times are honored regardless
// of how the replayed schedule progresses, so a strategy that finishes
// later does not push subsequent submissions back the way a live
// application's blocking calls would. That is the point — the load is
// frozen, only the schedule varies.
package replay

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Config selects what varies between the recording and the replay. The
// zero value replays the recording as recorded.
type Config struct {
	// Strategy, when non-empty, replaces every node's recorded strategy
	// with the named registry strategy.
	Strategy string
	// Credits / MaxGrants, when non-nil, replace the recorded per-node
	// budgets on every node.
	Credits   *int
	MaxGrants *int
	// Rails, when non-empty, replaces the recorded rail set. Rail-pinned
	// sends recorded on rails beyond the new set fall back to the common
	// list.
	Rails []simnet.Profile
	// NoRecycle replays with the engine's free-list recycling disabled
	// (core.Options.NoRecycle): every wrapper, train and receive entry is
	// a fresh allocation. Recycling is a pure memory optimization — the
	// timeline and Stats must be byte-identical either way, which is
	// exactly what the pooling property test asserts with this switch.
	NoRecycle bool
	// DisableFaults replays a lossy recording on a lossless fabric: the
	// recorded fault profile in the header is ignored (the engines keep
	// their recorded reliability settings — an idle link layer does not
	// change what is delivered, only its ack/framing overhead). By
	// default the recorded profile is re-applied, and since the injector
	// is seeded, the same faults hit the same packets — a lossy recording
	// replays deterministically, retransmissions included. When Rails
	// overrides the rail set, a recorded per-rail profile still applies
	// by rail index; indexes beyond the new rail set are ignored.
	DisableFaults bool
}

// Result is one replayed run: the schedule the configured engines
// produced on the recorded load.
type Result struct {
	// Strategy is the strategy name the replay ran under (the recorded
	// one when Config.Strategy was empty and all nodes agreed).
	Strategy string
	// Completion is the virtual time the last re-issued request
	// completed.
	Completion sim.Time
	// Stats are the per-node engine counters.
	Stats []core.Stats
	// Events are the per-node scheduling timelines (one tracer per
	// engine), the material of the determinism checks.
	Events [][]trace.Event
	// RequestErrors counts re-issued requests that completed with an
	// error (e.g. a truncated rendezvous recorded as such).
	RequestErrors int
}

// WireBytes sums the wire footprint every node injected.
func (r *Result) WireBytes() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.WireBytes
	}
	return n
}

// Packets sums the physical output packets across nodes.
func (r *Result) Packets() int {
	n := 0
	for _, s := range r.Stats {
		n += s.OutputPackets
	}
	return n
}

// Entries sums the wrappers carried by those packets.
func (r *Result) Entries() int {
	n := 0
	for _, s := range r.Stats {
		n += s.EntriesSent
	}
	return n
}

// AggregationRatio is entries per output packet across the whole run.
func (r *Result) AggregationRatio() float64 {
	if p := r.Packets(); p > 0 {
		return float64(r.Entries()) / float64(p)
	}
	return 0
}

// TimelineLines renders every node's event sequence as stable text
// lines, the golden-file form of a replayed schedule.
func (r *Result) TimelineLines() []string {
	var out []string
	for node, evs := range r.Events {
		for _, ev := range evs {
			out = append(out, fmt.Sprintf("node%d | %s", node, ev.String()))
		}
	}
	return out
}

// Run replays a recording under the given configuration.
func Run(rec *trace.Recording, cfg Config) (*Result, error) {
	hdr := rec.Header()
	if hdr.Nodes < 1 {
		return nil, fmt.Errorf("replay: recording has no nodes")
	}
	rails := hdr.Rails
	if len(cfg.Rails) > 0 {
		rails = cfg.Rails
	}
	if len(rails) == 0 {
		return nil, fmt.Errorf("replay: recording has no rails (was the recording attached before AttachFabric?)")
	}
	host := hdr.Host
	if host.MemcpyBandwidth <= 0 {
		host = simnet.DefaultHost()
	}

	w := sim.NewWorld()
	f := simnet.NewFabric(w, hdr.Nodes, host)
	for _, prof := range rails {
		if _, err := f.AddNetwork(prof); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
	}
	if hdr.Faults != nil && !cfg.DisableFaults {
		fp := *hdr.Faults
		if len(fp.Rails) > len(rails) {
			// A rail override shrank the machine below the recorded
			// profile: apply what still has a rail.
			fp.Rails = fp.Rails[:len(rails)]
		}
		if err := f.SetFaults(fp); err != nil {
			return nil, fmt.Errorf("replay: recorded fault profile: %w", err)
		}
	}

	engines := make([]*core.Engine, hdr.Nodes)
	tracers := make([]*trace.Recorder, hdr.Nodes)
	strategies := map[string]bool{}
	for node := 0; node < hdr.Nodes; node++ {
		opts := nodeOptions(hdr, node, cfg)
		tracers[node] = trace.NewRecorder()
		opts.Tracer = tracers[node]
		e, err := core.New(f, simnet.NodeID(node), opts)
		if err != nil {
			return nil, fmt.Errorf("replay: node %d: %w", node, err)
		}
		if err := e.AttachFabric(f); err != nil {
			return nil, fmt.Errorf("replay: node %d: %w", node, err)
		}
		engines[node] = e
		strategies[e.StrategyName()] = true
	}

	perNode := make([][]trace.Op, hdr.Nodes)
	for _, op := range rec.Ops() {
		if op.Node < 0 || op.Node >= hdr.Nodes || op.Peer < 0 || op.Peer >= hdr.Nodes {
			return nil, fmt.Errorf("replay: op addresses node %d -> %d outside the %d-node topology",
				op.Node, op.Peer, hdr.Nodes)
		}
		perNode[op.Node] = append(perNode[op.Node], op)
	}

	// One dispatcher per node walks that node's ops in recorded order
	// and, at each op's recorded entry instant, spawns a dedicated
	// process that issues the operation and pays its own submit/copy
	// overhead. Spawning just-in-time (rather than pre-sleeping every
	// op process from time zero) keeps same-instant event ordering
	// faithful to the live run: an op's entry never jumps ahead of
	// engine continuations created earlier, and overlapping entries —
	// a node whose live application submitted from several concurrent
	// processes — charge their overheads concurrently, as they did
	// live.
	res := &Result{}
	nRails := len(rails)
	for node := range perNode {
		ops := perNode[node]
		if len(ops) == 0 {
			continue
		}
		eng := engines[node]
		node := node
		w.Spawn(fmt.Sprintf("replay-node%d", node), func(p *sim.Proc) {
			for i, op := range ops {
				if d := op.At - p.Now(); d > 0 {
					p.Sleep(d)
				}
				op := op
				w.Spawn(fmt.Sprintf("replay-node%d-op%d", node, i), func(q *sim.Proc) {
					g := eng.Gate(simnet.NodeID(op.Peer))
					var req core.Request
					switch op.Kind {
					case trace.OpSend:
						var sopts []core.SendOption
						if op.Priority {
							sopts = append(sopts, core.Priority())
						}
						if op.Unordered {
							sopts = append(sopts, core.Unordered())
						}
						if op.Synchronous {
							sopts = append(sopts, core.Synchronous())
						}
						if op.Rail >= 0 && op.Rail < nRails {
							sopts = append(sopts, core.OnRail(op.Rail))
						}
						req = g.Isendv(q, core.Tag(op.Tag), makeSegs(op.Segs), sopts...)
					case trace.OpRecv:
						req = g.IrecvvMasked(q, core.Tag(op.Tag), core.Tag(op.Mask), makeSegs(op.Segs))
					}
					if err := req.Wait(q); err != nil {
						res.RequestErrors++
					}
					if now := q.Now(); now > res.Completion {
						res.Completion = now
					}
				})
			}
		})
	}

	if err := w.Run(); err != nil {
		return res, fmt.Errorf("replay: %w", err)
	}
	for node := 0; node < hdr.Nodes; node++ {
		res.Stats = append(res.Stats, engines[node].Stats())
		res.Events = append(res.Events, tracers[node].Events())
	}
	switch {
	case cfg.Strategy != "":
		res.Strategy = cfg.Strategy
	case len(strategies) == 1:
		for s := range strategies {
			res.Strategy = s
		}
	default:
		res.Strategy = "mixed"
	}
	return res, nil
}

// AB replays one recording under several strategies, in order.
func AB(rec *trace.Recording, strategies []string) ([]*Result, error) {
	if len(strategies) == 0 {
		return nil, fmt.Errorf("replay: AB needs at least one strategy")
	}
	out := make([]*Result, 0, len(strategies))
	for _, s := range strategies {
		r, err := Run(rec, Config{Strategy: s})
		if err != nil {
			return out, fmt.Errorf("replay: strategy %s: %w", s, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// nodeOptions rebuilds one node's engine personality from the recording
// header, then applies the replay overrides.
func nodeOptions(hdr trace.RecordingHeader, node int, cfg Config) core.Options {
	opts := core.DefaultOptions()
	if nc, ok := hdr.Engines[node]; ok {
		opts = core.Options{
			Strategy:          nc.Strategy,
			SubmitOverhead:    nc.SubmitOverhead,
			ScheduleOverhead:  nc.ScheduleOverhead,
			BodyChunk:         nc.BodyChunk,
			Anticipate:        nc.Anticipate,
			FlushBacklog:      nc.FlushBacklog,
			Credits:           nc.Credits,
			MaxGrants:         nc.MaxGrants,
			Reliability:       nc.Reliability,
			RetransmitTimeout: nc.RetransmitTimeout,
			RetransmitBudget:  nc.RetransmitBudget,
			ProbeBudget:       nc.ProbeBudget,
		}
	}
	if cfg.Strategy != "" {
		opts.Strategy = cfg.Strategy
	}
	if cfg.Credits != nil {
		opts.Credits = *cfg.Credits
	}
	if cfg.MaxGrants != nil {
		opts.MaxGrants = *cfg.MaxGrants
	}
	opts.NoRecycle = cfg.NoRecycle
	return opts
}

// makeSegs allocates a zeroed iovec with the recorded segment layout.
// Payload content is not part of the recording: scheduling decisions
// depend on sizes and layout only. One backing buffer serves every
// segment — two allocations per op instead of one per segment.
func makeSegs(lens []int) [][]byte {
	total := 0
	for _, n := range lens {
		total += n
	}
	buf := make([]byte, total)
	segs := make([][]byte, len(lens))
	for i, n := range lens {
		segs[i] = buf[:n:n]
		buf = buf[n:]
	}
	return segs
}
