package drivers

import "nmad/internal/simnet"

// TCP is the Ethernet fallback port through the kernel TCP stack. writev
// provides a gather list; there is no RDMA, so rendezvous bodies stream
// as eager chunk packets, and latency is dominated by the kernel path.
type TCP struct{ *base }

// NewTCP binds the port to the given node's NIC on net. The network must
// use the tcp profile.
func NewTCP(net *simnet.Network, node simnet.NodeID) *TCP {
	nic := net.NIC(node)
	p := nic.Profile()
	return &TCP{base: newBase("tcp", nic, capsFrom(p, p.MaxSegments), 0)}
}
