package drivers

import "nmad/internal/simnet"

// MX is the Myrinet EXpress port for Myri-10G — the paper's primary
// evaluation network. MX exposes a native gather list and RDMA, so every
// engine request maps directly onto one NIC call; the rendezvous
// threshold reported by the driver (32 KiB, MX's eager limit) is the
// aggregation cap the paper's strategy uses.
type MX struct{ *base }

// NewMX binds the port to the given node's NIC on net. The network must
// use the mx10g profile.
func NewMX(net *simnet.Network, node simnet.NodeID) *MX {
	nic := net.NIC(node)
	p := nic.Profile()
	return &MX{base: newBase("mx", nic, capsFrom(p, p.MaxSegments), 0)}
}
