// Package drivers implements the NewMadeleine transfer layer: one minimal
// driver per network technology. Per the paper (§4), "the implementation
// of each corresponding transfer layer consists in a minimal network API
// (initialisation, closing, sending, receiving and polling methods)" plus
// a capability report: the rendezvous threshold, the availability of
// gather/scatter, and the availability of RDMA.
//
// Each driver binds one node's NIC on one simulated network. Drivers are
// deliberately thin — at best a direct call to the underlying "hardware" —
// but the ports differ where the hardware differs: GM's two-entry gather
// list and SISCI's contiguous-only PIO force a software bounce copy, and
// TCP has no RDMA at all.
package drivers

import (
	"errors"
	"fmt"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Caps is the capability report of a transfer layer, used by the
// scheduling strategies to make protocol decisions without knowing the
// network technology (paper §4: "Information about the underlying network
// can be obtained in a generic manner through a specific API").
type Caps struct {
	// RdvThreshold is where the driver recommends switching from the eager
	// protocol to rendezvous; it also caps aggregation.
	RdvThreshold int
	// MaxSegments is the native gather/scatter list capacity exposed to
	// the engine. Drivers that bounce-copy internally report a large value
	// and charge the copy.
	MaxSegments int
	// RDMA reports remote put/get (zero-copy rendezvous bodies).
	RDMA bool
	// Latency and Bandwidth are nominal figures for load-balancing
	// decisions (multi-rail splitting uses the bandwidth ratio).
	Latency   sim.Time
	Bandwidth float64
}

// Driver is the minimal transfer-layer API of the paper. Open must be
// called before any traffic; Close detaches the driver from its NIC.
type Driver interface {
	// Name identifies the port ("mx", "elan", "gm", "sisci", "tcp").
	Name() string
	// Caps reports the driver capabilities.
	Caps() Caps
	// Open binds receive and idle handlers to the NIC. The idle handler
	// runs whenever the NIC drains — the hook the optimizer-scheduler
	// layer uses to elect the next packet.
	Open(onRecv func(simnet.Delivery), onIdle func()) error
	// Close detaches the handlers. Traffic in flight still arrives.
	Close() error
	// Send posts one transaction. Segments are snapshotted before Send
	// returns. onSent (optional) fires when the NIC is done with the
	// transaction on the sending side.
	Send(dst simnet.NodeID, kind simnet.TxKind, segs [][]byte, aux uint64, onSent func()) error
	// Poll reports whether the driver could accept a transaction right
	// now without queueing (the NIC is idle).
	Poll() bool
	// Stats exposes the NIC traffic counters.
	Stats() simnet.NICStats
}

// Errors common to all drivers.
var (
	ErrClosed  = errors.New("drivers: driver is closed")
	ErrNotOpen = errors.New("drivers: driver is not open")
)

// base carries the behaviour shared by every port.
type base struct {
	name string
	nic  *simnet.NIC
	caps Caps
	open bool

	// bounce, when set, is the software gather limit: transactions with
	// more native segments than the NIC accepts are flattened into one
	// contiguous buffer, and the memcpy is charged to the host by
	// delaying the NIC submission.
	bounceLimit int
}

func newBase(name string, nic *simnet.NIC, caps Caps, bounceLimit int) *base {
	return &base{name: name, nic: nic, caps: caps, bounceLimit: bounceLimit}
}

func (b *base) Name() string { return b.name }

func (b *base) Caps() Caps { return b.caps }

func (b *base) Stats() simnet.NICStats { return b.nic.Stats() }

func (b *base) Poll() bool { return b.open && b.nic.Idle() }

func (b *base) Open(onRecv func(simnet.Delivery), onIdle func()) error {
	if b.open {
		return fmt.Errorf("drivers: %s already open", b.name)
	}
	b.nic.OnRecv(onRecv)
	b.nic.OnIdle(onIdle)
	b.open = true
	return nil
}

func (b *base) Close() error {
	if !b.open {
		return ErrNotOpen
	}
	b.nic.OnRecv(func(simnet.Delivery) {}) // drain late arrivals silently
	b.nic.OnIdle(nil)
	b.open = false
	return nil
}

func (b *base) Send(dst simnet.NodeID, kind simnet.TxKind, segs [][]byte, aux uint64, onSent func()) error {
	if !b.open {
		return ErrNotOpen
	}
	prof := b.nic.Profile()
	if len(segs) > prof.MaxSegments {
		if b.bounceLimit == 0 || len(segs) > b.bounceLimit {
			return fmt.Errorf("%w on %s: %d segments", simnet.ErrTooManySegments, b.name, len(segs))
		}
		// Software gather: flatten into a bounce buffer and charge the
		// memcpy by delaying the submission.
		size := 0
		for _, s := range segs {
			size += len(s)
		}
		flat := make([]byte, 0, size)
		for _, s := range segs {
			flat = append(flat, s...)
		}
		delay := b.nic.Node().CopyCost(size)
		b.nicWorld().After(delay, func() {
			if err := b.nic.Submit(&simnet.Tx{Dst: dst, Kind: kind, Segs: [][]byte{flat}, Aux: aux, OnSent: onSent}); err != nil {
				panic("drivers: bounce submit failed: " + err.Error())
			}
		})
		return nil
	}
	return b.nic.Submit(&simnet.Tx{Dst: dst, Kind: kind, Segs: segs, Aux: aux, OnSent: onSent})
}

func (b *base) nicWorld() *sim.World { return b.nic.Network().World() }

// capsFrom derives the generic capability report from a NIC profile.
func capsFrom(p simnet.Profile, maxSegs int) Caps {
	return Caps{
		RdvThreshold: p.RdvThreshold,
		MaxSegments:  maxSegs,
		RDMA:         p.RDMA,
		Latency:      p.Latency,
		Bandwidth:    p.Bandwidth,
	}
}

// New constructs the port matching the network's profile name. It is the
// registry the engine uses to bind whatever rails a fabric offers.
func New(net *simnet.Network, node simnet.NodeID) (Driver, error) {
	switch net.Profile().Name {
	case "mx10g":
		return NewMX(net, node), nil
	case "qsnet2":
		return NewElan(net, node), nil
	case "gm2000":
		return NewGM(net, node), nil
	case "sisci":
		return NewSISCI(net, node), nil
	case "tcp":
		return NewTCP(net, node), nil
	default:
		return nil, fmt.Errorf("drivers: no port for network %q", net.Profile().Name)
	}
}
