package drivers

import "nmad/internal/simnet"

// Elan is the Quadrics QsNetII (Elan4/QM500) port — the paper's second
// evaluation network. Elan offers native put/get RDMA and a moderate
// gather list; small transactions go out through the fast PIO ("STEN")
// path, large bodies through the DMA engine.
type Elan struct{ *base }

// NewElan binds the port to the given node's NIC on net. The network must
// use the qsnet2 profile.
func NewElan(net *simnet.Network, node simnet.NodeID) *Elan {
	nic := net.NIC(node)
	p := nic.Profile()
	return &Elan{base: newBase("elan", nic, capsFrom(p, p.MaxSegments), 0)}
}
