package drivers

import "nmad/internal/simnet"

// SISCIDriver is the Dolphin SCI port using the SISCI API. SCI moves data
// by PIO writes into a remotely mapped window, strictly contiguously, so
// every multi-segment packet is flattened through a bounce buffer (the
// memcpy is charged to the host). Remote-window placement counts as RDMA
// for rendezvous purposes.
type SISCIDriver struct{ *base }

// sisciSoftSegments is the gather capacity advertised to the engine; the
// hardware itself accepts only contiguous buffers.
const sisciSoftSegments = 32

// NewSISCI binds the port to the given node's NIC on net. The network
// must use the sisci profile.
func NewSISCI(net *simnet.Network, node simnet.NodeID) *SISCIDriver {
	nic := net.NIC(node)
	p := nic.Profile()
	caps := capsFrom(p, sisciSoftSegments)
	return &SISCIDriver{base: newBase("sisci", nic, caps, sisciSoftSegments)}
}
