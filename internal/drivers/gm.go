package drivers

import "nmad/internal/simnet"

// GM is the Myrinet-2000 port using the GM driver — the generation before
// MX. GM's gather list has only two entries, so the port advertises a
// larger software limit and flattens longer gather lists into a bounce
// buffer, charging the memcpy to the host. GM has no general RDMA, so the
// engine streams rendezvous bodies as eager chunk packets into the
// pre-registered landing buffer.
type GM struct{ *base }

// gmSoftSegments is the gather capacity GM advertises to the engine;
// anything beyond the NIC's native two entries goes through the bounce
// path.
const gmSoftSegments = 32

// NewGM binds the port to the given node's NIC on net. The network must
// use the gm2000 profile.
func NewGM(net *simnet.Network, node simnet.NodeID) *GM {
	nic := net.NIC(node)
	p := nic.Profile()
	caps := capsFrom(p, gmSoftSegments)
	return &GM{base: newBase("gm", nic, caps, gmSoftSegments)}
}
