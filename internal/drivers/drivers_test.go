package drivers

import (
	"errors"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

func pair(t *testing.T, prof simnet.Profile) (*sim.World, Driver, Driver) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	net, err := f.AddNetwork(prof)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := New(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := New(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w, d0, d1
}

func TestRegistryCoversAllProfiles(t *testing.T) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	want := map[string]string{
		"mx10g": "mx", "qsnet2": "elan", "gm2000": "gm", "sisci": "sisci", "tcp": "tcp",
	}
	for _, prof := range simnet.Profiles() {
		net, err := f.AddNetwork(prof)
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(net, 0)
		if err != nil {
			t.Fatalf("no driver for %s: %v", prof.Name, err)
		}
		if d.Name() != want[prof.Name] {
			t.Errorf("driver for %s named %q, want %q", prof.Name, d.Name(), want[prof.Name])
		}
		caps := d.Caps()
		if caps.RdvThreshold != prof.RdvThreshold || caps.RDMA != prof.RDMA {
			t.Errorf("%s caps %+v do not reflect the profile", d.Name(), caps)
		}
	}
}

func TestRegistryUnknownNetwork(t *testing.T) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	prof := simnet.MX10G()
	prof.Name = "mystery"
	net, err := f.AddNetwork(prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(net, 0); err == nil {
		t.Error("unknown network should not resolve to a driver")
	}
}

func TestSendRequiresOpen(t *testing.T) {
	_, d0, _ := pair(t, simnet.MX10G())
	err := d0.Send(1, simnet.TxEager, [][]byte{{1}}, 0, nil)
	if !errors.Is(err, ErrNotOpen) {
		t.Errorf("Send before Open: err = %v, want ErrNotOpen", err)
	}
}

func TestOpenSendReceiveClose(t *testing.T) {
	w, d0, d1 := pair(t, simnet.MX10G())
	var got []byte
	if err := d1.Open(func(d simnet.Delivery) { got = d.Data }, nil); err != nil {
		t.Fatal(err)
	}
	if err := d0.Open(func(simnet.Delivery) {}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d0.Open(func(simnet.Delivery) {}, nil); err == nil {
		t.Error("double Open should fail")
	}
	if !d0.Poll() {
		t.Error("Poll() should report an idle NIC after Open")
	}
	if err := d0.Send(1, simnet.TxEager, [][]byte{[]byte("ping")}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if d0.Poll() {
		t.Error("Poll() should report busy right after Send")
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Errorf("received %q, want %q", got, "ping")
	}
	if err := d0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d0.Close(); !errors.Is(err, ErrNotOpen) {
		t.Errorf("double Close: err = %v, want ErrNotOpen", err)
	}
	if d0.Stats().TxPackets != 1 {
		t.Errorf("TxPackets = %d, want 1", d0.Stats().TxPackets)
	}
}

func TestGMBouncesLongGatherLists(t *testing.T) {
	// GM's NIC takes 2 segments; the driver must still accept more by
	// flattening, and the flattened packet must arrive intact and *later*
	// than a native 2-segment send (the bounce memcpy costs time).
	deliver := func(nsegs int) (string, sim.Time) {
		w, d0, d1 := pair(t, simnet.GM2000())
		var got []byte
		var at sim.Time
		if err := d1.Open(func(d simnet.Delivery) { got = d.Data; at = w.Now() }, nil); err != nil {
			t.Fatal(err)
		}
		if err := d0.Open(func(simnet.Delivery) {}, nil); err != nil {
			t.Fatal(err)
		}
		segs := make([][]byte, nsegs)
		per := 4096 / nsegs
		for i := range segs {
			segs[i] = make([]byte, per)
			for j := range segs[i] {
				segs[i][j] = byte(i)
			}
		}
		if err := d0.Send(1, simnet.TxEager, segs, 0, nil); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return string(got), at
	}
	native, nativeAt := deliver(2)
	bounced, bouncedAt := deliver(8)
	if len(native) != 4096 || len(bounced) != 4096 {
		t.Fatalf("payload sizes %d / %d, want 4096", len(native), len(bounced))
	}
	if bouncedAt <= nativeAt {
		t.Errorf("bounced 8-segment send arrived at %v, native at %v: the bounce copy must cost time", bouncedAt, nativeAt)
	}
	for i := 0; i < 8; i++ {
		if bounced[i*512] != byte(i) {
			t.Fatalf("bounced payload corrupted at segment %d", i)
		}
	}
}

func TestGMRejectsBeyondSoftLimit(t *testing.T) {
	_, d0, _ := pair(t, simnet.GM2000())
	if err := d0.Open(func(simnet.Delivery) {}, nil); err != nil {
		t.Fatal(err)
	}
	segs := make([][]byte, gmSoftSegments+1)
	for i := range segs {
		segs[i] = []byte{1}
	}
	if err := d0.Send(1, simnet.TxEager, segs, 0, nil); !errors.Is(err, simnet.ErrTooManySegments) {
		t.Errorf("beyond soft limit: err = %v, want ErrTooManySegments", err)
	}
}

func TestSISCIBouncesEverythingNonContiguous(t *testing.T) {
	w, d0, d1 := pair(t, simnet.SISCI())
	var got []byte
	if err := d1.Open(func(d simnet.Delivery) { got = d.Data }, nil); err != nil {
		t.Fatal(err)
	}
	if err := d0.Open(func(simnet.Delivery) {}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d0.Send(1, simnet.TxEager, [][]byte{[]byte("ab"), []byte("cd")}, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Errorf("received %q, want %q", got, "abcd")
	}
}

func TestIdleHandlerDrivesRefill(t *testing.T) {
	w, d0, d1 := pair(t, simnet.QsNetII())
	n := 0
	if err := d1.Open(func(simnet.Delivery) { n++ }, nil); err != nil {
		t.Fatal(err)
	}
	left := 4
	var idle func()
	idle = func() {
		if left == 0 {
			return
		}
		left--
		if err := d0.Send(1, simnet.TxEager, [][]byte{{9}}, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := d0.Open(func(simnet.Delivery) {}, idle); err != nil {
		t.Fatal(err)
	}
	idle() // prime the pump
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("%d deliveries, want 4", n)
	}
}

func TestOnSentFiresPerSend(t *testing.T) {
	w, d0, d1 := pair(t, simnet.TCPGbE())
	if err := d1.Open(func(simnet.Delivery) {}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d0.Open(func(simnet.Delivery) {}, nil); err != nil {
		t.Fatal(err)
	}
	sent := 0
	for i := 0; i < 3; i++ {
		if err := d0.Send(1, simnet.TxEager, [][]byte{make([]byte, 100)}, 0, func() { sent++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sent != 3 {
		t.Errorf("OnSent fired %d times, want 3", sent)
	}
}
