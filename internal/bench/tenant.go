package bench

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/queue"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// The tenant-isolation workload: two tenants share node 0's engine
// through the multi-tenant job queue. The burst tenant (class bulk)
// floods eager traffic at nodes 2 and 3 while the victim tenant (class
// latency) runs a small pingpong against node 1. The isolation claim is
// that the victim's completion time under the competing burst stays
// close to its unloaded time — the queue classes pick the dispatch
// order, and the prio strategy plus the Priority() send flag keep the
// victim's wrappers from riding behind bulk trains on the wire.

// TenantIsolationConfig parameterizes one run.
type TenantIsolationConfig struct {
	// BurstMsgs eager messages of BurstSize bytes go from node 0 to each
	// of nodes 2 and 3. BurstMsgs = 0 disables the burst tenant — the
	// victim's unloaded baseline.
	BurstMsgs int
	BurstSize int
	// Iters pingpong round trips of RPCSize bytes between nodes 0 and 1.
	Iters   int
	RPCSize int
}

// TenantIsolationResult is what one run measured.
type TenantIsolationResult struct {
	// VictimUs / BurstUs are each tenant's submit-to-completion virtual
	// time. BurstUs is 0 when the burst is disabled.
	VictimUs float64
	BurstUs  float64
	// Stats is node 0's end-of-run engine snapshot (queue counters
	// included).
	Stats core.Stats
}

// TenantIsolation runs both tenants through a queue on node 0's engine
// (prio strategy, one MX rail, 4 nodes) and verifies every payload.
func TenantIsolation(cfg TenantIsolationConfig) (TenantIsolationResult, error) {
	if cfg.Iters < 1 || cfg.RPCSize < 1 {
		return TenantIsolationResult{}, fmt.Errorf("bench: tenant isolation needs a victim workload, got %+v", cfg)
	}
	const nodes = 4
	w := sim.NewWorld()
	f := simnet.NewFabric(w, nodes, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		return TenantIsolationResult{}, err
	}
	opts := core.DefaultOptions()
	opts.Strategy = "prio"
	engines := make([]*core.Engine, nodes)
	for n := range engines {
		e, err := core.New(f, simnet.NodeID(n), opts)
		if err != nil {
			return TenantIsolationResult{}, err
		}
		if err := e.AttachFabric(f); err != nil {
			return TenantIsolationResult{}, err
		}
		engines[n] = e
	}

	q, err := queue.New(engines[0], queue.Config{
		Workers: 2, // both tenants run; contention is on the shared engine
		Tenants: []queue.TenantSpec{
			{Name: "burst", Weight: 1, Class: queue.ClassBulk},
			{Name: "victim", Weight: 4, Class: queue.ClassLatency},
		},
	})
	if err != nil {
		return TenantIsolationResult{}, err
	}

	var res TenantIsolationResult
	var runErrs []error
	fail := func(err error) error { runErrs = append(runErrs, err); return err }

	// The victim's remote peer: echo every round trip from node 1.
	victim, _ := q.Tenant("victim")
	w.Spawn("victim-echo", func(p *sim.Proc) {
		g := engines[1].Gate(0)
		buf := make([]byte, cfg.RPCSize)
		for it := 0; it < cfg.Iters; it++ {
			if _, err := g.Recv(p, Tagged(100), buf); err != nil {
				fail(fmt.Errorf("victim echo recv: %w", err))
				return
			}
			if err := g.Isend(p, Tagged(101), buf).Wait(p); err != nil {
				fail(fmt.Errorf("victim echo send: %w", err))
				return
			}
		}
	})
	// Burst sinks on nodes 2 and 3 verify the flood byte for byte.
	if cfg.BurstMsgs > 0 {
		for _, sink := range []int{2, 3} {
			sink := sink
			w.Spawn(fmt.Sprintf("burst-sink-%d", sink), func(p *sim.Proc) {
				g := engines[sink].Gate(0)
				want := make([]byte, cfg.BurstSize)
				for m := 0; m < cfg.BurstMsgs; m++ {
					buf := make([]byte, cfg.BurstSize)
					n, err := g.Recv(p, Tagged(sink), buf)
					if err != nil {
						fail(fmt.Errorf("burst sink %d: %w", sink, err))
						return
					}
					for i := range want {
						want[i] = byte(sink*31 + m*7 + i)
					}
					for i := 0; i < n; i++ {
						if buf[i] != want[i] {
							fail(fmt.Errorf("burst sink %d: corrupt byte %d of msg %d", sink, i, m))
							return
						}
					}
				}
			})
		}
	}

	w.At(0, func() {
		if cfg.BurstMsgs > 0 {
			job, err := q.Submit("burst", "incast", func(p *sim.Proc) error {
				reqs := make([]core.Request, 0, 2*cfg.BurstMsgs)
				for m := 0; m < cfg.BurstMsgs; m++ {
					for _, sink := range []int{2, 3} {
						buf := make([]byte, cfg.BurstSize)
						for i := range buf {
							buf[i] = byte(sink*31 + m*7 + i)
						}
						reqs = append(reqs, engines[0].Gate(simnet.NodeID(sink)).Isend(p, Tagged(sink), buf))
					}
				}
				return core.WaitAll(p, reqs...)
			})
			if err != nil {
				fail(err)
				return
			}
			w.Spawn("burst-watch", func(p *sim.Proc) {
				if err := job.Wait(p); err != nil {
					fail(fmt.Errorf("burst job: %w", err))
				}
				res.BurstUs = p.Now().Microseconds()
			})
		}
		job, err := q.Submit("victim", "pingpong", func(p *sim.Proc) error {
			g := engines[0].Gate(1)
			buf := make([]byte, cfg.RPCSize)
			for it := 0; it < cfg.Iters; it++ {
				for i := range buf {
					buf[i] = byte(it*7 + i)
				}
				if err := g.Isend(p, Tagged(100), buf, victim.SendOptions()...).Wait(p); err != nil {
					return fmt.Errorf("victim send: %w", err)
				}
				if _, err := g.Recv(p, Tagged(101), buf); err != nil {
					return fmt.Errorf("victim recv: %w", err)
				}
				for i := range buf {
					if buf[i] != byte(it*7+i) {
						return fmt.Errorf("victim: corrupt byte %d of iter %d", i, it)
					}
				}
			}
			return nil
		})
		if err != nil {
			fail(err)
			return
		}
		w.Spawn("victim-watch", func(p *sim.Proc) {
			if err := job.Wait(p); err != nil {
				fail(fmt.Errorf("victim job: %w", err))
			}
			res.VictimUs = p.Now().Microseconds()
		})
	})

	if err := w.Run(); err != nil {
		return res, fmt.Errorf("bench: tenant isolation (%d burst msgs): %w", cfg.BurstMsgs, err)
	}
	if len(runErrs) > 0 {
		return res, runErrs[0]
	}
	res.Stats = engines[0].Stats()
	return res, nil
}

// FigTenantIsolation sweeps the burst intensity and plots the victim's
// completion time against its unloaded baseline — the tenant-isolation
// claim as a trend-gated figure.
func FigTenantIsolation() (Figure, error) {
	fig := Figure{
		ID:     "tenant-isolation",
		Title:  "Multi-tenant isolation — victim pingpong vs competing incast burst (MX, prio, job queue on node 0)",
		XLabel: "burst messages per sink (4KB each, two sinks)",
		YLabel: "completion (µs)",
		Notes: []string{
			"victim: 16 x 64B priority pingpong; acceptance: loaded within 2x unloaded while the burst completes",
		},
	}
	base := TenantIsolationConfig{BurstSize: 4 << 10, Iters: 16, RPCSize: 64}
	unloadedCfg := base
	unloadedCfg.BurstMsgs = 0
	unloaded, err := TenantIsolation(unloadedCfg)
	if err != nil {
		return fig, err
	}
	sweeps := []int{8, 32, 128}
	loadedS := Series{Label: "victim[under-burst]", Strategy: "prio"}
	baseS := Series{Label: "victim[unloaded]", Strategy: "prio"}
	burstS := Series{Label: "burst[completion]", Strategy: "prio"}
	for _, msgs := range sweeps {
		cfg := base
		cfg.BurstMsgs = msgs
		r, err := TenantIsolation(cfg)
		if err != nil {
			return fig, err
		}
		loadedS.Points = append(loadedS.Points, Point{X: msgs, Y: r.VictimUs})
		baseS.Points = append(baseS.Points, Point{X: msgs, Y: unloaded.VictimUs})
		burstS.Points = append(burstS.Points, Point{X: msgs, Y: r.BurstUs})
	}
	fig.Series = []Series{loadedS, baseS, burstS}
	return fig, nil
}
