package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Report formatting: aligned text tables for terminals, CSV for plotting.

// FormatTable renders a figure as an aligned text table, one row per X
// value, one column per series.
func FormatTable(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure %s: %s\n", fig.ID, fig.Title)
	if len(fig.Series) > 0 {
		xs := collectXs(fig)
		head := []string{fig.XLabel}
		for _, s := range fig.Series {
			head = append(head, s.Label)
		}
		rows := [][]string{head}
		for _, x := range xs {
			row := []string{formatSize(x)}
			for _, s := range fig.Series {
				row = append(row, lookup(s, x))
			}
			rows = append(rows, row)
		}
		writeAligned(&b, rows, fig.YLabel)
	}
	for _, n := range fig.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	for _, line := range strategyStamps(fig) {
		fmt.Fprintf(&b, "   %s\n", line)
	}
	return b.String()
}

// strategyStamps summarizes which engine configuration each MAD-MPI
// series ran with, deduplicated, for the report footer.
func strategyStamps(fig Figure) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range fig.Series {
		if s.Strategy == "" {
			continue
		}
		line := "strategy: " + s.Strategy
		if s.EngineOptions != "" {
			line += " (" + s.EngineOptions + ")"
		}
		line += " — " + s.Label
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	return out
}

// FormatJSON renders a figure as machine-readable JSON, for tracking
// result trajectories across runs (BENCH_*.json files).
func FormatJSON(fig Figure) string {
	data, err := json.MarshalIndent(fig, "", "  ")
	if err != nil {
		// The figure types marshal cleanly by construction.
		panic("bench: figure JSON encoding failed: " + err.Error())
	}
	return string(data)
}

// FormatCSV renders a figure as plain CSV (x, then one column per series).
func FormatCSV(fig Figure) string {
	var b strings.Builder
	cols := []string{"x"}
	for _, s := range fig.Series {
		cols = append(cols, strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for _, x := range collectXs(fig) {
		row := []string{fmt.Sprint(x)}
		for _, s := range fig.Series {
			v := lookup(s, x)
			if v == "-" {
				v = ""
			}
			row = append(row, v)
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func collectXs(fig Figure) []int {
	seen := map[int]bool{}
	var xs []int
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if !seen[pt.X] {
				seen[pt.X] = true
				xs = append(xs, pt.X)
			}
		}
	}
	sort.Ints(xs)
	return xs
}

func lookup(s Series, x int) string {
	for _, pt := range s.Points {
		if pt.X == x {
			return fmt.Sprintf("%.2f", pt.Y)
		}
	}
	return "-"
}

func formatSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprint(n)
	}
}

func writeAligned(b *strings.Builder, rows [][]string, unit string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(b, "   (values in %s)\n", unit)
	for ri, row := range rows {
		b.WriteString("   ")
		for i, cell := range row {
			fmt.Fprintf(b, "%*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			b.WriteString("   ")
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]+2))
			}
			b.WriteByte('\n')
		}
	}
}

// Speedup reports how much faster series a is than series b at the given
// X (b/a as a factor), for assertions and summaries.
func Speedup(fig Figure, labelA, labelB string, x int) (float64, error) {
	var ya, yb float64
	var oka, okb bool
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			if pt.X != x {
				continue
			}
			if s.Label == labelA {
				ya, oka = pt.Y, true
			}
			if s.Label == labelB {
				yb, okb = pt.Y, true
			}
		}
	}
	if !oka || !okb {
		return 0, fmt.Errorf("bench: series %q/%q missing at x=%d", labelA, labelB, x)
	}
	if ya == 0 {
		return 0, fmt.Errorf("bench: zero measurement for %q at x=%d", labelA, x)
	}
	return yb / ya, nil
}
