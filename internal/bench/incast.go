package bench

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// The incast overload workload: N senders flood one receiver that drains
// slowly — the many-to-one traffic pattern that turns an unbounded
// receive queue into an out-of-memory scenario at production scale. With
// credit flow control (core.Options.Credits) the excess backlog stays in
// each sender's collect layer and the receiver's queues stay bounded by
// the per-gate budget; without it they grow with the flood.

// IncastConfig parameterizes one incast run.
type IncastConfig struct {
	// Senders is the fan-in: nodes 1..Senders all target node 0.
	Senders int
	// Msgs eager messages of Size bytes per sender, submitted as one
	// burst before any wait.
	Msgs int
	Size int
	// Credits is the per-gate eager landing budget (0 = flow control
	// off); MaxGrants caps concurrent inbound rendezvous grants.
	Credits   int
	MaxGrants int
	// DrainGap is how long the receiver works between consecutive
	// receives of one flow — the "slow receiver" that builds the
	// overload. 0 means drain at full speed.
	DrainGap sim.Time
}

// IncastResult is what one incast run measured.
type IncastResult struct {
	// CompletionUs is the virtual time until every payload delivered.
	CompletionUs float64
	// PeakUnexpected / PeakHeld are the receiver's high-water marks: the
	// largest unexpected queue of any single gate and the largest
	// resequencing buffer of any single flow.
	PeakUnexpected int
	PeakHeld       int
	// ProtocolErrors counts receive-path anomalies (must stay 0).
	ProtocolErrors int
	// Delivered is the payload byte count received intact.
	Delivered int64
}

// Incast runs the workload on a single-rail MX fabric and verifies every
// delivered payload byte.
func Incast(cfg IncastConfig) (IncastResult, error) {
	if cfg.Senders < 1 || cfg.Msgs < 1 {
		return IncastResult{}, fmt.Errorf("bench: incast needs at least one sender and one message, got %+v", cfg)
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, cfg.Senders+1, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		return IncastResult{}, err
	}
	opts := core.DefaultOptions()
	opts.Credits = cfg.Credits
	opts.MaxGrants = cfg.MaxGrants

	mkEngine := func(node simnet.NodeID) (*core.Engine, error) {
		e, err := core.New(f, node, opts)
		if err != nil {
			return nil, err
		}
		return e, e.AttachFabric(f)
	}
	recv, err := mkEngine(0)
	if err != nil {
		return IncastResult{}, err
	}
	senders := make([]*core.Engine, cfg.Senders)
	for i := range senders {
		if senders[i], err = mkEngine(simnet.NodeID(i + 1)); err != nil {
			return IncastResult{}, err
		}
	}

	fill := func(sender, msg int, buf []byte) {
		for i := range buf {
			buf[i] = byte(sender*31 + msg*7 + i)
		}
	}

	var res IncastResult
	var done sim.Time
	for s, e := range senders {
		s, e := s, e
		w.Spawn(fmt.Sprintf("sender-%d", s+1), func(p *sim.Proc) {
			reqs := make([]core.Request, 0, cfg.Msgs)
			for m := 0; m < cfg.Msgs; m++ {
				buf := make([]byte, cfg.Size)
				fill(s+1, m, buf)
				reqs = append(reqs, e.Gate(0).Isend(p, Tagged(s+1), buf))
			}
			if err := core.WaitAll(p, reqs...); err != nil {
				panic(fmt.Sprintf("incast sender %d: %v", s+1, err))
			}
		})
	}
	for s := range senders {
		s := s
		w.Spawn(fmt.Sprintf("drain-%d", s+1), func(p *sim.Proc) {
			g := recv.Gate(simnet.NodeID(s + 1))
			want := make([]byte, cfg.Size)
			for m := 0; m < cfg.Msgs; m++ {
				if cfg.DrainGap > 0 {
					p.Sleep(cfg.DrainGap)
				}
				buf := make([]byte, cfg.Size)
				n, err := g.Recv(p, Tagged(s+1), buf)
				if err != nil {
					panic(fmt.Sprintf("incast recv from %d: %v", s+1, err))
				}
				fill(s+1, m, want)
				for i := 0; i < n; i++ {
					if buf[i] != want[i] {
						panic(fmt.Sprintf("incast: corrupt byte %d from sender %d msg %d", i, s+1, m))
					}
				}
				res.Delivered += int64(n)
				if p.Now() > done {
					done = p.Now()
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		return IncastResult{}, fmt.Errorf("bench: incast(%d senders, credits=%d): %w", cfg.Senders, cfg.Credits, err)
	}
	st := recv.Stats()
	res.CompletionUs = done.Microseconds()
	res.PeakUnexpected = st.PeakUnexpected
	res.PeakHeld = st.PeakHeld
	res.ProtocolErrors = st.ProtocolErrors
	return res, nil
}
