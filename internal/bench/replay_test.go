package bench

import "testing"

// The replay-ab figure must compare every strategy on identical wire
// work: same recording, same total bytes moved — only the schedule
// (packet count, completion) may differ. And the aggregating strategy
// can never lose to the window-less default on the composite workload.
func TestReplayABFigure(t *testing.T) {
	fig, err := FigReplayAB()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("expected 4 strategy series, got %d", len(fig.Series))
	}
	byLabel := map[string]Series{}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Errorf("%s: %d points, want 3", s.Label, len(s.Points))
		}
		byLabel[s.Label] = s
	}
	agg, def := byLabel["replay[aggreg]"], byLabel["replay[default]"]
	for i := range agg.Points {
		if agg.Points[i].X != def.Points[i].X {
			t.Fatalf("series sweep grids diverge: %v vs %v", agg.Points[i].X, def.Points[i].X)
		}
		// Identical offered load: aggregation may only help (small
		// tolerance for scheduling noise at tiny sizes).
		if agg.Points[i].Y > def.Points[i].Y*1.02 {
			t.Errorf("aggreg slower than default on identical recorded load at %dB: %.2f vs %.2f µs",
				agg.Points[i].X, agg.Points[i].Y, def.Points[i].Y)
		}
	}
}
