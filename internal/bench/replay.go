package bench

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/replay"
)

// FigReplayAB is the trace-driven replay A/B figure: the canonical
// composite workload is recorded ONCE per bulk-chunk size (under the
// aggreg personality), then the identical offered load — same
// submission instants, same sizes, same flows — is re-driven under each
// strategy. Unlike live ablations, the submission timing cannot drift
// with the schedule, so the deltas are pure strategy effects. The
// completion times enter the BENCH_PR*.json trajectory, putting every
// strategy's behavior on recorded load under the CI regression gate.
func FigReplayAB() (Figure, error) {
	fig := Figure{
		ID:     "replay-ab",
		Title:  "Trace-driven replay A/B — strategies on the recorded composite workload (MX)",
		XLabel: "bulk chunk size (bytes)",
		YLabel: "completion time (µs)",
		Notes: []string{
			"one recording per size (12 bulk chunks, 8-flow small burst, 256KB rendezvous, priority control + reply)",
			"identical submission timing across strategies: deltas are pure scheduling effects",
		},
	}
	strategies := []string{"aggreg", "default", "prio", "adaptive"}
	// The recorded personality every strategy replays under (only the
	// strategy itself varies): stamped like every other figure's series.
	base := replay.CanonicalConfig()
	recordedOpts := core.DefaultOptions()
	recordedOpts.Credits = base.Credits
	recordedOpts.MaxGrants = base.MaxGrants
	series := make(map[string]*Series, len(strategies))
	for _, s := range strategies {
		series[s] = &Series{Label: "replay[" + s + "]", Strategy: s, EngineOptions: summarizeOptions(recordedOpts)}
	}
	sizes := []int{2 << 10, 8 << 10, 32 << 10}
	for _, bulk := range sizes {
		cfg := replay.CanonicalConfig()
		cfg.Bulk = bulk
		rec, err := replay.RecordComposite(cfg)
		if err != nil {
			return fig, fmt.Errorf("bench: replay-ab recording (bulk %d): %w", bulk, err)
		}
		for _, s := range strategies {
			res, err := replay.Run(rec, replay.Config{Strategy: s})
			if err != nil {
				return fig, fmt.Errorf("bench: replay-ab %s (bulk %d): %w", s, bulk, err)
			}
			if res.RequestErrors > 0 {
				return fig, fmt.Errorf("bench: replay-ab %s (bulk %d): %d request errors", s, bulk, res.RequestErrors)
			}
			series[s].Points = append(series[s].Points, Point{X: bulk, Y: res.Completion.Microseconds()})
			if bulk == sizes[len(sizes)-1] {
				fig.Notes = append(fig.Notes, fmt.Sprintf(
					"%s @ %dK: %d packets, %d wire bytes, aggregation ratio %.2f",
					s, bulk>>10, res.Packets(), res.WireBytes(), res.AggregationRatio()))
			}
		}
	}
	for _, s := range strategies {
		fig.Series = append(fig.Series, *series[s])
	}
	return fig, nil
}
