package bench

import (
	"fmt"
	"sort"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Point is one measurement: X is the swept parameter (bytes), Y the
// metric (µs or MB/s).
type Point struct {
	X int     `json:"x"`
	Y float64 `json:"y"`
}

// Series is one implementation's curve. Strategy and EngineOptions stamp
// the engine configuration the series ran with (empty for non-MAD-MPI
// baselines), so a report is self-describing.
type Series struct {
	Label         string  `json:"label"`
	Strategy      string  `json:"strategy,omitempty"`
	EngineOptions string  `json:"engine_options,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
	Faults        string  `json:"fault_profile,omitempty"`
	Points        []Point `json:"points"`
}

// Figure is a regenerated paper figure (or table).
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`
}

// Sizes returns the powers of two in [lo, hi], the paper's sweep grids.
func Sizes(lo, hi int) []int {
	var out []int
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

func mxRails() []simnet.Profile { return []simnet.Profile{simnet.MX10G()} }

func qsRails() []simnet.Profile { return []simnet.Profile{simnet.QsNetII()} }

// sweep measures fn over sizes for each implementation, stamping each
// series with the implementation's engine configuration.
func sweep(impls []Impl, sizes []int, fn func(Impl, int) (float64, error)) ([]Series, error) {
	var out []Series
	for _, impl := range impls {
		s := Series{Label: impl.Name, Strategy: impl.Strategy, EngineOptions: impl.EngineOptions}
		for _, size := range sizes {
			y, err := fn(impl, size)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: size, Y: y})
		}
		out = append(out, s)
	}
	return out, nil
}

// toBandwidth converts latency series (µs) to bandwidth (MB/s): bytes per
// microsecond equals megabytes per second.
func toBandwidth(in []Series) []Series {
	out := make([]Series, len(in))
	for i, s := range in {
		out[i] = Series{Label: s.Label}
		for _, pt := range s.Points {
			out[i].Points = append(out[i].Points, Point{X: pt.X, Y: float64(pt.X) / pt.Y})
		}
	}
	return out
}

// The paper's sweep grids.
var (
	fig2Sizes   = Sizes(4, 2<<20)
	fig3SizesMX = Sizes(4, 16<<10)
	fig3SizesQs = Sizes(4, 8<<10)
	fig4Sizes   = []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
)

// Fig2a: raw ping-pong latency over MX/Myrinet.
func Fig2a() (Figure, error) {
	series, err := sweep(
		[]Impl{MadMPI(core.DefaultOptions()), MPICH(), OpenMPI()},
		fig2Sizes,
		func(impl Impl, size int) (float64, error) { return PingPong(impl, mxRails(), size) },
	)
	return Figure{
		ID: "2a", Title: "Raw point-to-point ping-pong — latency over MX/Myri-10G",
		XLabel: "message size (bytes)", YLabel: "latency (µs)", Series: series,
		Notes: []string{"paper: MAD-MPI tracks MPICH with a constant < 0.5 µs overhead"},
	}, err
}

// Fig2b: raw ping-pong bandwidth over MX/Myrinet.
func Fig2b() (Figure, error) {
	fig, err := Fig2a()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "2b", Title: "Raw point-to-point ping-pong — bandwidth over MX/Myri-10G",
		XLabel: "message size (bytes)", YLabel: "bandwidth (MB/s)",
		Series: toBandwidth(fig.Series),
		Notes:  []string{"paper: MAD-MPI reaches 1155 MB/s over MYRI-10G"},
	}, nil
}

// Fig2c: raw ping-pong latency over Elan/Quadrics.
func Fig2c() (Figure, error) {
	series, err := sweep(
		[]Impl{MadMPI(core.DefaultOptions()), MPICH()},
		fig2Sizes,
		func(impl Impl, size int) (float64, error) { return PingPong(impl, qsRails(), size) },
	)
	return Figure{
		ID: "2c", Title: "Raw point-to-point ping-pong — latency over Elan/Quadrics",
		XLabel: "message size (bytes)", YLabel: "latency (µs)", Series: series,
	}, err
}

// Fig2d: raw ping-pong bandwidth over Elan/Quadrics.
func Fig2d() (Figure, error) {
	fig, err := Fig2c()
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID: "2d", Title: "Raw point-to-point ping-pong — bandwidth over Elan/Quadrics",
		XLabel: "message size (bytes)", YLabel: "bandwidth (MB/s)",
		Series: toBandwidth(fig.Series),
		Notes:  []string{"paper: MAD-MPI reaches 835 MB/s over QUADRICS"},
	}, nil
}

// Tab51 reproduces the §5.1 in-text numbers: the constant software
// overhead of MAD-MPI vs MPICH at small sizes, and the peak bandwidths.
func Tab51() (Figure, error) {
	fig := Figure{
		ID: "5.1", Title: "§5.1 summary — MAD-MPI overhead and peak bandwidth",
		XLabel: "-", YLabel: "-",
	}
	for _, net := range []struct {
		name  string
		rails []simnet.Profile
	}{
		{"MX/Myri-10G", mxRails()},
		{"Elan/Quadrics", qsRails()},
	} {
		var overhead float64
		smalls := []int{4, 8, 16, 32, 64}
		for _, size := range smalls {
			mad, err := PingPong(MadMPI(core.DefaultOptions()), net.rails, size)
			if err != nil {
				return fig, err
			}
			mpich, err := PingPong(MPICH(), net.rails, size)
			if err != nil {
				return fig, err
			}
			overhead += mad - mpich
		}
		overhead /= float64(len(smalls))
		peakAt := 2 << 20
		lat, err := PingPong(MadMPI(core.DefaultOptions()), net.rails, peakAt)
		if err != nil {
			return fig, err
		}
		peak := float64(peakAt) / lat
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s: MAD-MPI constant overhead vs MPICH = %.2f µs (paper: < 0.5 µs); peak bandwidth = %.0f MB/s",
				net.name, overhead, peak))
	}
	return fig, nil
}

// Fig3a: 8-segment ping-pong latency over MX.
func Fig3a() (Figure, error) { return fig3("3a", mxRails(), fig3SizesMX, 8, true) }

// Fig3b: 16-segment ping-pong latency over MX.
func Fig3b() (Figure, error) { return fig3("3b", mxRails(), fig3SizesMX, 16, true) }

// Fig3c: 8-segment ping-pong latency over Quadrics.
func Fig3c() (Figure, error) { return fig3("3c", qsRails(), fig3SizesQs, 8, false) }

// Fig3d: 16-segment ping-pong latency over Quadrics.
func Fig3d() (Figure, error) { return fig3("3d", qsRails(), fig3SizesQs, 16, false) }

func fig3(id string, rails []simnet.Profile, sizes []int, nsegs int, withOpenMPI bool) (Figure, error) {
	impls := []Impl{MadMPI(core.DefaultOptions()), MPICH()}
	if withOpenMPI {
		impls = append(impls, OpenMPI())
	}
	series, err := sweep(impls, sizes, func(impl Impl, size int) (float64, error) {
		return MultiSegPingPong(impl, rails, size, nsegs)
	})
	net := rails[0].Name
	return Figure{
		ID: id, Title: fmt.Sprintf("%d-segment ping-pong — latency over %s (one communicator per segment)", nsegs, net),
		XLabel: "per-segment size (bytes)", YLabel: "latency (µs)", Series: series,
		Notes: []string{"paper: MAD-MPI up to 70% faster over MX, up to 50% over Quadrics"},
	}, err
}

// Fig4a: indexed datatype transfer time over MX.
func Fig4a() (Figure, error) { return fig4("4a", mxRails(), true) }

// Fig4b: indexed datatype transfer time over Quadrics.
func Fig4b() (Figure, error) { return fig4("4b", qsRails(), false) }

func fig4(id string, rails []simnet.Profile, withOpenMPI bool) (Figure, error) {
	impls := []Impl{MadMPI(core.DefaultOptions()), MPICH()}
	if withOpenMPI {
		impls = append(impls, OpenMPI())
	}
	series, err := sweep(impls, fig4Sizes, func(impl Impl, size int) (float64, error) {
		return DatatypePingPong(impl, rails, size)
	})
	return Figure{
		ID: id, Title: fmt.Sprintf("Indexed datatype (64B + 256KB blocks) — transfer time over %s", rails[0].Name),
		XLabel: "total message size (bytes)", YLabel: "transfer time (µs)", Series: series,
		Notes: []string{"paper: ~70% gain vs MPICH, ~50% vs OpenMPI over MX; up to ~70% vs MPICH over Quadrics"},
	}, err
}

// AblationStrategies compares the engine's strategies on the Figure 3
// workload: the value of the optimization window itself.
func AblationStrategies() (Figure, error) {
	mk := func(name string) core.Options {
		o := core.DefaultOptions()
		o.Strategy = name
		return o
	}
	impls := []Impl{
		MadMPI(mk("aggreg")),
		MadMPI(mk("default")),
		MadMPI(mk("prio")),
		MPICH(),
	}
	series, err := sweep(impls, Sizes(4, 4<<10), func(impl Impl, size int) (float64, error) {
		return MultiSegPingPong(impl, mxRails(), size, 16)
	})
	return Figure{
		ID: "ablation-strategies", Title: "Ablation — strategy choice on the 16-segment workload (MX)",
		XLabel: "per-segment size (bytes)", YLabel: "latency (µs)", Series: series,
		Notes: []string{"default = FIFO without aggregation: the engine without its window"},
	}, err
}

// AblationMultirail measures heterogeneous multi-rail splitting: one
// large body over MX alone vs MX+Quadrics with the split strategy.
func AblationMultirail() (Figure, error) {
	split := core.DefaultOptions()
	split.Strategy = "split"
	sizes := Sizes(64<<10, 16<<20)
	oneRail, err := sweep([]Impl{MadMPI(core.DefaultOptions())}, sizes,
		func(impl Impl, size int) (float64, error) { return PingPong(impl, mxRails(), size) })
	if err != nil {
		return Figure{}, err
	}
	twoRails, err := sweep([]Impl{MadMPI(split)}, sizes,
		func(impl Impl, size int) (float64, error) {
			return PingPong(impl, []simnet.Profile{simnet.MX10G(), simnet.QsNetII()}, size)
		})
	if err != nil {
		return Figure{}, err
	}
	oneRail[0].Label = "MadMPI (MX only)"
	twoRails[0].Label = "MadMPI[split] (MX + Quadrics)"
	return Figure{
		ID: "ablation-multirail", Title: "Ablation — multi-rail body splitting (paper §7 future work)",
		XLabel: "message size (bytes)", YLabel: "latency (µs)",
		Series: append(oneRail, twoRails...),
		Notes:  []string{"bandwidth-proportional heterogeneous splitting across 1250+900 MB/s rails"},
	}, nil
}

// AblationOverhead decomposes the §5.1 constant overhead into its two
// software components by zeroing them in turn.
func AblationOverhead() (Figure, error) {
	mk := func(submit, sched sim.Time) core.Options {
		o := core.DefaultOptions()
		o.SubmitOverhead = submit
		o.ScheduleOverhead = sched
		return o
	}
	full := core.DefaultOptions()
	rename := func(name string, o core.Options) Impl {
		impl := MadMPI(o)
		impl.Name = name
		return impl
	}
	impls := []Impl{
		MadMPI(full),
		rename("MadMPI[no-submit]", mk(0, full.ScheduleOverhead)),
		rename("MadMPI[no-sched]", mk(full.SubmitOverhead, 0)),
		rename("MadMPI[zero-overhead]", mk(0, 0)),
		MPICH(),
	}
	series, err := sweep(impls, []int{4, 64, 1024}, func(impl Impl, size int) (float64, error) {
		return PingPong(impl, mxRails(), size)
	})
	return Figure{
		ID: "ablation-overhead", Title: "Ablation — decomposing the MAD-MPI critical-path overhead (MX, small messages)",
		XLabel: "message size (bytes)", YLabel: "latency (µs)", Series: series,
		Notes: []string{"submit = collect-layer wrapping; sched = ready-list inspection per output packet (§5.1)"},
	}, err
}

// AblationRdvThreshold sweeps the aggregation cap / rendezvous switch.
func AblationRdvThreshold() (Figure, error) {
	var impls []Impl
	for _, thr := range []int{8 << 10, 32 << 10, 128 << 10} {
		thr := thr
		impls = append(impls, Impl{
			Name: fmt.Sprintf("MadMPI[rdv=%dK]", thr>>10),
			Make: func(f *simnet.Fabric) (Peer, Peer, error) {
				return MadMPI(core.DefaultOptions()).Make(f)
			},
		})
	}
	// The threshold lives in the profile; sweep by building custom rails.
	fig := Figure{
		ID: "ablation-rdv", Title: "Ablation — rendezvous threshold / aggregation cap (MX, 16KB..256KB)",
		XLabel: "message size (bytes)", YLabel: "latency (µs)",
		Notes: []string{"low threshold: early zero-copy but more handshakes; high: longer eager copies"},
	}
	for i, thr := range []int{8 << 10, 32 << 10, 128 << 10} {
		prof := simnet.MX10G()
		prof.RdvThreshold = thr
		s := Series{Label: impls[i].Name, Strategy: "aggreg", EngineOptions: summarizeOptions(core.DefaultOptions())}
		for _, size := range Sizes(16<<10, 256<<10) {
			y, err := PingPong(MadMPI(core.DefaultOptions()), []simnet.Profile{prof}, size)
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: size, Y: y})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationModes compares the three scheduling modes of §3.2 on the
// 16-segment workload: just-in-time (the default), anticipation
// (pre-built packets) and backlog flush.
func AblationModes() (Figure, error) {
	mk := func(name string, mod func(*core.Options)) Impl {
		opts := core.DefaultOptions()
		mod(&opts)
		impl := MadMPI(opts)
		impl.Name = name
		return impl
	}
	impls := []Impl{
		mk("just-in-time", func(*core.Options) {}),
		mk("anticipate", func(o *core.Options) { o.Anticipate = true }),
		mk("flush-4", func(o *core.Options) { o.FlushBacklog = 4 }),
		mk("flush-8", func(o *core.Options) { o.FlushBacklog = 8 }),
	}
	series, err := sweep(impls, Sizes(4, 4<<10), func(impl Impl, size int) (float64, error) {
		return MultiSegPingPong(impl, mxRails(), size, 16)
	})
	return Figure{
		ID: "ablation-modes", Title: "Ablation — §3.2 scheduling modes on the 16-segment workload (MX)",
		XLabel: "per-segment size (bytes)", YLabel: "latency (µs)", Series: series,
		Notes: []string{
			"just-in-time elects on NIC-idle; anticipation pre-builds one packet (less aggregation);",
			"flush-N elects whenever N wrappers queue (bounded trains, earlier first byte)",
		},
	}, err
}

// AblationComposite measures control-message latency inside a bulk
// stream: the multiplexing scenario of §2. The priority strategy lets the
// control fragment jump the accumulated bulk.
func AblationComposite() (Figure, error) {
	fig := Figure{
		ID: "ablation-composite", Title: "Ablation — control latency inside a bulk stream (MX, 16 x 16KB bulk)",
		XLabel: "bulk chunk size (bytes)", YLabel: "control latency (µs)",
		Notes: []string{"one small control message issued mid-stream; lower is better"},
	}
	prioOpts := core.DefaultOptions()
	prioOpts.Strategy = "prio"
	cases := []struct {
		label string
		impl  Impl
		prio  bool
	}{
		{"MadMPI[prio]+priority-flag", MadMPI(prioOpts), true},
		{"MadMPI[aggreg]", MadMPI(core.DefaultOptions()), false},
		{"MPICH", MPICH(), false},
	}
	for _, c := range cases {
		s := Series{Label: c.label, Strategy: c.impl.Strategy, EngineOptions: c.impl.EngineOptions}
		for _, bulk := range []int{4 << 10, 8 << 10, 16 << 10} {
			lat, err := CompositeControlLatency(c.impl, mxRails(), bulk, 16, c.prio)
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: bulk, Y: lat})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// AblationSampling shows the functional-bandwidth sampler at work: a
// two-rail transfer with the MX rail congested to 30% of nominal. Cold
// engines plan with nominal figures and overload the congested rail;
// warmed engines rebalance from samples.
func AblationSampling() (Figure, error) {
	fig := Figure{
		ID: "ablation-sampling", Title: "Ablation — bandwidth sampling under congestion (MX at 30%, split strategy)",
		XLabel: "message size (bytes)", YLabel: "transfer time (µs)",
		Notes: []string{"cold = nominal-bandwidth plan; warmed = plan from sampled functional bandwidth"},
	}
	for _, c := range []struct {
		label  string
		warmup int
	}{
		{"cold (nominal plan)", 0},
		{"warmed (sampled plan)", 4},
	} {
		s := Series{Label: c.label, Strategy: "split"}
		for _, size := range []int{2 << 20, 4 << 20, 8 << 20} {
			t, err := CongestedTransfer(size, 0.3, c.warmup)
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: size, Y: t})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FigIncast measures the incast overload scenario: N senders flood one
// slow receiver with a burst of eager messages. Without flow control the
// receiver's unexpected queue grows with the burst; with a credit budget
// it is bounded by the budget while every payload still arrives intact.
func FigIncast() (Figure, error) {
	fig := Figure{
		ID: "incast", Title: "Incast overload — receiver queue high-water mark (MX, 32 x 1KB burst per sender, slow receiver)",
		XLabel: "senders", YLabel: "peak unexpected queue (wrappers)",
		Notes: []string{"per-gate high-water mark; with credits=N the bound is the budget, without it the burst size"},
	}
	for _, c := range []struct {
		label   string
		credits int
	}{
		{"no flow control", 0},
		{"credits=16", 16},
		{"credits=8", 8},
	} {
		stamp := core.DefaultOptions()
		stamp.Credits = c.credits
		stamp.MaxGrants = 4
		s := Series{Label: c.label, Strategy: "aggreg", EngineOptions: summarizeOptions(stamp)}
		var last IncastResult
		for _, n := range []int{2, 4, 8} {
			r, err := Incast(IncastConfig{
				Senders: n, Msgs: 32, Size: 1 << 10,
				Credits: c.credits, MaxGrants: 4,
				DrainGap: 2 * sim.Microsecond,
			})
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: n, Y: float64(r.PeakUnexpected)})
			last = r
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: 8-to-1 completion %.0f µs, peak held %d, protocol errors %d",
			s.Label, last.CompletionUs, last.PeakHeld, last.ProtocolErrors))
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FigureInfo describes one runnable figure for discovery (-list).
type FigureInfo struct {
	ID   string
	Desc string
}

// figureList is the registry of everything the harness can regenerate,
// in curated order: paper figures first, then the ablations and the
// scale workloads.
var figureList = []struct {
	id   string
	desc string
	fn   func() (Figure, error)
}{
	{"2a", "raw ping-pong latency over MX/Myri-10G (vs MPICH, OpenMPI)", Fig2a},
	{"2b", "raw ping-pong bandwidth over MX/Myri-10G", Fig2b},
	{"2c", "raw ping-pong latency over Elan/Quadrics", Fig2c},
	{"2d", "raw ping-pong bandwidth over Elan/Quadrics", Fig2d},
	{"5.1", "§5.1 summary: constant software overhead and peak bandwidths", Tab51},
	{"3a", "8-segment ping-pong over MX, one communicator per segment", Fig3a},
	{"3b", "16-segment ping-pong over MX", Fig3b},
	{"3c", "8-segment ping-pong over Quadrics", Fig3c},
	{"3d", "16-segment ping-pong over Quadrics", Fig3d},
	{"4a", "indexed-datatype (64B+256KB blocks) transfer time over MX", Fig4a},
	{"4b", "indexed-datatype transfer time over Quadrics", Fig4b},
	{"incast", "N-to-1 eager overload: receiver queue bound under credit flow control", FigIncast},
	{"allreduce", "collective schedule engine: tree/pipelined-ring allreduce vs the seed blocking tree, size × nodes", FigAllreduce},
	{"replay-ab", "trace-driven replay A/B: strategies on the recorded composite workload, identical submission timing", FigReplayAB},
	{"ablation-strategies", "strategy choice (aggreg/default/prio) on the 16-segment workload", AblationStrategies},
	{"ablation-multirail", "heterogeneous multi-rail body splitting (MX + Quadrics)", AblationMultirail},
	{"ablation-overhead", "decomposing the critical-path software overhead (submit vs sched)", AblationOverhead},
	{"ablation-rdv", "rendezvous threshold / aggregation cap sweep", AblationRdvThreshold},
	{"ablation-modes", "§3.2 scheduling modes: just-in-time vs anticipation vs backlog flush", AblationModes},
	{"ablation-composite", "control-message latency inside a bulk stream (priority strategy)", AblationComposite},
	{"ablation-sampling", "bandwidth sampling under congestion (cold vs warmed split plan)", AblationSampling},
	{"scale-nodes", "collective completion vs emulated job size, 8..1024 nodes, lossless vs 1% drop", FigScaleNodes},
	{"drop-resilience", "8-node allgather completion vs packet-drop probability per strategy", FigDropResilience},
	{"engine-speed", "meta: wall-clock engine ops/sec replaying the composite ring at 8/256/1024 nodes", FigEngineSpeed},
	{"engine-allocs", "meta: heap allocations per op replaying the composite ring at 8/256/1024 nodes", FigEngineAllocs},
	{"tenant-isolation", "multi-tenant job queue: victim pingpong latency under a competing tenant's incast burst", FigTenantIsolation},
}

// FigureIDs lists the registry keys in stable (sorted) order.
func FigureIDs() []string {
	ids := make([]string, 0, len(figureList))
	for _, e := range figureList {
		ids = append(ids, e.id)
	}
	sort.Strings(ids)
	return ids
}

// Figures lists every runnable figure with its one-line description, in
// curated registry order (paper figures, then workloads and ablations).
func Figures() []FigureInfo {
	out := make([]FigureInfo, 0, len(figureList))
	for _, e := range figureList {
		out = append(out, FigureInfo{ID: e.id, Desc: e.desc})
	}
	return out
}

// Run regenerates one figure by id.
func Run(id string) (Figure, error) {
	for _, e := range figureList {
		if e.id == id {
			return e.fn()
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q (have %v)", id, FigureIDs())
}
