package bench

import (
	"reflect"
	"testing"
)

func TestTenantIsolationBound(t *testing.T) {
	base := TenantIsolationConfig{BurstSize: 4 << 10, Iters: 16, RPCSize: 64}
	unloaded, err := TenantIsolation(base)
	if err != nil {
		t.Fatal(err)
	}
	if unloaded.VictimUs <= 0 {
		t.Fatalf("unloaded victim completion %v, want > 0", unloaded.VictimUs)
	}
	for _, msgs := range []int{8, 32, 128} {
		cfg := base
		cfg.BurstMsgs = msgs
		r, err := TenantIsolation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The acceptance bound: the competing burst must not starve the
		// victim past 2x its unloaded completion, and the burst tenant
		// must itself complete.
		if r.VictimUs > 2*unloaded.VictimUs {
			t.Errorf("msgs=%d: victim %.1fµs under burst > 2x unloaded %.1fµs",
				msgs, r.VictimUs, unloaded.VictimUs)
		}
		if r.BurstUs <= 0 {
			t.Errorf("msgs=%d: burst tenant never completed", msgs)
		}
		if st := r.Stats; st.JobsCompleted != 2 || st.JobsRejected != 0 {
			t.Errorf("msgs=%d: jobs completed/rejected = %d/%d, want 2/0",
				msgs, st.JobsCompleted, st.JobsRejected)
		}
	}
}

func TestTenantIsolationDeterministic(t *testing.T) {
	cfg := TenantIsolationConfig{BurstMsgs: 32, BurstSize: 4 << 10, Iters: 16, RPCSize: 64}
	a, err := TenantIsolation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TenantIsolation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
}
