package bench

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling hooks for the nmad-bench CLI (-cpuprofile / -memprofile):
// the reproducible way to profile the engine hot paths is to profile the
// bench figures themselves — `nmad-bench -fig engine-speed -cpuprofile
// cpu.out` profiles exactly the workload the trajectory gates.

// StartCPUProfile begins a CPU profile into path and returns the stop
// function that finishes the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("bench: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteMemProfile writes the heap allocation profile to path. A GC runs
// first so the live-object numbers are current; the alloc_space /
// alloc_objects views (what the engine-allocs figure tracks) cover
// everything allocated since process start either way.
func WriteMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: mem profile: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("bench: mem profile: %w", err)
	}
	return f.Close()
}
