package bench

import (
	"bytes"
	"fmt"

	"nmad/internal/core"
	"nmad/internal/madmpi"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Lossy-fabric workloads: collectives at emulation scale on a fabric
// that drops packets, measuring what the reliability layer costs. Every
// run verifies payload integrity — a figure is only emitted if zero
// payloads were lost, truncated or duplicated.

// benchSeed seeds every fault profile the lossy figures build. One knob
// for the whole harness (cmd/nmad-bench -seed): the same seed reproduces
// the same drops, and therefore the same completion numbers, bit for bit.
var benchSeed uint64 = 42

// SetSeed sets the fault-injection seed for subsequently built figures.
func SetSeed(s uint64) { benchSeed = s }

// Seed reports the active fault-injection seed.
func Seed() uint64 { return benchSeed }

// faultStamp renders a profile compactly for the Series stamp.
func faultStamp(fp simnet.FaultProfile) string {
	if len(fp.Rails) == 0 {
		return ""
	}
	r := fp.Rails[0]
	s := fmt.Sprintf("drop=%g%%", 100*r.DropProb)
	if r.DupProb > 0 {
		s += fmt.Sprintf(" dup=%g%%", 100*r.DupProb)
	}
	if r.ReorderProb > 0 {
		s += fmt.Sprintf(" reorder=%g%%", 100*r.ReorderProb)
	}
	return s
}

// LossyCollectiveConfig parameterizes one lossy collective run.
type LossyCollectiveConfig struct {
	// Nodes is the emulated job size; Kind is "barrier", "allgather" or
	// "multiseg" (a 16-segment ring neighbor exchange — the workload
	// where the optimization window matters, since aggregation packs
	// segments into fewer packets and fewer packets means fewer drops).
	Nodes int
	Kind  string
	// Per is the per-rank payload in bytes (per slot for allgather, per
	// segment for multiseg).
	Per int
	// Drop is the uniform per-packet drop probability (0 = lossless; the
	// engines run the reliability layer either way, so a lossless run
	// measures the framing/ack overhead alone).
	Drop float64
	// Strategy overrides the engine strategy ("" = default aggreg).
	Strategy string
}

// LossyCollectiveResult is one verified run.
type LossyCollectiveResult struct {
	// CompletionUs is the virtual time the last rank finished, in µs.
	CompletionUs float64
	// Retransmits sums link-frame re-injections across all ranks.
	Retransmits int
}

// LossyCollective runs one collective across an emulated lossy MX
// fabric with reliability-enabled engines and verifies every delivered
// payload. The run is fully deterministic in (config, seed).
func LossyCollective(cfg LossyCollectiveConfig) (LossyCollectiveResult, error) {
	var res LossyCollectiveResult
	w := sim.NewWorld()
	f := simnet.NewFabric(w, cfg.Nodes, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		return res, err
	}
	if cfg.Drop > 0 {
		if err := f.SetFaults(simnet.UniformLoss(benchSeed, cfg.Drop, 1)); err != nil {
			return res, err
		}
	}
	opts := core.DefaultOptions()
	opts.Reliability = true
	if cfg.Strategy != "" {
		opts.Strategy = cfg.Strategy
	}

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	mpis := make([]*madmpi.MPI, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		m, err := madmpi.Init(f, simnet.NodeID(i), opts)
		if err != nil {
			return res, err
		}
		mpis[i] = m
	}
	for i := 0; i < cfg.Nodes; i++ {
		m := mpis[i]
		w.Spawn(fmt.Sprintf("rank%d", i), func(p *sim.Proc) {
			switch cfg.Kind {
			case "barrier":
				if err := m.CommWorld().Barrier(p); err != nil {
					fail(fmt.Errorf("rank %d barrier: %w", m.Rank(), err))
				}
			case "allgather":
				rank := m.Rank()
				me := make([]byte, cfg.Per)
				for j := range me {
					me[j] = byte(rank*131 + j*7)
				}
				all := make([]byte, cfg.Nodes*cfg.Per)
				if err := m.CommWorld().Allgather(p, me, all); err != nil {
					fail(fmt.Errorf("rank %d allgather: %w", rank, err))
					return
				}
				want := make([]byte, cfg.Per)
				for r := 0; r < cfg.Nodes; r++ {
					for j := range want {
						want[j] = byte(r*131 + j*7)
					}
					if !bytes.Equal(all[r*cfg.Per:(r+1)*cfg.Per], want) {
						fail(fmt.Errorf("rank %d: slot %d corrupt — a payload was lost or duplicated", rank, r))
						return
					}
				}
			case "multiseg":
				const segs = 16
				rank := m.Rank()
				next := (rank + 1) % cfg.Nodes
				prev := (rank + cfg.Nodes - 1) % cfg.Nodes
				c := m.CommWorld()
				reqs := make([]*madmpi.Request, 0, 2*segs)
				in := make([][]byte, segs)
				for s := 0; s < segs; s++ {
					out := make([]byte, cfg.Per)
					for j := range out {
						out[j] = byte(rank*131 + s*17 + j*7)
					}
					in[s] = make([]byte, cfg.Per)
					reqs = append(reqs,
						c.Irecv(p, in[s], prev, s),
						c.Isend(p, out, next, s))
				}
				if err := madmpi.Waitall(p, reqs...); err != nil {
					fail(fmt.Errorf("rank %d multiseg: %w", rank, err))
					return
				}
				want := make([]byte, cfg.Per)
				for s := 0; s < segs; s++ {
					for j := range want {
						want[j] = byte(prev*131 + s*17 + j*7)
					}
					if !bytes.Equal(in[s], want) {
						fail(fmt.Errorf("rank %d: segment %d corrupt — a payload was lost or duplicated", rank, s))
						return
					}
				}
			default:
				fail(fmt.Errorf("bench: unknown lossy collective %q", cfg.Kind))
			}
			if now := float64(p.Now()) / float64(sim.Microsecond); now > res.CompletionUs {
				res.CompletionUs = now
			}
		})
	}
	if err := w.Run(); err != nil {
		return res, err
	}
	if firstErr != nil {
		return res, firstErr
	}
	for _, m := range mpis {
		res.Retransmits += m.Engine().Stats().Retransmits
	}
	return res, nil
}

// FigScaleNodes sweeps the emulated job size from 8 to 1024 nodes:
// barrier and allgather completion, lossless vs 1% drop, reliability on
// throughout. The paper runs on real clusters; this is where the
// simulation goes beyond them.
func FigScaleNodes() (Figure, error) {
	fig := Figure{
		ID: "scale-nodes", Title: "Scale — collective completion vs emulated job size (MX, reliability on)",
		XLabel: "nodes", YLabel: "completion (µs)",
		Notes: []string{
			"dissemination barrier and 64B-per-rank allgather; every payload verified intact",
			fmt.Sprintf("fault seed %d; drop applies per packet on the single MX rail", benchSeed),
		},
	}
	nodes := []int{8, 64, 256, 1024}
	cases := []struct {
		label string
		kind  string
		drop  float64
	}{
		{"barrier lossless", "barrier", 0},
		{"barrier 1% drop", "barrier", 0.01},
		{"allgather lossless", "allgather", 0},
		{"allgather 1% drop", "allgather", 0.01},
	}
	for _, c := range cases {
		s := Series{Label: c.label, Strategy: "aggreg"}
		if c.drop > 0 {
			s.Seed = benchSeed
			s.Faults = faultStamp(simnet.UniformLoss(benchSeed, c.drop, 1))
		}
		retrans := 0
		for _, n := range nodes {
			r, err := LossyCollective(LossyCollectiveConfig{
				Nodes: n, Kind: c.kind, Per: 64, Drop: c.drop,
			})
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: n, Y: r.CompletionUs})
			retrans += r.Retransmits
		}
		if c.drop > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %d retransmissions across the sweep", c.label, retrans))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FigDropResilience sweeps the drop probability on an 8-node 16-segment
// ring exchange under each strategy: how completion degrades as the
// fabric gets worse, and whether the optimization window still pays off
// under loss — aggregation packs segments into fewer packets, and fewer
// packets means fewer drops to repair.
func FigDropResilience() (Figure, error) {
	fig := Figure{
		ID: "drop-resilience", Title: "Drop resilience — 8-node 16-segment ring exchange (256B/segment) completion vs packet loss (MX)",
		XLabel: "drop (%)", YLabel: "completion (µs)",
		Notes: []string{
			"reliability on; every segment verified intact at every point",
			fmt.Sprintf("fault seed %d", benchSeed),
		},
	}
	drops := []float64{0, 0.05, 0.10, 0.20, 0.30}
	for _, strat := range []string{"aggreg", "default", "prio"} {
		opts := core.DefaultOptions()
		opts.Strategy = strat
		opts.Reliability = true
		s := Series{
			Label: "MadMPI[" + strat + "]", Strategy: strat,
			EngineOptions: summarizeOptions(opts),
			Seed:          benchSeed,
			Faults:        "drop swept 0..30%",
		}
		for _, drop := range drops {
			r, err := LossyCollective(LossyCollectiveConfig{
				Nodes: 8, Kind: "multiseg", Per: 256, Drop: drop, Strategy: strat,
			})
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: int(100 * drop), Y: r.CompletionUs})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
