// Package bench is the harness that regenerates every figure and table of
// the paper's evaluation (§5): the raw ping-pong (Figure 2 and the §5.1
// overhead numbers), the multi-segment ping-pong over separate
// communicators (Figure 3), and the indexed-datatype transfer (Figure 4),
// plus the ablations DESIGN.md calls out.
//
// Measurements are virtual-time exact: each data point builds a fresh
// two-node world, runs the workload and reads the clock. No wall-clock
// noise, no warmup heuristics — two iterations of warmup only to reach
// steady protocol state (established gates, drained first-packet effects).
package bench

import (
	"fmt"
	"strings"

	"nmad/internal/baseline"
	"nmad/internal/core"
	"nmad/internal/madmpi"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Seg is one contiguous block of a non-contiguous layout, shared between
// the MAD-MPI and baseline typed paths.
type Seg struct {
	Off int
	Len int
}

// Pending is a nonblocking operation in flight.
type Pending interface {
	Wait(p *sim.Proc) error
}

// Peer is the MPI surface the benchmarks need, implemented by MAD-MPI and
// by both baseline personalities.
type Peer interface {
	// Isend/Irecv address (rank, tag, communicator); communicators are
	// dense small integers starting at 0.
	Isend(p *sim.Proc, buf []byte, dest, tag, comm int) Pending
	Irecv(p *sim.Proc, buf []byte, src, tag, comm int) Pending
	// SendTyped/RecvTyped move a non-contiguous layout, each
	// implementation using its own datatype engine.
	SendTyped(p *sim.Proc, base []byte, segs []Seg, dest, tag, comm int) error
	RecvTyped(p *sim.Proc, base []byte, segs []Seg, src, tag, comm int) error
}

// Impl names an MPI implementation and builds a two-rank job over a
// fabric. Strategy and EngineOptions stamp the engine configuration into
// every series measured with the implementation (empty for baselines),
// so reports record what they ran.
type Impl struct {
	Name          string
	Strategy      string
	EngineOptions string
	Make          func(f *simnet.Fabric) (Peer, Peer, error)
}

// MadMPI returns the MAD-MPI implementation with the given engine
// options (DefaultOptions reproduces the paper's configuration).
func MadMPI(opts core.Options) Impl {
	name := "MadMPI"
	if opts.Strategy != "" && opts.Strategy != "aggreg" {
		name = "MadMPI[" + opts.Strategy + "]"
	}
	strategy := opts.Strategy
	if strategy == "" {
		strategy = "aggreg"
	}
	return Impl{
		Name:          name,
		Strategy:      strategy,
		EngineOptions: summarizeOptions(opts),
		Make: func(f *simnet.Fabric) (Peer, Peer, error) {
			m0, err := madmpi.Init(f, 0, opts)
			if err != nil {
				return nil, nil, err
			}
			m1, err := madmpi.Init(f, 1, opts)
			if err != nil {
				return nil, nil, err
			}
			return &madPeer{mpi: m0}, &madPeer{mpi: m1}, nil
		},
	}
}

// summarizeOptions renders the engine options that shape a measurement,
// compact enough to stamp into a report line.
func summarizeOptions(o core.Options) string {
	parts := []string{
		fmt.Sprintf("submit=%v", o.SubmitOverhead),
		fmt.Sprintf("sched=%v", o.ScheduleOverhead),
	}
	if o.BodyChunk > 0 {
		parts = append(parts, fmt.Sprintf("chunk=%d", o.BodyChunk))
	}
	if o.Anticipate {
		parts = append(parts, "anticipate")
	}
	if o.FlushBacklog > 0 {
		parts = append(parts, fmt.Sprintf("flush=%d", o.FlushBacklog))
	}
	if o.Credits > 0 {
		parts = append(parts, fmt.Sprintf("credits=%d", o.Credits))
	}
	if o.MaxGrants > 0 {
		parts = append(parts, fmt.Sprintf("grants=%d", o.MaxGrants))
	}
	return strings.Join(parts, " ")
}

// MPICH returns the MPICH-like baseline.
func MPICH() Impl { return baselineImpl("MPICH", baseline.MPICH()) }

// OpenMPI returns the OpenMPI-like baseline.
func OpenMPI() Impl { return baselineImpl("OpenMPI", baseline.OpenMPI()) }

func baselineImpl(name string, opts baseline.Options) Impl {
	return Impl{
		Name: name,
		Make: func(f *simnet.Fabric) (Peer, Peer, error) {
			r0, err := baseline.NewRank(f, 0, 0, opts)
			if err != nil {
				return nil, nil, err
			}
			r1, err := baseline.NewRank(f, 0, 1, opts)
			if err != nil {
				return nil, nil, err
			}
			return &basePeer{r: r0}, &basePeer{r: r1}, nil
		},
	}
}

// madPeer adapts madmpi to the Peer interface.
type madPeer struct {
	mpi   *madmpi.MPI
	comms []*madmpi.Comm
}

// comm resolves a dense communicator index, duplicating in ascending
// order (both ranks follow the same order, so ids agree).
func (m *madPeer) comm(i int) *madmpi.Comm {
	if len(m.comms) == 0 {
		m.comms = append(m.comms, m.mpi.CommWorld())
	}
	for len(m.comms) <= i {
		m.comms = append(m.comms, m.comms[0].Dup())
	}
	return m.comms[i]
}

func (m *madPeer) Isend(p *sim.Proc, buf []byte, dest, tag, comm int) Pending {
	return m.comm(comm).Isend(p, buf, dest, tag)
}

func (m *madPeer) Irecv(p *sim.Proc, buf []byte, src, tag, comm int) Pending {
	return m.comm(comm).Irecv(p, buf, src, tag)
}

func (m *madPeer) SendTyped(p *sim.Proc, base []byte, segs []Seg, dest, tag, comm int) error {
	return m.comm(comm).IsendTyped(p, base, segsToDatatype(segs), 1, dest, tag).Wait(p)
}

func (m *madPeer) RecvTyped(p *sim.Proc, base []byte, segs []Seg, src, tag, comm int) error {
	return m.comm(comm).IrecvTyped(p, base, segsToDatatype(segs), 1, src, tag).Wait(p)
}

// Stats exposes the engine counters for assertions and reports.
func (m *madPeer) Stats() core.Stats { return m.mpi.Engine().Stats() }

func segsToDatatype(segs []Seg) madmpi.Datatype {
	lens := make([]int, len(segs))
	displs := make([]int, len(segs))
	for i, s := range segs {
		lens[i] = s.Len
		displs[i] = s.Off
	}
	return madmpi.Hindexed(lens, displs, madmpi.Byte)
}

// basePeer adapts a baseline rank to the Peer interface.
type basePeer struct{ r *baseline.Rank }

func (b *basePeer) Isend(p *sim.Proc, buf []byte, dest, tag, comm int) Pending {
	return b.r.Isend(p, buf, dest, tag, comm)
}

func (b *basePeer) Irecv(p *sim.Proc, buf []byte, src, tag, comm int) Pending {
	return b.r.Irecv(p, buf, src, tag, comm)
}

func (b *basePeer) SendTyped(p *sim.Proc, base []byte, segs []Seg, dest, tag, comm int) error {
	return b.r.SendTyped(p, base, toBaselineSegs(segs), dest, tag, comm)
}

func (b *basePeer) RecvTyped(p *sim.Proc, base []byte, segs []Seg, src, tag, comm int) error {
	return b.r.RecvTyped(p, base, toBaselineSegs(segs), src, tag, comm)
}

func toBaselineSegs(segs []Seg) []baseline.Segment {
	out := make([]baseline.Segment, len(segs))
	for i, s := range segs {
		out[i] = baseline.Segment{Offset: s.Off, Len: s.Len}
	}
	return out
}

// newFabric assembles a fresh world with the given rails.
func newFabric(profs []simnet.Profile) (*sim.World, *simnet.Fabric, error) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	for _, prof := range profs {
		if _, err := f.AddNetwork(prof); err != nil {
			return nil, nil, fmt.Errorf("bench: %w", err)
		}
	}
	return w, f, nil
}
