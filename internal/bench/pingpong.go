package bench

import (
	"fmt"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Runners for the three workloads of §5. Each returns the mean one-way
// transfer time in virtual microseconds.

// defaultWarmup and defaultIters: the simulation is deterministic, so a
// couple of warmup round-trips (to establish gates and reach steady
// protocol state) and a handful of measured ones suffice.
const (
	defaultWarmup = 2
	defaultIters  = 5
)

// PingPong runs the §5.1 workload: a single-segment ping-pong of the
// given size, returning the one-way latency in µs.
func PingPong(impl Impl, profs []simnet.Profile, size int) (float64, error) {
	w, f, err := newFabric(profs)
	if err != nil {
		return 0, err
	}
	p0, p1, err := impl.Make(f)
	if err != nil {
		return 0, err
	}
	buf0 := make([]byte, size)
	buf1 := make([]byte, size)
	var start, stop sim.Time
	w.Spawn("rank0", func(p *sim.Proc) {
		for i := 0; i < defaultWarmup+defaultIters; i++ {
			if i == defaultWarmup {
				start = p.Now()
			}
			if err := waitBoth(p, p0.Isend(p, buf0, 1, 0, 0), nil); err != nil {
				panic(err)
			}
			if err := p0.Irecv(p, buf0, 1, 0, 0).Wait(p); err != nil {
				panic(err)
			}
		}
		stop = p.Now()
	})
	w.Spawn("rank1", func(p *sim.Proc) {
		for i := 0; i < defaultWarmup+defaultIters; i++ {
			if err := p1.Irecv(p, buf1, 0, 0, 0).Wait(p); err != nil {
				panic(err)
			}
			if err := waitBoth(p, p1.Isend(p, buf1, 0, 0, 0), nil); err != nil {
				panic(err)
			}
		}
	})
	if err := w.Run(); err != nil {
		return 0, fmt.Errorf("bench: ping-pong(%s, %d): %w", impl.Name, size, err)
	}
	return halfRTT(start, stop, defaultIters), nil
}

// MultiSegPingPong runs the §5.2 workload: each "ping" is nsegs
// independent Isends of segSize bytes, each on its own communicator
// (showing that the optimization scope is global), completed by Wait on
// every request. Returns the one-way latency in µs.
func MultiSegPingPong(impl Impl, profs []simnet.Profile, segSize, nsegs int) (float64, error) {
	w, f, err := newFabric(profs)
	if err != nil {
		return 0, err
	}
	p0, p1, err := impl.Make(f)
	if err != nil {
		return 0, err
	}
	bufs0 := make([][]byte, nsegs)
	bufs1 := make([][]byte, nsegs)
	for i := range bufs0 {
		bufs0[i] = make([]byte, segSize)
		bufs1[i] = make([]byte, segSize)
	}
	sendAll := func(p *sim.Proc, peer Peer, bufs [][]byte, dst int) {
		reqs := make([]Pending, nsegs)
		for i := 0; i < nsegs; i++ {
			reqs[i] = peer.Isend(p, bufs[i], dst, 0, i)
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				panic(err)
			}
		}
	}
	recvAll := func(p *sim.Proc, peer Peer, bufs [][]byte, src int) {
		reqs := make([]Pending, nsegs)
		for i := 0; i < nsegs; i++ {
			reqs[i] = peer.Irecv(p, bufs[i], src, 0, i)
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				panic(err)
			}
		}
	}
	var start, stop sim.Time
	w.Spawn("rank0", func(p *sim.Proc) {
		for i := 0; i < defaultWarmup+defaultIters; i++ {
			if i == defaultWarmup {
				start = p.Now()
			}
			sendAll(p, p0, bufs0, 1)
			recvAll(p, p0, bufs0, 1)
		}
		stop = p.Now()
	})
	w.Spawn("rank1", func(p *sim.Proc) {
		for i := 0; i < defaultWarmup+defaultIters; i++ {
			recvAll(p, p1, bufs1, 0)
			sendAll(p, p1, bufs1, 0)
		}
	})
	if err := w.Run(); err != nil {
		return 0, fmt.Errorf("bench: multiseg(%s, %d x %d): %w", impl.Name, nsegs, segSize, err)
	}
	return halfRTT(start, stop, defaultIters), nil
}

// PaperDatatypeSegs builds the §5.3 layout: a sequence of (64 B small,
// 256 KB large) block pairs totalling total data bytes. The blocks are
// separated by gaps in memory — that is what makes the datatype genuinely
// non-contiguous (adjacent blocks would flatten into one segment and
// nobody would need to pack anything).
func PaperDatatypeSegs(total int) []Seg {
	const small, large, gap = 64, 256 << 10, 64
	pair := small + large
	var segs []Seg
	off, data := 0, 0
	add := func(n int) {
		segs = append(segs, Seg{Off: off, Len: n})
		off += n + gap
		data += n
	}
	for data+pair <= total {
		add(small)
		add(large)
	}
	if rem := total - data; rem > 0 {
		if rem > small {
			add(small)
			rem -= small
		}
		add(rem)
	}
	return segs
}

// DatatypeExtent is the buffer size needed to hold the layout of
// PaperDatatypeSegs(total).
func DatatypeExtent(total int) int {
	segs := PaperDatatypeSegs(total)
	last := segs[len(segs)-1]
	return last.Off + last.Len
}

// DatatypePingPong runs the §5.3 workload: a ping-pong of the indexed
// datatype (small/large block pairs) totalling total bytes. Returns the
// one-way transfer time in µs.
func DatatypePingPong(impl Impl, profs []simnet.Profile, total int) (float64, error) {
	w, f, err := newFabric(profs)
	if err != nil {
		return 0, err
	}
	p0, p1, err := impl.Make(f)
	if err != nil {
		return 0, err
	}
	segs := PaperDatatypeSegs(total)
	extent := DatatypeExtent(total)
	base0 := make([]byte, extent)
	base1 := make([]byte, extent)
	var start, stop sim.Time
	w.Spawn("rank0", func(p *sim.Proc) {
		for i := 0; i < defaultWarmup+defaultIters; i++ {
			if i == defaultWarmup {
				start = p.Now()
			}
			if err := p0.SendTyped(p, base0, segs, 1, 0, 0); err != nil {
				panic(err)
			}
			if err := p0.RecvTyped(p, base0, segs, 1, 0, 0); err != nil {
				panic(err)
			}
		}
		stop = p.Now()
	})
	w.Spawn("rank1", func(p *sim.Proc) {
		for i := 0; i < defaultWarmup+defaultIters; i++ {
			if err := p1.RecvTyped(p, base1, segs, 0, 0, 0); err != nil {
				panic(err)
			}
			if err := p1.SendTyped(p, base1, segs, 0, 0, 0); err != nil {
				panic(err)
			}
		}
	})
	if err := w.Run(); err != nil {
		return 0, fmt.Errorf("bench: datatype(%s, %d): %w", impl.Name, total, err)
	}
	return halfRTT(start, stop, defaultIters), nil
}

func halfRTT(start, stop sim.Time, iters int) float64 {
	return (stop - start).Microseconds() / float64(iters) / 2
}

func waitBoth(p *sim.Proc, a, b Pending) error {
	if a != nil {
		if err := a.Wait(p); err != nil {
			return err
		}
	}
	if b != nil {
		if err := b.Wait(p); err != nil {
			return err
		}
	}
	return nil
}
