package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"nmad/internal/replay"
)

// The engine-speed meta-figures measure the simulator's own cost, not
// simulated time: wall-clock engine operations per second and heap
// allocations per operation while replaying the canonical composite
// workload scaled to an N-node ring (replay.RecordCompositeRing). Every
// other figure gates what the engine *decides*; these gate what the
// engine *costs* — the profile-driven allocation work (packet/output
// free lists, small-tag fast paths, encode scratch reuse) is pinned by
// them in the BENCH_PR*.json trajectory.
//
// An "op" is one recorded application-level operation (Isend/Irecv); the
// denominator is schedule-independent, so ops/sec compares across engine
// changes as long as the workload config below stays fixed. The
// measurement includes the replay harness (process spawning, zeroed
// payload buffers) and the per-node tracers replay always attaches: it
// is the price of simulating one op end to end.
//
// Wall-clock time is allowed here: internal/bench is not one of the
// deterministic packages (the nmad-vet determinism analyzer does not
// cover it), and these two figures are exactly the place where real time
// is the point.

// engineSpeedNodes are the ring sizes the figures sweep.
var engineSpeedNodes = []int{8, 256, 1024}

// engineSpeedConfig slims the canonical composite so the 1024-node ring
// stays CI-sized: the op mix (bulk stream, small-flow burst, rendezvous,
// priority control + reply) is canonical, the byte counts are smaller.
// Changing this invalidates trajectory comparability — treat it like a
// wire-format constant.
func engineSpeedConfig() replay.CompositeConfig {
	cfg := replay.CanonicalConfig()
	cfg.Bulk = 2 << 10
	cfg.NBulk = 8
	cfg.Large = 32 << 10
	return cfg
}

// engineSpeedPoint is one measured ring size.
type engineSpeedPoint struct {
	nodes       int
	ops         int
	wall        time.Duration
	opsPerSec   float64
	allocsPerOp float64
}

// The two figures share one measurement pass: recording and replaying
// the 1024-node ring twice to fill two figures would double the bench
// job for no information.
var (
	engineSpeedOnce sync.Once
	engineSpeedData []engineSpeedPoint
	engineSpeedErr  error
)

func engineSpeedMeasure() ([]engineSpeedPoint, error) {
	engineSpeedOnce.Do(func() {
		for _, n := range engineSpeedNodes {
			rec, err := replay.RecordCompositeRing(engineSpeedConfig(), n)
			if err != nil {
				engineSpeedErr = fmt.Errorf("bench: engine-speed recording (%d nodes): %w", n, err)
				return
			}
			ops := len(rec.Ops())
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			res, err := replay.Run(rec, replay.Config{})
			wall := time.Since(t0)
			runtime.ReadMemStats(&m1)
			if err != nil {
				engineSpeedErr = fmt.Errorf("bench: engine-speed replay (%d nodes): %w", n, err)
				return
			}
			if res.RequestErrors > 0 {
				engineSpeedErr = fmt.Errorf("bench: engine-speed replay (%d nodes): %d request errors", n, res.RequestErrors)
				return
			}
			pt := engineSpeedPoint{nodes: n, ops: ops, wall: wall}
			if wall > 0 {
				pt.opsPerSec = float64(ops) / wall.Seconds()
			}
			if ops > 0 {
				pt.allocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(ops)
			}
			engineSpeedData = append(engineSpeedData, pt)
		}
	})
	return engineSpeedData, engineSpeedErr
}

// engineSpeedNotes renders the shared per-point detail both figures
// carry, so either file alone documents the measurement.
func engineSpeedNotes(pts []engineSpeedPoint) []string {
	cfg := engineSpeedConfig()
	notes := []string{
		fmt.Sprintf("composite ring per node: %d x %dK bulk, %d small, %dK rendezvous, control + reply (strategy %s)",
			cfg.NBulk, cfg.Bulk>>10, cfg.Small, cfg.Large>>10, cfg.Strategy),
		"ops = recorded Isend/Irecv count; wall clock includes the replay harness and per-node tracers",
	}
	for _, pt := range pts {
		notes = append(notes, fmt.Sprintf(
			"%d nodes: %d ops in %.0f ms, %.0f ops/sec, %.1f allocs/op",
			pt.nodes, pt.ops, float64(pt.wall)/float64(time.Millisecond), pt.opsPerSec, pt.allocsPerOp))
	}
	return notes
}

// FigEngineSpeed is the wall-clock throughput meta-figure. Higher is
// better: nmad-trend carries a per-figure direction for it, failing when
// throughput drops past the threshold instead of when it rises.
func FigEngineSpeed() (Figure, error) {
	pts, err := engineSpeedMeasure()
	if err != nil {
		return Figure{}, err
	}
	s := Series{Label: "replay[aggreg]", Strategy: "aggreg"}
	for _, pt := range pts {
		s.Points = append(s.Points, Point{X: pt.nodes, Y: pt.opsPerSec})
	}
	return Figure{
		ID:     "engine-speed",
		Title:  "Engine speed — wall-clock ops/sec replaying the composite ring (higher is better)",
		XLabel: "ring nodes",
		YLabel: "engine ops/sec (wall clock)",
		Series: []Series{s},
		Notes:  engineSpeedNotes(pts),
	}, nil
}

// FigEngineAllocs is the allocation-cost meta-figure: heap allocations
// per replayed op, from the runtime's Mallocs counter around the replay.
// Lower is better, like every other figure.
func FigEngineAllocs() (Figure, error) {
	pts, err := engineSpeedMeasure()
	if err != nil {
		return Figure{}, err
	}
	s := Series{Label: "replay[aggreg]", Strategy: "aggreg"}
	for _, pt := range pts {
		s.Points = append(s.Points, Point{X: pt.nodes, Y: pt.allocsPerOp})
	}
	return Figure{
		ID:     "engine-allocs",
		Title:  "Engine allocation cost — heap allocations per op replaying the composite ring",
		XLabel: "ring nodes",
		YLabel: "allocations per op",
		Series: []Series{s},
		Notes:  engineSpeedNotes(pts),
	}, nil
}
