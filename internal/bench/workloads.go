package bench

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Additional workloads beyond the paper's three, used by the ablation
// figures: a composite application mixing a bulk stream with a
// latency-sensitive control flow (§2's "irregular and multi-flow
// communication schemes"), and a congestion scenario exercising the
// bandwidth sampler.

// CompositeControlLatency models a composite application: node 0 pushes a
// continuous bulk stream (nbulk chunks of bulkSize) and, mid-stream,
// issues one small control message. It returns the control message's
// delivery latency in µs — the figure of merit for multiplexing quality.
// prio selects the engine's priority flag for the control message (only
// meaningful for MAD-MPI).
func CompositeControlLatency(impl Impl, profs []simnet.Profile, bulkSize, nbulk int, prio bool) (float64, error) {
	w, f, err := newFabric(profs)
	if err != nil {
		return 0, err
	}
	p0, p1, err := impl.Make(f)
	if err != nil {
		return 0, err
	}
	const (
		bulkComm = 0
		ctrlComm = 1
	)
	var sentAt, recvAt sim.Time
	w.Spawn("sender", func(p *sim.Proc) {
		reqs := make([]Pending, 0, nbulk+1)
		half := nbulk / 2
		for i := 0; i < nbulk; i++ {
			reqs = append(reqs, p0.Isend(p, make([]byte, bulkSize), 1, 0, bulkComm))
			if i == half {
				sentAt = p.Now()
				if mp, ok := p0.(*madPeer); ok && prio {
					reqs = append(reqs, mp.comm(ctrlComm).IsendPriority(p, []byte("ctrl"), 1, 0))
				} else {
					reqs = append(reqs, p0.Isend(p, []byte("ctrl"), 1, 0, ctrlComm))
				}
			}
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				panic(err)
			}
		}
	})
	w.Spawn("receiver", func(p *sim.Proc) {
		ctrl := p1.Irecv(p, make([]byte, 16), 0, 0, ctrlComm)
		bulk := make([]Pending, nbulk)
		for i := 0; i < nbulk; i++ {
			bulk[i] = p1.Irecv(p, make([]byte, bulkSize), 0, 0, bulkComm)
		}
		if err := ctrl.Wait(p); err != nil {
			panic(err)
		}
		recvAt = p.Now()
		for _, r := range bulk {
			if err := r.Wait(p); err != nil {
				panic(err)
			}
		}
	})
	if err := w.Run(); err != nil {
		return 0, fmt.Errorf("bench: composite(%s): %w", impl.Name, err)
	}
	return (recvAt - sentAt).Microseconds(), nil
}

// CongestedTransfer measures a large two-rail transfer when one rail is
// congested below its nominal bandwidth. With warmup > 0, warmup
// transfers run first so the engine's sampler learns the functional
// bandwidth and the split strategy rebalances; with warmup == 0 the plan
// uses nominal figures and overloads the congested rail. Returns the
// measured transfer's one-way time in µs.
func CongestedTransfer(size int, mxScale float64, warmup int) (float64, error) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	mx, err := f.AddNetwork(simnet.MX10G())
	if err != nil {
		return 0, err
	}
	if _, err := f.AddNetwork(simnet.QsNetII()); err != nil {
		return 0, err
	}
	mx.SetWireScale(mxScale)

	opts := core.DefaultOptions()
	opts.Strategy = "split"
	mkEngine := func(node simnet.NodeID) (*core.Engine, error) {
		e, err := core.New(f, node, opts)
		if err != nil {
			return nil, err
		}
		return e, e.AttachFabric(f)
	}
	e0, err := mkEngine(0)
	if err != nil {
		return 0, err
	}
	e1, err := mkEngine(1)
	if err != nil {
		return 0, err
	}

	var start, stop sim.Time
	w.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i <= warmup; i++ {
			if i == warmup {
				start = p.Now()
			}
			if err := e0.Gate(1).Send(p, Tagged(i), make([]byte, size)); err != nil {
				panic(err)
			}
		}
	})
	w.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i <= warmup; i++ {
			if _, err := e1.Gate(0).Recv(p, Tagged(i), make([]byte, size)); err != nil {
				panic(err)
			}
			stop = p.Now()
		}
	})
	if err := w.Run(); err != nil {
		return 0, err
	}
	return (stop - start).Microseconds(), nil
}

// Tagged converts a loop index to a flow tag (helper shared by the
// congestion workloads).
func Tagged(i int) core.Tag { return core.Tag(i + 1) }
