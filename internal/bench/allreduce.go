package bench

import (
	"fmt"

	"nmad/internal/core"
	"nmad/internal/madmpi"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// The allreduce workload: N ranks reduce a float64 vector element-wise
// and all end with the result — the dominant collective of iterative
// numerical codes, and the one where algorithm choice matters most. The
// sweep compares the schedule-engine algorithms (binomial tree fused
// with a broadcast; segmented pipelined ring reduce-scatter+allgather)
// against the seed's blocking tree loops, across vector size and node
// count, so the benefit of pipelining through the optimizer is a curve,
// not an anecdote.

// SeedAlgo selects the pre-engine baseline in AllreduceTime: the seed's
// blocking binomial reduce-then-broadcast, reproduced verbatim on the
// point-to-point layer.
const SeedAlgo = "seed"

// AllreduceConfig parameterizes one measured allreduce.
type AllreduceConfig struct {
	// Nodes ranks on one MX rail reduce a vector of Elems float64s.
	Nodes int
	Elems int
	// Algo is a registered allreduce algorithm ("tree", "ring"), the
	// SeedAlgo baseline, or "" for the automatic selection.
	Algo string
	// SegBytes overrides the pipelining segment (0 = default).
	SegBytes int
}

// AllreduceTime measures one allreduce: virtual microseconds from every
// rank entering the operation (after a warmup round and a barrier) to
// the last rank completing it, verifying the reduction on every rank.
func AllreduceTime(cfg AllreduceConfig) (float64, error) {
	if cfg.Nodes < 2 || cfg.Elems < 1 {
		return 0, fmt.Errorf("bench: allreduce needs ≥2 nodes and ≥1 element, got %+v", cfg)
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, cfg.Nodes, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		return 0, err
	}
	ranks := make([]*madmpi.MPI, cfg.Nodes)
	for i := range ranks {
		m, err := madmpi.Init(f, simnet.NodeID(i), core.DefaultOptions())
		if err != nil {
			return 0, err
		}
		if cfg.Algo != "" && cfg.Algo != SeedAlgo {
			if err := m.ForceCollAlgo(madmpi.CollAllreduce, cfg.Algo); err != nil {
				return 0, err
			}
		}
		if cfg.SegBytes > 0 {
			m.SetCollSegment(cfg.SegBytes)
		}
		ranks[i] = m
	}
	allreduce := func(p *sim.Proc, m *madmpi.MPI, in, out []float64) error {
		if cfg.Algo == SeedAlgo {
			return seedAllreduce(p, m.CommWorld(), in, out)
		}
		return m.CommWorld().Allreduce(p, in, out, madmpi.OpSum)
	}
	var start, finish sim.Time
	var firstErr error
	for _, m := range ranks {
		m := m
		w.Spawn(fmt.Sprintf("rank-%d", m.Rank()), func(p *sim.Proc) {
			in := make([]float64, cfg.Elems)
			for i := range in {
				in[i] = float64(m.Rank() + i%5)
			}
			out := make([]float64, cfg.Elems)
			// One warmup round reaches steady protocol state, then a
			// barrier aligns the measured entry.
			if err := allreduce(p, m, in, out); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if err := m.CommWorld().Barrier(p); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if p.Now() > start {
				start = p.Now()
			}
			if err := allreduce(p, m, in, out); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if p.Now() > finish {
				finish = p.Now()
			}
			for i := range out {
				want := float64(i%5*cfg.Nodes + cfg.Nodes*(cfg.Nodes-1)/2)
				if out[i] != want {
					if firstErr == nil {
						firstErr = fmt.Errorf("bench: allreduce[%s] rank %d element %d = %g, want %g",
							cfg.Algo, m.Rank(), i, out[i], want)
					}
					return
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		return 0, fmt.Errorf("bench: allreduce(%+v): %w", cfg, err)
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return (finish - start).Microseconds(), nil
}

// seedAllreduce reproduces the seed's collectives exactly: a blocking
// binomial-tree reduce to rank 0 (each round a blocking Send or Recv)
// followed by a blocking binomial broadcast with serialized child sends
// — every round a full synchronization, nothing for the optimizer to
// aggregate or overlap.
func seedAllreduce(p *sim.Proc, c *madmpi.Comm, send, recv []float64) error {
	n, me := c.Size(), c.Rank()
	acc := append([]float64(nil), send...)
	buf := make([]byte, 8*len(send))
	for mask := 1; mask < n; mask *= 2 {
		if me&mask != 0 {
			if err := c.Send(p, madmpi.PackF64(acc), me-mask, 0); err != nil {
				return err
			}
			break
		}
		if me+mask < n {
			if _, err := c.Recv(p, buf, me+mask, 0); err != nil {
				return err
			}
			other := madmpi.UnpackF64(buf, len(acc))
			for i := range acc {
				acc[i] += other[i]
			}
		}
	}
	raw := make([]byte, 8*len(send))
	if me == 0 {
		copy(raw, madmpi.PackF64(acc))
	}
	// Blocking binomial broadcast from rank 0.
	if me != 0 {
		mask := 1
		for mask <= me {
			mask *= 2
		}
		mask /= 2
		if _, err := c.Recv(p, raw, me-mask, 1); err != nil {
			return err
		}
	}
	mask := 1
	for mask <= me {
		mask *= 2
	}
	for ; mask < n; mask *= 2 {
		child := me + mask
		if child >= n {
			break
		}
		if err := c.Send(p, raw, child, 1); err != nil {
			return err
		}
	}
	copy(recv, madmpi.UnpackF64(raw, len(send)))
	return nil
}

// FigAllreduce sweeps vector size × node count × algorithm: the measure
// of the collective schedule engine against the seed's blocking trees.
func FigAllreduce() (Figure, error) {
	fig := Figure{
		ID:     "allreduce",
		Title:  "Allreduce — schedule-engine algorithms vs the seed blocking tree (MX, float64 vectors)",
		XLabel: "vector size (bytes)", YLabel: "completion (µs)",
		Notes: []string{
			"seed = blocking binomial reduce+bcast round-loops; tree/ring run on the nonblocking schedule engine",
			"ring = segmented pipelined reduce-scatter + allgather (8KB segments)",
		},
	}
	sizes := []int{8 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	stamp := summarizeOptions(core.DefaultOptions())
	for _, nodes := range []int{4, 8} {
		for _, algo := range []string{SeedAlgo, "tree", "ring"} {
			s := Series{Label: fmt.Sprintf("%s n=%d", algo, nodes), Strategy: "aggreg", EngineOptions: stamp}
			if algo == SeedAlgo {
				s.EngineOptions = stamp + " (blocking p2p loops)"
			}
			for _, bytes := range sizes {
				t, err := AllreduceTime(AllreduceConfig{Nodes: nodes, Elems: bytes / 8, Algo: algo})
				if err != nil {
					return fig, err
				}
				s.Points = append(s.Points, Point{X: bytes, Y: t})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	for _, nodes := range []int{4, 8} {
		big := sizes[len(sizes)-1]
		gain, err := Speedup(fig, fmt.Sprintf("ring n=%d", nodes), fmt.Sprintf("%s n=%d", SeedAlgo, nodes), big)
		if err != nil {
			return fig, err
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"n=%d: pipelined ring %.2fx faster than the seed blocking tree at %dMB", nodes, gain, big>>20))
	}
	return fig, nil
}
