package bench

import (
	"strings"
	"testing"

	"nmad/internal/core"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// These tests assert the qualitative claims of the paper's evaluation —
// who wins, by roughly what factor, where the curves converge — against
// the regenerated figures. Exact values live in EXPERIMENTS.md.

func TestFig2OverheadUnderHalfMicrosecond(t *testing.T) {
	// §5.1: "MAD-MPI introduces a constant overhead of less than 0.5 µs".
	for _, rails := range [][]simnet.Profile{mxRails(), qsRails()} {
		for _, size := range []int{4, 64, 1024} {
			mad, err := PingPong(MadMPI(core.DefaultOptions()), rails, size)
			if err != nil {
				t.Fatal(err)
			}
			mpich, err := PingPong(MPICH(), rails, size)
			if err != nil {
				t.Fatal(err)
			}
			over := mad - mpich
			if over < 0 {
				t.Errorf("%s %dB: MAD-MPI faster than MPICH on the raw path (%.2f vs %.2f µs); the optimizer is not free",
					rails[0].Name, size, mad, mpich)
			}
			if over > 0.5 {
				t.Errorf("%s %dB: MAD-MPI overhead %.2f µs, paper requires < 0.5 µs", rails[0].Name, size, over)
			}
		}
	}
}

func TestFig2BandwidthConverges(t *testing.T) {
	// At 2MB the curves must converge: the optimizer costs nothing when
	// there is nothing to optimize.
	size := 2 << 20
	mad, err := PingPong(MadMPI(core.DefaultOptions()), mxRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	mpich, err := PingPong(MPICH(), mxRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := mad / mpich; ratio > 1.01 {
		t.Errorf("2MB latency ratio %.3f, want < 1%% apart", ratio)
	}
	bw := float64(size) / mad
	if bw < 1000 || bw > 1300 {
		t.Errorf("MX peak bandwidth %.0f MB/s, want in the Myri-10G ballpark (paper: 1155)", bw)
	}
	qs, err := PingPong(MadMPI(core.DefaultOptions()), qsRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	if bw := float64(size) / qs; bw < 750 || bw > 950 {
		t.Errorf("Quadrics peak bandwidth %.0f MB/s, want in the QM500 ballpark (paper: 835)", bw)
	}
}

func TestFig2LatencyMonotonicInSize(t *testing.T) {
	prev := 0.0
	for _, size := range fig2Sizes {
		lat, err := PingPong(MadMPI(core.DefaultOptions()), mxRails(), size)
		if err != nil {
			t.Fatal(err)
		}
		if lat < prev {
			t.Errorf("latency decreased from %.2f to %.2f µs at %d bytes", prev, lat, size)
		}
		prev = lat
	}
}

func TestFig3SmallSegmentsBigWin(t *testing.T) {
	// §5.2: "MAD-MPI is up to 70% faster than other implementations of
	// MPI over MX-10G, and up to 50% faster than MPICH over QUADRICS".
	check := func(rails []simnet.Profile, nsegs int, wantMin, wantMax float64) {
		mad, err := MultiSegPingPong(MadMPI(core.DefaultOptions()), rails, 4, nsegs)
		if err != nil {
			t.Fatal(err)
		}
		mpich, err := MultiSegPingPong(MPICH(), rails, 4, nsegs)
		if err != nil {
			t.Fatal(err)
		}
		gain := 1 - mad/mpich
		if gain < wantMin || gain > wantMax {
			t.Errorf("%s %d-segment gain %.0f%%, want in [%.0f%%, %.0f%%]",
				rails[0].Name, nsegs, gain*100, wantMin*100, wantMax*100)
		}
	}
	check(mxRails(), 16, 0.50, 0.75) // paper: up to 70%
	check(mxRails(), 8, 0.35, 0.70)
	check(qsRails(), 16, 0.35, 0.65) // paper: up to 50%
	check(qsRails(), 8, 0.25, 0.60)
}

func TestFig3Converges(t *testing.T) {
	// Once the aggregated size reaches the rendezvous threshold the
	// curves must (nearly) meet.
	mad, err := MultiSegPingPong(MadMPI(core.DefaultOptions()), mxRails(), 16<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	mpich, err := MultiSegPingPong(MPICH(), mxRails(), 16<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := mad / mpich; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("16KB-segment ratio %.2f, want convergence within 10%%", ratio)
	}
}

func TestFig4DatatypeGains(t *testing.T) {
	// §5.3: "a gain of about 70% in comparison with MPICH and about 50%
	// with OpenMPI over MX and until about 70% versus MPICH over
	// QUADRICS".
	size := 2 << 20
	mad, err := DatatypePingPong(MadMPI(core.DefaultOptions()), mxRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	mpich, err := DatatypePingPong(MPICH(), mxRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	ompi, err := DatatypePingPong(OpenMPI(), mxRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	if gain := 1 - mad/mpich; gain < 0.55 || gain > 0.80 {
		t.Errorf("MX gain vs MPICH = %.0f%%, paper says about 70%%", gain*100)
	}
	if gain := 1 - mad/ompi; gain < 0.40 || gain > 0.65 {
		t.Errorf("MX gain vs OpenMPI = %.0f%%, paper says about 50%%", gain*100)
	}
	if ompi >= mpich {
		t.Error("OpenMPI must beat MPICH on datatypes (pipelined pack), as in the paper's Figure 4")
	}
	qmad, err := DatatypePingPong(MadMPI(core.DefaultOptions()), qsRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	qmpich, err := DatatypePingPong(MPICH(), qsRails(), size)
	if err != nil {
		t.Fatal(err)
	}
	if gain := 1 - qmad/qmpich; gain < 0.50 || gain > 0.80 {
		t.Errorf("Quadrics gain vs MPICH = %.0f%%, paper says until about 70%%", gain*100)
	}
}

func TestPaperDatatypeSegs(t *testing.T) {
	segs := PaperDatatypeSegs(2 * (64 + 256<<10))
	if len(segs) != 4 {
		t.Fatalf("2 pairs should flatten to 4 blocks, got %d", len(segs))
	}
	if segs[0].Len != 64 || segs[1].Len != 256<<10 {
		t.Errorf("block sizes %d/%d, want 64/262144", segs[0].Len, segs[1].Len)
	}
	total := 0
	last := -1
	for _, s := range segs {
		if s.Off <= last {
			t.Errorf("blocks must be separated by gaps (non-contiguous layout); offset %d after %d", s.Off, last)
		}
		last = s.Off + s.Len
		total += s.Len
	}
	if total != 2*(64+256<<10) {
		t.Errorf("segments carry %d data bytes", total)
	}
	if DatatypeExtent(total) <= total {
		t.Error("extent must exceed the data size (the gaps)")
	}
	// Non-multiple totals still carry exactly the requested data.
	for _, odd := range []int{100, 64 + 256<<10 + 1000, 3 << 20} {
		segs := PaperDatatypeSegs(odd)
		total := 0
		for _, s := range segs {
			total += s.Len
		}
		if total != odd {
			t.Errorf("PaperDatatypeSegs(%d) carries %d bytes", odd, total)
		}
	}
}

func TestRunRegistry(t *testing.T) {
	ids := FigureIDs()
	want := []string{"2a", "2b", "2c", "2d", "3a", "3b", "3c", "3d", "4a", "4b", "5.1",
		"ablation-composite", "ablation-modes", "ablation-multirail", "ablation-overhead",
		"ablation-rdv", "ablation-sampling", "ablation-strategies", "allreduce",
		"drop-resilience", "engine-allocs", "engine-speed", "incast", "replay-ab", "scale-nodes",
		"tenant-isolation"}
	infos := Figures()
	if len(infos) != len(want) {
		t.Fatalf("Figures() lists %d entries, want %d", len(infos), len(want))
	}
	for _, info := range infos {
		if info.Desc == "" {
			t.Errorf("figure %s has no description", info.ID)
		}
	}
	if len(ids) != len(want) {
		t.Fatalf("registry %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry %v, want %v", ids, want)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Error("unknown figure id should error")
	}
}

func TestFiguresDeterministic(t *testing.T) {
	// Virtual-time measurements must be bit-identical across runs: the
	// whole reproduction hinges on it.
	a, err := Run("3a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("3a")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatal("series count differs between identical runs")
	}
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j] != b.Series[i].Points[j] {
				t.Fatalf("figure 3a not deterministic: %s point %d: %+v vs %+v",
					a.Series[i].Label, j, a.Series[i].Points[j], b.Series[i].Points[j])
			}
		}
	}
}

func TestFormatTableAndCSV(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "test", XLabel: "size", YLabel: "µs",
		Series: []Series{
			{Label: "A", Points: []Point{{4, 1.5}, {1024, 2.5}}},
			{Label: "B", Points: []Point{{4, 3.25}}},
		},
		Notes: []string{"a note"},
	}
	tbl := FormatTable(fig)
	for _, want := range []string{"Figure t", "A", "B", "1.50", "3.25", "1K", "a note"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	csv := FormatCSV(fig)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows:\n%s", len(lines), csv)
	}
	if lines[0] != "x,A,B" {
		t.Errorf("csv header %q", lines[0])
	}
	if lines[2] != "1024,2.50," {
		t.Errorf("csv row %q, want missing B cell empty", lines[2])
	}
}

func TestSpeedupHelper(t *testing.T) {
	fig := Figure{Series: []Series{
		{Label: "fast", Points: []Point{{8, 2}}},
		{Label: "slow", Points: []Point{{8, 6}}},
	}}
	s, err := Speedup(fig, "fast", "slow", 8)
	if err != nil || s != 3 {
		t.Errorf("Speedup = %v, %v; want 3", s, err)
	}
	if _, err := Speedup(fig, "fast", "slow", 9); err == nil {
		t.Error("missing x should error")
	}
}

func TestAblationStrategiesOrdering(t *testing.T) {
	// The window (aggreg) must beat the windowless engine (default), and
	// the windowless engine should roughly match the baselines.
	agg := core.DefaultOptions()
	def := core.DefaultOptions()
	def.Strategy = "default"
	aggLat, err := MultiSegPingPong(MadMPI(agg), mxRails(), 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	defLat, err := MultiSegPingPong(MadMPI(def), mxRails(), 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if aggLat >= defLat {
		t.Errorf("aggreg %.2f µs vs default %.2f µs: the window is the whole point", aggLat, defLat)
	}
	mpichLat, err := MultiSegPingPong(MPICH(), mxRails(), 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if defLat < mpichLat*0.8 || defLat > mpichLat*1.4 {
		t.Errorf("windowless engine %.2f µs vs MPICH %.2f µs: should be in the same league", defLat, mpichLat)
	}
}

func TestCompositePriorityBeatsFIFO(t *testing.T) {
	// The §2 motivation: a control message inside a bulk stream. The
	// priority strategy must deliver it far sooner than MPICH's FIFO.
	prioOpts := core.DefaultOptions()
	prioOpts.Strategy = "prio"
	prio, err := CompositeControlLatency(MadMPI(prioOpts), mxRails(), 16<<10, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := CompositeControlLatency(MPICH(), mxRails(), 16<<10, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if prio >= fifo/2 {
		t.Errorf("priority control latency %.1f µs vs MPICH %.1f µs: want at least 2x better", prio, fifo)
	}
}

func TestSamplingAdaptsToCongestion(t *testing.T) {
	cold, err := CongestedTransfer(4<<20, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CongestedTransfer(4<<20, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if speedup := cold / warm; speedup < 1.4 {
		t.Errorf("sampled plan speedup %.2fx under 30%% congestion, want >= 1.4x", speedup)
	}
	// Without congestion the sampled plan must not be worse than nominal
	// by more than a whisker.
	coldOK, err := CongestedTransfer(4<<20, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	warmOK, err := CongestedTransfer(4<<20, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if warmOK > coldOK*1.05 {
		t.Errorf("sampling hurt the uncongested case: %.1f vs %.1f µs", warmOK, coldOK)
	}
}

func TestMultirailAblationWins(t *testing.T) {
	split := core.DefaultOptions()
	split.Strategy = "split"
	two, err := PingPong(MadMPI(split), []simnet.Profile{simnet.MX10G(), simnet.QsNetII()}, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	one, err := PingPong(MadMPI(core.DefaultOptions()), mxRails(), 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if speedup := one / two; speedup < 1.3 || speedup > 1.9 {
		t.Errorf("two-rail speedup %.2fx on 8MB, want ~1.7x (bandwidth sum / MX alone)", speedup)
	}
}

func TestIncastWorkloadBoundedByCredits(t *testing.T) {
	bounded, err := Incast(IncastConfig{
		Senders: 4, Msgs: 24, Size: 1 << 10,
		Credits: 8, MaxGrants: 2, DrainGap: 2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.PeakUnexpected > 8 {
		t.Errorf("peak unexpected queue %d exceeds the credit budget 8", bounded.PeakUnexpected)
	}
	if bounded.ProtocolErrors != 0 {
		t.Errorf("protocol errors under overload: %d", bounded.ProtocolErrors)
	}
	if want := int64(4 * 24 * (1 << 10)); bounded.Delivered != want {
		t.Errorf("delivered %d bytes, want %d", bounded.Delivered, want)
	}
	free, err := Incast(IncastConfig{
		Senders: 4, Msgs: 24, Size: 1 << 10, DrainGap: 2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if free.PeakUnexpected <= bounded.PeakUnexpected {
		t.Errorf("without flow control the queue peaked at %d, bounded run at %d: the workload no longer overloads",
			free.PeakUnexpected, bounded.PeakUnexpected)
	}
}

func TestAllreduceWorkload(t *testing.T) {
	// Every algorithm must verify and return a positive completion time.
	var seed, tree, ring float64
	var err error
	const nodes, bytes = 8, 1 << 20
	if seed, err = AllreduceTime(AllreduceConfig{Nodes: nodes, Elems: bytes / 8, Algo: SeedAlgo}); err != nil {
		t.Fatal(err)
	}
	if tree, err = AllreduceTime(AllreduceConfig{Nodes: nodes, Elems: bytes / 8, Algo: "tree"}); err != nil {
		t.Fatal(err)
	}
	if ring, err = AllreduceTime(AllreduceConfig{Nodes: nodes, Elems: bytes / 8, Algo: "ring"}); err != nil {
		t.Fatal(err)
	}
	if seed <= 0 || tree <= 0 || ring <= 0 {
		t.Fatalf("non-positive completion times: seed=%g tree=%g ring=%g", seed, tree, ring)
	}
	// The acceptance bar of the schedule engine: on large vectors the
	// segmented pipelined ring beats the seed's blocking binomial tree.
	if ring >= seed {
		t.Errorf("pipelined ring (%.0f µs) not faster than the seed blocking tree (%.0f µs) on %d nodes x %dKB",
			ring, seed, nodes, bytes>>10)
	}
	// The nonblocking tree must also not lose to its blocking ancestor.
	if tree > seed {
		t.Errorf("schedule-engine tree (%.0f µs) slower than the seed blocking tree (%.0f µs)", tree, seed)
	}
	// Bad configurations are rejected.
	if _, err := AllreduceTime(AllreduceConfig{Nodes: 1, Elems: 8}); err == nil {
		t.Error("single-node allreduce bench must be rejected")
	}
	if _, err := AllreduceTime(AllreduceConfig{Nodes: 4, Elems: 16, Algo: "no-such"}); err == nil {
		t.Error("unknown algorithm must be rejected")
	}
}
