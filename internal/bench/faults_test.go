package bench

import "testing"

// The lossy figures' acceptance property: the same fault seed
// reproduces identical numbers, and the seed actually matters.
func TestLossyCollectiveSeededDeterminism(t *testing.T) {
	cfg := LossyCollectiveConfig{Nodes: 8, Kind: "multiseg", Per: 256, Drop: 0.30}
	run := func(seed uint64) LossyCollectiveResult {
		t.Helper()
		old := Seed()
		SetSeed(seed)
		defer SetSeed(old)
		r, err := LossyCollective(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if c := run(43); c == a {
		t.Errorf("seeds 42 and 43 produced identical runs (%+v) — the seed is not reaching the injector", c)
	}
	if a.Retransmits == 0 {
		t.Error("30% drop produced no retransmissions")
	}
}

// Every lossy series carries its seed and fault-profile stamp, so a
// BENCH_PR*.json trajectory records how to reproduce itself.
func TestLossySeriesStamped(t *testing.T) {
	fig, err := FigDropResilience()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Seed != Seed() {
			t.Errorf("series %q: seed stamp %d, want %d", s.Label, s.Seed, Seed())
		}
		if s.Faults == "" {
			t.Errorf("series %q: no fault-profile stamp", s.Label)
		}
	}
}
