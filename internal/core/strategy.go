package core

import (
	"fmt"
	"sort"
	"sync"

	"nmad/internal/drivers"
)

// Strategy is the paper's pluggable optimization function (§3.2): when a
// rail idles, the scheduler asks the strategy to elect the next request —
// a packet taken from the optimization window, or one synthesized out of
// several wrappers from that window. A strategy sees, through the gate
// and the capability report, the inputs the paper lists: the number of
// packets in the window, each packet's characteristics (destination, flow
// tag, length, sequence number, flags), and the nominal characteristics
// of the underlying network.
//
// Elect must not keep references to the returned output's entries; the
// engine removes them from the window and hands them to the NIC.
type Strategy interface {
	// Name identifies the strategy in the registry.
	Name() string
	// Elect synthesizes the next physical packet for the given rail out
	// of the gate's window, or returns nil to leave the rail idle.
	// Oversized data wrappers have already been converted to rendezvous
	// requests by the engine before Elect runs.
	Elect(g *Gate, driver int, caps drivers.Caps) *output
}

// BodyPlanner is implemented by strategies that control how a rendezvous
// body is distributed over the rails (the paper's multi-rail splitting,
// "possibly in a heterogeneous manner"). Strategies without it stream the
// body over the best single rail.
type BodyPlanner interface {
	// PlanBody splits size bytes into per-rail shares. Shares must cover
	// [0, size) exactly, in ascending offset order.
	PlanBody(e *Engine, size int) []BodyShare
}

// BodyShare is one rail's slice of a rendezvous body.
type BodyShare struct {
	Driver int
	Offset int
	Size   int
}

// The strategy registry — the paper's "extensible and programmable set of
// strategies", selectable by name at engine construction. The RWMutex
// makes registration and lookup safe for concurrent engine construction
// (many clusters assembled from parallel tests or goroutines).
var (
	strategyMu       sync.RWMutex
	strategyRegistry = map[string]func() Strategy{}
)

// RegisterStrategy adds a constructor to the registry. Registering a
// duplicate name panics: strategy names are global configuration keys.
func RegisterStrategy(name string, mk func() Strategy) {
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyRegistry[name]; dup {
		panic("core: duplicate strategy " + name)
	}
	strategyRegistry[name] = mk
}

// NewStrategy instantiates a registered strategy by name.
func NewStrategy(name string) (Strategy, error) {
	strategyMu.RLock()
	mk, ok := strategyRegistry[name]
	strategyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown strategy %q (have %v)", name, StrategyNames())
	}
	return mk(), nil
}

// StrategyNames lists the registered strategies in sorted order.
func StrategyNames() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategyRegistry))
	for n := range strategyRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterStrategy("default", func() Strategy { return &defaultStrategy{} })
	RegisterStrategy("aggreg", func() Strategy { return &aggregStrategy{} })
	RegisterStrategy("split", func() Strategy { return &splitStrategy{} })
	RegisterStrategy("prio", func() Strategy { return &prioStrategy{} })
}
