package core

import (
	"nmad/internal/drivers"
	"nmad/sched"
)

// The engine's side of the public scheduling SPI (package sched): this
// file adapts the internal window and packet wrappers to the read-only
// views strategies consume, and validates the elections they return.
// Strategies — built-in or user-registered — never see a *packet or the
// window itself, so the engine alone enforces the conservation contract:
// every wrapper leaves the window exactly once, onto a rail that can
// physically carry it.

// windowView adapts one gate's window to sched.Window for one rail. The
// views live in Gate.views, one per attached rail, and elections pass a
// pointer into that array: converting a pointer to the interface is
// allocation-free, where boxing a fresh value per Elect call was a heap
// allocation on the pump hot path.
type windowView struct {
	g   *Gate
	drv int
}

func (v *windowView) Peer() int { return int(v.g.peer) }

func (v *windowView) Pending() int { return v.g.win.pending(v.drv) }

func (v *windowView) Credits() int { return v.g.Credits() }

func (v *windowView) Scan(visit func(sched.Wrapper) bool) {
	v.g.scanEligible(v.drv, func(pw *packet) bool { return visit(wrapperView(pw)) })
}

// scanEligible visits the wrappers a strategy may elect for one rail:
// the raw window scan with the flow-control eligibility filter applied.
// When the peer's eager landing credits run low, only the first
// `credits` unsent data wrappers in gate-wide submission order are
// visible — the rest stay in the collect layer until a credit entry
// replenishes the gate. Budgeting in submission order (not per-rail
// view order) keeps the oldest wrapper of every flow inside the credit
// window, which is what makes exhaustion a stall instead of a deadlock.
// Control entries (rendezvous handshake, acks, credits) and pre-granted
// body chunks always pass.
func (g *Gate) scanEligible(drv int, visit func(pw *packet) bool) {
	queue := g.dataWindow()
	if g.eng.opts.Credits == 0 || g.credits >= len(queue) {
		// Flow control off, or the budget covers the whole backlog:
		// nothing to hide, skip the filter entirely.
		g.win.scan(drv, visit)
		return
	}
	// Stamp the credit window — the first `credits` FIFO entries — with
	// a fresh generation so the scan filters with one comparison per
	// wrapper: O(credits + window), not a membership probe per entry.
	e := g.eng
	e.creditGen++
	if g.credits > 0 {
		for _, pw := range queue[:g.credits] {
			pw.creditStamp = e.creditGen
		}
	}
	g.win.scan(drv, func(pw *packet) bool {
		if pw.kind == kindData && pw.creditStamp != e.creditGen {
			return true // beyond the credit window: invisible
		}
		return visit(pw)
	})
}

// wrapperView builds the SPI descriptor of one wrapper: the per-packet
// characteristics the paper's §3.2 lists, plus the opaque identity the
// election hands back.
func wrapperView(pw *packet) sched.Wrapper {
	var fl sched.Flags
	if pw.flags&FlagPriority != 0 {
		fl |= sched.Priority
	}
	if pw.flags&FlagUnordered != 0 {
		fl |= sched.Unordered
	}
	if pw.ctrl() {
		fl |= sched.Control
	}
	return sched.Wrapper{
		Dest:     int(pw.gate.peer),
		Tag:      uint64(pw.tag),
		Seq:      uint32(pw.seq),
		Len:      pw.payloadLen(),
		WireSize: pw.wireSize(),
		Segments: pw.segCount(),
		Flags:    fl,
		Ref:      pw,
	}
}

// railInfo combines a rail's nominal capability report with the sampled
// functional bandwidth and the current backlog — the full RailInfo the
// SPI promises. The backlog comes from the engine's incremental
// counters: railInfo runs on the NIC-idle hot path, once per gate per
// pump sweep.
func (e *Engine) railInfo(drv int) sched.RailInfo {
	return sched.RailInfo{
		Index:       drv,
		Name:        e.drvs[drv].Name(),
		Caps:        e.drvs[drv].Caps(),
		Sampled:     e.samplers[drv].estimate(),
		Backlog:     e.pendingPinned[drv] + e.pendingCommon,
		Failed:      e.railFailed[drv],
		Retransmits: e.railRetrans[drv],
	}
}

// railInfos reports every attached rail, in attach order. The slice is
// engine-owned scratch, valid until the next call: strategies receive it
// for the duration of one PlanBody and must not retain it (the spileak
// analyzer enforces exactly that contract).
func (e *Engine) railInfos() []sched.RailInfo {
	if cap(e.railScratch) < len(e.drvs) {
		e.railScratch = make([]sched.RailInfo, len(e.drvs))
	}
	out := e.railScratch[:len(e.drvs)]
	for i := range e.drvs {
		out[i] = e.railInfo(i)
	}
	return out
}

// electOutput runs the strategy for one (gate, rail) pair and converts
// its election into an output, enforcing the SPI contract: a pick must
// still be in the rail's view (not stale), appear once (no duplication),
// and fit the rail's gather capacity (sendable). Invalid picks are
// dropped and their wrappers stay in the window — no strategy can lose
// or duplicate application data.
func (e *Engine) electOutput(g *Gate, drv int, caps drivers.Caps) *output {
	el := e.strat.Elect(&g.views[drv], e.railInfo(drv))
	if el.Empty() {
		return nil
	}
	// Membership check without allocating a set: stamp the current view
	// with a fresh generation; a valid pick carries the stamp, which is
	// cleared on pick so duplicates mismatch. Picks from another engine
	// (a strategy value shared between engines) are rejected explicitly
	// since their stamps are not ours. Only flow-control-eligible
	// wrappers are stamped — a strategy that somehow picks a wrapper
	// beyond the peer's credit budget loses the pick, not the credit
	// invariant.
	e.electGen++
	g.scanEligible(drv, func(pw *packet) bool {
		pw.gen = e.electGen
		return true
	})
	maxSegs := caps.MaxSegments
	if e.opts.Reliability && maxSegs > 1 {
		maxSegs-- // one gather slot is spent on the link framing header
	}
	out := e.newOutput()
	for _, w := range el.Wrappers() {
		pw, ok := w.Ref.(*packet)
		if !ok || pw.gate == nil || pw.gate.eng != e || pw.gen != e.electGen {
			continue // foreign, stale or duplicated pick
		}
		if out.segCount()+pw.segCount() > maxSegs {
			continue // the rail cannot gather this train; leave it behind
		}
		pw.gen = 0
		out.add(pw)
	}
	if len(out.entries) == 0 {
		e.freeOutput(out)
		return nil
	}
	return out
}

// planBody asks the strategy for a rendezvous body plan and validates
// it: shares must cover [0, size) exactly, in ascending offset order, on
// attached rails. Invalid plans (and non-planner strategies) stream over
// the best single rail.
func (e *Engine) planBody(size int) []sched.BodyShare {
	rails := e.railInfos()
	// Failed rails are withdrawn from the offer: a mid-flow body plan
	// must re-elect the survivors. RailInfo.Index keeps the original
	// attach-order value, so shares still address the right driver. With
	// no failure (the common case) the survey is passed through as-is.
	alive := rails
	for _, r := range rails {
		if r.Failed {
			alive = rails[:0:0]
			for _, r := range rails {
				if !r.Failed {
					alive = append(alive, r)
				}
			}
			break
		}
	}
	if len(alive) == 0 {
		alive = rails // cannot happen (the last rail never fails), but never plan over nothing
	}
	bp, ok := e.strat.(sched.BodyPlanner)
	if !ok || len(alive) <= 1 {
		return sched.SingleRail(alive, size)
	}
	plan := bp.PlanBody(alive, size)
	if !e.validPlan(plan, size) {
		return sched.SingleRail(alive, size)
	}
	return plan
}

// validPlan checks the BodyPlanner contract (and that no share landed on
// a failed rail).
func (e *Engine) validPlan(plan []sched.BodyShare, size int) bool {
	off := 0
	for _, s := range plan {
		if s.Rail < 0 || s.Rail >= len(e.drvs) || s.Offset != off || s.Size <= 0 {
			return false
		}
		if e.railFailed[s.Rail] {
			return false
		}
		off += s.Size
	}
	return off == size
}
