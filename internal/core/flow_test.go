package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Regression and property tests for the scheduler bugfixes and the
// credit-based receive flow control.

// TestFlushOverheadSerializedPerRail locks in the feeding-claim fix:
// when the flush mode elects several outputs back-to-back for one rail,
// each must pay its full per-packet ScheduleOverhead after the previous
// one. The buggy claim (a bool reset by the first overhead callback)
// let outputs overlap and under-charge the overhead.
func TestFlushOverheadSerializedPerRail(t *testing.T) {
	tr := trace.NewRecorder()
	opts := DefaultOptions()
	opts.Strategy = "default" // one wrapper per output: several outputs per burst
	opts.FlushBacklog = 2
	opts.ScheduleOverhead = sim.Microsecond
	opts.Tracer = tr
	w, e0, e1 := testWorld(t, opts)

	const n = 4
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, 1, make([]byte, 64))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 64)); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)

	var departs []sim.Time
	for _, ev := range tr.Filter(trace.Depart) {
		if ev.Node == 0 && ev.Rail == 0 {
			departs = append(departs, ev.At)
		}
	}
	if len(departs) < 3 {
		t.Fatalf("expected several flush-fed outputs, saw %d departs", len(departs))
	}
	for i := 1; i < len(departs); i++ {
		if gap := departs[i] - departs[i-1]; gap < opts.ScheduleOverhead {
			t.Errorf("outputs %d and %d departed %v apart; every output must pay the full %v schedule overhead",
				i-1, i, gap, opts.ScheduleOverhead)
		}
	}
}

// TestSamplerObservesWireSize locks in the bandwidth-sampling fix: the
// EWMA must be fed the wire footprint of the transaction (headers
// included), because that is what the measured duration covers. Feeding
// it payload bytes biased the adaptive feedback loop low.
func TestSamplerObservesWireSize(t *testing.T) {
	tr := trace.NewRecorder()
	opts := DefaultOptions()
	opts.SubmitOverhead = 0
	opts.ScheduleOverhead = 0
	opts.Tracer = tr
	w, e0, e1 := testWorld(t, opts)

	const size = 8 << 10
	var end sim.Time
	w.Spawn("send", func(p *sim.Proc) {
		req := e0.Gate(1).Isend(p, 1, make([]byte, size))
		if err := req.Wait(p); err != nil {
			t.Error(err)
		}
		end = p.Now() // the NIC finished the packet at this instant
	})
	w.Spawn("recv", func(p *sim.Proc) {
		if _, err := e1.Gate(0).Recv(p, 1, make([]byte, size)); err != nil {
			t.Error(err)
		}
	})
	run(t, w)

	var departs []trace.Event
	for _, ev := range tr.Filter(trace.Depart) {
		if ev.Node == 0 {
			departs = append(departs, ev)
		}
	}
	if len(departs) != 1 {
		t.Fatalf("expected exactly one output packet, saw %d", len(departs))
	}
	dur := end - departs[0].At
	if dur <= 0 {
		t.Fatalf("bad duration %v", dur)
	}
	got := e0.samplers[0].rate
	want := float64(size+headerSize) / dur.Seconds()
	payloadOnly := float64(size) / dur.Seconds()
	if rel := math.Abs(got-want) / want; rel > 1e-9 {
		t.Errorf("sampler rate %.0f B/s, want wire-size rate %.0f (payload-only rate would be %.0f)",
			got, want, payloadOnly)
	}
}

// TestRdvGrantClampedToLanding locks in the grant-clamping fix: a
// rendezvous whose posted landing area is smaller than the announced
// body must stream only the granted bytes — the receive completes with
// ErrTruncated and the excess never crosses the wire.
func TestRdvGrantClampedToLanding(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	const full, landing = 256 << 10, 64 << 10
	payload := make([]byte, full)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Isend(p, 1, payload).Wait(p); err != nil {
			t.Errorf("sender must complete cleanly after streaming the granted span: %v", err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, landing)
		n, err := e1.Gate(0).Recv(p, 1, buf)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("short landing area: err = %v, want ErrTruncated", err)
		}
		if n != landing {
			t.Errorf("received %d bytes, want the %d-byte landing capacity", n, landing)
		}
		if !bytes.Equal(buf, payload[:landing]) {
			t.Error("granted span corrupted")
		}
	})
	run(t, w)

	if moved := e0.Stats().BodyBytes; moved != landing {
		t.Errorf("sender streamed %d body bytes, want only the granted %d (excess must not cross the wire)", moved, landing)
	}
	if tr := e1.Stats().RdvTruncated; tr != 1 {
		t.Errorf("RdvTruncated = %d, want 1", tr)
	}
}

// TestMaxGrantsDefersGrants: with MaxGrants=1 a flood of rendezvous
// requests is granted one at a time (CTS deferred), and every transfer
// still completes intact.
func TestMaxGrantsDefersGrants(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxGrants = 1
	w, e0, e1 := testWorld(t, opts)
	const n, size = 3, 128 << 10
	mk := func(tag int) []byte {
		b := make([]byte, size)
		for i := range b {
			b[i] = byte(i*3 + tag)
		}
		return b
	}
	w.Spawn("send", func(p *sim.Proc) {
		var reqs []Request
		for tag := 1; tag <= n; tag++ {
			reqs = append(reqs, e0.Gate(1).Isend(p, Tag(tag), mk(tag)))
		}
		if err := WaitAll(p, reqs...); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		bufs := make([][]byte, n)
		var reqs []Request
		for tag := 1; tag <= n; tag++ {
			bufs[tag-1] = make([]byte, size)
			reqs = append(reqs, e1.Gate(0).Irecv(p, Tag(tag), bufs[tag-1]))
		}
		if err := WaitAll(p, reqs...); err != nil {
			t.Error(err)
		}
		for tag := 1; tag <= n; tag++ {
			if !bytes.Equal(bufs[tag-1], mk(tag)) {
				t.Errorf("tag %d corrupted", tag)
			}
		}
	})
	run(t, w)

	st := e1.Stats()
	if st.RdvDeferred < n-1 {
		t.Errorf("RdvDeferred = %d, want at least %d (MaxGrants=1 over %d concurrent rendezvous)", st.RdvDeferred, n-1, n)
	}
	if st.ProtocolErrors != 0 {
		t.Errorf("protocol errors: %d", st.ProtocolErrors)
	}
}

// TestCreditsThrottleAndReplenish: with a credit budget of 2 and a
// receiver that posts nothing for a while, at most 2 eager wrappers may
// be in flight; the rest wait in the sender's window, invisible to the
// strategies, until consumed wrappers return their credits.
func TestCreditsThrottleAndReplenish(t *testing.T) {
	opts := DefaultOptions()
	opts.Credits = 2
	w, e0, e1 := testWorld(t, opts)
	const n = 5
	var reqs []Request
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			reqs = append(reqs, e0.Gate(1).Isend(p, 1, []byte{byte(i), 2, 3}))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond) // let the burst hit the credit wall
		if got := e1.Gate(0).PendingUnexpected(); got > opts.Credits {
			t.Errorf("unexpected queue reached %d with a budget of %d", got, opts.Credits)
		}
		if e0.WindowEmpty() {
			t.Error("sender window drained past the credit budget")
		}
		for i := 0; i < n; i++ {
			buf := make([]byte, 3)
			if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
				t.Error(err)
			}
			if buf[0] != byte(i) {
				t.Errorf("message %d out of order or corrupted", i)
			}
		}
	})
	run(t, w)

	if err := WaitAll(nil, reqs...); err != nil || len(reqs) != n {
		t.Fatalf("sends: %d requests, err %v", len(reqs), err)
	}
	if st := e1.Stats(); st.PeakUnexpected > opts.Credits {
		t.Errorf("PeakUnexpected = %d, want <= credit budget %d", st.PeakUnexpected, opts.Credits)
	}
	if g := e0.Gate(1); g.Credits() != opts.Credits {
		t.Errorf("all credits must return once the receiver drained: have %d of %d", g.Credits(), opts.Credits)
	}
	if cs := e1.Stats().CreditsSent; cs == 0 {
		t.Error("receiver never sent a credit replenishment entry")
	}
}

// TestCreditsRespectSubmissionOrderAcrossRails: the credit window is
// budgeted in gate-wide submission order, not per-rail view order. With
// one credit, a flow head pinned to a busy rail, and a later wrapper of
// the same flow on the common list, the later wrapper must NOT take the
// last credit: the receiver would park it in the resequencing buffer
// (which never returns credits) and the head could never be sent — a
// permanent flow-control deadlock.
func TestCreditsRespectSubmissionOrderAcrossRails(t *testing.T) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 3, simnet.DefaultHost())
	for _, prof := range []simnet.Profile{simnet.MX10G(), simnet.QsNetII()} {
		if _, err := f.AddNetwork(prof); err != nil {
			t.Fatal(err)
		}
	}
	opts := DefaultOptions()
	opts.Credits = 1
	mk := func(id simnet.NodeID) *Engine {
		e, err := New(f, id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0, e1, e2 := mk(0), mk(1), mk(2)

	w.Spawn("sender", func(p *sim.Proc) {
		// Occupy rail 1 with traffic to another gate, then pin the flow
		// head to the busy rail while the follow-up rides the common
		// list: rail 0 idles first and sees only the follow-up.
		filler := e0.Gate(2).Isend(p, 9, make([]byte, 8<<10), OnRail(1))
		head := e0.Gate(1).Isend(p, 5, []byte("head"), OnRail(1))
		tail := e0.Gate(1).Isend(p, 5, []byte("tail"))
		if err := WaitAll(p, filler, head, tail); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv-1", func(p *sim.Proc) {
		for _, want := range []string{"head", "tail"} {
			buf := make([]byte, 4)
			if _, err := e1.Gate(0).Recv(p, 5, buf); err != nil {
				t.Errorf("recv %q: %v", want, err)
				return
			}
			if string(buf) != want {
				t.Errorf("got %q, want %q (per-flow order)", buf, want)
			}
		}
	})
	w.Spawn("recv-2", func(p *sim.Proc) {
		if _, err := e2.Gate(0).Recv(p, 9, make([]byte, 8<<10)); err != nil {
			t.Error(err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatalf("flow-control deadlock: %v", err)
	}
}

// TestIncastBoundedQueuesUnderCredits is the overload property: eight
// senders flood one slow receiver; with credit flow control the
// receiver's unexpected queue and resequencing backlog stay bounded by
// the per-gate budget, no protocol error fires, and every payload
// arrives intact.
func TestIncastBoundedQueuesUnderCredits(t *testing.T) {
	const (
		senders = 8
		msgs    = 24
		size    = 512
		credits = 8
	)
	w := sim.NewWorld()
	f := simnet.NewFabric(w, senders+1, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Credits = credits
	opts.MaxGrants = 2
	mk := func(id simnet.NodeID) *Engine {
		e, err := New(f, id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		return e
	}
	recv := mk(0)
	engines := make([]*Engine, senders)
	for i := range engines {
		engines[i] = mk(simnet.NodeID(i + 1))
	}
	fill := func(sender, msg int, buf []byte) {
		for i := range buf {
			buf[i] = byte(sender*31 + msg*7 + i)
		}
	}
	for s, e := range engines {
		s, e := s, e
		w.Spawn(fmt.Sprintf("sender-%d", s+1), func(p *sim.Proc) {
			var reqs []Request
			for m := 0; m < msgs; m++ {
				buf := make([]byte, size)
				fill(s+1, m, buf)
				reqs = append(reqs, e.Gate(0).Isend(p, Tag(s+1), buf))
			}
			if err := WaitAll(p, reqs...); err != nil {
				t.Errorf("sender %d: %v", s+1, err)
			}
		})
	}
	for s := range engines {
		s := s
		w.Spawn(fmt.Sprintf("drain-%d", s+1), func(p *sim.Proc) {
			g := recv.Gate(simnet.NodeID(s + 1))
			want := make([]byte, size)
			for m := 0; m < msgs; m++ {
				p.Sleep(2 * sim.Microsecond) // slow receiver: the overload
				buf := make([]byte, size)
				n, err := g.Recv(p, Tag(s+1), buf)
				if err != nil || n != size {
					t.Errorf("recv from %d: n=%d err=%v", s+1, n, err)
					return
				}
				fill(s+1, m, want)
				if !bytes.Equal(buf, want) {
					t.Errorf("sender %d msg %d corrupted", s+1, m)
				}
			}
		})
	}
	run(t, w)

	st := recv.Stats()
	if st.PeakUnexpected > credits {
		t.Errorf("PeakUnexpected = %d, want <= per-gate credit budget %d", st.PeakUnexpected, credits)
	}
	if st.PeakHeld > credits {
		t.Errorf("PeakHeld = %d, want <= per-gate credit budget %d", st.PeakHeld, credits)
	}
	if st.ProtocolErrors != 0 {
		t.Errorf("protocol errors under overload: %d", st.ProtocolErrors)
	}
	for i, e := range engines {
		if !e.WindowEmpty() {
			t.Errorf("sender %d window not drained", i+1)
		}
	}
}

// TestDroppedDuplicateReturnsCredit: a data wrapper dropped as a
// duplicate still spent a sender credit; the drop must return it, or
// every counted anomaly would permanently shrink the gate's budget.
func TestDroppedDuplicateReturnsCredit(t *testing.T) {
	opts := DefaultOptions()
	opts.Credits = 4
	w, _, e1 := testWorld(t, opts)
	w.Spawn("inject", func(p *sim.Proc) {
		g := e1.Gate(0)
		g.Irecv(p, 3, make([]byte, 2))
		e1.dispatch(0, header{kind: kindData, tag: 3, seq: 0, length: 2}, []byte{1, 2})
		e1.dispatch(0, header{kind: kindData, tag: 3, seq: 0, length: 2}, []byte{1, 2})
	})
	run(t, w)
	if got := e1.Stats().ProtocolErrors; got != 1 {
		t.Fatalf("ProtocolErrors = %d, want 1", got)
	}
	// Both the consumed original and the dropped duplicate replenish
	// (batch size is 1 at this budget).
	if got := e1.Stats().CreditsSent; got != 2 {
		t.Errorf("CreditsSent = %d, want 2 (dropped duplicate must return its credit)", got)
	}
}

// TestDuplicateDeferredRendezvousRejected: a duplicate RTS id must be
// rejected even while the original waits in the MaxGrants deferral
// queue — queueing it twice would overwrite the live transaction when
// the grants release.
func TestDuplicateDeferredRendezvousRejected(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxGrants = 1
	w, _, e1 := testWorld(t, opts)
	w.Spawn("inject", func(p *sim.Proc) {
		g := e1.Gate(0)
		g.Irecv(p, 1, make([]byte, 16))
		g.Irecv(p, 2, make([]byte, 16))
		g.Irecv(p, 2, make([]byte, 16))
		// The first RTS takes the only grant slot; the second defers;
		// the duplicated second must be counted and dropped.
		e1.dispatch(0, header{kind: kindRTS, flags: FlagUnordered, tag: 1, length: 16, aux: 1}, nil)
		e1.dispatch(0, header{kind: kindRTS, flags: FlagUnordered, tag: 2, length: 16, aux: 2}, nil)
		e1.dispatch(0, header{kind: kindRTS, flags: FlagUnordered, tag: 2, length: 16, aux: 2}, nil)
	})
	run(t, w)
	if got := e1.Stats().ProtocolErrors; got != 1 {
		t.Errorf("ProtocolErrors = %d, want 1 (the duplicated deferred RTS)", got)
	}
	if got := e1.Stats().RdvDeferred; got != 1 {
		t.Errorf("RdvDeferred = %d, want 1", got)
	}
}

// TestProtocolAnomaliesCountedNotFatal: receive-path protocol anomalies
// that used to panic are now counted per gate and dropped.
func TestProtocolAnomaliesCountedNotFatal(t *testing.T) {
	w, _, e1 := testWorld(t, DefaultOptions())
	w.Spawn("inject", func(p *sim.Proc) {
		g := e1.Gate(0)
		g.Irecv(p, 9, make([]byte, 4))
		e1.dispatch(0, header{kind: kindData, tag: 9, seq: 0, length: 1}, []byte{1})
		e1.dispatch(0, header{kind: kindData, tag: 9, seq: 0, length: 1}, []byte{1}) // duplicate seq
		e1.dispatch(0, header{kind: kindData, tag: 9, seq: 5, length: 1}, []byte{5}) // held (out of order)
		e1.dispatch(0, header{kind: kindData, tag: 9, seq: 5, length: 1}, []byte{5}) // duplicate of a held entry
		e1.onAck(g, 77)                                                              // unknown sync-send id
		e1.onBody(0, 99, 0, []byte{1, 2, 3})                                         // unknown rendezvous
		e1.onDelivery(0, simnet.Delivery{Src: 0, Data: []byte{0xFF, 1, 2}})          // corrupt train
		e1.dispatch(0, header{kind: entryKind(42)}, nil)                             // unknown kind
	})
	run(t, w)

	const want = 6
	if got := e1.Stats().ProtocolErrors; got != want {
		t.Errorf("Stats.ProtocolErrors = %d, want %d", got, want)
	}
	if got := e1.Gate(0).ProtocolErrors(); got != want {
		t.Errorf("gate attribution = %d, want %d", got, want)
	}
}
