package core

import (
	"bytes"
	"errors"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Tests for the first-class vector (iovec) path: Isendv/Irecvv, eager
// and rendezvous, scatter/gather correctness and aggregation behaviour.

func segsOf(rng *sim.RNG, sizes ...int) ([][]byte, []byte) {
	var flat []byte
	iov := make([][]byte, len(sizes))
	for i, n := range sizes {
		iov[i] = make([]byte, n)
		rng.Bytes(iov[i])
		flat = append(flat, iov[i]...)
	}
	return iov, flat
}

func TestIsendvIrecvvEagerRoundTrip(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	iov, flat := segsOf(sim.NewRNG(21), 64, 5, 300, 1)
	// Receive into a DIFFERENT segmentation with the same total: the wire
	// format carries one logical byte range, not the sender's cuts.
	out := [][]byte{make([]byte, 100), make([]byte, 270)}
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Isendv(p, 3, iov).Wait(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		req := e1.Gate(0).Irecvv(p, 3, out)
		if err := req.Wait(p); err != nil {
			t.Error(err)
		}
		if req.N() != len(flat) {
			t.Errorf("received %d bytes, want %d", req.N(), len(flat))
		}
	})
	run(t, w)
	got := append(append([]byte(nil), out[0]...), out[1]...)
	if !bytes.Equal(got, flat) {
		t.Error("eager vector payload corrupted")
	}
}

func TestIsendvSingleWrapperSinglePacket(t *testing.T) {
	// The §5.3 point: a non-contiguous layout is ONE wrapper, and with an
	// idle backlog it departs as ONE physical packet whose payload is the
	// concatenated segments — not one packet (or even one wrapper) per
	// block.
	rec := trace.NewRecorder()
	opts := DefaultOptions()
	opts.Tracer = rec
	w, e0, e1 := testWorldMixed(t, opts, DefaultOptions())
	iov, flat := segsOf(sim.NewRNG(22), 64, 64, 64, 64, 64, 64)
	out := make([]byte, len(flat))
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Isendv(p, 9, iov).Wait(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		if err := e1.Gate(0).Irecvv(p, 9, [][]byte{out}).Wait(p); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if !bytes.Equal(out, flat) {
		t.Fatal("payload corrupted")
	}
	if n := rec.Count(trace.Submit); n != 1 {
		t.Errorf("Submit events = %d, want 1 (one wrapper for the whole iovec)", n)
	}
	if n := rec.Count(trace.Depart); n != 1 {
		t.Errorf("Depart events = %d, want 1 (all segments in one physical packet)", n)
	}
	st := e0.Stats()
	if st.Submitted != 1 || st.OutputPackets != 1 {
		t.Errorf("stats %d wrappers / %d packets, want 1/1", st.Submitted, st.OutputPackets)
	}
}

func TestIsendvRendezvousScattersZeroCopy(t *testing.T) {
	// A vector send above the threshold: the body must stream via
	// rendezvous straight out of the scattered segments and into the
	// receiver's scattered segments.
	w, e0, e1 := testWorld(t, DefaultOptions())
	iov, flat := segsOf(sim.NewRNG(23), 64, 200<<10, 64, 100<<10)
	out := [][]byte{make([]byte, 150<<10), make([]byte, len(flat)-150<<10)}
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Isendv(p, 5, iov).Wait(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		req := e1.Gate(0).Irecvv(p, 5, out)
		if err := req.Wait(p); err != nil {
			t.Error(err)
		}
		if req.N() != len(flat) {
			t.Errorf("received %d, want %d", req.N(), len(flat))
		}
	})
	run(t, w)
	got := append(append([]byte(nil), out[0]...), out[1]...)
	if !bytes.Equal(got, flat) {
		t.Fatal("rendezvous vector body corrupted")
	}
	st := e0.Stats()
	if st.RdvStarted != 1 || st.RdvCompleted != 1 {
		t.Errorf("rdv stats %d/%d, want 1/1", st.RdvStarted, st.RdvCompleted)
	}
	if st.BodyBytes != int64(len(flat)) {
		t.Errorf("BodyBytes = %d, want %d", st.BodyBytes, len(flat))
	}
}

func TestIsendvRendezvousOverEveryProfile(t *testing.T) {
	// The chunked (non-RDMA) body path must respect each rail's gather
	// capacity even when the body is an iovec of many segments.
	for _, prof := range simnet.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			w, e0, e1 := testWorld(t, DefaultOptions(), prof)
			sizes := make([]int, 64)
			for i := range sizes {
				sizes[i] = prof.RdvThreshold/16 + i
			}
			iov, flat := segsOf(sim.NewRNG(24), sizes...)
			out := make([]byte, len(flat))
			w.Spawn("send", func(p *sim.Proc) {
				if err := e0.Gate(1).Isendv(p, 5, iov).Wait(p); err != nil {
					t.Error(err)
				}
			})
			w.Spawn("recv", func(p *sim.Proc) {
				if err := e1.Gate(0).Irecvv(p, 5, [][]byte{out}).Wait(p); err != nil {
					t.Error(err)
				}
			})
			run(t, w)
			if !bytes.Equal(out, flat) {
				t.Fatalf("vector body corrupted on %s", prof.Name)
			}
		})
	}
}

func TestIsendvMoreSegmentsThanGatherCapacity(t *testing.T) {
	// An eager vector wrapper with more segments than any rail can gather
	// is flattened at submission (software gather) instead of failing —
	// and the memcpy is charged to the submitting process, like the
	// transfer-layer bounce buffers charge theirs.
	w, e0, e1 := testWorld(t, DefaultOptions())
	sizes := make([]int, 100) // MX gathers 32 segments
	for i := range sizes {
		sizes[i] = 8
	}
	iov, flat := segsOf(sim.NewRNG(25), sizes...)
	out := make([]byte, len(flat))
	w.Spawn("send", func(p *sim.Proc) {
		before := p.Now()
		req := e0.Gate(1).Isendv(p, 1, iov)
		charged := p.Now() - before
		// SubmitOverhead (150ns) plus the 800B memcpy at the host's
		// 1.2 GB/s (~667ns).
		if charged < 500*sim.Nanosecond {
			t.Errorf("submit charged only %v; the flatten memcpy went free", charged)
		}
		if err := req.Wait(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		if err := e1.Gate(0).Irecvv(p, 1, [][]byte{out}).Wait(p); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if !bytes.Equal(out, flat) {
		t.Error("flattened vector payload corrupted")
	}
}

func TestIsendvWideWrapperWaitsForTheWideRail(t *testing.T) {
	// Two rails with different gather capacities (MX 32, Quadrics 16): a
	// vector wrapper with ~20 segments must NOT be flattened (MX can
	// gather it) and must never be elected onto the narrow rail — even
	// when the narrow rail idles first.
	for _, strat := range []string{"aggreg", "default", "prio"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Strategy = strat
			w, e0, e1 := testWorld(t, opts, simnet.MX10G(), simnet.QsNetII())
			sizes := make([]int, 20)
			for i := range sizes {
				sizes[i] = 16
			}
			iov, flat := segsOf(sim.NewRNG(27), sizes...)
			out := make([]byte, len(flat))
			w.Spawn("send", func(p *sim.Proc) {
				// Occupy the MX rail so the Quadrics rail idles first and
				// gets offered the wide wrapper.
				e0.Gate(1).Isend(p, 1, make([]byte, 4<<10), OnRail(0))
				if err := e0.Gate(1).Isendv(p, 2, iov).Wait(p); err != nil {
					t.Error(err)
				}
			})
			w.Spawn("recv", func(p *sim.Proc) {
				r1 := e1.Gate(0).Irecv(p, 1, make([]byte, 4<<10))
				r2 := e1.Gate(0).Irecvv(p, 2, [][]byte{out})
				if err := WaitAll(p, r1, r2); err != nil {
					t.Error(err)
				}
			})
			run(t, w)
			if !bytes.Equal(out, flat) {
				t.Fatal("wide vector payload corrupted")
			}
			st := e0.Stats()
			// All payload rode the MX rail: the pinned occupier plus the
			// wide wrapper the Quadrics rail had to leave alone.
			if st.PerDriverBytes[1] != 0 {
				t.Errorf("narrow rail carried %d bytes of a wrapper it cannot gather", st.PerDriverBytes[1])
			}
			if st.PerDriverBytes[0] != int64(4<<10+len(flat)) {
				t.Errorf("wide rail carried %d bytes, want %d", st.PerDriverBytes[0], 4<<10+len(flat))
			}
		})
	}
}

func TestIrecvvTruncation(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	iov, flat := segsOf(sim.NewRNG(26), 40, 40)
	out := [][]byte{make([]byte, 16), make([]byte, 16)}
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isendv(p, 2, iov)
	})
	w.Spawn("recv", func(p *sim.Proc) {
		req := e1.Gate(0).Irecvv(p, 2, out)
		if err := req.Wait(p); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
		if req.N() != 32 {
			t.Errorf("N = %d, want the landing capacity 32", req.N())
		}
	})
	run(t, w)
	if !bytes.Equal(out[0], flat[:16]) || !bytes.Equal(out[1], flat[16:32]) {
		t.Error("truncated scatter filled the wrong bytes")
	}
}

func TestIovecHelpers(t *testing.T) {
	v := iovec{[]byte("abc"), nil, []byte("defgh"), []byte("i")}
	if v.total() != 9 {
		t.Errorf("total = %d, want 9", v.total())
	}
	if v.segCount() != 3 {
		t.Errorf("segCount = %d, want 3 (nil segment skipped)", v.segCount())
	}
	if got := string(v.flatten()); got != "abcdefghi" {
		t.Errorf("flatten = %q", got)
	}
	if got := string(iovec.flatten(v.slice(2, 4))); got != "cdef" {
		t.Errorf("slice(2,4) = %q, want cdef", got)
	}
	if n := v.capSegs(0, 9, 2); n != 8 {
		t.Errorf("capSegs(0,9,2) = %d, want 8 (abc + defgh)", n)
	}
	if n := v.capSegs(1, 3, 1); n != 2 {
		t.Errorf("capSegs(1,3,1) = %d, want 2 (bc)", n)
	}
	dst := iovec{make([]byte, 4), make([]byte, 4)}
	if n := dst.copyAt(2, []byte("XYZW")); n != 4 {
		t.Errorf("copyAt placed %d, want 4", n)
	}
	if got := string(dst.flatten()); got != "\x00\x00XYZW\x00\x00" {
		t.Errorf("copyAt result %q", got)
	}
	if n := dst.copyAt(6, []byte("0123")); n != 2 {
		t.Errorf("copyAt over the end placed %d, want 2", n)
	}
}
