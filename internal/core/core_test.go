package core

import (
	"bytes"
	"errors"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/sched"
)

// testWorld builds a 2-node fabric with the given networks and one engine
// per node, both using opts.
func testWorld(t *testing.T, opts Options, profs ...simnet.Profile) (*sim.World, *Engine, *Engine) {
	t.Helper()
	if len(profs) == 0 {
		profs = []simnet.Profile{simnet.MX10G()}
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	for _, p := range profs {
		if _, err := f.AddNetwork(p); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(id simnet.NodeID) *Engine {
		e, err := New(f, id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return w, mk(0), mk(1)
}

func run(t *testing.T, w *sim.World) {
	t.Helper()
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWireHeaderRoundTrip(t *testing.T) {
	h := header{kind: kindRTS, flags: FlagPriority | FlagUnordered, tag: 0xDEADBEEFCAFE, seq: 42, length: 1 << 20, aux: 7}
	enc := encodeHeader(nil, h)
	if len(enc) != headerSize {
		t.Fatalf("encoded header is %d bytes, want %d", len(enc), headerSize)
	}
	got, err := decodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("round trip %+v, want %+v", got, h)
	}
}

func TestWireDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeHeader([]byte{1, 2, 3}); !errors.Is(err, ErrBadWire) {
		t.Errorf("short header: %v, want ErrBadWire", err)
	}
	bad := encodeHeader(nil, header{kind: kindData})
	bad[0] = 0x00
	if _, err := decodeHeader(bad); !errors.Is(err, ErrBadWire) {
		t.Errorf("bad magic: %v, want ErrBadWire", err)
	}
	bad2 := encodeHeader(nil, header{kind: kindData})
	bad2[1] = 99
	if _, err := decodeHeader(bad2); !errors.Is(err, ErrBadWire) {
		t.Errorf("bad kind: %v, want ErrBadWire", err)
	}
	// Truncated payload.
	train := encodeHeader(nil, header{kind: kindData, length: 100})
	if err := walkEntries(train, func(header, []byte) error { return nil }); !errors.Is(err, ErrBadWire) {
		t.Errorf("truncated payload: %v, want ErrBadWire", err)
	}
}

func TestWireTrainWalk(t *testing.T) {
	var train []byte
	train = encodeHeader(train, header{kind: kindRTS, tag: 1, seq: 0, length: 5000, aux: 9})
	train = encodeHeader(train, header{kind: kindData, tag: 2, seq: 3, length: 4})
	train = append(train, 'a', 'b', 'c', 'd')
	train = encodeHeader(train, header{kind: kindCTS, tag: 1, aux: 9})
	var kinds []entryKind
	var payloads []string
	err := walkEntries(train, func(h header, p []byte) error {
		kinds = append(kinds, h.kind)
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 || kinds[0] != kindRTS || kinds[1] != kindData || kinds[2] != kindCTS {
		t.Errorf("kinds %v, want [rts data cts]", kinds)
	}
	if payloads[1] != "abcd" {
		t.Errorf("data payload %q, want abcd", payloads[1])
	}
}

func TestBasicSendRecv(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	msg := []byte("the quick brown fox")
	buf := make([]byte, 64)
	var n int
	w.Spawn("recv", func(p *sim.Proc) {
		var err error
		n, err = e1.Gate(0).Recv(p, 7, buf)
		if err != nil {
			t.Error(err)
		}
	})
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 7, msg); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if n != len(msg) || !bytes.Equal(buf[:n], msg) {
		t.Errorf("received %q (%d bytes), want %q", buf[:n], n, msg)
	}
}

func TestUnexpectedMessageThenRecv(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	msg := []byte("early bird")
	got := make([]byte, 32)
	var n int
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 3, msg); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond) // message arrives first
		if e1.Gate(0).PendingUnexpected() != 1 {
			t.Errorf("unexpected queue holds %d, want 1", e1.Gate(0).PendingUnexpected())
		}
		var err error
		n, err = e1.Gate(0).Recv(p, 3, got)
		if err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if n != len(msg) || !bytes.Equal(got[:n], msg) {
		t.Errorf("received %q, want %q", got[:n], msg)
	}
	if e1.Stats().Unexpected != 1 {
		t.Errorf("Unexpected stat = %d, want 1", e1.Stats().Unexpected)
	}
}

func TestManyTagsManyMessages(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	const tags, per = 5, 8
	rng := sim.NewRNG(99)
	want := map[[2]int][]byte{}
	for tg := 0; tg < tags; tg++ {
		for i := 0; i < per; i++ {
			b := make([]byte, rng.Range(1, 300))
			rng.Bytes(b)
			want[[2]int{tg, i}] = b
		}
	}
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < per; i++ {
			for tg := 0; tg < tags; tg++ {
				e0.Gate(1).Isend(p, Tag(tg), want[[2]int{tg, i}])
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for tg := 0; tg < tags; tg++ {
			for i := 0; i < per; i++ {
				buf := make([]byte, 512)
				n, err := e1.Gate(0).Recv(p, Tag(tg), buf)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf[:n], want[[2]int{tg, i}]) {
					t.Fatalf("tag %d msg %d corrupted", tg, i)
				}
			}
		}
	})
	run(t, w)
	if !e0.WindowEmpty() {
		t.Error("sender window did not drain")
	}
}

func TestPerFlowOrderingPreserved(t *testing.T) {
	// Messages on one flow must be received in submission order even
	// though the aggregation strategy may reorder them on the wire.
	w, e0, e1 := testWorld(t, DefaultOptions())
	const n = 20
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, 1, []byte{byte(i)})
		}
	})
	var got []byte
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
				t.Fatal(err)
			}
			got = append(got, buf[0])
		}
	})
	run(t, w)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("flow order broken: position %d holds %d", i, got[i])
		}
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	for _, strat := range []string{"default", "aggreg", "split", "prio"} {
		strat := strat
		t.Run(strat, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Strategy = strat
			w, e0, e1 := testWorld(t, opts)
			big := make([]byte, 1<<20)
			sim.NewRNG(5).Bytes(big)
			buf := make([]byte, len(big))
			w.Spawn("recv", func(p *sim.Proc) {
				n, err := e1.Gate(0).Recv(p, 9, buf)
				if err != nil {
					t.Error(err)
				}
				if n != len(big) {
					t.Errorf("received %d bytes, want %d", n, len(big))
				}
			})
			w.Spawn("send", func(p *sim.Proc) {
				if err := e0.Gate(1).Send(p, 9, big); err != nil {
					t.Error(err)
				}
			})
			run(t, w)
			if !bytes.Equal(buf, big) {
				t.Error("rendezvous body corrupted")
			}
			st := e0.Stats()
			if st.RdvStarted != 1 || st.RdvCompleted != 1 {
				t.Errorf("rdv stats %d/%d, want 1/1", st.RdvStarted, st.RdvCompleted)
			}
			if st.BodyBytes != int64(len(big)) {
				t.Errorf("BodyBytes = %d, want %d", st.BodyBytes, len(big))
			}
		})
	}
}

func TestRendezvousUnexpectedRTS(t *testing.T) {
	// RTS arrives before the receive is posted: the body must wait (no
	// data buffered) and still land zero-copy once the receive exists.
	w, e0, e1 := testWorld(t, DefaultOptions())
	big := make([]byte, 256<<10)
	sim.NewRNG(6).Bytes(big)
	buf := make([]byte, len(big))
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 4, big); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond)
		if e1.Gate(0).PendingUnexpected() != 1 {
			t.Errorf("RTS not parked: unexpected=%d", e1.Gate(0).PendingUnexpected())
		}
		if _, err := e1.Gate(0).Recv(p, 4, buf); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if !bytes.Equal(buf, big) {
		t.Error("late-posted rendezvous corrupted")
	}
}

func TestTruncatedEagerRecv(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, 2, []byte("0123456789"))
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 4)
		req := e1.Gate(0).Irecv(p, 2, buf)
		if err := req.Wait(p); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
		if req.N() != 4 || string(buf) != "0123" {
			t.Errorf("partial payload %q (n=%d), want 0123", buf, req.N())
		}
	})
	run(t, w)
}

func TestTruncatedRendezvousRecv(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	big := make([]byte, 128<<10)
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 2, big); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 1000)
		req := e1.Gate(0).Irecv(p, 2, buf)
		if err := req.Wait(p); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
		if req.N() != 1000 {
			t.Errorf("N = %d, want the buffer length", req.N())
		}
	})
	run(t, w)
}

func TestMaskedRecvMatchesAnyTagInSpace(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	const space = Tag(0x5) << 32
	mask := Tag(0xFFFFFFFF00000000)
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, space|123, []byte("in-space"))
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 32)
		req := e1.Gate(0).IrecvMasked(p, space, mask, buf)
		if err := req.Wait(p); err != nil {
			t.Fatal(err)
		}
		if req.Tag() != space|123 {
			t.Errorf("matched tag %#x, want %#x", req.Tag(), space|123)
		}
		if string(buf[:req.N()]) != "in-space" {
			t.Errorf("payload %q", buf[:req.N()])
		}
	})
	run(t, w)
}

func TestMaskedRecvIgnoresOtherSpace(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	const spaceA, spaceB = Tag(0xA) << 32, Tag(0xB) << 32
	mask := Tag(0xFFFFFFFF00000000)
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, spaceB|1, []byte("B"))
		e0.Gate(1).Isend(p, spaceA|1, []byte("A"))
	})
	w.Spawn("recv", func(p *sim.Proc) {
		bufA := make([]byte, 8)
		reqA := e1.Gate(0).IrecvMasked(p, spaceA, mask, bufA)
		if err := reqA.Wait(p); err != nil {
			t.Fatal(err)
		}
		if string(bufA[:reqA.N()]) != "A" {
			t.Errorf("space-A receive got %q", bufA[:reqA.N()])
		}
		bufB := make([]byte, 8)
		reqB := e1.Gate(0).IrecvMasked(p, spaceB, mask, bufB)
		if err := reqB.Wait(p); err != nil {
			t.Fatal(err)
		}
		if string(bufB[:reqB.N()]) != "B" {
			t.Errorf("space-B receive got %q", bufB[:reqB.N()])
		}
	})
	run(t, w)
}

func TestAggregationAcrossFlows(t *testing.T) {
	// Several small sends on different tags submitted back-to-back: the
	// aggregation strategy must coalesce the backlog into fewer physical
	// packets — the paper's headline mechanism.
	w, e0, e1 := testWorld(t, DefaultOptions())
	const n = 12
	w.Spawn("send", func(p *sim.Proc) {
		reqs := make([]*SendRequest, n)
		for i := 0; i < n; i++ {
			reqs[i] = e0.Gate(1).Isend(p, Tag(i), make([]byte, 64))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		reqs := make([]*RecvRequest, n)
		for i := 0; i < n; i++ {
			reqs[i] = e1.Gate(0).Irecv(p, Tag(i), make([]byte, 64))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	st := e0.Stats()
	if st.EntriesSent != n {
		t.Fatalf("EntriesSent = %d, want %d", st.EntriesSent, n)
	}
	if st.OutputPackets >= n {
		t.Errorf("no aggregation happened: %d packets for %d sends", st.OutputPackets, n)
	}
	if st.AggregatedPackets == 0 {
		t.Error("AggregatedPackets = 0; the window never coalesced anything")
	}
	if st.AggregationRatio() <= 1.5 {
		t.Errorf("aggregation ratio %.2f, want > 1.5", st.AggregationRatio())
	}
}

func TestDefaultStrategyNeverAggregates(t *testing.T) {
	opts := DefaultOptions()
	opts.Strategy = "default"
	w, e0, e1 := testWorld(t, opts)
	const n = 10
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, Tag(i), make([]byte, 32))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if err := e1.Gate(0).Irecv(p, Tag(i), make([]byte, 32)).Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	st := e0.Stats()
	if st.OutputPackets != n || st.AggregatedPackets != 0 {
		t.Errorf("default strategy sent %d packets (%d aggregated) for %d sends; want 1:1",
			st.OutputPackets, st.AggregatedPackets, n)
	}
}

func TestAggregationFasterThanDefault(t *testing.T) {
	// The paper's Figure 3 in miniature: a burst of small sends completes
	// sooner with the aggregation strategy than without.
	elapsed := func(strategy string) sim.Time {
		opts := DefaultOptions()
		opts.Strategy = strategy
		w, e0, e1 := testWorld(t, opts)
		var done sim.Time
		w.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				e0.Gate(1).Isend(p, Tag(i), make([]byte, 256))
			}
		})
		w.Spawn("recv", func(p *sim.Proc) {
			reqs := make([]*RecvRequest, 16)
			for i := range reqs {
				reqs[i] = e1.Gate(0).Irecv(p, Tag(i), make([]byte, 256))
			}
			for _, r := range reqs {
				if err := r.Wait(p); err != nil {
					t.Error(err)
				}
			}
			done = p.Now()
		})
		run(t, w)
		return done
	}
	agg, def := elapsed("aggreg"), elapsed("default")
	if agg >= def {
		t.Errorf("aggreg finished at %v, default at %v: the window must win", agg, def)
	}
}

func TestCtrlPiggybacksOnData(t *testing.T) {
	// A large send queued together with small sends: the RTS should share
	// a physical packet with small data (§5.3's key trick).
	w, e0, e1 := testWorld(t, DefaultOptions())
	big := make([]byte, 512<<10)
	w.Spawn("send", func(p *sim.Proc) {
		// The first wrapper departs immediately (just-in-time scheduling);
		// it occupies the NIC so the rest of the burst accumulates.
		e0.Gate(1).Isend(p, 99, make([]byte, 64))
		e0.Gate(1).Isend(p, 1, big)
		for i := 0; i < 4; i++ {
			e0.Gate(1).Isend(p, Tag(10+i), make([]byte, 64))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		var reqs []*RecvRequest
		reqs = append(reqs, e1.Gate(0).Irecv(p, 99, make([]byte, 64)))
		reqs = append(reqs, e1.Gate(0).Irecv(p, 1, make([]byte, len(big))))
		for i := 0; i < 4; i++ {
			reqs = append(reqs, e1.Gate(0).Irecv(p, Tag(10+i), make([]byte, 64)))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	if e0.Stats().CtrlPiggybacked == 0 {
		t.Error("the rendezvous request never shared a packet with data")
	}
}

func TestMultiRailSplitUsesBothRails(t *testing.T) {
	opts := DefaultOptions()
	opts.Strategy = "split"
	w, e0, e1 := testWorld(t, opts, simnet.MX10G(), simnet.QsNetII())
	big := make([]byte, 4<<20)
	sim.NewRNG(11).Bytes(big)
	buf := make([]byte, len(big))
	w.Spawn("recv", func(p *sim.Proc) {
		if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 1, big); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if !bytes.Equal(buf, big) {
		t.Fatal("split body corrupted")
	}
	st := e0.Stats()
	if st.PerDriverBytes[0] == 0 || st.PerDriverBytes[1] == 0 {
		t.Errorf("per-rail bytes %v: both rails must carry body bytes", st.PerDriverBytes)
	}
	ratio := float64(st.PerDriverBytes[0]) / float64(st.PerDriverBytes[0]+st.PerDriverBytes[1])
	if ratio < 0.45 || ratio > 0.75 {
		t.Errorf("MX share %.2f, want roughly its bandwidth fraction (~0.58)", ratio)
	}
}

func TestMultiRailFasterThanSingle(t *testing.T) {
	transfer := func(twoRails bool) sim.Time {
		opts := DefaultOptions()
		opts.Strategy = "split"
		profs := []simnet.Profile{simnet.MX10G()}
		if twoRails {
			profs = append(profs, simnet.QsNetII())
		}
		w, e0, e1 := testWorld(t, opts, profs...)
		big := make([]byte, 8<<20)
		var done sim.Time
		w.Spawn("recv", func(p *sim.Proc) {
			if _, err := e1.Gate(0).Recv(p, 1, make([]byte, len(big))); err != nil {
				t.Error(err)
			}
			done = p.Now()
		})
		w.Spawn("send", func(p *sim.Proc) {
			if err := e0.Gate(1).Send(p, 1, big); err != nil {
				t.Error(err)
			}
		})
		run(t, w)
		return done
	}
	two, one := transfer(true), transfer(false)
	if two >= one {
		t.Errorf("two rails %v, one rail %v: splitting must win on an 8MB body", two, one)
	}
	speedup := float64(one) / float64(two)
	if speedup < 1.3 {
		t.Errorf("speedup %.2fx, want >= 1.3x from adding a 900MB/s rail to a 1250MB/s one", speedup)
	}
}

func TestPackUnpackMessage(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	pieces := [][]byte{[]byte("alpha"), []byte("beta"), make([]byte, 5000), []byte("delta")}
	sim.NewRNG(3).Bytes(pieces[2])
	w.Spawn("send", func(p *sim.Proc) {
		m := e0.Gate(1).BeginPack(p, 21)
		for _, piece := range pieces {
			m.Pack(p, piece)
		}
		if err := m.End(p); err != nil {
			t.Error(err)
		}
	})
	got := make([][]byte, len(pieces))
	w.Spawn("recv", func(p *sim.Proc) {
		m := e1.Gate(0).BeginUnpack(p, 21)
		for i, piece := range pieces {
			got[i] = make([]byte, len(piece))
			m.Unpack(p, got[i])
		}
		if err := m.End(p); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	for i := range pieces {
		if !bytes.Equal(got[i], pieces[i]) {
			t.Errorf("piece %d corrupted", i)
		}
	}
}

func TestPackEndCompletesOnlyWhenSent(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("recv", func(p *sim.Proc) {
		m := e1.Gate(0).BeginUnpack(p, 5)
		m.Unpack(p, make([]byte, 10))
		if err := m.End(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("send", func(p *sim.Proc) {
		m := e0.Gate(1).BeginPack(p, 5)
		m.Pack(p, []byte("0123456789"))
		if m.Request().Test() {
			t.Error("request complete before End")
		}
		if err := m.End(p); err != nil {
			t.Error(err)
		}
		if !m.Request().Test() {
			t.Error("request incomplete after End")
		}
	})
	run(t, w)
}

func TestPriorityStrategyDeliversUrgentFirst(t *testing.T) {
	// Queue bulk data then a priority piece while the NIC is busy; with
	// the prio strategy the priority piece must arrive before the queued
	// bulk.
	opts := DefaultOptions()
	opts.Strategy = "prio"
	w, e0, e1 := testWorld(t, opts)
	g := e0.Gate(1)
	var order []string
	w.Spawn("send", func(p *sim.Proc) {
		// Bulk: several medium pieces that keep the NIC busy.
		for i := 0; i < 8; i++ {
			g.Isend(p, Tag(100+i), make([]byte, 8<<10))
		}
		// Urgent piece submitted last.
		g.Isend(p, 999, []byte("rpc-service-id"), Priority())
	})
	w.Spawn("recv", func(p *sim.Proc) {
		var reqs []*RecvRequest
		urgent := e1.Gate(0).Irecv(p, 999, make([]byte, 32))
		for i := 0; i < 8; i++ {
			reqs = append(reqs, e1.Gate(0).Irecv(p, Tag(100+i), make([]byte, 8<<10)))
		}
		for {
			all := urgent.Test()
			for _, r := range reqs {
				all = all && r.Test()
			}
			if all {
				break
			}
			if urgent.Test() && len(order) == 0 {
				order = append(order, "urgent")
			}
			done := 0
			for _, r := range reqs {
				if r.Test() {
					done++
				}
			}
			if done == len(reqs) && len(order) == 0 {
				order = append(order, "bulk")
			}
			p.Sleep(sim.Microsecond)
		}
	})
	run(t, w)
	if len(order) == 0 || order[0] != "urgent" {
		t.Errorf("delivery order %v, want the priority piece first", order)
	}
}

func TestStatsSubmittedAndWindow(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			e0.Gate(1).Isend(p, 1, []byte{1})
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 1)); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	if got := e0.Stats().Submitted; got != 5 {
		t.Errorf("Submitted = %d, want 5", got)
	}
	if !e0.WindowEmpty() || !e1.WindowEmpty() {
		t.Error("windows must drain at quiescence")
	}
}

func TestEngineRequiresKnownStrategy(t *testing.T) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := New(f, 0, Options{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy must fail engine construction")
	}
}

func TestIsendWithoutDriversFails(t *testing.T) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	e, err := New(f, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	req := e.Gate(1).Isend(nil, 1, []byte("x"))
	if !req.Done() || req.Err() == nil {
		t.Error("send on a driverless engine should fail immediately")
	}
}

func TestStrategyRegistry(t *testing.T) {
	names := sched.Names()
	want := []string{"adaptive", "aggreg", "default", "prio", "split"}
	if len(names) != len(want) {
		t.Fatalf("registry %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry %v, want %v", names, want)
		}
	}
	for _, n := range names {
		s, err := sched.New(n)
		if err != nil || s.Name() != n {
			t.Errorf("sched.New(%q) = %v, %v", n, s, err)
		}
	}
	if _, err := sched.New("bogus"); err == nil {
		t.Error("unknown strategy should error")
	}
}

func TestGateAccessors(t *testing.T) {
	_, e0, _ := testWorld(t, DefaultOptions())
	g := e0.Gate(1)
	if g.Peer() != 1 || g.Engine() != e0 {
		t.Error("gate accessors broken")
	}
	if e0.Gate(1) != g {
		t.Error("Gate must be idempotent per peer")
	}
	if e0.StrategyName() != "aggreg" {
		t.Errorf("StrategyName = %q", e0.StrategyName())
	}
	if e0.NodeID() != 0 {
		t.Errorf("NodeID = %d", e0.NodeID())
	}
	if len(e0.Drivers()) != 1 {
		t.Errorf("Drivers() = %d rails, want 1", len(e0.Drivers()))
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	const n = 10
	mk := func(e *Engine, peer simnet.NodeID, name string) {
		w.Spawn(name, func(p *sim.Proc) {
			g := e.Gate(peer)
			for i := 0; i < n; i++ {
				sreq := g.Isend(p, 1, []byte{byte(i)})
				buf := make([]byte, 1)
				rreq := g.Irecv(p, 1, buf)
				if err := sreq.Wait(p); err != nil {
					t.Error(err)
				}
				if err := rreq.Wait(p); err != nil {
					t.Error(err)
				}
				if buf[0] != byte(i) {
					t.Errorf("%s iteration %d got %d", name, i, buf[0])
				}
			}
		})
	}
	mk(e0, 1, "node0")
	mk(e1, 0, "node1")
	run(t, w)
}

func TestZeroByteMessage(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 1, nil); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		n, err := e1.Gate(0).Recv(p, 1, make([]byte, 8))
		if err != nil {
			t.Error(err)
		}
		if n != 0 {
			t.Errorf("zero-byte message delivered %d bytes", n)
		}
	})
	run(t, w)
}

func TestCloseShutsDrivers(t *testing.T) {
	_, e0, _ := testWorld(t, DefaultOptions())
	if err := e0.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e0.Close(); err == nil {
		t.Error("double Close should report the driver error")
	}
}
