package core

import "nmad/internal/sim"

// The Madeleine-style incremental interface (paper §3.4): "a
// NewMadeleine message is made of several pieces of data, located
// anywhere in user-space. The message is initiated and finalized with a
// synchronization barrier call." Every packed piece is an independent
// wrapper sharing the message's flow tag, so the optimizer is free to
// aggregate, reorder or split them.

// Message is an outgoing message under construction.
type Message struct {
	g     *Gate
	tag   Tag
	cfg   sendConfig
	req   *SendRequest
	ended bool
}

// BeginPack starts a message on the given flow. Options apply to every
// packed piece.
func (g *Gate) BeginPack(p *sim.Proc, tag Tag, opts ...SendOption) *Message {
	req := &SendRequest{request: request{eng: g.eng}, tag: tag}
	req.add(1) // construction hold, released by End
	return &Message{g: g, tag: tag, cfg: resolveSend(opts), req: req}
}

// Pack appends one piece of data to the message. The piece may start
// traveling immediately; the engine decides.
func (m *Message) Pack(p *sim.Proc, data []byte) {
	m.pack(p, data, m.cfg.flags)
}

// PackPriority appends a piece flagged for earliest delivery (the RPC
// service-id pattern of the paper's §2).
func (m *Message) PackPriority(p *sim.Proc, data []byte) {
	m.pack(p, data, m.cfg.flags|FlagPriority)
}

func (m *Message) pack(p *sim.Proc, data []byte, flags Flags) {
	if m.ended {
		panic("core: Pack after End")
	}
	// Pack has no ack machinery (End's barrier already synchronizes), so
	// the flag must not reach the wire: the receiver would ack aux 0 and
	// the sender would count a protocol error for every piece.
	flags &^= FlagNeedAck
	// Pack pieces record as independent sends: each submits an identical
	// wrapper.
	m.g.eng.recordSend(m.g, m.tag, singleIov(data), sendConfig{flags: flags, driver: m.cfg.driver})
	m.g.eng.chargeSubmit(p)
	m.req.add(1)
	m.req.bytes += len(data)
	pw := m.g.eng.newPacket()
	pw.gate = m.g
	pw.kind = kindData
	pw.flags = flags
	pw.tag = m.tag
	pw.seq = m.g.seqFor(m.tag, flags)
	pw.iov = append(pw.iov, data)
	pw.size = uint32(len(data))
	pw.driver = m.cfg.driver
	pw.req = m.req
	m.g.eng.submit(pw)
}

// End finalizes the message and blocks until every piece has left the
// node (the synchronization barrier of the Madeleine interface).
func (m *Message) End(p *sim.Proc) error {
	if m.ended {
		panic("core: double End")
	}
	m.ended = true
	m.req.doneOne() // release the construction hold
	return m.req.Wait(p)
}

// Request exposes the underlying send request (for Test-style polling
// between Pack calls).
func (m *Message) Request() *SendRequest { return m.req }

// InMessage is an incoming message being unpacked.
type InMessage struct {
	g     *Gate
	tag   Tag
	reqs  []*RecvRequest
	ended bool
}

// BeginUnpack starts receiving a message on the given flow.
func (g *Gate) BeginUnpack(p *sim.Proc, tag Tag) *InMessage {
	return &InMessage{g: g, tag: tag}
}

// Unpack posts the receive for the next piece of the message into buf.
// Pieces arrive in Pack order (per-flow sequence ordering), whatever the
// optimizer did to them in transit.
func (m *InMessage) Unpack(p *sim.Proc, buf []byte) *RecvRequest {
	if m.ended {
		panic("core: Unpack after End")
	}
	r := m.g.Irecv(p, m.tag, buf)
	m.reqs = append(m.reqs, r)
	return r
}

// End blocks until every unpacked piece has landed and returns the first
// error, if any.
func (m *InMessage) End(p *sim.Proc) error {
	if m.ended {
		panic("core: double End")
	}
	m.ended = true
	var first error
	for _, r := range m.reqs {
		if err := r.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}
