package core

// Free-list recycling for the engine hot path. Every eager send allocates
// a packet wrapper, every elected train an output, every out-of-order or
// unexpected arrival an inEntry — at replay scale these dominate the
// engine's allocation profile. The engine recycles them through plain
// per-engine free lists rather than sync.Pool: the deterministic packages
// must not couple behaviour (or even allocation addresses feeding map
// iteration) to GC timing, and a World is single-threaded by construction
// so an unsynchronized slice is all the machinery needed.
//
// Ownership rules, enforced by the call sites:
//
//   - A wrapper is freed exactly once, by whoever learns the NIC (or the
//     conversion that replaced it) is done with it: the send-completion
//     callback for elected entries, convertToRTS for the data wrapper a
//     rendezvous request replaces.
//   - A freed wrapper's iov backing array is kept for reuse, so whoever
//     transfers the payload out (convertToRTS handing the body to the
//     rendezvous state) must nil the field first.
//   - Strategies never see wrappers after election (the spileak analyzer
//     forbids retaining SPI views), so recycling cannot dangle into sched.
//
// Options.NoRecycle turns the free lists off for A/B testing; the
// timeline must be byte-identical either way (see the pooling property
// test in package replay).

// newPacket returns a zeroed wrapper, recycled when the free list has
// one. The iov field may carry a non-nil empty slice whose backing array
// is reused by the append at the fill site.
func (e *Engine) newPacket() *packet {
	if n := len(e.freePkts) - 1; n >= 0 {
		pw := e.freePkts[n]
		e.freePkts[n] = nil
		e.freePkts = e.freePkts[:n]
		return pw
	}
	return &packet{}
}

// freePacket recycles a wrapper the engine is completely done with. The
// payload segment headers are dropped (they point into user buffers) but
// the iov backing array is kept, so steady-state sends stop allocating
// the per-wrapper iovec.
func (e *Engine) freePacket(pw *packet) {
	if e.opts.NoRecycle {
		return
	}
	iov := pw.iov
	for i := range iov {
		iov[i] = nil
	}
	*pw = packet{iov: iov[:0]}
	e.freePkts = append(e.freePkts, pw)
}

// newOutput returns an empty output train, reusing a recycled one's
// entries backing array.
func (e *Engine) newOutput() *output {
	if n := len(e.freeOuts) - 1; n >= 0 {
		out := e.freeOuts[n]
		e.freeOuts[n] = nil
		e.freeOuts = e.freeOuts[:n]
		return out
	}
	return &output{}
}

// freeOutput recycles an output whose entries have all been freed (or
// were never filled).
func (e *Engine) freeOutput(out *output) {
	if e.opts.NoRecycle {
		return
	}
	for i := range out.entries {
		out.entries[i] = nil
	}
	out.entries = out.entries[:0]
	out.segs, out.wire = 0, 0
	e.freeOuts = append(e.freeOuts, out)
}

// newInEntry returns a filled receive-side entry (resequencing hold or
// unexpected arrival), recycled when possible.
func (e *Engine) newInEntry(h header, payload []byte) *inEntry {
	var ent *inEntry
	if n := len(e.freeEnts) - 1; n >= 0 {
		ent = e.freeEnts[n]
		e.freeEnts[n] = nil
		e.freeEnts = e.freeEnts[:n]
	} else {
		ent = &inEntry{}
	}
	ent.h = h
	ent.payload = payload
	ent.at = e.world.Now()
	return ent
}

// freeInEntry recycles an entry whose payload has been consumed (the
// copy into the user buffer happens synchronously in consume, so the
// entry is dead the moment the match returns).
func (e *Engine) freeInEntry(ent *inEntry) {
	if e.opts.NoRecycle {
		return
	}
	*ent = inEntry{}
	e.freeEnts = append(e.freeEnts, ent)
}

// encodeOutput turns an output train into the NIC gather list: one
// segment per entry header, one per payload segment, preceded by link
// when the reliability layer frames the train. Headers pack into the
// engine's scratch byte array and the list itself reuses the engine's
// scratch segment slice — both are dead the moment the driver's Send
// returns, because the NIC snapshots the bytes at Submit time and the
// software-gather bounce path flattens before queueing.
//
// The header array is pre-sized from the output's running wire totals
// (maintained by output.add at election time), so the appends below
// never reallocate — segment pointers into hdrs stay valid.
func (e *Engine) encodeOutput(out *output, link []byte) [][]byte {
	need := headerSize * len(out.entries)
	hdrs := e.encHdrs[:0]
	if cap(hdrs) < need {
		hdrs = make([]byte, 0, need)
	}
	segs := e.encSegs[:0]
	if cap(segs) < out.segCount()+1 {
		segs = make([][]byte, 0, out.segCount()+1)
	}
	if link != nil {
		segs = append(segs, link)
	}
	for _, pw := range out.entries {
		start := len(hdrs)
		hdrs = encodeHeader(hdrs, pw.header())
		segs = append(segs, hdrs[start:start+headerSize])
		if pw.kind.hasPayload() {
			segs = pw.iov.appendSegs(segs)
		}
	}
	e.encHdrs = hdrs
	e.encSegs = segs
	return segs
}
