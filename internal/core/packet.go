package core

import "nmad/internal/sim"

// AnyDriver targets the common submission list: the engine balances the
// wrapper onto whichever rail idles first (paper §3.3: "the collected
// pieces of data are inserted ... on the common list for automatized
// load-balancing among all the NICs").
const AnyDriver = -1

// packet is a packet wrapper ("pw" in NewMadeleine): one piece of
// application data plus the metadata the receiving side needs. Packet
// wrappers live in the optimization window until a strategy elects them
// into a physical output packet. The payload is an iovec: a plain Isend
// carries one segment, a vector send (Isendv) several — either way it is
// one wire entry under one header.
type packet struct {
	gate  *Gate
	kind  entryKind
	flags Flags
	tag   Tag
	seq   SeqNum
	iov   iovec  // payload segments for data entries; nil for control entries
	aux   uint32 // rendezvous id for rts/cts
	size  uint32 // body size for rts; payload length otherwise

	// driver pins the wrapper to one rail, or AnyDriver for the common
	// list.
	driver int

	// gen is the election-validation stamp: electOutput marks every
	// wrapper of the current view with the engine's election generation,
	// and clears it on pick. Stale or duplicated picks mismatch without
	// needing a membership set.
	gen uint64
	// creditStamp marks the wrapper as inside the credit-eligibility
	// window of the current scan (see Gate.scanEligible), the same
	// generation trick as gen.
	creditStamp uint64
	// taken flags the wrapper for removal during window.take — a mark on
	// the wrapper itself instead of a per-call membership map, since take
	// runs once per elected output on the pump hot path.
	taken bool

	submittedAt sim.Time
	// onSent fires when the NIC finishes the physical packet carrying
	// this wrapper.
	onSent func()
	// req is the send request this wrapper belongs to, if any.
	req *SendRequest
}

// payloadLen is the wrapper's logical payload size (0 for control
// entries).
func (pw *packet) payloadLen() int { return pw.iov.total() }

// wireSize is the wrapper's footprint inside an output packet.
func (pw *packet) wireSize() int {
	if pw.kind.hasPayload() {
		return headerSize + pw.payloadLen()
	}
	return headerSize
}

// segCount is the number of NIC gather segments the wrapper occupies.
func (pw *packet) segCount() int {
	if pw.kind.hasPayload() {
		return 1 + pw.iov.segCount() // header + payload segments
	}
	return 1
}

// ctrl reports whether the wrapper is protocol control (rendezvous
// handshake, acks, credit replenishment) rather than application data.
func (pw *packet) ctrl() bool {
	return pw.kind == kindRTS || pw.kind == kindCTS || pw.kind == kindAck || pw.kind == kindCredit
}

// prio reports whether the optimizer should favor early delivery.
func (pw *packet) prio() bool { return pw.flags&FlagPriority != 0 || pw.ctrl() }

// header builds the wire header for the wrapper.
func (pw *packet) header() header {
	return header{
		kind:   pw.kind,
		flags:  pw.flags,
		tag:    pw.tag,
		seq:    pw.seq,
		length: pw.size,
		aux:    pw.aux,
	}
}

// window is the optimization window of one gate: the submission lists of
// the collect layer. perDriver[i] holds wrappers pinned to rail i; common
// holds wrappers any rail may take.
type window struct {
	common    []*packet
	perDriver [][]*packet
}

func newWindow(nDrivers int) *window {
	return &window{perDriver: make([][]*packet, nDrivers)}
}

// push inserts a wrapper at the tail of its submission list.
func (w *window) push(pw *packet) {
	if pw.driver == AnyDriver {
		w.common = append(w.common, pw)
		return
	}
	w.perDriver[pw.driver] = append(w.perDriver[pw.driver], pw)
}

// empty reports whether no wrapper is waiting anywhere.
func (w *window) empty() bool {
	if len(w.common) > 0 {
		return false
	}
	for _, l := range w.perDriver {
		if len(l) > 0 {
			return false
		}
	}
	return true
}

// pending counts wrappers a given driver could send: its own list plus
// the common list.
func (w *window) pending(driver int) int {
	return len(w.perDriver[driver]) + len(w.common)
}

// scan visits, in submission order, every wrapper the given driver could
// send (its pinned list first, then the common list). The visit function
// returns false to stop early. Wrappers must not be removed during a scan;
// strategies collect candidates and then call take.
func (w *window) scan(driver int, visit func(pw *packet) bool) {
	for _, pw := range w.perDriver[driver] {
		if !visit(pw) {
			return
		}
	}
	for _, pw := range w.common {
		if !visit(pw) {
			return
		}
	}
}

// take removes the given wrappers from their submission lists. Wrappers
// not present are ignored (they may have been replaced in place).
func (w *window) take(pws []*packet) {
	for _, pw := range pws {
		pw.taken = true
	}
	w.common = filterOut(w.common)
	for i := range w.perDriver {
		w.perDriver[i] = filterOut(w.perDriver[i])
	}
	// Clear the marks: a wrapper that was replaced in place (and so never
	// filtered) must not vanish from a later take's sweep by accident.
	for _, pw := range pws {
		pw.taken = false
	}
}

// replace swaps old for nw in place, keeping window position (used when a
// data wrapper is converted to a rendezvous request).
func (w *window) replace(old, nw *packet) bool {
	lists := make([][]*packet, 0, 1+len(w.perDriver))
	lists = append(lists, w.common)
	lists = append(lists, w.perDriver...)
	for _, l := range lists {
		for i, pw := range l {
			if pw == old {
				l[i] = nw
				return true
			}
		}
	}
	return false
}

// filterOut compacts list, dropping wrappers whose taken mark is set.
func filterOut(list []*packet) []*packet {
	out := list[:0]
	for _, pw := range list {
		if !pw.taken {
			out = append(out, pw)
		}
	}
	// Zero the tail so removed wrappers can be collected.
	for i := len(out); i < len(list); i++ {
		list[i] = nil
	}
	return out
}

// output is one physical packet synthesized by a strategy: an ordered
// train of wrappers bound for the same gate over one rail. The segment
// and wire totals are maintained incrementally by add, so the accounting
// and encode paths never recount the train.
type output struct {
	entries []*packet
	segs    int // running gather-segment total
	wire    int // running wire-byte total
}

// add appends one wrapper to the train, keeping the running totals
// current (encodeOutput pre-sizes its scratch from them, and account
// books wireSize twice per train).
func (o *output) add(pw *packet) {
	o.entries = append(o.entries, pw)
	o.segs += pw.segCount()
	o.wire += pw.wireSize()
}

// segCount is the total gather segments the output needs.
func (o *output) segCount() int { return o.segs }

// wireSize is the total payload handed to the NIC.
func (o *output) wireSize() int { return o.wire }
