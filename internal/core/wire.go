package core

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Tag identifies a logical flow between two nodes. Layers above multiplex
// their own spaces into it (MAD-MPI packs the communicator id into the
// high bits), and the engine optimizes across flows regardless.
type Tag uint64

// SeqNum orders the packets of one (gate, tag) flow. Senders assign
// sequence numbers at submission time; receivers restore submission order
// even when the optimizer sent packets out of order or over different
// rails.
type SeqNum uint32

// Flags modify how a packet wrapper may be scheduled and delivered.
type Flags uint16

const (
	// FlagPriority asks the optimizer to favor earlier delivery of this
	// wrapper (the paper's example: an RPC service id needed to prepare
	// the data areas for the arguments).
	FlagPriority Flags = 1 << iota
	// FlagUnordered lets the receiver deliver this wrapper as soon as it
	// arrives, outside the per-flow sequence order.
	FlagUnordered
	// FlagNeedAck makes the send complete only once the receiver has
	// matched the wrapper to a posted receive (synchronous-send
	// semantics; the receiver answers with an ack control entry, which
	// aggregates with its outbound traffic like any other wrapper).
	FlagNeedAck
)

// entryKind discriminates the entries of the engine wire format.
type entryKind uint8

const (
	kindData   entryKind = 1 + iota // eager payload
	kindRTS                         // rendezvous request (header only)
	kindCTS                         // rendezvous grant (header only)
	kindChunk                       // rendezvous body fragment on a non-RDMA rail
	kindAck                         // synchronous-send acknowledgement (header only)
	kindCredit                      // receive-flow-control replenishment (header only)
	kindLink                        // link-layer reliability header (header only, see reliab.go)
	kindDone                        // rendezvous body fully landed (header only)
)

func (k entryKind) String() string {
	switch k {
	case kindData:
		return "data"
	case kindRTS:
		return "rts"
	case kindCTS:
		return "cts"
	case kindChunk:
		return "chunk"
	case kindAck:
		return "ack"
	case kindCredit:
		return "credit"
	case kindLink:
		return "link"
	case kindDone:
		return "rdv-done"
	default:
		return fmt.Sprintf("entryKind(%d)", uint8(k))
	}
}

// The engine wire format: an output packet is a train of entries, each a
// fixed header followed by an optional payload. Entries from different
// logical flows share the train — the cross-communicator aggregation that
// MADELEINE 3 could not do because its packets were header-less (paper
// §6); the header is the small price §5.1 measures.
//
//	offset  field
//	0       magic (0xAD)
//	1       kind
//	2:4     flags
//	4:12    tag
//	12:16   seq
//	16:20   length (payload bytes for data/chunk; body size for rts)
//	20:24   aux (rendezvous id; chunk offset high bits live in seq)
const (
	headerSize  = 24
	headerMagic = 0xAD
)

// header is the decoded form of one entry header.
type header struct {
	kind   entryKind
	flags  Flags
	tag    Tag
	seq    SeqNum
	length uint32
	aux    uint32
}

// ErrBadWire reports a malformed entry train.
var ErrBadWire = errors.New("core: malformed wire data")

// encodeHeader appends the 24-byte encoding of h to dst.
func encodeHeader(dst []byte, h header) []byte {
	var b [headerSize]byte
	b[0] = headerMagic
	b[1] = byte(h.kind)
	binary.LittleEndian.PutUint16(b[2:4], uint16(h.flags))
	binary.LittleEndian.PutUint64(b[4:12], uint64(h.tag))
	binary.LittleEndian.PutUint32(b[12:16], uint32(h.seq))
	binary.LittleEndian.PutUint32(b[16:20], h.length)
	binary.LittleEndian.PutUint32(b[20:24], h.aux)
	return append(dst, b[:]...)
}

// decodeHeader reads one header from the front of data.
func decodeHeader(data []byte) (header, error) {
	if len(data) < headerSize {
		return header{}, fmt.Errorf("%w: %d bytes, need a %d-byte header", ErrBadWire, len(data), headerSize)
	}
	if data[0] != headerMagic {
		return header{}, fmt.Errorf("%w: bad magic %#x", ErrBadWire, data[0])
	}
	h := header{
		kind:   entryKind(data[1]),
		flags:  Flags(binary.LittleEndian.Uint16(data[2:4])),
		tag:    Tag(binary.LittleEndian.Uint64(data[4:12])),
		seq:    SeqNum(binary.LittleEndian.Uint32(data[12:16])),
		length: binary.LittleEndian.Uint32(data[16:20]),
		aux:    binary.LittleEndian.Uint32(data[20:24]),
	}
	switch h.kind {
	case kindData, kindRTS, kindCTS, kindChunk, kindAck, kindCredit, kindLink, kindDone:
		return h, nil
	default:
		return header{}, fmt.Errorf("%w: unknown entry kind %d", ErrBadWire, data[1])
	}
}

// hasPayload reports whether entries of kind k carry their length in
// trailing payload bytes (vs header-only control entries).
func (k entryKind) hasPayload() bool { return k == kindData || k == kindChunk }

// walkEntries decodes an entry train, invoking fn for each (header,
// payload) pair. It stops on the first malformed entry.
func walkEntries(data []byte, fn func(h header, payload []byte) error) error {
	for len(data) > 0 {
		h, err := decodeHeader(data)
		if err != nil {
			return err
		}
		data = data[headerSize:]
		var payload []byte
		if h.kind.hasPayload() {
			if int(h.length) > len(data) {
				return fmt.Errorf("%w: entry declares %d payload bytes, %d remain", ErrBadWire, h.length, len(data))
			}
			payload = data[:h.length]
			data = data[h.length:]
		}
		if err := fn(h, payload); err != nil {
			return err
		}
	}
	return nil
}
