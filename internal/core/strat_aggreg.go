package core

import "nmad/internal/drivers"

// aggregStrategy is the paper's aggregation strategy (§4): it
// "accumulates communication requests as long as the cumulated length
// does not require to switch to the rendez-vous protocol". On top of the
// plain accumulation it applies the two reorderings the paper describes:
//
//   - control and priority wrappers move to the front of the train, so a
//     rendezvous request (or an RPC service id) never waits behind bulk
//     data;
//   - small wrappers may be pulled past ones that do not fit, maximizing
//     the number of aggregation operations (§7: "reordered to maximize
//     the number of aggregation operations"). The receiver's resequencing
//     buffer restores per-flow order.
//
// This is also the §5.3 datatype optimization: the small blocks of an
// indexed datatype coalesce with the rendezvous requests of the large
// blocks into a single physical packet.
type aggregStrategy struct{}

func (aggregStrategy) Name() string { return "aggreg" }

func (aggregStrategy) Elect(g *Gate, driver int, caps drivers.Caps) *output {
	limit := caps.RdvThreshold
	maxSegs := caps.MaxSegments

	var ctrl, data []*packet
	bytes, segs := 0, 0
	fits := func(pw *packet) bool {
		return segs+pw.segCount() <= maxSegs && bytes+pw.wireSize() <= limit
	}
	pick := func(pw *packet, into *[]*packet) {
		*into = append(*into, pw)
		segs += pw.segCount()
		bytes += pw.wireSize()
	}

	// Pass 1: control and priority wrappers, in order.
	g.win.scan(driver, func(pw *packet) bool {
		if pw.prio() && fits(pw) {
			pick(pw, &ctrl)
		}
		return segs < maxSegs
	})

	// Pass 2: data wrappers in order, scanning past misfits (reordering).
	g.win.scan(driver, func(pw *packet) bool {
		if pw.prio() {
			return true // already considered
		}
		if fits(pw) {
			pick(pw, &data)
		}
		return segs < maxSegs
	})

	entries := append(ctrl, data...)
	if len(entries) == 0 {
		// Guarantee progress: a lone wrapper larger than the aggregation
		// limit (a rendezvous body chunk on a non-RDMA rail) still goes
		// out, alone — but never one whose gather list this rail cannot
		// accept; a wider rail will take it.
		g.win.scan(driver, func(pw *packet) bool {
			if pw.segCount() > maxSegs {
				return true
			}
			entries = append(entries, pw)
			return false
		})
		if len(entries) == 0 {
			return nil
		}
	}
	return &output{entries: entries}
}
