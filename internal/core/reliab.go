package core

import (
	"fmt"
	"sort"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// The link-layer reliability machinery (Options.Reliability). The engine
// normally trusts the fabric; on a lossy one (simnet.FaultProfile) every
// eager train is framed by one extra kindLink entry prepended to the
// train: a per-gate frame sequence number plus a piggybacked cumulative
// ack floor. The receiver deduplicates whole trains by frame sequence
// before dispatching any entry — the per-flow resequencing above is
// untouched — and acknowledges with delayed, coalesced floor updates
// that ride outbound frames for free whenever there are any. Unacked
// frames are retained (flattened) on the sender and retransmitted on
// timeout; a frame that exhausts its retransmit budget declares its rail
// failed: pinned wrappers re-home to the common list, in-flight frames
// re-issue on a surviving rail, elections skip the rail, and a periodic
// ping/pong probe rides the dead rail until it answers again.
//
// Pure link control (acks, probes) is itself unreliable and travels
// directly through the driver, below the optimization window: acking an
// ack would regress, and a lost pure ack is repaired by the next frame
// or by the sender's retransmit provoking a fresh one.
//
// RDMA rendezvous bodies do not travel as trains, so the link layer
// cannot cover them; rdv.go repairs those with a receiver-side progress
// watchdog that re-issues the CTS (see armBodyWatch).

// Link entry subkinds, carried in the aux field of a kindLink header.
const (
	linkFrameTag = 1 + iota // train is reliable; seq = frame, length = ack floor
	linkAckTag              // pure ack; length = ack floor
	linkPingTag             // rail liveness probe
	linkPongTag             // probe answer
)

// Default reliability timings (Options.RetransmitTimeout = 0).
const (
	defaultRetransmitTimeout = 200 * sim.Microsecond
	defaultRetransmitBudget  = 8
	// linkAckDelay is how long the receiver waits before sending a pure
	// ack, hoping an outbound frame piggybacks the floor instead.
	linkAckDelay = 2 * sim.Microsecond
)

// linkFrame is one unacknowledged reliable train, flattened so it can be
// re-injected verbatim after the original segments' buffers were reused.
type linkFrame struct {
	seq      uint32
	data     []byte // link header + encoded train
	rail     int    // rail of the last (re)transmission
	attempts int    // transmissions so far
}

// linkTx is the sender half of a gate's link state.
type linkTx struct {
	nextSeq uint32
	acked   uint32 // highest cumulative ack floor seen
	unacked map[uint32]*linkFrame
}

// linkRx is the receiver half: the cumulative floor (all frames below it
// arrived) plus the out-of-order set above it.
type linkRx struct {
	floor      uint32
	seen       map[uint32]bool
	ackPending bool
	ackGen     uint64 // invalidates stale delayed-ack events
}

// bodyTimeout is the rendezvous body progress window: generous relative
// to the frame timeout because a body spans many transactions.
func (e *Engine) bodyTimeout() sim.Time { return 2 * e.opts.RetransmitTimeout }

// probeInterval paces the ping/pong liveness probe of a failed rail.
func (e *Engine) probeInterval() sim.Time { return 4 * e.opts.RetransmitTimeout }

// linkHeader encodes one pure link entry.
func linkHeader(sub uint32, seq uint32, floor uint32) []byte {
	return encodeHeader(make([]byte, 0, headerSize), header{
		kind:   kindLink,
		seq:    SeqNum(seq),
		length: floor,
		aux:    sub,
	})
}

// linkSend frames one output as a reliable link frame and hands it to
// the driver: the engine.send path when Options.Reliability is on.
func (e *Engine) linkSend(g *Gate, drv int, out *output, payload, wire int) {
	if g.ltx.unacked == nil {
		g.ltx.unacked = make(map[uint32]*linkFrame)
	}
	seq := g.ltx.nextSeq
	g.ltx.nextSeq++
	hdr := linkHeader(linkFrameTag, seq, g.lrx.floor)
	// The outbound frame carries the current floor: any pure ack still
	// pending is now redundant.
	g.lrx.ackPending = false
	g.lrx.ackGen++

	// The link header travels as the leading gather segment (electOutput
	// reserved the slot).
	segs := e.encodeOutput(out, hdr)

	// Snapshot the train for retransmission — the payload segments point
	// into user buffers the application may reuse once the NIC is done,
	// and the header scratch is reused by the next encode.
	flat := make([]byte, 0, headerSize+wire)
	for _, s := range segs {
		flat = append(flat, s...)
	}
	fr := &linkFrame{seq: seq, data: flat, rail: drv, attempts: 1}
	g.ltx.unacked[seq] = fr

	e.stats.WireBytes += headerSize
	entries := out.entries
	t0 := e.world.Now()
	err := e.drvs[drv].Send(g.peer, simnet.TxEager, segs, 0, func() {
		e.samplers[drv].observe(headerSize+wire, e.world.Now()-t0)
		e.notifyComplete(drv, g.peer, payload, len(entries), e.world.Now()-t0)
		for _, pw := range entries {
			if pw.onSent != nil {
				pw.onSent()
			}
			if pw.req != nil && pw.kind != kindRTS {
				pw.req.doneOne()
			}
		}
		// The retained frame keeps its own flattened copy of the train,
		// so the wrappers are dead even with retransmissions ahead.
		for _, pw := range entries {
			e.freePacket(pw)
		}
		e.freeOutput(out)
		e.linkArm(g, fr)
	})
	if err != nil {
		panic(fmt.Sprintf("core: strategy %s built an unsendable packet: %v", e.strat.Name(), err))
	}
}

// linkArm schedules the retransmit check for a frame's current attempt.
// It runs from the NIC's send-completion callback, not at submission:
// the ack clock must not start while the frame still waits behind a long
// wire reservation (a rendezvous body can hold the pair's wire for
// longer than the whole timeout), or an idle fabric would retransmit
// spuriously. Simulation events cannot be cancelled, so the check
// captures the attempt number and no-ops when the frame was acked or
// re-sent since.
func (e *Engine) linkArm(g *Gate, fr *linkFrame) {
	attempt := fr.attempts
	e.world.After(e.opts.RetransmitTimeout, func() { e.linkExpire(g, fr, attempt) })
}

// linkExpire fires when a frame's ack did not arrive in time.
func (e *Engine) linkExpire(g *Gate, fr *linkFrame, attempt int) {
	if g.ltx.unacked[fr.seq] != fr || fr.attempts != attempt {
		return // acked, or a newer attempt owns the timer
	}
	if fr.attempts >= e.opts.RetransmitBudget {
		if alt := e.aliveRailExcept(fr.rail); alt < 0 {
			// No surviving alternative: the last rail is never declared
			// dead. Keep retrying — on a lossy-but-alive rail this
			// converges; during an outage it rides it out.
			fr.attempts = 0
			e.linkResend(g, fr, fr.rail)
			return
		}
		e.railFail(fr.rail, g.peer)
		return // railFail re-issued every frame of the rail, this one included
	}
	drv := fr.rail
	if drv < len(e.railFailed) && e.railFailed[drv] {
		if alt := e.aliveRailExcept(drv); alt >= 0 {
			drv = alt
		}
	}
	e.linkResend(g, fr, drv)
}

// linkResend re-injects a retained frame, bypassing the window: the
// wrappers inside were already elected and accounted once.
func (e *Engine) linkResend(g *Gate, fr *linkFrame, drv int) {
	fr.attempts++
	fr.rail = drv
	e.stats.Retransmits++
	e.railRetrans[drv]++
	e.stats.WireBytes += int64(len(fr.data))
	e.traceEvent(trace.Retransmit, g.peer, drv, 0, len(fr.data), fr.attempts, fmt.Sprintf("frame %d", fr.seq))
	err := e.drvs[drv].Send(g.peer, simnet.TxEager, [][]byte{fr.data}, 0, func() { e.linkArm(g, fr) })
	if err != nil {
		panic("core: link retransmit failed: " + err.Error())
	}
}

// linkOnDelivery intercepts eager trains on a reliable engine. It
// reports true when the delivery was fully handled here (pure link
// control, or a duplicate frame); a frame train's entries are dispatched
// before returning. Trains without a leading link entry fall through to
// the normal path untouched.
func (e *Engine) linkOnDelivery(drv int, d simnet.Delivery) bool {
	h, err := decodeHeader(d.Data)
	if err != nil || h.kind != kindLink {
		return false
	}
	g := e.Gate(d.Src)
	switch h.aux {
	case linkFrameTag:
		e.linkAckIn(g, h.length, false)
		e.linkAccept(g, drv, h, d.Data[headerSize:])
	case linkAckTag:
		e.linkAckIn(g, h.length, true)
	case linkPingTag:
		// Answer on the probed rail itself: a pong proves it works again.
		e.linkCtl(g, drv, linkPongTag, uint32(h.seq), g.lrx.floor)
	case linkPongTag:
		e.railRecover(drv)
	default:
		e.protoErr(g, fmt.Sprintf("unknown link subkind %d", h.aux))
	}
	return true
}

// linkAccept deduplicates one reliable frame and dispatches its train.
func (e *Engine) linkAccept(g *Gate, drv int, h header, train []byte) {
	if g.lrx.seen == nil {
		g.lrx.seen = make(map[uint32]bool)
	}
	seq := uint32(h.seq)
	if seq < g.lrx.floor || g.lrx.seen[seq] {
		// Already delivered: the ack was lost or slow. Re-ack promptly so
		// the sender stops re-sending.
		e.linkScheduleAck(g)
		return
	}
	if seq != g.lrx.floor {
		// Accepted ahead of the gap: the per-flow resequencing above
		// restores application order, so there is no head-of-line wait.
		e.stats.ReorderedAccepts++
	}
	g.lrx.seen[seq] = true
	for g.lrx.seen[g.lrx.floor] {
		delete(g.lrx.seen, g.lrx.floor)
		g.lrx.floor++
	}
	e.linkScheduleAck(g)
	err := walkEntries(train, func(h header, payload []byte) error {
		e.dispatch(g.peer, h, payload)
		return nil
	})
	if err != nil {
		e.protoErr(g, fmt.Sprintf("corrupt packet train on rail %d: %v", drv, err))
	}
}

// linkAckIn advances the sender-side ack floor, retiring retained frames.
func (e *Engine) linkAckIn(g *Gate, floor uint32, explicit bool) {
	if explicit && floor <= g.ltx.acked {
		e.stats.DupAcks++
	}
	if floor > g.ltx.acked {
		g.ltx.acked = floor
	}
	for seq := range g.ltx.unacked {
		if seq < floor {
			delete(g.ltx.unacked, seq)
		}
	}
}

// linkScheduleAck arranges a delayed pure ack, coalescing bursts: one
// floor update covers every frame that arrived within the window, and an
// outbound frame in the meantime cancels it (the floor piggybacks).
func (e *Engine) linkScheduleAck(g *Gate) {
	if g.lrx.ackPending {
		return
	}
	g.lrx.ackPending = true
	g.lrx.ackGen++
	gen := g.lrx.ackGen
	e.world.After(linkAckDelay, func() {
		if !g.lrx.ackPending || g.lrx.ackGen != gen {
			return
		}
		g.lrx.ackPending = false
		drv := e.aliveRail()
		if drv < 0 {
			drv = 0
		}
		e.linkCtl(g, drv, linkAckTag, 0, g.lrx.floor)
	})
}

// linkCtl injects one pure link control entry directly through a driver,
// below the optimization window. Pure control is unreliable by design.
func (e *Engine) linkCtl(g *Gate, drv int, sub uint32, seq uint32, floor uint32) {
	hdr := linkHeader(sub, seq, floor)
	e.stats.WireBytes += headerSize
	if err := e.drvs[drv].Send(g.peer, simnet.TxEager, [][]byte{hdr}, 0, nil); err != nil {
		panic("core: link control send failed: " + err.Error())
	}
}

// aliveRail returns the first rail not marked failed, or -1.
func (e *Engine) aliveRail() int {
	for i := range e.drvs {
		if !e.railFailed[i] {
			return i
		}
	}
	return -1
}

// aliveRailExcept returns the first live rail other than x, or -1.
func (e *Engine) aliveRailExcept(x int) int {
	for i := range e.drvs {
		if i != x && !e.railFailed[i] {
			return i
		}
	}
	return -1
}

// railFail declares a rail dead: a frame exhausted its retransmit budget
// on it and a surviving rail exists. Pinned window wrappers re-home to
// the common list, retained frames re-issue elsewhere, elections skip
// the rail, and a probe starts riding it until the peer answers.
func (e *Engine) railFail(drv int, peer simnet.NodeID) {
	if e.railFailed[drv] {
		return
	}
	e.railFailed[drv] = true
	e.stats.FailedRails++
	e.traceEvent(trace.RailEvent, peer, drv, 0, 0, 0, "failed")
	e.staged[drv] = nil
	alt := e.aliveRailExcept(drv)
	for _, g := range e.gateOrder {
		for _, pw := range g.win.perDriver[drv] {
			pw.driver = AnyDriver
			g.win.common = append(g.win.common, pw)
			e.pendingPinned[drv]--
			e.pendingCommon++
		}
		g.win.perDriver[drv] = g.win.perDriver[drv][:0]
		if alt < 0 {
			continue
		}
		// Re-issue the rail's in-flight frames on the survivor, budget
		// reset (sorted: map order must not leak into the timeline).
		var seqs []uint32
		for seq, fr := range g.ltx.unacked {
			if fr.rail == drv {
				seqs = append(seqs, seq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			fr := g.ltx.unacked[seq]
			fr.attempts = 0
			e.linkResend(g, fr, alt)
		}
	}
	e.probeRail(drv, peer)
	e.pumpAll()
}

// probeRail pings a failed rail until it answers (see railRecover) or,
// with Options.ProbeBudget set, until the budget of unanswered pings is
// spent — at which point the rail is abandoned: probing stops, the rail
// stays failed, and the run can terminate without a RunUntil horizon. A
// recovery (railRecover) resets the count, so the budget is per failure
// episode, not per rail lifetime.
func (e *Engine) probeRail(drv int, peer simnet.NodeID) {
	if e.probing[drv] {
		return
	}
	e.probing[drv] = true
	sent := 0
	var tick func()
	tick = func() {
		if !e.railFailed[drv] {
			e.probing[drv] = false
			return
		}
		if e.opts.ProbeBudget > 0 && sent >= e.opts.ProbeBudget {
			e.probing[drv] = false
			e.stats.AbandonedRails++
			e.traceEvent(trace.RailEvent, peer, drv, 0, 0, sent, "abandoned")
			return
		}
		sent++
		e.linkCtl(e.Gate(peer), drv, linkPingTag, 0, 0)
		e.world.After(e.probeInterval(), tick)
	}
	tick()
}

// railRecover puts a rail back in service when its probe is answered.
func (e *Engine) railRecover(drv int) {
	if drv >= len(e.railFailed) || !e.railFailed[drv] {
		return
	}
	e.railFailed[drv] = false
	e.stats.RecoveredRails++
	e.traceEvent(trace.RailEvent, -1, drv, 0, 0, 0, "recovered")
	e.pumpAll()
}
