package core

import (
	"errors"
	"fmt"

	"nmad/internal/drivers"
	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
	"nmad/sched"
)

// Options configures an Engine.
type Options struct {
	// Strategy selects the optimization function by registry name.
	// Default: "aggreg" (the paper's aggregation strategy).
	Strategy string
	// StrategyImpl, when non-nil, is used directly as the optimization
	// function and takes precedence over Strategy. The value is shared
	// by every engine constructed with it; stateful strategies must
	// synchronize or be registered instead (one instance per engine).
	StrategyImpl sched.Strategy
	// SubmitOverhead is the host software cost charged per request
	// entering the collect layer (wrapping + list insertion). Together
	// with ScheduleOverhead it reproduces the §5.1 constant overhead of
	// MAD-MPI versus the synchronous MPIs.
	SubmitOverhead sim.Time
	// ScheduleOverhead is the host cost charged per output packet for
	// inspecting the ready list and running the optimization function.
	ScheduleOverhead sim.Time
	// BodyChunk caps the size of one rendezvous body transaction; larger
	// bodies are pipelined in BodyChunk pieces. 0 means one transaction
	// per rail share.
	BodyChunk int
	// Anticipate enables the second scheduling mode of §3.2: while a rail
	// is busy, the engine pre-builds one ready-to-send packet so the rail
	// can be re-fed the instant it idles, hiding the election cost
	// (ScheduleOverhead) behind the previous transmission. The packet is
	// built from the backlog present at pre-election time; wrappers
	// submitted after it stay in the window for the next round.
	Anticipate bool
	// FlushBacklog enables the third scheduling mode of §3.2: once the
	// backlog a rail could send reaches this many wrappers, the engine
	// runs the optimization function unconditionally and queues the
	// output at the (possibly busy) NIC. 0 disables; the default
	// just-in-time behaviour only elects on NIC-idle events.
	FlushBacklog int
	// Credits enables credit-based receive flow control: every gate
	// starts with this many eager landing credits, each eager data
	// wrapper sent consumes one, and the receiver returns credits as it
	// consumes the wrappers (replenishment rides outbound traffic as an
	// aggregable control entry). While a peer's credits are exhausted,
	// data wrappers stay in the window and strategies do not see them —
	// the receive queues (unexpected, resequencing) stay bounded by the
	// budget instead of growing without limit under overload. Both ends
	// of a gate must run with the same setting. 0 disables.
	Credits int
	// Reliability turns on the link-layer retransmit machinery for lossy
	// fabrics (simnet.FaultProfile): sequence-checked eager delivery with
	// ack/timeout/retransmit, rendezvous body progress watchdogs, and
	// failed-rail detection with mid-flow re-election of survivors (see
	// reliab.go). Every engine of a cluster must agree on this setting —
	// the link framing changes the wire format.
	Reliability bool
	// RetransmitTimeout is how long an unacknowledged frame waits before
	// re-injection. 0 means 200µs.
	RetransmitTimeout sim.Time
	// RetransmitBudget is how many transmissions one frame may consume on
	// one rail before the rail is declared failed (when a surviving rail
	// exists; the last rail retries forever). 0 means 8.
	RetransmitBudget int
	// ProbeBudget bounds the ping/pong liveness probe of a failed rail:
	// after this many unanswered pings the engine gives the rail up for
	// good and stops probing, so a run over a permanently dead rail
	// terminates on its own instead of rescheduling probe events forever
	// (which forces callers onto RunUntil horizons). A late pong still
	// recovers an abandoned rail if one ever arrives. 0 means probe
	// forever (the historical behaviour).
	ProbeBudget int
	// MaxGrants caps the concurrent inbound rendezvous transactions a
	// node grants; further matched rendezvous requests wait with a
	// deferred CTS until an active transaction retires. 0 means
	// unbounded.
	MaxGrants int
	// NoRecycle disables the engine's free-list recycling of packet
	// wrappers, output trains and receive entries (see pool.go), making
	// every hot-path object a fresh allocation. It exists as the A/B
	// escape hatch for the pooling property test and for leak hunting;
	// the virtual timeline and Stats must be byte-identical either way.
	// The flag is deliberately not part of the recorded NodeConfig — it
	// changes nothing a replay could observe.
	NoRecycle bool
	// Tracer, when non-nil, records every scheduling decision on the
	// virtual timeline (see package trace).
	Tracer *trace.Recorder
	// Record, when non-nil, captures every application-level submission
	// (Isend/Isendv/Irecv/pack pieces) with its virtual-time offset into
	// a replayable recording: the offered load of the run, separated
	// from the schedule produced on it (see trace.Recording and package
	// replay). Attach the same recording to every engine of a cluster.
	Record *trace.Recording
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: the aggregation strategy and the measured MAD-MPI software
// overheads.
func DefaultOptions() Options {
	return Options{
		Strategy:         "aggreg",
		SubmitOverhead:   150 * sim.Nanosecond,
		ScheduleOverhead: 150 * sim.Nanosecond,
	}
}

// Engine is one node's NewMadeleine instance: the collect layer, the
// optimizer-scheduler and the bindings to the transfer layer drivers.
type Engine struct {
	world *sim.World
	node  *simnet.Node
	opts  Options
	strat sched.Strategy

	drvs []drivers.Driver
	// feeding counts the outputs claiming a rail while their schedule
	// overhead is still being paid; railFreeAt is when the rail's last
	// claimed overhead window ends, so back-to-back flush elections
	// serialize instead of overlapping.
	feeding    []int
	railFreeAt []sim.Time
	staged     []*stagedOutput // pre-built packet per rail (Options.Anticipate)
	samplers   []*railSampler  // achieved-bandwidth estimators per rail
	// pendingCommon / pendingPinned track the engine-wide window
	// population incrementally, so RailInfo.Backlog is O(1) on the
	// NIC-idle hot path instead of a sweep over every gate.
	pendingCommon int
	pendingPinned []int
	// Link-layer reliability per-rail state (Options.Reliability):
	// failure flag, retransmission tally and probe-in-progress latch.
	railFailed  []bool
	railRetrans []int
	probing     []bool

	gates     map[simnet.NodeID]*Gate
	gateOrder []*Gate // deterministic iteration
	rr        int     // round-robin cursor over gates
	electGen  uint64  // election-validation generation (see electOutput)
	creditGen uint64  // credit-window stamp generation (see scanEligible)

	rdvSend   map[uint32]*rdvSend
	rdvRecv   map[rdvKey]*rdvRecv
	rdvWait   []pendingGrant // matched RTSes awaiting a grant slot (Options.MaxGrants)
	nextRdvID uint32

	syncAcks   map[uint32]*SendRequest // synchronous sends awaiting the ack
	nextSyncID uint32

	// creditFreeze suspends credit replenishment (FreezeCredits): the
	// receive side keeps tallying consumed wrappers but sends no credit
	// entries, so senders run their budgets dry — the scenario harness's
	// credit-squeeze event.
	creditFreeze bool

	cond  *sim.Cond
	stats Stats

	// Free-list recycling and encode scratch (see pool.go). All
	// per-engine and unsynchronized: the world is single-threaded.
	freePkts []*packet
	freeOuts []*output
	freeEnts []*inEntry
	encHdrs  []byte
	encSegs  [][]byte
	// railScratch backs railInfos() so the per-body-plan rail survey
	// stops allocating (strategies must not retain the slice — the
	// spileak analyzer enforces that).
	railScratch []sched.RailInfo
}

// New creates an engine for one node of a fabric. Drivers must then be
// attached (Attach or AttachFabric) before gates can carry traffic.
func New(f *simnet.Fabric, node simnet.NodeID, opts Options) (*Engine, error) {
	strat := opts.StrategyImpl
	if strat == nil {
		if opts.Strategy == "" {
			opts.Strategy = "aggreg"
		}
		var err error
		if strat, err = sched.New(opts.Strategy); err != nil {
			return nil, err
		}
	}
	if opts.Record != nil && opts.StrategyImpl != nil {
		// The recording stores strategies by registry name; a bare
		// strategy value replay cannot reconstruct would fail (or worse,
		// silently resolve to an unrelated strategy sharing the name) —
		// refuse at record time, where the user can still fix it.
		if _, err := sched.New(strat.Name()); err != nil {
			return nil, fmt.Errorf("core: recording an engine with unregistered strategy %q: replay resolves strategies by registry name — register it with sched.Register", strat.Name())
		}
	}
	if opts.Reliability {
		if opts.RetransmitTimeout <= 0 {
			opts.RetransmitTimeout = defaultRetransmitTimeout
		}
		if opts.RetransmitBudget <= 0 {
			opts.RetransmitBudget = defaultRetransmitBudget
		}
		if opts.BodyChunk <= 0 {
			// An unchunked rendezvous body can monopolize a directed wire
			// for longer than the retransmit timeout, starving the acks
			// queued behind it into spurious retransmissions. Bound the
			// monopolization so link control interleaves between chunks.
			opts.BodyChunk = defaultBodyChunkReliable
		}
	}
	opts.Record.RegisterEngine(int(node), trace.NodeConfig{
		Strategy:          strat.Name(),
		SubmitOverhead:    opts.SubmitOverhead,
		ScheduleOverhead:  opts.ScheduleOverhead,
		BodyChunk:         opts.BodyChunk,
		Anticipate:        opts.Anticipate,
		FlushBacklog:      opts.FlushBacklog,
		Credits:           opts.Credits,
		MaxGrants:         opts.MaxGrants,
		Reliability:       opts.Reliability,
		RetransmitTimeout: opts.RetransmitTimeout,
		RetransmitBudget:  opts.RetransmitBudget,
		ProbeBudget:       opts.ProbeBudget,
	})
	w := f.World()
	return &Engine{
		world:    w,
		node:     f.Node(node),
		opts:     opts,
		strat:    strat,
		gates:    make(map[simnet.NodeID]*Gate),
		rdvSend:  make(map[uint32]*rdvSend),
		rdvRecv:  make(map[rdvKey]*rdvRecv),
		syncAcks: make(map[uint32]*SendRequest),
		cond:     sim.NewCond(w),
	}, nil
}

// Attach registers and opens one transfer-layer driver as a new rail.
func (e *Engine) Attach(drv drivers.Driver) error {
	idx := len(e.drvs)
	if err := drv.Open(
		func(d simnet.Delivery) { e.onDelivery(idx, d) },
		func() { e.pump(idx) },
	); err != nil {
		return err
	}
	e.drvs = append(e.drvs, drv)
	e.feeding = append(e.feeding, 0)
	e.railFreeAt = append(e.railFreeAt, 0)
	e.pendingPinned = append(e.pendingPinned, 0)
	e.staged = append(e.staged, nil)
	e.samplers = append(e.samplers, new(railSampler))
	e.railFailed = append(e.railFailed, false)
	e.railRetrans = append(e.railRetrans, 0)
	e.probing = append(e.probing, false)
	e.stats.PerDriverBytes = append(e.stats.PerDriverBytes, 0)
	for _, g := range e.gateOrder {
		g.win.perDriver = append(g.win.perDriver, nil)
		g.views = append(g.views, windowView{g: g, drv: idx})
	}
	if a, ok := e.strat.(sched.Attacher); ok {
		a.OnAttach(e.railInfo(idx))
	}
	return nil
}

// AttachFabric attaches one driver per network of the fabric, using the
// port registry.
func (e *Engine) AttachFabric(f *simnet.Fabric) error {
	if e.opts.Record != nil {
		rails := make([]simnet.Profile, 0, len(f.Networks()))
		for _, net := range f.Networks() {
			rails = append(rails, net.Profile())
		}
		e.opts.Record.RegisterTopology(f.Nodes(), rails, e.node.Host())
		e.opts.Record.RegisterFaults(f.Faults())
	}
	for _, net := range f.Networks() {
		drv, err := drivers.New(net, e.node.ID)
		if err != nil {
			return err
		}
		if err := e.Attach(drv); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts down every driver.
func (e *Engine) Close() error {
	var first error
	for _, d := range e.drvs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// World returns the engine's simulation world.
func (e *Engine) World() *sim.World { return e.world }

// NodeID returns the node the engine runs on.
func (e *Engine) NodeID() simnet.NodeID { return e.node.ID }

// Drivers returns the attached rails in attach order.
func (e *Engine) Drivers() []drivers.Driver { return e.drvs }

// StrategyName reports the active optimization strategy.
func (e *Engine) StrategyName() string { return e.strat.Name() }

// Cond exposes the engine-wide completion condition variable: it is
// broadcast whenever any request completes or an unexpected message
// arrives, so layered code (MPI Waitany, probing loops) can block on
// engine progress.
func (e *Engine) Cond() *sim.Cond { return e.cond }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.PerDriverBytes = append([]int64(nil), e.stats.PerDriverBytes...)
	return s
}

// Gate returns (creating on first use) the connection to a peer node.
func (e *Engine) Gate(peer simnet.NodeID) *Gate {
	if g, ok := e.gates[peer]; ok {
		return g
	}
	// The per-flow maps (sendSeq, flows) are made lazily: the flat
	// tag-slot fast path covers every tag a typical run ever mints, so
	// most gates never pay for the maps at all.
	g := &Gate{
		eng:     e,
		peer:    peer,
		win:     newWindow(len(e.drvs)),
		views:   make([]windowView, len(e.drvs)),
		credits: e.opts.Credits,
	}
	for i := range g.views {
		g.views[i] = windowView{g: g, drv: i}
	}
	e.gates[peer] = g
	e.gateOrder = append(e.gateOrder, g)
	return g
}

// chargeSubmit models the host software cost of entering the collect
// layer. When called from a simulated process the process sleeps; from
// engine callbacks the cost is already accounted in ScheduleOverhead.
func (e *Engine) chargeSubmit(p *sim.Proc) {
	if p != nil && e.opts.SubmitOverhead > 0 {
		p.Sleep(e.opts.SubmitOverhead)
	}
}

// chargeCopy models a host memcpy of n bytes on the submitting process
// (the software-gather fallback of the collect layer).
func (e *Engine) chargeCopy(p *sim.Proc, n int) {
	if p != nil && n > 0 {
		p.Sleep(e.node.CopyCost(n))
	}
}

// needsFlatten reports whether no rail eligible for a wrapper (its
// pinned rail, or every rail for the common list) can move it without a
// software gather: a rail carries the wrapper when it either gathers
// the segments natively or switches it to rendezvous — the RTS is
// header-only on the wire and the body chunker respects the gather
// capacity.
func (e *Engine) needsFlatten(driver, segs, size int) bool {
	stuck := func(d drivers.Driver) bool {
		c := d.Caps()
		if segs <= c.MaxSegments {
			return false // gatherable as-is
		}
		if c.RdvThreshold > 0 && size >= c.RdvThreshold {
			return false // travels as a rendezvous
		}
		return true
	}
	if driver != AnyDriver {
		return stuck(e.drvs[driver])
	}
	for _, d := range e.drvs {
		if !stuck(d) {
			return false
		}
	}
	return true
}

// traceEvent records one event when tracing is enabled. The Kind-specific
// fields ride in ev; node and time are filled here.
func (e *Engine) traceEvent(kind trace.Kind, peer simnet.NodeID, rail int, tag Tag, bytes, entries int, note string) {
	if e.opts.Tracer == nil {
		return
	}
	e.opts.Tracer.Record(trace.Event{
		At:      e.world.Now(),
		Kind:    kind,
		Node:    int(e.node.ID),
		Peer:    int(peer),
		Rail:    rail,
		Tag:     uint64(tag),
		Bytes:   bytes,
		Entries: entries,
		Note:    note,
	})
}

// recordSend appends one application-level send to the attached
// recording (Options.Record): called at entry, before the submit
// overhead is charged, so replay re-drives the call at the same instant
// and pays the same costs.
func (e *Engine) recordSend(g *Gate, tag Tag, iov iovec, cfg sendConfig) {
	if e.opts.Record == nil {
		return
	}
	e.opts.Record.RecordOp(trace.Op{
		At:          e.world.Now(),
		Node:        int(e.node.ID),
		Peer:        int(g.peer),
		Kind:        trace.OpSend,
		Tag:         uint64(tag),
		Segs:        iov.segLens(),
		Priority:    cfg.flags&FlagPriority != 0,
		Unordered:   cfg.flags&FlagUnordered != 0,
		Synchronous: cfg.flags&FlagNeedAck != 0,
		Rail:        cfg.driver,
	})
}

// recordRecv appends one application-level receive posting to the
// attached recording.
func (e *Engine) recordRecv(g *Gate, want, mask Tag, iov iovec) {
	if e.opts.Record == nil {
		return
	}
	e.opts.Record.RecordOp(trace.Op{
		At:   e.world.Now(),
		Node: int(e.node.ID),
		Peer: int(g.peer),
		Kind: trace.OpRecv,
		Tag:  uint64(want),
		Mask: uint64(mask),
		Segs: iov.segLens(),
		Rail: AnyDriver,
	})
}

// submit inserts a wrapper into the window and kicks the scheduler.
func (e *Engine) submit(pw *packet) {
	pw.submittedAt = e.world.Now()
	pw.gate.win.push(pw)
	if pw.driver == AnyDriver {
		e.pendingCommon++
	} else {
		e.pendingPinned[pw.driver]++
	}
	if pw.kind == kindData && e.opts.Credits > 0 {
		pw.gate.dataFIFO = append(pw.gate.dataFIFO, pw)
	}
	e.stats.Submitted++
	e.traceEvent(trace.Submit, pw.gate.peer, -1, pw.tag, pw.payloadLen(), 0, pw.kind.String())
	e.kick(pw.gate)
}

// kick offers the (possibly changed) backlog to the scheduler: idle
// rails pump, the flush mode checks the gate's threshold, anticipation
// pre-stages busy rails. Shared by submit and credit replenishment.
func (e *Engine) kick(g *Gate) {
	e.pumpAll()
	if e.opts.FlushBacklog > 0 {
		e.flush(g)
	}
	if e.opts.Anticipate {
		for i := range e.drvs {
			e.stage(i)
		}
	}
}

// pumpAll offers work to every idle rail.
func (e *Engine) pumpAll() {
	for i := range e.drvs {
		e.pump(i)
	}
}

// elect asks the strategy for the next output packet for a rail,
// round-robin fair over the gates. It returns (nil, nil) when nothing is
// electable.
func (e *Engine) elect(drv int) (*Gate, *output) {
	caps := e.drvs[drv].Caps()
	n := len(e.gateOrder)
	for i := 0; i < n; i++ {
		g := e.gateOrder[(e.rr+i)%n]
		if g.win.pending(drv) == 0 {
			continue
		}
		e.prepare(g, drv, caps)
		out := e.electOutput(g, drv, caps)
		if out == nil {
			continue
		}
		e.rr = (e.rr + i + 1) % n
		return g, out
	}
	return nil, nil
}

// pump is the heart of the optimizer-scheduler layer: called whenever
// rail drv might be idle, it hands over the pre-staged packet if
// anticipation built one, or asks the strategy for the next output and
// feeds the rail. The paper's just-in-time property comes from being
// driven by NIC-idle events rather than by the application.
func (e *Engine) pump(drv int) {
	if e.railFailed[drv] || e.feeding[drv] > 0 || !e.drvs[drv].Poll() {
		return
	}
	if st := e.staged[drv]; st != nil {
		// Anticipation: the packet was built while the rail was busy;
		// submit as soon as its preparation has finished (usually
		// immediately — the election cost hid behind the transmission).
		e.staged[drv] = nil
		e.feeding[drv]++
		delay := st.readyAt - e.world.Now()
		if delay < 0 {
			delay = 0
		}
		if end := e.world.Now() + delay; end > e.railFreeAt[drv] {
			e.railFreeAt[drv] = end
		}
		e.world.After(delay, func() {
			e.feeding[drv]--
			e.send(st.gate, drv, st.out)
		})
		return
	}
	g, out := e.elect(drv)
	if out == nil {
		return
	}
	e.feed(g, drv, out)
}

// stagedOutput is a packet pre-built for a busy rail (Options.Anticipate).
type stagedOutput struct {
	gate    *Gate
	out     *output
	readyAt sim.Time
}

// stage pre-elects an output for a busy rail so the next idle event can
// be answered instantly (§3.2's second scheduling mode).
func (e *Engine) stage(drv int) {
	if !e.opts.Anticipate || e.railFailed[drv] || e.staged[drv] != nil || e.feeding[drv] > 0 || e.drvs[drv].Poll() {
		return
	}
	g, out := e.elect(drv)
	if out == nil {
		return
	}
	e.account(g, drv, out)
	e.staged[drv] = &stagedOutput{gate: g, out: out, readyAt: e.world.Now() + e.opts.ScheduleOverhead}
}

// flush force-elects whenever a rail's visible backlog reaches the
// configured threshold, queueing the output at the (possibly busy) NIC
// (§3.2's third scheduling mode).
func (e *Engine) flush(g *Gate) {
	for drv := range e.drvs {
		if e.railFailed[drv] {
			continue
		}
		for g.win.pending(drv) >= e.opts.FlushBacklog {
			caps := e.drvs[drv].Caps()
			e.prepare(g, drv, caps)
			out := e.electOutput(g, drv, caps)
			if out == nil {
				break
			}
			e.feed(g, drv, out)
		}
	}
}

// prepare converts oversized data wrappers into rendezvous requests, so
// strategies only ever see wrappers that fit the eager protocol (plus
// body chunks, which are exempt). Vector wrappers wider than every
// eligible rail's gather list were already flattened (and the copy
// charged) at submission; a wrapper that merely exceeds THIS rail's
// capacity is left for a wider rail — strategies skip it.
func (e *Engine) prepare(g *Gate, drv int, caps drivers.Caps) {
	var oversized []*packet
	g.win.scan(drv, func(pw *packet) bool {
		if pw.kind == kindData && caps.RdvThreshold > 0 && pw.payloadLen() >= caps.RdvThreshold {
			oversized = append(oversized, pw)
		}
		return true
	})
	for _, pw := range oversized {
		e.convertToRTS(pw)
	}
}

// account books the output's statistics and removes its wrappers from the
// window (they are now owned by the output).
func (e *Engine) account(g *Gate, drv int, out *output) {
	g.win.take(out.entries)
	for _, pw := range out.entries {
		if pw.driver == AnyDriver {
			e.pendingCommon--
		} else {
			e.pendingPinned[pw.driver]--
		}
		if pw.kind == kindData && e.opts.Credits > 0 {
			g.dropData(pw)
		}
	}

	e.stats.OutputPackets++
	e.stats.EntriesSent += len(out.entries)
	if len(out.entries) > 1 {
		e.stats.AggregatedPackets++
	}
	if len(out.entries) > e.stats.MaxEntriesPerPacket {
		e.stats.MaxEntriesPerPacket = len(out.entries)
	}
	hasData, hasCtrl := false, false
	for _, pw := range out.entries {
		switch {
		case pw.ctrl():
			hasCtrl = true
		case pw.kind == kindChunk:
			hasData = true // body bytes were counted at startBody time
		default:
			hasData = true
			e.stats.EagerBytes += int64(pw.payloadLen())
		}
		e.stats.PerDriverBytes[drv] += int64(pw.payloadLen())
		if pw.kind == kindData && e.opts.Credits > 0 {
			g.credits--
		}
	}
	if hasData && hasCtrl {
		e.stats.CtrlPiggybacked++
	}
	e.stats.WireBytes += int64(out.wireSize())
	e.traceEvent(trace.Elect, g.peer, drv, 0, out.wireSize(), len(out.entries), e.strat.Name())
}

// feed claims the rail, charges the scheduling overhead, then hands the
// encoded output to the driver. The claim is a counter and overhead
// windows chain through railFreeAt: when flush elects several outputs
// back-to-back, each pays its full per-packet overhead after the
// previous one, and pump stays out until every claimed output has been
// handed over — outputs are serialized per rail.
func (e *Engine) feed(g *Gate, drv int, out *output) {
	e.account(g, drv, out)
	e.feeding[drv]++
	now := e.world.Now()
	start := now
	if e.railFreeAt[drv] > start {
		start = e.railFreeAt[drv]
	}
	done := start + e.opts.ScheduleOverhead
	e.railFreeAt[drv] = done
	send := func() {
		e.feeding[drv]--
		e.send(g, drv, out)
	}
	if done > now {
		e.world.After(done-now, send)
	} else {
		send()
	}
}

// send hands the encoded output to the driver, arranges per-wrapper
// completions and bandwidth sampling, and pre-stages the next packet if
// anticipation is on.
func (e *Engine) send(g *Gate, drv int, out *output) {
	entries := out.entries
	payload := 0
	for _, pw := range entries {
		payload += pw.payloadLen()
	}
	// The sampler sees the wire footprint — entry headers included,
	// notably the per-chunk headers of eager rendezvous bodies — because
	// that is what the measured duration covers; feeding it payload bytes
	// would bias the functional-bandwidth estimate low exactly on the
	// aggregation-heavy trains the adaptive strategy watches.
	wire := out.wireSize()
	if e.opts.Reliability {
		e.linkSend(g, drv, out, payload, wire)
		e.traceEvent(trace.Depart, g.peer, drv, 0, payload, len(entries), "")
		if e.opts.Anticipate {
			e.stage(drv)
		}
		return
	}
	segs := e.encodeOutput(out, nil)
	t0 := e.world.Now()
	err := e.drvs[drv].Send(g.peer, simnet.TxEager, segs, 0, func() {
		e.samplers[drv].observe(wire, e.world.Now()-t0)
		e.notifyComplete(drv, g.peer, payload, len(entries), e.world.Now()-t0)
		for _, pw := range entries {
			if pw.onSent != nil {
				pw.onSent()
			}
			if pw.req != nil && pw.kind != kindRTS {
				pw.req.doneOne()
			}
		}
		// The NIC is done with the train: recycle the wrappers and the
		// output (the completions above were the last readers).
		for _, pw := range entries {
			e.freePacket(pw)
		}
		e.freeOutput(out)
	})
	if err != nil {
		panic(fmt.Sprintf("core: strategy %s built an unsendable packet: %v", e.strat.Name(), err))
	}
	e.traceEvent(trace.Depart, g.peer, drv, 0, payload, len(entries), "")
	if e.opts.Anticipate {
		e.stage(drv)
	}
}

// WindowEmpty reports whether every gate's window has drained (useful for
// quiescence checks in tests).
func (e *Engine) WindowEmpty() bool {
	for _, g := range e.gateOrder {
		if !g.win.empty() {
			return false
		}
	}
	return true
}

// notifyComplete feeds the strategy's optional completion hook: the
// per-transaction functional-characteristics signal of the SPI.
func (e *Engine) notifyComplete(drv int, peer simnet.NodeID, bytes, entries int, dur sim.Time) {
	if c, ok := e.strat.(sched.Completer); ok {
		c.OnComplete(sched.Completion{
			Rail:     drv,
			Peer:     int(peer),
			Bytes:    bytes,
			Entries:  entries,
			Duration: dur,
		})
	}
}

var errNoDrivers = errors.New("core: engine has no attached drivers")
