package core

import (
	"fmt"

	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// The rendezvous protocol. A data wrapper whose payload reaches the
// driver's threshold is converted, in place in the window, into an RTS
// control entry (header-only: 24 bytes). The RTS is aggregable like any
// wrapper — this is how the §5.3 datatype strategy ships the rendezvous
// requests of the large blocks together with the small blocks in one
// physical packet. When the receiver has a matching posted receive it
// answers with a CTS, and the sender streams the body: zero-copy RDMA on
// capable rails, eager chunk entries into the registered landing buffer
// otherwise, possibly split across several rails by the strategy.

// rdvSend is the sender-side state of one rendezvous transaction. The
// body is an iovec: a vector send streams straight out of its scattered
// user-space segments.
type rdvSend struct {
	id   uint32
	gate *Gate
	tag  Tag
	seq  SeqNum
	body iovec
	req  *SendRequest
	left int // chunks not yet fully sent
}

// rdvKey identifies a receiver-side transaction: rendezvous ids are
// sender-local, so the peer disambiguates.
type rdvKey struct {
	src simnet.NodeID
	id  uint32
}

// rdvRecv is the receiver-side state of one rendezvous transaction.
type rdvRecv struct {
	req       *rdvRecvReq
	remaining int
	total     int
}

// rdvRecvReq narrows what the body path needs from a receive request.
type rdvRecvReq = RecvRequest

// defaultBodyChunkNonRDMA bounds eager body chunks when the driver
// reports no usable threshold.
const defaultBodyChunkNonRDMA = 64 << 10

// convertToRTS swaps a data wrapper for a rendezvous request in place.
func (e *Engine) convertToRTS(pw *packet) *packet {
	if pw.flags&FlagNeedAck != 0 {
		// The rendezvous handshake already implies a receiver-side match,
		// so the explicit ack is redundant: release its completion unit.
		if req, ok := e.syncAcks[pw.aux]; ok {
			delete(e.syncAcks, pw.aux)
			req.doneOne()
		}
		pw.flags &^= FlagNeedAck
		pw.aux = 0
	}
	e.nextRdvID++
	id := e.nextRdvID
	size := pw.payloadLen()
	rts := &packet{
		gate:   pw.gate,
		kind:   kindRTS,
		flags:  pw.flags,
		tag:    pw.tag,
		seq:    pw.seq,
		size:   uint32(size),
		aux:    id,
		driver: pw.driver,
		req:    pw.req,
	}
	e.rdvSend[id] = &rdvSend{
		id:   id,
		gate: pw.gate,
		tag:  pw.tag,
		seq:  pw.seq,
		body: pw.iov,
		req:  pw.req,
	}
	if !pw.gate.win.replace(pw, rts) {
		panic("core: rendezvous conversion of a wrapper not in the window")
	}
	e.stats.RdvStarted++
	e.traceEvent(trace.RdvStart, pw.gate.peer, -1, pw.tag, size, 0, "")
	return rts
}

// acceptRdv runs when an RTS matches a posted receive: record the
// transaction and grant it.
func (e *Engine) acceptRdv(g *Gate, r *RecvRequest, h header) {
	key := rdvKey{src: g.peer, id: h.aux}
	if _, dup := e.rdvRecv[key]; dup {
		panic(fmt.Sprintf("core: duplicate rendezvous %v", key))
	}
	e.rdvRecv[key] = &rdvRecv{req: r, remaining: int(h.length), total: int(h.length)}
	e.traceEvent(trace.RdvGrant, g.peer, -1, h.tag, int(h.length), 0, "")
	g.pushCtrl(kindCTS, h.tag, h.length, h.aux)
}

// onCTS runs on the original sender when the grant arrives: plan the body
// over the rails and stream it.
func (e *Engine) onCTS(h header) {
	rs, ok := e.rdvSend[h.aux]
	if !ok {
		panic(fmt.Sprintf("core: CTS for unknown rendezvous %d", h.aux))
	}
	e.startBody(rs)
}

// startBody distributes the body per the strategy's plan and arranges
// completion accounting.
func (e *Engine) startBody(rs *rdvSend) {
	size := rs.body.total()
	plan := e.planBody(size)

	type chunk struct {
		drv      int
		off, len int
		rdma     bool
	}
	var chunks []chunk
	for _, share := range plan {
		if share.Size <= 0 {
			continue
		}
		caps := e.drvs[share.Rail].Caps()
		csize := share.Size
		if caps.RDMA {
			if e.opts.BodyChunk > 0 && e.opts.BodyChunk < csize {
				csize = e.opts.BodyChunk
			}
		} else {
			csize = caps.RdvThreshold
			if csize <= 0 {
				csize = defaultBodyChunkNonRDMA
			}
		}
		// One gather slot is reserved for the chunk header on non-RDMA
		// rails; respecting the capacity here keeps vector bodies within
		// the rail's native gather list.
		segCap := caps.MaxSegments - 1
		if segCap <= 0 {
			segCap = 1
		}
		for off := share.Offset; off < share.Offset+share.Size; {
			n := csize
			if rest := share.Offset + share.Size - off; n > rest {
				n = rest
			}
			n = rs.body.capSegs(off, n, segCap)
			chunks = append(chunks, chunk{drv: share.Rail, off: off, len: n, rdma: caps.RDMA})
			off += n
		}
	}
	if len(chunks) == 0 {
		// Zero-length body: nothing to stream, retire the wrapper.
		rs.req.doneOne()
		e.stats.RdvCompleted++
		delete(e.rdvSend, rs.id)
		return
	}

	rs.req.add(len(chunks))
	rs.left = len(chunks)
	retire := func() {
		rs.left--
		if rs.left == 0 {
			e.stats.RdvCompleted++
			delete(e.rdvSend, rs.id)
		}
	}

	for _, c := range chunks {
		data := rs.body.slice(c.off, c.len)
		e.stats.BodyBytes += int64(c.len)
		if c.rdma {
			e.stats.PerDriverBytes[c.drv] += int64(c.len)
			aux := uint64(rs.id)<<32 | uint64(uint32(c.off))
			req := rs.req
			drv := c.drv
			size := c.len
			t0 := e.world.Now()
			err := e.drvs[c.drv].Send(rs.gate.peer, simnet.TxRdma, data, aux, func() {
				e.samplers[drv].observe(size, e.world.Now()-t0)
				e.notifyComplete(drv, rs.gate.peer, size, 0, e.world.Now()-t0)
				req.doneOne()
				retire()
			})
			if err != nil {
				panic("core: rendezvous body submit failed: " + err.Error())
			}
			continue
		}
		// Non-RDMA rail: the chunk flows through the window as an eager
		// entry bound for the registered landing buffer.
		pw := &packet{
			gate:   rs.gate,
			kind:   kindChunk,
			flags:  FlagUnordered,
			tag:    rs.tag,
			seq:    SeqNum(uint32(c.off)), // chunk offset rides the seq field
			iov:    data,
			size:   uint32(c.len),
			aux:    rs.id,
			driver: c.drv,
			req:    rs.req, // feed retires one unit per chunk entry
			onSent: retire,
		}
		e.submit(pw)
	}
	// Retire the unit the original Isend registered, now that the chunk
	// units carry the completion.
	rs.req.doneOne()
	e.pumpAll()
}

// onBody places an arriving body fragment (zero-copy: no host copy is
// charged; RDMA and GM-style rendezvous land directly in the registered
// buffer).
func (e *Engine) onBody(src simnet.NodeID, id uint32, offset int, data []byte) {
	key := rdvKey{src: src, id: id}
	rr, ok := e.rdvRecv[key]
	if !ok {
		panic(fmt.Sprintf("core: body fragment for unknown rendezvous %v", key))
	}
	r := rr.req
	r.iov.copyAt(offset, data)
	rr.remaining -= len(data)
	if rr.remaining < 0 {
		panic(fmt.Sprintf("core: rendezvous %v over-delivered", key))
	}
	e.traceEvent(trace.RdvBody, src, -1, r.tag, len(data), 0, "")
	if rr.remaining == 0 {
		delete(e.rdvRecv, key)
		var err error
		r.n = rr.total
		if room := r.iov.total(); rr.total > room {
			r.n = room
			err = ErrTruncated
		}
		r.complete(err)
	}
}
