package core

import (
	"fmt"

	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// The rendezvous protocol. A data wrapper whose payload reaches the
// driver's threshold is converted, in place in the window, into an RTS
// control entry (header-only: 24 bytes). The RTS is aggregable like any
// wrapper — this is how the §5.3 datatype strategy ships the rendezvous
// requests of the large blocks together with the small blocks in one
// physical packet. When the receiver has a matching posted receive it
// answers with a CTS, and the sender streams the body: zero-copy RDMA on
// capable rails, eager chunk entries into the registered landing buffer
// otherwise, possibly split across several rails by the strategy.
//
// The grant is bounded twice: its size is clamped to the posted landing
// capacity (the sender streams only what the receiver can place; the
// receive completes with ErrTruncated without the excess ever crossing
// the wire), and Options.MaxGrants caps how many granted transactions
// may be in flight at once — further matched RTSes wait in FIFO order
// with their CTS deferred until an active transaction retires.

// rdvSend is the sender-side state of one rendezvous transaction. The
// body is an iovec: a vector send streams straight out of its scattered
// user-space segments.
type rdvSend struct {
	id   uint32
	gate *Gate
	tag  Tag
	seq  SeqNum
	body iovec
	req  *SendRequest
	left int // chunks not yet fully sent

	// Reliability bookkeeping (Options.Reliability): started marks the
	// first CTS consumed (a later CTS is a reissue request), done marks
	// the first full stream-out (RdvCompleted counted once). Under
	// reliability the state is retired by the receiver's kindDone entry,
	// not by left reaching 0 — RDMA body fragments can be lost below the
	// link layer and the receiver may ask for the span again.
	started bool
	done    bool
}

// rdvKey identifies a receiver-side transaction: rendezvous ids are
// sender-local, so the peer disambiguates.
type rdvKey struct {
	src simnet.NodeID
	id  uint32
}

// rdvRecv is the receiver-side state of one rendezvous transaction.
type rdvRecv struct {
	req       *rdvRecvReq
	remaining int // granted bytes not yet landed
	granted   int // bytes the CTS allowed (clamped to the landing area)
	total     int // full body size the RTS announced

	// spans tracks which byte ranges have landed (Options.Reliability):
	// re-streamed fragments overlapping an already-covered range count
	// nothing, so duplicated body traffic can never double-credit
	// remaining.
	spans []span
}

// span is one covered byte range [lo, hi) of a rendezvous body.
type span struct{ lo, hi int }

// cover merges [lo, hi) into the covered set and returns how many bytes
// were newly covered. Bodies arrive as a handful of large fragments, so
// a sorted slice with insertion-merge is plenty.
func (rr *rdvRecv) cover(lo, hi int) int {
	if hi > rr.granted {
		hi = rr.granted // beyond the grant never counts
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return 0
	}
	newly := hi - lo
	nlo, nhi := lo, hi
	i := 0
	for i < len(rr.spans) && rr.spans[i].hi < lo {
		i++
	}
	j := i
	for j < len(rr.spans) && rr.spans[j].lo <= hi {
		s := rr.spans[j]
		if olo, ohi := maxInt(s.lo, lo), minInt(s.hi, hi); ohi > olo {
			newly -= ohi - olo
		}
		if s.lo < nlo {
			nlo = s.lo
		}
		if s.hi > nhi {
			nhi = s.hi
		}
		j++
	}
	out := make([]span, 0, len(rr.spans)-(j-i)+1)
	out = append(out, rr.spans[:i]...)
	out = append(out, span{nlo, nhi})
	out = append(out, rr.spans[j:]...)
	rr.spans = out
	return newly
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pendingGrant is a matched rendezvous request waiting for a grant slot
// (Options.MaxGrants).
type pendingGrant struct {
	g *Gate
	r *RecvRequest
	h header
}

// rdvRecvReq narrows what the body path needs from a receive request.
type rdvRecvReq = RecvRequest

// defaultBodyChunkNonRDMA bounds eager body chunks when the driver
// reports no usable threshold.
const defaultBodyChunkNonRDMA = 64 << 10

// defaultBodyChunkReliable bounds body transactions when the link-layer
// reliability protocol is on and no explicit BodyChunk was configured:
// acks share the directed wire with body chunks, so one transaction must
// stay well under the retransmit timeout's worth of wire time (64KB at
// 10Gb/s ≈ 52µs against the 200µs default timeout).
const defaultBodyChunkReliable = 64 << 10

// convertToRTS swaps a data wrapper for a rendezvous request in place.
func (e *Engine) convertToRTS(pw *packet) *packet {
	if pw.flags&FlagNeedAck != 0 {
		// The rendezvous handshake already implies a receiver-side match,
		// so the explicit ack is redundant: release its completion unit.
		if req, ok := e.syncAcks[pw.aux]; ok {
			delete(e.syncAcks, pw.aux)
			req.doneOne()
		}
		pw.flags &^= FlagNeedAck
		pw.aux = 0
	}
	e.nextRdvID++
	id := e.nextRdvID
	size := pw.payloadLen()
	g := pw.gate
	rts := e.newPacket()
	rts.gate = g
	rts.kind = kindRTS
	rts.flags = pw.flags
	rts.tag = pw.tag
	rts.seq = pw.seq
	rts.size = uint32(size)
	rts.aux = id
	rts.driver = pw.driver
	rts.req = pw.req
	e.rdvSend[id] = &rdvSend{
		id:   id,
		gate: g,
		tag:  pw.tag,
		seq:  pw.seq,
		body: pw.iov,
		req:  pw.req,
	}
	if !g.win.replace(pw, rts) {
		panic("core: rendezvous conversion of a wrapper not in the window")
	}
	if e.opts.Credits > 0 {
		g.dropData(pw) // rendezvous traffic is credit-exempt
	}
	e.stats.RdvStarted++
	e.traceEvent(trace.RdvStart, g.peer, -1, pw.tag, size, 0, "")
	// The data wrapper is fully replaced: the rendezvous state owns its
	// iovec now (nil it so recycling cannot reuse the backing array under
	// the body), and nothing else references the wrapper.
	pw.iov = nil
	e.freePacket(pw)
	return rts
}

// acceptRdv runs when an RTS matches a posted receive: grant it, or park
// it behind the MaxGrants cap.
func (e *Engine) acceptRdv(g *Gate, r *RecvRequest, h header) {
	key := rdvKey{src: g.peer, id: h.aux}
	_, dup := e.rdvRecv[key]
	if !dup {
		// The id may also be waiting for a grant slot: granting it twice
		// later would overwrite the live transaction.
		for _, pg := range e.rdvWait {
			if pg.g.peer == key.src && pg.h.aux == key.id {
				dup = true
				break
			}
		}
	}
	if dup {
		e.protoErr(g, fmt.Sprintf("duplicate rendezvous %v", key))
		r.complete(fmt.Errorf("%w: duplicate rendezvous id %d from node %d", ErrProtocol, h.aux, g.peer))
		return
	}
	if e.opts.MaxGrants > 0 && len(e.rdvRecv) >= e.opts.MaxGrants {
		e.rdvWait = append(e.rdvWait, pendingGrant{g: g, r: r, h: h})
		e.stats.RdvDeferred++
		return
	}
	e.grantRdv(g, r, h)
}

// grantRdv sends the CTS for a matched rendezvous request, clamped to
// the posted landing capacity: the sender streams only what the receiver
// can place, and a short landing area completes with ErrTruncated
// without the excess ever leaving the sender.
func (e *Engine) grantRdv(g *Gate, r *RecvRequest, h header) {
	grant := int(h.length)
	if room := r.iov.total(); grant > room {
		grant = room
		e.stats.RdvTruncated++
	}
	e.traceEvent(trace.RdvGrant, g.peer, -1, h.tag, grant, 0, "")
	if grant == 0 {
		// Nothing can land. The zero-byte CTS still goes out so the
		// sender retires its transaction state.
		g.pushCtrl(kindCTS, h.tag, 0, h.aux)
		r.n = 0
		var err error
		if h.length > 0 {
			err = ErrTruncated
		}
		r.complete(err)
		return
	}
	key := rdvKey{src: g.peer, id: h.aux}
	e.rdvRecv[key] = &rdvRecv{req: r, remaining: grant, granted: grant, total: int(h.length)}
	g.pushCtrl(kindCTS, h.tag, uint32(grant), h.aux)
	if e.opts.Reliability {
		e.armBodyWatch(g, key, h.tag)
	}
}

// armBodyWatch schedules the rendezvous body progress check: if a
// watched transaction makes no progress over one body-timeout window —
// RDMA fragments travel below the link layer and can be lost outright —
// the receiver re-pushes the CTS and the sender re-streams the span
// (span tracking keeps duplicates harmless).
func (e *Engine) armBodyWatch(g *Gate, key rdvKey, tag Tag) {
	rr, ok := e.rdvRecv[key]
	if !ok {
		return
	}
	last := rr.remaining
	e.world.After(e.bodyTimeout(), func() {
		rr, ok := e.rdvRecv[key]
		if !ok {
			return // landed (or retired); the watchdog dies with it
		}
		if rr.remaining >= last {
			g.pushCtrl(kindCTS, tag, uint32(rr.granted), key.id)
		}
		e.armBodyWatch(g, key, tag)
	})
}

// releaseGrants hands freed grant slots to deferred rendezvous requests
// in arrival order.
func (e *Engine) releaseGrants() {
	for len(e.rdvWait) > 0 && (e.opts.MaxGrants == 0 || len(e.rdvRecv) < e.opts.MaxGrants) {
		pg := e.rdvWait[0]
		e.rdvWait[0] = pendingGrant{}
		e.rdvWait = e.rdvWait[1:]
		e.grantRdv(pg.g, pg.r, pg.h)
	}
}

// onCTS runs on the original sender when the grant arrives: plan the
// granted span over the rails and stream it.
func (e *Engine) onCTS(g *Gate, h header) {
	rs, ok := e.rdvSend[h.aux]
	if !ok {
		e.protoErr(g, fmt.Sprintf("CTS for unknown rendezvous %d", h.aux))
		return
	}
	if rs.started {
		// A second CTS for a live transaction is the receiver's body
		// watchdog asking for the span again (fragments were lost below
		// the link layer). Re-stream the whole grant outside the request
		// accounting; the receiver's span tracking discards what already
		// landed.
		e.stats.BodyReissues++
		e.traceEvent(trace.Retransmit, g.peer, -1, rs.tag, int(h.length), 0, fmt.Sprintf("rdv %d reissue", rs.id))
		e.streamBody(rs, int(h.length), true)
		return
	}
	rs.started = true
	e.streamBody(rs, int(h.length), false)
}

// streamBody distributes the granted bytes per the strategy's plan and
// arranges completion accounting. granted may be smaller than the body
// (the receiver clamped the CTS to its landing area); the excess never
// leaves the sender. A reissued span repeats the wire traffic of the
// original stream but touches neither the send request nor the chunk
// countdown — those completed the first time around.
func (e *Engine) streamBody(rs *rdvSend, granted int, reissue bool) {
	size := rs.body.total()
	if granted < size {
		size = granted
	}
	plan := e.planBody(size)

	type chunk struct {
		drv      int
		off, len int
		rdma     bool
	}
	var chunks []chunk
	for _, share := range plan {
		if share.Size <= 0 {
			continue
		}
		caps := e.drvs[share.Rail].Caps()
		csize := share.Size
		if caps.RDMA {
			if e.opts.BodyChunk > 0 && e.opts.BodyChunk < csize {
				csize = e.opts.BodyChunk
			}
		} else {
			csize = caps.RdvThreshold
			if csize <= 0 {
				csize = defaultBodyChunkNonRDMA
			}
		}
		// One gather slot is reserved for the chunk header on non-RDMA
		// rails; respecting the capacity here keeps vector bodies within
		// the rail's native gather list.
		segCap := caps.MaxSegments - 1
		if segCap <= 0 {
			segCap = 1
		}
		for off := share.Offset; off < share.Offset+share.Size; {
			n := csize
			if rest := share.Offset + share.Size - off; n > rest {
				n = rest
			}
			n = rs.body.capSegs(off, n, segCap)
			chunks = append(chunks, chunk{drv: share.Rail, off: off, len: n, rdma: caps.RDMA})
			off += n
		}
	}
	if len(chunks) == 0 {
		if reissue {
			return
		}
		// Zero-length (or zero-granted) body: nothing to stream, retire
		// the wrapper.
		rs.req.doneOne()
		e.stats.RdvCompleted++
		delete(e.rdvSend, rs.id)
		return
	}

	if !reissue {
		rs.req.add(len(chunks))
		rs.left = len(chunks)
	}
	retire := func() {
		if reissue {
			return // the original stream owns the countdown
		}
		rs.left--
		if rs.left != 0 {
			return
		}
		if !rs.done {
			rs.done = true
			e.stats.RdvCompleted++
		}
		if !e.opts.Reliability {
			// Under reliability the state must survive a possible reissue
			// request; the receiver's kindDone entry retires it instead.
			delete(e.rdvSend, rs.id)
		}
	}
	chunkReq := rs.req
	if reissue {
		chunkReq = nil
	}

	// RDMA chunks are chained per rail: chunk i+1 is handed to the NIC
	// only when chunk i completes. Submitting the whole body at once
	// would reserve the directed wire end to end, and anything queued
	// after it — link-layer acks in particular — would wait out the full
	// body; under reliability that starvation shows up as spurious
	// retransmissions. Chained, the wire is never claimed more than one
	// chunk ahead.
	rdmaQueues := make(map[int][]chunk)
	var rdmaOrder []int
	var sendRdma func(drv int, q []chunk)
	sendRdma = func(drv int, q []chunk) {
		c := q[0]
		rest := q[1:]
		data := rs.body.slice(c.off, c.len)
		e.stats.BodyBytes += int64(c.len)
		e.stats.PerDriverBytes[drv] += int64(c.len)
		e.stats.WireBytes += int64(c.len)
		aux := uint64(rs.id)<<32 | uint64(uint32(c.off))
		req := chunkReq
		size := c.len
		t0 := e.world.Now()
		err := e.drvs[drv].Send(rs.gate.peer, simnet.TxRdma, data, aux, func() {
			e.samplers[drv].observe(size, e.world.Now()-t0)
			e.notifyComplete(drv, rs.gate.peer, size, 0, e.world.Now()-t0)
			if req != nil {
				req.doneOne()
			}
			retire()
			if len(rest) > 0 {
				sendRdma(drv, rest)
			}
		})
		if err != nil {
			panic("core: rendezvous body submit failed: " + err.Error())
		}
	}

	for _, c := range chunks {
		if c.rdma {
			if _, ok := rdmaQueues[c.drv]; !ok {
				rdmaOrder = append(rdmaOrder, c.drv)
			}
			rdmaQueues[c.drv] = append(rdmaQueues[c.drv], c)
			continue
		}
		data := rs.body.slice(c.off, c.len)
		e.stats.BodyBytes += int64(c.len)
		// Non-RDMA rail: the chunk flows through the window as an eager
		// entry bound for the registered landing buffer.
		pw := e.newPacket()
		pw.gate = rs.gate
		pw.kind = kindChunk
		pw.flags = FlagUnordered
		pw.tag = rs.tag
		pw.seq = SeqNum(uint32(c.off)) // chunk offset rides the seq field
		pw.iov = append(pw.iov, data...)
		pw.size = uint32(c.len)
		pw.aux = rs.id
		pw.driver = c.drv
		pw.req = chunkReq // feed retires one unit per chunk entry
		if !reissue {
			pw.onSent = retire
		}
		e.submit(pw)
	}
	for _, drv := range rdmaOrder {
		sendRdma(drv, rdmaQueues[drv])
	}
	if !reissue {
		// Retire the unit the original Isend registered, now that the
		// chunk units carry the completion.
		rs.req.doneOne()
	}
	e.pumpAll()
}

// onRdvDone retires sender-side rendezvous state when the receiver
// reports the whole body landed (Options.Reliability; the entry rides a
// reliable frame, so it arrives exactly once).
func (e *Engine) onRdvDone(g *Gate, id uint32) {
	rs, ok := e.rdvSend[id]
	if !ok {
		e.protoErr(g, fmt.Sprintf("rdv-done for unknown rendezvous %d", id))
		return
	}
	if !rs.done {
		rs.done = true
		e.stats.RdvCompleted++
	}
	delete(e.rdvSend, id)
}

// onBody places an arriving body fragment (zero-copy: no host copy is
// charged; RDMA and GM-style rendezvous land directly in the registered
// buffer).
func (e *Engine) onBody(src simnet.NodeID, id uint32, offset int, data []byte) {
	key := rdvKey{src: src, id: id}
	rr, ok := e.rdvRecv[key]
	if !ok {
		e.protoErr(e.Gate(src), fmt.Sprintf("body fragment for unknown rendezvous %v", key))
		return
	}
	r := rr.req
	r.iov.copyAt(offset, data)
	if e.opts.Reliability {
		// Only newly covered bytes count: a re-streamed span overlaps
		// what already landed and must not double-credit remaining.
		rr.remaining -= rr.cover(offset, offset+len(data))
	} else {
		rr.remaining -= len(data)
	}
	if rr.remaining < 0 {
		e.protoErr(e.Gate(src), fmt.Sprintf("rendezvous %v over-delivered", key))
		rr.remaining = 0
	}
	e.traceEvent(trace.RdvBody, src, -1, r.tag, len(data), 0, "")
	if rr.remaining == 0 {
		delete(e.rdvRecv, key)
		if e.opts.Reliability {
			// Tell the sender it may retire its state (it keeps the body
			// around for reissue requests until this arrives).
			e.Gate(src).pushCtrl(kindDone, r.tag, 0, id)
		}
		var err error
		r.n = rr.granted
		if rr.total > rr.granted {
			err = ErrTruncated
		}
		r.complete(err)
		e.releaseGrants()
	}
}
