package core

import (
	"fmt"

	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// The rendezvous protocol. A data wrapper whose payload reaches the
// driver's threshold is converted, in place in the window, into an RTS
// control entry (header-only: 24 bytes). The RTS is aggregable like any
// wrapper — this is how the §5.3 datatype strategy ships the rendezvous
// requests of the large blocks together with the small blocks in one
// physical packet. When the receiver has a matching posted receive it
// answers with a CTS, and the sender streams the body: zero-copy RDMA on
// capable rails, eager chunk entries into the registered landing buffer
// otherwise, possibly split across several rails by the strategy.
//
// The grant is bounded twice: its size is clamped to the posted landing
// capacity (the sender streams only what the receiver can place; the
// receive completes with ErrTruncated without the excess ever crossing
// the wire), and Options.MaxGrants caps how many granted transactions
// may be in flight at once — further matched RTSes wait in FIFO order
// with their CTS deferred until an active transaction retires.

// rdvSend is the sender-side state of one rendezvous transaction. The
// body is an iovec: a vector send streams straight out of its scattered
// user-space segments.
type rdvSend struct {
	id   uint32
	gate *Gate
	tag  Tag
	seq  SeqNum
	body iovec
	req  *SendRequest
	left int // chunks not yet fully sent
}

// rdvKey identifies a receiver-side transaction: rendezvous ids are
// sender-local, so the peer disambiguates.
type rdvKey struct {
	src simnet.NodeID
	id  uint32
}

// rdvRecv is the receiver-side state of one rendezvous transaction.
type rdvRecv struct {
	req       *rdvRecvReq
	remaining int // granted bytes not yet landed
	granted   int // bytes the CTS allowed (clamped to the landing area)
	total     int // full body size the RTS announced
}

// pendingGrant is a matched rendezvous request waiting for a grant slot
// (Options.MaxGrants).
type pendingGrant struct {
	g *Gate
	r *RecvRequest
	h header
}

// rdvRecvReq narrows what the body path needs from a receive request.
type rdvRecvReq = RecvRequest

// defaultBodyChunkNonRDMA bounds eager body chunks when the driver
// reports no usable threshold.
const defaultBodyChunkNonRDMA = 64 << 10

// convertToRTS swaps a data wrapper for a rendezvous request in place.
func (e *Engine) convertToRTS(pw *packet) *packet {
	if pw.flags&FlagNeedAck != 0 {
		// The rendezvous handshake already implies a receiver-side match,
		// so the explicit ack is redundant: release its completion unit.
		if req, ok := e.syncAcks[pw.aux]; ok {
			delete(e.syncAcks, pw.aux)
			req.doneOne()
		}
		pw.flags &^= FlagNeedAck
		pw.aux = 0
	}
	e.nextRdvID++
	id := e.nextRdvID
	size := pw.payloadLen()
	rts := &packet{
		gate:   pw.gate,
		kind:   kindRTS,
		flags:  pw.flags,
		tag:    pw.tag,
		seq:    pw.seq,
		size:   uint32(size),
		aux:    id,
		driver: pw.driver,
		req:    pw.req,
	}
	e.rdvSend[id] = &rdvSend{
		id:   id,
		gate: pw.gate,
		tag:  pw.tag,
		seq:  pw.seq,
		body: pw.iov,
		req:  pw.req,
	}
	if !pw.gate.win.replace(pw, rts) {
		panic("core: rendezvous conversion of a wrapper not in the window")
	}
	if e.opts.Credits > 0 {
		pw.gate.dropData(pw) // rendezvous traffic is credit-exempt
	}
	e.stats.RdvStarted++
	e.traceEvent(trace.RdvStart, pw.gate.peer, -1, pw.tag, size, 0, "")
	return rts
}

// acceptRdv runs when an RTS matches a posted receive: grant it, or park
// it behind the MaxGrants cap.
func (e *Engine) acceptRdv(g *Gate, r *RecvRequest, h header) {
	key := rdvKey{src: g.peer, id: h.aux}
	_, dup := e.rdvRecv[key]
	if !dup {
		// The id may also be waiting for a grant slot: granting it twice
		// later would overwrite the live transaction.
		for _, pg := range e.rdvWait {
			if pg.g.peer == key.src && pg.h.aux == key.id {
				dup = true
				break
			}
		}
	}
	if dup {
		e.protoErr(g, fmt.Sprintf("duplicate rendezvous %v", key))
		r.complete(fmt.Errorf("%w: duplicate rendezvous id %d from node %d", ErrProtocol, h.aux, g.peer))
		return
	}
	if e.opts.MaxGrants > 0 && len(e.rdvRecv) >= e.opts.MaxGrants {
		e.rdvWait = append(e.rdvWait, pendingGrant{g: g, r: r, h: h})
		e.stats.RdvDeferred++
		return
	}
	e.grantRdv(g, r, h)
}

// grantRdv sends the CTS for a matched rendezvous request, clamped to
// the posted landing capacity: the sender streams only what the receiver
// can place, and a short landing area completes with ErrTruncated
// without the excess ever leaving the sender.
func (e *Engine) grantRdv(g *Gate, r *RecvRequest, h header) {
	grant := int(h.length)
	if room := r.iov.total(); grant > room {
		grant = room
		e.stats.RdvTruncated++
	}
	e.traceEvent(trace.RdvGrant, g.peer, -1, h.tag, grant, 0, "")
	if grant == 0 {
		// Nothing can land. The zero-byte CTS still goes out so the
		// sender retires its transaction state.
		g.pushCtrl(kindCTS, h.tag, 0, h.aux)
		r.n = 0
		var err error
		if h.length > 0 {
			err = ErrTruncated
		}
		r.complete(err)
		return
	}
	key := rdvKey{src: g.peer, id: h.aux}
	e.rdvRecv[key] = &rdvRecv{req: r, remaining: grant, granted: grant, total: int(h.length)}
	g.pushCtrl(kindCTS, h.tag, uint32(grant), h.aux)
}

// releaseGrants hands freed grant slots to deferred rendezvous requests
// in arrival order.
func (e *Engine) releaseGrants() {
	for len(e.rdvWait) > 0 && (e.opts.MaxGrants == 0 || len(e.rdvRecv) < e.opts.MaxGrants) {
		pg := e.rdvWait[0]
		e.rdvWait[0] = pendingGrant{}
		e.rdvWait = e.rdvWait[1:]
		e.grantRdv(pg.g, pg.r, pg.h)
	}
}

// onCTS runs on the original sender when the grant arrives: plan the
// granted span over the rails and stream it.
func (e *Engine) onCTS(g *Gate, h header) {
	rs, ok := e.rdvSend[h.aux]
	if !ok {
		e.protoErr(g, fmt.Sprintf("CTS for unknown rendezvous %d", h.aux))
		return
	}
	e.startBody(rs, int(h.length))
}

// startBody distributes the granted bytes per the strategy's plan and
// arranges completion accounting. granted may be smaller than the body
// (the receiver clamped the CTS to its landing area); the excess never
// leaves the sender.
func (e *Engine) startBody(rs *rdvSend, granted int) {
	size := rs.body.total()
	if granted < size {
		size = granted
	}
	plan := e.planBody(size)

	type chunk struct {
		drv      int
		off, len int
		rdma     bool
	}
	var chunks []chunk
	for _, share := range plan {
		if share.Size <= 0 {
			continue
		}
		caps := e.drvs[share.Rail].Caps()
		csize := share.Size
		if caps.RDMA {
			if e.opts.BodyChunk > 0 && e.opts.BodyChunk < csize {
				csize = e.opts.BodyChunk
			}
		} else {
			csize = caps.RdvThreshold
			if csize <= 0 {
				csize = defaultBodyChunkNonRDMA
			}
		}
		// One gather slot is reserved for the chunk header on non-RDMA
		// rails; respecting the capacity here keeps vector bodies within
		// the rail's native gather list.
		segCap := caps.MaxSegments - 1
		if segCap <= 0 {
			segCap = 1
		}
		for off := share.Offset; off < share.Offset+share.Size; {
			n := csize
			if rest := share.Offset + share.Size - off; n > rest {
				n = rest
			}
			n = rs.body.capSegs(off, n, segCap)
			chunks = append(chunks, chunk{drv: share.Rail, off: off, len: n, rdma: caps.RDMA})
			off += n
		}
	}
	if len(chunks) == 0 {
		// Zero-length (or zero-granted) body: nothing to stream, retire
		// the wrapper.
		rs.req.doneOne()
		e.stats.RdvCompleted++
		delete(e.rdvSend, rs.id)
		return
	}

	rs.req.add(len(chunks))
	rs.left = len(chunks)
	retire := func() {
		rs.left--
		if rs.left == 0 {
			e.stats.RdvCompleted++
			delete(e.rdvSend, rs.id)
		}
	}

	for _, c := range chunks {
		data := rs.body.slice(c.off, c.len)
		e.stats.BodyBytes += int64(c.len)
		if c.rdma {
			e.stats.PerDriverBytes[c.drv] += int64(c.len)
			e.stats.WireBytes += int64(c.len)
			aux := uint64(rs.id)<<32 | uint64(uint32(c.off))
			req := rs.req
			drv := c.drv
			size := c.len
			t0 := e.world.Now()
			err := e.drvs[c.drv].Send(rs.gate.peer, simnet.TxRdma, data, aux, func() {
				e.samplers[drv].observe(size, e.world.Now()-t0)
				e.notifyComplete(drv, rs.gate.peer, size, 0, e.world.Now()-t0)
				req.doneOne()
				retire()
			})
			if err != nil {
				panic("core: rendezvous body submit failed: " + err.Error())
			}
			continue
		}
		// Non-RDMA rail: the chunk flows through the window as an eager
		// entry bound for the registered landing buffer.
		pw := &packet{
			gate:   rs.gate,
			kind:   kindChunk,
			flags:  FlagUnordered,
			tag:    rs.tag,
			seq:    SeqNum(uint32(c.off)), // chunk offset rides the seq field
			iov:    data,
			size:   uint32(c.len),
			aux:    rs.id,
			driver: c.drv,
			req:    rs.req, // feed retires one unit per chunk entry
			onSent: retire,
		}
		e.submit(pw)
	}
	// Retire the unit the original Isend registered, now that the chunk
	// units carry the completion.
	rs.req.doneOne()
	e.pumpAll()
}

// onBody places an arriving body fragment (zero-copy: no host copy is
// charged; RDMA and GM-style rendezvous land directly in the registered
// buffer).
func (e *Engine) onBody(src simnet.NodeID, id uint32, offset int, data []byte) {
	key := rdvKey{src: src, id: id}
	rr, ok := e.rdvRecv[key]
	if !ok {
		e.protoErr(e.Gate(src), fmt.Sprintf("body fragment for unknown rendezvous %v", key))
		return
	}
	r := rr.req
	r.iov.copyAt(offset, data)
	rr.remaining -= len(data)
	if rr.remaining < 0 {
		e.protoErr(e.Gate(src), fmt.Sprintf("rendezvous %v over-delivered", key))
		rr.remaining = 0
	}
	e.traceEvent(trace.RdvBody, src, -1, r.tag, len(data), 0, "")
	if rr.remaining == 0 {
		delete(e.rdvRecv, key)
		var err error
		r.n = rr.granted
		if rr.total > rr.granted {
			err = ErrTruncated
		}
		r.complete(err)
		e.releaseGrants()
	}
}
