// Package core implements the NewMadeleine communication engine — the
// primary contribution of the paper. The engine is organized in the three
// layers of Figure 1:
//
//   - the collect layer wraps each piece of application data in a packet
//     wrapper carrying the metadata needed for identification on the
//     receiving side (tag, sequence number, source) and inserts it into
//     the submission lists: one list per driver for technology-pinned
//     traffic, plus a common list for automatic load balancing;
//
//   - the optimizing and scheduling layer keeps the packet wrappers in an
//     optimization window while the NICs are busy. As soon as a NIC
//     becomes idle, the selected strategy analyzes the backlog and
//     synthesizes the next ready-to-send packet: several wrappers —
//     possibly from different logical flows — may be aggregated into one
//     physical packet, wrappers may be reordered, large bodies are turned
//     into rendezvous requests, and bodies may be split across rails.
//     Strategies are external: they implement the public SPI of package
//     sched, and this package only adapts the window to the SPI views
//     and validates the elections that come back (see strategy.go);
//
//   - the transfer layer (package drivers) controls the NICs through the
//     minimal network API and calls back into the scheduler whenever a
//     card drains.
//
// The receive side is defended against overload: with Options.Credits
// the collect layer holds eager data wrappers back once the peer's
// landing credits are exhausted (credit replenishment rides outbound
// traffic as an aggregable control entry), Options.MaxGrants bounds
// concurrent inbound rendezvous transactions, and protocol anomalies on
// the receive path are counted per gate instead of crashing the node.
//
// Two application interfaces are provided, matching the paper's §3.4: the
// Madeleine-style incremental pack/unpack interface (a message is several
// pieces of data located anywhere in user space, delimited by begin/end
// calls) and a tagged Isend/Irecv/Wait/Test interface on which MAD-MPI
// (package madmpi) is built.
//
// # Engine performance
//
// The engine's own cost is held down by free-list recycling (pool.go):
// packet wrappers, output trains, held receive entries and the
// per-train encode scratch are recycled on plain per-engine slices.
// sync.Pool is deliberately not used — its GC-driven emptying would
// couple allocation behavior to collector timing in packages that
// promise determinism. The ownership rules that make recycling safe
// are documented in pool.go; the short form is that wrappers own their
// iovec backing (isendIov copies the caller's segment headers), the
// NIC snapshots gather segments at Submit time, and strategies cannot
// retain window views (the spileak analyzer enforces the SPI aliasing
// contract). Options.NoRecycle turns every pool off for A/B
// comparison: the replayed timeline must be byte-identical either way,
// which the pooling property test in internal/replay asserts. The
// engine-speed and engine-allocs figures in internal/bench track the
// resulting ops/sec and allocs/op per PR, and allocation-regression
// pins live in alloc_test.go.
package core
