package core

// iovec is a gather/scatter list: one logical byte range made of several
// contiguous segments anywhere in user space. It is the engine-internal
// form of the public [][]byte accepted by Isendv/Irecvv — vector wrappers
// travel as one wire entry whose payload is the segment concatenation, so
// the NIC gathers on send and the receive path scatters on delivery,
// without intermediate staging copies.
type iovec [][]byte

// singleIov wraps one contiguous buffer (possibly nil) as an iovec.
func singleIov(buf []byte) iovec {
	if buf == nil {
		return iovec{nil}
	}
	return iovec{buf}
}

// total is the logical length: the sum of the segment lengths.
func (v iovec) total() int {
	n := 0
	for _, s := range v {
		n += len(s)
	}
	return n
}

// segCount counts the non-empty segments (what a NIC gather list needs).
func (v iovec) segCount() int {
	n := 0
	for _, s := range v {
		if len(s) > 0 {
			n++
		}
	}
	return n
}

// segLens returns the segment lengths (empty segments included, so a
// recorded layout replays exactly as it was submitted).
func (v iovec) segLens() []int {
	out := make([]int, len(v))
	for i, s := range v {
		out[i] = len(s)
	}
	return out
}

// appendSegs appends the non-empty segments to a gather list.
func (v iovec) appendSegs(segs [][]byte) [][]byte {
	for _, s := range v {
		if len(s) > 0 {
			segs = append(segs, s)
		}
	}
	return segs
}

// slice returns the sub-range [off, off+n) as an iovec sharing the
// underlying segments (zero-copy). It panics when the range exceeds the
// logical length.
func (v iovec) slice(off, n int) iovec {
	if n == 0 {
		return nil
	}
	var out iovec
	for _, s := range v {
		if off >= len(s) {
			off -= len(s)
			continue
		}
		take := len(s) - off
		if take > n {
			take = n
		}
		out = append(out, s[off:off+take])
		n -= take
		off = 0
		if n == 0 {
			return out
		}
	}
	panic("core: iovec slice out of range")
}

// capSegs returns the largest m <= n such that slice(off, m) spans at
// most maxSegs segments — how rendezvous chunks stay within a rail's
// native gather capacity. It returns at least one segment's worth of
// bytes whenever n > 0 and off is in range.
func (v iovec) capSegs(off, n, maxSegs int) int {
	if maxSegs <= 0 {
		maxSegs = 1
	}
	taken, segs := 0, 0
	for _, s := range v {
		if off >= len(s) {
			off -= len(s)
			continue
		}
		avail := len(s) - off
		if avail > n-taken {
			avail = n - taken
		}
		segs++
		if segs > maxSegs {
			return taken
		}
		taken += avail
		off = 0
		if taken == n {
			return n
		}
	}
	return taken
}

// copyAt scatters data into the iovec starting at logical offset off,
// dropping whatever does not fit (the truncation contract of receives).
// It returns the number of bytes placed.
func (v iovec) copyAt(off int, data []byte) int {
	placed := 0
	for _, s := range v {
		if len(data) == 0 {
			break
		}
		if off >= len(s) {
			off -= len(s)
			continue
		}
		n := copy(s[off:], data)
		data = data[n:]
		placed += n
		off = 0
	}
	return placed
}

// flatten copies the segments into one contiguous buffer (the software
// gather fallback when a wrapper exceeds the rail's segment capacity).
func (v iovec) flatten() []byte {
	out := make([]byte, 0, v.total())
	for _, s := range v {
		out = append(out, s...)
	}
	return out
}
