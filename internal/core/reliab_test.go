package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// lossyPair builds a 2-node fabric with the given networks and fault
// profile, and one reliability-enabled engine per node.
func lossyPair(t *testing.T, opts Options, fp simnet.FaultProfile, profs ...simnet.Profile) (*sim.World, *Engine, *Engine) {
	t.Helper()
	if len(profs) == 0 {
		profs = []simnet.Profile{simnet.MX10G()}
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	for _, p := range profs {
		if _, err := f.AddNetwork(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.SetFaults(fp); err != nil {
		t.Fatal(err)
	}
	opts.Reliability = true
	mk := func(id simnet.NodeID) *Engine {
		e, err := New(f, id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return w, mk(0), mk(1)
}

// fillSeq writes a deterministic, position-dependent pattern.
func fillSeq(buf []byte, salt byte) {
	for i := range buf {
		buf[i] = byte(i)*7 + salt
	}
}

func TestReliableEagerUnderHeavyDrop(t *testing.T) {
	const n, size = 60, 512
	w, e0, e1 := lossyPair(t, DefaultOptions(),
		simnet.FaultProfile{Seed: 11, Rails: []simnet.RailFaults{{DropProb: 0.3}}})
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			msg := make([]byte, size)
			fillSeq(msg, byte(i))
			if err := e0.Gate(1).Send(p, 7, msg); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, size)
		want := make([]byte, size)
		for i := 0; i < n; i++ {
			got, err := e1.Gate(0).Recv(p, 7, buf)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			fillSeq(want, byte(i))
			if got != size || !bytes.Equal(buf, want) {
				t.Fatalf("recv %d: corrupt or out-of-order payload (%d bytes)", i, got)
			}
		}
	})
	run(t, w)
	st := e0.Stats()
	if st.Retransmits == 0 {
		t.Error("30% drop produced no retransmits")
	}
	if e1.Stats().ProtocolErrors != 0 {
		t.Errorf("receiver counted %d protocol errors", e1.Stats().ProtocolErrors)
	}
}

func TestReliableDupAndReorder(t *testing.T) {
	const n, size = 80, 256
	w, e0, e1 := lossyPair(t, DefaultOptions(),
		simnet.FaultProfile{Seed: 4, Rails: []simnet.RailFaults{{DropProb: 0.1, DupProb: 0.25, ReorderProb: 0.35}}})
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			msg := make([]byte, size)
			fillSeq(msg, byte(i))
			if err := e0.Gate(1).Send(p, Tag(i%3), msg); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, size)
		want := make([]byte, size)
		for i := 0; i < n; i++ {
			got, err := e1.Gate(0).Recv(p, Tag(i%3), buf)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			fillSeq(want, byte(i))
			if got != size || !bytes.Equal(buf, want) {
				t.Fatalf("recv %d: wrong payload — duplicate or reordered delivery leaked through", i)
			}
		}
	})
	run(t, w)
	s0, s1 := e0.Stats(), e1.Stats()
	if s0.DupAcks == 0 && s1.ReorderedAccepts == 0 && s0.Retransmits == 0 {
		t.Errorf("faulty fabric left no reliability trace: %+v", s0)
	}
	if s1.ProtocolErrors != 0 {
		t.Errorf("receiver counted %d protocol errors", s1.ProtocolErrors)
	}
}

func TestReliableRendezvousUnderDrop(t *testing.T) {
	// Bodies ride RDMA below the link layer on mx10g: loss is repaired by
	// the receiver's progress watchdog re-pushing the CTS.
	const bodies = 6
	const size = 256 << 10
	w, e0, e1 := lossyPair(t, DefaultOptions(),
		simnet.FaultProfile{Seed: 9, Rails: []simnet.RailFaults{{DropProb: 0.25}}})
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < bodies; i++ {
			msg := make([]byte, size)
			fillSeq(msg, byte(i))
			if err := e0.Gate(1).Send(p, 5, msg); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < bodies; i++ {
			buf := make([]byte, size)
			got, err := e1.Gate(0).Recv(p, 5, buf)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			want := make([]byte, size)
			fillSeq(want, byte(i))
			if got != size || !bytes.Equal(buf, want) {
				t.Fatalf("recv %d: corrupt body", i)
			}
		}
	})
	run(t, w)
	if got := e0.Stats().RdvCompleted; got != bodies {
		t.Errorf("RdvCompleted = %d, want %d", got, bodies)
	}
	if len(e0.rdvSend) != 0 || len(e1.rdvRecv) != 0 {
		t.Errorf("leaked rendezvous state: %d send, %d recv", len(e0.rdvSend), len(e1.rdvRecv))
	}
}

func TestRailFailoverAndRecovery(t *testing.T) {
	// Rail 1 is dark for its first 3ms: a send pinned to it must fail
	// over to rail 0 mid-flow, and the probe must bring rail 1 back once
	// the outage ends.
	opts := DefaultOptions()
	opts.RetransmitTimeout = 100 * sim.Microsecond
	opts.RetransmitBudget = 3
	fp := simnet.FaultProfile{Seed: 2, Rails: []simnet.RailFaults{
		{},
		{Outages: []simnet.Outage{{At: 0, Duration: sim.FromMicroseconds(3000)}}},
	}}
	w, e0, e1 := lossyPair(t, opts, fp, simnet.MX10G(), simnet.MX10G())
	msg1 := make([]byte, 512)
	fillSeq(msg1, 1)
	msg2 := make([]byte, 512)
	fillSeq(msg2, 2)
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Isend(p, 9, msg1, OnRail(1)).Wait(p); err != nil {
			t.Errorf("pinned send during outage: %v", err)
		}
		// Wait past the outage end plus a probe interval, then use the
		// recovered rail again.
		for w.Now() < sim.FromMicroseconds(4000) {
			p.Sleep(100 * sim.Microsecond)
		}
		if err := e0.Gate(1).Isend(p, 9, msg2, OnRail(1)).Wait(p); err != nil {
			t.Errorf("pinned send after recovery: %v", err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i, want := range [][]byte{msg1, msg2} {
			buf := make([]byte, 512)
			got, err := e1.Gate(0).Recv(p, 9, buf)
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if got != len(want) || !bytes.Equal(buf[:got], want) {
				t.Fatalf("recv %d: corrupt payload", i)
			}
		}
	})
	run(t, w)
	st := e0.Stats()
	if st.FailedRails != 1 {
		t.Errorf("FailedRails = %d, want 1", st.FailedRails)
	}
	if st.RecoveredRails != 1 {
		t.Errorf("RecoveredRails = %d, want 1", st.RecoveredRails)
	}
	if st.Retransmits < int(opts.RetransmitBudget) {
		t.Errorf("Retransmits = %d, want >= %d", st.Retransmits, opts.RetransmitBudget)
	}
}

// reliableRun drives a fixed mixed workload over a lossy rail and
// returns both engines' stats plus the virtual completion time.
func reliableRun(t *testing.T, seed uint64) (Stats, Stats, sim.Time) {
	t.Helper()
	w, e0, e1 := lossyPair(t, DefaultOptions(),
		simnet.FaultProfile{Seed: seed, Rails: []simnet.RailFaults{{DropProb: 0.15, DupProb: 0.1, ReorderProb: 0.2}}})
	const n = 40
	var done sim.Time
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			size := 64 + i*131
			msg := make([]byte, size)
			fillSeq(msg, byte(i))
			if err := e0.Gate(1).Send(p, Tag(i%4), msg); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			size := 64 + i*131
			buf := make([]byte, size)
			got, err := e1.Gate(0).Recv(p, Tag(i%4), buf)
			if err != nil || got != size {
				t.Fatalf("recv %d: n=%d err=%v", i, got, err)
			}
			want := make([]byte, size)
			fillSeq(want, byte(i))
			if !bytes.Equal(buf, want) {
				t.Fatalf("recv %d: corrupt payload", i)
			}
		}
		done = w.Now()
	})
	run(t, w)
	return e0.Stats(), e1.Stats(), done
}

func TestReliableSeededDeterminism(t *testing.T) {
	a0, a1, at := reliableRun(t, 21)
	b0, b1, bt := reliableRun(t, 21)
	if !reflect.DeepEqual(a0, b0) || !reflect.DeepEqual(a1, b1) {
		t.Errorf("same seed, different stats:\n%+v\n%+v\n%+v\n%+v", a0, b0, a1, b1)
	}
	if at != bt {
		t.Errorf("same seed, different completion: %v vs %v", at, bt)
	}
	c0, _, ct := reliableRun(t, 22)
	if reflect.DeepEqual(a0, c0) && at == ct {
		t.Error("different seeds produced identical runs")
	}
	if a0.Retransmits == 0 {
		t.Errorf("lossy run shows no retransmits: %s", fmt.Sprintf("%+v", a0))
	}
}

func TestProbeBudgetAbandonsPermanentOutage(t *testing.T) {
	// Rail 1 never comes back. Without Options.ProbeBudget the recovery
	// probe reschedules itself forever and World.Run never returns (the
	// regression this test pins down); with a budget the probe gives the
	// rail up after N unanswered pings and the world drains on its own —
	// no RunUntil horizon needed.
	opts := DefaultOptions()
	opts.RetransmitTimeout = 100 * sim.Microsecond
	opts.RetransmitBudget = 3
	opts.ProbeBudget = 5
	fp := simnet.FaultProfile{Seed: 3, Rails: []simnet.RailFaults{
		{},
		{Outages: []simnet.Outage{{At: 0, Duration: 1000 * sim.Second}}},
	}}
	w, e0, e1 := lossyPair(t, opts, fp, simnet.MX10G(), simnet.MX10G())
	msg := make([]byte, 512)
	fillSeq(msg, 1)
	w.Spawn("send", func(p *sim.Proc) {
		// Pinned to the dead rail: must still arrive via failover.
		if err := e0.Gate(1).Isend(p, 9, msg, OnRail(1)).Wait(p); err != nil {
			t.Errorf("pinned send during permanent outage: %v", err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		buf := make([]byte, 512)
		got, err := e1.Gate(0).Recv(p, 9, buf)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if got != len(msg) || !bytes.Equal(buf[:got], msg) {
			t.Fatal("corrupt payload after failover")
		}
	})
	run(t, w) // plain Run: terminates only if the probe gives up
	st := e0.Stats()
	if st.FailedRails != 1 {
		t.Errorf("FailedRails = %d, want 1", st.FailedRails)
	}
	if st.AbandonedRails != 1 {
		t.Errorf("AbandonedRails = %d, want 1", st.AbandonedRails)
	}
	if st.RecoveredRails != 0 {
		t.Errorf("RecoveredRails = %d, want 0 (the rail never answered)", st.RecoveredRails)
	}
}
