package core

import (
	"bytes"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Tests for the §3.2 alternative scheduling modes (anticipation, backlog
// flush) and the network sampling feature.

// burstExchange pushes n messages one way and returns the completion time
// and sender stats.
func burstExchange(t *testing.T, opts Options, n, size int) (sim.Time, Stats) {
	t.Helper()
	w, e0, e1 := testWorld(t, opts)
	var done sim.Time
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, Tag(i), make([]byte, size))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		reqs := make([]*RecvRequest, n)
		for i := 0; i < n; i++ {
			reqs[i] = e1.Gate(0).Irecv(p, Tag(i), make([]byte, size))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
		done = p.Now()
	})
	run(t, w)
	return done, e0.Stats()
}

func TestAnticipationDeliversEverything(t *testing.T) {
	opts := DefaultOptions()
	opts.Anticipate = true
	done, st := burstExchange(t, opts, 24, 128)
	if done == 0 {
		t.Fatal("no completion")
	}
	if st.EntriesSent != 24 {
		t.Errorf("EntriesSent = %d, want 24", st.EntriesSent)
	}
}

func TestAnticipationPreservesFlowOrder(t *testing.T) {
	opts := DefaultOptions()
	opts.Anticipate = true
	w, e0, e1 := testWorld(t, opts)
	const n = 30
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, 1, []byte{byte(i)})
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(i) {
				t.Fatalf("position %d got %d", i, buf[0])
			}
		}
	})
	run(t, w)
}

func TestAnticipationNotSlowerOnBursts(t *testing.T) {
	// Anticipation hides the election cost behind the previous
	// transmission; on a steady burst it must not lose to just-in-time.
	jit := DefaultOptions()
	ant := DefaultOptions()
	ant.Anticipate = true
	tJit, _ := burstExchange(t, jit, 32, 64)
	tAnt, _ := burstExchange(t, ant, 32, 64)
	// Anticipation trades aggregation for readiness: staged packets miss
	// wrappers that arrive during the transmission, so it runs somewhat
	// behind just-in-time on bursts — the reason it is not the default
	// (and an ablation worth keeping). Bound the regression.
	if float64(tAnt) > float64(tJit)*1.25 {
		t.Errorf("anticipation %v vs just-in-time %v: regression beyond the expected trade-off", tAnt, tJit)
	}
}

func TestAnticipationTradesAggregation(t *testing.T) {
	// The reason just-in-time is the default: staging early forecloses
	// aggregating wrappers that arrive during the transmission. The
	// anticipating engine can only aggregate what it saw at staging time.
	jit := DefaultOptions()
	ant := DefaultOptions()
	ant.Anticipate = true
	_, stJit := burstExchange(t, jit, 24, 128)
	_, stAnt := burstExchange(t, ant, 24, 128)
	if stAnt.AggregationRatio() > stJit.AggregationRatio() {
		t.Errorf("anticipation aggregated more (%.2f) than just-in-time (%.2f); staging should never see a bigger backlog",
			stAnt.AggregationRatio(), stJit.AggregationRatio())
	}
}

func TestFlushBacklogForcesEarlyOutput(t *testing.T) {
	// With a flush threshold the backlog is cut into packets of at most
	// that many wrappers, queued behind the busy NIC.
	flush := DefaultOptions()
	flush.FlushBacklog = 4
	_, st := burstExchange(t, flush, 16, 64)
	if st.MaxEntriesPerPacket > 4+1 {
		t.Errorf("MaxEntriesPerPacket = %d with FlushBacklog=4", st.MaxEntriesPerPacket)
	}
	if st.OutputPackets < 4 {
		t.Errorf("OutputPackets = %d, want the burst cut into several flushes", st.OutputPackets)
	}
}

func TestFlushBacklogDeliversIntact(t *testing.T) {
	flush := DefaultOptions()
	flush.FlushBacklog = 3
	w, e0, e1 := testWorld(t, flush)
	rng := sim.NewRNG(77)
	const n = 20
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = make([]byte, rng.Range(1, 2000))
		rng.Bytes(payloads[i])
	}
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, 5, payloads[i])
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 2048)
			got, err := e1.Gate(0).Recv(p, 5, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf[:got], payloads[i]) {
				t.Fatalf("message %d corrupted", i)
			}
		}
	})
	run(t, w)
}

func TestSamplerWarmupAndEstimate(t *testing.T) {
	var s railSampler
	if s.estimate() != 0 {
		t.Error("estimate before any observation should be 0")
	}
	s.observe(100, sim.Microsecond) // below samplerMinBytes: ignored
	if s.samples != 0 {
		t.Error("tiny transactions must not be sampled")
	}
	s.observe(1<<20, 0) // zero duration: ignored
	if s.samples != 0 {
		t.Error("zero-duration transactions must not be sampled")
	}
	for i := 0; i < samplerWarmup-1; i++ {
		s.observe(1<<20, sim.Millisecond)
		if s.estimate() != 0 {
			t.Fatalf("estimate available after %d samples, warmup is %d", i+1, samplerWarmup)
		}
	}
	s.observe(1<<20, sim.Millisecond)
	got := s.estimate()
	want := float64(1<<20) / sim.Millisecond.Seconds()
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("estimate %.0f B/s, want ~%.0f", got, want)
	}
}

func TestSamplerTracksChanges(t *testing.T) {
	var s railSampler
	for i := 0; i < 10; i++ {
		s.observe(1<<20, sim.Millisecond) // ~1 GB/s
	}
	slow := s.estimate()
	for i := 0; i < 20; i++ {
		s.observe(1<<20, 4*sim.Millisecond) // ~250 MB/s
	}
	if s.estimate() > slow/2 {
		t.Errorf("EWMA stuck at %.0f after a sustained slowdown from %.0f", s.estimate(), slow)
	}
}

func TestEngineSamplesRealTraffic(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if err := e0.Gate(1).Send(p, 1, make([]byte, 1<<20)); err != nil {
				t.Error(err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 1<<20)); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	bw := e0.SampledBandwidth(0)
	if bw == 0 {
		t.Fatal("sampler never warmed up on 5 x 1MB rendezvous bodies")
	}
	nominal := simnet.MX10G().Bandwidth
	if bw < nominal*0.5 || bw > nominal*1.2 {
		t.Errorf("sampled %.0f MB/s, nominal %.0f MB/s: should be in range", bw/1e6, nominal/1e6)
	}
	if e0.SampledBandwidth(99) != 0 {
		t.Error("out-of-range rail must report 0")
	}
}

func TestSampledSplitRebalances(t *testing.T) {
	// Split strategy with sampling: after traffic has flowed, shares
	// follow the measured rates. With symmetric rails and symmetric
	// profiles the shares stay near the nominal ratio; this test checks
	// the plumbing end to end by confirming both rails carry body bytes
	// proportional to bandwidth even when planning from samples.
	opts := DefaultOptions()
	opts.Strategy = "split"
	w, e0, e1 := testWorld(t, opts, simnet.MX10G(), simnet.QsNetII())
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if err := e0.Gate(1).Send(p, 1, make([]byte, 2<<20)); err != nil {
				t.Error(err)
			}
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 2<<20)); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	if e0.SampledBandwidth(0) == 0 || e0.SampledBandwidth(1) == 0 {
		t.Fatal("both rails should have warm samplers after 6 x 2MB split bodies")
	}
	st := e0.Stats()
	share := float64(st.PerDriverBytes[0]) / float64(st.PerDriverBytes[0]+st.PerDriverBytes[1])
	if share < 0.45 || share > 0.75 {
		t.Errorf("MX share %.2f after sampled planning, want near the bandwidth ratio", share)
	}
}

func TestModesComposeWithStrategies(t *testing.T) {
	// Anticipation and flush must work under every strategy without
	// losing or reordering data.
	for _, strat := range []string{"default", "aggreg", "split", "prio"} {
		for _, mode := range []string{"anticipate", "flush"} {
			strat, mode := strat, mode
			t.Run(strat+"/"+mode, func(t *testing.T) {
				opts := DefaultOptions()
				opts.Strategy = strat
				switch mode {
				case "anticipate":
					opts.Anticipate = true
				case "flush":
					opts.FlushBacklog = 3
				}
				w, e0, e1 := testWorld(t, opts)
				const n = 15
				w.Spawn("send", func(p *sim.Proc) {
					for i := 0; i < n; i++ {
						e0.Gate(1).Isend(p, 2, []byte{byte(i), byte(i + 1)})
					}
				})
				w.Spawn("recv", func(p *sim.Proc) {
					for i := 0; i < n; i++ {
						buf := make([]byte, 2)
						if _, err := e1.Gate(0).Recv(p, 2, buf); err != nil {
							t.Fatal(err)
						}
						if buf[0] != byte(i) || buf[1] != byte(i+1) {
							t.Fatalf("message %d corrupted: %v", i, buf)
						}
					}
				})
				run(t, w)
			})
		}
	}
}
