package core

import (
	"errors"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Request errors.
var (
	ErrTruncated  = errors.New("core: message longer than the receive buffer")
	ErrNoRequests = errors.New("core: WaitAny with no requests")
)

// Request is the unified completion handle of the engine: every
// nonblocking operation — a send, a receive, a packed message, a group of
// operations layered above (MAD-MPI requests) — presents the same
// isend/irecv/wait/test surface of the paper's API set.
//
// The interface is sealed: completion is always signalled through an
// engine's shared condition variable, so outside implementations cannot
// exist. Compose operations with RequestGroup instead.
type Request interface {
	// Done reports whether the request has completed.
	Done() bool
	// Test is the non-blocking completion probe: like Done it reports
	// completion without ever blocking.
	Test() bool
	// Err returns the completion error: nil while in flight or on
	// success.
	Err() error
	// Wait blocks the process until the request completes and returns
	// the completion error. Waiting on an already-completed request
	// returns the stored error immediately.
	Wait(p *sim.Proc) error
	// Bytes is the payload size the request moved: the submitted bytes
	// of a send, the received bytes of a completed receive.
	Bytes() int

	// completionCond exposes the engine condition variable the request
	// completes on (nil for immediately-failed requests). It seals the
	// interface and lets WaitAny block on engine progress.
	completionCond() *sim.Cond
}

// WaitAll blocks until every request has completed and returns the first
// error encountered, in argument order.
func WaitAll(p *sim.Proc, reqs ...Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// waitAnyPollInterval paces WaitAny when its requests complete on
// different engines (no single condition variable covers them all).
const waitAnyPollInterval = sim.Microsecond

// WaitAny blocks until at least one request has completed and returns its
// index and completion error. Already-completed requests are returned
// immediately (lowest index first). When every request completes on one
// engine the wait blocks on that engine's shared condition variable;
// requests spanning engines fall back to deterministic virtual-time
// polling.
func WaitAny(p *sim.Proc, reqs ...Request) (int, error) {
	if len(reqs) == 0 {
		return -1, ErrNoRequests
	}
	for {
		shared, mixed := (*sim.Cond)(nil), false
		for i, r := range reqs {
			if r.Test() {
				return i, r.Err()
			}
			switch c := r.completionCond(); {
			case c == nil:
				// An incomplete request without a cond: its members span
				// engines (a mixed RequestGroup); poll.
				mixed = true
			case shared == nil:
				shared = c
			case shared != c:
				mixed = true
			}
		}
		if mixed || shared == nil {
			// Blocking on any single cond could sleep through the other
			// engines' completions; bounded virtual-time polling stays
			// deterministic and correct.
			p.Sleep(waitAnyPollInterval)
			continue
		}
		shared.Wait(p)
	}
}

// request is the completion state shared by send and receive requests.
// Completion is signalled through the engine-wide condition variable;
// simulated processes block in Wait, engine callbacks never block.
type request struct {
	eng  *Engine
	done bool
	err  error
}

// Done reports whether the request has completed.
func (r *request) Done() bool { return r.done }

// Err returns the completion error, nil while in flight or on success.
func (r *request) Err() error { return r.err }

// Test is the non-blocking completion probe of the paper's API set
// (isend/irecv/wait/test): it reports completion without blocking.
func (r *request) Test() bool { return r.done }

// Wait blocks the process until the request completes and returns the
// completion error.
func (r *request) Wait(p *sim.Proc) error {
	for !r.done {
		r.eng.cond.Wait(p)
	}
	return r.err
}

func (r *request) completionCond() *sim.Cond {
	if r.eng == nil {
		return nil
	}
	return r.eng.cond
}

// complete finalizes the request and wakes every waiter.
func (r *request) complete(err error) {
	if r.done {
		return
	}
	r.done = true
	r.err = err
	r.eng.cond.Broadcast()
}

// SendRequest tracks one submitted message (one wrapper for Isend;
// several for a packed message). It completes when the NIC has finished
// with every wrapper — for rendezvous sends, when the whole body has
// streamed out.
type SendRequest struct {
	request
	tag     Tag
	bytes   int
	pending int // wrappers (or body chunks) still in flight
}

// Tag returns the flow tag of the send.
func (r *SendRequest) Tag() Tag { return r.tag }

// Bytes returns the total payload size of the send.
func (r *SendRequest) Bytes() int { return r.bytes }

// add registers n more in-flight units on the request.
func (r *SendRequest) add(n int) { r.pending += n }

// doneOne retires one in-flight unit, completing the request at zero.
func (r *SendRequest) doneOne() {
	r.pending--
	if r.pending == 0 {
		r.complete(nil)
	}
	if r.pending < 0 {
		panic("core: send request over-completed")
	}
}

// RecvRequest is a posted receive. It matches incoming wrappers by
// (tag & Mask) == Want, in arrival order, FIFO against other posted
// receives of the same gate. The landing area is an iovec: Irecv posts a
// single segment, Irecvv scatters into many.
type RecvRequest struct {
	request
	want Tag
	mask Tag
	iov  iovec

	matched bool
	n       int
	tag     Tag
	src     simnet.NodeID
}

// N returns the received payload size (valid once Done).
func (r *RecvRequest) N() int { return r.n }

// Bytes returns the received payload size (valid once Done).
func (r *RecvRequest) Bytes() int { return r.n }

// Tag returns the tag of the matched message (valid once matched; useful
// with masked receives).
func (r *RecvRequest) Tag() Tag { return r.tag }

// Source returns the sending node (valid once matched).
func (r *RecvRequest) Source() simnet.NodeID { return r.src }

// matches reports whether an incoming tag satisfies this receive.
func (r *RecvRequest) matchesTag(tag Tag) bool { return tag&r.mask == r.want }

// RequestGroup composes several requests into one: it completes when
// every member has, and its error is the first member error. MAD-MPI
// builds its Request on it; applications can use it to treat a whole
// exchange as one handle. The zero value is an empty, completed group.
type RequestGroup struct {
	reqs []Request
	err  error // immediate validation error, set by Fail
}

// NewRequestGroup builds a group over the given requests.
func NewRequestGroup(reqs ...Request) *RequestGroup {
	return &RequestGroup{reqs: reqs}
}

// FailedRequest returns a request that is already complete with err: the
// unified way to report immediate validation failures through the
// nonblocking API.
func FailedRequest(err error) *RequestGroup {
	return &RequestGroup{err: err}
}

// Add appends one more request to the group.
func (g *RequestGroup) Add(r Request) { g.reqs = append(g.reqs, r) }

// Requests returns the members in add order.
func (g *RequestGroup) Requests() []Request { return g.reqs }

// Done reports whether every member has completed.
func (g *RequestGroup) Done() bool {
	if g.err != nil {
		return true
	}
	for _, r := range g.reqs {
		if !r.Done() {
			return false
		}
	}
	return true
}

// Test reports completion of the whole group without blocking.
func (g *RequestGroup) Test() bool { return g.Done() }

// Err returns the immediate error, or the first member error once the
// members complete.
func (g *RequestGroup) Err() error {
	if g.err != nil {
		return g.err
	}
	for _, r := range g.reqs {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Wait blocks until every member completes and returns the first error.
func (g *RequestGroup) Wait(p *sim.Proc) error {
	if g.err != nil {
		return g.err
	}
	return WaitAll(p, g.reqs...)
}

// Bytes sums the member payload sizes.
func (g *RequestGroup) Bytes() int {
	n := 0
	for _, r := range g.reqs {
		n += r.Bytes()
	}
	return n
}

// completionCond reports the one condition variable every member
// completes on, or nil when members span engines (WaitAny then polls).
func (g *RequestGroup) completionCond() *sim.Cond {
	var shared *sim.Cond
	for _, r := range g.reqs {
		c := r.completionCond()
		if c == nil {
			continue
		}
		if shared == nil {
			shared = c
		} else if shared != c {
			return nil
		}
	}
	return shared
}
