package core

import (
	"errors"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Request errors.
var (
	ErrTruncated = errors.New("core: message longer than the receive buffer")
)

// request is the completion state shared by send and receive requests.
// Completion is signalled through the engine-wide condition variable;
// simulated processes block in Wait, engine callbacks never block.
type request struct {
	eng  *Engine
	done bool
	err  error
}

// Done reports whether the request has completed.
func (r *request) Done() bool { return r.done }

// Err returns the completion error, nil while in flight or on success.
func (r *request) Err() error { return r.err }

// Test is the non-blocking completion probe of the paper's API set
// (isend/irecv/wait/test): it reports completion without blocking.
func (r *request) Test() bool { return r.done }

// Wait blocks the process until the request completes and returns the
// completion error.
func (r *request) Wait(p *sim.Proc) error {
	for !r.done {
		r.eng.cond.Wait(p)
	}
	return r.err
}

// complete finalizes the request and wakes every waiter.
func (r *request) complete(err error) {
	if r.done {
		return
	}
	r.done = true
	r.err = err
	r.eng.cond.Broadcast()
}

// SendRequest tracks one submitted message (one wrapper for Isend;
// several for a packed message). It completes when the NIC has finished
// with every wrapper — for rendezvous sends, when the whole body has
// streamed out.
type SendRequest struct {
	request
	tag     Tag
	bytes   int
	pending int // wrappers (or body chunks) still in flight
}

// Tag returns the flow tag of the send.
func (r *SendRequest) Tag() Tag { return r.tag }

// Bytes returns the total payload size of the send.
func (r *SendRequest) Bytes() int { return r.bytes }

// add registers n more in-flight units on the request.
func (r *SendRequest) add(n int) { r.pending += n }

// doneOne retires one in-flight unit, completing the request at zero.
func (r *SendRequest) doneOne() {
	r.pending--
	if r.pending == 0 {
		r.complete(nil)
	}
	if r.pending < 0 {
		panic("core: send request over-completed")
	}
}

// RecvRequest is a posted receive. It matches incoming wrappers by
// (tag & Mask) == Want, in arrival order, FIFO against other posted
// receives of the same gate.
type RecvRequest struct {
	request
	want Tag
	mask Tag
	buf  []byte

	matched bool
	n       int
	tag     Tag
	src     simnet.NodeID
}

// N returns the received payload size (valid once Done).
func (r *RecvRequest) N() int { return r.n }

// Tag returns the tag of the matched message (valid once matched; useful
// with masked receives).
func (r *RecvRequest) Tag() Tag { return r.tag }

// Source returns the sending node (valid once matched).
func (r *RecvRequest) Source() simnet.NodeID { return r.src }

// matches reports whether an incoming tag satisfies this receive.
func (r *RecvRequest) matchesTag(tag Tag) bool { return tag&r.mask == r.want }
