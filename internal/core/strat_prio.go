package core

import "nmad/internal/drivers"

// prioStrategy favors the earliest possible delivery of priority
// wrappers: the paper's motivating RPC case, where the service id must
// arrive before the arguments so the receiver can prepare the data areas.
// It aggregates like aggregStrategy, but a priority wrapper preempts the
// train entirely — the output carries the priority wrappers and nothing
// else, so no bulk payload delays them on the wire.
type prioStrategy struct {
	fallback aggregStrategy
}

func (prioStrategy) Name() string { return "prio" }

func (s *prioStrategy) Elect(g *Gate, driver int, caps drivers.Caps) *output {
	var urgent []*packet
	segs, bytes := 0, 0
	g.win.scan(driver, func(pw *packet) bool {
		if !pw.prio() {
			return true
		}
		if segs+pw.segCount() > caps.MaxSegments || bytes+pw.wireSize() > caps.RdvThreshold {
			return false
		}
		urgent = append(urgent, pw)
		segs += pw.segCount()
		bytes += pw.wireSize()
		return true
	})
	if len(urgent) > 0 {
		return &output{entries: urgent}
	}
	return s.fallback.Elect(g, driver, caps)
}
