package core

import (
	"fmt"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Receive path: physical packets arrive from the transfer layer, are
// split back into wrappers, resequenced per flow (the optimizer may have
// sent them out of order or over different rails), and matched against
// posted receives — or parked on the unexpected queue.

// rxFlow is the resequencing state of one (gate, tag) flow.
type rxFlow struct {
	next SeqNum
	held map[SeqNum]*inEntry
}

// inEntry is one arrived wrapper awaiting resequencing or matching.
type inEntry struct {
	h       header
	payload []byte
	at      sim.Time
}

// flow returns (creating on demand) the resequencing state for a tag.
func (g *Gate) flow(tag Tag) *rxFlow {
	f := g.flows[tag]
	if f == nil {
		f = &rxFlow{held: make(map[SeqNum]*inEntry)}
		g.flows[tag] = f
	}
	return f
}

// onDelivery is the engine's receive entry point, bound to every driver
// at Attach time.
func (e *Engine) onDelivery(drv int, d simnet.Delivery) {
	e.traceEvent(trace.Arrive, d.Src, drv, 0, len(d.Data), 0, d.Kind.String())
	if d.Kind == simnet.TxRdma {
		id := uint32(d.Aux >> 32)
		off := int(uint32(d.Aux))
		e.onBody(d.Src, id, off, d.Data)
		return
	}
	err := walkEntries(d.Data, func(h header, payload []byte) error {
		e.dispatch(d.Src, h, payload)
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("core: corrupt packet train from node %d on rail %d: %v", d.Src, drv, err))
	}
}

// dispatch routes one wrapper by kind, applying flow resequencing to
// ordered kinds.
func (e *Engine) dispatch(src simnet.NodeID, h header, payload []byte) {
	g := e.Gate(src)
	switch h.kind {
	case kindCTS:
		e.onCTS(h)
	case kindChunk:
		e.onBody(src, h.aux, int(uint32(h.seq)), payload)
	case kindAck:
		e.onAck(h.aux)
	case kindData, kindRTS:
		if h.flags&FlagUnordered != 0 {
			e.deliver(g, h, payload)
			return
		}
		f := g.flow(h.tag)
		switch {
		case h.seq == f.next:
			e.deliver(g, h, payload)
			f.next++
			for {
				ent, ok := f.held[f.next]
				if !ok {
					break
				}
				delete(f.held, f.next)
				e.deliver(g, ent.h, ent.payload)
				f.next++
			}
		case h.seq > f.next:
			f.held[h.seq] = &inEntry{h: h, payload: payload, at: e.world.Now()}
			e.stats.Reordered++
		default:
			panic(fmt.Sprintf("core: duplicate wrapper (gate %d, tag %#x, seq %d)", src, h.tag, h.seq))
		}
	default:
		panic("core: dispatch of unknown kind " + h.kind.String())
	}
}

// deliver matches one in-order wrapper against the posted receives, or
// parks it on the unexpected queue.
func (e *Engine) deliver(g *Gate, h header, payload []byte) {
	for i, r := range g.posted {
		if r.matchesTag(h.tag) {
			g.posted = append(g.posted[:i], g.posted[i+1:]...)
			e.consume(g, r, h, payload)
			return
		}
	}
	g.unexpected = append(g.unexpected, &inEntry{h: h, payload: payload, at: e.world.Now()})
	e.stats.Unexpected++
	e.traceEvent(trace.Unexpected, g.peer, -1, h.tag, len(payload), 0, h.kind.String())
	e.cond.Broadcast() // wake probers
}

// matchUnexpected looks for an already-arrived wrapper satisfying a newly
// posted receive (FIFO over arrival order).
func (g *Gate) matchUnexpected(r *RecvRequest) bool {
	for i, ent := range g.unexpected {
		if r.matchesTag(ent.h.tag) {
			g.unexpected = append(g.unexpected[:i], g.unexpected[i+1:]...)
			g.eng.consume(g, r, ent.h, ent.payload)
			return true
		}
	}
	return false
}

// consume finishes the match: eager payloads are copied into the user
// buffer (the memcpy is charged to the host), rendezvous requests are
// granted.
func (e *Engine) consume(g *Gate, r *RecvRequest, h header, payload []byte) {
	r.matched = true
	r.tag = h.tag
	r.src = g.peer
	e.traceEvent(trace.Deliver, g.peer, -1, h.tag, len(payload), 0, h.kind.String())
	switch h.kind {
	case kindData:
		// Scatter the payload across the receive iovec (one segment for a
		// plain Irecv); whatever exceeds the landing area is dropped.
		n := r.iov.copyAt(0, payload)
		r.n = n
		var err error
		if len(payload) > r.iov.total() {
			err = ErrTruncated
		}
		if h.flags&FlagNeedAck != 0 {
			// Synchronous send: tell the sender the match happened. The
			// ack rides the window like any wrapper and may aggregate
			// with outbound data.
			g.pushCtrl(kindAck, h.tag, 0, h.aux)
		}
		e.world.After(e.node.CopyCost(n), func() { r.complete(err) })
	case kindRTS:
		e.acceptRdv(g, r, h)
	default:
		panic("core: consume of non-matchable kind " + h.kind.String())
	}
}

// onAck retires the synchronous-completion unit of a send.
func (e *Engine) onAck(id uint32) {
	req, ok := e.syncAcks[id]
	if !ok {
		panic(fmt.Sprintf("core: ack for unknown synchronous send %d", id))
	}
	delete(e.syncAcks, id)
	req.doneOne()
}
