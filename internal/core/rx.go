package core

import (
	"errors"
	"fmt"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// Receive path: physical packets arrive from the transfer layer, are
// split back into wrappers, resequenced per flow (the optimizer may have
// sent them out of order or over different rails), and matched against
// posted receives — or parked on the unexpected queue.
//
// Protocol anomalies on this path — corrupt trains, duplicate wrappers,
// unknown rendezvous or ack ids — are counted per gate and dropped
// rather than crashing the node: one misbehaving or corrupted peer must
// never take the whole engine down (see Engine.protoErr).

// ErrProtocol reports a receive-path protocol anomaly surfaced through a
// request (for example a duplicate rendezvous id consuming a posted
// receive). Anomaly counts are in Stats.ProtocolErrors and per gate in
// Gate.ProtocolErrors.
var ErrProtocol = errors.New("core: protocol anomaly")

// rxFlow is the resequencing state of one (gate, tag) flow. The held map
// is made lazily at the first out-of-order arrival: an in-order flow —
// the overwhelmingly common case — never allocates it.
type rxFlow struct {
	next SeqNum
	held map[SeqNum]*inEntry
}

// inEntry is one arrived wrapper awaiting resequencing or matching.
type inEntry struct {
	h       header
	payload []byte
	at      sim.Time
}

// flow returns (creating on demand) the resequencing state for a tag,
// through the gate's flat tag slots first (see tagSlots).
func (g *Gate) flow(tag Tag) *rxFlow {
	for i := 0; i < g.flowN; i++ {
		if g.flowTags[i] == tag {
			return g.flowVals[i]
		}
	}
	if g.flowN < tagSlots {
		f := &rxFlow{}
		g.flowTags[g.flowN] = tag
		g.flowVals[g.flowN] = f
		g.flowN++
		return f
	}
	f := g.flows[tag]
	if f == nil {
		if g.flows == nil {
			g.flows = make(map[Tag]*rxFlow)
		}
		f = &rxFlow{}
		g.flows[tag] = f
	}
	return f
}

// protoErr counts one receive-path protocol anomaly against a gate
// instead of panicking: the engine stays up, the event is visible in
// Stats.ProtocolErrors, Gate.ProtocolErrors and the trace.
func (e *Engine) protoErr(g *Gate, note string) {
	g.protoErrs++
	e.stats.ProtocolErrors++
	e.traceEvent(trace.ProtoError, g.peer, -1, 0, 0, 0, note)
}

// onDelivery is the engine's receive entry point, bound to every driver
// at Attach time.
func (e *Engine) onDelivery(drv int, d simnet.Delivery) {
	e.traceEvent(trace.Arrive, d.Src, drv, 0, len(d.Data), 0, d.Kind.String())
	if d.Kind == simnet.TxRdma {
		id := uint32(d.Aux >> 32)
		off := int(uint32(d.Aux))
		e.onBody(d.Src, id, off, d.Data)
		return
	}
	if e.opts.Reliability && e.linkOnDelivery(drv, d) {
		return
	}
	err := walkEntries(d.Data, func(h header, payload []byte) error {
		e.dispatch(d.Src, h, payload)
		return nil
	})
	if err != nil {
		// Entries decoded before the corruption were dispatched; the
		// malformed tail is dropped and counted.
		e.protoErr(e.Gate(d.Src), fmt.Sprintf("corrupt packet train on rail %d: %v", drv, err))
	}
}

// dispatch routes one wrapper by kind, applying flow resequencing to
// ordered kinds.
func (e *Engine) dispatch(src simnet.NodeID, h header, payload []byte) {
	g := e.Gate(src)
	switch h.kind {
	case kindCTS:
		e.onCTS(g, h)
	case kindChunk:
		e.onBody(src, h.aux, int(uint32(h.seq)), payload)
	case kindAck:
		e.onAck(g, h.aux)
	case kindCredit:
		e.onCredit(g, int(h.length))
	case kindDone:
		e.onRdvDone(g, h.aux)
	case kindData, kindRTS:
		if h.flags&FlagUnordered != 0 {
			e.deliver(g, h, payload)
			return
		}
		f := g.flow(h.tag)
		switch {
		case h.seq == f.next:
			e.deliver(g, h, payload)
			f.next++
			for {
				ent, ok := f.held[f.next]
				if !ok {
					break
				}
				delete(f.held, f.next)
				e.deliver(g, ent.h, ent.payload)
				e.freeInEntry(ent) // deliver copied or re-parked the payload
				f.next++
			}
		case h.seq > f.next:
			if _, dup := f.held[h.seq]; dup {
				// Keep the first copy; the duplicate's credit must not
				// leak (only one copy will ever be consumed).
				e.protoErr(g, fmt.Sprintf("duplicate held wrapper (tag %#x, seq %d)", h.tag, h.seq))
				if h.kind == kindData {
					e.returnCredit(g)
				}
				return
			}
			if f.held == nil {
				f.held = make(map[SeqNum]*inEntry)
			}
			f.held[h.seq] = e.newInEntry(h, payload)
			e.stats.Reordered++
			if len(f.held) > e.stats.PeakHeld {
				e.stats.PeakHeld = len(f.held)
			}
		default:
			e.protoErr(g, fmt.Sprintf("duplicate wrapper (tag %#x, seq %d)", h.tag, h.seq))
			if h.kind == kindData {
				// The sender spent a landing credit on this wrapper and
				// it will never be consumed; dropping it must not leak
				// the credit into a shrinking budget.
				e.returnCredit(g)
			}
		}
	default:
		e.protoErr(g, "dispatch of unknown kind "+h.kind.String())
	}
}

// deliver matches one in-order wrapper against the posted receives, or
// parks it on the unexpected queue.
func (e *Engine) deliver(g *Gate, h header, payload []byte) {
	for i, r := range g.posted {
		if r.matchesTag(h.tag) {
			g.posted = append(g.posted[:i], g.posted[i+1:]...)
			e.consume(g, r, h, payload)
			return
		}
	}
	g.unexpected = append(g.unexpected, e.newInEntry(h, payload))
	e.stats.Unexpected++
	if len(g.unexpected) > e.stats.PeakUnexpected {
		e.stats.PeakUnexpected = len(g.unexpected)
	}
	e.traceEvent(trace.Unexpected, g.peer, -1, h.tag, len(payload), 0, h.kind.String())
	e.cond.Broadcast() // wake probers
}

// matchUnexpected looks for an already-arrived wrapper satisfying a newly
// posted receive (FIFO over arrival order).
func (g *Gate) matchUnexpected(r *RecvRequest) bool {
	for i, ent := range g.unexpected {
		if r.matchesTag(ent.h.tag) {
			g.unexpected = append(g.unexpected[:i], g.unexpected[i+1:]...)
			g.eng.consume(g, r, ent.h, ent.payload)
			// consume copies the payload synchronously (only the request
			// completion is deferred), so the entry is dead here.
			g.eng.freeInEntry(ent)
			return true
		}
	}
	return false
}

// consume finishes the match: eager payloads are copied into the user
// buffer (the memcpy is charged to the host), rendezvous requests are
// granted. Consuming an eager data wrapper frees its landing credit.
func (e *Engine) consume(g *Gate, r *RecvRequest, h header, payload []byte) {
	r.matched = true
	r.tag = h.tag
	r.src = g.peer
	e.traceEvent(trace.Deliver, g.peer, -1, h.tag, len(payload), 0, h.kind.String())
	switch h.kind {
	case kindData:
		// Scatter the payload across the receive iovec (one segment for a
		// plain Irecv); whatever exceeds the landing area is dropped.
		n := r.iov.copyAt(0, payload)
		r.n = n
		var err error
		if len(payload) > r.iov.total() {
			err = ErrTruncated
		}
		if h.flags&FlagNeedAck != 0 {
			// Synchronous send: tell the sender the match happened. The
			// ack rides the window like any wrapper and may aggregate
			// with outbound data.
			g.pushCtrl(kindAck, h.tag, 0, h.aux)
		}
		e.returnCredit(g)
		e.world.After(e.node.CopyCost(n), func() { r.complete(err) })
	case kindRTS:
		e.acceptRdv(g, r, h)
	default:
		e.protoErr(g, "consume of non-matchable kind "+h.kind.String())
		r.complete(fmt.Errorf("%w: matched a %s entry", ErrProtocol, h.kind))
	}
}

// returnCredit tallies one consumed eager wrapper and, once a batch has
// accumulated, replenishes the sender with a credit control entry. The
// entry rides the window like the rendezvous handshake: it aggregates
// with outbound data when there is any and travels alone otherwise.
func (e *Engine) returnCredit(g *Gate) {
	if e.opts.Credits == 0 {
		return
	}
	g.creditOwed++
	if e.creditFreeze || g.creditOwed < creditBatch(e.opts.Credits) {
		return
	}
	n := g.creditOwed
	g.creditOwed = 0
	e.stats.CreditsSent++
	g.pushCtrl(kindCredit, 0, uint32(n), 0)
}

// FreezeCredits suspends (on = true) or resumes credit replenishment on
// this node. While frozen, consumed eager wrappers are tallied but no
// credit entries go out, so every peer's sending budget toward this node
// runs dry and its excess backlog waits in its own collect layer — a
// controlled receiver-side squeeze. Resuming flushes everything owed at
// once. Only meaningful with Options.Credits set; the scenario harness
// drives this for its credit-squeeze events.
func (e *Engine) FreezeCredits(on bool) {
	e.creditFreeze = on
	if on || e.opts.Credits == 0 {
		return
	}
	for _, g := range e.gateOrder {
		if g.creditOwed == 0 {
			continue
		}
		n := g.creditOwed
		g.creditOwed = 0
		e.stats.CreditsSent++
		g.pushCtrl(kindCredit, 0, uint32(n), 0)
	}
}

// creditBatch is how many consumed wrappers accumulate before a
// replenishment entry goes out: batching amortizes the control traffic
// while staying small enough (at most a quarter of the budget) that the
// sender never starves waiting for it.
func creditBatch(budget int) int {
	b := budget / 4
	if b < 1 {
		b = 1
	}
	return b
}

// onCredit replenishes the sender-side budget and offers the newly
// eligible backlog to the rails.
func (e *Engine) onCredit(g *Gate, n int) {
	if e.opts.Credits == 0 {
		e.protoErr(g, "credit entry with flow control disabled")
		return
	}
	g.credits += n
	e.kick(g)
}

// onAck retires the synchronous-completion unit of a send.
func (e *Engine) onAck(g *Gate, id uint32) {
	req, ok := e.syncAcks[id]
	if !ok {
		e.protoErr(g, fmt.Sprintf("ack for unknown synchronous send %d", id))
		return
	}
	delete(e.syncAcks, id)
	req.doneOne()
}
