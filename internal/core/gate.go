package core

import (
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Gate is a connection to one peer node (NewMadeleine terminology). All
// sends and receives are gate-scoped; the engine optimizes across every
// flow of every gate.
type Gate struct {
	eng  *Engine
	peer simnet.NodeID
	win  *window
	// views holds the per-rail sched.Window adapters, one per attached
	// driver, so elections pass a pointer into this array instead of
	// boxing a fresh view per Elect call (see strategy.go).
	views []windowView

	// sender side: next sequence number per flow tag. A gate typically
	// carries a handful of distinct tags, so the first tagSlots of them
	// live in a flat association array scanned linearly; sendSeq is made
	// lazily, only for gates exceeding the slots.
	seqTags [tagSlots]Tag
	seqVals [tagSlots]SeqNum
	seqN    int
	sendSeq map[Tag]SeqNum

	// receiver side: resequencing per flow, posted receives, unexpected
	// arrivals. The flow lookup uses the same flat-slots-then-map scheme
	// as the sender sequence numbers.
	flowTags   [tagSlots]Tag
	flowVals   [tagSlots]*rxFlow
	flowN      int
	flows      map[Tag]*rxFlow
	posted     []*RecvRequest
	unexpected []*inEntry

	// credit-based flow control (Options.Credits > 0). credits is the
	// sender-side budget: eager landing credits left at the peer.
	// creditOwed is the receiver-side tally of consumed wrappers whose
	// credits have not been replenished yet. dataFIFO holds the unsent
	// data wrappers in submission order: the credit window is its first
	// `credits` entries gate-wide, so the oldest unsent wrapper is
	// always eligible and a later wrapper (on another rail, or elected
	// past the head by a strategy) can never take the last credit and
	// strand the flow head — the receiver would hold the later wrapper
	// in its resequencing buffer forever, a flow-control deadlock.
	credits    int
	creditOwed int
	// dataFIFO[dataHead:] is the live queue; the dead prefix is
	// compacted away once it outgrows the tail (see dropData).
	dataFIFO []*packet
	dataHead int

	// protoErrs counts receive-path protocol anomalies attributed to
	// this gate (see Engine.protoErr).
	protoErrs int

	// Link-layer reliability state (Options.Reliability, see reliab.go):
	// ltx retains unacknowledged outbound frames, lrx deduplicates
	// inbound ones and owes the cumulative ack.
	ltx linkTx
	lrx linkRx
}

// Peer returns the remote node the gate connects to.
func (g *Gate) Peer() simnet.NodeID { return g.peer }

// Engine returns the owning engine.
func (g *Gate) Engine() *Engine { return g.eng }

// sendConfig is the resolved scheduling configuration of one submission.
type sendConfig struct {
	// flags carry the scheduling/delivery hints on the wrapper.
	flags Flags
	// driver pins the wrapper to one rail (index into Engine.Drivers),
	// or AnyDriver for the load-balanced common list.
	driver int
}

// SendOption tunes one submission: Priority, Unordered, Synchronous,
// OnRail. Options replace the raw flag/driver struct literals of earlier
// versions at the API boundary.
type SendOption func(*sendConfig)

// Priority asks the optimizer to favor earliest delivery of this
// submission (the paper's RPC service-id pattern).
func Priority() SendOption {
	return func(c *sendConfig) { c.flags |= FlagPriority }
}

// Unordered lets the receiver deliver this submission as soon as it
// arrives, outside the per-flow sequence order.
func Unordered() SendOption {
	return func(c *sendConfig) { c.flags |= FlagUnordered }
}

// Synchronous completes the send only once the receiver has matched it
// (MPI_Issend semantics).
func Synchronous() SendOption {
	return func(c *sendConfig) { c.flags |= FlagNeedAck }
}

// OnRail pins the submission to one rail (an index into Engine.Drivers)
// instead of the load-balanced common list.
func OnRail(driver int) SendOption {
	return func(c *sendConfig) { c.driver = driver }
}

// resolveSend folds options over the default configuration.
func resolveSend(opts []SendOption) sendConfig {
	c := sendConfig{driver: AnyDriver}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Isend submits one piece of data on flow tag and returns immediately.
// The request completes when the NIC has finished with the data (for
// rendezvous sends, when the body has fully streamed out). p may be nil
// when calling from non-process context; the submit overhead is then not
// charged.
func (g *Gate) Isend(p *sim.Proc, tag Tag, data []byte, opts ...SendOption) *SendRequest {
	return g.isendIov(p, tag, singleIov(data), resolveSend(opts))
}

// Isendv is the vector form of Isend: the segments of the iovec travel as
// one wrapper — one wire entry under one header, NIC-gathered straight
// from user space. This is how a non-contiguous datatype submits its
// blocks so the strategies can aggregate and reorder the whole layout
// natively (the paper's §5.3 optimization without per-block requests).
func (g *Gate) Isendv(p *sim.Proc, tag Tag, segs [][]byte, opts ...SendOption) *SendRequest {
	return g.isendIov(p, tag, iovec(segs), resolveSend(opts))
}

func (g *Gate) isendIov(p *sim.Proc, tag Tag, iov iovec, cfg sendConfig) *SendRequest {
	if len(g.eng.drvs) == 0 {
		req := &SendRequest{request: request{eng: g.eng}, tag: tag}
		req.complete(errNoDrivers)
		return req
	}
	g.eng.recordSend(g, tag, iov, cfg)
	g.eng.chargeSubmit(p)
	size := iov.total()
	if g.eng.needsFlatten(cfg.driver, 1+iov.segCount(), size) {
		// Software gather in the collect layer: no eligible rail can
		// move this many segments natively (or via rendezvous), so
		// flatten once here and charge the memcpy to the submitting
		// process — the same price the transfer-layer bounce buffers
		// charge (and what MPICH pays for every non-contiguous send).
		iov = iovec{iov.flatten()}
		g.eng.chargeCopy(p, size)
	}
	req := &SendRequest{request: request{eng: g.eng}, tag: tag, bytes: size}
	req.add(1)
	// The wrapper comes from the engine free list; the iovec's segment
	// headers are copied into the wrapper-owned backing array (reused
	// across recycles), never aliasing the caller's slice.
	pw := g.eng.newPacket()
	pw.gate = g
	pw.kind = kindData
	pw.flags = cfg.flags
	pw.tag = tag
	pw.seq = g.seqFor(tag, cfg.flags)
	pw.iov = append(pw.iov, iov...)
	pw.size = uint32(size)
	pw.driver = cfg.driver
	pw.req = req
	if cfg.flags&FlagNeedAck != 0 {
		// Synchronous semantics: an extra completion unit retired only by
		// the receiver's ack.
		req.add(1)
		g.eng.nextSyncID++
		pw.aux = g.eng.nextSyncID
		g.eng.syncAcks[pw.aux] = req
	}
	g.eng.submit(pw)
	return req
}

// Issend is Isend with synchronous completion: the request finishes only
// once the receiver has matched the message (MPI_Issend semantics). For
// messages above the rendezvous threshold this is free — the rendezvous
// handshake already implies a match; below it the receiver returns an ack
// control entry.
func (g *Gate) Issend(p *sim.Proc, tag Tag, data []byte, opts ...SendOption) *SendRequest {
	return g.Isend(p, tag, data, append(opts, Synchronous())...)
}

// Ssend is the blocking form of Issend.
func (g *Gate) Ssend(p *sim.Proc, tag Tag, data []byte) error {
	return g.Issend(p, tag, data).Wait(p)
}

// Probe reports whether a message matching (want, mask) has arrived and
// is waiting unexpected, without consuming it. It returns the matched tag
// and payload size (the body size for a rendezvous request).
func (g *Gate) Probe(want, mask Tag) (ok bool, tag Tag, size int) {
	for _, ent := range g.unexpected {
		if ent.h.tag&mask == want&mask {
			n := len(ent.payload)
			if ent.h.kind == kindRTS {
				n = int(ent.h.length)
			}
			return true, ent.h.tag, n
		}
	}
	return false, 0, 0
}

// ProbeWait blocks until a matching message is waiting (MPI_Probe).
func (g *Gate) ProbeWait(p *sim.Proc, want, mask Tag) (tag Tag, size int) {
	for {
		if ok, tag, size := g.Probe(want, mask); ok {
			return tag, size
		}
		g.eng.cond.Wait(p)
	}
}

// Send is the blocking convenience over Isend.
func (g *Gate) Send(p *sim.Proc, tag Tag, data []byte) error {
	return g.Isend(p, tag, data).Wait(p)
}

// Irecv posts a receive for the next message on flow tag, delivering into
// buf. The request completes once the payload is in place.
func (g *Gate) Irecv(p *sim.Proc, tag Tag, buf []byte) *RecvRequest {
	return g.irecvIov(p, tag, ^Tag(0), singleIov(buf))
}

// Irecvv is the vector form of Irecv: the payload of the matched message
// scatters across the iovec segments in order, with no staging copy. It
// pairs with Isendv — the usual contract of matching layouts on both
// sides.
func (g *Gate) Irecvv(p *sim.Proc, tag Tag, segs [][]byte) *RecvRequest {
	return g.irecvIov(p, tag, ^Tag(0), iovec(segs))
}

// IrecvMasked posts a wildcard receive: it matches the first arriving
// message whose tag satisfies tag&mask == want. MAD-MPI builds ANY_TAG
// receives on it by masking out the user-tag bits.
func (g *Gate) IrecvMasked(p *sim.Proc, want, mask Tag, buf []byte) *RecvRequest {
	return g.irecvIov(p, want, mask, singleIov(buf))
}

// IrecvvMasked is the vector form of IrecvMasked: a wildcard receive
// scattering across the iovec segments. It is the general receive shape
// a replayed recording re-posts (package replay).
func (g *Gate) IrecvvMasked(p *sim.Proc, want, mask Tag, segs [][]byte) *RecvRequest {
	return g.irecvIov(p, want, mask, iovec(segs))
}

func (g *Gate) irecvIov(p *sim.Proc, want, mask Tag, iov iovec) *RecvRequest {
	g.eng.recordRecv(g, want, mask, iov)
	g.eng.chargeSubmit(p)
	req := &RecvRequest{request: request{eng: g.eng}, want: want & mask, mask: mask, iov: iov}
	if !g.matchUnexpected(req) {
		g.posted = append(g.posted, req)
	}
	return req
}

// Recv is the blocking convenience over Irecv; it returns the payload
// size.
func (g *Gate) Recv(p *sim.Proc, tag Tag, buf []byte) (int, error) {
	req := g.Irecv(p, tag, buf)
	if err := req.Wait(p); err != nil {
		return req.N(), err
	}
	return req.N(), nil
}

// dataWindow is the live credit-eligibility FIFO, oldest unsent data
// wrapper first.
func (g *Gate) dataWindow() []*packet { return g.dataFIFO[g.dataHead:] }

// dropData removes a wrapper from the credit-eligibility FIFO (it was
// sent, or converted to a credit-exempt rendezvous request). Elections
// prefer the FIFO head, so the common case advances the head offset in
// O(1); mid-queue removals (rendezvous conversion, an out-of-order
// election) shift the tail.
func (g *Gate) dropData(pw *packet) {
	for i := g.dataHead; i < len(g.dataFIFO); i++ {
		if g.dataFIFO[i] != pw {
			continue
		}
		if i == g.dataHead {
			g.dataFIFO[i] = nil
			g.dataHead++
			if g.dataHead*2 >= len(g.dataFIFO) {
				g.dataFIFO = append(g.dataFIFO[:0], g.dataFIFO[g.dataHead:]...)
				g.dataHead = 0
			}
		} else {
			copy(g.dataFIFO[i:], g.dataFIFO[i+1:])
			g.dataFIFO[len(g.dataFIFO)-1] = nil
			g.dataFIFO = g.dataFIFO[:len(g.dataFIFO)-1]
		}
		return
	}
}

// tagSlots is how many distinct flow tags per gate the flat fast-path
// association arrays hold before falling back to a map. Tags are
// arbitrary 64-bit values (MAD-MPI packs the communicator id into the
// high bits), so the slots pair tag and value rather than indexing by
// tag; a linear scan over at most tagSlots entries beats a map probe —
// and its allocation — for every workload the repo runs.
const tagSlots = 8

// nextSeq assigns the next sender-side sequence number of a flow.
func (g *Gate) nextSeq(tag Tag) SeqNum {
	for i := 0; i < g.seqN; i++ {
		if g.seqTags[i] == tag {
			s := g.seqVals[i]
			g.seqVals[i] = s + 1
			return s
		}
	}
	if g.seqN < tagSlots {
		g.seqTags[g.seqN] = tag
		g.seqVals[g.seqN] = 1
		g.seqN++
		return 0
	}
	if g.sendSeq == nil {
		g.sendSeq = make(map[Tag]SeqNum)
	}
	s := g.sendSeq[tag]
	g.sendSeq[tag] = s + 1
	return s
}

// seqFor assigns the flow sequence number of one data wrapper. Unordered
// wrappers bypass the receiver's resequencing entirely, so they must not
// consume a slot in the flow order: an ordered send following an
// unordered one on the same flow would otherwise wait forever for a
// sequence number nobody delivers in order.
func (g *Gate) seqFor(tag Tag, flags Flags) SeqNum {
	if flags&FlagUnordered != 0 {
		return 0
	}
	return g.nextSeq(tag)
}

// pushCtrl submits a control wrapper (rendezvous handshake). Control
// wrappers are priority + unordered and ride the common list so the first
// idle rail carries them.
func (g *Gate) pushCtrl(kind entryKind, tag Tag, size uint32, rdvID uint32) {
	pw := g.eng.newPacket()
	pw.gate = g
	pw.kind = kind
	pw.flags = FlagPriority | FlagUnordered
	pw.tag = tag
	pw.size = size
	pw.aux = rdvID
	pw.driver = AnyDriver
	g.eng.submit(pw)
}

// PendingUnexpected reports how many arrived-but-unmatched wrappers the
// gate holds (diagnostics).
func (g *Gate) PendingUnexpected() int { return len(g.unexpected) }

// PendingPosted reports how many posted receives await a match.
func (g *Gate) PendingPosted() int { return len(g.posted) }

// PendingHeld reports how many wrappers wait in the gate's resequencing
// buffers across all flows (diagnostics).
func (g *Gate) PendingHeld() int {
	n := 0
	for i := 0; i < g.flowN; i++ {
		n += len(g.flowVals[i].held)
	}
	for _, f := range g.flows {
		n += len(f.held)
	}
	return n
}

// Credits reports the remaining eager landing credits at the peer, or
// -1 when flow control is disabled (Options.Credits == 0).
func (g *Gate) Credits() int {
	if g.eng.opts.Credits == 0 {
		return -1
	}
	return g.credits
}

// ProtocolErrors reports how many receive-path protocol anomalies were
// counted against this gate instead of crashing the node.
func (g *Gate) ProtocolErrors() int { return g.protoErrs }
