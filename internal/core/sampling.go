package core

import "nmad/internal/sim"

// Network performance sampling. The paper's strategies consume "the
// nominal and functional characteristics of the underlying network"
// (§3.2); the nominal part comes from the driver capability report, the
// functional part from runtime observation. The engine timestamps every
// transaction it hands to a rail and keeps an exponentially weighted
// estimate of the achieved bandwidth, which the multi-rail strategy
// prefers over the nominal figure once enough traffic has flowed (the
// sampling mechanism of the NewMadeleine distribution).

// samplerMinBytes filters out transactions whose duration measures fixed
// overheads rather than throughput.
const samplerMinBytes = 4 << 10

// samplerAlpha is the EWMA smoothing factor: high enough to track load
// changes, low enough to ride out single-packet jitter.
const samplerAlpha = 0.25

// samplerWarmup is how many qualifying observations are needed before
// the estimate is trusted.
const samplerWarmup = 3

// railSampler estimates one rail's achieved bandwidth.
type railSampler struct {
	rate    float64 // EWMA bytes/second
	samples int
}

// observe records one completed transaction of the given payload size.
func (s *railSampler) observe(bytes int, dur sim.Time) {
	if bytes < samplerMinBytes || dur <= 0 {
		return
	}
	rate := float64(bytes) / dur.Seconds()
	if s.samples == 0 {
		s.rate = rate
	} else {
		s.rate = samplerAlpha*rate + (1-samplerAlpha)*s.rate
	}
	s.samples++
}

// estimate returns the sampled bandwidth in bytes/second, or 0 when not
// enough traffic has been observed yet.
func (s *railSampler) estimate() float64 {
	if s.samples < samplerWarmup {
		return 0
	}
	return s.rate
}

// SampledBandwidth reports the measured bandwidth of a rail in bytes per
// second, or 0 while the sampler is still warming up. Strategies fall
// back to the nominal capability figure in that case.
func (e *Engine) SampledBandwidth(drv int) float64 {
	if drv < 0 || drv >= len(e.samplers) {
		return 0
	}
	return e.samplers[drv].estimate()
}

// railBandwidth is the figure strategies should plan with: functional
// (sampled) when available, nominal otherwise.
func (e *Engine) railBandwidth(drv int) float64 {
	if bw := e.SampledBandwidth(drv); bw > 0 {
		return bw
	}
	return e.drvs[drv].Caps().Bandwidth
}
