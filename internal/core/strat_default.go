package core

import "nmad/internal/drivers"

// defaultStrategy is the no-optimization reference: strict FIFO, one
// wrapper per physical packet, no aggregation, no reordering. It is the
// ablation baseline showing what the engine costs without its window —
// roughly how the synchronous libraries of the paper's §2 behave.
type defaultStrategy struct{}

func (defaultStrategy) Name() string { return "default" }

func (defaultStrategy) Elect(g *Gate, driver int, caps drivers.Caps) *output {
	var head *packet
	g.win.scan(driver, func(pw *packet) bool {
		if pw.segCount() > caps.MaxSegments {
			return true // this rail cannot gather it; a wider rail will
		}
		head = pw
		return false
	})
	if head == nil {
		return nil
	}
	return &output{entries: []*packet{head}}
}
