package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Property-based tests: whatever the optimizer does to the packets —
// aggregate, reorder, convert to rendezvous, split across rails — the
// application-visible semantics are fixed: every byte arrives intact, and
// per-(gate, tag) submission order is preserved.

// workload is a randomized message schedule derived from a seed.
type workload struct {
	strategy   string
	profiles   []simnet.Profile
	anticipate bool
	flush      int
	msgs       []wmsg
}

type wmsg struct {
	tag  Tag
	data []byte
}

func genWorkload(seed uint64) workload {
	rng := sim.NewRNG(seed)
	strategies := []string{"default", "aggreg", "split", "prio", "adaptive"}
	profSets := [][]simnet.Profile{
		{simnet.MX10G()},
		{simnet.QsNetII()},
		{simnet.MX10G(), simnet.QsNetII()},
		{simnet.GM2000()},
	}
	w := workload{
		strategy: strategies[rng.Intn(len(strategies))],
		profiles: profSets[rng.Intn(len(profSets))],
	}
	switch rng.Intn(3) {
	case 1:
		w.anticipate = true
	case 2:
		w.flush = rng.Range(2, 6)
	}
	n := rng.Range(1, 25)
	for i := 0; i < n; i++ {
		var size int
		switch rng.Intn(4) {
		case 0:
			size = rng.Range(0, 64) // tiny (possibly empty)
		case 1:
			size = rng.Range(64, 4096) // eager
		case 2:
			size = rng.Range(4096, 32<<10) // near the threshold
		default:
			size = rng.Range(32<<10, 256<<10) // rendezvous
		}
		data := make([]byte, size)
		rng.Bytes(data)
		w.msgs = append(w.msgs, wmsg{tag: Tag(rng.Intn(4)), data: data})
	}
	return w
}

// runWorkload pushes the schedule one way and returns the received
// payloads per tag, in delivery order.
func runWorkload(t *testing.T, wl workload) map[Tag][][]byte {
	t.Helper()
	opts := DefaultOptions()
	opts.Strategy = wl.strategy
	opts.Anticipate = wl.anticipate
	opts.FlushBacklog = wl.flush
	w, e0, e1 := testWorld(t, opts, wl.profiles...)

	perTag := map[Tag]int{}
	for _, m := range wl.msgs {
		perTag[m.tag]++
	}
	got := map[Tag][][]byte{}

	w.Spawn("send", func(p *sim.Proc) {
		for _, m := range wl.msgs {
			e0.Gate(1).Isend(p, m.tag, m.data)
		}
	})
	// One receiver process per tag, posting in submission order — this is
	// exactly the per-flow FIFO contract.
	for tag, count := range perTag {
		tag, count := tag, count
		w.Spawn(fmt.Sprintf("recv-%d", tag), func(p *sim.Proc) {
			for i := 0; i < count; i++ {
				buf := make([]byte, 300<<10)
				n, err := e1.Gate(0).Recv(p, tag, buf)
				if err != nil {
					t.Errorf("tag %d message %d: %v", tag, i, err)
					return
				}
				got[tag] = append(got[tag], append([]byte(nil), buf[:n]...))
			}
		})
	}
	run(t, w)
	return got
}

func TestPropertyDeliveryIntactAndOrdered(t *testing.T) {
	f := func(seed uint64) bool {
		wl := genWorkload(seed)
		got := runWorkload(t, wl)
		want := map[Tag][][]byte{}
		for _, m := range wl.msgs {
			want[m.tag] = append(want[m.tag], m.data)
		}
		for tag, msgs := range want {
			if len(got[tag]) != len(msgs) {
				t.Logf("seed %d (%s): tag %d delivered %d of %d", seed, wl.strategy, tag, len(got[tag]), len(msgs))
				return false
			}
			for i := range msgs {
				if !bytes.Equal(got[tag][i], msgs[i]) {
					t.Logf("seed %d (%s): tag %d message %d corrupted or reordered", seed, wl.strategy, tag, i)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyStrategiesAgreeOnSemantics(t *testing.T) {
	// The same schedule under every strategy yields byte-identical
	// deliveries (timing differs; contents and order must not).
	f := func(seed uint64) bool {
		base := genWorkload(seed)
		base.anticipate = false
		base.flush = 0
		var ref map[Tag][][]byte
		for _, strat := range []string{"default", "aggreg", "split", "prio", "adaptive"} {
			wl := base
			wl.strategy = strat
			got := runWorkload(t, wl)
			if ref == nil {
				ref = got
				continue
			}
			if len(got) != len(ref) {
				return false
			}
			for tag, msgs := range ref {
				if len(got[tag]) != len(msgs) {
					return false
				}
				for i := range msgs {
					if !bytes.Equal(got[tag][i], msgs[i]) {
						t.Logf("seed %d: strategy %s diverges at tag %d msg %d", seed, strat, tag, i)
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyWireTrainRoundTrip(t *testing.T) {
	// Any train of entries encodes and walks back identically.
	f := func(seed uint64, count uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(count%12) + 1
		type entry struct {
			h       header
			payload []byte
		}
		var entries []entry
		var train []byte
		for i := 0; i < n; i++ {
			kinds := []entryKind{kindData, kindRTS, kindCTS, kindChunk, kindAck}
			h := header{
				kind:  kinds[rng.Intn(len(kinds))],
				flags: Flags(rng.Intn(8)),
				tag:   Tag(rng.Uint64()),
				seq:   SeqNum(rng.Intn(1 << 20)),
				aux:   uint32(rng.Intn(1 << 16)),
			}
			var payload []byte
			if h.kind.hasPayload() {
				payload = make([]byte, rng.Intn(200))
				rng.Bytes(payload)
				h.length = uint32(len(payload))
			} else {
				h.length = uint32(rng.Intn(1 << 24)) // body size field
			}
			entries = append(entries, entry{h, payload})
			train = encodeHeader(train, h)
			train = append(train, payload...)
		}
		i := 0
		err := walkEntries(train, func(h header, payload []byte) error {
			if h != entries[i].h {
				return fmt.Errorf("header %d mismatch", i)
			}
			if !bytes.Equal(payload, entries[i].payload) {
				return fmt.Errorf("payload %d mismatch", i)
			}
			i++
			return nil
		})
		return err == nil && i == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWindowTakeIsExact(t *testing.T) {
	// take removes exactly the requested wrappers, preserving the order
	// of the rest.
	f := func(seed uint64, n8 uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(n8%20) + 1
		w := newWindow(2)
		var all []*packet
		for i := 0; i < n; i++ {
			pw := &packet{tag: Tag(i), driver: []int{AnyDriver, 0, 1}[rng.Intn(3)]}
			all = append(all, pw)
			w.push(pw)
		}
		var taken []*packet
		isTaken := map[*packet]bool{}
		for _, pw := range all {
			if rng.Bool() {
				taken = append(taken, pw)
				isTaken[pw] = true
			}
		}
		w.take(taken)
		var rest []*packet
		for drv := 0; drv < 2; drv++ {
			w.scan(drv, func(pw *packet) bool {
				rest = append(rest, pw)
				return true
			})
		}
		// Every survivor is not taken; count matches; no duplicates
		// beyond the common list being visible to both drivers.
		seen := map[*packet]int{}
		for _, pw := range rest {
			if isTaken[pw] {
				return false
			}
			seen[pw]++
		}
		for _, pw := range all {
			if isTaken[pw] {
				continue
			}
			want := 1
			if pw.driver == AnyDriver {
				want = 2 // visible to both rails
			}
			if seen[pw] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResequencerHandlesAnyArrivalOrder(t *testing.T) {
	// Drive the dispatch layer directly with a random permutation of
	// sequence numbers; the matching layer must still see 0,1,2,...
	f := func(seed uint64, n8 uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(n8%16) + 2
		w, _, e1 := testWorld(t, DefaultOptions())
		g := e1.Gate(0)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := n - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		var delivered []byte
		w.Spawn("inject", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				g.Irecv(p, 5, make([]byte, 1))
			}
			for _, seq := range perm {
				e1.dispatch(0, header{
					kind:   kindData,
					tag:    5,
					seq:    SeqNum(seq),
					length: 1,
				}, []byte{byte(seq)})
			}
		})
		if err := w.Run(); err != nil {
			t.Log(err)
			return false
		}
		// Posted receives match in posting order; with resequencing they
		// must have received 0..n-1 in order.
		_ = delivered
		return g.PendingPosted() == 0 && len(g.flow(5).held) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
