package core

import (
	"bytes"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

func TestSsendCompletesOnlyAfterMatch(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	var sendDone, recvPosted sim.Time
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Ssend(p, 1, []byte("sync")); err != nil {
			t.Error(err)
		}
		sendDone = p.Now()
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(300 * sim.Microsecond) // make the sender wait
		recvPosted = p.Now()
		if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 8)); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if sendDone <= recvPosted {
		t.Errorf("Ssend completed at %v, before the receive was posted at %v", sendDone, recvPosted)
	}
}

func TestIsendCompletesWithoutMatch(t *testing.T) {
	// Contrast with Ssend: a plain eager Isend completes once the NIC is
	// done, receiver or not.
	w, e0, e1 := testWorld(t, DefaultOptions())
	var sendDone sim.Time
	w.Spawn("send", func(p *sim.Proc) {
		req := e0.Gate(1).Isend(p, 1, []byte("async"))
		if err := req.Wait(p); err != nil {
			t.Error(err)
		}
		sendDone = p.Now()
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(300 * sim.Microsecond)
		if _, err := e1.Gate(0).Recv(p, 1, make([]byte, 8)); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if sendDone >= 300*sim.Microsecond {
		t.Errorf("plain Isend waited for the receiver (done at %v)", sendDone)
	}
}

func TestSsendLargeUsesRendezvousMatch(t *testing.T) {
	// Above the threshold the rendezvous handshake provides the
	// synchronization; no ack entry should be needed, and the data must
	// arrive intact.
	w, e0, e1 := testWorld(t, DefaultOptions())
	big := make([]byte, 512<<10)
	sim.NewRNG(4).Bytes(big)
	buf := make([]byte, len(big))
	var sendDone, recvPosted sim.Time
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Ssend(p, 1, big); err != nil {
			t.Error(err)
		}
		sendDone = p.Now()
	})
	w.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(200 * sim.Microsecond)
		recvPosted = p.Now()
		if _, err := e1.Gate(0).Recv(p, 1, buf); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
	if !bytes.Equal(buf, big) {
		t.Fatal("payload corrupted")
	}
	if sendDone <= recvPosted {
		t.Errorf("rendezvous Ssend done at %v before match at %v", sendDone, recvPosted)
	}
}

func TestProbeSeesUnexpected(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, 42, []byte("probe me"))
		e0.Gate(1).Isend(p, 7, make([]byte, 128<<10)) // rendezvous
	})
	w.Spawn("recv", func(p *sim.Proc) {
		g := e1.Gate(0)
		if ok, _, _ := g.Probe(42, ^Tag(0)); ok {
			t.Error("probe hit before anything arrived")
		}
		tag, size := g.ProbeWait(p, 42, ^Tag(0))
		if tag != 42 || size != 8 {
			t.Errorf("probe matched tag=%d size=%d, want 42/8", tag, size)
		}
		// A probed message is not consumed.
		if ok, _, _ := g.Probe(42, ^Tag(0)); !ok {
			t.Error("probe consumed the message")
		}
		// The rendezvous request reports the body size, not the header.
		_, rdvSize := g.ProbeWait(p, 7, ^Tag(0))
		if rdvSize != 128<<10 {
			t.Errorf("probed rendezvous size %d, want the body size", rdvSize)
		}
		// Drain both so the world quiesces.
		if _, err := g.Recv(p, 42, make([]byte, 16)); err != nil {
			t.Error(err)
		}
		if _, err := g.Recv(p, 7, make([]byte, 128<<10)); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
}

// TestEngineOverEveryProfile runs the same mixed workload (eager burst +
// rendezvous) over each of the five ports. This is the only place the
// GM/TCP rendezvous path (eager chunk entries instead of RDMA) gets
// end-to-end coverage.
func TestEngineOverEveryProfile(t *testing.T) {
	for _, prof := range simnet.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			w, e0, e1 := testWorld(t, DefaultOptions(), prof)
			big := make([]byte, 3*prof.RdvThreshold+12345)
			sim.NewRNG(13).Bytes(big)
			buf := make([]byte, len(big))
			w.Spawn("send", func(p *sim.Proc) {
				for i := 0; i < 6; i++ {
					e0.Gate(1).Isend(p, Tag(i), []byte{byte(i)})
				}
				if err := e0.Gate(1).Send(p, 99, big); err != nil {
					t.Error(err)
				}
			})
			w.Spawn("recv", func(p *sim.Proc) {
				for i := 0; i < 6; i++ {
					buf1 := make([]byte, 1)
					if _, err := e1.Gate(0).Recv(p, Tag(i), buf1); err != nil {
						t.Fatal(err)
					}
					if buf1[0] != byte(i) {
						t.Fatalf("small message %d corrupted", i)
					}
				}
				n, err := e1.Gate(0).Recv(p, 99, buf)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(big) || !bytes.Equal(buf, big) {
					t.Fatal("rendezvous body corrupted on " + prof.Name)
				}
			})
			run(t, w)
			st := e0.Stats()
			if st.RdvCompleted != 1 {
				t.Errorf("RdvCompleted = %d on %s", st.RdvCompleted, prof.Name)
			}
			if !prof.RDMA && st.BodyBytes != int64(len(big)) {
				t.Errorf("non-RDMA body bytes %d, want %d (chunk path)", st.BodyBytes, len(big))
			}
		})
	}
}
