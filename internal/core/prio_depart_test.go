package core

import (
	"testing"

	"nmad/internal/sim"
	"nmad/internal/trace"
)

// Regression for the prio strategy's starvation pair: a priority wrapper
// whose wire size exceeds the aggregation budget (payload just under the
// rendezvous threshold, so it never converts to rendezvous either) used
// to wait behind every queued bulk train — the urgent scan aborted on
// the misfit and the fallback elected full-size trains until the window
// drained. The fix departs it alone as soon as the NIC frees. The tracer
// Depart order is the observable: the priority payload must not be the
// last departure.
func TestPrioOversizedUrgentDepartsBeforeBulkDrains(t *testing.T) {
	rec := trace.NewRecorder()
	opts := DefaultOptions()
	opts.Strategy = "prio"
	opts.Tracer = rec
	w, e0, e1 := testWorldMixed(t, opts, DefaultOptions())

	const (
		bulkMsgs = 16
		bulkSize = 8 << 10
		// Wire size 24+prioSize exceeds the 32K MX aggregation budget;
		// the payload alone stays under the rendezvous threshold.
		prioSize = 32<<10 - 16
	)
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < bulkMsgs; i++ {
			e0.Gate(1).Isend(p, 1, make([]byte, bulkSize))
		}
		e0.Gate(1).Isend(p, 99, make([]byte, prioSize), Priority())
	})
	w.Spawn("recv", func(p *sim.Proc) {
		reqs := make([]Request, 0, bulkMsgs+1)
		for i := 0; i < bulkMsgs; i++ {
			reqs = append(reqs, e1.Gate(0).Irecv(p, 1, make([]byte, bulkSize)))
		}
		reqs = append(reqs, e1.Gate(0).Irecv(p, 99, make([]byte, prioSize)))
		if err := WaitAll(p, reqs...); err != nil {
			t.Error(err)
		}
	})
	run(t, w)

	departs := rec.Filter(trace.Depart)
	prioAt := -1
	for i, ev := range departs {
		if ev.Entries == 1 && ev.Bytes == prioSize {
			prioAt = i
			break
		}
	}
	if prioAt < 0 {
		t.Fatalf("no lone departure of the %dB priority payload in %d departs", prioSize, len(departs))
	}
	if prioAt == len(departs)-1 {
		t.Fatalf("priority payload departed last (%d of %d): it starved behind the bulk stream",
			prioAt+1, len(departs))
	}
	// It should in fact leave almost immediately — within the first few
	// trains, not merely "not last".
	if prioAt > 3 {
		t.Errorf("priority payload departed %dth of %d; want within the first 4", prioAt+1, len(departs))
	}
}
