package core

import "nmad/internal/sim"

// Stats counts what the optimizer did. The aggregation and piggyback
// counters are the observable evidence of the paper's claims: packets
// from different logical flows sharing physical packets, and rendezvous
// control riding along with unrelated data.
type Stats struct {
	// Submitted counts packet wrappers entering the collect layer.
	Submitted int
	// OutputPackets counts physical packets handed to the transfer layer.
	OutputPackets int
	// EntriesSent counts wrappers carried by those packets.
	EntriesSent int
	// AggregatedPackets counts output packets carrying two or more
	// wrappers.
	AggregatedPackets int
	// MaxEntriesPerPacket is the largest train synthesized so far.
	MaxEntriesPerPacket int
	// CtrlPiggybacked counts rendezvous control entries that shared a
	// physical packet with at least one data entry.
	CtrlPiggybacked int
	// RdvStarted / RdvCompleted count rendezvous transactions on the
	// sending side.
	RdvStarted   int
	RdvCompleted int
	// EagerBytes is application payload sent through the eager path;
	// BodyBytes is payload streamed as rendezvous bodies.
	EagerBytes int64
	BodyBytes  int64
	// WireBytes is the total wire footprint the node injected: output
	// packets with their per-entry headers, plus RDMA rendezvous body
	// transactions. The figure of merit replay A/B comparisons report.
	WireBytes int64
	// PerDriverBytes splits (payload) traffic by rail.
	PerDriverBytes []int64
	// Reordered counts wrappers that arrived ahead of their flow order
	// and waited in the resequencing buffer.
	Reordered int
	// Unexpected counts wrappers that arrived before a matching receive
	// was posted.
	Unexpected int
	// PeakUnexpected is the largest unexpected queue any single gate
	// reached, and PeakHeld the largest resequencing buffer any single
	// flow reached. Under credit flow control (Options.Credits) eager
	// data traffic in both is bounded by the per-gate credit budget;
	// rendezvous requests are header-only entries whose body memory is
	// bounded separately by Options.MaxGrants.
	PeakUnexpected int
	PeakHeld       int
	// CreditsSent counts credit-replenishment control entries submitted
	// by the receive side (they aggregate with outbound traffic like any
	// control wrapper).
	CreditsSent int
	// RdvDeferred counts inbound rendezvous grants deferred by
	// Options.MaxGrants; RdvTruncated counts grants clamped to a smaller
	// posted landing area.
	RdvDeferred  int
	RdvTruncated int
	// Link-layer reliability counters (Options.Reliability, reliab.go).
	// Retransmits counts frame re-injections after an ack timeout;
	// DupAcks counts explicit acks that did not advance the sender's
	// floor (the receiver re-confirming — the signature of duplicated or
	// retransmitted traffic); ReorderedAccepts counts frames accepted
	// ahead of a sequence gap (the fabric reordered; delivery proceeded,
	// per-flow resequencing restores application order); BodyReissues
	// counts rendezvous body spans re-streamed after a receiver progress
	// timeout re-pushed the CTS.
	Retransmits      int
	DupAcks          int
	ReorderedAccepts int
	BodyReissues     int
	// FailedRails counts rails declared dead after a frame exhausted its
	// retransmit budget; RecoveredRails counts rails brought back by the
	// ping/pong probe; AbandonedRails counts failure episodes whose probe
	// spent its Options.ProbeBudget without an answer and gave the rail
	// up for good.
	FailedRails    int
	RecoveredRails int
	AbandonedRails int
	// Multi-tenant job queue counters (internal/queue reports through
	// the engine it dispatches onto). JobsAdmitted / JobsRejected split
	// submissions at the admission bound; JobsDispatched / JobsCompleted
	// track the worker side; JobsAged counts dispatches whose tenant won
	// only through the aging boost (the starvation-avoidance mechanism
	// firing); PeakQueueDepth is the deepest backlog observed and
	// PeakJobWait the longest any job sat queued before dispatch.
	JobsAdmitted   int
	JobsRejected   int
	JobsDispatched int
	JobsCompleted  int
	JobsAged       int
	PeakQueueDepth int
	PeakJobWait    sim.Time
	// ProtocolErrors counts receive-path protocol anomalies (corrupt
	// trains, duplicate wrappers, unknown rendezvous ids, ...) that were
	// dropped and counted instead of crashing the node. Per-gate
	// attribution is available through Gate.ProtocolErrors.
	ProtocolErrors int
}

// AggregationRatio is entries per output packet; 1.0 means the optimizer
// never found anything to coalesce.
func (s Stats) AggregationRatio() float64 {
	if s.OutputPackets == 0 {
		return 0
	}
	return float64(s.EntriesSent) / float64(s.OutputPackets)
}
