package core

import (
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
	"nmad/internal/trace"
)

// The trace recorder hooked into a real exchange must tell the paper's
// story: submissions accumulate, one election produces a multi-entry
// train, rendezvous control piggybacks, the body streams.
func TestTraceRecordsTheWholeProtocol(t *testing.T) {
	rec := trace.NewRecorder()
	opts := DefaultOptions()
	opts.Tracer = rec
	w, e0, e1 := testWorldMixed(t, opts, DefaultOptions()) // trace the sender only

	big := make([]byte, 256<<10)
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, 1, []byte("occupy the NIC"))
		e0.Gate(1).Isend(p, 2, big)
		for i := 0; i < 3; i++ {
			e0.Gate(1).Isend(p, Tag(10+i), make([]byte, 64))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		reqs := []*RecvRequest{
			e1.Gate(0).Irecv(p, 1, make([]byte, 32)),
			e1.Gate(0).Irecv(p, 2, make([]byte, len(big))),
		}
		for i := 0; i < 3; i++ {
			reqs = append(reqs, e1.Gate(0).Irecv(p, Tag(10+i), make([]byte, 64)))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)

	if rec.Count(trace.Submit) != 5 {
		t.Errorf("Submit events = %d, want 5", rec.Count(trace.Submit))
	}
	if rec.Count(trace.RdvStart) != 1 {
		t.Errorf("RdvStart events = %d, want 1 (the 256KB send)", rec.Count(trace.RdvStart))
	}
	if rec.Count(trace.Elect) == 0 || rec.Count(trace.Depart) != rec.Count(trace.Elect) {
		t.Errorf("Elect=%d Depart=%d: every election must depart", rec.Count(trace.Elect), rec.Count(trace.Depart))
	}
	// At least one election must have aggregated several wrappers.
	multi := false
	for _, ev := range rec.Filter(trace.Elect) {
		if ev.Entries > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("no multi-entry election traced; the window never aggregated")
	}
	// The sender also receives: the CTS arrives as a packet.
	if rec.Count(trace.Arrive) == 0 {
		t.Error("no arrivals traced on the sender (the CTS must come back)")
	}
	// Chronological order.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace out of order at %d: %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

func TestTraceReceiverSide(t *testing.T) {
	rec := trace.NewRecorder()
	ropts := DefaultOptions()
	ropts.Tracer = rec
	w2, s, r := testWorldMixed(t, DefaultOptions(), ropts)
	big := make([]byte, 128<<10)
	w2.Spawn("send", func(p *sim.Proc) {
		if err := s.Gate(1).Send(p, 9, big); err != nil {
			t.Error(err)
		}
	})
	w2.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond) // let the RTS land unexpected
		if _, err := r.Gate(0).Recv(p, 9, make([]byte, len(big))); err != nil {
			t.Error(err)
		}
	})
	run(t, w2)
	if rec.Count(trace.Unexpected) != 1 {
		t.Errorf("Unexpected events = %d, want 1 (the early RTS)", rec.Count(trace.Unexpected))
	}
	if rec.Count(trace.RdvGrant) != 1 {
		t.Errorf("RdvGrant events = %d, want 1", rec.Count(trace.RdvGrant))
	}
	if rec.Count(trace.RdvBody) == 0 {
		t.Error("no RdvBody events; the body never streamed")
	}
	if rec.Count(trace.Deliver) != 1 {
		t.Errorf("Deliver events = %d, want 1 (the RTS match)", rec.Count(trace.Deliver))
	}
}

// testWorldMixed builds a two-node MX world with per-node options.
func testWorldMixed(t *testing.T, opts0, opts1 Options) (*sim.World, *Engine, *Engine) {
	t.Helper()
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	mk := func(id simnet.NodeID, opts Options) *Engine {
		e, err := New(f, id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return w, mk(0, opts0), mk(1, opts1)
}
