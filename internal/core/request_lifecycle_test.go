package core

import (
	"bytes"
	"errors"
	"testing"

	"nmad/internal/sim"
)

// Tests for the unified Request interface: completion state machines,
// WaitAll / WaitAny on the shared condition variable, request groups.

func TestWaitAfterCompletionReturnsStoredError(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, 2, []byte("0123456789"))
	})
	w.Spawn("recv", func(p *sim.Proc) {
		req := e1.Gate(0).Irecv(p, 2, make([]byte, 4))
		if err := req.Wait(p); !errors.Is(err, ErrTruncated) {
			t.Errorf("first Wait = %v, want ErrTruncated", err)
		}
		// A completed request must keep reporting its stored error on
		// every later interrogation, without blocking.
		for i := 0; i < 3; i++ {
			if err := req.Wait(p); !errors.Is(err, ErrTruncated) {
				t.Errorf("Wait after completion = %v, want the stored ErrTruncated", err)
			}
		}
		if !req.Done() || !req.Test() {
			t.Error("Done/Test false after completion")
		}
		if err := req.Err(); !errors.Is(err, ErrTruncated) {
			t.Errorf("Err = %v, want the stored ErrTruncated", err)
		}
	})
	run(t, w)
}

func TestTestNeverBlocks(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("recv", func(p *sim.Proc) {
		// No sender yet: Test must report false an arbitrary number of
		// times without ever blocking the process (time only advances by
		// our explicit sleeps).
		req := e1.Gate(0).Irecv(p, 7, make([]byte, 8))
		for i := 0; i < 50; i++ {
			before := p.Now()
			if req.Test() {
				t.Fatal("Test true before any send")
			}
			if p.Now() != before {
				t.Fatal("Test advanced virtual time: it blocked")
			}
		}
		p.Sleep(sim.Millisecond) // let the late sender run
		if !req.Test() {
			t.Error("Test false after the message landed")
		}
		if err := req.Wait(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("send", func(p *sim.Proc) {
		p.Sleep(50 * sim.Microsecond)
		if err := e0.Gate(1).Send(p, 7, []byte("late")); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
}

func TestWaitAnyWithAlreadyDoneRequest(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		if err := e0.Gate(1).Send(p, 1, []byte("first")); err != nil {
			t.Error(err)
		}
		p.Sleep(300 * sim.Microsecond)
		if err := e0.Gate(1).Send(p, 2, []byte("second")); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		fast := e1.Gate(0).Irecv(p, 1, make([]byte, 8))
		slow := e1.Gate(0).Irecv(p, 2, make([]byte, 8))
		if err := fast.Wait(p); err != nil { // complete it first
			t.Fatal(err)
		}
		before := p.Now()
		idx, err := WaitAny(p, fast, slow)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Errorf("WaitAny picked %d, want the already-done request 0", idx)
		}
		if p.Now() != before {
			t.Error("WaitAny blocked although a request was already done")
		}
		// And with only the pending one it must actually wait.
		if idx, err = WaitAny(p, slow); err != nil || idx != 0 {
			t.Errorf("WaitAny(slow) = %d, %v", idx, err)
		}
	})
	run(t, w)
}

func TestWaitAnyPicksTheFirstCompletion(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		if err := e0.Gate(1).Send(p, 2, []byte("only-this-flow")); err != nil {
			t.Error(err)
		}
		if err := e0.Gate(1).Send(p, 1, []byte("then-this")); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		a := e1.Gate(0).Irecv(p, 1, make([]byte, 16))
		b := e1.Gate(0).Irecv(p, 2, make([]byte, 16))
		idx, err := WaitAny(p, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 1 {
			t.Errorf("WaitAny picked %d, want 1 (tag 2 was sent first)", idx)
		}
		if err := WaitAll(p, a, b); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
}

func TestWaitAnyAcrossEngines(t *testing.T) {
	// Requests from two different engines: the request that can never be
	// signalled through the first engine's cond must not stall the one
	// completing on the other engine.
	w, engines := nWorld(t, 3, DefaultOptions())
	e0, e2 := engines[0], engines[2]
	w.Spawn("driver", func(p *sim.Proc) {
		// A receive on e0 from node 1 that is matched only much later...
		stuck := e0.Gate(1).Irecv(p, 5, make([]byte, 8))
		// ...and a send on e2, a different engine, that completes fast.
		fast := e2.Gate(1).Isend(p, 6, []byte("quick"))
		idx, err := WaitAny(p, stuck, fast)
		if err != nil {
			t.Error(err)
		}
		if idx != 1 {
			t.Errorf("WaitAny picked %d, want the cross-engine send (1)", idx)
		}
		if err := stuck.Wait(p); err != nil {
			t.Error(err)
		}
	})
	w.Spawn("node1", func(p *sim.Proc) {
		e1 := engines[1]
		if _, err := e1.Gate(2).Recv(p, 6, make([]byte, 8)); err != nil {
			t.Error(err)
		}
		p.Sleep(500 * sim.Microsecond)
		if err := e1.Gate(0).Send(p, 5, []byte("late")); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
}

func TestWaitAnyNoRequests(t *testing.T) {
	if _, err := WaitAny(nil); !errors.Is(err, ErrNoRequests) {
		t.Errorf("WaitAny() = %v, want ErrNoRequests", err)
	}
}

func TestWaitAllReportsFirstError(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, 1, []byte("fits"))
		e0.Gate(1).Isend(p, 2, []byte("does not fit"))
	})
	w.Spawn("recv", func(p *sim.Proc) {
		ok := e1.Gate(0).Irecv(p, 1, make([]byte, 16))
		short := e1.Gate(0).Irecv(p, 2, make([]byte, 2))
		if err := WaitAll(p, ok, short); !errors.Is(err, ErrTruncated) {
			t.Errorf("WaitAll = %v, want the truncation error", err)
		}
	})
	run(t, w)
}

func TestRequestGroupUnifiesSendAndRecv(t *testing.T) {
	w, e0, e1 := testWorld(t, DefaultOptions())
	msg := []byte("grouped")
	w.Spawn("node0", func(p *sim.Proc) {
		g := e0.Gate(1)
		buf := make([]byte, 16)
		grp := NewRequestGroup(g.Isend(p, 1, msg), g.Irecv(p, 2, buf))
		if grp.Done() {
			t.Error("group done before any traffic")
		}
		if err := grp.Wait(p); err != nil {
			t.Error(err)
		}
		if !grp.Test() || grp.Err() != nil {
			t.Error("group state wrong after Wait")
		}
		if grp.Bytes() != len(msg)+len(msg) {
			t.Errorf("group Bytes = %d, want %d", grp.Bytes(), 2*len(msg))
		}
		if !bytes.Equal(buf[:len(msg)], msg) {
			t.Errorf("group receive got %q", buf[:len(msg)])
		}
	})
	w.Spawn("node1", func(p *sim.Proc) {
		g := e1.Gate(0)
		buf := make([]byte, 16)
		if err := WaitAll(p, g.Irecv(p, 1, buf), g.Isend(p, 2, msg)); err != nil {
			t.Error(err)
		}
	})
	run(t, w)
}

func TestFailedRequestIsImmediatelyDone(t *testing.T) {
	boom := errors.New("boom")
	r := FailedRequest(boom)
	if !r.Done() || !r.Test() {
		t.Error("failed request must be done immediately")
	}
	if err := r.Wait(nil); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want the stored error", err)
	}
	if err := r.Err(); !errors.Is(err, boom) {
		t.Errorf("Err = %v, want the stored error", err)
	}
	if r.Bytes() != 0 {
		t.Errorf("Bytes = %d, want 0", r.Bytes())
	}
	// WaitAny over a failed request returns it (with its error), rather
	// than trying to block on a missing engine.
	idx, err := WaitAny(nil, r)
	if idx != 0 || !errors.Is(err, boom) {
		t.Errorf("WaitAny(failed) = %d, %v", idx, err)
	}
}

// The interface is the contract: every handle the engine produces must
// satisfy it.
var (
	_ Request = (*SendRequest)(nil)
	_ Request = (*RecvRequest)(nil)
	_ Request = (*RequestGroup)(nil)
)
