package core

import (
	"bytes"
	"fmt"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// The delivery-integrity property: on the 8-node composite workload —
// every node streaming bulk chunks, a burst of small multi-flow sends, a
// large rendezvous transfer and a priority control fragment to its ring
// neighbor — every payload must arrive exactly once, byte for byte, at
// its full length, no matter how lossy the fabric is. A dropped packet
// the link layer fails to repair shows up as a wedge (WaitAll never
// returns); a truncation as a short RecvRequest.N(); a duplicated or
// reordered delivery as a content mismatch on the in-order flow.
func compositeSurvivesDrop(t *testing.T, drop float64, seed uint64) {
	const (
		nodes = 8
		nBulk = 6
		bulk  = 4 << 10
		small = 8
		large = 128 << 10
	)
	w := sim.NewWorld()
	f := simnet.NewFabric(w, nodes, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		t.Fatal(err)
	}
	if err := f.SetFaults(simnet.UniformLoss(seed, drop, 1)); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Reliability = true

	// fill gives every (sender, flow, chunk) a distinct pattern, so a
	// payload delivered to the wrong slot — or twice — cannot match.
	fill := func(buf []byte, src, tag, chunk int) {
		for j := range buf {
			buf[j] = byte(src*113+tag*29+chunk*17) + byte(j)*7
		}
	}
	const (
		bulkTag  = Tag(1)
		ctrlTag  = Tag(2)
		largeTag = Tag(3)
		smallTag = Tag(16)
	)

	engines := make([]*Engine, nodes)
	for i := 0; i < nodes; i++ {
		e, err := New(f, simnet.NodeID(i), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	for i := 0; i < nodes; i++ {
		me := i
		next := (i + 1) % nodes
		prev := (i + nodes - 1) % nodes
		w.Spawn(fmt.Sprintf("node%d", i), func(p *sim.Proc) {
			out := engines[me].Gate(simnet.NodeID(next))
			in := engines[me].Gate(simnet.NodeID(prev))

			var reqs []Request
			type posted struct {
				req              *RecvRequest
				buf              []byte
				tag, chunk, size int
			}
			var recvs []posted
			post := func(tag Tag, chunk, size int) {
				buf := make([]byte, size)
				r := in.Irecv(p, tag, buf)
				recvs = append(recvs, posted{r, buf, int(tag), chunk, size})
				reqs = append(reqs, r)
			}
			for c := 0; c < nBulk; c++ {
				post(bulkTag, c, bulk)
			}
			for j := 0; j < small; j++ {
				post(smallTag+Tag(j), 0, 128)
			}
			post(ctrlTag, 0, 32)
			post(largeTag, 0, large)

			for c := 0; c < nBulk; c++ {
				buf := make([]byte, bulk)
				fill(buf, me, int(bulkTag), c)
				reqs = append(reqs, out.Isend(p, bulkTag, buf))
				switch c {
				case nBulk / 3:
					for j := 0; j < small; j++ {
						buf := make([]byte, 128)
						fill(buf, me, int(smallTag)+j, 0)
						reqs = append(reqs, out.Isend(p, smallTag+Tag(j), buf))
					}
				case nBulk / 2:
					ctrl := make([]byte, 32)
					fill(ctrl, me, int(ctrlTag), 0)
					reqs = append(reqs, out.Isend(p, ctrlTag, ctrl, Priority()))
					body := make([]byte, large)
					fill(body, me, int(largeTag), 0)
					reqs = append(reqs, out.Isend(p, largeTag, body))
				}
			}
			if err := WaitAll(p, reqs...); err != nil {
				t.Errorf("node %d: %v", me, err)
				return
			}
			for _, pr := range recvs {
				if pr.req.N() != pr.size {
					t.Errorf("node %d tag %d: truncated — got %d of %d bytes",
						me, pr.tag, pr.req.N(), pr.size)
				}
				want := make([]byte, pr.size)
				fill(want, prev, pr.tag, pr.chunk)
				if !bytes.Equal(pr.buf, want) {
					t.Errorf("node %d tag %d chunk %d: payload corrupt (lost, duplicated or misordered delivery)",
						me, pr.tag, pr.chunk)
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	retrans := 0
	for i, e := range engines {
		st := e.Stats()
		if st.ProtocolErrors != 0 {
			t.Errorf("node %d: %d protocol errors", i, st.ProtocolErrors)
		}
		retrans += st.Retransmits
	}
	if drop > 0 && retrans == 0 {
		t.Errorf("%.0f%% drop produced no retransmissions — faults were not injected", 100*drop)
	}
}

func TestCompositeSurvives10PctDrop(t *testing.T) { compositeSurvivesDrop(t, 0.10, 31) }
func TestCompositeSurvives30PctDrop(t *testing.T) { compositeSurvivesDrop(t, 0.30, 32) }
