package core

import (
	"bytes"
	"fmt"
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Tests beyond the two-node benches: several gates per engine, rail
// pinning, unordered delivery.

// nWorld builds an n-node MX fabric with one engine per node.
func nWorld(t *testing.T, n int, opts Options, profs ...simnet.Profile) (*sim.World, []*Engine) {
	t.Helper()
	if len(profs) == 0 {
		profs = []simnet.Profile{simnet.MX10G()}
	}
	w := sim.NewWorld()
	f := simnet.NewFabric(w, n, simnet.DefaultHost())
	for _, p := range profs {
		if _, err := f.AddNetwork(p); err != nil {
			t.Fatal(err)
		}
	}
	engines := make([]*Engine, n)
	for i := range engines {
		e, err := New(f, simnet.NodeID(i), opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AttachFabric(f); err != nil {
			t.Fatal(err)
		}
		engines[i] = e
	}
	return w, engines
}

func TestThreeNodeAllToAll(t *testing.T) {
	const n = 3
	w, engines := nWorld(t, n, DefaultOptions())
	for me := 0; me < n; me++ {
		me := me
		e := engines[me]
		w.Spawn(fmt.Sprintf("node%d", me), func(p *sim.Proc) {
			var sends []*SendRequest
			var recvs []*RecvRequest
			bufs := map[int][]byte{}
			for peer := 0; peer < n; peer++ {
				if peer == me {
					continue
				}
				msg := []byte(fmt.Sprintf("from %d to %d", me, peer))
				sends = append(sends, e.Gate(simnet.NodeID(peer)).Isend(p, 1, msg))
				bufs[peer] = make([]byte, 32)
				recvs = append(recvs, e.Gate(simnet.NodeID(peer)).Irecv(p, 1, bufs[peer]))
			}
			for _, r := range sends {
				if err := r.Wait(p); err != nil {
					t.Error(err)
				}
			}
			for _, r := range recvs {
				if err := r.Wait(p); err != nil {
					t.Error(err)
				}
			}
			for peer, buf := range bufs {
				want := fmt.Sprintf("from %d to %d", peer, me)
				if string(bytes.TrimRight(buf, "\x00")) != want {
					t.Errorf("node %d from %d: %q, want %q", me, peer, bytes.TrimRight(buf, "\x00"), want)
				}
			}
		})
	}
	run(t, w)
}

func TestGateFairnessAcrossPeers(t *testing.T) {
	// One sender, two receivers, a burst to each: round-robin election
	// must serve both gates (neither starves while the other's backlog
	// drains).
	const per = 12
	w, engines := nWorld(t, 3, DefaultOptions())
	e0 := engines[0]
	var done1, done2 sim.Time
	w.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < per; i++ {
			e0.Gate(1).Isend(p, Tag(i), make([]byte, 256))
			e0.Gate(2).Isend(p, Tag(i), make([]byte, 256))
		}
	})
	mkRecv := func(node int, done *sim.Time) {
		e := engines[node]
		w.Spawn(fmt.Sprintf("recv%d", node), func(p *sim.Proc) {
			for i := 0; i < per; i++ {
				if _, err := e.Gate(0).Recv(p, Tag(i), make([]byte, 256)); err != nil {
					t.Error(err)
				}
			}
			*done = p.Now()
		})
	}
	mkRecv(1, &done1)
	mkRecv(2, &done2)
	run(t, w)
	ratio := float64(done1) / float64(done2)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("peer completion skew %.2f (%v vs %v): round-robin should keep gates comparable", ratio, done1, done2)
	}
}

func TestDriverPinningRoutesToOneRail(t *testing.T) {
	w, engines := nWorld(t, 2, DefaultOptions(), simnet.MX10G(), simnet.QsNetII())
	e0, e1 := engines[0], engines[1]
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			e0.Gate(1).Isend(p, Tag(i), make([]byte, 512), OnRail(1))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := e1.Gate(0).Irecv(p, Tag(i), make([]byte, 512)).Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	st := e0.Stats()
	if st.PerDriverBytes[0] != 0 {
		t.Errorf("rail 0 carried %d bytes despite pinning to rail 1", st.PerDriverBytes[0])
	}
	if st.PerDriverBytes[1] != 8*512 {
		t.Errorf("rail 1 carried %d bytes, want %d", st.PerDriverBytes[1], 8*512)
	}
}

func TestCommonListUsesIdleRails(t *testing.T) {
	// Unpinned traffic load-balances: with a sustained burst on two
	// rails, both should carry bytes (the common-list behaviour of the
	// collect layer, paper §3.3).
	w, engines := nWorld(t, 2, DefaultOptions(), simnet.MX10G(), simnet.QsNetII())
	e0, e1 := engines[0], engines[1]
	const n = 40
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, Tag(i), make([]byte, 8<<10))
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		reqs := make([]*RecvRequest, n)
		for i := 0; i < n; i++ {
			reqs[i] = e1.Gate(0).Irecv(p, Tag(i), make([]byte, 8<<10))
		}
		for _, r := range reqs {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
	})
	run(t, w)
	st := e0.Stats()
	if st.PerDriverBytes[0] == 0 || st.PerDriverBytes[1] == 0 {
		t.Errorf("common-list traffic used rails %v; both should carry load", st.PerDriverBytes)
	}
}

func TestUnorderedFlagBypassesResequencing(t *testing.T) {
	// With FlagUnordered the receiver may see submissions out of order;
	// what matters is that all of them arrive and none is held back.
	w, engines := nWorld(t, 2, DefaultOptions())
	e0, e1 := engines[0], engines[1]
	const n = 10
	got := map[byte]bool{}
	w.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			e0.Gate(1).Isend(p, 3, []byte{byte(i)}, Unordered())
		}
	})
	w.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			buf := make([]byte, 1)
			if _, err := e1.Gate(0).Recv(p, 3, buf); err != nil {
				t.Fatal(err)
			}
			got[buf[0]] = true
		}
	})
	run(t, w)
	if len(got) != n {
		t.Errorf("received %d distinct unordered messages, want %d", len(got), n)
	}
}

func TestStatsReorderedCounter(t *testing.T) {
	// Force wire-level reordering within one flow: the aggregation
	// strategy pulls small wrappers past a converted rendezvous request,
	// so later sequence numbers arrive before the rendezvous data
	// completes — exercising the resequencing buffer.
	w, engines := nWorld(t, 2, DefaultOptions())
	e0, e1 := engines[0], engines[1]
	big := make([]byte, 256<<10)
	w.Spawn("send", func(p *sim.Proc) {
		e0.Gate(1).Isend(p, 1, []byte("warm")) // departs alone
		e0.Gate(1).Isend(p, 2, big)            // becomes RTS (seq 0 of tag 2)
		e0.Gate(1).Isend(p, 2, []byte("tail")) // seq 1 of tag 2
	})
	w.Spawn("recv", func(p *sim.Proc) {
		bufWarm := make([]byte, 8)
		bufBig := make([]byte, len(big))
		bufTail := make([]byte, 8)
		r0 := e1.Gate(0).Irecv(p, 1, bufWarm)
		r1 := e1.Gate(0).Irecv(p, 2, bufBig)
		r2 := e1.Gate(0).Irecv(p, 2, bufTail)
		for _, r := range []*RecvRequest{r0, r1, r2} {
			if err := r.Wait(p); err != nil {
				t.Error(err)
			}
		}
		if string(bufTail[:r2.N()]) != "tail" {
			t.Errorf("tail message %q", bufTail[:r2.N()])
		}
		if r1.N() != len(big) {
			t.Errorf("big message %d bytes", r1.N())
		}
	})
	run(t, w)
}
