package core

import (
	"testing"

	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Allocation regression pins for the engine hot paths. The free-list
// recycling in pool.go exists to keep the marginal cost of a message
// small and flat; these tests measure that marginal cost directly —
// the difference in allocations between a long and a short run of the
// same workload, divided by the extra messages — so world and engine
// construction cancel out exactly. The ceilings are set ~30% above the
// measured figure: loose enough to absorb compiler-version drift,
// tight enough that reintroducing even one per-message allocation on
// the pinned path (a wrapper, a train header slice, a map insert)
// fails the test.

// allocEngines mirrors testWorld without *testing.T so workloads can
// run inside testing.AllocsPerRun; construction errors panic, which
// fails the test just as loudly.
func allocEngines(opts Options) (*sim.World, *Engine, *Engine) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	if _, err := f.AddNetwork(simnet.MX10G()); err != nil {
		panic(err)
	}
	mk := func(id simnet.NodeID) *Engine {
		e, err := New(f, id, opts)
		if err != nil {
			panic(err)
		}
		if err := e.AttachFabric(f); err != nil {
			panic(err)
		}
		return e
	}
	return w, mk(0), mk(1)
}

// marginalAllocs returns allocations per extra message between a short
// and a long run of the same workload.
func marginalAllocs(run func(msgs int), short, long int) float64 {
	run(4) // warm lazy runtime and package init paths out of the measurement
	a1 := testing.AllocsPerRun(5, func() { run(short) })
	a2 := testing.AllocsPerRun(5, func() { run(long) })
	return (a2 - a1) / float64(long-short)
}

// eagerWorkload pushes msgs eager-sized messages through one gate pair
// and receives them; buffers are reused so the measurement sees the
// engine's allocations, not the harness's.
func eagerWorkload(opts Options) func(msgs int) {
	return func(msgs int) {
		w, e0, e1 := allocEngines(opts)
		data := make([]byte, 512)
		buf := make([]byte, 1024)
		w.Spawn("send", func(p *sim.Proc) {
			for i := 0; i < msgs; i++ {
				e0.Gate(1).Isend(p, 7, data)
			}
		})
		w.Spawn("recv", func(p *sim.Proc) {
			for i := 0; i < msgs; i++ {
				if _, err := e1.Gate(0).Recv(p, 7, buf); err != nil {
					panic(err)
				}
			}
		})
		if err := w.Run(); err != nil {
			panic(err)
		}
	}
}

// The eager Isend path: wrapper, window push, election, train encode,
// NIC round trip, dispatch, match, completion. With recycling this
// whole cycle must stay in single-digit allocations per message.
func TestAllocsEagerIsendPath(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	opts := DefaultOptions()
	opts.Strategy = "aggreg"
	got := marginalAllocs(eagerWorkload(opts), 64, 320)
	t.Logf("eager Isend path: %.2f allocs per message", got)
	const ceiling = 10
	if got > ceiling {
		t.Errorf("eager Isend path allocates %.2f per message, ceiling %d — a hot-path allocation crept back in", got, ceiling)
	}
}

// The flush path: a FlushBacklog budget forces periodic whole-backlog
// elections, the path that builds the largest trains (and therefore
// leaned hardest on per-train header/segment slice churn before the
// encode scratch existed).
func TestAllocsFlushPath(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	opts := DefaultOptions()
	opts.Strategy = "aggreg"
	opts.FlushBacklog = 4
	got := marginalAllocs(eagerWorkload(opts), 64, 320)
	t.Logf("flush path: %.2f allocs per message", got)
	const ceiling = 13
	if got > ceiling {
		t.Errorf("flush path allocates %.2f per message, ceiling %d — a hot-path allocation crept back in", got, ceiling)
	}
}

// The same eager workload with recycling disabled must allocate
// strictly more than the pooled run — if it does not, the pools are
// dead code and the NoRecycle A/B (and the pooling property test that
// relies on it) is comparing a path against itself.
func TestAllocsRecyclingActuallyRecycles(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	opts := DefaultOptions()
	opts.Strategy = "aggreg"
	pooled := marginalAllocs(eagerWorkload(opts), 64, 320)
	opts.NoRecycle = true
	fresh := marginalAllocs(eagerWorkload(opts), 64, 320)
	t.Logf("pooled %.2f vs no-recycle %.2f allocs per message", pooled, fresh)
	if pooled >= fresh {
		t.Errorf("recycling saves nothing: %.2f allocs pooled vs %.2f without", pooled, fresh)
	}
}
