package core

import "nmad/internal/sim"

// Job-queue accounting. The multi-tenant queue (internal/queue) lives
// outside the engine but reports through it, so one Stats snapshot — and
// one scenario assertion table — covers admission, dispatch, and the
// communication work the jobs performed.

// NoteJobAdmitted records a job accepted into the queue; depth is the
// backlog size including the new job.
func (e *Engine) NoteJobAdmitted(depth int) {
	e.stats.JobsAdmitted++
	if depth > e.stats.PeakQueueDepth {
		e.stats.PeakQueueDepth = depth
	}
}

// NoteJobRejected records a submission bounced off the capacity bound.
func (e *Engine) NoteJobRejected() {
	e.stats.JobsRejected++
}

// NoteJobDispatched records a job leaving the backlog for a worker after
// waiting for the given span; aged marks a dispatch the tenant won only
// through the aging boost.
func (e *Engine) NoteJobDispatched(wait sim.Time, aged bool) {
	e.stats.JobsDispatched++
	if aged {
		e.stats.JobsAged++
	}
	if wait > e.stats.PeakJobWait {
		e.stats.PeakJobWait = wait
	}
}

// NoteJobCompleted records a job's worker proc finishing.
func (e *Engine) NoteJobCompleted() {
	e.stats.JobsCompleted++
}
