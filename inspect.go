package nmad

import (
	"nmad/internal/bench"
	"nmad/internal/drivers"
	"nmad/internal/sim"
	"nmad/internal/simnet"
)

// Introspection and evaluation surface of the facade, so diagnostic
// tools (nmad-info, nmad-bench) never reach into internal packages.

// RailCaps is the transfer-layer capability report the scheduling
// strategies consume: rendezvous threshold, gather/scatter capacity,
// RDMA availability, nominal performance figures.
type RailCaps = drivers.Caps

// ProbeRail instantiates the driver of one network profile on a
// throwaway fabric and returns the driver name and its capability
// report.
func ProbeRail(p Profile) (name string, caps RailCaps, err error) {
	w := sim.NewWorld()
	f := simnet.NewFabric(w, 2, simnet.DefaultHost())
	net, err := f.AddNetwork(p)
	if err != nil {
		return "", RailCaps{}, err
	}
	drv, err := drivers.New(net, 0)
	if err != nil {
		return "", RailCaps{}, err
	}
	return drv.Name(), drv.Caps(), nil
}

// Benchmark harness re-exports: the figures and tables of the paper's
// evaluation (§5) plus the ablations, runnable by id.
type BenchFigure = bench.Figure

// BenchFigureInfo pairs a runnable figure id with its one-line
// description, for discovery (nmad-bench -list).
type BenchFigureInfo = bench.FigureInfo

var (
	// BenchFigureIDs lists every runnable figure id.
	BenchFigureIDs = bench.FigureIDs
	// BenchFigures lists every runnable figure with its description.
	BenchFigures = bench.Figures
	// BenchRun regenerates one figure.
	BenchRun = bench.Run
	// BenchFormatTable / BenchFormatCSV / BenchFormatJSON render a
	// figure's data points; JSON carries the strategy and engine-option
	// stamps for machine-readable result trajectories.
	BenchFormatTable = bench.FormatTable
	BenchFormatCSV   = bench.FormatCSV
	BenchFormatJSON  = bench.FormatJSON
	// BenchSetSeed / BenchSeed set and report the fault-injection seed
	// the lossy figures (scale-nodes, drop-resilience) run under. The
	// seed is stamped into every emitted series; the same seed
	// reproduces identical numbers.
	BenchSetSeed = bench.SetSeed
	BenchSeed    = bench.Seed
	// BenchStartCPUProfile / BenchWriteMemProfile expose the pprof
	// plumbing behind nmad-bench's -cpuprofile / -memprofile flags: the
	// reproducible way to profile the engine hot paths is to profile the
	// figures the trajectory gates.
	BenchStartCPUProfile = bench.StartCPUProfile
	BenchWriteMemProfile = bench.WriteMemProfile
)
