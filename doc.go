// Package nmad is a Go reproduction of NewMadeleine, the communication
// scheduling engine for high-performance networks of Aumage, Brunet,
// Furmento and Namyst (INRIA RR-6085, 2006 / IPPS 2007).
//
// # What it is
//
// NewMadeleine decouples communication-request processing from the
// application workflow and ties it to NIC activity instead: requests
// accumulate in an optimization window while the NICs are busy, and each
// time a NIC becomes idle a pluggable strategy synthesizes the next
// ready-to-send packet — aggregating small requests across logical flows
// (even across MPI communicators), reordering them, turning large ones
// into rendezvous transactions, and splitting bodies over multiple
// heterogeneous rails.
//
// Since real Myri-10G/Quadrics NICs cannot be driven from a Go
// user-level process, the hardware is substituted by a deterministic
// discrete-event network simulator with LogGP-style cost models
// calibrated against the paper's 2006 Opteron testbed. All latency and
// bandwidth figures are read off the virtual clock.
//
// # The API
//
// The package is a facade in three movements:
//
// Construction is functional options. A Cluster is the machine; engines
// and MPI ranks live on its nodes:
//
//	cl, _ := nmad.NewCluster(2, nmad.WithRails(nmad.MX10G(), nmad.QsNetII()))
//	e0, _ := cl.Engine(0, nmad.WithStrategy("aggreg"), nmad.WithTracer(tr))
//	m1, _ := cl.MPI(1)
//
// Completion is one Request interface. Sends, receives, packed messages
// and MAD-MPI handles all expose Done/Test/Err/Wait/Bytes, compose with
// NewRequestGroup, and finish through WaitAll/WaitAny:
//
//	s := e0.Gate(1).Isend(p, tag, data, nmad.Priority())
//	r := e0.Gate(1).Irecv(p, tag2, buf)
//	idx, _ := nmad.WaitAny(p, s, r)
//
// Non-contiguous data is first-class. Isendv/Irecvv move an iovec — a
// gather/scatter list of segments anywhere in user space — as ONE
// wrapper, NIC-gathered on send and scattered on delivery; MAD-MPI
// derived datatypes ride this path, so an indexed layout is one wire
// entry the strategies aggregate natively (the paper's §5.3 result):
//
//	e0.Gate(1).Isendv(p, tag, [][]byte{hdr, col0, col1})
//
// The optimizer is programmable. Package nmad/sched is the public
// scheduling SPI: a Strategy elects wrappers out of the per-rail window
// view, with the rails' nominal capabilities and sampled achieved
// bandwidth in hand. WithStrategy accepts a registry name or a Strategy
// value; RegisterStrategy adds names (error on duplicates); the
// built-ins — default, aggreg, split, prio, adaptive — are implemented
// on the same SPI:
//
//	e0, _ := cl.Engine(0, nmad.WithStrategy(myStrategy{}))
//	_ = nmad.RegisterStrategy("mine", func() nmad.Strategy { return myStrategy{} })
//
// # Collectives and algorithm selection
//
// The MAD-MPI collectives (Barrier, Bcast, Gather, Scatter, Allgather,
// Alltoall, Reduce, Allreduce) run on a collective schedule engine:
// each call compiles into a DAG of nonblocking send/recv/compute steps
// executed with request groups, so rounds and segments overlap and the
// traffic flows through the optimization window like any other —
// strategies aggregate segments of different rounds into one packet,
// credits bound them, large segments go rendezvous. Algorithms are
// pluggable via a registry mirroring RegisterStrategy: dissemination
// barrier, binomial and segmented pipeline-chain bcast/reduce, tree and
// segmented pipelined-ring (reduce-scatter + allgather) allreduce, ring
// and gather-bcast allgather, linear and pairwise alltoall. Selection
// is automatic by message size and communicator size; WithCollAlgo
// pins one and WithCollSegment tunes the pipelining granularity:
//
//	m, _ := cl.MPI(0, nmad.WithCollAlgo(nmad.CollAllreduce, "ring"),
//		nmad.WithCollSegment(8<<10))
//	_ = nmad.RegisterCollAlgo(nmad.CollBcast, "mine", myBuilder)
//
// Collective buffers are validated (ErrCollBuffer instead of slice
// panics: Gather's recvBuf must be exactly Size×len(sendBuf), and so
// on), and the collective tag space is epoch-extended — when a
// communicator's 2^22-collective window wraps, tags move to a fresh
// lane instead of being reused, and genuine exhaustion (2^29
// collectives) reports ErrCollTags. The "allreduce" bench figure
// sweeps vector size × node count × algorithm against the seed's
// blocking trees.
//
// # Flow control and overload
//
// Under many-to-one overload an unbounded receive queue is an
// out-of-memory scenario. WithCredits(n) enables credit-based receive
// flow control: every gate starts with n eager landing credits, a sent
// data wrapper consumes one, and the receiver returns credits as it
// consumes wrappers — replenishment travels as a control entry that
// aggregates with outbound traffic like the rendezvous handshake. While
// a peer's budget is exhausted the sender's data wrappers wait in the
// optimization window, invisible to strategies (sched.Window.Credits
// reports the remaining budget), so the eager traffic in the receiver's
// unexpected queue and resequencing buffers stays bounded by the budget
// (Stats.PeakUnexpected, Stats.PeakHeld); rendezvous requests queue as
// bare headers with their bodies gated by the grant cap.
// WithMaxGrants(n) caps concurrent inbound rendezvous
// transactions with deferred grants; a grant is always clamped to the
// posted landing capacity (short buffers complete with ErrTruncated and
// the excess never crosses the wire); and receive-path protocol
// anomalies are counted (Stats.ProtocolErrors, Gate.ProtocolErrors)
// instead of panicking the node:
//
//	e0, _ := cl.Engine(0, nmad.WithCredits(32), nmad.WithMaxGrants(4))
//
// The incast bench workload (nmad-bench -fig incast) exercises exactly
// this scenario.
//
// # Multi-tenant job queue
//
// NewQueue puts a bounded admission queue and fair-share dispatcher in
// front of one engine, so several tenants' workloads share a node
// without hand-written interleaving. Tenants are declared with a name,
// a weight and a class (ClassBulk, ClassNormal, ClassLatency); Submit
// enqueues a named job — a function run as its own simulated process
// once dispatched — and returns a Job handle with virtual-time
// Wait/Done/Err plus Submitted/Dispatched/Completed stamps. Dispatch
// order is deterministic stride scheduling (a weight-4 tenant gets
// four slots per weight-1 slot), classes set the base dispatch level
// with latency-class tenants preempting queued bulk, and queued jobs
// age one class per WithQueueAging interval so nothing starves.
// Admission past WithQueueCapacity fails fast with ErrQueueFull.
// Counters flow through Stats (JobsAdmitted through PeakJobWait) and
// Tenant.Stats():
//
//	q, _ := nmad.NewQueue(e0, nmad.WithQueueWorkers(2),
//		nmad.WithTenant("mover", 1, nmad.ClassBulk),
//		nmad.WithTenant("rpc", 4, nmad.ClassLatency))
//	job, _ := q.Submit("rpc", "lookup", func(p *nmad.Proc) error { ... })
//
// Scenario files declare the same thing with a tenants list and a
// queue block, and the tenant-isolation bench figure measures the
// headline property: a latency tenant's pingpong stays within 2x its
// unloaded time while a bulk tenant's incast burst runs to completion.
//
// # Fault injection and reliability
//
// The fabric can lie. WithFaults installs a seeded FaultProfile on the
// cluster: per-rail drop/duplicate/reorder probabilities plus scheduled
// Outage windows during which a rail goes dark, drawn from a
// deterministic per-network RNG — the same seed always corrupts the
// same packets (UniformLoss builds the simplest profile; FaultStats
// reports what the injector did). WithReliability arms the engines'
// link layer against it: eager trains carry link-sequence framing with
// cumulative acks piggybacked on reverse traffic (delayed and coalesced
// when there is none), unacked trains retransmit on timeout
// (WithRetransmitTimeout), duplicates and reordered trains are absorbed
// before dispatch, and rendezvous bodies are repaired chunk-wise — the
// receiver tracks span coverage and re-pushes its CTS until the body is
// whole. When a rail exhausts its retransmit budget
// (WithRetransmitBudget) it is declared failed: pinned wrappers re-home
// to surviving rails, in-flight traffic is re-issued, and a ping/pong
// probe watches for recovery (the last rail never fails — the engine
// keeps retrying). Stats counts Retransmits, DupAcks,
// ReorderedAccepts, BodyReissues, FailedRails and RecoveredRails:
//
//	cl, _ := nmad.NewCluster(8, nmad.WithFaults(nmad.UniformLoss(42, 0.10, 1)))
//	e0, _ := cl.Engine(0, nmad.WithReliability())
//
// Both sides of a gate must agree on WithReliability (it changes the
// wire format). Under reliability an unset body chunk defaults to 64KB
// so a long rendezvous body cannot monopolize a wire past the
// retransmit timeout. Fault profiles are stamped into recordings and
// re-applied seeded on replay, so a lossy replay is timeline-
// deterministic, retransmissions included; nmad-replay -lossless
// replays the same load on a clean fabric. The emulation scales: the
// CI faults job runs a 1024-node dissemination barrier and allgather at
// 1% drop, and the scale-nodes / drop-resilience bench figures sweep
// job size and drop probability with every payload verified.
//
// # Recording and replaying schedules
//
// WithRecording captures a run's offered load — every application-level
// submission with its virtual-time offset, plus the cluster topology —
// into a versioned JSONL recording, separated from the schedule the
// engine produced on it. Replay reconstructs the machine and re-issues
// each operation at its recorded instant under any strategy, credit
// budget or rail set: exact A/B comparisons on identical submission
// timing, immune to the feedback between schedule and application
// progress that skews live comparisons:
//
//	rec := nmad.NewRecording()
//	e0, _ := cl.Engine(0, nmad.WithRecording(rec))   // every engine
//	... run, then rec.Write(f) / loaded, _ := nmad.ReadRecording(f)
//	results, _ := nmad.ReplayAB(loaded, []string{"default", "aggreg"})
//
// Replaying the same recording under the same strategy is
// event-for-event deterministic, asserted against golden timelines in
// internal/replay/testdata (the regression gate for scheduler changes);
// replaying under the recorded personality reproduces the original live
// run's Stats and timeline exactly. The format's version field
// (RecordingVersion, currently 1) gates compatibility: newer-version
// recordings are refused, unknown fields are ignored, semantic changes
// bump the version. cmd/nmad-trace -record writes a recording;
// cmd/nmad-replay re-drives one (-strategy, -ab, -credits, -grants).
//
// # Declarative scenarios
//
// A scenario file is a YAML description of a whole cluster experiment:
// the machine (nodes, rails by profile name, engine personality, seeded
// fault profile), a timeline of workload phases (pingpong, ring,
// incast, composite bulk+control, and the collectives) interleaved with
// mid-run events (rail degradation and restoration, outages, fault-rate
// changes, node slowdown, credit squeezes, named checkpoints),
// optionally a tenants list with a queue block routing tenant-tagged
// phases through the fair-share job queue, and
// assertions over the outcome — any Stats counter, per-rail fault
// counters, completion-time bounds, payload integrity, phase ordering.
// cmd/nmad-sim runs, validates and lists scenario files; the committed
// corpus under scenarios/ is run green by CI, so each file is an
// executable regression test. Runs are byte-deterministic for a fixed
// seed, and nmad-sim run -record captures the offered load as a
// recording stamped with the scenario name and seed, replayable through
// cmd/nmad-replay. LoadScenario, ParseScenario, ValidateScenario,
// RunScenario and ListScenarioDir expose the harness programmatically,
// with typed errors (ScenarioErrUnknownAction, ScenarioErrBadTarget,
// ScenarioErrPhaseOverlap, ...) classifying every way a file can be
// wrong. The format reference lives in internal/scenario.
//
// # Static analysis and invariants
//
// The engine's load-bearing promises — byte-deterministic replay,
// seeded fault injection, the SPI aliasing contract — are machine-checked
// by cmd/nmad-vet, a vet-compatible analyzer suite built in
// internal/analysis and run by CI over the whole module with
// go vet -vettool. Four analyzers police four invariants: determinism
// (no wall-clock reads, no global math/rand, no order-dependent
// map iteration in the deterministic packages — internal/core,
// internal/sim, internal/simnet, internal/madmpi, internal/scenario,
// internal/queue, internal/replay, internal/trace and sched),
// statssync (the scenario
// assertion tables cover exactly the exported numeric counters of
// core.Stats and simnet.FaultStats under their snake_case names),
// sentinelcmp (the module's sentinel errors are matched with errors.Is
// and errors.As, never == or type switches), and spileak (strategies
// never retain the Window, *Wrapper or RailInfo views the engine lends
// them during an election). A finding is suppressed one site at a time
// with "//nmadvet:allow <analyzer>(<reason>)"; the reason is mandatory
// and stale allows are themselves findings. Adding a counter to
// core.Stats fails CI until the scenario table in internal/scenario
// learns its snake_case name — that is the point.
//
// # Layout
//
//   - package nmad (this package): the facade — Cluster assembly,
//     functional options, and re-exports of the engine, MAD-MPI,
//     profiles, tracing and the benchmark harness.
//   - internal/sim: the discrete-event kernel (virtual clock, cooperative
//     processes, condition variables).
//   - internal/simnet: NIC/wire/host cost models and the five network
//     profiles (MX/Myri-10G, QsNetII, GM/Myrinet-2000, SISCI/SCI, TCP).
//   - internal/drivers: the transfer layer — one minimal driver per
//     network, with capability reports.
//   - sched: the public scheduling SPI — Strategy, the Window/Wrapper
//     views, Election, RailInfo, lifecycle hooks, the Chain combinator,
//     the strategy registry and the five built-in strategies.
//   - internal/core: the engine — collect layer, optimization window,
//     election validation against the SPI, rendezvous protocol,
//     resequencing receive path, the unified Request layer and the
//     vector (iovec) path.
//   - internal/madmpi: MAD-MPI — communicators, point-to-point,
//     derived datatypes, and the collective schedule engine with its
//     pluggable algorithm registry.
//   - internal/trace: scheduling-decision timelines (text and Chrome
//     trace-event export) and the versioned record/replay format.
//   - internal/replay: re-drives a recording under any strategy, credit
//     budget or rail set; golden-timeline determinism tests.
//   - internal/scenario: the declarative scenario harness — YAML-subset
//     parser, validation, phase workloads, mid-run events, assertions.
//   - internal/queue: the multi-tenant job queue — bounded admission,
//     weighted fair-share (stride) dispatch, class-based priority with
//     aging, per-tenant counters.
//   - internal/baseline: MPICH-like and OpenMPI-like comparators.
//   - internal/bench: the harness regenerating every evaluation figure.
//   - internal/analysis, cmd/nmad-vet: the static-analysis suite
//     enforcing the invariants above; internal/names holds the shared
//     snake_case naming rule it cross-checks against internal/scenario.
//
// # Quick start
//
//	cl, _ := nmad.NewCluster(2)
//	e0, _ := cl.Engine(0)
//	e1, _ := cl.Engine(1)
//	cl.Spawn("sender", func(p *nmad.Proc) {
//		e0.Gate(1).Send(p, 7, []byte("hello"))
//	})
//	cl.Spawn("receiver", func(p *nmad.Proc) {
//		buf := make([]byte, 64)
//		n, _ := e1.Gate(0).Recv(p, 7, buf)
//		fmt.Printf("got %q\n", buf[:n])
//	})
//	cl.Run()
package nmad
