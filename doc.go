// Package nmad is a Go reproduction of NewMadeleine, the communication
// scheduling engine for high-performance networks of Aumage, Brunet,
// Furmento and Namyst (INRIA RR-6085, 2006 / IPPS 2007).
//
// # What it is
//
// NewMadeleine decouples communication-request processing from the
// application workflow and ties it to NIC activity instead: requests
// accumulate in an optimization window while the NICs are busy, and each
// time a NIC becomes idle a pluggable strategy synthesizes the next
// ready-to-send packet — aggregating small requests across logical flows
// (even across MPI communicators), reordering them, turning large ones
// into rendezvous transactions, and splitting bodies over multiple
// heterogeneous rails.
//
// Since real Myri-10G/Quadrics NICs cannot be driven from a Go
// user-level process, the hardware is substituted by a deterministic
// discrete-event network simulator with LogGP-style cost models
// calibrated against the paper's 2006 Opteron testbed. All latency and
// bandwidth figures are read off the virtual clock; see DESIGN.md for
// the substitution argument and EXPERIMENTS.md for paper-vs-measured
// numbers of every figure.
//
// # Layout
//
//   - package nmad (this package): a thin facade — Cluster assembly plus
//     re-exports of the engine, MAD-MPI and profile types.
//   - internal/sim: the discrete-event kernel (virtual clock, cooperative
//     processes, condition variables).
//   - internal/simnet: NIC/wire/host cost models and the five network
//     profiles (MX/Myri-10G, QsNetII, GM/Myrinet-2000, SISCI/SCI, TCP).
//   - internal/drivers: the transfer layer — one minimal driver per
//     network, with capability reports.
//   - internal/core: the engine — collect layer, optimization window,
//     strategies (default/aggreg/split/prio), rendezvous protocol,
//     resequencing receive path, pack/unpack and sendrecv interfaces.
//   - internal/madmpi: MAD-MPI — communicators, point-to-point,
//     derived datatypes, a few collectives.
//   - internal/baseline: MPICH-like and OpenMPI-like comparators.
//   - internal/bench: the harness regenerating every evaluation figure.
//
// # Quick start
//
//	cl, _ := nmad.NewCluster(2, nmad.MX10G())
//	e0, _ := cl.Engine(0, nmad.DefaultOptions())
//	e1, _ := cl.Engine(1, nmad.DefaultOptions())
//	cl.Spawn("sender", func(p *nmad.Proc) {
//		e0.Gate(1).Send(p, 7, []byte("hello"))
//	})
//	cl.Spawn("receiver", func(p *nmad.Proc) {
//		buf := make([]byte, 64)
//		n, _ := e1.Gate(0).Recv(p, 7, buf)
//		fmt.Printf("got %q\n", buf[:n])
//	})
//	cl.Run()
package nmad
