package nmad

import (
	"nmad/internal/queue"
)

// Multi-tenant job queue: the ingestion layer that admits many
// independent client workloads onto one engine with per-tenant priority
// classes, weighted fair-share dispatch and aging. See internal/queue
// for the scheduling discipline; counters land in Stats
// (JobsAdmitted, PeakJobWait, ...).

// Aliases into internal/queue.
type (
	// JobQueue is the bounded multi-tenant dispatcher.
	JobQueue = queue.Queue
	// Job is one submitted unit of work.
	Job = queue.Job
	// Tenant is one registered workload source.
	Tenant = queue.Tenant
	// TenantClass is a tenant's priority class.
	TenantClass = queue.Class
	// TenantStats is the per-tenant slice of the queue counters.
	TenantStats = queue.TenantStats
)

// Tenant priority classes, lowest to highest.
const (
	ClassBulk    = queue.ClassBulk
	ClassNormal  = queue.ClassNormal
	ClassLatency = queue.ClassLatency
)

// Queue sentinels; match with errors.Is.
var (
	ErrQueueFull     = queue.ErrQueueFull
	ErrUnknownTenant = queue.ErrUnknownTenant
)

// QueueOption configures NewQueue.
type QueueOption func(*queue.Config)

// WithQueueCapacity bounds the backlog across all tenants; submissions
// beyond it are rejected with ErrQueueFull.
func WithQueueCapacity(n int) QueueOption {
	return func(c *queue.Config) { c.Capacity = n }
}

// WithQueueWorkers bounds concurrently running jobs.
func WithQueueWorkers(n int) QueueOption {
	return func(c *queue.Config) { c.Workers = n }
}

// WithQueueAging sets the waiting time that lifts a starved tenant's
// effective class by one level.
func WithQueueAging(d Time) QueueOption {
	return func(c *queue.Config) { c.Aging = d }
}

// WithTenant declares a tenant with a fair-share weight and a priority
// class. At least one tenant is required.
func WithTenant(name string, weight int, class TenantClass) QueueOption {
	return func(c *queue.Config) {
		c.Tenants = append(c.Tenants, queue.TenantSpec{Name: name, Weight: weight, Class: class})
	}
}

// NewQueue builds a job queue dispatching onto e's world. Jobs submitted
// under a latency-class tenant should attach tenant.SendOptions() to
// their sends so the engine's priority scheduling matches the
// queue-level class.
func NewQueue(e *Engine, opts ...QueueOption) (*JobQueue, error) {
	var cfg queue.Config
	for _, o := range opts {
		o(&cfg)
	}
	return queue.New(e, cfg)
}
